package repro

// Determinism sweep: the runtime invariant behind every measured number in
// EXPERIMENTS.md (DESIGN.md §5) is that solver outputs do not depend on the
// worker count — parallelism changes only wall clock, never results. The
// persistent pool's dynamic chunk claiming makes the *schedule*
// intentionally nondeterministic, so this sweep pins down that outputs stay
// bit-identical for worker counts {1, 2, 3, 7, GOMAXPROCS} on two dataset
// analogs, for the baseline solver and the paper's Table I winner of each
// problem.

import (
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/par"
)

var sweepWorkers = func() []int {
	ws := []int{1, 2, 3, 7}
	if m := runtime.GOMAXPROCS(0); m != 1 && m != 2 && m != 3 && m != 7 {
		ws = append(ws, m)
	}
	return ws
}()

func sweepGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	gs := map[string]*graph.Graph{}
	for _, name := range []string{"lp1", "coAuthorsCiteseer"} {
		spec, ok := dataset.Get(name)
		if !ok {
			t.Fatalf("unknown dataset analog %q", name)
		}
		gs[name] = dataset.Load(spec, 0.1, 1)
	}
	return gs
}

// TestDeterminismSweepSolvers asserts bit-identical matching, coloring and
// MIS outputs under every sweep worker count.
func TestDeterminismSweepSolvers(t *testing.T) {
	defer par.SetWorkers(0)
	par.SetWorkers(1)
	graphs := sweepGraphs(t)

	type cfg struct {
		problem  core.Problem
		strategy core.Strategy
	}
	cfgs := []cfg{
		{core.ProblemMM, core.StrategyBaseline},
		{core.ProblemMM, core.StrategyRand},
		{core.ProblemColor, core.StrategyBaseline},
		{core.ProblemColor, core.StrategyDegk},
		{core.ProblemMIS, core.StrategyBaseline},
		{core.ProblemMIS, core.StrategyDegk},
		// MPX extension: exercises the frontier engine's pull path (dense
		// rounds) under every worker count, for all three problems.
		{core.ProblemMM, core.StrategyMPX},
		{core.ProblemColor, core.StrategyMPX},
		{core.ProblemMIS, core.StrategyMPX},
	}

	solve := func(g *graph.Graph, c cfg) *core.Result {
		res, err := core.Solve(g, c.problem, core.Options{Strategy: c.strategy, Seed: 5})
		if err != nil {
			t.Fatalf("%v/%v: %v", c.problem, c.strategy, err)
		}
		return res
	}

	for name, g := range graphs {
		for _, c := range cfgs {
			par.SetWorkers(1)
			ref := solve(g, c)
			for _, w := range sweepWorkers[1:] {
				par.SetWorkers(w)
				got := solve(g, c)
				label := func() string {
					return name + "/" + ref.Report.StrategyName
				}
				switch c.problem {
				case core.ProblemMM:
					for v := range ref.Matching.Mate {
						if got.Matching.Mate[v] != ref.Matching.Mate[v] {
							t.Fatalf("%s: Mate[%d] = %d with %d workers, %d with 1",
								label(), v, got.Matching.Mate[v], w, ref.Matching.Mate[v])
						}
					}
				case core.ProblemColor:
					for v := range ref.Coloring.Color {
						if got.Coloring.Color[v] != ref.Coloring.Color[v] {
							t.Fatalf("%s: Color[%d] = %d with %d workers, %d with 1",
								label(), v, got.Coloring.Color[v], w, ref.Coloring.Color[v])
						}
					}
				case core.ProblemMIS:
					for v := range ref.IndepSet.In {
						if got.IndepSet.In[v] != ref.IndepSet.In[v] {
							t.Fatalf("%s: In[%d] = %v with %d workers, %v with 1",
								label(), v, got.IndepSet.In[v], w, ref.IndepSet.In[v])
						}
					}
				}
			}
		}
	}
}

// TestDeterminismSweepConstruction asserts the CSR graph produced by the
// parallel builder (atomic degree count + parallel scatter + per-list sort)
// is identical under every sweep worker count.
func TestDeterminismSweepConstruction(t *testing.T) {
	defer par.SetWorkers(0)
	for _, name := range []string{"lp1", "coAuthorsCiteseer"} {
		spec, ok := dataset.Get(name)
		if !ok {
			t.Fatalf("unknown dataset analog %q", name)
		}
		par.SetWorkers(1)
		dataset.ClearCache()
		ref := dataset.Load(spec, 0.1, 1)
		refEdges := ref.Edges()
		for _, w := range sweepWorkers[1:] {
			par.SetWorkers(w)
			dataset.ClearCache()
			g := dataset.Load(spec, 0.1, 1)
			if g.NumVertices() != ref.NumVertices() || g.NumEdges() != ref.NumEdges() {
				t.Fatalf("%s: %d workers built |V|=%d |E|=%d, 1 worker built |V|=%d |E|=%d",
					name, w, g.NumVertices(), g.NumEdges(), ref.NumVertices(), ref.NumEdges())
			}
			edges := g.Edges()
			for i := range refEdges {
				if edges[i] != refEdges[i] {
					t.Fatalf("%s: edge %d = %v with %d workers, %v with 1",
						name, i, edges[i], w, refEdges[i])
				}
			}
		}
	}
	dataset.ClearCache()
}

// TestDeterminismSweepBinaryLoad asserts that the load path is invisible
// to the solvers: a graph served from a raw (mmap-backed where supported)
// or compressed (parallel-decoded) .scsr file produces bit-identical
// solution digests to the heap-built graph, under every sweep worker
// count — including the decode itself, which runs on the par pool.
func TestDeterminismSweepBinaryLoad(t *testing.T) {
	defer par.SetWorkers(0)
	spec, ok := dataset.Get("lp1")
	if !ok {
		t.Fatal("unknown dataset analog lp1")
	}
	par.SetWorkers(1)
	ref := dataset.Load(spec, 0.1, 1)
	dir := t.TempDir()
	paths := map[string]string{
		"raw":        dir + "/lp1-raw.scsr",
		"compressed": dir + "/lp1-comp.scsr",
	}
	if err := graph.WriteBinaryFile(paths["raw"], ref, graph.BinaryOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteBinaryFile(paths["compressed"], ref, graph.BinaryOptions{Compress: true}); err != nil {
		t.Fatal(err)
	}

	refRes, err := core.Solve(ref, core.ProblemMIS, core.Options{Strategy: core.StrategyDegk, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	want := refRes.SolutionDigest()

	for name, p := range paths {
		for _, w := range sweepWorkers {
			par.SetWorkers(w)
			bg, err := graph.OpenBinary(p)
			if err != nil {
				t.Fatalf("%s/%d workers: %v", name, w, err)
			}
			if bg.Fingerprint() != ref.Fingerprint() {
				t.Fatalf("%s/%d workers: fingerprint %#x, want %#x",
					name, w, bg.Fingerprint(), ref.Fingerprint())
			}
			res, err := core.Solve(bg.Graph, core.ProblemMIS, core.Options{Strategy: core.StrategyDegk, Seed: 5})
			if err != nil {
				t.Fatalf("%s/%d workers: %v", name, w, err)
			}
			if got := res.SolutionDigest(); got != want {
				t.Fatalf("%s/%d workers: solution digest %#x, heap-built graph gave %#x",
					name, w, got, want)
			}
			if err := bg.Close(); err != nil {
				t.Fatalf("%s/%d workers: close: %v", name, w, err)
			}
		}
	}
}
