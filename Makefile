GO ?= go

# bench-gate: max allowed slowdown (percent) before the gate fails.
GATE_THRESHOLD ?= 2

.PHONY: build test race vet lint bench-smoke bench-gate bench-par serve-demo serve-smoke convert-smoke fmt fmt-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race check on the packages with lock-free hot paths: the parallel runtime
# (pool dispatch, scratch arenas), graph construction (atomic scatter), the
# tracer (concurrent span begin/end under the global mutex), and the
# telemetry registry (lock-free metric updates under concurrent scrapes).
# bsp and harness are included because both publish metrics concurrently:
# every bsp kernel launch observes bsp_kernel_seconds and bumps the launch/
# thread counters from whatever goroutine ran the superstep while a scrape
# may be reading them, and the harness publishes the per-cell histograms
# (symbreak_*_seconds) during runs whose solvers still have pool workers
# in flight — the racy interleavings only these packages exercise.
race:
	$(GO) test -race ./internal/par/... ./internal/graph/... ./internal/trace/... \
		./internal/telemetry/... ./internal/bsp/... ./internal/harness/...

vet:
	$(GO) vet ./...

# symlint: the repository's own go/analysis-style suite (internal/lint)
# enforcing determinism, trace-pairing and parallel-runtime invariants.
# Zero findings required; see DESIGN.md § Static analysis.
lint:
	$(GO) run ./cmd/symlint ./...

# Quick end-to-end benchmark smoke: one iteration of the paper-figure
# benchmarks plus the frontier-engine, MPX, and binary-I/O micro-benchmarks,
# archived as JSON for cross-PR regression comparison.
SMOKE_BENCHES = ^(BenchmarkFig2Decomp|BenchmarkTable1|BenchmarkDecompMPX|BenchmarkFrontierHybridBFS|BenchmarkLoadBinary|BenchmarkDecodeAdjacency)
bench-smoke:
	$(GO) test -run='^$$' -bench='$(SMOKE_BENCHES)' -benchtime=1x . \
		| $(GO) run scripts/bench2json.go -o BENCH_pr1.json

# Regression gate: re-run the smoke benchmarks (3 repeats, best-of-N per
# name) and fail if any is more than GATE_THRESHOLD percent slower than
# the archived BENCH_pr1.json baseline. Improvements always pass.
bench-gate:
	$(GO) test -run='^$$' -bench='$(SMOKE_BENCHES)' -benchtime=1x -count=3 . \
		| $(GO) run scripts/bench2json.go -compare BENCH_pr1.json -threshold $(GATE_THRESHOLD)

# Runtime micro-benchmarks: pooled dispatch vs the seed spawn-per-call
# implementation, scan/filter allocation behavior, CSR construction.
bench-par:
	$(GO) test -run='^$$' -bench='ForSpawn|RangeSkewed|ExclusiveSum32|FilterCompact' -benchtime=100x ./internal/par/
	$(GO) test -run='^$$' -bench='BuilderFromEdges|PartitionByLabel' -benchtime=10x ./internal/graph/

# Live-telemetry demo: a figure run with the HTTP server up for manual
# inspection — curl localhost:9090/metrics, /trace, /debug/pprof/ while
# it runs (use -repeats to stretch the run).
serve-demo:
	$(GO) run ./cmd/benchall -exp fig3 -repeats 3 -serve :9090

# End-to-end daemon check: boot `symbreak -serve` with a small corpus,
# drive it with symload for a few seconds, verify the serve metrics moved
# on /metrics, and shut down gracefully. See docs/OPS.md.
serve-smoke:
	bash scripts/serve_smoke.sh

# Binary-format round-trip check: generate a graph, convert text <-> .scsr
# (raw, compressed, and out-of-core), validate every artifact, and verify
# the solver digest is identical across all load paths. See docs/OPS.md.
convert-smoke:
	bash scripts/convert_smoke.sh

fmt:
	gofmt -w $$($(GO) list -f '{{.Dir}}' ./...)

# fmt-check: the CI-facing mode of fmt — list unformatted files and fail
# instead of rewriting them.
fmt-check:
	@unformatted=$$(gofmt -l $$($(GO) list -f '{{.Dir}}' ./...)); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
