GO ?= go

.PHONY: build test race vet bench-smoke bench-par fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race check on the packages with lock-free hot paths: the parallel runtime
# (pool dispatch, scratch arenas) and graph construction (atomic scatter).
race:
	$(GO) test -race ./internal/par/... ./internal/graph/...

vet:
	$(GO) vet ./...

# Quick end-to-end benchmark smoke: one iteration of the paper-figure
# benchmarks, archived as JSON for cross-PR regression comparison.
bench-smoke:
	$(GO) test -run='^$$' -bench='^(BenchmarkFig2Decomp|BenchmarkTable1)' -benchtime=1x . \
		| $(GO) run scripts/bench2json.go -o BENCH_pr1.json

# Runtime micro-benchmarks: pooled dispatch vs the seed spawn-per-call
# implementation, scan/filter allocation behavior, CSR construction.
bench-par:
	$(GO) test -run='^$$' -bench='ForSpawn|RangeSkewed|ExclusiveSum32|FilterCompact' -benchtime=100x ./internal/par/
	$(GO) test -run='^$$' -bench='BuilderFromEdges|PartitionByLabel' -benchtime=10x ./internal/graph/

fmt:
	gofmt -w $$($(GO) list -f '{{.Dir}}' ./...)
