// Command graphstat prints Table II style statistics for the registered
// dataset analogs (or a graph file), side by side with the paper's
// published numbers. It is also the integrity tool for the binary CSR
// format: -validate fully checks a .scsr file (header, structure,
// fingerprint), and -load-only times a bare load, which is how the
// EXPERIMENTS.md mmap-vs-text comparison is measured.
//
// Usage:
//
//	graphstat [-scale 1.0] [-seed 1] [-bridges] [name ...]
//	graphstat -file graph.txt
//	graphstat -file graph.scsr -validate
//	graphstat -file graph.scsr -load-only
//
// With no names, all twelve instances are reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/dataset"
	"repro/internal/graph"
)

func main() {
	scale := flag.Float64("scale", 1.0, "dataset scale factor (1.0 = default bench size)")
	seed := flag.Uint64("seed", 1, "generator seed")
	file := flag.String("file", "", "read a graph from a file instead (edge list, METIS for .graph/.metis, binary for .scsr/.bin)")
	bridges := flag.Bool("bridges", true, "compute %BRIDGES (sequential oracle; slow on huge graphs)")
	validate := flag.Bool("validate", false, "with -file: fully validate the graph (for .scsr: header, structure, and fingerprint) and exit")
	loadOnly := flag.Bool("load-only", false, "with -file: load the graph, report timing, and exit (no statistics)")
	flag.Parse()

	if *file != "" {
		runFile(*file, *bridges, *validate, *loadOnly)
		return
	}

	names := flag.Args()
	if len(names) == 0 {
		names = dataset.Names()
	}
	fmt.Printf("%-18s %10s %10s %7s %9s %7s | paper: %10s %11s %7s %9s %7s\n",
		"instance", "|V|", "|E|", "%DEG2", "%BRIDGES", "avgdeg", "|V|", "|E|", "%DEG2", "%BRIDGES", "avgdeg")
	for _, name := range names {
		spec, ok := dataset.Get(name)
		if !ok {
			fatal(fmt.Errorf("unknown instance %q (known: %v)", name, dataset.Names()))
		}
		start := time.Now()
		g := dataset.Load(spec, *scale, *seed)
		buildTime := time.Since(start)
		s := graph.ComputeStats(g, *bridges)
		p := spec.Paper
		fmt.Printf("%-18s %10d %10d %7.1f %9.1f %7.1f | %10d %11d %7.1f %9.1f %7.1f  (build %v)\n",
			spec.Name, s.Vertices, s.Edges, s.PctDeg2, s.PctBridges, s.AvgDegree,
			p.Vertices, p.Edges, p.PctDeg2, p.PctBridges, p.AvgDegree,
			buildTime.Round(time.Millisecond))
	}
}

// runFile handles the -file modes: validate, load-only, or statistics.
func runFile(path string, bridges, validate, loadOnly bool) {
	if validate {
		if graph.IsBinaryPath(path) {
			hdr, err := graph.VerifyBinaryFile(path)
			if err != nil {
				fatal(err)
			}
			enc := "raw"
			if hdr.Compressed {
				enc = "compressed"
			}
			fmt.Printf("%s: scsr v%d %s |V|=%d arcs=%d fingerprint=%016x OK\n",
				path, hdr.Version, enc, hdr.NumVertices, hdr.NumArcs, hdr.Fingerprint)
			return
		}
		g, err := graph.LoadFile(path)
		if err != nil {
			fatal(err)
		}
		if err := g.Validate(); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: |V|=%d |E|=%d fingerprint=%016x OK\n",
			path, g.NumVertices(), g.NumEdges(), g.Fingerprint())
		return
	}

	start := time.Now()
	g, disposition, err := openTimed(path)
	if err != nil {
		fatal(err)
	}
	loadTime := time.Since(start)
	fmt.Fprintf(os.Stderr, "graphstat: loaded %s in %v (%s)\n", path, loadTime, disposition)
	if loadOnly {
		fmt.Printf("load %s |V|=%d |E|=%d seconds=%.6f disposition=%s\n",
			path, g.NumVertices(), g.NumEdges(), loadTime.Seconds(), disposition)
		return
	}
	fmt.Println(graph.ComputeStats(g, bridges))
}

// openTimed loads path, reporting how the adjacency was materialized.
func openTimed(path string) (*graph.Graph, string, error) {
	if graph.IsBinaryPath(path) {
		bg, err := graph.OpenBinary(path)
		if err != nil {
			return nil, "", err
		}
		// The mapping (if any) stays live for the process; graphstat exits
		// right after reporting.
		disposition := "heap"
		if bg.Mapped() {
			disposition = "mmap"
		}
		return bg.Graph, disposition, nil
	}
	g, err := graph.LoadFile(path)
	return g, "parse", err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphstat:", err)
	os.Exit(1)
}
