// Command graphstat prints Table II style statistics for the registered
// dataset analogs (or a graph file), side by side with the paper's
// published numbers.
//
// Usage:
//
//	graphstat [-scale 1.0] [-seed 1] [-bridges] [name ...]
//	graphstat -file graph.txt
//
// With no names, all twelve instances are reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/dataset"
	"repro/internal/graph"
)

func main() {
	scale := flag.Float64("scale", 1.0, "dataset scale factor (1.0 = default bench size)")
	seed := flag.Uint64("seed", 1, "generator seed")
	file := flag.String("file", "", "read a graph from a file instead (edge list, or METIS for .graph/.metis)")
	bridges := flag.Bool("bridges", true, "compute %BRIDGES (sequential oracle; slow on huge graphs)")
	flag.Parse()

	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		g, err := graph.ReadAuto(*file, f)
		if err != nil {
			fatal(err)
		}
		s := graph.ComputeStats(g, *bridges)
		fmt.Println(s)
		return
	}

	names := flag.Args()
	if len(names) == 0 {
		names = dataset.Names()
	}
	fmt.Printf("%-18s %10s %10s %7s %9s %7s | paper: %10s %11s %7s %9s %7s\n",
		"instance", "|V|", "|E|", "%DEG2", "%BRIDGES", "avgdeg", "|V|", "|E|", "%DEG2", "%BRIDGES", "avgdeg")
	for _, name := range names {
		spec, ok := dataset.Get(name)
		if !ok {
			fatal(fmt.Errorf("unknown instance %q (known: %v)", name, dataset.Names()))
		}
		start := time.Now()
		g := dataset.Load(spec, *scale, *seed)
		buildTime := time.Since(start)
		s := graph.ComputeStats(g, *bridges)
		p := spec.Paper
		fmt.Printf("%-18s %10d %10d %7.1f %9.1f %7.1f | %10d %11d %7.1f %9.1f %7.1f  (build %v)\n",
			spec.Name, s.Vertices, s.Edges, s.PctDeg2, s.PctBridges, s.AvgDegree,
			p.Vertices, p.Edges, p.PctDeg2, p.PctBridges, p.AvgDegree,
			buildTime.Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphstat:", err)
	os.Exit(1)
}
