// Command decomp runs one graph decomposition on a dataset instance (or a
// graph file) and prints the subgraph inventory and timing — one cell of
// the paper's Figure 2.
//
// Usage:
//
//	decomp -technique bridge lp1
//	decomp -technique rand -parts 10 germany-osm
//	decomp -technique mpx -beta 0.2 coAuthorsCiteseer
//	decomp -technique degk -k 2 -file graph.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/decomp"
)

func main() {
	technique := flag.String("technique", "degk", "bridge, rand, degk, mpx, labelprop, or multilevel")
	parts := flag.Int("parts", 10, "RAND/LABELPROP partition count")
	k := flag.Int("k", 2, "DEGk threshold")
	beta := flag.Float64("beta", decomp.DefaultMPXBeta, "MPX ball-growing rate")
	iters := flag.Int("iters", 5, "LABELPROP iterations")
	seed := flag.Uint64("seed", 1, "seed")
	scale := flag.Float64("scale", 1.0, "dataset scale factor")
	file := flag.String("file", "", "read a graph from a file (edge list, or METIS for .graph/.metis)")
	flag.Parse()

	g, err := cli.LoadGraph(*file, flag.Args(), *scale, *seed)
	if err != nil {
		fatal(err)
	}

	tech, err := decomp.ParseTechnique(*technique)
	if err != nil {
		fatal(err)
	}
	var r *decomp.Result
	switch tech {
	case decomp.TechBridge:
		r = decomp.Bridge(g)
	case decomp.TechRand:
		r = decomp.Rand(g, *parts, *seed)
	case decomp.TechDegk:
		r = decomp.Degk(g, *k)
	case decomp.TechMPX:
		r = decomp.MPX(g, *beta, *seed)
	case decomp.TechLabelProp:
		r = decomp.LabelProp(g, *parts, *iters, *seed)
	case decomp.TechMultilevel:
		r = decomp.Multilevel(g, *parts, *seed)
	default:
		fatal(fmt.Errorf("technique %v not runnable here", tech))
	}

	fmt.Printf("technique:   %v\n", r.Technique)
	fmt.Printf("graph:       |V|=%d |E|=%d\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("parts:       %d (holding %d edges)\n", len(r.Parts), r.PartEdges())
	for i, p := range r.Parts {
		if len(r.Parts) <= 8 {
			fmt.Printf("  part %d:    |V|=%d |E|=%d\n", i, p.NumVertices(), p.NumEdges())
		}
	}
	fmt.Printf("cross:       |V|=%d |E|=%d\n", r.Cross.NumVertices(), r.Cross.NumEdges())
	if r.Technique == decomp.TechBridge {
		fmt.Printf("bridges:     %d (%.2f%% of edges)\n", len(r.Bridges),
			100*float64(len(r.Bridges))/float64(g.NumEdges()))
	}
	if r.Technique == decomp.TechMPX {
		fmt.Printf("balls:       %d (%.2f%% of edges cross)\n", r.Balls,
			100*float64(r.CrossEdges())/float64(g.NumEdges()))
	}
	fmt.Printf("rounds:      %d\n", r.Rounds)
	fmt.Printf("elapsed:     %v\n", r.Elapsed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "decomp:", err)
	os.Exit(1)
}
