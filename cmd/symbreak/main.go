// Command symbreak solves one symmetry-breaking problem on one graph with a
// chosen decomposition strategy and architecture, verifies the solution,
// and prints a run report — the single-cell view of Figures 3–5.
//
// Usage:
//
//	symbreak -problem mis -strategy degk lp1
//	symbreak -problem mm -strategy rand -arch gpu rgg-n-2-23-s0
//	symbreak -problem color -strategy auto -file graph.txt
//	symbreak -problem mm lp1 -serve :9090   # live /metrics + /trace + pprof
//	symbreak -serve :9090 -corpus all       # daemon: POST /solve answers requests
//
// With -serve and a graph argument the process keeps serving after the
// solve completes (until interrupted) so the run's span tree and profiles
// can be inspected. With -serve and no graph argument symbreak runs as a
// daemon: it loads the corpus named by -corpus / -corpus-dir and answers
// POST /solve requests (see docs/API.md) until SIGINT or SIGTERM, then
// drains in-flight requests for up to -drain before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	problem := flag.String("problem", "mis", "mm, color, or mis")
	strategy := flag.String("strategy", "auto", "auto, baseline, bridge, rand, degk, or mpx")
	archFlag := flag.String("arch", "cpu", "cpu or gpu")
	parts := flag.Int("parts", 0, "RAND partition count (0 = paper default)")
	k := flag.Int("k", 0, "DEGk threshold (0 = paper's k=2)")
	beta := flag.Float64("beta", 0, "MPX ball-growing rate (0 = default)")
	seed := flag.Uint64("seed", 1, "seed")
	scale := flag.Float64("scale", 1.0, "dataset scale factor")
	file := flag.String("file", "", "read a graph from a file (edge list, METIS for .graph/.metis, or binary CSR for .scsr/.bin)")
	digest := flag.Bool("digest", false, "print the 64-bit solution digest (bit-identical across worker counts and load paths)")
	serveAddr := flag.String("serve", "", "serve HTTP on this address: /metrics, /healthz, /trace, /debug/pprof/, and — with a corpus — POST /solve; without a graph argument runs as a daemon")
	corpus := flag.String("corpus", "", "comma-separated dataset instances to serve (or \"all\"); implies daemon endpoints")
	corpusDir := flag.String("corpus-dir", "", "directory of graph files to serve (edge list, METIS for .graph/.metis, or binary CSR for .scsr/.bin — binary files mmap and skip re-hashing)")
	corpusScale := flag.Float64("corpus-scale", 1.0, "scale factor for generated corpus datasets")
	drain := flag.Duration("drain", 5*time.Second, "graceful-shutdown deadline for in-flight requests on SIGINT/SIGTERM")
	serveWorkers := flag.Int("serve-workers", 0, "admission worker budget in units (0 = number of workers)")
	serveQueue := flag.Int("serve-queue", 0, "admission queue depth (0 = default 64, negative = no queue: reject immediately under load)")
	serveQueueTimeout := flag.Duration("serve-queue-timeout", 0, "max time a request may queue for admission before 503 (0 = default 2s)")
	serveCacheBytes := flag.Int64("serve-cache-bytes", 0, "solution cache byte budget (0 = default 256 MiB, negative = disable)")
	serveUnitEdges := flag.Int64("serve-unit-edges", 0, "graph edges per admission unit (0 = default 256Ki)")
	serveMaxInline := flag.Int("serve-max-inline", 0, "max inline edges accepted by POST /solve (0 = default 1Mi)")
	logFormat := flag.String("log-format", "text", "per-request log format written to stderr by the daemon: text or json")
	slowLog := flag.Duration("slowlog", 0, "only emit request-log lines for /solve requests at least this slow (0 = log every request)")
	flightN := flag.Int("flight-recorder", 0, "completed /solve requests retained for GET /debug/requests (0 = default 256, negative = disable)")
	flag.Parse()

	oneShot := *file != "" || len(flag.Args()) > 0
	daemon := *serveAddr != "" && !oneShot
	if *serveAddr == "" && (*corpus != "" || *corpusDir != "") {
		fatal(fmt.Errorf("-corpus/-corpus-dir need -serve"))
	}

	var srv *telemetry.Server
	var svc *serve.Service
	if *serveAddr != "" {
		telemetry.Enable(true)
		trace.Enable(true)
		mux := telemetry.NewMux(telemetry.Default)
		if daemon || *corpus != "" || *corpusDir != "" {
			reqlog, err := telemetry.NewRequestLog(os.Stderr, *logFormat)
			if err != nil {
				fatal(err)
			}
			svc = serve.New(serve.Config{
				Corpus:         buildCorpus(*corpus, *corpusDir, *corpusScale, *seed),
				WorkerBudget:   *serveWorkers,
				QueueDepth:     *serveQueue,
				QueueTimeout:   *serveQueueTimeout,
				CacheBytes:     *serveCacheBytes,
				EdgesPerUnit:   *serveUnitEdges,
				MaxInlineEdges: *serveMaxInline,
				FlightRecorder: *flightN,
				Log:            reqlog,
				SlowLog:        *slowLog,
			})
			svc.Mount(mux)
		}
		var err error
		srv, err = telemetry.ServeHandler(*serveAddr, mux)
		if err != nil {
			fatal(err)
		}
		sampler := telemetry.StartRuntimeSampler(telemetry.Default, time.Second)
		defer sampler.Stop()
		fmt.Fprintf(os.Stderr, "symbreak: telemetry on %s/metrics\n", srv.URL())
	}

	if oneShot {
		runOnce(*file, flag.Args(), *scale, *seed, *problem, *strategy, *archFlag, *parts, *k, *beta, *digest)
		if srv == nil {
			return
		}
		fmt.Fprintf(os.Stderr, "symbreak: serving on %s — Ctrl-C to exit\n", srv.URL())
	} else if daemon {
		fmt.Fprintf(os.Stderr, "symbreak: serving %d corpus graphs on %s/solve — Ctrl-C to exit\n",
			svc.CorpusLen(), srv.URL())
	} else {
		// No graph and no -serve: keep the historical one-shot error.
		if _, err := cli.LoadGraph(*file, flag.Args(), *scale, *seed); err != nil {
			fatal(err)
		}
	}

	awaitShutdown(srv, svc, *drain)
}

// buildCorpus assembles the daemon's graph corpus from the -corpus and
// -corpus-dir flags.
func buildCorpus(names, dir string, scale float64, seed uint64) *serve.Corpus {
	c := serve.NewCorpus()
	if names != "" {
		if err := c.AddDatasets(strings.Split(names, ","), scale, seed); err != nil {
			fatal(err)
		}
	}
	if dir != "" {
		if err := c.AddDir(dir); err != nil {
			fatal(err)
		}
	}
	return c
}

// runOnce is the classic single-solve path: load, solve, verify, report.
func runOnce(file string, args []string, scale float64, seed uint64,
	problem, strategy, archFlag string, parts, k int, beta float64, digest bool) {
	g, err := cli.LoadGraph(file, args, scale, seed)
	if err != nil {
		fatal(err)
	}
	p, err := cli.ParseProblem(problem)
	if err != nil {
		fatal(err)
	}
	s, err := cli.ParseStrategy(strategy)
	if err != nil {
		fatal(err)
	}
	arch, err := cli.ParseArch(archFlag)
	if err != nil {
		fatal(err)
	}

	res, err := core.SolveVerified(g, p, core.Options{
		Strategy: s, Arch: arch, RandParts: parts, DegK: k, MPXBeta: beta, Seed: seed,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("graph:      |V|=%d |E|=%d\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("problem:    %v on %v\n", p, arch)
	fmt.Printf("algorithm:  %s\n", res.Report.StrategyName)
	fmt.Printf("decomp:     %v\n", res.Report.Decomp)
	fmt.Printf("solve:      %v\n", res.Report.Solve)
	fmt.Printf("total:      %v\n", res.Report.Total())
	fmt.Printf("rounds:     %d\n", res.Report.Rounds)
	if arch == core.ArchGPU {
		st := res.Report.GPUStats
		fmt.Printf("gpu:        %d launches, %d threads, sim time %v\n",
			st.Launches, st.ThreadsRun, st.SimTime)
	}
	switch {
	case res.Matching != nil:
		fmt.Printf("matching:   %d edges (verified maximal)\n", res.Matching.Cardinality())
	case res.Coloring != nil:
		fmt.Printf("coloring:   %d colors (verified proper)\n", res.Coloring.NumColors())
	case res.IndepSet != nil:
		fmt.Printf("mis:        %d vertices (verified maximal)\n", res.IndepSet.Size())
	}
	if digest {
		fmt.Printf("digest:     %016x\n", res.SolutionDigest())
	}
}

// awaitShutdown blocks until SIGINT or SIGTERM, then drains the HTTP
// server gracefully: in-flight solves get up to the drain deadline to
// finish before connections are closed hard.
func awaitShutdown(srv *telemetry.Server, svc *serve.Service, drain time.Duration) {
	if srv == nil {
		return
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	sig := <-ch
	fmt.Fprintf(os.Stderr, "symbreak: %v — draining for up to %v\n", sig, drain)
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "symbreak: shutdown: %v\n", err)
	}
	if svc != nil {
		s := svc.Snapshot()
		fmt.Fprintf(os.Stderr,
			"symbreak: served %d runs (%d coalesced, %d cache hits, %d misses, %d evictions)\n",
			s.Runs, s.Coalesced, s.CacheHits, s.CacheMisses, s.Evicted)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "symbreak:", err)
	os.Exit(1)
}
