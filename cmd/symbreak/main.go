// Command symbreak solves one symmetry-breaking problem on one graph with a
// chosen decomposition strategy and architecture, verifies the solution,
// and prints a run report — the single-cell view of Figures 3–5.
//
// Usage:
//
//	symbreak -problem mis -strategy degk lp1
//	symbreak -problem mm -strategy rand -arch gpu rgg-n-2-23-s0
//	symbreak -problem color -strategy auto -file graph.txt
//	symbreak -problem mm lp1 -serve :9090   # live /metrics + /trace + pprof
//
// With -serve the process keeps serving after the solve completes (until
// interrupted) so the run's span tree and profiles can be inspected.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	problem := flag.String("problem", "mis", "mm, color, or mis")
	strategy := flag.String("strategy", "auto", "auto, baseline, bridge, rand, degk, or mpx")
	archFlag := flag.String("arch", "cpu", "cpu or gpu")
	parts := flag.Int("parts", 0, "RAND partition count (0 = paper default)")
	k := flag.Int("k", 0, "DEGk threshold (0 = paper's k=2)")
	beta := flag.Float64("beta", 0, "MPX ball-growing rate (0 = default)")
	seed := flag.Uint64("seed", 1, "seed")
	scale := flag.Float64("scale", 1.0, "dataset scale factor")
	file := flag.String("file", "", "read a graph from a file (edge list, or METIS for .graph/.metis)")
	serve := flag.String("serve", "", "serve live telemetry over HTTP on this address (/metrics, /healthz, /trace, /debug/pprof/); keeps serving after the solve until interrupted")
	flag.Parse()

	var srv *telemetry.Server
	if *serve != "" {
		telemetry.Enable(true)
		trace.Enable(true)
		var err error
		srv, err = telemetry.Serve(*serve, telemetry.Default)
		if err != nil {
			fatal(err)
		}
		sampler := telemetry.StartRuntimeSampler(telemetry.Default, time.Second)
		defer sampler.Stop()
		fmt.Fprintf(os.Stderr, "symbreak: telemetry on %s/metrics\n", srv.URL())
	}

	g, err := cli.LoadGraph(*file, flag.Args(), *scale, *seed)
	if err != nil {
		fatal(err)
	}
	p, err := cli.ParseProblem(*problem)
	if err != nil {
		fatal(err)
	}
	s, err := cli.ParseStrategy(*strategy)
	if err != nil {
		fatal(err)
	}
	arch, err := cli.ParseArch(*archFlag)
	if err != nil {
		fatal(err)
	}

	res, err := core.Solve(g, p, core.Options{
		Strategy: s, Arch: arch, RandParts: *parts, DegK: *k, MPXBeta: *beta, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	if err := core.Verify(g, res); err != nil {
		fatal(fmt.Errorf("solution failed verification: %v", err))
	}

	fmt.Printf("graph:      |V|=%d |E|=%d\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("problem:    %v on %v\n", p, arch)
	fmt.Printf("algorithm:  %s\n", res.Report.StrategyName)
	fmt.Printf("decomp:     %v\n", res.Report.Decomp)
	fmt.Printf("solve:      %v\n", res.Report.Solve)
	fmt.Printf("total:      %v\n", res.Report.Total())
	fmt.Printf("rounds:     %d\n", res.Report.Rounds)
	if arch == core.ArchGPU {
		st := res.Report.GPUStats
		fmt.Printf("gpu:        %d launches, %d threads, sim time %v\n",
			st.Launches, st.ThreadsRun, st.SimTime)
	}
	switch {
	case res.Matching != nil:
		fmt.Printf("matching:   %d edges (verified maximal)\n", res.Matching.Cardinality())
	case res.Coloring != nil:
		fmt.Printf("coloring:   %d colors (verified proper)\n", res.Coloring.NumColors())
	case res.IndepSet != nil:
		fmt.Printf("mis:        %d vertices (verified maximal)\n", res.IndepSet.Size())
	}

	if srv != nil {
		// Keep the endpoints up for inspection: the span tree of the
		// solve stays live on /trace and profiles on /debug/pprof/.
		fmt.Fprintf(os.Stderr, "symbreak: serving on %s — Ctrl-C to exit\n", srv.URL())
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
		srv.Close()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "symbreak:", err)
	os.Exit(1)
}
