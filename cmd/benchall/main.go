// Command benchall regenerates every table and figure of the paper's
// evaluation on the synthetic dataset analogs.
//
// Usage:
//
//	benchall -exp all                 # everything (Tables I–II, Figures 2–5, extras)
//	benchall -exp fig3 -arch cpu      # one figure, one architecture
//	benchall -exp table2 -scale 0.5   # smaller instances
//	benchall -exp ablation-parts -graphs lp1,webbase-1M
//
// Experiments: table1, table2, fig2, fig3, fig4, fig5, colors,
// ablation-parts, ablation-degk, ablation-order, ablation-relabel,
// ablation-bfs, baselines, ext-biconn, remark1, quality, scaling,
// mm-progress, decomp-stats, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/harness"
	"repro/internal/par"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see doc comment)")
	arch := flag.String("arch", "both", "cpu, gpu, or both (figures only)")
	scale := flag.Float64("scale", 1.0, "dataset scale factor")
	seed := flag.Uint64("seed", 1, "random seed")
	repeats := flag.Int("repeats", 1, "timed repetitions per cell (median)")
	graphs := flag.String("graphs", "", "comma-separated instance names (default: all 12)")
	verify := flag.Bool("verify", true, "verify every solution")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	md := flag.Bool("md", false, "emit GitHub-flavored Markdown tables")
	parstats := flag.Bool("parstats", false, "collect and print parallel-runtime counters (pool dispatches, chunk steals, spawns avoided)")
	flag.Parse()

	if *parstats {
		par.EnableStats(true)
		par.ResetStats()
	}

	cfg := harness.Config{
		Scale:   *scale,
		Seed:    *seed,
		Repeats: *repeats,
		Verify:  *verify,
	}
	if *graphs != "" {
		cfg.Graphs = strings.Split(*graphs, ",")
		for _, name := range cfg.Graphs {
			if _, ok := dataset.Get(name); !ok {
				fmt.Fprintf(os.Stderr, "benchall: unknown instance %q (known: %v)\n",
					name, dataset.Names())
				os.Exit(2)
			}
		}
	}

	emit := func(t *harness.Table) {
		switch {
		case *csv:
			fmt.Print(t.CSV())
		case *md:
			fmt.Println(t.Markdown())
		default:
			fmt.Println(t.Render())
		}
	}
	archs := func() []core.Arch {
		switch *arch {
		case "cpu":
			return []core.Arch{core.ArchCPU}
		case "gpu":
			return []core.Arch{core.ArchGPU}
		default:
			return []core.Arch{core.ArchCPU, core.ArchGPU}
		}
	}

	start := time.Now()
	run := func(id string) {
		switch id {
		case "table1":
			emit(harness.Table1(cfg))
		case "table2":
			emit(harness.Table2(cfg))
		case "fig2":
			emit(harness.Fig2(cfg))
		case "fig3":
			for _, a := range archs() {
				t, _ := harness.Fig3(cfg, a)
				emit(t)
			}
		case "fig4":
			for _, a := range archs() {
				t, _ := harness.Fig4(cfg, a)
				emit(t)
			}
		case "fig5":
			for _, a := range archs() {
				t, _ := harness.Fig5(cfg, a)
				emit(t)
			}
		case "colors":
			emit(harness.ColorCounts(cfg))
		case "ablation-parts":
			emit(harness.AblationParts(cfg))
		case "ablation-degk":
			emit(harness.AblationDegk(cfg))
		case "ablation-order":
			emit(harness.AblationOrder(cfg))
		case "decomp-stats":
			emit(harness.DecompStats(cfg))
		case "mm-progress":
			emit(harness.MMProgress(cfg))
		case "ablation-relabel":
			emit(harness.RelabelAblation(cfg))
		case "ablation-bfs":
			emit(harness.BFSAblation(cfg))
		case "baselines":
			for _, tb := range harness.Baselines(cfg) {
				emit(tb)
			}
		case "ext-biconn":
			emit(harness.ExtBiconn(cfg))
		case "remark1":
			emit(harness.Remark1(cfg))
		case "quality":
			emit(harness.Quality(cfg))
		case "scaling":
			emit(harness.Scaling(cfg))
		default:
			fmt.Fprintf(os.Stderr, "benchall: unknown experiment %q\n", id)
			os.Exit(2)
		}
	}

	if *exp == "all" {
		for _, id := range []string{
			"table2", "fig2", "fig3", "fig4", "fig5", "table1", "colors",
			"decomp-stats",
		} {
			run(id)
		}
	} else {
		run(*exp)
	}
	if *parstats {
		fmt.Fprintf(os.Stderr, "benchall: %s\n", harness.RuntimeStatsNote())
	}
	fmt.Fprintf(os.Stderr, "benchall: done in %v\n", time.Since(start).Round(time.Millisecond))
}
