// Command benchall regenerates every table and figure of the paper's
// evaluation on the synthetic dataset analogs.
//
// Usage:
//
//	benchall -exp all                 # everything (Tables I–II, Figures 2–5, extras)
//	benchall -exp fig3 -arch cpu      # one figure, one architecture
//	benchall -exp table2 -scale 0.5   # smaller instances
//	benchall -exp ablation-parts -graphs lp1,webbase-1M
//
// Experiments: table1, table2, fig2, fig3, fig4, fig5, colors,
// ablation-parts, ablation-degk, ablation-order, ablation-relabel,
// ablation-bfs, baselines, ext-biconn, remark1, quality, scaling,
// mm-progress, decomp-stats, rounds-phases, all.
//
// Observability: -trace prints a per-experiment span table on stderr;
// -traceout FILE writes the same trees as JSON and -chrometrace FILE as
// Chrome trace-event JSON for Perfetto (both imply -trace); -parstats
// prints the parallel-runtime counters per experiment;
// -cpuprofile/-memprofile write pprof profiles; -serve ADDR runs a live
// telemetry HTTP server (/metrics, /healthz, /trace, /debug/pprof/) for
// the duration of the run. See DESIGN.md § Observability.
//
// Tuning: -frontier-div D (or SYMBREAK_FRONTIER_DIV=D in the environment)
// sets the edgeMap direction-switch divisor for every hybrid traversal in
// the run — pull while frontier > n/D; 0 keeps the built-in default.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/frontier"
	"repro/internal/harness"
	"repro/internal/par"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see doc comment)")
	arch := flag.String("arch", "both", "cpu, gpu, or both (figures only)")
	scale := flag.Float64("scale", 1.0, "dataset scale factor")
	seed := flag.Uint64("seed", 1, "random seed")
	repeats := flag.Int("repeats", 1, "timed repetitions per cell (median)")
	graphs := flag.String("graphs", "", "comma-separated instance names (default: all 12)")
	verify := flag.Bool("verify", true, "verify every solution")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	md := flag.Bool("md", false, "emit GitHub-flavored Markdown tables")
	parstats := flag.Bool("parstats", false, "collect and print parallel-runtime counters per experiment (pool dispatches, chunk steals, spawns avoided)")
	traceOn := flag.Bool("trace", false, "collect phase/round traces and print a span table per experiment")
	traceOut := flag.String("traceout", "", "write the traces as JSON to this file (implies -trace)")
	chromeOut := flag.String("chrometrace", "", "write the traces as Chrome trace-event JSON for Perfetto to this file (implies -trace)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	serve := flag.String("serve", "", "serve live telemetry over HTTP on this address for the duration of the run (/metrics, /healthz, /trace, /debug/pprof/)")
	frontierDiv := flag.Int("frontier-div", envFrontierDiv(),
		"edgeMap direction-switch divisor d: pull while frontier > n/d (0 = built-in default; env SYMBREAK_FRONTIER_DIV)")
	flag.Parse()

	frontier.SetPullDiv(*frontierDiv)

	if *parstats {
		par.EnableStats(true)
		par.ResetStats()
	}
	// A trace output file without -trace would silently record nothing;
	// asking for the file is asking for the trace.
	if *traceOut != "" || *chromeOut != "" {
		*traceOn = true
	}
	if *traceOn {
		trace.Enable(true)
	}
	if *serve != "" {
		telemetry.Enable(true)
		par.EnableStats(true) // feed the par_pool_* gauges
		// Keep the span tree live for the /trace endpoint. Without
		// -trace the tree accumulates over the whole run (never reset),
		// which is exactly what a mid-run snapshot wants.
		trace.Enable(true)
		srv, err := telemetry.Serve(*serve, telemetry.Default)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchall:", err)
			os.Exit(1)
		}
		defer srv.Close()
		sampler := telemetry.StartRuntimeSampler(telemetry.Default, time.Second)
		defer sampler.Stop()
		fmt.Fprintf(os.Stderr, "benchall: telemetry on %s/metrics\n", srv.URL())
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchall:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "benchall:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	cfg := harness.Config{
		Scale:   *scale,
		Seed:    *seed,
		Repeats: *repeats,
		Verify:  *verify,
	}
	if *graphs != "" {
		cfg.Graphs = strings.Split(*graphs, ",")
		for _, name := range cfg.Graphs {
			if _, ok := dataset.Get(name); !ok {
				fmt.Fprintf(os.Stderr, "benchall: unknown instance %q (known: %v)\n",
					name, dataset.Names())
				os.Exit(2)
			}
		}
	}

	emit := func(t *harness.Table) {
		switch {
		case *csv:
			fmt.Print(t.CSV())
		case *md:
			fmt.Println(t.Markdown())
		default:
			fmt.Println(t.Render())
		}
	}
	archs := func() []core.Arch {
		switch *arch {
		case "cpu":
			return []core.Arch{core.ArchCPU}
		case "gpu":
			return []core.Arch{core.ArchGPU}
		default:
			return []core.Arch{core.ArchCPU, core.ArchGPU}
		}
	}

	start := time.Now()
	dispatch := func(id string) {
		switch id {
		case "table1":
			emit(harness.Table1(cfg))
		case "table2":
			emit(harness.Table2(cfg))
		case "fig2":
			emit(harness.Fig2(cfg))
		case "fig3":
			for _, a := range archs() {
				t, _ := harness.Fig3(cfg, a)
				emit(t)
			}
		case "fig4":
			for _, a := range archs() {
				t, _ := harness.Fig4(cfg, a)
				emit(t)
			}
		case "fig5":
			for _, a := range archs() {
				t, _ := harness.Fig5(cfg, a)
				emit(t)
			}
		case "colors":
			emit(harness.ColorCounts(cfg))
		case "ablation-parts":
			emit(harness.AblationParts(cfg))
		case "ablation-degk":
			emit(harness.AblationDegk(cfg))
		case "ablation-order":
			emit(harness.AblationOrder(cfg))
		case "decomp-stats":
			emit(harness.DecompStats(cfg))
		case "mm-progress":
			emit(harness.MMProgress(cfg))
		case "rounds-phases":
			emit(harness.RoundsPhases(cfg))
		case "ablation-relabel":
			emit(harness.RelabelAblation(cfg))
		case "ablation-bfs":
			emit(harness.BFSAblation(cfg))
		case "baselines":
			for _, tb := range harness.Baselines(cfg) {
				emit(tb)
			}
		case "ext-biconn":
			emit(harness.ExtBiconn(cfg))
		case "remark1":
			emit(harness.Remark1(cfg))
		case "quality":
			emit(harness.Quality(cfg))
		case "scaling":
			emit(harness.Scaling(cfg))
		default:
			fmt.Fprintf(os.Stderr, "benchall: unknown experiment %q\n", id)
			os.Exit(2)
		}
	}

	// expTrace pairs an experiment id with its span tree for -traceout.
	type expTrace struct {
		Exp   string       `json:"exp"`
		Trace trace.Export `json:"trace"`
	}
	var traces []expTrace

	// run wraps dispatch with the per-experiment observability: counters
	// and traces are reset before and reported after each experiment, so
	// every printed table is attributable to the table above it.
	run := func(id string) {
		if *parstats {
			par.ResetStats()
		}
		if *traceOn {
			trace.Reset()
		}
		dispatch(id)
		if *parstats {
			fmt.Fprintf(os.Stderr, "benchall[%s]: %s\n", id, harness.RuntimeStatsNote())
		}
		if *traceOn {
			snap := trace.Snapshot()
			snap.Name = id
			fmt.Fprintf(os.Stderr, "== trace %s ==\n%s", id, snap.Render())
			traces = append(traces, expTrace{Exp: id, Trace: snap})
		}
	}

	if *exp == "all" {
		for _, id := range []string{
			"table2", "fig2", "fig3", "fig4", "fig5", "table1", "colors",
			"decomp-stats",
		} {
			run(id)
		}
	} else {
		run(*exp)
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchall:", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(traces); err != nil {
			fmt.Fprintln(os.Stderr, "benchall:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "benchall:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchall: wrote %d traces to %s\n", len(traces), *traceOut)
	}
	if *chromeOut != "" {
		f, err := os.Create(*chromeOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchall:", err)
			os.Exit(1)
		}
		trees := make([]trace.Export, len(traces))
		for i, t := range traces {
			trees[i] = t.Trace
		}
		if err := trace.ExportChromeTrace(f, trees...); err != nil {
			fmt.Fprintln(os.Stderr, "benchall:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "benchall:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchall: wrote Chrome trace (%d experiments) to %s — open in https://ui.perfetto.dev\n",
			len(trees), *chromeOut)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchall:", err)
			os.Exit(1)
		}
		runtime.GC() // materialize the final live set
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "benchall:", err)
			os.Exit(1)
		}
		f.Close()
	}
	fmt.Fprintf(os.Stderr, "benchall: done in %v\n", time.Since(start).Round(time.Millisecond))
}

// envFrontierDiv reads SYMBREAK_FRONTIER_DIV as the -frontier-div default,
// so batch runs can tune the direction switch without editing command
// lines. Unset or unparsable means 0 (keep the built-in default).
func envFrontierDiv() int {
	s := os.Getenv("SYMBREAK_FRONTIER_DIV")
	if s == "" {
		return 0
	}
	d, err := strconv.Atoi(s)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchall: ignoring SYMBREAK_FRONTIER_DIV=%q: %v\n", s, err)
		return 0
	}
	return d
}
