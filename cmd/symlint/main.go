// Command symlint runs the repository's static-analysis suite
// (internal/lint): determinism, trace-pairing and parallel-runtime
// invariant checks over Go package patterns.
//
// Standalone:
//
//	symlint [-json] [-C dir] [packages...]      # default pattern ./...
//
// Findings print as file:line:col: [analyzer] message, one per line, and
// the exit status is 1 when anything was found. -json emits the findings
// as a JSON array instead. -list prints the suite with each analyzer's
// doc line and scope.
//
// The command also speaks the `go vet -vettool` protocol (version and
// flag probes plus the per-package .cfg mode), so
//
//	go build -o /tmp/symlint ./cmd/symlint
//	go vet -vettool=/tmp/symlint ./...
//
// runs the same suite under the vet harness with its caching.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	// go vet -vettool probes: version (cache key), supported flags, and
	// the per-package config mode. These arrive before flag parsing.
	if len(os.Args) == 2 {
		switch {
		case os.Args[1] == "-V=full" || os.Args[1] == "-V":
			fmt.Printf("symlint version 1 symbreak-invariants\n")
			return
		case os.Args[1] == "-flags":
			fmt.Println(lint.VetFlagsJSON)
			return
		case strings.HasSuffix(os.Args[1], ".cfg"):
			os.Exit(lint.VetUnit(os.Args[1]))
		}
	}

	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	dir := flag.String("C", ".", "directory to resolve package patterns in")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
			if len(a.Scope) > 0 {
				fmt.Printf("             scope: %s\n", strings.Join(a.Scope, " "))
			}
			if len(a.Exclude) > 0 {
				fmt.Printf("             exempt: %s\n", strings.Join(a.Exclude, " "))
			}
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadPackages(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "symlint: %v\n", err)
		os.Exit(1)
	}
	diags, err := lint.Run(pkgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "symlint: %v\n", err)
		os.Exit(1)
	}
	if *jsonOut {
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "symlint: %v\n", err)
			os.Exit(1)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "symlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
