// Command symlint runs the repository's static-analysis suite
// (internal/lint): determinism, trace-pairing, parallel-runtime and
// interprocedural dataflow invariant checks over Go package patterns.
//
// Standalone:
//
//	symlint [-json] [-C dir] [-baseline file] [packages...]   # default ./...
//
// Findings print as file:line:col: [analyzer] message, one per line in a
// stable (file, line, analyzer) order, and the exit status is 1 when
// anything was found. -json emits the findings as a JSON array instead.
// -list prints the suite, sorted by name, with each analyzer's doc line
// and scope.
//
// Baselines: -baseline FILE subtracts the grandfathered findings
// recorded in FILE (keyed analyzer/file/message with counts, no line
// numbers) before deciding the exit status, and warns about stale
// entries whose findings no longer exist. -write-baseline FILE records
// the current findings as the new baseline. -write-alloc-baseline
// regenerates each package's allocgate.baseline.json from the compiler's
// current escape analysis of its //lint:hotpath functions.
//
// The command also speaks the `go vet -vettool` protocol (version and
// flag probes plus the per-package .cfg mode), so
//
//	go build -o /tmp/symlint ./cmd/symlint
//	go vet -vettool=/tmp/symlint ./...
//
// runs the same suite under the vet harness with its caching (allocgate
// excepted: a vet unit must not shell back out to the go tool).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	// go vet -vettool probes: version (cache key), supported flags, and
	// the per-package config mode. These arrive before flag parsing.
	if len(os.Args) == 2 {
		switch {
		case os.Args[1] == "-V=full" || os.Args[1] == "-V":
			fmt.Printf("symlint version 1 symbreak-invariants\n")
			return
		case os.Args[1] == "-flags":
			fmt.Println(lint.VetFlagsJSON)
			return
		case strings.HasSuffix(os.Args[1], ".cfg"):
			os.Exit(lint.VetUnit(os.Args[1]))
		}
	}

	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	dir := flag.String("C", ".", "directory to resolve package patterns in")
	list := flag.Bool("list", false, "list the analyzers and exit")
	baseline := flag.String("baseline", "", "subtract grandfathered findings recorded in this file")
	writeBaseline := flag.String("write-baseline", "", "record current findings as the baseline file and exit")
	writeAllocBaseline := flag.Bool("write-alloc-baseline", false, "regenerate allocgate.baseline.json for packages with //lint:hotpath functions and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
			if len(a.Scope) > 0 {
				fmt.Printf("             scope: %s\n", strings.Join(a.Scope, " "))
			}
			if len(a.Exclude) > 0 {
				fmt.Printf("             exempt: %s\n", strings.Join(a.Exclude, " "))
			}
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadPackages(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "symlint: %v\n", err)
		os.Exit(1)
	}

	if *writeAllocBaseline {
		wrote := 0
		for _, pkg := range pkgs {
			n, ok, err := lint.WriteAllocBaseline(pkg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "symlint: %s: %v\n", pkg.Path, err)
				os.Exit(1)
			}
			if ok {
				fmt.Printf("%s: %d grandfathered allocation(s)\n", pkg.Path, n)
				wrote++
			}
		}
		if wrote == 0 {
			fmt.Fprintln(os.Stderr, "symlint: no //lint:hotpath functions in the named packages")
		}
		return
	}

	diags, err := lint.Run(pkgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "symlint: %v\n", err)
		os.Exit(1)
	}

	if *writeBaseline != "" {
		anchor := filepath.Dir(*writeBaseline)
		if err := lint.WriteBaseline(*writeBaseline, diags, anchor); err != nil {
			fmt.Fprintf(os.Stderr, "symlint: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: %d finding(s) grandfathered\n", *writeBaseline, len(diags))
		return
	}
	if *baseline != "" {
		b, err := lint.LoadBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "symlint: %v\n", err)
			os.Exit(1)
		}
		anchor := filepath.Dir(*baseline)
		for _, e := range b.Prune(diags, anchor) {
			fmt.Fprintf(os.Stderr, "symlint: stale baseline entry (fixed? remove it): %s %s %q\n", e.Analyzer, e.File, e.Message)
		}
		diags = b.Filter(diags, anchor)
	}
	if *jsonOut {
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "symlint: %v\n", err)
			os.Exit(1)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "symlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
