// Command symload drives a running symbreak daemon with a steady stream
// of POST /solve requests and reports the latency distribution, making
// capacity planning (docs/OPS.md) a measurement instead of a guess.
//
// Usage:
//
//	symbreak -serve :9090 -corpus all &
//	symload -addr http://127.0.0.1:9090 -qps 50 -duration 10s
//
// Requests are issued open-loop at -qps (a late response does not delay
// the next request), spread over -graphs and -seeds so the cache-hit mix
// is controllable: -seeds 1 converges to pure cache hits, large -seeds
// keeps the solver busy. Latencies land in a telemetry histogram and the
// summary prints p50/p95/p99 alongside the server-visible status counts.
// Exit status is 1 if any request failed with a status other than 200 or
// the intentional overload signals 429/503.
package main

import (
	"cmp"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"slices"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// outcome is one completed request as the driver saw it: transport
// error or status, plus the daemon-assigned request id and the
// client-observed latency.
type outcome struct {
	status int
	err    error
	id     string
	dur    time.Duration
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:9090", "base URL of the symbreak daemon")
	qps := flag.Float64("qps", 20, "target request rate (open loop)")
	duration := flag.Duration("duration", 10*time.Second, "how long to drive load")
	concurrency := flag.Int("concurrency", 32, "max in-flight requests")
	problem := flag.String("problem", "mm", "problem to request: mm, color, or mis")
	algo := flag.String("algo", "auto", "algo to request: auto, baseline, bridge, rand, degk, or mpx")
	graphs := flag.String("graphs", "", "comma-separated corpus graph names to rotate over (empty = everything GET /graphs lists)")
	seeds := flag.Uint64("seeds", 8, "rotate seeds 0..seeds-1 (1 = repeat one request, converging to cache hits)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	flag.Parse()

	if *qps <= 0 {
		fatal(fmt.Errorf("-qps must be positive, got %v", *qps))
	}
	if *seeds == 0 {
		*seeds = 1
	}
	names := strings.Split(*graphs, ",")
	if *graphs == "" {
		var err error
		names, err = listGraphs(*addr, *timeout)
		if err != nil {
			fatal(err)
		}
	}
	if len(names) == 0 {
		fatal(fmt.Errorf("no graphs to request: the daemon corpus is empty and -graphs is unset"))
	}

	telemetry.Enable(true)
	reg := telemetry.NewRegistry()
	lat := reg.Histogram("symload_request_seconds", "Client-observed /solve latency.", latencyBuckets())
	client := &http.Client{Timeout: *timeout}

	results := make(chan outcome, 1024)
	sem := make(chan struct{}, *concurrency)
	var wg sync.WaitGroup

	interval := time.Duration(float64(time.Second) / *qps)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	stop := time.After(*duration)

	var launched int
	var dropped int
launch:
	for {
		select {
		case <-stop:
			break launch
		case <-ticker.C:
			select {
			case sem <- struct{}{}:
			default:
				// Open loop at capacity: count the drop rather than stall
				// the schedule.
				dropped++
				continue
			}
			i := launched
			launched++
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				body := fmt.Sprintf(`{"graph":%q,"problem":%q,"algo":%q,"seed":%d}`,
					names[i%len(names)], *problem, *algo, uint64(i)%*seeds)
				start := time.Now()
				status, id, err := postSolve(client, *addr, body)
				dur := time.Since(start)
				if telemetry.Enabled() {
					lat.Observe(dur.Seconds())
				}
				results <- outcome{status, err, id, dur}
			}()
		}
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	codes := map[int]int{}
	var netErrs int
	var done []outcome
	for r := range results {
		if r.err != nil {
			netErrs++
			continue
		}
		codes[r.status]++
		if r.id != "" {
			done = append(done, r)
		}
	}

	fmt.Printf("requests:   %d launched, %d dropped (concurrency cap), %d transport errors\n",
		launched, dropped, netErrs)
	var keys []int
	for c := range codes {
		keys = append(keys, c)
	}
	sort.Ints(keys)
	for _, c := range keys {
		fmt.Printf("status %d: %d\n", c, codes[c])
	}
	if lat.Count() > 0 {
		fmt.Printf("latency:    p50=%s p95=%s p99=%s (n=%d)\n",
			fmtSeconds(lat.Quantile(0.5)), fmtSeconds(lat.Quantile(0.95)),
			fmtSeconds(lat.Quantile(0.99)), lat.Count())
	}
	printSlowest(done, *addr)

	bad := netErrs
	for c, n := range codes {
		if c != http.StatusOK && c != http.StatusTooManyRequests && c != http.StatusServiceUnavailable {
			bad += n
		}
	}
	if bad > 0 {
		fatal(fmt.Errorf("%d requests failed with unexpected statuses", bad))
	}
}

// slowestShown caps the p99-tail listing so a long run stays readable.
const slowestShown = 8

// printSlowest names the requests at or above the exact p99 of the
// collected latencies, slowest first, so a tail worth explaining can be
// pulled straight from the daemon flight recorder by id.
func printSlowest(done []outcome, addr string) {
	if len(done) == 0 {
		return
	}
	slices.SortFunc(done, func(a, b outcome) int {
		if a.dur != b.dur {
			return cmp.Compare(b.dur, a.dur)
		}
		return strings.Compare(a.id, b.id)
	})
	n := (len(done) + 99) / 100 // ceil(1%): the p99-and-worse tail
	if n > slowestShown {
		n = slowestShown
	}
	fmt.Printf("slowest:    %d of %d requests at p99+ — GET %s/debug/requests/<id> for phases and spans\n",
		n, len(done), addr)
	for _, r := range done[:n] {
		fmt.Printf("  %s  %v  status %d\n", r.id, r.dur.Round(10*time.Microsecond), r.status)
	}
}

// listGraphs asks the daemon for its corpus.
func listGraphs(addr string, timeout time.Duration) ([]string, error) {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(addr + "/graphs")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /graphs: status %d", resp.StatusCode)
	}
	var gr struct {
		Graphs []struct {
			Name string `json:"name"`
		} `json:"graphs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&gr); err != nil {
		return nil, fmt.Errorf("GET /graphs: %w", err)
	}
	names := make([]string, len(gr.Graphs))
	for i, g := range gr.Graphs {
		names[i] = g.Name
	}
	return names, nil
}

func postSolve(client *http.Client, addr, body string) (status int, id string, err error) {
	resp, err := client.Post(addr+"/solve", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining for connection reuse
	return resp.StatusCode, resp.Header.Get("X-Symbreak-Request-Id"), nil
}

// latencyBuckets spans 100µs to ~100s logarithmically, fine enough that
// interpolated p99s are meaningful for both cache hits and cold solves.
func latencyBuckets() []float64 {
	var b []float64
	for v := 1e-4; v < 120; v *= math.Sqrt2 {
		b = append(b, v)
	}
	return b
}

func fmtSeconds(s float64) string {
	if math.IsNaN(s) {
		return "n/a"
	}
	return time.Duration(s * float64(time.Second)).Round(10 * time.Microsecond).String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "symload:", err)
	os.Exit(1)
}
