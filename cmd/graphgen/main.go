// Command graphgen writes a dataset analog (or a raw generator output) to
// an edge-list file that cmd/decomp and cmd/symbreak can read back.
//
// Usage:
//
//	graphgen -out lp1.txt lp1
//	graphgen -out kron.txt -generator kron -n 65536 -param 16
//	graphgen -out rgg.txt -generator rgg -n 100000 -param 15
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	metis := flag.Bool("metis", false, "write METIS adjacency format instead of edge list")
	generator := flag.String("generator", "", "raw generator: kron, rgg, road, prefattach, community, banded, lp, web")
	n := flag.Int("n", 100000, "raw generator size")
	param := flag.Float64("param", 8, "raw generator shape parameter (edge factor / avg degree / out degree)")
	seed := flag.Uint64("seed", 1, "seed")
	scale := flag.Float64("scale", 1.0, "dataset scale factor")
	flag.Parse()

	var g *graph.Graph
	switch {
	case *generator != "":
		var err error
		g, err = rawGenerate(*generator, *n, *param, *seed)
		if err != nil {
			fatal(err)
		}
	case flag.NArg() == 1:
		spec, ok := dataset.Get(flag.Arg(0))
		if !ok {
			fatal(fmt.Errorf("unknown instance %q (known: %v)", flag.Arg(0), dataset.Names()))
		}
		g = spec.Build(*scale, *seed)
	default:
		fatal(fmt.Errorf("need an instance name or -generator"))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	writeFn := graph.Write
	if *metis {
		writeFn = graph.WriteMETIS
	}
	if err := writeFn(w, g); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "graphgen: wrote |V|=%d |E|=%d\n", g.NumVertices(), g.NumEdges())
}

func rawGenerate(name string, n int, param float64, seed uint64) (*graph.Graph, error) {
	switch name {
	case "kron":
		scale := 0
		for (1 << uint(scale)) < n {
			scale++
		}
		return gen.Kron(scale, int(param), seed), nil
	case "rgg":
		return gen.RGG(n, gen.DegreeRadius(n, param), seed), nil
	case "road":
		side := 1
		for side*side < n {
			side++
		}
		return gen.Road(side, side, 4, 0.3, seed), nil
	case "prefattach":
		return gen.PrefAttach(n, int(param), seed), nil
	case "community":
		return gen.Community(n, 25, int(param), 1, seed), nil
	case "banded":
		return gen.Banded(n, 20, int(param), 0.35, seed), nil
	case "lp":
		return gen.LP(n, seed), nil
	case "web":
		return gen.Web(n, seed), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}
