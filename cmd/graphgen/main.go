// Command graphgen writes a dataset analog (or a raw generator output) to
// a graph file that cmd/decomp and cmd/symbreak can read back: a text edge
// list, METIS adjacency, or the binary CSR format (.scsr, optionally
// compressed). It also transcodes between the formats and, for inputs too
// large to hold in memory, builds .scsr files out-of-core from a streamed
// generator or text source.
//
// Usage:
//
//	graphgen -out lp1.txt lp1
//	graphgen -out kron.scsr -format bin -generator kron -n 65536 -param 16
//	graphgen -convert kron.txt -out kron.scsr -compress
//	graphgen -oocore -out big.scsr -generator kron -n 8388608 -param 12
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	out := flag.String("out", "", "output file (default stdout; required for -format bin with -oocore)")
	metis := flag.Bool("metis", false, "write METIS adjacency format (alias for -format metis)")
	format := flag.String("format", "", "output format: text, metis, or bin (default: by -out extension, else text)")
	compress := flag.Bool("compress", false, "with -format bin: delta+varint-compress the adjacency")
	convert := flag.String("convert", "", "transcode an existing graph file instead of generating")
	oocore := flag.Bool("oocore", false, "build the .scsr out-of-core (streamed source, bounded memory; requires -out)")
	chunk := flag.Int("chunk", 0, "out-of-core: arcs held in memory per sort chunk (0 = default)")
	tmpdir := flag.String("tmpdir", "", "out-of-core: spill directory (default: system temp)")
	generator := flag.String("generator", "", "raw generator: kron, rgg, road, prefattach, community, banded, lp, web")
	n := flag.Int("n", 100000, "raw generator size")
	param := flag.Float64("param", 8, "raw generator shape parameter (edge factor / avg degree / out degree)")
	seed := flag.Uint64("seed", 1, "seed")
	scale := flag.Float64("scale", 1.0, "dataset scale factor")
	flag.Parse()

	f := resolveFormat(*format, *metis, *out)

	if *oocore {
		if f != "bin" {
			fatal(fmt.Errorf("-oocore only builds binary CSR output (use -format bin or a .scsr -out)"))
		}
		if *out == "" {
			fatal(fmt.Errorf("-oocore needs -out"))
		}
		hdr, err := runOutOfCore(*out, *convert, *generator, *n, *param, *seed,
			graph.ExtOptions{TmpDir: *tmpdir, ChunkArcs: *chunk, Compress: *compress})
		if err != nil {
			fatal(err)
		}
		summarize(*out, hdr.NumVertices, hdr.NumArcs/2)
		return
	}

	var g *graph.Graph
	switch {
	case *convert != "":
		var err error
		g, err = graph.LoadFile(*convert)
		if err != nil {
			fatal(err)
		}
	case *generator != "":
		var err error
		g, err = rawGenerate(*generator, *n, *param, *seed)
		if err != nil {
			fatal(err)
		}
	case flag.NArg() == 1:
		spec, ok := dataset.Get(flag.Arg(0))
		if !ok {
			fatal(fmt.Errorf("unknown instance %q (known: %v)", flag.Arg(0), dataset.Names()))
		}
		g = spec.Build(*scale, *seed)
	default:
		fatal(fmt.Errorf("need an instance name, -generator, or -convert"))
	}

	if err := writeOut(*out, f, g, *compress); err != nil {
		fatal(err)
	}
	summarize(*out, g.NumVertices(), g.NumEdges())
}

// resolveFormat picks the output format: explicit -format wins, then the
// legacy -metis switch, then the -out extension.
func resolveFormat(format string, metis bool, out string) string {
	if format != "" {
		switch format {
		case "text", "metis", "bin":
			return format
		}
		fatal(fmt.Errorf("unknown format %q (want text, metis, or bin)", format))
	}
	if metis {
		return "metis"
	}
	if graph.IsBinaryPath(out) {
		return "bin"
	}
	switch filepath.Ext(out) {
	case ".graph", ".metis":
		return "metis"
	}
	return "text"
}

// writeOut serializes g to path (stdout when empty) in the given format.
func writeOut(path, format string, g *graph.Graph, compress bool) error {
	if format == "bin" && path != "" {
		return graph.WriteBinaryFile(path, g, graph.BinaryOptions{Compress: compress})
	}
	w := os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch format {
	case "bin":
		return graph.WriteBinary(w, g, graph.BinaryOptions{Compress: compress})
	case "metis":
		return graph.WriteMETIS(w, g)
	default:
		return graph.Write(w, g)
	}
}

// runOutOfCore builds a .scsr via the external builder from either a text
// edge-list source (-convert) or the streaming kron generator.
func runOutOfCore(out, convert, generator string, n int, param float64, seed uint64, opt graph.ExtOptions) (graph.BinaryHeader, error) {
	switch {
	case convert != "":
		if graph.IsBinaryPath(convert) || filepath.Ext(convert) == ".graph" || filepath.Ext(convert) == ".metis" {
			return graph.BinaryHeader{}, fmt.Errorf("-oocore -convert streams text edge lists only (got %s)", convert)
		}
		f, err := os.Open(convert)
		if err != nil {
			return graph.BinaryHeader{}, err
		}
		defer f.Close()
		ts, err := graph.NewTextStream(bufio.NewReaderSize(f, 1<<20))
		if err != nil {
			return graph.BinaryHeader{}, err
		}
		return graph.BuildBinaryExternal(out, ts, opt)
	case generator == "kron":
		kscale := 0
		for (1 << uint(kscale)) < n {
			kscale++
		}
		return graph.BuildBinaryExternal(out, gen.NewKronStream(kscale, int(param), seed), opt)
	case generator != "":
		return graph.BinaryHeader{}, fmt.Errorf("generator %q has no streaming form; -oocore supports kron (or -convert from text)", generator)
	default:
		return graph.BinaryHeader{}, fmt.Errorf("-oocore needs -generator kron or -convert")
	}
}

// summarize prints the tool's stderr summary: sizes, output bytes, and the
// process peak RSS (the out-of-core path's headline number).
func summarize(out string, nv int, ne int64) {
	line := fmt.Sprintf("graphgen: wrote |V|=%d |E|=%d", nv, ne)
	if out != "" {
		if fi, err := os.Stat(out); err == nil {
			line += fmt.Sprintf(" bytes=%d", fi.Size())
		}
	}
	if hwm := peakRSSKB(); hwm > 0 {
		line += fmt.Sprintf(" peakRSS=%dkB", hwm)
	}
	fmt.Fprintln(os.Stderr, line)
}

// peakRSSKB reports the process high-water-mark RSS in kB from
// /proc/self/status, or 0 where unavailable (non-Linux).
func peakRSSKB() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, ln := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(ln, "VmHWM:"); ok {
			var kb int64
			if _, err := fmt.Sscanf(strings.TrimSpace(strings.TrimSuffix(rest, "kB")), "%d", &kb); err == nil {
				return kb
			}
		}
	}
	return 0
}

func rawGenerate(name string, n int, param float64, seed uint64) (*graph.Graph, error) {
	switch name {
	case "kron":
		scale := 0
		for (1 << uint(scale)) < n {
			scale++
		}
		return gen.Kron(scale, int(param), seed), nil
	case "rgg":
		return gen.RGG(n, gen.DegreeRadius(n, param), seed), nil
	case "road":
		side := 1
		for side*side < n {
			side++
		}
		return gen.Road(side, side, 4, 0.3, seed), nil
	case "prefattach":
		return gen.PrefAttach(n, int(param), seed), nil
	case "community":
		return gen.Community(n, 25, int(param), 1, seed), nil
	case "banded":
		return gen.Banded(n, 20, int(param), 0.35, seed), nil
	case "lp":
		return gen.LP(n, seed), nil
	case "web":
		return gen.Web(n, seed), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}
