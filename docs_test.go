package repro

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// Docs-consistency gate: docs/OPS.md and docs/API.md are operator-facing
// documentation for cmd/symbreak, cmd/symload and the serving layer, and
// they drift silently unless machine-checked. These tests cross-check the
// documented flags, endpoints, metrics and headers against the source
// that implements them, in both directions where the doc claims to be
// exhaustive.

func mustRead(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	return string(b)
}

var flagDeclRe = regexp.MustCompile(`flag\.(?:String|Bool|Int|Int64|Uint|Uint64|Float64|Duration)\("([^"]+)"`)

// declaredFlags extracts the flag names a command defines.
func declaredFlags(t *testing.T, path string) map[string]bool {
	t.Helper()
	src := mustRead(t, path)
	flags := map[string]bool{}
	for _, m := range flagDeclRe.FindAllStringSubmatch(src, -1) {
		flags[m[1]] = true
	}
	if len(flags) == 0 {
		t.Fatalf("no flag declarations found in %s", path)
	}
	return flags
}

// TestOpsFlagsExist checks every `-flag` token the docs mention against
// the flag declarations of the serving commands, and — for the two
// commands the OPS guide documents exhaustively — that every declared
// flag is documented.
func TestOpsFlagsExist(t *testing.T) {
	symbreak := declaredFlags(t, "cmd/symbreak/main.go")
	symload := declaredFlags(t, "cmd/symload/main.go")
	docs := mustRead(t, "docs/OPS.md") + mustRead(t, "docs/API.md")

	// Doc → source: every inline-code `-flag` must be a real flag.
	tokRe := regexp.MustCompile("`-([a-z][a-z0-9-]*)`")
	seen := map[string]bool{}
	for _, m := range tokRe.FindAllStringSubmatch(docs, -1) {
		name := m[1]
		seen[name] = true
		if !symbreak[name] && !symload[name] {
			t.Errorf("docs mention flag -%s, which neither symbreak nor symload declares", name)
		}
	}

	// Source → doc: the OPS flag reference claims completeness for both
	// commands, so an undocumented flag is a doc bug.
	for name := range symbreak {
		if !seen[name] {
			t.Errorf("cmd/symbreak flag -%s is not documented in docs/OPS.md", name)
		}
	}
	for name := range symload {
		if !seen[name] {
			t.Errorf("cmd/symload flag -%s is not documented in docs/OPS.md", name)
		}
	}
}

// TestOpsMetricsExist checks the symbreak_serve_* metric vocabulary both
// ways: every registered metric is documented, every documented metric
// token matches a registration.
func TestOpsMetricsExist(t *testing.T) {
	src := mustRead(t, "internal/serve/server.go")
	ops := mustRead(t, "docs/OPS.md")

	nameRe := regexp.MustCompile(`"(symbreak_serve_[a-z_]+)"`)
	registered := map[string]bool{}
	for _, m := range nameRe.FindAllStringSubmatch(src, -1) {
		registered[m[1]] = true
	}
	if len(registered) < 10 {
		t.Fatalf("suspiciously few serve metrics registered: %d", len(registered))
	}
	for name := range registered {
		if !strings.Contains(ops, name) {
			t.Errorf("metric %s is registered but not documented in docs/OPS.md", name)
		}
	}

	// Doc → source. Tokens may be prefixes (shell-grep examples like
	// symbreak_serve_cache_), so substring-match against the source.
	tokRe := regexp.MustCompile(`symbreak_serve_[a-z_]+`)
	for _, tok := range tokRe.FindAllString(ops, -1) {
		if !strings.Contains(src, tok) {
			t.Errorf("docs/OPS.md mentions %s, which matches no registered metric", tok)
		}
	}
}

// TestDocEndpointsExist checks that every endpoint path the docs name is
// actually registered by the serving or telemetry mux.
func TestDocEndpointsExist(t *testing.T) {
	src := mustRead(t, "internal/serve/server.go") + mustRead(t, "internal/telemetry/server.go")
	docs := mustRead(t, "docs/OPS.md") + mustRead(t, "docs/API.md")

	pathRe := regexp.MustCompile("`(/[a-z][a-z/]*/?)`")
	found := 0
	for _, m := range pathRe.FindAllStringSubmatch(docs, -1) {
		path := m[1]
		found++
		if !strings.Contains(src, `"`+path+`"`) {
			t.Errorf("docs name endpoint %s, which no mux registers", path)
		}
	}
	if found == 0 {
		t.Fatal("no endpoint paths found in docs — extraction broken?")
	}

	// Source → doc: every path the muxes register must be documented
	// (the observability surface is operator-facing by construction).
	docPaths := map[string]bool{}
	for _, m := range pathRe.FindAllStringSubmatch(docs, -1) {
		docPaths[m[1]] = true
	}
	regRe := regexp.MustCompile(`HandleFunc\("(/[^"]+)"`)
	for _, m := range regRe.FindAllStringSubmatch(src, -1) {
		path := m[1]
		if docPaths[path] || docPaths[strings.TrimSuffix(path, "/")] {
			continue
		}
		// A documented prefix route (trailing slash, like /debug/pprof/)
		// covers the endpoints registered under it.
		covered := false
		for doc := range docPaths {
			if strings.HasSuffix(doc, "/") && strings.HasPrefix(path, doc) {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("mux registers %s, which the docs never mention", path)
		}
	}

	// The API reference must cover the solve surface and its contract
	// headers.
	api := mustRead(t, "docs/API.md")
	for _, want := range []string{
		"POST /solve", "GET /graphs", "GET /debug/requests",
		"X-Symbreak-Cache", "X-Symbreak-Request-Id",
		"format=chrome", "429", "503", "Retry-After",
	} {
		if !strings.Contains(api, want) {
			t.Errorf("docs/API.md does not mention %q", want)
		}
	}
	if !strings.Contains(mustRead(t, "internal/serve/solve.go"), "X-Symbreak-Cache") {
		t.Error("X-Symbreak-Cache header documented but not set by internal/serve")
	}
	if !strings.Contains(mustRead(t, "internal/serve/request.go"), "X-Symbreak-Request-Id") {
		t.Error("X-Symbreak-Request-Id header documented but not set by internal/serve")
	}
}
