// Register allocation by interference-graph coloring — one of the
// scheduling applications the paper's introduction motivates for COLOR.
//
// The example builds a synthetic straight-line program of virtual
// registers with random live ranges, forms the interference graph (two
// virtuals interfere when their live ranges overlap), colors it with
// COLOR-Degk, and reports how many machine registers the allocation needs
// versus the baseline VB coloring.
package main

import (
	"cmp"
	"fmt"
	"log"
	"slices"

	"repro/internal/coloring"
	"repro/internal/graph"
	"repro/internal/par"
)

// liveRange is a virtual register alive on [start, end).
type liveRange struct {
	start, end int32
}

func main() {
	const (
		numVirtuals = 40000
		programLen  = 400000
		maxLive     = 24 // max live-range length
	)
	rng := par.NewRNG(7)

	// Random live ranges; most are short (locals), a few span far
	// (loop-carried values), which produces the low-degree fringe that
	// COLOR-Degk exploits.
	ranges := make([]liveRange, numVirtuals)
	for i := range ranges {
		start := int32(rng.Intn(programLen))
		length := int32(1 + rng.Intn(maxLive))
		if rng.Intn(10) == 0 {
			length *= 8 // occasional long-lived value
		}
		ranges[i] = liveRange{start, start + length}
	}

	g := interferenceGraph(ranges)
	fmt.Printf("interference graph: %d virtuals, %d interferences, avg degree %.1f, %d deg≤2\n",
		g.NumVertices(), g.NumEdges(), g.AvgDegree(),
		par.Count(g.NumVertices(), func(i int) bool { return g.Degree(int32(i)) <= 2 }))

	// Baseline VB vs COLOR-Degk (the paper's CPU winner).
	eng := coloring.NewVB()
	base, baseStats := eng.Fresh(g)
	if err := coloring.Verify(g, base); err != nil {
		log.Fatal(err)
	}
	dec, rep := coloring.ColorDegk(g, 2, eng)
	if err := coloring.Verify(g, dec); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("VB baseline:  %3d registers, %d rounds\n", base.NumColors(), baseStats.Rounds)
	fmt.Printf("COLOR-Degk:   %3d registers, %d rounds, decomp %v + solve %v\n",
		dec.NumColors(), rep.Rounds, rep.Decomp, rep.Solve)

	// An allocation is usable iff no two interfering virtuals share a
	// register; Verify proved that. Show a few assignments.
	fmt.Println("\nsample allocation:")
	for v := int32(0); v < 5; v++ {
		fmt.Printf("  v%-5d live [%d,%d) → r%d\n", v, ranges[v].start, ranges[v].end, dec.Color[v])
	}
}

// interferenceGraph builds the overlap graph of the live ranges with an
// endpoint sweep: sort endpoints, keep the active set, connect each newly
// opened range to everything currently live.
func interferenceGraph(ranges []liveRange) *graph.Graph {
	type event struct {
		at    int32
		open  bool
		which int32
	}
	events := make([]event, 0, 2*len(ranges))
	for i, r := range ranges {
		events = append(events,
			event{r.start, true, int32(i)}, event{r.end, false, int32(i)})
	}
	// Closes sort before opens at equal positions, so touching ranges do
	// not interfere.
	slices.SortFunc(events, func(a, b event) int {
		if a.at != b.at {
			return cmp.Compare(a.at, b.at)
		}
		switch {
		case !a.open && b.open:
			return -1
		case a.open && !b.open:
			return 1
		default:
			return 0
		}
	})
	b := graph.NewBuilder(len(ranges))
	active := map[int32]bool{}
	for _, e := range events {
		if !e.open {
			delete(active, e.which)
			continue
		}
		for other := range active {
			b.AddEdge(e.which, other)
		}
		active[e.which] = true
	}
	return b.Build()
}
