// Sparse-matrix row–column matching — the scientific-computing application
// the paper motivates MM with (Vastenhouw & Bisseling, 2D data distribution
// for parallel sparse matrix–vector multiplication).
//
// The example builds a random rectangular sparse matrix pattern, forms the
// row–column bipartite graph, and compares:
//
//   - the *maximum* matching (Hopcroft–Karp) — the matrix's structural
//     rank, the gold standard a direct solver wants for a zero-free
//     diagonal, and
//   - the *maximal* matchings the paper's parallel algorithms produce (GM
//     baseline and MM-Rand), which trade optimality for parallel speed and
//     are guaranteed to reach at least half the structural rank.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/bipartite"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/par"
)

func main() {
	const (
		rows = 60000
		cols = 50000
		nnz  = 400000
	)
	// Random pattern with a skewed column distribution (a few dense
	// columns, like constraint matrices have).
	rng := par.NewRNG(17)
	b := graph.NewBuilder(rows + cols)
	for i := 0; i < nnz; i++ {
		r := rng.Intn(rows)
		c := rng.Intn(cols)
		if rng.Intn(4) == 0 {
			c = rng.Intn(cols / 50) // dense column block
		}
		b.AddEdge(int32(r), int32(rows+c))
	}
	g := b.Build()
	side := make([]bool, rows+cols)
	for c := 0; c < cols; c++ {
		side[rows+c] = true
	}
	fmt.Printf("matrix pattern: %d×%d, %d structural nonzeros\n\n", rows, cols, g.NumEdges())

	// Exact structural rank.
	start := time.Now()
	opt, err := bipartite.MaxMatching(g, side)
	if err != nil {
		log.Fatal(err)
	}
	rank := opt.Cardinality()
	fmt.Printf("Hopcroft–Karp:  structural rank %d   (%v, exact)\n", rank, time.Since(start).Round(time.Millisecond))

	// Parallel maximal matchings.
	start = time.Now()
	gm, gmStats := matching.GM(g)
	fmt.Printf("GM:             %d matched (%.1f%% of rank), %d rounds, %v\n",
		gm.Cardinality(), 100*float64(gm.Cardinality())/float64(rank), gmStats.Rounds,
		time.Since(start).Round(time.Millisecond))

	start = time.Now()
	mr, rep := matching.MMRand(g, 10, 3, matching.GMSolver())
	fmt.Printf("MM-Rand:        %d matched (%.1f%% of rank), %d rounds, %v\n",
		mr.Cardinality(), 100*float64(mr.Cardinality())/float64(rank), rep.Rounds,
		rep.Total().Round(time.Millisecond))

	// The guarantee every maximal matching carries.
	for name, m := range map[string]*matching.Matching{"GM": gm, "MM-Rand": mr} {
		if err := matching.Verify(g, m); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if 2*m.Cardinality() < rank {
			log.Fatalf("%s: below the 1/2-approximation bound", name)
		}
	}
	fmt.Println("\nboth maximal matchings verified: maximal, and ≥ ½ · structural rank")
}
