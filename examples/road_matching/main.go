// Multilevel graph coarsening on a road network via maximal matching — the
// partitioning application the paper cites for MM (Her & Pellegrini).
//
// The example generates a road-class graph (long degree-2 chains, large
// diameter), computes a maximal matching with the baseline GM and with the
// paper's Table I winner MM-Rand, then contracts the matched pairs to
// produce the next coarsening levels, reporting times, rounds and the
// coarsening ratio. (On road graphs the two run close — the paper's big
// MM-Rand wins come from the rgg instances, where GM's vain tendency
// explodes the round count; try swapping the generator to see it.)
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/par"
)

func main() {
	g := gen.Road(120, 120, 5, 0.4, 3)
	fmt.Printf("road network: %d junctions, %d segments, avg degree %.1f\n\n",
		g.NumVertices(), g.NumEdges(), g.AvgDegree())

	// Baseline GM: lowest-id handshake matching — pays the vain tendency
	// on the long chains.
	start := time.Now()
	gm, gmStats := matching.GM(g)
	gmTime := time.Since(start)
	if err := matching.Verify(g, gm); err != nil {
		log.Fatal(err)
	}

	// MM-Rand (Algorithm 5) with the paper's 10 partitions.
	mr, rep := matching.MMRand(g, 10, 1, matching.GMSolver())
	if err := matching.Verify(g, mr); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("GM:       %8v  %6d rounds  %d matched\n", gmTime, gmStats.Rounds, gm.Cardinality())
	fmt.Printf("MM-Rand:  %8v  %6d rounds  %d matched  (decomp %v)\n",
		rep.Total(), rep.Rounds, mr.Cardinality(), rep.Decomp)

	// Coarsen: contract matched pairs, keep one endpoint as the
	// representative, rebuild the quotient graph.
	coarse := contract(g, mr)
	fmt.Printf("\ncoarsened: %d → %d vertices (ratio %.2f), %d edges\n",
		g.NumVertices(), coarse.NumVertices(),
		float64(g.NumVertices())/float64(coarse.NumVertices()), coarse.NumEdges())

	// A second level, as a multilevel partitioner would do.
	m2, _ := matching.MMRand(coarse, 10, 2, matching.GMSolver())
	coarse2 := contract(coarse, m2)
	fmt.Printf("level 2:   %d → %d vertices, %d edges\n",
		coarse.NumVertices(), coarse2.NumVertices(), coarse2.NumEdges())
}

// contract builds the quotient graph after contracting every matched pair.
func contract(g *graph.Graph, m *matching.Matching) *graph.Graph {
	n := g.NumVertices()
	// Representative of v: the smaller endpoint of its matched pair.
	rep := make([]int32, n)
	for v := int32(0); int(v) < n; v++ {
		w := m.Mate[v]
		if w != matching.Unmatched && w < v {
			rep[v] = w
		} else {
			rep[v] = v
		}
	}
	// Dense renumbering of representatives.
	isRep := make([]int64, n)
	par.For(n, func(i int) {
		if rep[i] == int32(i) {
			isRep[i] = 1
		}
	})
	rank := par.ExclusiveSum(isRep)
	b := graph.NewBuilder(int(rank[n]))
	for _, e := range g.Edges() {
		cu, cv := int32(rank[rep[e.U]]), int32(rank[rep[e.V]])
		b.AddEdge(cu, cv) // self loops from contracted pairs drop automatically
	}
	return b.Build()
}
