// Wireless broadcast scheduling on a random geometric graph via repeated
// MIS — the topology-control application the paper cites for MIS.
//
// Nodes within radio range interfere, so a round may only activate an
// independent set. Repeatedly extracting a maximal independent set from
// the residual graph yields an interference-free broadcast schedule; the
// number of rounds is the schedule length. The example compares LubyMIS
// with the decomposition-accelerated MIS-Deg2 as the per-round solver and
// validates the schedule.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mis"
)

func main() {
	// A field deployment: a dense urban core (random geometric placement)
	// plus relay chains running out to remote sensors — the chains are the
	// degree ≤ 2 structure that MIS-Deg2 peels off cheaply.
	const coreNodes = 40000
	core := gen.RGG(coreNodes, gen.DegreeRadius(coreNodes, 12), 9)
	g := gen.PadChains(core, 25000, 8, 11)
	fmt.Printf("radio network: %d nodes, %d interference pairs, avg degree %.1f\n\n",
		g.NumVertices(), g.NumEdges(), g.AvgDegree())

	// One round's worth of scheduling — a single MIS — is where the DEG2
	// decomposition pays: the relay chains are peeled off by the cheap
	// bounded-degree solver before LubyMIS sees the rest.
	start := time.Now()
	one, lubyStats := mis.Luby(g, 4)
	fmt.Printf("single MIS, LubyMIS:  %8v  %2d rounds  %d nodes\n",
		time.Since(start).Round(time.Microsecond), lubyStats.Rounds, one.Size())
	start = time.Now()
	one2, rep := mis.MISDeg2(g, mis.LubySolver(4))
	fmt.Printf("single MIS, MIS-Deg2: %8v  %2d rounds  %d nodes (decomp %v)\n\n",
		time.Since(start).Round(time.Microsecond), rep.Rounds, one2.Size(), rep.Decomp)

	for _, solver := range []struct {
		name string
		run  func(*graph.Graph) *mis.IndepSet
	}{
		{"LubyMIS", func(h *graph.Graph) *mis.IndepSet {
			s, _ := mis.Luby(h, 4)
			return s
		}},
		{"MIS-Deg2", func(h *graph.Graph) *mis.IndepSet {
			s, _ := mis.MISDeg2(h, mis.LubySolver(4))
			return s
		}},
	} {
		start := time.Now()
		schedule := buildSchedule(g, solver.run)
		elapsed := time.Since(start)
		if err := validateSchedule(g, schedule); err != nil {
			log.Fatalf("%s: %v", solver.name, err)
		}
		fmt.Printf("%-9s: %d rounds, %v total\n", solver.name, len(schedule), elapsed)
	}
}

// buildSchedule repeatedly extracts an MIS from the residual graph until
// every node has a slot. Returns one vertex set (of original ids) per round.
func buildSchedule(g *graph.Graph, solve func(*graph.Graph) *mis.IndepSet) [][]int32 {
	n := g.NumVertices()
	assigned := make([]bool, n)
	remaining := n
	var schedule [][]int32

	// Residual view: induce on unassigned vertices each round.
	current := graph.IdentitySub(g)
	for remaining > 0 {
		set := solve(current.G)
		var round []int32
		for lv, in := range set.In {
			if in {
				gv := current.ToGlobal[lv]
				round = append(round, gv)
				assigned[gv] = true
				remaining--
			}
		}
		schedule = append(schedule, round)
		member := make([]bool, n)
		for v := 0; v < n; v++ {
			member[v] = !assigned[v]
		}
		sub := graph.InducedSubgraph(g, member)
		current = sub
	}
	return schedule
}

// validateSchedule checks that every node transmits exactly once and that
// no round activates two interfering nodes.
func validateSchedule(g *graph.Graph, schedule [][]int32) error {
	seen := make([]int, g.NumVertices())
	for r, round := range schedule {
		inRound := map[int32]bool{}
		for _, v := range round {
			seen[v]++
			inRound[v] = true
		}
		for _, v := range round {
			for _, w := range g.Neighbors(v) {
				if inRound[w] {
					return fmt.Errorf("round %d activates interfering nodes %d and %d", r, v, w)
				}
			}
		}
	}
	for v, c := range seen {
		if c != 1 {
			return fmt.Errorf("node %d scheduled %d times", v, c)
		}
	}
	return nil
}
