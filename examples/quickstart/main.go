// Quickstart: build a graph, solve all three symmetry-breaking problems
// with the paper's best decomposition picked automatically (Table I), and
// verify every solution.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
)

func main() {
	// A web-crawl-like graph: hubs plus long degree-2 chains — the shape
	// the decomposition algorithms exploit.
	g := gen.Web(50000, 42)
	fmt.Printf("graph: %d vertices, %d edges, avg degree %.1f\n\n",
		g.NumVertices(), g.NumEdges(), g.AvgDegree())

	for _, p := range []core.Problem{core.ProblemMM, core.ProblemColor, core.ProblemMIS} {
		// StrategyAuto applies Table I: RAND for matching, DEGk for
		// coloring and MIS on the CPU.
		res, err := core.Solve(g, p, core.Options{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		if err := core.Verify(g, res); err != nil {
			log.Fatalf("%v: %v", p, err)
		}
		fmt.Printf("%-6v via %-12s  decomp %-10v solve %-10v",
			p, res.Report.StrategyName, res.Report.Decomp, res.Report.Solve)
		switch {
		case res.Matching != nil:
			fmt.Printf("  → %d matched edges\n", res.Matching.Cardinality())
		case res.Coloring != nil:
			fmt.Printf("  → %d colors\n", res.Coloring.NumColors())
		case res.IndepSet != nil:
			fmt.Printf("  → MIS of %d vertices\n", res.IndepSet.Size())
		}
	}

	// The same solve on the virtual GPU substrate.
	res, err := core.Solve(g, core.ProblemMIS, core.Options{Arch: core.ArchGPU, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGPU MIS via %s: %d kernel launches, simulated device time %v\n",
		res.Report.StrategyName, res.Report.GPUStats.Launches, res.Report.GPUStats.SimTime)
}
