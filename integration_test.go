package repro

// Cross-module integration tests: random graphs through the full public
// pipeline (generate → decompose → solve every problem × strategy × arch →
// verify), plus property-based checks with testing/quick tying the module
// layers together.

import (
	"testing"
	"testing/quick"

	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/decomp"
	"repro/internal/graph"
	"repro/internal/par"
)

// quickGraph decodes fuzz bytes into a small simple graph.
func quickGraph(n int, edges []uint16) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < len(edges); i += 2 {
		b.AddEdge(int32(int(edges[i])%n), int32(int(edges[i+1])%n))
	}
	return b.Build()
}

func TestPropertyAllSolversAllGraphs(t *testing.T) {
	machine := bsp.New()
	cfgs := []core.Options{
		{Strategy: core.StrategyBaseline},
		{Strategy: core.StrategyBridge},
		{Strategy: core.StrategyRand, RandParts: 3},
		{Strategy: core.StrategyDegk},
		{Strategy: core.StrategyBaseline, Arch: core.ArchGPU, Machine: machine},
		{Strategy: core.StrategyDegk, Arch: core.ArchGPU, Machine: machine},
	}
	check := func(raw []uint16) bool {
		g := quickGraph(40, raw)
		for _, p := range []core.Problem{core.ProblemMM, core.ProblemColor, core.ProblemMIS} {
			for _, opt := range cfgs {
				opt.Seed = 5
				res, err := core.Solve(g, p, opt)
				if err != nil {
					t.Logf("%v: %v", p, err)
					return false
				}
				if err := core.Verify(g, res); err != nil {
					t.Logf("%v/%v/%v: %v", p, opt.Strategy, opt.Arch, err)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDecompositionsConserveEdges(t *testing.T) {
	check := func(raw []uint16, k uint8) bool {
		g := quickGraph(60, raw)
		parts := int(k)%6 + 1
		for _, r := range []*decomp.Result{
			decomp.Bridge(g),
			decomp.Rand(g, parts, 3),
			decomp.Degk(g, 2),
			decomp.LabelProp(g, parts, 3, 3),
		} {
			if r.PartEdges()+r.CrossEdges() != g.NumEdges() {
				t.Logf("%v: %d + %d != %d", r.Technique, r.PartEdges(), r.CrossEdges(), g.NumEdges())
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySolutionSizesSane(t *testing.T) {
	// Cross-solution sanity: on any graph, |MIS| ≥ n / (Δ+1), a maximal
	// matching has ≥ |MIS-complement|/2-ish edges... keep to the two
	// robust bounds: |MIS| ≥ n/(Δ+1) and colors ≤ Δ+1.
	check := func(raw []uint16) bool {
		g := quickGraph(50, raw)
		n := int64(g.NumVertices())
		maxDeg := int64(g.MaxDegree())
		misRes, _ := core.Solve(g, core.ProblemMIS, core.Options{Seed: 2})
		if misRes.IndepSet.Size()*(maxDeg+1) < n {
			t.Logf("MIS %d too small for n=%d Δ=%d", misRes.IndepSet.Size(), n, maxDeg)
			return false
		}
		// Δ+1 bounds the greedy baseline. (COLOR-Degk's disjoint G_L
		// palette may exceed it — that is the paper's measured ~3% color
		// overhead, checked separately in the harness tests.)
		colRes, _ := core.Solve(g, core.ProblemColor, core.Options{Strategy: core.StrategyBaseline, Seed: 2})
		if int64(colRes.Coloring.NumColors()) > maxDeg+1 {
			t.Logf("colors %d exceed Δ+1 = %d", colRes.Coloring.NumColors(), maxDeg+1)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDatasetInstancesThroughAutoSolve(t *testing.T) {
	// Every registered instance solves and verifies under the Table I
	// strategies on both architectures, at a tiny scale.
	defer dataset.ClearCache()
	machine := bsp.New()
	for _, spec := range dataset.All() {
		g := dataset.Load(spec, 0.02, 3)
		for _, p := range []core.Problem{core.ProblemMM, core.ProblemColor, core.ProblemMIS} {
			for _, arch := range []core.Arch{core.ArchCPU, core.ArchGPU} {
				res, err := core.Solve(g, p, core.Options{Arch: arch, Seed: 1, Machine: machine})
				if err != nil {
					t.Fatalf("%s/%v/%v: %v", spec.Name, p, arch, err)
				}
				if err := core.Verify(g, res); err != nil {
					t.Fatalf("%s/%v/%v: %v", spec.Name, p, arch, err)
				}
			}
		}
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	// All seeded algorithms must give identical results under any worker
	// count (the determinism claim in DESIGN.md §5).
	g := quickGraph(200, func() []uint16 {
		r := par.NewRNG(9)
		out := make([]uint16, 1200)
		for i := range out {
			out[i] = uint16(r.Uint64())
		}
		return out
	}())
	type snapshot struct {
		mis   []bool
		color []int32
		mate  []int32
	}
	run := func() snapshot {
		misRes, _ := core.Solve(g, core.ProblemMIS, core.Options{Strategy: core.StrategyRand, Seed: 4})
		colRes, _ := core.Solve(g, core.ProblemColor, core.Options{Strategy: core.StrategyDegk, Seed: 4})
		mmRes, _ := core.Solve(g, core.ProblemMM, core.Options{Strategy: core.StrategyRand, Seed: 4})
		return snapshot{misRes.IndepSet.In, colRes.Coloring.Color, mmRes.Matching.Mate}
	}
	par.SetWorkers(1)
	one := run()
	par.SetWorkers(7)
	seven := run()
	par.SetWorkers(0)
	def := run()
	for i := range one.mis {
		if one.mis[i] != seven.mis[i] || one.mis[i] != def.mis[i] {
			t.Fatalf("MIS differs at %d across worker counts", i)
		}
		if one.color[i] != seven.color[i] || one.color[i] != def.color[i] {
			t.Fatalf("coloring differs at %d across worker counts", i)
		}
		if one.mate[i] != seven.mate[i] || one.mate[i] != def.mate[i] {
			t.Fatalf("matching differs at %d across worker counts", i)
		}
	}
}
