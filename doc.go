// Package repro is a Go reproduction of "A Study of Graph Decomposition
// Algorithms for Parallel Symmetry Breaking" (Nayyaroddeen, Gambhir,
// Kothapalli; IPPS 2017).
//
// The library implements the paper's three light-weight graph
// decompositions (BRIDGE, RAND, DEGk), the three symmetry-breaking problems
// they accelerate (maximal matching, vertex coloring, maximal independent
// set), the multicore and simulated-manycore baselines (GM, LMAX, VB, EB,
// LubyMIS), synthetic analogs of the paper's twelve datasets, and a harness
// that regenerates every table and figure of the evaluation.
//
// Layout:
//
//	internal/core       the public Solve API (problem × strategy × arch)
//	internal/decomp     BRIDGE / RAND / DEGk (paper §II) + MPX ball growing
//	internal/frontier   Ligra-style subsets + direction-optimizing EdgeMap
//	internal/matching   GM, LMAX, Israeli–Itai, MM-Bridge/Rand/Degk/Biconn (§III)
//	internal/coloring   VB, EB, Jones–Plassmann, COLOR-Bridge/Rand/Degk/Biconn (§IV)
//	internal/mis        LubyMIS, greedy, KP bounded-degree, MIS-Bridge/Rand/Deg2/Biconn (§V)
//	internal/graph      CSR graphs, subgraph extraction, statistics, I/O
//	internal/gen        synthetic generators for the six dataset classes
//	internal/dataset    the twelve Table II analogs
//	internal/par        goroutine parallel runtime (the "CPU")
//	internal/bsp        bulk-synchronous virtual manycore (the "GPU")
//	internal/bfs        BFS (plain + hybrid) on the frontier engine
//	internal/biconn     biconnected components / articulation points
//	internal/bipartite  Hopcroft–Karp maximum matching (quality oracle)
//	internal/multilevel matching-based k-way partitioner (METIS stand-in)
//	internal/seq        sequential greedy references
//	internal/harness    experiment grid runner and table/figure formatters
//	internal/trace      phase/round span tracing (zero-cost when disabled) + Perfetto export
//	internal/telemetry  live metrics registry, samplers, /metrics + pprof HTTP server
//	internal/serve      HTTP solve service: corpus, coalescing, solution cache, admission control
//	internal/benchfmt   go test -bench output parsing + regression compare
//	internal/lint       symlint analyzers: determinism / trace / runtime invariants
//	internal/cli        shared command-line plumbing
//	cmd/benchall        regenerate every table and figure
//	cmd/symbreak        solve one problem on one instance, or serve a corpus as a daemon
//	cmd/symload         load driver: hammer a symbreak daemon, report p50/p95/p99
//	cmd/decomp          run one decomposition
//	cmd/graphgen        write dataset instances to edge-list files
//	cmd/graphstat       Table II statistics
//	cmd/symlint         static-analysis driver (standalone or go vet -vettool)
//	scripts/            bench2json.go (bench → JSON + regression gate), serve_smoke.sh
//	docs/               OPS.md (operator guide), API.md (HTTP solve API reference)
//	examples/           quickstart + four domain scenarios
//
// See DESIGN.md for the system inventory and per-experiment index,
// EXPERIMENTS.md for paper-vs-measured results, docs/OPS.md for running
// the solve daemon, and docs/API.md for its HTTP contract.
package repro
