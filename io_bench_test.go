package repro

// Benchmarks for the binary graph I/O path (DESIGN.md § Binary graph
// format): opening a raw .scsr via mmap versus parallel-decoding the
// compressed encoding. Both write their file once per process into a
// shared temp dir and then time only the load. LoadBinary touches every
// adjacency word after opening, so the mmap number includes faulting the
// pages in, not just the (constant-time) map call.

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// ioBenchFiles lazily writes the benchmark graph in both encodings.
var ioBenchFiles = struct {
	once      sync.Once
	raw, comp string
	err       error
}{}

func ioBenchSetup(b *testing.B) (raw, comp string) {
	b.Helper()
	f := &ioBenchFiles
	f.once.Do(func() {
		dir, err := os.MkdirTemp("", "scsr-bench-")
		if err != nil {
			f.err = err
			return
		}
		g := gen.Kron(15, 8, 1)
		f.raw = filepath.Join(dir, "bench-raw.scsr")
		f.comp = filepath.Join(dir, "bench-comp.scsr")
		if err := graph.WriteBinaryFile(f.raw, g, graph.BinaryOptions{}); err != nil {
			f.err = err
			return
		}
		if f.err = graph.WriteBinaryFile(f.comp, g, graph.BinaryOptions{Compress: true}); f.err != nil {
			return
		}
		// Warm both files (page cache, heap sizing) so the single-iteration
		// bench-smoke run measures steady-state load, not first-touch cost.
		for _, p := range []string{f.raw, f.comp} {
			bg, err := graph.OpenBinary(p)
			if err != nil {
				f.err = err
				return
			}
			sumAdjacency(bg.Graph)
			if err := bg.Close(); err != nil {
				f.err = err
				return
			}
		}
	})
	if f.err != nil {
		b.Fatal(f.err)
	}
	return f.raw, f.comp
}

// sumAdjacency forces every adjacency word to be read.
func sumAdjacency(g *graph.Graph) int64 {
	var sum int64
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Neighbors(int32(v)) {
			sum += int64(w)
		}
	}
	return sum
}

func BenchmarkLoadBinary(b *testing.B) {
	raw, _ := ioBenchSetup(b)
	var sink int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bg, err := graph.OpenBinary(raw)
		if err != nil {
			b.Fatal(err)
		}
		sink += sumAdjacency(bg.Graph)
		if err := bg.Close(); err != nil {
			b.Fatal(err)
		}
	}
	_ = sink
}

func BenchmarkDecodeAdjacency(b *testing.B) {
	_, comp := ioBenchSetup(b)
	var sink int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bg, err := graph.OpenBinary(comp)
		if err != nil {
			b.Fatal(err)
		}
		sink += sumAdjacency(bg.Graph)
		if err := bg.Close(); err != nil {
			b.Fatal(err)
		}
	}
	_ = sink
}
