//go:build ignore

// bench2json converts `go test -bench` text output on stdin into a JSON
// array on stdout (or the file named by -o). One object per benchmark
// line: name, iterations, ns/op, and any extra metrics (B/op, allocs/op).
//
// Usage: go test -bench=... | go run scripts/bench2json.go -o BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iterations"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // tee: keep the human-readable log visible
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 || f[3] != "ns/op" {
			continue
		}
		iters, err1 := strconv.ParseInt(f[1], 10, 64)
		ns, err2 := strconv.ParseFloat(f[2], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		r := result{Name: f[0], Iters: iters, NsPerOp: ns}
		for i := 4; i+1 < len(f); i += 2 {
			if v, err := strconv.ParseFloat(f[i], 64); err == nil {
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[f[i+1]] = v
			}
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	if results == nil {
		results = []result{} // emit [] rather than null when nothing parsed
	}

	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench2json: wrote %d results to %s\n", len(results), *out)
}
