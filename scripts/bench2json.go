//go:build ignore

// bench2json converts `go test -bench` text output on stdin into the
// BENCH_*.json archive format, and gates regressions against an archived
// baseline. The parsing and comparison logic lives in internal/benchfmt
// (where it is unit-tested); this file is the command-line wrapper.
//
// Convert (default mode) — one JSON object per benchmark line (name,
// iterations, ns/op, extra metrics), teeing the raw log to stdout:
//
//	go test -bench=... | go run scripts/bench2json.go -o BENCH.json
//
// Compare mode — read a fresh run from stdin, diff it against a baseline
// file, print the per-benchmark table, and exit non-zero when any
// benchmark regressed past the threshold (improvements always pass;
// repeats from -count=N are collapsed to the per-name minimum first):
//
//	go test -bench=... -count=3 | \
//	  go run scripts/bench2json.go -compare BENCH_pr1.json -threshold 2
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/benchfmt"
)

func main() {
	out := flag.String("o", "", "output file for JSON results (default stdout)")
	compare := flag.String("compare", "", "baseline BENCH_*.json to gate against (enables compare mode)")
	threshold := flag.Float64("threshold", 2.0, "compare mode: max allowed slowdown in percent")
	flag.Parse()

	fresh, err := benchfmt.Parse(os.Stdin, os.Stdout) // tee keeps the log visible
	if err != nil {
		fatal(err)
	}

	if *compare != "" {
		f, err := os.Open(*compare)
		if err != nil {
			fatal(err)
		}
		baseline, err := benchfmt.ReadJSON(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *compare, err))
		}
		c := benchfmt.Compare(baseline, fresh, *threshold)
		fmt.Print(c.Render())
		if c.Failed() {
			os.Exit(1)
		}
		return
	}

	if *out == "" {
		if err := benchfmt.WriteJSON(os.Stdout, fresh); err != nil {
			fatal(err)
		}
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := benchfmt.WriteJSON(f, fresh); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "bench2json: wrote %d results to %s\n", len(fresh), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench2json:", err)
	os.Exit(1)
}
