#!/usr/bin/env bash
# convert-smoke: end-to-end check of the binary CSR (.scsr) pipeline.
# Generates a graph as a text edge list, converts it to raw and compressed
# .scsr (both in-memory and out-of-core), validates every artifact with
# graphstat -validate, round-trips .scsr back to text byte-identically,
# and verifies the solver digest is bit-identical across all load paths.
# Artifacts land in CONVERT_SMOKE_ARTIFACTS (if set) so CI keeps a
# sample .scsr file.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="$(mktemp -d)"
cleanup() {
    rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN/graphgen" ./cmd/graphgen
go build -o "$BIN/graphstat" ./cmd/graphstat
go build -o "$BIN/symbreak" ./cmd/symbreak

# 1. Generate a mid-size kron graph as text.
"$BIN/graphgen" -out "$BIN/g.txt" -generator kron -n 4096 -param 8 -seed 3

# 2. Convert to raw and compressed binary; both must validate with the
#    same fingerprint.
"$BIN/graphgen" -convert "$BIN/g.txt" -out "$BIN/g.scsr"
"$BIN/graphgen" -convert "$BIN/g.txt" -out "$BIN/g.comp.scsr" -compress
RAW_FP="$("$BIN/graphstat" -file "$BIN/g.scsr" -validate | grep -o 'fingerprint=[0-9a-f]*')"
COMP_FP="$("$BIN/graphstat" -file "$BIN/g.comp.scsr" -validate | grep -o 'fingerprint=[0-9a-f]*')"
if [ "$RAW_FP" != "$COMP_FP" ]; then
    echo "convert-smoke: raw/compressed fingerprint mismatch ($RAW_FP vs $COMP_FP)" >&2
    exit 1
fi
echo "convert-smoke: raw and compressed .scsr validate ($RAW_FP)"

# 3. Binary -> text must reproduce the original edge list byte for byte.
"$BIN/graphgen" -convert "$BIN/g.scsr" -out "$BIN/g.roundtrip.txt" -format text
cmp "$BIN/g.txt" "$BIN/g.roundtrip.txt"
echo "convert-smoke: scsr -> text round-trip is byte-identical"

# 4. The out-of-core builder must produce byte-identical files to the
#    in-memory writer, for both encodings (small -chunk forces real
#    spill/merge activity).
"$BIN/graphgen" -oocore -convert "$BIN/g.txt" -out "$BIN/g.ooc.scsr" -chunk 4096
cmp "$BIN/g.scsr" "$BIN/g.ooc.scsr"
"$BIN/graphgen" -oocore -convert "$BIN/g.txt" -out "$BIN/g.ooc.comp.scsr" -chunk 4096 -compress
cmp "$BIN/g.comp.scsr" "$BIN/g.ooc.comp.scsr"
echo "convert-smoke: out-of-core build is byte-identical to in-memory"

# 5. The solver digest must be bit-identical across text, raw-mmap, and
#    compressed-decode load paths.
digest() {
    "$BIN/symbreak" -file "$1" -problem mis -strategy degk -seed 5 -digest \
        | grep -o 'digest: *[0-9a-f]*' | tr -s ' '
}
D_TXT="$(digest "$BIN/g.txt")"
D_RAW="$(digest "$BIN/g.scsr")"
D_COMP="$(digest "$BIN/g.comp.scsr")"
if [ "$D_TXT" != "$D_RAW" ] || [ "$D_TXT" != "$D_COMP" ]; then
    echo "convert-smoke: digest mismatch across load paths (text=$D_TXT raw=$D_RAW compressed=$D_COMP)" >&2
    exit 1
fi
echo "convert-smoke: solver ${D_TXT} identical across text/raw/compressed"

ART="${CONVERT_SMOKE_ARTIFACTS:-}"
if [ -n "$ART" ]; then
    mkdir -p "$ART"
    cp "$BIN/g.scsr" "$BIN/g.comp.scsr" "$ART/"
    echo "convert-smoke: artifacts in ${ART}"
fi
echo "convert-smoke: OK"
