#!/usr/bin/env bash
# serve-smoke: end-to-end check of the serving layer. Boots the symbreak
# daemon with a small generated corpus, drives it with symload for a few
# seconds at low QPS, verifies that symbreak_serve_requests_total moved on
# /metrics, and shuts the daemon down gracefully (SIGTERM + drain).
# symload itself fails the run on any status other than 200 or the
# intentional overload signals 429/503.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${SERVE_SMOKE_PORT:-19917}"
ADDR="http://127.0.0.1:${PORT}"
BIN="$(mktemp -d)"
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN/symbreak" ./cmd/symbreak
go build -o "$BIN/symload" ./cmd/symload

"$BIN/symbreak" -serve "127.0.0.1:${PORT}" -corpus lp1,c-73 -corpus-scale 0.1 &
DAEMON_PID=$!

for _ in $(seq 1 50); do
    curl -fsS "${ADDR}/healthz" >/dev/null 2>&1 && break
    if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
        echo "serve-smoke: daemon exited before becoming healthy" >&2
        exit 1
    fi
    sleep 0.2
done
curl -fsS "${ADDR}/healthz" >/dev/null

"$BIN/symload" -addr "$ADDR" -qps 25 -duration 3s -seeds 4

REQS="$(curl -fsS "${ADDR}/metrics" \
    | awk '$1 ~ /^symbreak_serve_requests_total/ { sum += $2 } END { printf "%d", sum }')"
if [ "$REQS" -lt 1 ]; then
    echo "serve-smoke: symbreak_serve_requests_total did not move (got ${REQS})" >&2
    exit 1
fi
echo "serve-smoke: ${REQS} requests served"

# The flight recorder must have recorded the symload traffic, and its
# detail + Chrome-trace views must serve. Dump all three into
# SERVE_SMOKE_ARTIFACTS (if set) so CI keeps an inspectable trace.
ART="${SERVE_SMOKE_ARTIFACTS:-$BIN/flight}"
mkdir -p "$ART"
curl -fsS "${ADDR}/debug/requests" > "$ART/requests.json"
if ! grep -q '"id":"' "$ART/requests.json"; then
    echo "serve-smoke: /debug/requests is empty after load" >&2
    exit 1
fi
# Pick a miss (a request that ran the solver): those carry span trees,
# so the Chrome export below has something to render. Field order in a
# record is id, …, cache, with no nested braces between the two.
REQ_ID="$(grep -o '"id":"[0-9a-f]*"[^{}]*"cache":"miss"' "$ART/requests.json" \
    | head -n 1 | sed 's/^"id":"\([0-9a-f]*\)".*/\1/')"
if [ -z "$REQ_ID" ]; then
    echo "serve-smoke: no cache-miss record in /debug/requests" >&2
    exit 1
fi
curl -fsS "${ADDR}/debug/requests/${REQ_ID}" > "$ART/request-${REQ_ID}.json"
grep -q '"phases"' "$ART/request-${REQ_ID}.json" || {
    echo "serve-smoke: request detail for ${REQ_ID} has no phases" >&2
    exit 1
}
curl -fsS "${ADDR}/debug/requests/${REQ_ID}?format=chrome" > "$ART/request-${REQ_ID}.chrome.json"
grep -q '"traceEvents"' "$ART/request-${REQ_ID}.chrome.json" || {
    echo "serve-smoke: chrome export for ${REQ_ID} is malformed" >&2
    exit 1
}
echo "serve-smoke: flight recorder populated (request ${REQ_ID}; artifacts in ${ART})"

kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
DAEMON_PID=""
echo "serve-smoke: daemon drained cleanly"
