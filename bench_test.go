package repro

// Benchmarks regenerating the paper's tables and figures, one per artifact
// (DESIGN.md §4 maps experiment ids to these benchmarks). Each iteration
// runs the corresponding harness experiment over three representative
// instances at a reduced scale so `go test -bench=.` completes in minutes;
// cmd/benchall runs the full twelve-instance grid at scale 1.
//
// The interesting output is the ns/op of each experiment plus the shape
// notes the harness prints; absolute times are machine-dependent.

import (
	"testing"

	"repro/internal/bfs"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/decomp"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/matching"
	"repro/internal/mis"
)

// benchCfg is the shared benchmark configuration: three instances covering
// the regimes the paper's findings hinge on (chain-heavy lp1, geometric
// rgg, web-crawl webbase).
func benchCfg() harness.Config {
	return harness.Config{
		Scale:   0.15,
		Seed:    1,
		Repeats: 1,
		Graphs:  []string{"lp1", "rgg-n-2-23-s0", "webbase-1M"},
	}
}

func BenchmarkTable1Summary(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		harness.Table1(cfg)
	}
}

func BenchmarkTable2Stats(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		harness.Table2(cfg)
	}
}

func BenchmarkFig2Decomp(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		harness.Fig2(cfg)
	}
}

func BenchmarkFig3aMMCPU(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		harness.Fig3(cfg, core.ArchCPU)
	}
}

func BenchmarkFig3bMMGPU(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		harness.Fig3(cfg, core.ArchGPU)
	}
}

func BenchmarkFig4aColorCPU(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		harness.Fig4(cfg, core.ArchCPU)
	}
}

func BenchmarkFig4bColorGPU(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		harness.Fig4(cfg, core.ArchGPU)
	}
}

func BenchmarkFig5aMISCPU(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		harness.Fig5(cfg, core.ArchCPU)
	}
}

func BenchmarkFig5bMISGPU(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		harness.Fig5(cfg, core.ArchGPU)
	}
}

func BenchmarkColorCounts(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		harness.ColorCounts(cfg)
	}
}

func BenchmarkAblationPartitions(b *testing.B) {
	cfg := benchCfg()
	cfg.Graphs = []string{"lp1"}
	for i := 0; i < b.N; i++ {
		harness.AblationParts(cfg)
	}
}

func BenchmarkAblationDegK(b *testing.B) {
	cfg := benchCfg()
	cfg.Graphs = []string{"lp1"}
	for i := 0; i < b.N; i++ {
		harness.AblationDegk(cfg)
	}
}

func BenchmarkAblationOrder(b *testing.B) {
	cfg := benchCfg()
	cfg.Graphs = []string{"lp1"}
	for i := 0; i < b.N; i++ {
		harness.AblationOrder(cfg)
	}
}

func BenchmarkMMProgress(b *testing.B) {
	cfg := benchCfg()
	cfg.Graphs = []string{"rgg-n-2-23-s0"}
	for i := 0; i < b.N; i++ {
		harness.MMProgress(cfg)
	}
}

func BenchmarkAblationRelabel(b *testing.B) {
	cfg := benchCfg()
	cfg.Graphs = []string{"rgg-n-2-23-s0"}
	for i := 0; i < b.N; i++ {
		harness.RelabelAblation(cfg)
	}
}

func BenchmarkAblationBFS(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		harness.BFSAblation(cfg)
	}
}

func BenchmarkBaselines(b *testing.B) {
	cfg := benchCfg()
	cfg.Graphs = []string{"webbase-1M"}
	for i := 0; i < b.N; i++ {
		harness.Baselines(cfg)
	}
}

func BenchmarkExtBiconn(b *testing.B) {
	cfg := benchCfg()
	cfg.Graphs = []string{"webbase-1M"}
	for i := 0; i < b.N; i++ {
		harness.ExtBiconn(cfg)
	}
}

func BenchmarkRemark1(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		harness.Remark1(cfg)
	}
}

func BenchmarkQuality(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		harness.Quality(cfg)
	}
}

// Per-component microbenchmarks: the individual decompositions and solvers
// on one mid-size instance, for profiling regressions.

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	spec, _ := dataset.Get("webbase-1M")
	return dataset.Load(spec, 0.25, 1)
}

func BenchmarkDecompBridge(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decomp.Bridge(g)
	}
}

func BenchmarkDecompRand(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decomp.Rand(g, 10, 1)
	}
}

func BenchmarkDecompDegk(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decomp.Degk(g, 2)
	}
}

func BenchmarkDecompMPX(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decomp.MPX(g, decomp.DefaultMPXBeta, 1)
	}
}

// BenchmarkFrontierHybridBFS times the direction-optimizing engine end to
// end (the BFS every BRIDGE decomposition starts with); the pull-threshold
// sweep lives in internal/frontier's BenchmarkEdgeMapBFSDiv.
func BenchmarkFrontierHybridBFS(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bfs.ForestHybrid(g)
	}
}

func BenchmarkSolverGM(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matching.GM(g)
	}
}

func BenchmarkSolverMMRand(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matching.MMRand(g, 10, 1, matching.GMSolver())
	}
}

func BenchmarkSolverLuby(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mis.Luby(g, 1)
	}
}

func BenchmarkSolverMISDeg2(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mis.MISDeg2(g, mis.LubySolver(1))
	}
}

func BenchmarkSolveAuto(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Solve(g, core.ProblemMIS, core.Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
