package decomp

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/trace"
)

// Indices of the two DEGk parts in Result.Parts.
const (
	// DegkLow is the index of G_L, the subgraph induced by vertices of
	// degree at most k.
	DegkLow = 0
	// DegkHigh is the index of G_H, the subgraph induced by vertices of
	// degree more than k.
	DegkHigh = 1
)

// Degk runs the paper's Algorithm 3 (Dcmp_Degreek): split the vertex set by
// the degree threshold k into V_L (degree ≤ k) and V_H (degree > k). The
// result's Parts are [G_L, G_H] and Cross is G_C, the edge-induced subgraph
// of the edges joining V_L and V_H. The paper always uses k = 2, for which
// G_L is a disjoint union of paths and cycles.
func Degk(g *graph.Graph, k int) *Result {
	if k < 0 {
		panic(fmt.Sprintf("decomp: Degk with k=%d", k))
	}
	r := &Result{Technique: TechDegk}
	sp := trace.Begin("decomp/DEGk")
	r.Elapsed = timed(func() {
		n := g.NumVertices()
		label := make([]int32, n)
		par.For(n, func(i int) {
			if g.Degree(int32(i)) > int32(k) {
				label[i] = DegkHigh
			} else {
				label[i] = DegkLow
			}
		})
		r.Parts, r.Cross = graph.PartitionByLabel(g, label, 2)
		r.Label = label
		r.Rounds = 1
	})
	if trace.Enabled() {
		traceResult(sp, r)
	}
	sp.End()
	return r
}
