package decomp

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/trace"
)

// MPX is the Miller–Peng–Xu exponential-shift ball-growing decomposition
// (Miller, Peng & Xu, SPAA 2013), an extension beyond the paper's three
// techniques. Every vertex draws an exponential shift delta_v ~ Exp(beta)
// and starts growing a ball at time maxDelta − delta_v; balls grow one hop
// per round via the frontier engine, and a vertex reached by several balls
// in the same round joins the one with the smallest center id. With high
// probability each ball has radius O(log n / beta) and the number of
// inter-ball edges is O(beta · m) in expectation — beta trades ball count
// against cross edges, where RAND's k trades part count against them.

// DefaultMPXBeta is the default ball-growing rate. The quality sweep in
// EXPERIMENTS.md picks it: small enough that balls are coarse, large
// enough that the start times stagger and round counts stay low.
const DefaultMPXBeta = 0.2

// MPXInfo is the raw product of the ball-growing phase, before any
// subgraph materialization — what the mask-based solvers and the validity
// tests consume.
type MPXInfo struct {
	// Center[v] is the center vertex of v's ball (Center[c] == c for a
	// center c).
	Center []int32
	// Round[v] is the round at which v was claimed: its ball's start
	// round for a center, and always one more than some same-ball
	// neighbor's Round otherwise — so Round[v] − Round[Center[v]] bounds
	// dist(v, Center[v]).
	Round []int32
	// Delta holds the exponential shifts; MaxDelta their maximum.
	Delta    []float64
	MaxDelta float64
	// Balls is the number of balls grown; Rounds the number of parallel
	// rounds executed.
	Balls  int
	Rounds int
	// Elapsed is the ball-growing wall time.
	Elapsed time.Duration
}

// MPXGrow runs the ball-growing phase. Shifts are pure hashes of
// (seed, v), claims take the minimum center id, and the per-round frontier
// comes from the frontier engine, so the assignment is bit-identical under
// any worker count.
func MPXGrow(g *graph.Graph, beta float64, seed uint64) *MPXInfo {
	if beta <= 0 {
		panic(fmt.Sprintf("decomp: MPX with beta=%v", beta))
	}
	info := &MPXInfo{}
	sp := trace.Begin("mpx-grow")
	info.Elapsed = timed(func() {
		n := g.NumVertices()
		delta := make([]float64, n)
		par.For(n, func(i int) {
			// Uniform in (0, 1], so the log is finite.
			u := (float64(par.Hash64(seed, int64(i))>>11) + 1) / (1 << 53)
			delta[i] = -math.Log(u) / beta
		})
		maxDelta := par.MaxIndexed(n, 0, func(i int) float64 { return delta[i] })

		// start[v] = floor(maxDelta − delta_v): the round at which v
		// begins growing its own ball unless another ball claimed it
		// first. Fractional shift differences within a round resolve by
		// the min-center-id tie break below.
		start := make([]int32, n)
		par.For(n, func(i int) {
			start[i] = int32(maxDelta - delta[i])
		})

		// Vertices ordered by (start round, id): a cursor walks this once,
		// seeding each round's new centers in ascending id order.
		order := make([]int32, n)
		par.Iota(order)
		par.SortSlice(order, func(a, b int32) bool {
			if start[a] != start[b] {
				return start[a] < start[b]
			}
			return a < b
		})

		center := make([]int32, n)
		round := make([]int32, n)
		par.Fill(center, int32(-1))
		par.Fill(round, int32(-1))
		visited := par.NewBitset(n)

		eng := &frontier.Engine{}
		f := frontier.Empty(n)
		remaining := n
		cursor := 0
		r := int32(0)
		for remaining > 0 {
			// Seed the balls whose shifted start time has arrived, unless
			// a growing ball already swallowed the would-be center.
			var centers []int32
			for cursor < n && start[order[cursor]] <= r {
				v := order[cursor]
				cursor++
				if !visited.Test(int(v)) {
					centers = append(centers, v)
				}
			}
			if len(centers) > 0 {
				cs := centers
				rr := r
				par.For(len(cs), func(i int) {
					v := cs[i]
					center[v] = v
					round[v] = rr
					visited.Set(int(v))
				})
				info.Balls += len(cs)
				remaining -= len(cs)
				f = frontier.Union(f, frontier.New(n, centers))
			}
			if remaining == 0 {
				info.Rounds = int(r) + 1
				break
			}
			if f.IsEmpty() {
				// Nothing growing yet: jump to the next start time.
				if next := start[order[cursor]]; next > r {
					r = next
				} else {
					r++
				}
				continue
			}
			// Grow every ball one hop. A contended vertex keeps the
			// smallest center id (CAS-min), so the claim is order-free;
			// Dedup because the min can improve more than once per round.
			nf := eng.EdgeMap(g, f, frontier.Ops{
				Cond:  func(v int32) bool { return !visited.Test(int(v)) },
				Dedup: true,
				Update: func(u, v int32) bool {
					return claimMinCenter(&center[v], center[u])
				},
			})
			// Claim phase: the newly reached vertices join their balls.
			rr := r + 1
			frontier.Map(nf, func(v int32) {
				visited.Set(int(v))
				round[v] = rr
			})
			remaining -= nf.Size()
			f = nf
			r++
			info.Rounds = int(r)
		}
		info.Center = center
		info.Round = round
		info.Delta = delta
		info.MaxDelta = maxDelta
	})
	sp.Add("balls", int64(info.Balls))
	sp.Add("rounds", int64(info.Rounds))
	sp.End()
	return info
}

// claimMinCenter atomically lowers *addr to id (−1 meaning unclaimed) and
// reports whether it improved the value.
func claimMinCenter(addr *int32, id int32) bool {
	for {
		cur := atomic.LoadInt32(addr)
		if cur != -1 && cur <= id {
			return false
		}
		if atomic.CompareAndSwapInt32(addr, cur, id) {
			return true
		}
	}
}

// MPX runs the ball growing and materializes the decomposition in the
// BRIDGE shape: one part holding the union of the balls (every inter-ball
// edge removed) and Cross holding the inter-ball edges — no per-ball
// subgraph is built, since the ball count is data-dependent and large.
// Label is the dense ball index, ordered by center vertex id.
func MPX(g *graph.Graph, beta float64, seed uint64) *Result {
	r := &Result{Technique: TechMPX}
	sp := trace.Begin("decomp/MPX")
	r.Elapsed = timed(func() {
		info := MPXGrow(g, beta, seed)
		r.Rounds = info.Rounds
		r.Balls = info.Balls
		n := g.NumVertices()
		center := info.Center

		mat := trace.Begin("materialize")
		sameBall := func(a, b int32) bool { return center[a] == center[b] }
		gb := graph.RemoveEdges(g, sameBall)
		r.Parts = []*graph.Sub{graph.IdentitySub(gb)}
		r.Cross = graph.EdgeInducedSubgraph(g, func(a, b int32) bool {
			return center[a] != center[b]
		})

		// Compact center ids to dense ball indices: rank of the center
		// among all centers in id order.
		isCenter := make([]int32, n)
		par.For(n, func(i int) {
			if center[i] == int32(i) {
				isCenter[i] = 1
			}
		})
		rank := par.ExclusiveSum32(isCenter)
		label := make([]int32, n)
		par.For(n, func(i int) {
			label[i] = int32(rank[center[i]])
		})
		r.Label = label
		mat.End()
	})
	if trace.Enabled() {
		traceResult(sp, r)
	}
	sp.End()
	return r
}
