package decomp

import (
	"repro/internal/graph"
	"repro/internal/multilevel"
	"repro/internal/trace"
)

// TechMultilevel identifies the matching-based multilevel partitioner
// (the PMETIS stand-in; see package multilevel).
const TechMultilevel Technique = 100

// Multilevel decomposes g with the multilevel k-way partitioner and
// materializes the parts and cross subgraph in the RAND shape. The paper's
// Remark 1 excludes METIS-style partitioning because it alone costs more
// than the symmetry-breaking baselines — the harness's remark1 experiment
// measures exactly that with this decomposition.
func Multilevel(g *graph.Graph, k int, seed uint64) *Result {
	r := &Result{Technique: TechMultilevel}
	sp := trace.Begin("decomp/MULTILEVEL")
	r.Elapsed = timed(func() {
		label, st := multilevel.Partition(g, k, seed, multilevel.Options{})
		r.Parts, r.Cross = graph.PartitionByLabel(g, label, k)
		r.Label = label
		r.Rounds = st.Levels
	})
	if trace.Enabled() {
		traceResult(sp, r)
	}
	sp.End()
	return r
}
