package decomp

import (
	"time"

	"repro/internal/bfs"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/trace"
)

// BridgeInfo is the lightweight product of the bridge-finding phase of
// Algorithm 1: the bridge set and an O(1) membership test, without any
// subgraph materialization. Solvers that process the decomposition through
// vertex masks (MIS-Bridge) use this directly; Bridge builds the
// materialized Result on top of it.
type BridgeInfo struct {
	// Bridges lists every bridge (canonical orientation).
	Bridges []graph.Edge
	// Rounds is the BFS depth (the parallel round count of Step 1).
	Rounds int
	// Elapsed is the bridge-finding wall time.
	Elapsed time.Duration

	parent  []int32
	covered *par.Bitset
}

// IsBridge reports whether {a, b} is a bridge, in O(1).
func (bi *BridgeInfo) IsBridge(a, b int32) bool {
	if bi.parent[a] == b {
		return !bi.covered.Test(int(a))
	}
	if bi.parent[b] == a {
		return !bi.covered.Test(int(b))
	}
	return false
}

// FindBridges runs Steps 1–2 of the paper's Algorithm 1 (Dcmp_Bridge).
//
// Step 1 builds a parallel BFS forest (parent array P, level array L; the
// root r has P(r) = -1, L(r) = 0). Step 2 walks, for every non-tree edge
// {x, y} in parallel, from x and y up the tree to their least common
// ancestor, marking every tree edge on the way. A tree edge can never be
// part of a cycle if no such walk crosses it, so the unmarked tree edges
// are exactly the bridges of G.
func FindBridges(g *graph.Graph) *BridgeInfo {
	bi := &BridgeInfo{}
	sp := trace.Begin("find-bridges")
	bi.Elapsed = timed(func() {
		n := g.NumVertices()

		// STEP 1: parallel BFS forest (multi-source so disconnected inputs
		// decompose too), direction-optimizing via the frontier engine.
		// Any BFS forest contains every bridge, and the deeper endpoint of
		// a bridge is fixed by the (direction-independent) level array, so
		// the bridge set and its listing order do not depend on which
		// forest the hybrid traversal finds.
		bfsSpan := trace.Begin("bfs")
		tree := bfs.ForestHybrid(g)
		bi.Rounds = tree.Depth
		bfsSpan.Add("rounds", int64(tree.Depth))
		bfsSpan.End()

		// covered[v] marks the tree edge {v, P(v)} as lying on some cycle.
		covered := par.NewBitset(n)

		// STEP 2: for every non-tree edge {x, y}, climb to the LCA marking
		// tree edges. Climbing alternates on the deeper endpoint so both
		// walks meet exactly at the LCA.
		markSpan := trace.Begin("lca-mark")
		g.ForEachEdgePar(func(u, v int32) {
			if tree.IsTreeEdge(u, v) {
				return
			}
			x, y := u, v
			for x != y {
				if tree.Level[x] < tree.Level[y] {
					x, y = y, x
				}
				// x is the deeper endpoint; mark its parent edge and climb.
				covered.Set(int(x))
				x = tree.Parent[x]
			}
		})
		markSpan.End()

		// Unmarked tree edges are the bridges. Gather per chunk.
		nc := par.NumChunks(n)
		bufs := make([][]graph.Edge, nc)
		par.RangeIdx(n, func(w, lo, hi int) {
			var out []graph.Edge
			for i := lo; i < hi; i++ {
				if tree.Parent[i] >= 0 && !covered.Test(i) {
					out = append(out, graph.Edge{U: int32(i), V: tree.Parent[i]}.Canon())
				}
			}
			bufs[w] = out
		})
		for _, b := range bufs {
			bi.Bridges = append(bi.Bridges, b...)
		}
		bi.parent = tree.Parent
		bi.covered = covered
	})
	sp.Add("bridges", int64(len(bi.Bridges)))
	sp.End()
	return bi
}

// Bridge runs the full Algorithm 1 and materializes the decomposition: the
// result's single part is G_c = G − B (whose connected components are the
// 2-edge-connected components G_1, G_2, ...); Cross is the edge-induced
// subgraph G_b of the bridge set B.
func Bridge(g *graph.Graph) *Result {
	r := &Result{Technique: TechBridge}
	sp := trace.Begin("decomp/BRIDGE")
	r.Elapsed = timed(func() {
		bi := FindBridges(g)
		r.Rounds = bi.Rounds
		r.Bridges = bi.Bridges
		mat := trace.Begin("materialize")
		gc := graph.RemoveEdges(g, func(a, b int32) bool { return !bi.IsBridge(a, b) })
		r.Parts = []*graph.Sub{graph.IdentitySub(gc)}
		r.Cross = graph.EdgeInducedSubgraph(g, bi.IsBridge)
		r.Label = make([]int32, g.NumVertices()) // all zero: the single G_c part
		mat.End()
	})
	if trace.Enabled() {
		traceResult(sp, r)
	}
	sp.End()
	return r
}
