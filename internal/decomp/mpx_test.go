package decomp

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/par"
)

// TestMPXEveryVertexInExactlyOneBall: the ball assignment is total (no
// vertex unclaimed) and well-formed (centers are their own centers, members
// point at a real center).
func TestMPXEveryVertexInExactlyOneBall(t *testing.T) {
	for _, g := range []*graph.Graph{paperGraph(), pathGraph(500), cycleGraph(64), randomGraph(2000, 8000, 4)} {
		info := MPXGrow(g, DefaultMPXBeta, 1)
		n := g.NumVertices()
		balls := 0
		for v := 0; v < n; v++ {
			c := info.Center[v]
			if c < 0 || int(c) >= n {
				t.Fatalf("Center[%d] = %d out of range", v, c)
			}
			if info.Center[c] != c {
				t.Fatalf("Center[%d] = %d, but Center[%d] = %d (not a center)",
					v, c, c, info.Center[c])
			}
			if info.Round[v] < 0 {
				t.Fatalf("Round[%d] = %d, vertex never claimed", v, info.Round[v])
			}
			if c == int32(v) {
				balls++
			}
		}
		if balls != info.Balls {
			t.Fatalf("counted %d centers, Balls = %d", balls, info.Balls)
		}
		if info.Balls < 1 || info.Balls > n {
			t.Fatalf("Balls = %d for n = %d", info.Balls, n)
		}
	}
}

// TestMPXLayeredGrowthAndRadiusBound: every non-center was claimed from a
// same-ball neighbor one round earlier (so Round[v] − Round[Center[v]]
// bounds the distance to the center and balls are connected), and no vertex
// is claimed after its own shifted start time start[v] = ⌊maxDelta −
// delta_v⌋ (at that round it would have seeded its own ball) — which caps
// every ball radius at ⌊maxDelta⌋ for the fixed beta.
func TestMPXLayeredGrowthAndRadiusBound(t *testing.T) {
	g := randomGraph(3000, 12000, 9)
	info := MPXGrow(g, DefaultMPXBeta, 2)
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		start := int32(info.MaxDelta - info.Delta[v])
		if info.Round[v] > start {
			t.Fatalf("Round[%d] = %d after own start time %d", v, info.Round[v], start)
		}
		c := info.Center[v]
		if c == int32(v) {
			continue
		}
		if info.Round[v] <= info.Round[c] {
			t.Fatalf("member %d claimed at round %d, not after its center %d (round %d)",
				v, info.Round[v], c, info.Round[c])
		}
		found := false
		for _, u := range g.Neighbors(int32(v)) {
			if info.Center[u] == c && info.Round[u] == info.Round[v]-1 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("member %d (round %d) has no same-ball neighbor at round %d",
				v, info.Round[v], info.Round[v]-1)
		}
		if radius := info.Round[v] - info.Round[c]; float64(radius) > info.MaxDelta {
			t.Fatalf("ball radius %d exceeds maxDelta %v", radius, info.MaxDelta)
		}
	}
}

// TestMPXDeterministicAcrossWorkers: shifts are pure hashes and claims are
// CAS-min, so the full assignment is bit-identical under any worker count.
func TestMPXDeterministicAcrossWorkers(t *testing.T) {
	defer par.SetWorkers(0)
	g := randomGraph(2500, 10000, 11)
	par.SetWorkers(1)
	ref := MPXGrow(g, DefaultMPXBeta, 3)
	for _, w := range []int{2, 4, 8} {
		par.SetWorkers(w)
		got := MPXGrow(g, DefaultMPXBeta, 3)
		if got.Balls != ref.Balls || got.Rounds != ref.Rounds {
			t.Fatalf("%d workers: %d balls/%d rounds, 1 worker: %d/%d",
				w, got.Balls, got.Rounds, ref.Balls, ref.Rounds)
		}
		for v := range ref.Center {
			if got.Center[v] != ref.Center[v] {
				t.Fatalf("Center[%d] = %d with %d workers, %d with 1",
					v, got.Center[v], w, ref.Center[v])
			}
			if got.Round[v] != ref.Round[v] {
				t.Fatalf("Round[%d] = %d with %d workers, %d with 1",
					v, got.Round[v], w, ref.Round[v])
			}
		}
	}
}

// TestMPXResultShape: the materialized Result satisfies the decomposition
// invariant and carries a dense ball labeling consistent with the centers.
func TestMPXResultShape(t *testing.T) {
	g := randomGraph(1500, 6000, 6)
	r := MPX(g, DefaultMPXBeta, 1)
	checkEdgeConservation(t, g, r)
	if len(r.Parts) != 1 {
		t.Fatalf("parts = %d, want 1 (BRIDGE shape)", len(r.Parts))
	}
	if r.Balls < 1 {
		t.Fatalf("Balls = %d", r.Balls)
	}
	if r.Elapsed <= 0 || r.Rounds < 1 {
		t.Fatalf("Elapsed = %v, Rounds = %d", r.Elapsed, r.Rounds)
	}
	n := g.NumVertices()
	seen := map[int32]bool{}
	for v := 0; v < n; v++ {
		l := r.Label[v]
		if l < 0 || int(l) >= r.Balls {
			t.Fatalf("Label[%d] = %d, not a dense ball index (< %d)", v, l, r.Balls)
		}
		seen[l] = true
	}
	if len(seen) != r.Balls {
		t.Fatalf("labels cover %d balls, want %d", len(seen), r.Balls)
	}
	// No part edge crosses balls, every cross edge does.
	info := MPXGrow(g, DefaultMPXBeta, 1)
	part := r.Parts[0].G
	for v := int32(0); v < int32(part.NumVertices()); v++ {
		for _, w := range part.Neighbors(v) {
			if info.Center[v] != info.Center[w] {
				t.Fatalf("part edge (%d,%d) crosses balls", v, w)
			}
		}
	}
	cr := r.Cross
	for j := 0; j < cr.NumVertices(); j++ {
		v := cr.ToGlobal[j]
		for _, lw := range cr.G.Neighbors(int32(j)) {
			if w := cr.ToGlobal[lw]; info.Center[v] == info.Center[w] {
				t.Fatalf("cross edge (%d,%d) is intra-ball", v, w)
			}
		}
	}
}

// TestMPXBetaTradeoff: larger beta means more, smaller balls and therefore
// at least as many cross edges — the knob the quality comparison in
// EXPERIMENTS.md sweeps.
func TestMPXBetaTradeoff(t *testing.T) {
	g := randomGraph(3000, 15000, 5)
	coarse := MPX(g, 0.05, 1)
	fine := MPX(g, 1.0, 1)
	if coarse.Balls >= fine.Balls {
		t.Fatalf("beta 0.05 grew %d balls, beta 1.0 grew %d — expected fewer coarse balls",
			coarse.Balls, fine.Balls)
	}
	if coarse.CrossEdges() > fine.CrossEdges() {
		t.Fatalf("beta 0.05 cut %d edges, beta 1.0 cut %d — expected coarse ≤ fine",
			coarse.CrossEdges(), fine.CrossEdges())
	}
}

func TestMPXPanicsOnBadBeta(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("beta = 0 accepted")
		}
	}()
	MPXGrow(pathGraph(4), 0, 1)
}

// TestParseTechniqueRoundTrip: every Technique's String() parses back to
// itself, case-insensitively — the contract cmd/decomp and the harness
// headers rely on.
func TestParseTechniqueRoundTrip(t *testing.T) {
	for _, tech := range Techniques() {
		got, err := ParseTechnique(tech.String())
		if err != nil || got != tech {
			t.Fatalf("ParseTechnique(%q) = %v, %v", tech.String(), got, err)
		}
	}
	if got, err := ParseTechnique("mpx"); err != nil || got != TechMPX {
		t.Fatalf("ParseTechnique(\"mpx\") = %v, %v", got, err)
	}
	if got, err := ParseTechnique("Degk"); err != nil || got != TechDegk {
		t.Fatalf("ParseTechnique(\"Degk\") = %v, %v", got, err)
	}
	if _, err := ParseTechnique("nope"); err == nil {
		t.Fatal("unknown technique accepted")
	}
}
