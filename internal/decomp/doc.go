// Package decomp implements the graph decompositions that front every
// symmetry-breaking solver in this repository: the paper's three
// light-weight techniques (Section II) plus two extensions.
//
//   - BRIDGE (Algorithm 1): finds all bridges with a parallel BFS forest
//     plus LCA-walk marking and splits off the 2-edge-connected
//     components.
//   - RAND (Algorithm 2): partitions vertices uniformly at random into k
//     parts.
//   - DEGk (Algorithm 3): splits by a degree threshold into a bounded-
//     degree subgraph and a remainder.
//   - MPX (extension): Miller–Peng–Xu ball growing — exponentially
//     shifted start times with rate beta, grown as a multi-source BFS on
//     the frontier engine; produces low-diameter balls with provably few
//     cut edges in expectation.
//   - Label propagation (ablation only): a METIS stand-in for the
//     paper's Remark 1 experiment, which excludes real METIS because
//     partitioning alone costs more than the symmetry-breaking
//     baselines.
//
// Every decomposition returns a Result: materialized subgraphs with
// local→global vertex maps, the technique-specific extras (bridge list,
// vertex labels, MPX ball assignment), and the decomposition wall time —
// the quantity Figure 2 of the paper reports. All decompositions are
// deterministic under a seed for any worker count; randomness comes from
// par.Hash64 splittable hashing, never from shared mutable state.
package decomp
