package decomp

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/par"
)

// Fixtures (mirrors of the graph package's test graphs).

func paperGraph() *graph.Graph {
	b := graph.NewBuilder(8)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(5, 6)
	b.AddEdge(3, 6)
	b.AddEdge(6, 7)
	return b.Build()
}

func pathGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.Build()
}

func cycleGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(int32(i), int32((i+1)%n))
	}
	return b.Build()
}

func randomGraph(n, m int, seed uint64) *graph.Graph {
	r := par.NewRNG(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	return b.Build()
}

// checkEdgeConservation asserts the decomposition invariant: part edges
// plus cross edges equal the graph's edges.
func checkEdgeConservation(t *testing.T, g *graph.Graph, r *Result) {
	t.Helper()
	if got := r.PartEdges() + r.CrossEdges(); got != g.NumEdges() {
		t.Fatalf("%v: parts %d + cross %d = %d edges, graph has %d",
			r.Technique, r.PartEdges(), r.CrossEdges(), got, g.NumEdges())
	}
	for i, p := range r.Parts {
		if err := p.G.Validate(); err != nil {
			t.Fatalf("%v part %d: %v", r.Technique, i, err)
		}
	}
	if r.Cross != nil {
		if err := r.Cross.G.Validate(); err != nil {
			t.Fatalf("%v cross: %v", r.Technique, err)
		}
	}
}

func TestBridgePaperExample(t *testing.T) {
	g := paperGraph()
	r := Bridge(g)
	checkEdgeConservation(t, g, r)
	if len(r.Bridges) != 2 {
		t.Fatalf("bridges = %v, want {2,3} and {6,7}", r.Bridges)
	}
	want := map[graph.Edge]bool{{U: 2, V: 3}: true, {U: 6, V: 7}: true}
	for _, e := range r.Bridges {
		if !want[e] {
			t.Fatalf("unexpected bridge %v", e)
		}
	}
	gc := r.Parts[0]
	if gc.NumVertices() != 8 || gc.NumEdges() != 7 {
		t.Fatalf("G_c has n=%d m=%d, want 8/7", gc.NumVertices(), gc.NumEdges())
	}
	if r.Cross.NumEdges() != 2 || r.Cross.NumVertices() != 4 {
		t.Fatalf("G_b has n=%d m=%d, want 4/2", r.Cross.NumVertices(), r.Cross.NumEdges())
	}
	// Figure 1(b): components of G−B are {a,b,c}, {d,e,f,g}, {h}.
	label, nc := graph.ConnectedComponents(gc.G)
	if nc != 3 {
		t.Fatalf("G−B has %d components, want 3", nc)
	}
	if label[0] != label[1] || label[1] != label[2] {
		t.Fatal("triangle split across components")
	}
	if label[3] != label[4] || label[4] != label[5] || label[5] != label[6] {
		t.Fatal("square split across components")
	}
	if label[7] == label[6] || label[7] == label[0] {
		t.Fatal("h not isolated in G−B")
	}
}

func TestBridgeMatchesOracle(t *testing.T) {
	cases := []*graph.Graph{
		pathGraph(30),  // every edge a bridge
		cycleGraph(30), // no bridges
		paperGraph(),
		randomGraph(200, 220, 3),    // sparse, bridge-rich, disconnected
		randomGraph(200, 2000, 4),   // dense, few bridges
		graph.NewBuilder(5).Build(), // edgeless
	}
	for ci, g := range cases {
		r := Bridge(g)
		want := graph.Bridges(g)
		wantSet := map[graph.Edge]bool{}
		for _, e := range want {
			wantSet[e] = true
		}
		if len(r.Bridges) != len(want) {
			t.Fatalf("case %d: %d bridges, oracle says %d", ci, len(r.Bridges), len(want))
		}
		for _, e := range r.Bridges {
			if !wantSet[e] {
				t.Fatalf("case %d: %v not a bridge", ci, e)
			}
		}
		checkEdgeConservation(t, g, r)
	}
}

func TestBridgeRoundsIsBFSDepth(t *testing.T) {
	r := Bridge(pathGraph(64))
	if r.Rounds != 64 {
		t.Fatalf("Rounds = %d, want 64 on a 64-path", r.Rounds)
	}
}

func TestRandPartitionShape(t *testing.T) {
	g := randomGraph(1000, 4000, 9)
	for _, k := range []int{1, 2, 4, 10} {
		r := Rand(g, k, 7)
		if len(r.Parts) != k {
			t.Fatalf("k=%d: got %d parts", k, len(r.Parts))
		}
		checkEdgeConservation(t, g, r)
		total := 0
		for _, p := range r.Parts {
			total += p.NumVertices()
		}
		if total != g.NumVertices() {
			t.Fatalf("k=%d: parts cover %d vertices", k, total)
		}
	}
}

func TestRandDeterministicUnderSeed(t *testing.T) {
	g := randomGraph(500, 2000, 1)
	a := Rand(g, 5, 42)
	b := Rand(g, 5, 42)
	for i := range a.Label {
		if a.Label[i] != b.Label[i] {
			t.Fatalf("labels differ at %d under same seed", i)
		}
	}
	c := Rand(g, 5, 43)
	same := 0
	for i := range a.Label {
		if a.Label[i] == c.Label[i] {
			same++
		}
	}
	if same == len(a.Label) {
		t.Fatal("different seeds produced identical partition")
	}
}

func TestRandBalance(t *testing.T) {
	g := pathGraph(100000)
	k := 10
	r := Rand(g, k, 11)
	for i, p := range r.Parts {
		n := p.NumVertices()
		if n < 100000/k*8/10 || n > 100000/k*12/10 {
			t.Fatalf("part %d holds %d vertices of %d", i, n, 100000)
		}
	}
}

func TestRandSparsification(t *testing.T) {
	// With k parts, an edge stays intra-part with probability 1/k, so the
	// induced subgraphs hold ≈ m/k edges — the sparsification MM-Rand
	// exploits. Allow generous slack.
	g := randomGraph(2000, 20000, 5)
	k := 10
	r := Rand(g, k, 3)
	frac := float64(r.PartEdges()) / float64(g.NumEdges())
	if frac < 0.05 || frac > 0.2 {
		t.Fatalf("intra-part edge fraction %.3f, want ≈ 1/k = 0.1", frac)
	}
}

func TestRandPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Rand(paperGraph(), 0, 1)
}

func TestDegkPaperExample(t *testing.T) {
	// Figure 1(d): DEG2 on the example graph. deg ≤ 2: {a,b,e,f,h};
	// deg > 2: {c,d,g}.
	g := paperGraph()
	r := Degk(g, 2)
	checkEdgeConservation(t, g, r)
	gl, gh := r.Parts[DegkLow], r.Parts[DegkHigh]
	if gl.NumVertices() != 5 || gh.NumVertices() != 3 {
		t.Fatalf("|V_L|=%d |V_H|=%d, want 5/3", gl.NumVertices(), gh.NumVertices())
	}
	// G_L edges: a-b, e-f. G_H edges: c-d, d-g. Cross: 5.
	if gl.NumEdges() != 2 {
		t.Fatalf("G_L edges = %d, want 2", gl.NumEdges())
	}
	if gh.NumEdges() != 2 {
		t.Fatalf("G_H edges = %d, want 2", gh.NumEdges())
	}
	if r.CrossEdges() != 5 {
		t.Fatalf("G_C edges = %d, want 5", r.CrossEdges())
	}
}

func TestDegkLowPartHasBoundedDegree(t *testing.T) {
	// Inside G_L every vertex degree is ≤ its degree in G ≤ k.
	for _, k := range []int{1, 2, 3} {
		g := randomGraph(800, 3200, 13)
		r := Degk(g, k)
		gl := r.Parts[DegkLow].G
		if d := gl.MaxDegree(); d > int32(k) {
			t.Fatalf("k=%d: G_L max degree %d", k, d)
		}
		checkEdgeConservation(t, g, r)
	}
}

func TestDegkExtremes(t *testing.T) {
	g := paperGraph()
	// k=0: everything is high-degree except isolated vertices.
	r0 := Degk(g, 0)
	if r0.Parts[DegkLow].NumVertices() != 0 {
		t.Fatalf("k=0: |V_L| = %d", r0.Parts[DegkLow].NumVertices())
	}
	// k=max degree: everything is low.
	rBig := Degk(g, int(g.MaxDegree()))
	if rBig.Parts[DegkHigh].NumVertices() != 0 {
		t.Fatalf("k=maxdeg: |V_H| = %d", rBig.Parts[DegkHigh].NumVertices())
	}
	if rBig.Parts[DegkLow].NumEdges() != g.NumEdges() {
		t.Fatal("k=maxdeg: G_L must hold all edges")
	}
}

func TestLabelPropShape(t *testing.T) {
	g := randomGraph(1000, 5000, 21)
	r := LabelProp(g, 8, 5, 3)
	checkEdgeConservation(t, g, r)
	if len(r.Parts) < 1 || len(r.Parts) > 8 {
		t.Fatalf("LabelProp produced %d parts", len(r.Parts))
	}
	if r.Rounds < 1 {
		t.Fatal("LabelProp ran no rounds")
	}
}

func TestLabelPropImprovesLocalityOnGrid(t *testing.T) {
	// On a structured graph, label propagation should leave fewer cross
	// edges than a random partition with the same k.
	b := graph.NewBuilder(0)
	const side = 60
	id := func(i, j int) int32 { return int32(i*side + j) }
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			if j+1 < side {
				b.AddEdge(id(i, j), id(i, j+1))
			}
			if i+1 < side {
				b.AddEdge(id(i, j), id(i+1, j))
			}
		}
	}
	g := b.Build()
	rnd := Rand(g, 4, 1)
	lp := LabelProp(g, 4, 20, 1)
	if lp.CrossEdges() >= rnd.CrossEdges() {
		t.Fatalf("LabelProp cross %d not better than RAND cross %d",
			lp.CrossEdges(), rnd.CrossEdges())
	}
}

func TestTechniqueString(t *testing.T) {
	names := map[Technique]string{
		TechBridge: "BRIDGE", TechRand: "RAND", TechDegk: "DEGk",
		TechLabelProp: "LABELPROP", Technique(99): "UNKNOWN",
	}
	for tech, want := range names {
		if tech.String() != want {
			t.Fatalf("String(%d) = %q", tech, tech.String())
		}
	}
}

func TestElapsedRecorded(t *testing.T) {
	g := randomGraph(2000, 10000, 2)
	for _, r := range []*Result{Bridge(g), Rand(g, 10, 1), Degk(g, 2)} {
		if r.Elapsed <= 0 {
			t.Fatalf("%v: Elapsed = %v", r.Technique, r.Elapsed)
		}
	}
}

func TestMultilevelDecomposition(t *testing.T) {
	g := randomGraph(1500, 6000, 12)
	r := Multilevel(g, 6, 3)
	checkEdgeConservation(t, g, r)
	if len(r.Parts) != 6 {
		t.Fatalf("parts = %d", len(r.Parts))
	}
	if r.Technique.String() != "MULTILEVEL" {
		t.Fatalf("technique %q", r.Technique)
	}
	// Quality: far fewer cross edges than RAND with the same k.
	rnd := Rand(g, 6, 3)
	if r.CrossEdges() >= rnd.CrossEdges() {
		t.Fatalf("multilevel cross %d not below RAND %d", r.CrossEdges(), rnd.CrossEdges())
	}
}
