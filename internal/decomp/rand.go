package decomp

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/trace"
)

// Rand runs the paper's Algorithm 2 (Dcmp_Rand): every vertex independently
// picks a part in {0, ..., k-1} uniformly at random; the result's Parts are
// the k induced subgraphs G[V_1], ..., G[V_k] and Cross is G_{k+1}, the
// edge-induced subgraph of edges whose endpoints fall in different parts.
//
// The assignment uses a pure per-vertex hash of (seed, v), so the
// decomposition is deterministic under a seed regardless of worker count.
// The paper tunes k near the average degree: 10 partitions on the CPU, 4 on
// the GPU, 100 for the high-degree kron instances.
func Rand(g *graph.Graph, k int, seed uint64) *Result {
	if k < 1 {
		panic(fmt.Sprintf("decomp: Rand with k=%d", k))
	}
	r := &Result{Technique: TechRand}
	sp := trace.Begin("decomp/RAND")
	r.Elapsed = timed(func() {
		n := g.NumVertices()
		label := make([]int32, n)
		par.For(n, func(i int) {
			label[i] = int32(par.HashRange(seed, int64(i), k))
		})
		r.Parts, r.Cross = graph.PartitionByLabel(g, label, k)
		r.Label = label
		r.Rounds = 1
	})
	if trace.Enabled() {
		traceResult(sp, r)
	}
	sp.End()
	return r
}
