package decomp

import (
	"fmt"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/trace"
)

// LabelProp is a cheap locality-aware partitioner used as the METIS
// stand-in for the ablation experiments (the paper's Remark 1 excludes real
// PMETIS because its partitioning time alone exceeds the symmetry-breaking
// baselines — this stand-in lets us measure that trade-off without shipping
// a multilevel partitioner).
//
// It seeds a random k-way assignment and then runs iters rounds in which
// every vertex adopts the most common label among its neighbors (ties break
// toward the smaller label; isolated vertices keep their seed). The result
// has the RAND shape: k induced parts plus the cross-edge subgraph, but
// with far fewer cross edges on graphs with locality.
func LabelProp(g *graph.Graph, k, iters int, seed uint64) *Result {
	if k < 1 {
		panic(fmt.Sprintf("decomp: LabelProp with k=%d", k))
	}
	r := &Result{Technique: TechLabelProp}
	sp := trace.Begin("decomp/LABELPROP")
	r.Elapsed = timed(func() {
		n := g.NumVertices()
		label := make([]int32, n)
		par.For(n, func(i int) {
			label[i] = int32(par.HashRange(seed, int64(i), k))
		})
		next := make([]int32, n)
		for it := 0; it < iters; it++ {
			var changed int32
			par.Range(n, func(lo, hi int) {
				counts := make([]int32, k)
				anyChanged := false
				for i := lo; i < hi; i++ {
					v := int32(i)
					ns := g.Neighbors(v)
					if len(ns) == 0 {
						next[i] = label[i]
						continue
					}
					for j := range counts {
						counts[j] = 0
					}
					for _, w := range ns {
						counts[label[w]]++
					}
					best := label[i]
					bestC := counts[best]
					for j := int32(0); int(j) < k; j++ {
						if counts[j] > bestC {
							best, bestC = j, counts[j]
						}
					}
					next[i] = best
					if best != label[i] {
						anyChanged = true
					}
				}
				if anyChanged {
					atomic.StoreInt32(&changed, 1)
				}
			})
			label, next = next, label
			r.Rounds++
			if changed == 0 {
				break
			}
		}
		// Guard against a part going empty (label propagation can absorb
		// small parts): remap used labels densely and adjust k.
		used := make([]int64, k)
		par.For(n, func(i int) { atomic.StoreInt64(&used[label[i]], 1) })
		rank := par.ExclusiveSum(used)
		kk := int(rank[k])
		if kk == 0 {
			kk = 1 // empty graph: keep a single empty part
		}
		if kk < k {
			par.For(n, func(i int) { label[i] = int32(rank[label[i]]) })
		}
		r.Parts, r.Cross = graph.PartitionByLabel(g, label, kk)
		r.Label = label
	})
	if trace.Enabled() {
		traceResult(sp, r)
	}
	sp.End()
	return r
}
