package decomp

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/trace"
)

// Technique identifies a decomposition strategy.
type Technique int

const (
	// TechBridge is the 2-edge-connected component decomposition.
	TechBridge Technique = iota
	// TechRand is the uniform random vertex partitioning.
	TechRand
	// TechDegk is the degree-threshold decomposition.
	TechDegk
	// TechLabelProp is the label-propagation (METIS stand-in) ablation.
	TechLabelProp
	// TechMPX is the Miller–Peng–Xu exponential-shift ball growing
	// (an extension beyond the paper's three techniques).
	TechMPX
)

// String returns the paper's name for the technique.
func (t Technique) String() string {
	switch t {
	case TechBridge:
		return "BRIDGE"
	case TechRand:
		return "RAND"
	case TechDegk:
		return "DEGk"
	case TechLabelProp:
		return "LABELPROP"
	case TechMPX:
		return "MPX"
	case TechMultilevel:
		return "MULTILEVEL"
	default:
		return "UNKNOWN"
	}
}

// Techniques lists every technique, in display order. Parsing and table
// code iterates this instead of hand-maintaining name lists.
func Techniques() []Technique {
	return []Technique{TechBridge, TechRand, TechDegk, TechMPX, TechLabelProp, TechMultilevel}
}

// ParseTechnique parses a technique name, case-insensitively, accepting
// exactly the String() forms — so names round-trip between CLI flags,
// harness table headers, and this parser.
func ParseTechnique(s string) (Technique, error) {
	for _, t := range Techniques() {
		if strings.EqualFold(s, t.String()) {
			return t, nil
		}
	}
	return 0, fmt.Errorf("unknown decomposition technique %q (want bridge, rand, degk, mpx, labelprop or multilevel)", s)
}

// Result is a materialized decomposition.
//
// The meaning of Parts and Cross depends on the technique:
//
//   - BRIDGE: Parts has one entry, G_c = G − B over all vertices (its
//     connected components are the 2-edge-connected components; parallel
//     solvers process them simultaneously for free). Cross is the
//     edge-induced subgraph of the bridge set B, and Bridges lists B.
//   - RAND: Parts are the k induced subgraphs G[V_1..V_k]; Cross is
//     G_{k+1}, the edge-induced subgraph of the cross edges.
//   - DEGk: Parts[0] = G_L (deg ≤ k), Parts[1] = G_H (deg > k); Cross is
//     G_C.
//   - MPX: like BRIDGE, Parts has one entry — the union of the grown
//     balls, whose connected components are (unions of) the balls — and
//     Cross is the edge-induced subgraph of the inter-ball edges. Label
//     is the ball index and Balls the ball count.
type Result struct {
	Technique Technique
	Parts     []*graph.Sub
	Cross     *graph.Sub
	// Label maps each vertex to its part index (BRIDGE: always 0 — the
	// single G_c part; vertices keep their component structure inside it).
	Label []int32
	// Bridges is the bridge edge set (BRIDGE only), canonical orientation.
	Bridges []graph.Edge
	// Balls is the number of balls grown (MPX only). For MPX, Label[v] is
	// the ball index of v (dense, ordered by center vertex id).
	Balls int
	// Rounds is the number of parallel rounds the decomposition ran
	// (BRIDGE: BFS depth; others: 1).
	Rounds int
	// Elapsed is the decomposition wall time, including subgraph
	// materialization (what Figure 2 measures).
	Elapsed time.Duration
}

// PartEdges reports the total number of edges across Parts.
func (r *Result) PartEdges() int64 {
	var m int64
	for _, p := range r.Parts {
		m += p.NumEdges()
	}
	return m
}

// CrossEdges reports the number of edges in Cross.
func (r *Result) CrossEdges() int64 {
	if r.Cross == nil {
		return 0
	}
	return r.Cross.NumEdges()
}

// timed runs fn and returns its duration.
func timed(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// traceResult records a finished decomposition's shape counters on its
// span: part/cross edge split, part count, and the parallel round count —
// the quantities Figure 2 and the decomp-stats experiment report. Called
// only when tracing is enabled.
func traceResult(sp *trace.Span, r *Result) {
	sp.Add("parts", int64(len(r.Parts)))
	sp.Add("part_edges", r.PartEdges())
	sp.Add("cross_edges", r.CrossEdges())
	sp.Add("rounds", int64(r.Rounds))
	if len(r.Bridges) > 0 {
		sp.Add("bridges", int64(len(r.Bridges)))
	}
	if r.Balls > 0 {
		sp.Add("balls", int64(r.Balls))
	}
}
