package decomp

import (
	"testing"

	"repro/internal/graph"
)

func TestFindBridgesIsBridgePredicate(t *testing.T) {
	g := paperGraph()
	bi := FindBridges(g)
	if len(bi.Bridges) != 2 {
		t.Fatalf("bridges = %v", bi.Bridges)
	}
	bridgeSet := map[graph.Edge]bool{}
	for _, e := range bi.Bridges {
		bridgeSet[e] = true
	}
	for _, e := range g.Edges() {
		want := bridgeSet[e]
		if got := bi.IsBridge(e.U, e.V); got != want {
			t.Fatalf("IsBridge(%v) = %v, want %v", e, got, want)
		}
		if got := bi.IsBridge(e.V, e.U); got != want {
			t.Fatalf("IsBridge reversed (%v) = %v, want %v", e, got, want)
		}
	}
	// Non-edges are never bridges.
	if bi.IsBridge(0, 7) {
		t.Fatal("non-edge reported as bridge")
	}
}

func TestFindBridgesMatchesOracleRandom(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		g := randomGraph(150, 200, seed+50)
		bi := FindBridges(g)
		want := graph.Bridges(g)
		if len(bi.Bridges) != len(want) {
			t.Fatalf("seed %d: %d bridges, oracle %d", seed, len(bi.Bridges), len(want))
		}
		wantSet := map[graph.Edge]bool{}
		for _, e := range want {
			wantSet[e] = true
		}
		for _, e := range bi.Bridges {
			if !wantSet[e] {
				t.Fatalf("seed %d: %v not a bridge", seed, e)
			}
		}
	}
}

func TestFindBridgesElapsedAndRounds(t *testing.T) {
	bi := FindBridges(pathGraph(100))
	if bi.Elapsed <= 0 {
		t.Fatal("Elapsed not recorded")
	}
	if bi.Rounds != 100 {
		t.Fatalf("Rounds = %d, want BFS depth 100", bi.Rounds)
	}
}
