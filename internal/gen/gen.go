// Package gen provides deterministic synthetic graph generators that stand
// in for the paper's University-of-Florida datasets (Table II). The module
// is offline, so each of the paper's six graph classes gets a generator
// tuned to reproduce the structural columns that drive the paper's results:
// average degree, the fraction of degree ≤ 2 vertices (%DEG2), the fraction
// of bridge edges (%BRIDGES), and the diameter class. See DESIGN.md §2 for
// the substitution argument.
//
// All generators are deterministic under a seed and return simple
// undirected graphs.
package gen

import (
	"cmp"
	"io"
	"math"
	"slices"

	"repro/internal/graph"
	"repro/internal/par"
)

// Kron generates a Kronecker/R-MAT graph with 2^scale vertices and about
// edgeFactor·2^scale undirected edges, the analog of the kron-g500
// instances (heavy-tailed degrees, tiny diameter, a large population of
// degree ≤ 2 vertices next to huge hubs, essentially no bridges at high
// edge factors). Uses the Graph500 R-MAT parameters a=0.57, b=0.19, c=0.19.
func Kron(scale int, edgeFactor int, seed uint64) *graph.Graph {
	n := 1 << uint(scale)
	m := n * edgeFactor
	edges := make([]graph.Edge, m)
	par.Range(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			edges[i] = kronEdge(scale, seed, int64(i))
		}
	})
	return graph.FromEdges(n, edges)
}

// kronEdge computes the i-th R-MAT edge for (scale, seed). Each edge is a
// pure function of its index, which is what lets Kron parallelize freely
// and KronStream reproduce the exact same edge sequence incrementally.
func kronEdge(scale int, seed uint64, i int64) graph.Edge {
	r := par.NewRNG(par.Hash64(seed, i))
	var u, v int
	for bit := 0; bit < scale; bit++ {
		p := r.Float64()
		switch {
		case p < 0.57: // a: top-left
		case p < 0.76: // b: top-right
			v |= 1 << uint(bit)
		case p < 0.95: // c: bottom-left
			u |= 1 << uint(bit)
		default: // d: bottom-right
			u |= 1 << uint(bit)
			v |= 1 << uint(bit)
		}
	}
	return graph.Edge{U: int32(u), V: int32(v)}
}

// KronStream is Kron as a graph.EdgeStream: it yields the identical edge
// sequence batch by batch without materializing the edge list, so
// graph.BuildBinaryExternal can write R-MAT instances far larger than
// memory. Batches are generated in parallel (each edge is independent).
type KronStream struct {
	scale int
	seed  uint64
	m     int64
	pos   int64
}

// NewKronStream returns the streaming form of Kron(scale, edgeFactor,
// seed): same vertex count, same edges, same order.
func NewKronStream(scale, edgeFactor int, seed uint64) *KronStream {
	return &KronStream{scale: scale, seed: seed, m: int64(edgeFactor) << uint(scale)}
}

// NumVertices reports 2^scale.
func (s *KronStream) NumVertices() int { return 1 << uint(s.scale) }

// NumEdges reports the total (pre-dedup) edge count of the stream.
func (s *KronStream) NumEdges() int64 { return s.m }

// Next fills buf with the next batch of edges.
func (s *KronStream) Next(buf []graph.Edge) (int, error) {
	k := int(min(int64(len(buf)), s.m-s.pos))
	base := s.pos
	par.Range(k, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			buf[i] = kronEdge(s.scale, s.seed, base+int64(i))
		}
	})
	s.pos += int64(k)
	if s.pos == s.m {
		return k, io.EOF
	}
	return k, nil
}

// RGG generates a random geometric graph: n points uniform in the unit
// square, an edge between points within distance radius. The analog of the
// rgg-n-2-* instances: locally dense, zero %DEG2, zero bridges, moderate
// uniform degrees. DegreeRadius returns the radius for a target average
// degree.
func RGG(n int, radius float64, seed uint64) *graph.Graph {
	xs := make([]float64, n)
	ys := make([]float64, n)
	par.For(n, func(i int) {
		xs[i] = float64(par.Hash64(seed, int64(2*i))>>11) / (1 << 53)
		ys[i] = float64(par.Hash64(seed, int64(2*i+1))>>11) / (1 << 53)
	})
	// Number vertices in spatial (row-major cell) order, as the DIMACS rgg
	// generators do. The ordering matters: id-directed algorithms (GM's
	// lowest-id potential mate) then chain along the geometry, which is the
	// paper's documented vain-tendency pathology on the rgg instances.
	order := make([]int32, n)
	par.Iota(order)
	gridSide := int(1 / radius)
	if gridSide < 1 {
		gridSide = 1
	}
	cellKey := func(i int32) int64 {
		cx := int64(xs[i] * float64(gridSide))
		cy := int64(ys[i] * float64(gridSide))
		return cx*int64(gridSide) + cy
	}
	slices.SortFunc(order, func(a, b int32) int {
		if ka, kb := cellKey(a), cellKey(b); ka != kb {
			return cmp.Compare(ka, kb)
		}
		return cmp.Compare(xs[a], xs[b])
	})
	nx := make([]float64, n)
	ny := make([]float64, n)
	par.For(n, func(i int) {
		nx[i] = xs[order[i]]
		ny[i] = ys[order[i]]
	})
	xs, ys = nx, ny
	// Bucket grid with cell size = radius: neighbors lie in the 3×3 cells.
	cells := int(1 / radius)
	if cells < 1 {
		cells = 1
	}
	cellOf := func(i int) (int, int) {
		cx := int(xs[i] * float64(cells))
		cy := int(ys[i] * float64(cells))
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return cx, cy
	}
	buckets := make([][]int32, cells*cells)
	for i := 0; i < n; i++ {
		cx, cy := cellOf(i)
		buckets[cx*cells+cy] = append(buckets[cx*cells+cy], int32(i))
	}
	r2 := radius * radius
	nc := par.NumChunks(n)
	bufs := make([][]graph.Edge, nc)
	par.RangeIdx(n, func(w, lo, hi int) {
		var out []graph.Edge
		for i := lo; i < hi; i++ {
			cx, cy := cellOf(i)
			for dx := -1; dx <= 1; dx++ {
				for dy := -1; dy <= 1; dy++ {
					bx, by := cx+dx, cy+dy
					if bx < 0 || bx >= cells || by < 0 || by >= cells {
						continue
					}
					for _, j := range buckets[bx*cells+by] {
						if int32(i) >= j {
							continue
						}
						ddx := xs[i] - xs[j]
						ddy := ys[i] - ys[j]
						if ddx*ddx+ddy*ddy <= r2 {
							out = append(out, graph.Edge{U: int32(i), V: j})
						}
					}
				}
			}
		}
		bufs[w] = out
	})
	var edges []graph.Edge
	for _, b := range bufs {
		edges = append(edges, b...)
	}
	return graph.FromEdges(n, edges)
}

// DegreeRadius returns the RGG radius that yields approximately the target
// average degree on n uniform points (avg degree ≈ nπr²).
func DegreeRadius(n int, avgDegree float64) float64 {
	return math.Sqrt(avgDegree / (float64(n) * math.Pi))
}

// Road generates a road-network analog: a 2D lattice whose edges are
// subdivided into chains of 1..maxSeg segments. Subdivision creates long
// degree-2 chains (germany-osm has 82% deg ≤ 2), a large diameter (the
// BRIDGE decomposition's BFS bottleneck), and pendant spurs hanging off
// fraction spurFrac of the lattice nodes contribute bridges (osm ≈ 20%).
func Road(rows, cols, maxSeg int, spurFrac float64, seed uint64) *graph.Graph {
	b := graph.NewBuilder(rows * cols)
	next := int32(rows * cols)
	id := func(i, j int) int32 { return int32(i*cols + j) }
	rng := par.NewRNG(seed)
	subdivide := func(u, v int32) {
		segs := 1 + rng.Intn(maxSeg)
		prev := u
		for s := 1; s < segs; s++ {
			b.SetNumVertices(int(next) + 1)
			b.AddEdge(prev, next)
			prev = next
			next++
		}
		b.AddEdge(prev, v)
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if j+1 < cols {
				subdivide(id(i, j), id(i, j+1))
			}
			if i+1 < rows {
				subdivide(id(i, j), id(i+1, j))
			}
		}
	}
	// Pendant spurs: dead-end streets; every spur edge is a bridge.
	spurs := int(float64(rows*cols) * spurFrac)
	for s := 0; s < spurs; s++ {
		anchor := int32(rng.Intn(rows * cols))
		length := 1 + rng.Intn(maxSeg)
		prev := anchor
		for t := 0; t < length; t++ {
			b.SetNumVertices(int(next) + 1)
			b.AddEdge(prev, next)
			prev = next
			next++
		}
	}
	return b.Build()
}

// PrefAttach generates a preferential-attachment graph: each new vertex
// attaches to outDeg existing vertices chosen proportionally to degree.
// The analog of the citation and web classes (heavy-ish tail, small
// diameter, moderate %DEG2 from late-arriving low-degree vertices).
func PrefAttach(n, outDeg int, seed uint64) *graph.Graph {
	if outDeg < 1 {
		outDeg = 1
	}
	b := graph.NewBuilder(n)
	rng := par.NewRNG(seed)
	// targets holds one entry per edge endpoint: sampling uniformly from it
	// is sampling proportionally to degree.
	targets := make([]int32, 0, 2*n*outDeg)
	targets = append(targets, 0)
	for v := 1; v < n; v++ {
		d := outDeg
		if d > v {
			d = v
		}
		for j := 0; j < d; j++ {
			w := targets[rng.Intn(len(targets))]
			b.AddEdge(int32(v), w)
			targets = append(targets, w)
		}
		for j := 0; j < d; j++ {
			targets = append(targets, int32(v))
		}
	}
	return b.Build()
}

// PrefAttachVar is PrefAttach with per-vertex out-degree drawn uniformly
// from [minOut, maxOut]. The low end produces the population of degree ≤ 2
// vertices that citation and web graphs carry (Cit-Patents: 28% DEG2,
// web-Google: 31%) while the attachment rule still grows hubs.
func PrefAttachVar(n, minOut, maxOut int, seed uint64) *graph.Graph {
	if minOut < 1 {
		minOut = 1
	}
	if maxOut < minOut {
		maxOut = minOut
	}
	b := graph.NewBuilder(n)
	rng := par.NewRNG(seed)
	targets := make([]int32, 0, n*(minOut+maxOut))
	targets = append(targets, 0)
	for v := 1; v < n; v++ {
		d := minOut + rng.Intn(maxOut-minOut+1)
		if d > v {
			d = v
		}
		for j := 0; j < d; j++ {
			w := targets[rng.Intn(len(targets))]
			b.AddEdge(int32(v), w)
			targets = append(targets, w)
		}
		for j := 0; j < d; j++ {
			targets = append(targets, int32(v))
		}
	}
	return b.Build()
}

// Community generates a planted-partition graph: n vertices in communities
// of ~commSize; each vertex initiates between 1 and 2·inDeg−1 (average
// inDeg) intra-community edges and outDeg inter-community edges. The spread
// of initiation counts leaves a realistic fraction of low-degree authors
// next to well-connected ones, the analog of the collaboration class
// (coAuthorsCiteseer: 29% DEG2, avg degree ≈ 7).
func Community(n, commSize, inDeg, outDeg int, seed uint64) *graph.Graph {
	if commSize < 2 {
		commSize = 2
	}
	if inDeg < 1 {
		inDeg = 1
	}
	b := graph.NewBuilder(n)
	rng := par.NewRNG(seed)
	commOf := func(v int) int { return v / commSize }
	commLo := func(c int) int { return c * commSize }
	commHi := func(c int) int {
		hi := (c + 1) * commSize
		if hi > n {
			hi = n
		}
		return hi
	}
	for v := 0; v < n; v++ {
		c := commOf(v)
		lo, hi := commLo(c), commHi(c)
		d := 1 + rng.Intn(2*inDeg-1)
		for j := 0; j < d; j++ {
			w := lo + rng.Intn(hi-lo)
			b.AddEdge(int32(v), int32(w))
		}
		for j := 0; j < outDeg; j++ {
			b.AddEdge(int32(v), int32(rng.Intn(n)))
		}
	}
	return b.Build()
}

// Banded generates a banded-matrix graph: vertex i connects to perRow
// random vertices within the band [i-band, i+band], plus pendant chains on
// a chainFrac fraction of vertices. The analog of the numerical class
// (c-73: band structure with ~49% deg ≤ 2 and ~15% bridges).
func Banded(n, band, perRow int, chainFrac float64, seed uint64) *graph.Graph {
	b := graph.NewBuilder(n)
	rng := par.NewRNG(seed)
	for v := 0; v < n; v++ {
		for j := 0; j < perRow; j++ {
			off := rng.Intn(2*band+1) - band
			w := v + off
			if w >= 0 && w < n && w != v {
				b.AddEdge(int32(v), int32(w))
			}
		}
	}
	next := int32(n)
	chains := int(float64(n) * chainFrac)
	for s := 0; s < chains; s++ {
		anchor := int32(rng.Intn(n))
		length := 1 + rng.Intn(3)
		prev := anchor
		for t := 0; t < length; t++ {
			b.SetNumVertices(int(next) + 1)
			b.AddEdge(prev, next)
			prev = next
			next++
		}
	}
	return b.Build()
}

// LP generates an analog of the lp1 linear-programming constraint graph: a
// bipartite-ish structure that is almost a forest — chains and stars with
// >90% of vertices of degree ≤ 2 and >90% of edges bridges — plus a small
// cyclic core so the graph is not a pure tree.
func LP(n int, seed uint64) *graph.Graph {
	b := graph.NewBuilder(n)
	rng := par.NewRNG(seed)
	// A small dense core of star centers (~2% of vertices).
	core := n / 50
	if core < 2 {
		core = 2
	}
	// Spread the remaining vertices as long chains (length 1..48) hung on
	// random core vertices, emulating chained constraint rows; the long
	// degree-2 paths are what give lp1 its %DEG2 = 94 and %BRIDGES = 93.
	v := core
	for v < n {
		anchor := rng.Intn(core)
		length := 1 + rng.Intn(48)
		prev := int32(anchor)
		for t := 0; t < length && v < n; t++ {
			b.AddEdge(prev, int32(v))
			prev = int32(v)
			v++
		}
	}
	// Sparse cycles among core vertices (non-bridge edges, keeps %BRIDGES
	// near but below 100).
	for i := 0; i < core; i++ {
		b.AddEdge(int32(i), int32((i+1)%core))
	}
	b.SetNumVertices(n)
	return b.Build()
}

// Web generates an analog of the webbase crawl class: preferential
// attachment hubs with long pendant chains (webbase-1M: 87% deg ≤ 2, 38%
// bridges, avg degree ≈ 4).
func Web(n int, seed uint64) *graph.Graph {
	hubPart := n / 4
	if hubPart < 10 {
		hubPart = 10
	}
	core := PrefAttach(hubPart, 5, seed)
	return PadChains(core, n-hubPart, 30, par.Hash64(seed, 1))
}

// PadChains appends extra pendant chain vertices (length 1..maxLen each) to
// random vertices of g. Real-world collaboration/citation/web graphs carry
// a sizeable population of degree ≤ 2 vertices (Table II's %DEG2 column)
// that pure attachment models underproduce; padding restores it, and every
// padded edge is a bridge.
func PadChains(g *graph.Graph, extra, maxLen int, seed uint64) *graph.Graph {
	if extra <= 0 {
		return g
	}
	if maxLen < 1 {
		maxLen = 1
	}
	base := g.NumVertices()
	b := graph.NewBuilder(base + extra)
	b.AddEdges(g.Edges())
	rng := par.NewRNG(seed)
	next := int32(base)
	for int(next) < base+extra {
		anchor := int32(rng.Intn(base))
		length := 1 + rng.Intn(maxLen)
		prev := anchor
		for t := 0; t < length && int(next) < base+extra; t++ {
			b.AddEdge(prev, next)
			prev = next
			next++
		}
	}
	return b.Build()
}

// DegreeHistogram returns the sorted distinct degrees and their counts,
// a helper for generator tests and the graphstat tool.
func DegreeHistogram(g *graph.Graph) (degrees []int32, counts []int64) {
	hist := map[int32]int64{}
	for v := 0; v < g.NumVertices(); v++ {
		hist[g.Degree(int32(v))]++
	}
	for d := range hist {
		degrees = append(degrees, d)
	}
	slices.Sort(degrees)
	counts = make([]int64, len(degrees))
	for i, d := range degrees {
		counts[i] = hist[d]
	}
	return degrees, counts
}
