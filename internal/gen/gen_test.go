package gen

import (
	"testing"

	"repro/internal/graph"
)

func TestKronShape(t *testing.T) {
	g := Kron(12, 16, 1)
	if g.NumVertices() != 4096 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Dedup and self-loop removal shrink the count; still expect a dense
	// heavy-tailed graph.
	if g.NumEdges() < 4096*4 {
		t.Fatalf("m = %d, too sparse for edge factor 16", g.NumEdges())
	}
	// Heavy tail: the max degree dwarfs the average.
	if float64(g.MaxDegree()) < 5*g.AvgDegree() {
		t.Fatalf("max degree %d vs avg %.1f: no heavy tail", g.MaxDegree(), g.AvgDegree())
	}
}

func TestKronDeterministic(t *testing.T) {
	a := Kron(10, 8, 7)
	b := Kron(10, 8, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("Kron not deterministic")
	}
	c := Kron(10, 8, 8)
	if a.NumEdges() == c.NumEdges() && a.MaxDegree() == c.MaxDegree() {
		t.Log("warning: different seeds produced identical summary (possible but unlikely)")
	}
}

func TestRGGShape(t *testing.T) {
	n := 5000
	target := 12.0
	g := RGG(n, DegreeRadius(n, target), 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.AvgDegree() < target*0.7 || g.AvgDegree() > target*1.3 {
		t.Fatalf("avg degree %.1f, want ≈ %.0f", g.AvgDegree(), target)
	}
	// The defining Table II property of rgg at this density: essentially no
	// degree ≤ 2 vertices.
	s := graph.ComputeStats(g, false)
	if s.PctDeg2 > 5 {
		t.Fatalf("%%DEG2 = %.1f, want ≈ 0", s.PctDeg2)
	}
}

func TestRoadShape(t *testing.T) {
	g := Road(30, 30, 4, 0.3, 5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := graph.ComputeStats(g, true)
	// Road class: avg degree ≈ 2, majority of vertices degree ≤ 2,
	// noticeable bridges from the spurs.
	if s.AvgDegree > 3.0 {
		t.Fatalf("avg degree %.2f, want road-like ≈ 2", s.AvgDegree)
	}
	if s.PctDeg2 < 50 {
		t.Fatalf("%%DEG2 = %.1f, want > 50", s.PctDeg2)
	}
	if s.PctBridges < 5 {
		t.Fatalf("%%BRIDGES = %.1f, want noticeable", s.PctBridges)
	}
}

func TestPrefAttachShape(t *testing.T) {
	g := PrefAttach(4000, 5, 2)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.AvgDegree() < 6 || g.AvgDegree() > 11 {
		t.Fatalf("avg degree %.1f, want ≈ 2·outdeg", g.AvgDegree())
	}
	if float64(g.MaxDegree()) < 4*g.AvgDegree() {
		t.Fatalf("max degree %d: no hubs", g.MaxDegree())
	}
	// Connected by construction.
	s := graph.ComputeStats(g, false)
	if s.Components != 1 {
		t.Fatalf("%d components", s.Components)
	}
}

func TestCommunityShape(t *testing.T) {
	g := Community(3000, 30, 5, 1, 4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.AvgDegree() < 5 || g.AvgDegree() > 13 {
		t.Fatalf("avg degree %.1f", g.AvgDegree())
	}
}

func TestBandedShape(t *testing.T) {
	g := Banded(3000, 20, 4, 0.5, 6)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := graph.ComputeStats(g, true)
	if s.PctDeg2 < 20 {
		t.Fatalf("%%DEG2 = %.1f, want numerical-class mix", s.PctDeg2)
	}
	if s.PctBridges < 5 {
		t.Fatalf("%%BRIDGES = %.1f, want chains to add bridges", s.PctBridges)
	}
}

func TestLPShape(t *testing.T) {
	g := LP(20000, 7)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := graph.ComputeStats(g, true)
	// lp1's defining columns: ≈94% deg ≤ 2, ≈93% bridges, avg degree ≈ 2.
	if s.PctDeg2 < 85 {
		t.Fatalf("%%DEG2 = %.1f, want > 85", s.PctDeg2)
	}
	if s.PctBridges < 80 {
		t.Fatalf("%%BRIDGES = %.1f, want > 80", s.PctBridges)
	}
	if s.AvgDegree > 3 {
		t.Fatalf("avg degree %.1f, want ≈ 2", s.AvgDegree)
	}
}

func TestWebShape(t *testing.T) {
	g := Web(20000, 8)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := graph.ComputeStats(g, true)
	// webbase-1M: high %DEG2, lots of bridges, avg degree around 4.
	if s.PctDeg2 < 55 {
		t.Fatalf("%%DEG2 = %.1f, want chain-heavy", s.PctDeg2)
	}
	if s.PctBridges < 20 {
		t.Fatalf("%%BRIDGES = %.1f, want > 20", s.PctBridges)
	}
}

func TestDegreeHistogram(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	degs, counts := DegreeHistogram(g)
	// degrees: 0 (vertex 3), 1 (0 and 2), 2 (vertex 1)
	want := map[int32]int64{0: 1, 1: 2, 2: 1}
	if len(degs) != 3 {
		t.Fatalf("distinct degrees %v", degs)
	}
	for i, d := range degs {
		if counts[i] != want[d] {
			t.Fatalf("degree %d count %d, want %d", d, counts[i], want[d])
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	pairs := []func() *graph.Graph{
		func() *graph.Graph { return RGG(2000, DegreeRadius(2000, 10), 9) },
		func() *graph.Graph { return Road(10, 10, 3, 0.2, 9) },
		func() *graph.Graph { return PrefAttach(1000, 4, 9) },
		func() *graph.Graph { return Community(1000, 20, 4, 1, 9) },
		func() *graph.Graph { return Banded(1000, 10, 3, 0.3, 9) },
		func() *graph.Graph { return LP(2000, 9) },
		func() *graph.Graph { return Web(2000, 9) },
	}
	for i, mk := range pairs {
		a, b := mk(), mk()
		if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
			t.Fatalf("generator %d not deterministic", i)
		}
	}
}

func TestPrefAttachVarShape(t *testing.T) {
	g := PrefAttachVar(4000, 1, 9, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Average out-degree 5 → average degree ≈ 10; the low end creates a
	// deg ≤ 2 population pure PrefAttach lacks.
	if g.AvgDegree() < 6 || g.AvgDegree() > 12 {
		t.Fatalf("avg degree %.1f", g.AvgDegree())
	}
	s := graph.ComputeStats(g, false)
	if s.PctDeg2 < 5 {
		t.Fatalf("%%DEG2 = %.1f, want a visible low-degree tail", s.PctDeg2)
	}
	// Degenerate parameters clamp instead of failing.
	if g := PrefAttachVar(50, 0, 0, 1); g.NumVertices() != 50 {
		t.Fatal("clamped parameters broke the build")
	}
}

func TestPadChainsEdgeCases(t *testing.T) {
	base := PrefAttach(100, 3, 1)
	if g := PadChains(base, 0, 4, 2); g != base {
		t.Fatal("extra=0 must return the input unchanged")
	}
	g := PadChains(base, 57, 0, 2) // maxLen clamps to 1
	if g.NumVertices() != 157 {
		t.Fatalf("padded to %d vertices", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every one of the 57 padded leaf edges is a bridge.
	s := graph.ComputeStats(g, true)
	wantPct := 100 * 57.0 / float64(g.NumEdges())
	if s.PctBridges < wantPct-1 {
		t.Fatalf("%%BRIDGES = %.1f after padding, want ≥ %.1f", s.PctBridges, wantPct)
	}
}

func TestCommunityClamps(t *testing.T) {
	g := Community(100, 1, 0, 1, 5) // commSize and inDeg clamp
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWebSmall(t *testing.T) {
	g := Web(30, 4) // hubPart clamps to 10
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 30 {
		t.Fatalf("n = %d", g.NumVertices())
	}
}

func TestLPSmallCore(t *testing.T) {
	g := LP(60, 2) // core clamps to 2
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestKronStreamMatchesKron(t *testing.T) {
	const scale, ef, seed = 10, 8, 7
	want := Kron(scale, ef, seed)
	s := NewKronStream(scale, ef, seed)
	if s.NumVertices() != want.NumVertices() {
		t.Fatalf("stream n = %d, want %d", s.NumVertices(), want.NumVertices())
	}
	b := graph.NewBuilder(s.NumVertices())
	buf := make([]graph.Edge, 777) // odd batch size to exercise refills
	var total int64
	for {
		k, err := s.Next(buf)
		b.AddEdges(buf[:k])
		total += int64(k)
		if err != nil {
			break
		}
	}
	if total != s.NumEdges() {
		t.Fatalf("stream yielded %d edges, declared %d", total, s.NumEdges())
	}
	got := b.Build()
	if got.Fingerprint() != want.Fingerprint() {
		t.Fatalf("stream-built graph fingerprint %#x, want %#x", got.Fingerprint(), want.Fingerprint())
	}
}

func TestKronStreamExternalBuild(t *testing.T) {
	const scale, ef, seed = 9, 6, 3
	dir := t.TempDir()
	p := dir + "/kron.scsr"
	hdr, err := graph.BuildBinaryExternal(p, NewKronStream(scale, ef, seed),
		graph.ExtOptions{TmpDir: dir, ChunkArcs: 1 << 10, Buckets: 5})
	if err != nil {
		t.Fatal(err)
	}
	want := Kron(scale, ef, seed)
	if hdr.Fingerprint != want.Fingerprint() {
		t.Fatalf("external kron fingerprint %#x, want %#x", hdr.Fingerprint, want.Fingerprint())
	}
	if _, err := graph.VerifyBinaryFile(p); err != nil {
		t.Fatal(err)
	}
}
