package bfs

import (
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/par"
)

// Direction-optimizing BFS (Beamer et al.): when the frontier grows large,
// a bottom-up step — every unvisited vertex scans its neighbors for a
// frontier member — touches far fewer edges than pushing the whole
// frontier top-down. This is an extension beyond the paper (its BRIDGE
// decomposition uses plain level-synchronous BFS); the harness's
// bfs-ablation experiment measures what it buys on each dataset class.

// hybridThresholdDiv controls the switch: go bottom-up while the frontier
// holds more than n/hybridThresholdDiv vertices.
const hybridThresholdDiv = 16

// ForestHybrid is Forest with direction-optimizing traversal. It produces
// a valid BFS forest with identical Level arrays (levels are direction
// independent); Parent choices may differ from Forest's.
func ForestHybrid(g *graph.Graph) *Tree {
	n := g.NumVertices()
	label, nc := graph.ConnectedComponents(g)
	roots := make([]int32, nc)
	par.Fill(roots, int32(-1))
	for v := 0; v < n; v++ {
		if roots[label[v]] == -1 {
			roots[label[v]] = int32(v)
		}
	}
	return runHybrid(g, roots)
}

// FromRootHybrid is FromRoot with direction-optimizing traversal.
func FromRootHybrid(g *graph.Graph, root int32) *Tree {
	return runHybrid(g, []int32{root})
}

func runHybrid(g *graph.Graph, roots []int32) *Tree {
	n := g.NumVertices()
	t := &Tree{
		Parent: make([]int32, n),
		Level:  make([]int32, n),
		Roots:  roots,
	}
	par.Fill(t.Parent, Unreached)
	par.Fill(t.Level, int32(-1))

	visited := par.NewBitset(n)
	inFrontier := par.NewBitset(n)
	frontier := make([]int32, 0, len(roots))
	for _, r := range roots {
		if visited.TestAndSet(int(r)) {
			t.Parent[r] = -1
			t.Level[r] = 0
			frontier = append(frontier, r)
		}
	}

	level := int32(0)
	for len(frontier) > 0 {
		level++
		t.Depth++
		if len(frontier) > n/hybridThresholdDiv {
			frontier = stepBottomUp(g, t, visited, inFrontier, frontier, level)
		} else {
			frontier = expand(g, t, visited, frontier, level)
		}
	}
	return t
}

// stepBottomUp computes the next frontier by having every unvisited vertex
// look for a parent in the current frontier.
func stepBottomUp(g *graph.Graph, t *Tree, visited, inFrontier *par.Bitset, frontier []int32, level int32) []int32 {
	n := g.NumVertices()
	inFrontier.Reset()
	par.Range(len(frontier), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			inFrontier.Set(int(frontier[i]))
		}
	})
	nc := par.NumChunks(n)
	bufs := make([][]int32, nc)
	var found atomic.Int64
	par.RangeIdx(n, func(w, lo, hi int) {
		var out []int32
		for v := lo; v < hi; v++ {
			if visited.Test(v) {
				continue
			}
			for _, u := range g.Neighbors(int32(v)) {
				if inFrontier.Test(int(u)) {
					// No race: only this chunk owns v.
					visited.Set(v)
					t.Parent[v] = u
					t.Level[v] = level
					out = append(out, int32(v))
					found.Add(1)
					break
				}
			}
		}
		bufs[w] = out
	})
	next := make([]int32, 0, found.Load())
	for _, b := range bufs {
		next = append(next, b...)
	}
	return next
}
