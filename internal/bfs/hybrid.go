package bfs

import (
	"repro/internal/frontier"
	"repro/internal/graph"
)

// Direction-optimizing BFS (Beamer et al.): when the frontier grows large,
// a bottom-up step — every unvisited vertex scans its neighbors for a
// frontier member — touches far fewer edges than pushing the whole
// frontier top-down. This is an extension beyond the paper (its BRIDGE
// decomposition uses plain level-synchronous BFS); the harness's
// bfs-ablation experiment measures what it buys on each dataset class.
//
// The push/pull switch itself lives in internal/frontier: the hybrid
// variants simply run the shared search loop on an engine with the
// default (tunable) threshold divisor instead of pinning push-only.

// ForestHybrid is Forest with direction-optimizing traversal. It produces
// a valid BFS forest with identical Level arrays (levels are direction
// independent); Parent choices may differ from Forest's.
func ForestHybrid(g *graph.Graph) *Tree {
	return run(g, forestRoots(g), &frontier.Engine{})
}

// FromRootHybrid is FromRoot with direction-optimizing traversal.
func FromRootHybrid(g *graph.Graph, root int32) *Tree {
	return run(g, []int32{root}, &frontier.Engine{})
}
