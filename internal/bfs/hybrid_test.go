package bfs

import (
	"testing"

	"repro/internal/graph"
)

func TestHybridLevelsMatchPlainBFS(t *testing.T) {
	cases := []*graph.Graph{
		pathGraph(200),
		gridGraph(40, 40),
		randomGraph(2000, 12000, 1), // dense enough to trigger bottom-up
		randomGraph(500, 400, 2),    // disconnected
	}
	for ci, g := range cases {
		plain := Forest(g)
		hybrid := ForestHybrid(g)
		checkTree(t, g, hybrid)
		for v := 0; v < g.NumVertices(); v++ {
			if plain.Level[v] != hybrid.Level[v] {
				t.Fatalf("case %d: level[%d] = %d (hybrid) vs %d (plain)",
					ci, v, hybrid.Level[v], plain.Level[v])
			}
		}
		if plain.Depth != hybrid.Depth {
			t.Fatalf("case %d: depth %d vs %d", ci, hybrid.Depth, plain.Depth)
		}
	}
}

func TestFromRootHybridSingleSource(t *testing.T) {
	g := gridGraph(30, 30)
	tr := FromRootHybrid(g, 0)
	checkTree(t, g, tr)
	want := sequentialLevels(g, 0)
	for v := range want {
		if tr.Level[v] != want[v] {
			t.Fatalf("level[%d] = %d, want %d", v, tr.Level[v], want[v])
		}
	}
}

func TestHybridBottomUpActuallyTriggers(t *testing.T) {
	// A star triggers the bottom-up branch at level 1: the frontier after
	// visiting the center's neighbors... actually the *first* expansion is
	// top-down from one root; make a graph whose level-1 frontier exceeds
	// n/16: a complete bipartite-ish blob.
	b := graph.NewBuilder(200)
	for i := 1; i < 200; i++ {
		b.AddEdge(0, int32(i))
	}
	for i := 1; i < 100; i++ {
		b.AddEdge(int32(i), int32(i+100))
	}
	g := b.Build()
	tr := FromRootHybrid(g, 0)
	checkTree(t, g, tr)
	if tr.Depth != 2 {
		t.Fatalf("depth = %d", tr.Depth)
	}
}
