// Package bfs implements level-synchronous parallel breadth-first search.
// It produces the parent and level arrays (P(v), L(v)) that Step 1 of the
// paper's BRIDGE decomposition (Algorithm 1) requires, and supports
// multi-source searches so decomposition also works on disconnected inputs
// (the RAND and DEGk subgraphs "may be disconnected in nature").
//
// Both traversals run on the internal/frontier engine: plain BFS pins the
// engine to push-only (frontier.NoPull), the hybrid variant lets the
// engine switch directions per the Beamer heuristic.
package bfs

import (
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/par"
)

// Unreached marks a vertex the search did not visit.
const Unreached int32 = -2

// Tree is a BFS forest over a graph. For a root r, Parent[r] == -1 and
// Level[r] == 0, matching the paper's convention. Vertices not reached have
// Parent == Unreached and Level == -1.
type Tree struct {
	Parent []int32
	Level  []int32
	Roots  []int32
	// Depth is the number of BFS levels executed (the height of the
	// deepest tree plus one); it is also the number of parallel rounds,
	// the quantity that makes BRIDGE slow on large-diameter graphs.
	Depth int
}

// IsTreeEdge reports whether {u, v} is a tree edge of the forest.
func (t *Tree) IsTreeEdge(u, v int32) bool {
	return t.Parent[u] == v || t.Parent[v] == u
}

// FromRoot runs a parallel BFS from a single root.
func FromRoot(g *graph.Graph, root int32) *Tree {
	return run(g, []int32{root}, &frontier.Engine{PullDiv: frontier.NoPull})
}

// Forest runs parallel BFS from the smallest-id vertex of every connected
// component, covering all vertices.
func Forest(g *graph.Graph) *Tree {
	return run(g, forestRoots(g), &frontier.Engine{PullDiv: frontier.NoPull})
}

// forestRoots returns the smallest-id vertex of every connected component.
func forestRoots(g *graph.Graph) []int32 {
	n := g.NumVertices()
	label, nc := graph.ConnectedComponents(g)
	roots := make([]int32, nc)
	par.Fill(roots, int32(-1))
	// Component ids are ordered by smallest member, so the first vertex of
	// each component encountered in index order is its smallest.
	for v := 0; v < n; v++ {
		if roots[label[v]] == -1 {
			roots[label[v]] = int32(v)
		}
	}
	return roots
}

// run executes the level-synchronous search from the given roots on the
// given frontier engine. Each round relaxes the frontier's out-edges with
// an atomic visited claim: the claim winner becomes the parent, so Level
// is deterministic (levels are direction independent) while Parent may
// vary between runs in pushed rounds and is the smallest-id frontier
// neighbor in pulled rounds.
func run(g *graph.Graph, roots []int32, eng *frontier.Engine) *Tree {
	n := g.NumVertices()
	t := &Tree{
		Parent: make([]int32, n),
		Level:  make([]int32, n),
		Roots:  roots,
	}
	par.Fill(t.Parent, Unreached)
	par.Fill(t.Level, int32(-1))

	visited := par.NewBitset(n)
	seed := make([]int32, 0, len(roots))
	for _, r := range roots {
		if visited.TestAndSet(int(r)) {
			t.Parent[r] = -1
			t.Level[r] = 0
			seed = append(seed, r)
		}
	}

	f := frontier.New(n, seed)
	level := int32(0)
	for !f.IsEmpty() {
		level++
		t.Depth++
		lv := level
		f = eng.EdgeMap(g, f, frontier.Ops{
			Cond: func(v int32) bool {
				return !visited.Test(int(v))
			},
			Update: func(u, v int32) bool {
				if visited.TestAndSet(int(v)) {
					t.Parent[v] = u
					t.Level[v] = lv
					return true
				}
				return false
			},
		})
	}
	return t
}
