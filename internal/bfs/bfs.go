// Package bfs implements level-synchronous parallel breadth-first search.
// It produces the parent and level arrays (P(v), L(v)) that Step 1 of the
// paper's BRIDGE decomposition (Algorithm 1) requires, and supports
// multi-source searches so decomposition also works on disconnected inputs
// (the RAND and DEGk subgraphs "may be disconnected in nature").
package bfs

import (
	"repro/internal/graph"
	"repro/internal/par"
)

// Unreached marks a vertex the search did not visit.
const Unreached int32 = -2

// Tree is a BFS forest over a graph. For a root r, Parent[r] == -1 and
// Level[r] == 0, matching the paper's convention. Vertices not reached have
// Parent == Unreached and Level == -1.
type Tree struct {
	Parent []int32
	Level  []int32
	Roots  []int32
	// Depth is the number of BFS levels executed (the height of the
	// deepest tree plus one); it is also the number of parallel rounds,
	// the quantity that makes BRIDGE slow on large-diameter graphs.
	Depth int
}

// IsTreeEdge reports whether {u, v} is a tree edge of the forest.
func (t *Tree) IsTreeEdge(u, v int32) bool {
	return t.Parent[u] == v || t.Parent[v] == u
}

// FromRoot runs a parallel BFS from a single root.
func FromRoot(g *graph.Graph, root int32) *Tree {
	return run(g, []int32{root})
}

// Forest runs parallel BFS from the smallest-id vertex of every connected
// component, covering all vertices.
func Forest(g *graph.Graph) *Tree {
	n := g.NumVertices()
	label, nc := graph.ConnectedComponents(g)
	roots := make([]int32, nc)
	par.Fill(roots, int32(-1))
	// Component ids are ordered by smallest member, so the first vertex of
	// each component encountered in index order is its smallest.
	for v := 0; v < n; v++ {
		if roots[label[v]] == -1 {
			roots[label[v]] = int32(v)
		}
	}
	return run(g, roots)
}

// run executes the level-synchronous search from the given roots.
func run(g *graph.Graph, roots []int32) *Tree {
	n := g.NumVertices()
	t := &Tree{
		Parent: make([]int32, n),
		Level:  make([]int32, n),
		Roots:  roots,
	}
	par.Fill(t.Parent, Unreached)
	par.Fill(t.Level, int32(-1))

	visited := par.NewBitset(n)
	frontier := make([]int32, 0, len(roots))
	for _, r := range roots {
		if visited.TestAndSet(int(r)) {
			t.Parent[r] = -1
			t.Level[r] = 0
			frontier = append(frontier, r)
		}
	}

	level := int32(0)
	for len(frontier) > 0 {
		level++
		next := expand(g, t, visited, frontier, level)
		frontier = next
		t.Depth++
	}
	return t
}

// expand computes the next frontier: every unvisited neighbor of the
// current frontier is claimed atomically by exactly one parent. Per-chunk
// output buffers are concatenated with a prefix sum so the result is
// allocated once.
func expand(g *graph.Graph, t *Tree, visited *par.Bitset, frontier []int32, level int32) []int32 {
	nf := len(frontier)
	nc := par.NumChunks(nf)
	bufs := make([][]int32, nc)
	par.RangeIdx(nf, func(w, lo, hi int) {
		var out []int32
		for i := lo; i < hi; i++ {
			v := frontier[i]
			for _, u := range g.Neighbors(v) {
				if visited.TestAndSet(int(u)) {
					t.Parent[u] = v
					t.Level[u] = level
					out = append(out, u)
				}
			}
		}
		bufs[w] = out
	})
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	next := make([]int32, 0, total)
	for _, b := range bufs {
		next = append(next, b...)
	}
	return next
}
