package bfs

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/par"
)

func pathGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.Build()
}

func gridGraph(r, c int) *graph.Graph {
	b := graph.NewBuilder(r * c)
	id := func(i, j int) int32 { return int32(i*c + j) }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				b.AddEdge(id(i, j), id(i, j+1))
			}
			if i+1 < r {
				b.AddEdge(id(i, j), id(i+1, j))
			}
		}
	}
	return b.Build()
}

func randomGraph(n, m int, seed uint64) *graph.Graph {
	r := par.NewRNG(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	return b.Build()
}

// sequentialLevels is the oracle for BFS distances.
func sequentialLevels(g *graph.Graph, root int32) []int32 {
	n := g.NumVertices()
	lvl := make([]int32, n)
	for i := range lvl {
		lvl[i] = -1
	}
	lvl[root] = 0
	q := []int32{root}
	for len(q) > 0 {
		v := q[0]
		q = q[1:]
		for _, w := range g.Neighbors(v) {
			if lvl[w] == -1 {
				lvl[w] = lvl[v] + 1
				q = append(q, w)
			}
		}
	}
	return lvl
}

// checkTree verifies structural invariants of a BFS tree/forest.
func checkTree(t *testing.T, g *graph.Graph, tr *Tree) {
	t.Helper()
	for v := 0; v < g.NumVertices(); v++ {
		p := tr.Parent[v]
		switch {
		case p == Unreached:
			if tr.Level[v] != -1 {
				t.Fatalf("unreached vertex %d has level %d", v, tr.Level[v])
			}
		case p == -1:
			if tr.Level[v] != 0 {
				t.Fatalf("root %d has level %d", v, tr.Level[v])
			}
		default:
			if !g.HasEdge(int32(v), p) {
				t.Fatalf("tree edge {%d,%d} not in graph", v, p)
			}
			if tr.Level[v] != tr.Level[p]+1 {
				t.Fatalf("level[%d]=%d but level[parent=%d]=%d", v, tr.Level[v], p, tr.Level[p])
			}
		}
	}
}

func TestFromRootLevelsMatchOracle(t *testing.T) {
	cases := []*graph.Graph{
		pathGraph(100),
		gridGraph(20, 30),
		randomGraph(500, 2500, 1),
	}
	for ci, g := range cases {
		tr := FromRoot(g, 0)
		checkTree(t, g, tr)
		want := sequentialLevels(g, 0)
		for v := range want {
			if tr.Level[v] != want[v] {
				t.Fatalf("case %d: level[%d] = %d, want %d", ci, v, tr.Level[v], want[v])
			}
		}
	}
}

func TestFromRootDepth(t *testing.T) {
	g := pathGraph(50)
	tr := FromRoot(g, 0)
	if tr.Depth != 50 {
		t.Fatalf("Depth = %d, want 50 (49 levels + root round)", tr.Depth)
	}
}

func TestFromRootUnreached(t *testing.T) {
	// Two components; BFS from component 0 leaves component 1 unreached.
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	g := b.Build()
	tr := FromRoot(g, 0)
	for _, v := range []int32{2, 3, 4, 5} {
		if tr.Parent[v] != Unreached || tr.Level[v] != -1 {
			t.Fatalf("vertex %d should be unreached, got parent=%d level=%d", v, tr.Parent[v], tr.Level[v])
		}
	}
}

func TestForestCoversDisconnected(t *testing.T) {
	b := graph.NewBuilder(10)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	// 5..9 isolated
	g := b.Build()
	tr := Forest(g)
	checkTree(t, g, tr)
	for v := 0; v < g.NumVertices(); v++ {
		if tr.Parent[v] == Unreached {
			t.Fatalf("Forest left vertex %d unreached", v)
		}
	}
	if len(tr.Roots) != 7 { // components: {0,1},{2,3,4},5,6,7,8,9
		t.Fatalf("Forest has %d roots, want 7", len(tr.Roots))
	}
}

func TestIsTreeEdge(t *testing.T) {
	g := pathGraph(4)
	tr := FromRoot(g, 0)
	if !tr.IsTreeEdge(0, 1) || !tr.IsTreeEdge(1, 0) {
		t.Fatal("path edge not recognized as tree edge")
	}
	if tr.IsTreeEdge(0, 2) {
		t.Fatal("non-edge claimed as tree edge")
	}
}

func TestTreeEdgeCountEqualsReachedMinusRoots(t *testing.T) {
	g := randomGraph(1000, 3000, 5)
	tr := Forest(g)
	treeEdges := 0
	for v := 0; v < g.NumVertices(); v++ {
		if tr.Parent[v] >= 0 {
			treeEdges++
		}
	}
	if treeEdges != g.NumVertices()-len(tr.Roots) {
		t.Fatalf("tree edges %d, want n-roots = %d", treeEdges, g.NumVertices()-len(tr.Roots))
	}
}

func TestLargeParallelBFS(t *testing.T) {
	// Wide shallow graph: star of stars, exercises big frontiers.
	b := graph.NewBuilder(1 + 100 + 100*1000)
	next := int32(101)
	for h := int32(1); h <= 100; h++ {
		b.AddEdge(0, h)
		for l := 0; l < 1000; l++ {
			b.AddEdge(h, next)
			next++
		}
	}
	g := b.Build()
	tr := FromRoot(g, 0)
	checkTree(t, g, tr)
	if tr.Depth != 3 {
		t.Fatalf("Depth = %d, want 3", tr.Depth)
	}
}
