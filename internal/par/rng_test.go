package par

import (
	"testing"
	"testing/quick"
)

func TestHash64Deterministic(t *testing.T) {
	if Hash64(1, 2) != Hash64(1, 2) {
		t.Fatal("Hash64 not deterministic")
	}
	if Hash64(1, 2) == Hash64(1, 3) || Hash64(1, 2) == Hash64(2, 2) {
		t.Fatal("Hash64 collides on adjacent inputs (suspicious)")
	}
}

func TestHash2Symmetric(t *testing.T) {
	if err := quick.Check(func(seed uint64, a, b int64) bool {
		return Hash2(seed, a, b) == Hash2(seed, b, a)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashRangeInBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64, i int64, n uint8) bool {
		k := int(n)%100 + 1
		v := HashRange(seed, i, k)
		return v >= 0 && v < k
	}, nil); err != nil {
		t.Fatal(err)
	}
	if HashRange(5, 9, 1) != 0 || HashRange(5, 9, 0) != 0 {
		t.Fatal("HashRange degenerate n")
	}
}

func TestHashRangeRoughlyUniform(t *testing.T) {
	const k, trials = 10, 100000
	counts := make([]int, k)
	for i := 0; i < trials; i++ {
		counts[HashRange(42, int64(i), k)]++
	}
	for part, c := range counts {
		// Each bucket should hold ~10% ± 2% absolute.
		if c < trials/k*8/10 || c > trials/k*12/10 {
			t.Fatalf("bucket %d has %d of %d draws", part, c, trials)
		}
	}
}

func TestRNGStreamsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between differently seeded streams", same)
	}
}

func TestRNGIntnBoundsAndPanic(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(13); v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v", f)
		}
	}
}

func TestRNGSplitIndependent(t *testing.T) {
	r := NewRNG(3)
	s := r.Split()
	// The split stream must differ from the parent's continuation.
	same := 0
	for i := 0; i < 64; i++ {
		if r.Uint64() == s.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("split stream tracks parent (%d collisions)", same)
	}
}

func TestZeroValueRNGUsable(t *testing.T) {
	var r RNG
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero-value RNG emits zeros")
	}
}
