package par

import "slices"

// SortSlice sorts data by less using a parallel merge sort: the slice is
// split into worker-count runs sorted concurrently with the (non-reflective)
// standard-library pdqsort, then merged pairwise in parallel rounds. Stable
// ordering is not guaranteed (callers needing stability sort on a unique
// key). Used by the graph builder, where edge-list sorting dominates
// construction time on multi-million-edge instances.
func SortSlice[T any](data []T, less func(a, b T) bool) {
	n := len(data)
	workers := Workers()
	cmp := func(a, b T) int {
		switch {
		case less(a, b):
			return -1
		case less(b, a):
			return 1
		default:
			return 0
		}
	}
	if workers == 1 || n < 4*minGrain {
		slices.SortFunc(data, cmp)
		return
	}
	// Split into runs. Each run is coarse work, so the runs go through Do
	// (one chunk per run) rather than a grained loop.
	runs := workers
	if runs > n {
		runs = n
	}
	bounds := make([]int, runs+1)
	for i := 0; i <= runs; i++ {
		bounds[i] = i * n / runs
	}
	Do(runs, func(r int) {
		slices.SortFunc(data[bounds[r]:bounds[r+1]], cmp)
	})
	// Merge rounds: pair up adjacent runs until one remains.
	buf := make([]T, n)
	src, dst := data, buf
	for len(bounds) > 2 {
		nb := make([]int, 0, len(bounds)/2+2)
		nb = append(nb, 0)
		pairs := (len(bounds) - 1) / 2
		Do(pairs, func(p int) {
			lo, mid, hi := bounds[2*p], bounds[2*p+1], bounds[2*p+2]
			mergeInto(dst[lo:hi], src[lo:mid], src[mid:hi], less)
		})
		for p := 0; p < pairs; p++ {
			nb = append(nb, bounds[2*p+2])
		}
		// A trailing odd run copies through.
		if (len(bounds)-1)%2 == 1 {
			lo, hi := bounds[len(bounds)-2], bounds[len(bounds)-1]
			copy(dst[lo:hi], src[lo:hi])
			nb = append(nb, hi)
		}
		bounds = nb
		src, dst = dst, src
	}
	if &src[0] != &data[0] {
		copy(data, src)
	}
}

// mergeInto merges sorted a and b into out (len(out) == len(a)+len(b)).
func mergeInto[T any](out, a, b []T, less func(x, y T) bool) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out[k] = b[j]
			j++
		} else {
			out[k] = a[i]
			i++
		}
		k++
	}
	copy(out[k:], a[i:])
	copy(out[k+len(a)-i:], b[j:])
}

// SortInt32 sorts an int32 slice in parallel.
func SortInt32(data []int32) {
	SortSlice(data, func(a, b int32) bool { return a < b })
}
