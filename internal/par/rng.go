package par

// Deterministic, splittable random number generation. All randomized
// algorithms in this repository (RAND decomposition, Luby's MIS, LMAX edge
// weights, GM priorities) draw either per-element hashes — Hash64(seed, i),
// which is trivially parallel and reproducible regardless of worker count —
// or a sequential stream from RNG when order does not matter.

// splitmix64 advances a SplitMix64 state and returns the next output.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hash64 mixes a seed with an index into a uniform 64-bit value. Distinct
// (seed, i) pairs give independent-looking outputs; the function is pure, so
// parallel loops using it are deterministic under any schedule.
func Hash64(seed uint64, i int64) uint64 {
	s := seed + uint64(i)*0x9e3779b97f4a7c15
	return splitmix64(&s)
}

// Hash2 mixes a seed with two indices (e.g. an edge's endpoints) into a
// uniform 64-bit value, symmetric in the two indices so both directions of
// an undirected edge hash identically.
func Hash2(seed uint64, a, b int64) uint64 {
	if a > b {
		a, b = b, a
	}
	h := Hash64(seed, a)
	return Hash64(h, b)
}

// HashRange maps Hash64(seed, i) to [0, n).
func HashRange(seed uint64, i int64, n int) int {
	if n <= 1 {
		return 0
	}
	// Multiply-shift range reduction (Lemire); avoids modulo bias enough for
	// our load-balancing uses.
	h := Hash64(seed, i)
	return int((h >> 32) * uint64(n) >> 32)
}

// RNG is a small deterministic sequential generator (SplitMix64). The zero
// value is a valid generator seeded with 0; use NewRNG for an explicit seed.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 { return splitmix64(&r.state) }

// Intn returns a value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("par: RNG.Intn with non-positive n")
	}
	return int((r.Uint64() >> 32) * uint64(n) >> 32)
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Split returns a new generator whose stream is independent of r's
// continuation, for handing to a parallel task.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0x6a09e667f3bcc909}
}
