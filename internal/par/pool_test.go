package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestPoolSpawnsNoGoroutinesPerCall drives many parallel loops and checks
// the goroutine population stays bounded by the pool size: the whole point
// of the persistent pool is that steady-state calls launch nothing.
func TestPoolSpawnsNoGoroutinesPerCall(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(4)
	// Warm the pool.
	For(100000, func(i int) {})
	before := runtime.NumGoroutine()
	for k := 0; k < 500; k++ {
		For(100000, func(i int) {})
	}
	after := runtime.NumGoroutine()
	if after > before+4 {
		t.Fatalf("goroutines grew from %d to %d across 500 pooled loops", before, after)
	}
}

func TestNestedParallelCalls(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(4)
	const outer, inner = 4000, 2000
	var total atomic.Int64
	// Outer loop large enough to go parallel; each chunk issues a nested
	// parallel loop. Nested submissions must make progress even when every
	// pool worker is busy with the outer loop (the caller self-executes).
	Range(outer, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i%1000 == 0 {
				var sub atomic.Int64
				For(inner, func(j int) { sub.Add(1) })
				if sub.Load() != inner {
					t.Errorf("nested loop ran %d of %d iterations", sub.Load(), inner)
				}
			}
			total.Add(1)
		}
	})
	if total.Load() != outer {
		t.Fatalf("outer loop ran %d of %d iterations", total.Load(), outer)
	}
}

func TestDeeplyNestedCalls(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(3)
	var leaves atomic.Int64
	Do(3, func(i int) {
		Do(3, func(j int) {
			For(2048, func(k int) {
				if k == 0 {
					leaves.Add(1)
				}
			})
		})
	})
	if leaves.Load() != 9 {
		t.Fatalf("deep nesting executed %d of 9 leaf loops", leaves.Load())
	}
}

func TestSetWorkersMidStream(t *testing.T) {
	defer SetWorkers(0)
	n := 300000
	sum := func() int64 {
		var s atomic.Int64
		For(n, func(i int) { s.Add(int64(i)) })
		return s.Load()
	}
	want := int64(n) * int64(n-1) / 2
	for _, w := range []int{7, 2, 16, 1, 3} {
		SetWorkers(w)
		if got := sum(); got != want {
			t.Fatalf("workers=%d: sum=%d want %d", w, got, want)
		}
		if nc := NumChunks(n); nc < 1 {
			t.Fatalf("workers=%d: NumChunks=%d", w, nc)
		}
	}
}

func TestConcurrentTopLevelLoops(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				var s atomic.Int64
				For(50000, func(i int) { s.Add(1) })
				if s.Load() != 50000 {
					t.Errorf("concurrent loop ran %d iterations", s.Load())
				}
			}
		}()
	}
	wg.Wait()
}

func TestZeroAndTinyLoops(t *testing.T) {
	For(0, func(i int) { t.Error("For(0) ran body") })
	Range(0, func(lo, hi int) { t.Error("Range(0) ran body") })
	RangeIdx(0, func(w, lo, hi int) { t.Error("RangeIdx(0) ran body") })
	Do(0, func(i int) { t.Error("Do(0) ran body") })
	DoN(-3, 4, func(i int) { t.Error("DoN(-3) ran body") })
	if got := NumChunks(0); got != 0 {
		t.Fatalf("NumChunks(0) = %d", got)
	}
	ran := 0
	For(1, func(i int) { ran++ })
	Do(1, func(i int) { ran++ })
	if ran != 2 {
		t.Fatalf("single-element loops ran %d bodies", ran)
	}
}

func TestAdaptiveGrain(t *testing.T) {
	// The grain scales with n/workers instead of a fixed constant, floors
	// at minAdaptiveGrain, and targets chunksPerWorker chunks per worker.
	if g := grainFor(1<<20, 4); g != (1<<20)/(4*chunksPerWorker) {
		t.Fatalf("grainFor(1M, 4) = %d", g)
	}
	if g := grainFor(2048, 8); g != minAdaptiveGrain {
		t.Fatalf("grainFor(2048, 8) = %d, want floor %d", g, minAdaptiveGrain)
	}
	for _, tc := range []struct{ n, w int }{
		{1024, 2}, {4096, 3}, {1 << 20, 7}, {12345, 16}, {minGrain, 2},
	} {
		nc := numChunksFor(tc.n, tc.w)
		if nc < 1 || nc > chunksPerWorker*tc.w+1 {
			t.Fatalf("numChunksFor(%d, %d) = %d", tc.n, tc.w, nc)
		}
		g := grainFor(tc.n, tc.w)
		if (tc.n+g-1)/g != nc {
			t.Fatalf("n=%d w=%d: grain %d disagrees with %d chunks", tc.n, tc.w, g, nc)
		}
	}
	// Below the sequential cutoff everything is one chunk.
	if nc := numChunksFor(minGrain-1, 8); nc != 1 {
		t.Fatalf("numChunksFor(%d, 8) = %d, want 1", minGrain-1, nc)
	}
}

func TestPanicPropagatesFromPooledChunk(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(4)
	mustPanic := func(name string, f func()) {
		defer func() {
			if r := recover(); r == nil {
				t.Fatalf("%s: panic did not propagate", name)
			}
		}()
		f()
	}
	mustPanic("For", func() {
		For(100000, func(i int) {
			if i == 99999 {
				panic("boom")
			}
		})
	})
	// The pool must stay usable after a body panicked.
	var s atomic.Int64
	For(100000, func(i int) { s.Add(1) })
	if s.Load() != 100000 {
		t.Fatalf("pool broken after panic: ran %d iterations", s.Load())
	}
}

func TestDoRunsEveryIndexInParallel(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(4)
	for _, k := range []int{1, 2, 3, 7, 64} {
		hits := make([]int32, k)
		Do(k, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("k=%d: index %d ran %d times", k, i, h)
			}
		}
	}
	// Unlike For, Do must not fall into the sequential cutoff for small k:
	// with workers > 1 it must be able to overlap two coarse tasks. Verify
	// by rendezvous: two tasks that each wait for the other to start.
	var started atomic.Int32
	Do(2, func(i int) {
		started.Add(1)
		for started.Load() < 2 {
			runtime.Gosched()
		}
	})
}

func TestStatsCounters(t *testing.T) {
	defer SetWorkers(0)
	defer EnableStats(false)
	SetWorkers(4)
	EnableStats(true)
	ResetStats()
	For(1<<20, func(i int) {})
	For(10, func(i int) {})
	st := SnapshotStats()
	if st.Tasks != 1 {
		t.Fatalf("Tasks = %d, want 1", st.Tasks)
	}
	if st.SeqLoops != 1 {
		t.Fatalf("SeqLoops = %d, want 1", st.SeqLoops)
	}
	if st.Chunks == 0 || st.Chunks != st.SpawnsAvoided {
		t.Fatalf("Chunks = %d, SpawnsAvoided = %d", st.Chunks, st.SpawnsAvoided)
	}
	if st.Steals > st.Chunks {
		t.Fatalf("Steals = %d exceeds Chunks = %d", st.Steals, st.Chunks)
	}
	EnableStats(false)
	ResetStats()
	For(1<<20, func(i int) {})
	if st := SnapshotStats(); st.Tasks != 0 {
		t.Fatalf("stats collected while disabled: %+v", st)
	}
}

func TestScratchReusesBuffers(t *testing.T) {
	var s Scratch[int64]
	b1 := s.Get(100)
	if len(b1) != 100 {
		t.Fatalf("Get(100) returned len %d", len(b1))
	}
	s.Put(b1)
	b2 := s.Get(50)
	if &b1[0] != &b2[0] {
		t.Fatal("Scratch did not reuse the returned buffer")
	}
	b3 := s.Get(200) // nothing retained is big enough
	if len(b3) != 200 {
		t.Fatalf("Get(200) returned len %d", len(b3))
	}
	s.Put(b2)
	s.Put(b3)
	// Retention is bounded.
	for i := 0; i < 3*scratchMaxFree; i++ {
		s.Put(make([]int64, 8))
	}
	s.mu.Lock()
	free := len(s.free)
	s.mu.Unlock()
	if free > scratchMaxFree {
		t.Fatalf("arena retains %d buffers, cap is %d", free, scratchMaxFree)
	}
	// The typed registry hands back one shared arena per type.
	if scratchFor[int32]() != scratchFor[int32]() {
		t.Fatal("scratchFor returned distinct arenas for one type")
	}
}

func TestFilterTwoPassMatchesSequential(t *testing.T) {
	defer SetWorkers(0)
	for _, w := range []int{1, 3, 8} {
		SetWorkers(w)
		n := 150000
		src := make([]int32, n)
		Iota(src)
		got := Filter(src, func(v int32) bool { return v%7 == 2 })
		want := make([]int32, 0, n/7+1)
		for _, v := range src {
			if v%7 == 2 {
				want = append(want, v)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("w=%d: Filter kept %d, want %d", w, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("w=%d: got[%d] = %d, want %d", w, i, got[i], want[i])
			}
		}
	}
}
