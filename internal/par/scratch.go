package par

import (
	"reflect"
	"sync"
)

// Scratch is a reusable arena of []T buffers for per-chunk scratch state.
// The iterative solvers and the reduction/scan/compaction primitives in
// this package need a small slice (one slot per chunk) on every call, once
// per round — allocating it each time made the allocator and GC a fixed
// tax on every measured hot loop. A Scratch hands back previously used
// buffers instead.
//
// Buffers returned by Get have unspecified contents; callers that need
// zeros must clear them (e.g. with Fill). Get and Put are safe for
// concurrent use. The zero value is ready to use.
type Scratch[T any] struct {
	mu   sync.Mutex
	free [][]T
}

// scratchMaxFree bounds how many buffers an arena retains; beyond that,
// Put keeps the larger of the incoming buffer and the smallest retained
// one, so arenas converge on the biggest working-set sizes.
const scratchMaxFree = 8

// Get returns a length-n buffer, reusing a retained one when its capacity
// suffices. Contents are unspecified.
func (s *Scratch[T]) Get(n int) []T {
	s.mu.Lock()
	for i := len(s.free) - 1; i >= 0; i-- {
		if cap(s.free[i]) >= n {
			b := s.free[i]
			last := len(s.free) - 1
			s.free[i] = s.free[last]
			s.free[last] = nil
			s.free = s.free[:last]
			s.mu.Unlock()
			return b[:n]
		}
	}
	s.mu.Unlock()
	return make([]T, n)
}

// Put returns a buffer to the arena for reuse. The caller must not touch
// b afterwards.
func (s *Scratch[T]) Put(b []T) {
	if cap(b) == 0 {
		return
	}
	s.mu.Lock()
	if len(s.free) < scratchMaxFree {
		s.free = append(s.free, b[:0])
	} else {
		smallest := 0
		for i := 1; i < len(s.free); i++ {
			if cap(s.free[i]) < cap(s.free[smallest]) {
				smallest = i
			}
		}
		if cap(b) > cap(s.free[smallest]) {
			s.free[smallest] = b[:0]
		}
	}
	s.mu.Unlock()
}

// i64Scratch backs the int64 per-chunk slots of ExclusiveSum,
// ExclusiveSum32 and Filter.
var i64Scratch Scratch[int64]

// typedScratch maps a type's identity to the shared Scratch instance used
// by the generic primitives (Reduce), so they stop allocating per call
// without a per-instantiation package variable (which Go generics cannot
// express).
var typedScratch sync.Map // reflect.Type -> *Scratch[T]

// scratchFor returns the process-wide arena for element type T.
func scratchFor[T any]() *Scratch[T] {
	key := reflect.TypeOf((*T)(nil))
	if v, ok := typedScratch.Load(key); ok {
		return v.(*Scratch[T])
	}
	v, _ := typedScratch.LoadOrStore(key, &Scratch[T]{})
	return v.(*Scratch[T])
}
