package par

import (
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForVisitsEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1023, 1024, 1025, 100000} {
		hits := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestForNHonorsSmallWorkerCounts(t *testing.T) {
	n := 50000
	for _, w := range []int{1, 2, 3, 7} {
		var total int64
		ForN(n, w, func(i int) { atomic.AddInt64(&total, int64(i)) })
		want := int64(n) * int64(n-1) / 2
		if total != want {
			t.Fatalf("workers=%d: sum=%d want %d", w, total, want)
		}
	}
}

func TestRangeChunksCoverExactly(t *testing.T) {
	for _, n := range []int{1, 1024, 5000, 99999} {
		covered := make([]int32, n)
		Range(n, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&covered[i], 1)
			}
		})
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("n=%d: index %d covered %d times", n, i, c)
			}
		}
	}
}

func TestRangeIdxWorkerIndicesDistinct(t *testing.T) {
	n := 200000
	nc := NumChunks(n)
	seen := make([]int32, nc)
	RangeIdx(n, func(w, lo, hi int) {
		if w < 0 || w >= nc {
			t.Errorf("worker index %d out of range [0,%d)", w, nc)
			return
		}
		atomic.AddInt32(&seen[w], 1)
	})
	for w, s := range seen {
		if s != 1 {
			t.Fatalf("worker slot %d used %d times", w, s)
		}
	}
}

func TestSetWorkersRoundTrip(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", Workers())
	}
	SetWorkers(0)
	if Workers() <= 0 {
		t.Fatalf("Workers() = %d after reset", Workers())
	}
	SetWorkers(-5)
	if Workers() <= 0 {
		t.Fatalf("Workers() = %d after SetWorkers(-5)", Workers())
	}
}

func TestReduceMatchesSequential(t *testing.T) {
	n := 123457
	got := Reduce(n, 0, func(i int) int64 { return int64(i % 17) },
		func(a, b int64) int64 { return a + b })
	var want int64
	for i := 0; i < n; i++ {
		want += int64(i % 17)
	}
	if got != want {
		t.Fatalf("Reduce = %d, want %d", got, want)
	}
}

func TestSumAndCount(t *testing.T) {
	n := 4096
	if got := Sum(n, func(i int) int64 { return 2 }); got != int64(2*n) {
		t.Fatalf("Sum = %d", got)
	}
	if got := Count(n, func(i int) bool { return i%4 == 0 }); got != int64(n/4) {
		t.Fatalf("Count = %d", got)
	}
	if got := Sum(0, func(i int) int64 { return 1 }); got != 0 {
		t.Fatalf("Sum over empty range = %d", got)
	}
}

func TestMaxIndexed(t *testing.T) {
	vals := []int32{3, 9, 1, 9, 0}
	got := MaxIndexed(len(vals), int32(-1), func(i int) int32 { return vals[i] })
	if got != 9 {
		t.Fatalf("MaxIndexed = %d", got)
	}
	if got := MaxIndexed(0, int32(-1), func(i int) int32 { return 0 }); got != -1 {
		t.Fatalf("MaxIndexed empty = %d, want identity", got)
	}
}

func TestExclusiveSumMatchesSequential(t *testing.T) {
	check := func(src []int64) bool {
		got := ExclusiveSum(src)
		if len(got) != len(src)+1 {
			return false
		}
		var acc int64
		for i, v := range src {
			if got[i] != acc {
				return false
			}
			acc += v
		}
		return got[len(src)] == acc
	}
	// Edge cases.
	for _, src := range [][]int64{nil, {}, {5}, {0, 0, 0}, {1, 2, 3, 4}} {
		if !check(src) {
			t.Fatalf("ExclusiveSum wrong for %v", src)
		}
	}
	// Large parallel case.
	big := make([]int64, 300000)
	for i := range big {
		big[i] = int64(i % 7)
	}
	if !check(big) {
		t.Fatal("ExclusiveSum wrong for large input")
	}
	// Property test over random small inputs.
	if err := quick.Check(func(raw []uint16) bool {
		src := make([]int64, len(raw))
		for i, v := range raw {
			src[i] = int64(v)
		}
		return check(src)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExclusiveSum32(t *testing.T) {
	src := []int32{2, 0, 5, 1}
	got := ExclusiveSum32(src)
	want := []int64{0, 2, 2, 7, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExclusiveSum32 = %v, want %v", got, want)
		}
	}
}

func TestFillIotaCopy(t *testing.T) {
	n := 100000
	a := make([]int32, n)
	Fill(a, 7)
	for i, v := range a {
		if v != 7 {
			t.Fatalf("Fill: a[%d]=%d", i, v)
		}
	}
	Iota(a)
	for i, v := range a {
		if v != int32(i) {
			t.Fatalf("Iota: a[%d]=%d", i, v)
		}
	}
	b := make([]int32, n)
	Copy(b, a)
	for i := range b {
		if b[i] != a[i] {
			t.Fatalf("Copy mismatch at %d", i)
		}
	}
}

func TestCopyPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Copy(make([]int, 3), make([]int, 4))
}

func TestFilterPreservesOrder(t *testing.T) {
	n := 200000
	src := make([]int32, n)
	Iota(src)
	got := Filter(src, func(v int32) bool { return v%3 == 0 })
	if len(got) != (n+2)/3 {
		t.Fatalf("Filter kept %d elements", len(got))
	}
	for i, v := range got {
		if v != int32(i*3) {
			t.Fatalf("got[%d] = %d, order not preserved", i, v)
		}
	}
	if out := Filter([]int32{}, func(int32) bool { return true }); len(out) != 0 {
		t.Fatal("Filter of empty slice not empty")
	}
	if out := Filter(src, func(int32) bool { return false }); len(out) != 0 {
		t.Fatal("Filter with false pred not empty")
	}
}

func TestAtomicMinMax(t *testing.T) {
	var v int32 = 100
	For(10000, func(i int) { MinInt32Atomic(&v, int32(i%500)) })
	if v != 0 {
		t.Fatalf("MinInt32Atomic result %d", v)
	}
	v = -1
	For(10000, func(i int) { MaxInt32Atomic(&v, int32(i%500)) })
	if v != 499 {
		t.Fatalf("MaxInt32Atomic result %d", v)
	}
	var u uint64 = 1 << 60
	For(10000, func(i int) { MinUint64Atomic(&u, uint64(i+3)) })
	if u != 3 {
		t.Fatalf("MinUint64Atomic result %d", u)
	}
}

func TestNumChunksBounds(t *testing.T) {
	if NumChunks(0) != 0 {
		t.Fatal("NumChunks(0) != 0")
	}
	if NumChunks(1) != 1 {
		t.Fatal("NumChunks(1) != 1")
	}
	n := 1 << 20
	nc := NumChunks(n)
	if nc < 1 || nc > chunksPerWorker*Workers() {
		t.Fatalf("NumChunks(%d) = %d with %d workers", n, nc, Workers())
	}
	// The dispatcher and NumChunks must agree exactly: per-chunk scratch
	// sized with NumChunks is indexed by RangeIdx's chunk argument.
	for _, w := range []int{1, 2, 3, 7, 16} {
		SetWorkers(w)
		for _, n := range []int{0, 1, 1023, 1024, 4096, 99999, 1 << 20} {
			want := NumChunks(n)
			var used int32
			RangeIdx(n, func(c, lo, hi int) {
				atomic.AddInt32(&used, 1)
				if c < 0 || c >= want {
					t.Errorf("w=%d n=%d: chunk index %d outside [0,%d)", w, n, c, want)
				}
			})
			if int(used) != want {
				t.Fatalf("w=%d n=%d: NumChunks=%d but dispatcher made %d chunks", w, n, want, used)
			}
		}
	}
	SetWorkers(0)
}

func TestForErr(t *testing.T) {
	defer SetWorkers(0)
	for _, w := range []int{1, 2, 3, 7} {
		SetWorkers(w)
		// No failures.
		var hits int32
		if err := ForErr(1000, func(i int) error {
			atomic.AddInt32(&hits, 1)
			return nil
		}); err != nil {
			t.Fatalf("w=%d: unexpected error %v", w, err)
		}
		if hits != 1000 {
			t.Fatalf("w=%d: fn ran %d times, want 1000", w, hits)
		}
		// Several failing indices: the lowest one must win under every
		// worker count, however chunks get scheduled.
		for trial := 0; trial < 20; trial++ {
			err := ForErr(100_000, func(i int) error {
				if i == 777 || i == 40_000 || i == 99_999 {
					return fmt.Errorf("fail@%d", i)
				}
				return nil
			})
			if err == nil || err.Error() != "fail@777" {
				t.Fatalf("w=%d: got %v, want fail@777", w, err)
			}
		}
		// Empty and tiny loops.
		if err := ForErr(0, func(int) error { return fmt.Errorf("never") }); err != nil {
			t.Fatalf("w=%d: empty loop returned %v", w, err)
		}
		if err := ForErr(1, func(int) error { return fmt.Errorf("one") }); err == nil {
			t.Fatalf("w=%d: single-index error lost", w)
		}
		// Error at index 0: the very first chunk fails, and index 0 must
		// beat every other failing index in the loop.
		err := ForErr(100_000, func(i int) error {
			if i == 0 || i == 50_000 {
				return fmt.Errorf("fail@%d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail@0" {
			t.Fatalf("w=%d: got %v, want fail@0", w, err)
		}
	}
}

// TestForErrPanicPropagates pins the pool's panic contract for ForErr:
// a panic in the body is re-raised on the calling goroutine, under both
// the sequential (single-chunk) and parallel paths.
func TestForErrPanicPropagates(t *testing.T) {
	defer SetWorkers(0)
	for _, w := range []int{1, 4} {
		SetWorkers(w)
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("w=%d: panic did not propagate", w)
				}
				if s, ok := r.(string); !ok || s != "boom" {
					t.Fatalf("w=%d: recovered %v, want \"boom\"", w, r)
				}
			}()
			ForErr(100_000, func(i int) error {
				if i == 70_000 {
					panic("boom")
				}
				return nil
			})
		}()
	}
}
