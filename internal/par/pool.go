package par

import (
	"sync"
	"sync/atomic"
)

// The persistent worker pool. Loop primitives no longer spawn goroutines
// per call: a call packages its body into a task, wakes parked pool
// workers, and participates itself. The index space is split into chunks
// (sized by the adaptive grain policy below) that executors claim with an
// atomic counter, so a straggler chunk cannot serialize the tail the way
// the old static one-chunk-per-worker split did on skewed workloads. The
// completion barrier is a chunk count carried by the task — each task is
// one generation of work; workers outlive every generation and park on a
// channel receive between tasks, costing nothing while idle.

// Chunking policy. Loops shorter than seqCutoff run inline on the caller:
// even a pooled hand-off costs more than the loop body. Above the cutoff
// the grain targets chunksPerWorker chunks per worker — enough slack for
// dynamic claiming to absorb skew — but never below minAdaptiveGrain
// elements, so tiny chunks cannot drown the claim counter in contention.
const (
	// minGrain is the sequential cutoff: loops over fewer elements run
	// inline. (The name is historical; the per-chunk grain itself now
	// adapts to n/workers instead of being fixed at this value.)
	minGrain = 1024

	// chunksPerWorker is the oversubscription factor of the adaptive
	// grain: each worker's share of the index space is split this many
	// ways so dynamic claiming can rebalance skewed chunks.
	chunksPerWorker = 4

	// minAdaptiveGrain floors the adaptive chunk size.
	minAdaptiveGrain = 256
)

// grainFor returns the adaptive chunk size for an n-element loop run by
// workers executors. Callers guarantee workers >= 2 and n >= minGrain.
func grainFor(n, workers int) int {
	g := n / (workers * chunksPerWorker)
	if g < minAdaptiveGrain {
		g = minAdaptiveGrain
	}
	return g
}

// numChunksFor reports how many chunks an n-element loop splits into under
// the given worker count. It is the single source of truth shared by
// NumChunks and the dispatcher, so per-chunk scratch sized with NumChunks
// always matches the chunk indexes the loop hands out.
func numChunksFor(n, workers int) int {
	if n <= 0 {
		return 0
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < minGrain {
		return 1
	}
	g := grainFor(n, workers)
	return (n + g - 1) / g
}

// task is one parallel loop in flight: a generation of chunks claimed via
// an atomic counter by the caller and any pool workers that picked the
// task up. The WaitGroup counts chunks (not goroutines); nothing is
// spawned on its behalf.
type task struct {
	fn      func(chunk, lo, hi int)
	n       int
	grain   int
	nchunks int32
	next    atomic.Int32
	wg      sync.WaitGroup

	pmu      sync.Mutex
	panicked bool
	pval     any
}

// execChunk runs one claimed chunk, capturing a panic from the body so the
// dispatcher can re-raise it on the calling goroutine (a panic that kills
// a pool worker would otherwise take the process down or hang the
// barrier).
func (t *task) execChunk(c int32) {
	defer t.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			t.pmu.Lock()
			if !t.panicked {
				t.panicked, t.pval = true, r
			}
			t.pmu.Unlock()
		}
	}()
	lo := int(c) * t.grain
	hi := lo + t.grain
	if hi > t.n {
		hi = t.n
	}
	t.fn(int(c), lo, hi)
}

// participate claims and executes chunks until none remain, returning how
// many chunks this goroutine ran.
func (t *task) participate() int {
	done := 0
	for {
		c := t.next.Add(1) - 1
		if c >= t.nchunks {
			return done
		}
		t.execChunk(c)
		done++
	}
}

// workerPool is the process-wide set of persistent loop workers. Workers
// are started lazily the first time a loop actually needs help and are
// never torn down; an idle worker is parked in a channel receive.
type workerPool struct {
	tasks   chan *task
	mu      sync.Mutex
	started atomic.Int32
}

// poolQueueDepth bounds pending wake-ups. When the queue is full every
// worker is already busy, so additional wake-ups could not add
// parallelism anyway — the dispatcher just skips them and the caller
// absorbs the work through dynamic claiming.
const poolQueueDepth = 1024

var pool = workerPool{tasks: make(chan *task, poolQueueDepth)}

// ensure grows the pool to at least k workers.
func (p *workerPool) ensure(k int) {
	if int(p.started.Load()) >= k {
		return
	}
	p.mu.Lock()
	for int(p.started.Load()) < k {
		go p.worker()
		p.started.Add(1)
	}
	p.mu.Unlock()
}

func (p *workerPool) worker() {
	for t := range p.tasks {
		t.participate()
	}
}

// runN is the dispatcher behind every loop primitive: it executes
// fn(chunk, lo, hi) over [0, n) with dense chunk indexes in
// [0, numChunksFor(n, workers)), each index handed out exactly once.
// Parallelism is bounded by workers: the caller plus at most workers-1
// pool workers. A late pool worker that dequeues an already-finished task
// sees no chunks left and goes back to sleep.
func runN(n, workers int, fn func(chunk, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < minGrain {
		recordSeq()
		fn(0, 0, n)
		return
	}
	grain := grainFor(n, workers)
	nchunks := (n + grain - 1) / grain
	if nchunks <= 1 {
		recordSeq()
		fn(0, 0, n)
		return
	}
	runTask(&task{fn: fn, n: n, grain: grain, nchunks: int32(nchunks)}, workers)
}

// runTask dispatches a prepared task: wake up to workers-1 parked pool
// workers, claim chunks alongside them, wait out the generation barrier,
// then re-raise any panic captured from the loop body.
func runTask(t *task, workers int) {
	nchunks := int(t.nchunks)
	t.wg.Add(nchunks)
	helpers := workers - 1
	if helpers > nchunks-1 {
		helpers = nchunks - 1
	}
	pool.ensure(helpers)
wake:
	for i := 0; i < helpers; i++ {
		select {
		case pool.tasks <- t:
		default:
			break wake
		}
	}
	mine := t.participate()
	t.wg.Wait()
	if statsEnabled.Load() {
		recordTask(nchunks, mine)
	}
	if t.panicked {
		panic(t.pval)
	}
}

// Do runs fn(i) for every i in [0, k) in parallel with one chunk per
// index and no sequential cutoff. It is meant for coarse-grained work —
// sorting runs, merging blocks, per-subgraph phases — where each index is
// substantial and k is small; For's grain policy would run such loops
// sequentially because k is far below the cutoff.
func Do(k int, fn func(i int)) {
	DoN(k, Workers(), fn)
}

// DoN is Do with an explicit parallelism bound.
func DoN(k, workers int, fn func(i int)) {
	if k <= 0 {
		return
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > k {
		workers = k
	}
	if k == 1 || workers == 1 {
		recordSeq()
		for i := 0; i < k; i++ {
			fn(i)
		}
		return
	}
	runTask(&task{
		fn:      func(c, lo, hi int) { fn(c) },
		n:       k,
		grain:   1,
		nchunks: int32(k),
	}, workers)
}
