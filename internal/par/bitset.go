package par

import "sync/atomic"

// Bitset is a fixed-size bitset safe for concurrent Set/Clear/Test through
// atomic word operations. The zero value is unusable; create with NewBitset.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns a cleared bitset holding n bits.
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len reports the number of bits.
func (b *Bitset) Len() int { return b.n }

// Set sets bit i. It is safe for concurrent use.
func (b *Bitset) Set(i int) {
	w, mask := i>>6, uint64(1)<<uint(i&63)
	for {
		old := atomic.LoadUint64(&b.words[w])
		if old&mask != 0 || atomic.CompareAndSwapUint64(&b.words[w], old, old|mask) {
			return
		}
	}
}

// TestAndSet sets bit i and reports whether this call changed it from 0 to 1.
// It is the atomic claim operation used by BFS frontiers.
func (b *Bitset) TestAndSet(i int) bool {
	w, mask := i>>6, uint64(1)<<uint(i&63)
	for {
		old := atomic.LoadUint64(&b.words[w])
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(&b.words[w], old, old|mask) {
			return true
		}
	}
}

// Clear clears bit i. It is safe for concurrent use.
func (b *Bitset) Clear(i int) {
	w, mask := i>>6, uint64(1)<<uint(i&63)
	for {
		old := atomic.LoadUint64(&b.words[w])
		if old&mask == 0 || atomic.CompareAndSwapUint64(&b.words[w], old, old&^mask) {
			return
		}
	}
}

// Test reports bit i. It is safe for concurrent use with Set/Clear, with the
// usual racy-read semantics of a snapshot.
func (b *Bitset) Test(i int) bool {
	return atomic.LoadUint64(&b.words[i>>6])&(uint64(1)<<uint(i&63)) != 0
}

// Reset clears every bit (in parallel). Not safe concurrently with Set.
func (b *Bitset) Reset() {
	Fill(b.words, 0)
}

// Count reports the number of set bits (in parallel).
func (b *Bitset) Count() int {
	return int(Sum(len(b.words), func(i int) int64 {
		return int64(popcount(b.words[i]))
	}))
}

func popcount(x uint64) int {
	// Hacker's Delight bit twiddling; avoids importing math/bits in hot path
	// call sites that inline this.
	x -= (x >> 1) & 0x5555555555555555
	x = (x & 0x3333333333333333) + ((x >> 2) & 0x3333333333333333)
	x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0f
	return int((x * 0x0101010101010101) >> 56)
}
