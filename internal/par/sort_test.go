package par

import (
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSortSliceMatchesStdlib(t *testing.T) {
	sizes := []int{0, 1, 2, 100, minGrain * 4, minGrain*4 + 1, 250000}
	for _, n := range sizes {
		r := NewRNG(uint64(n) + 7)
		a := make([]int32, n)
		for i := range a {
			a[i] = int32(r.Uint64())
		}
		b := make([]int32, n)
		copy(b, a)
		SortInt32(a)
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("n=%d: mismatch at %d: %d vs %d", n, i, a[i], b[i])
			}
		}
	}
}

func TestSortSliceProperty(t *testing.T) {
	if err := quick.Check(func(raw []int32) bool {
		a := make([]int32, len(raw))
		copy(a, raw)
		SortInt32(a)
		if len(a) != len(raw) {
			return false
		}
		for i := 1; i < len(a); i++ {
			if a[i-1] > a[i] {
				return false
			}
		}
		// Multiset preserved: compare against stdlib sort of the input.
		b := make([]int32, len(raw))
		copy(b, raw)
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSortSliceAlreadySortedAndReverse(t *testing.T) {
	n := 100000
	asc := make([]int32, n)
	Iota(asc)
	SortInt32(asc)
	for i := range asc {
		if asc[i] != int32(i) {
			t.Fatal("sorted input corrupted")
		}
	}
	desc := make([]int32, n)
	For(n, func(i int) { desc[i] = int32(n - i) })
	SortInt32(desc)
	for i := range desc {
		if desc[i] != int32(i+1) {
			t.Fatal("reverse input not sorted")
		}
	}
}

func TestSortSliceStructKeys(t *testing.T) {
	type kv struct{ k, v int32 }
	n := 50000
	r := NewRNG(3)
	a := make([]kv, n)
	for i := range a {
		a[i] = kv{int32(r.Intn(1000)), int32(i)}
	}
	SortSlice(a, func(x, y kv) bool {
		if x.k != y.k {
			return x.k < y.k
		}
		return x.v < y.v
	})
	for i := 1; i < n; i++ {
		if a[i-1].k > a[i].k || (a[i-1].k == a[i].k && a[i-1].v > a[i].v) {
			t.Fatalf("out of order at %d", i)
		}
	}
}

func BenchmarkSortSliceParallel(b *testing.B) {
	n := 1 << 21
	src := make([]int32, n)
	r := NewRNG(1)
	for i := range src {
		src[i] = int32(r.Uint64())
	}
	work := make([]int32, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, src)
		SortInt32(work)
	}
}

func BenchmarkSortSliceStdlib(b *testing.B) {
	n := 1 << 21
	src := make([]int32, n)
	r := NewRNG(1)
	for i := range src {
		src[i] = int32(r.Uint64())
	}
	work := make([]int32, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, src)
		sort.Slice(work, func(x, y int) bool { return work[x] < work[y] })
	}
}

func TestSortSliceParallelPathForced(t *testing.T) {
	// The single-core host would delegate to the standard library; force
	// multiple workers so the run-split + merge path executes.
	defer SetWorkers(0)
	for _, w := range []int{2, 3, 5, 8} {
		SetWorkers(w)
		for _, n := range []int{4*minGrain + 13, 100001} {
			r := NewRNG(uint64(w*n) + 1)
			a := make([]int32, n)
			for i := range a {
				a[i] = int32(r.Uint64())
			}
			b := make([]int32, n)
			copy(b, a)
			SortInt32(a)
			sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("workers=%d n=%d: mismatch at %d", w, n, i)
				}
			}
		}
	}
}

func TestParallelPrimitivesUnderForcedWorkers(t *testing.T) {
	// Drive the multi-chunk paths of RangeIdx / ExclusiveSum / NumChunks
	// explicitly (the single-core default collapses them to one chunk).
	defer SetWorkers(0)
	SetWorkers(6)
	n := 50000
	nc := NumChunks(n)
	if nc < 2 {
		t.Fatalf("NumChunks = %d with 6 workers", nc)
	}
	seen := make([]int32, nc)
	RangeIdx(n, func(w, lo, hi int) { atomic.AddInt32(&seen[w], 1) })
	for w, s := range seen {
		if s != 1 {
			t.Fatalf("chunk %d used %d times", w, s)
		}
	}
	src := make([]int64, n)
	for i := range src {
		src[i] = int64(i % 11)
	}
	got := ExclusiveSum(src)
	var acc int64
	for i, v := range src {
		if got[i] != acc {
			t.Fatalf("prefix wrong at %d", i)
		}
		acc += v
	}
	if got[n] != acc {
		t.Fatal("total wrong")
	}
}
