package par

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// Micro-benchmarks isolating the persistent pool against the seed
// spawn-per-call runtime it replaced. The seed implementation is inlined
// here (spawnRangeIdx) so both run in one binary on identical workloads:
// the deltas these report are the per-round tax the iterative solvers used
// to pay on every For/Range/Filter call.

// benchWorkers pins a worker count > 1 so the parallel path is exercised
// even on single-core CI hosts; goroutine spawn/park costs are scheduler
// work and measurable regardless of core count.
const benchWorkers = 4

// spawnRangeIdx is the seed runtime: a fresh goroutine per chunk on every
// call, one static chunk per worker, joined by a per-call WaitGroup.
func spawnRangeIdx(n, workers int, fn func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers == 1 || n < minGrain {
		fn(0, 0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	w := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
		w++
	}
	wg.Wait()
}

// BenchmarkForSpawn measures loop dispatch overhead on a trivial body:
// pooled dispatch vs goroutine spawn per call. n=4096 is the regime the
// iterative solvers live in — many small per-round loops where dispatch
// cost is a real fraction of the loop; n=100k shows overhead amortizing
// away once the body dominates.
func BenchmarkForSpawn(b *testing.B) {
	defer SetWorkers(0)
	SetWorkers(benchWorkers)
	var sink atomic.Int64
	body := func(w, lo, hi int) {
		var acc int64
		for i := lo; i < hi; i++ {
			acc += int64(i)
		}
		sink.Add(acc)
	}
	for _, n := range []int{4096, 100_000} {
		b.Run(fmt.Sprintf("Pooled/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				RangeIdx(n, body)
			}
		})
		b.Run(fmt.Sprintf("SpawnPerCall/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				spawnRangeIdx(n, benchWorkers, body)
			}
		})
	}
}

// BenchmarkRangeSkewed measures load balancing on a skewed workload (work
// per element grows linearly, like a skewed degree distribution): dynamic
// chunk claiming vs the seed's static one-chunk-per-worker split, where
// the last worker owns almost half the total work.
func BenchmarkRangeSkewed(b *testing.B) {
	defer SetWorkers(0)
	SetWorkers(benchWorkers)
	const n = 30_000
	var sink atomic.Int64
	body := func(w, lo, hi int) {
		var acc int64
		for i := lo; i < hi; i++ {
			for j := 0; j < i/64; j++ {
				acc += int64(j)
			}
		}
		sink.Add(acc)
	}
	b.Run("PooledDynamic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			RangeIdx(n, body)
		}
	})
	b.Run("SpawnStaticSplit", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			spawnRangeIdx(n, benchWorkers, body)
		}
	})
}

// seedExclusiveSum32 is the seed implementation: widen into a temporary
// int64 slice, then scan it with per-call chunk-sum and bounds slices.
func seedExclusiveSum32(src []int32) []int64 {
	n := len(src)
	tmp := make([]int64, n)
	For(n, func(i int) { tmp[i] = int64(src[i]) })
	out := make([]int64, n+1)
	nc := NumChunks(n)
	if nc <= 1 {
		var acc int64
		for i, v := range tmp {
			out[i] = acc
			acc += v
		}
		out[n] = acc
		return out
	}
	sums := make([]int64, nc)
	RangeIdx(n, func(w, lo, hi int) {
		var acc int64
		for i := lo; i < hi; i++ {
			acc += tmp[i]
		}
		sums[w] = acc
	})
	var total int64
	for w := 0; w < nc; w++ {
		s := sums[w]
		sums[w] = total
		total += s
	}
	RangeIdx(n, func(w, lo, hi int) {
		acc := sums[w]
		for i := lo; i < hi; i++ {
			out[i] = acc
			acc += tmp[i]
		}
	})
	out[n] = total
	return out
}

// BenchmarkExclusiveSum32 measures the CSR-offset scan: fused widening
// with arena scratch vs the seed's temporary-copy two-pass version.
func BenchmarkExclusiveSum32(b *testing.B) {
	defer SetWorkers(0)
	SetWorkers(benchWorkers)
	src := make([]int32, 1_000_000)
	For(len(src), func(i int) { src[i] = int32(i % 7) })
	b.Run("Fused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out := ExclusiveSum32(src)
			_ = out[len(src)]
		}
	})
	b.Run("SeedTempCopy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out := seedExclusiveSum32(src)
			_ = out[len(src)]
		}
	})
}

// seedFilter is the seed implementation: per-chunk append growth plus a
// final concatenation.
func seedFilter[T any](src []T, pred func(T) bool) []T {
	n := len(src)
	nc := NumChunks(n)
	if nc == 0 {
		return nil
	}
	bufs := make([][]T, nc)
	RangeIdx(n, func(w, lo, hi int) {
		var out []T
		for i := lo; i < hi; i++ {
			if pred(src[i]) {
				out = append(out, src[i])
			}
		}
		bufs[w] = out
	})
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	out := make([]T, 0, total)
	for _, b := range bufs {
		out = append(out, b...)
	}
	return out
}

// BenchmarkFilterCompact measures frontier compaction (the per-round path
// of every iterative solver): count-then-copy into one right-sized slice
// vs the seed's append-and-concatenate.
func BenchmarkFilterCompact(b *testing.B) {
	defer SetWorkers(0)
	SetWorkers(benchWorkers)
	src := make([]int32, 500_000)
	Iota(src)
	pred := func(v int32) bool { return v%3 != 0 }
	b.Run("TwoPass", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out := Filter(src, pred)
			_ = len(out)
		}
	})
	b.Run("SeedAppendConcat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out := seedFilter(src, pred)
			_ = len(out)
		}
	})
}
