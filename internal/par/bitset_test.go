package par

import (
	"testing"
	"testing/quick"
)

func TestBitsetBasic(t *testing.T) {
	b := NewBitset(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d", b.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 129} {
		if b.Test(i) {
			t.Fatalf("bit %d set on fresh bitset", i)
		}
		b.Set(i)
		if !b.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if b.Count() != 6 {
		t.Fatalf("Count = %d, want 6", b.Count())
	}
	b.Clear(64)
	if b.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	b.Reset()
	if b.Count() != 0 {
		t.Fatalf("Count after Reset = %d", b.Count())
	}
}

func TestBitsetTestAndSetClaimsOnce(t *testing.T) {
	n := 1 << 16
	b := NewBitset(n)
	wins := make([]int32, n)
	// Many goroutines race to claim each bit; exactly one must win.
	For(n*4, func(j int) {
		i := j % n
		if b.TestAndSet(i) {
			wins[i]++
		}
	})
	for i, w := range wins {
		if w != 1 {
			t.Fatalf("bit %d claimed %d times", i, w)
		}
	}
	if b.Count() != n {
		t.Fatalf("Count = %d, want %d", b.Count(), n)
	}
}

func TestBitsetConcurrentSetDisjoint(t *testing.T) {
	// Bits in the same word set concurrently must all land.
	n := 64 * 64
	b := NewBitset(n)
	For(n, func(i int) { b.Set(i) })
	if b.Count() != n {
		t.Fatalf("Count = %d, want %d", b.Count(), n)
	}
}

func TestPopcountMatchesStdlib(t *testing.T) {
	if err := quick.Check(func(x uint64) bool {
		want := 0
		for v := x; v != 0; v &= v - 1 {
			want++
		}
		return popcount(x) == want
	}, nil); err != nil {
		t.Fatal(err)
	}
}
