// Package par provides the shared-memory parallel runtime used by every
// algorithm in this repository: chunked parallel loops, parallel reductions,
// parallel prefix sums, atomic helpers, a concurrent bitset, and a splittable
// deterministic random number generator.
//
// The package plays the role of the paper's OpenMP-style 80-thread CPU
// runtime. Parallel loops split the index space into contiguous chunks and
// run one goroutine per chunk; the number of workers defaults to
// runtime.GOMAXPROCS(0) and can be overridden globally with SetWorkers (for
// scaling experiments) or per-call with the *N variants.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers holds the worker count used by the loop primitives when no
// explicit count is given. Zero means "use runtime.GOMAXPROCS(0)".
var defaultWorkers int64

// SetWorkers sets the default worker count for all loop primitives in this
// package. n <= 0 restores the default of runtime.GOMAXPROCS(0).
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	atomic.StoreInt64(&defaultWorkers, int64(n))
}

// Workers reports the worker count the loop primitives will use.
func Workers() int {
	if n := atomic.LoadInt64(&defaultWorkers); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// minGrain is the smallest chunk worth spawning a goroutine for. Loops over
// fewer elements run sequentially: goroutine startup would dominate.
const minGrain = 1024

// For runs fn(i) for every i in [0, n) in parallel.
func For(n int, fn func(i int)) {
	ForN(n, Workers(), fn)
}

// ForN is For with an explicit worker count.
func ForN(n, workers int, fn func(i int)) {
	RangeN(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Range splits [0, n) into contiguous chunks and runs fn(lo, hi) on each
// chunk in parallel. It is the workhorse primitive: algorithms that keep
// per-chunk scratch state use Range directly to amortize it.
func Range(n int, fn func(lo, hi int)) {
	RangeN(n, Workers(), fn)
}

// RangeN is Range with an explicit worker count.
func RangeN(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 || n < minGrain {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// RangeIdx is Range but also hands each chunk its worker index in
// [0, NumChunks(n)), so callers can index preallocated per-worker scratch.
func RangeIdx(n int, fn func(worker, lo, hi int)) {
	workers := Workers()
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers == 1 || n < minGrain {
		fn(0, 0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	w := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
		w++
	}
	wg.Wait()
}

// NumChunks reports how many chunks RangeIdx will create for n elements
// under the current worker setting. Callers size per-worker scratch with it.
func NumChunks(n int) int {
	workers := Workers()
	if n <= 0 {
		return 0
	}
	if workers > n {
		workers = n
	}
	if workers == 1 || n < minGrain {
		return 1
	}
	chunk := (n + workers - 1) / workers
	return (n + chunk - 1) / chunk
}

// Reduce computes a parallel reduction of fn over [0, n) combining partial
// results with combine, starting from identity. combine must be associative.
func Reduce[T any](n int, identity T, fn func(i int) T, combine func(a, b T) T) T {
	nc := NumChunks(n)
	if nc == 0 {
		return identity
	}
	parts := make([]T, nc)
	RangeIdx(n, func(w, lo, hi int) {
		acc := identity
		for i := lo; i < hi; i++ {
			acc = combine(acc, fn(i))
		}
		parts[w] = acc
	})
	acc := identity
	for _, p := range parts {
		acc = combine(acc, p)
	}
	return acc
}

// Sum computes the parallel sum of fn(i) over [0, n).
func Sum(n int, fn func(i int) int64) int64 {
	return Reduce(n, 0, fn, func(a, b int64) int64 { return a + b })
}

// Count reports how many i in [0, n) satisfy pred.
func Count(n int, pred func(i int) bool) int64 {
	return Sum(n, func(i int) int64 {
		if pred(i) {
			return 1
		}
		return 0
	})
}

// MaxIndexed returns the maximum of fn(i) over [0, n), or identity when
// n == 0.
func MaxIndexed[T int | int32 | int64 | float64](n int, identity T, fn func(i int) T) T {
	return Reduce(n, identity, fn, func(a, b T) T {
		if a > b {
			return a
		}
		return b
	})
}

// ExclusiveSum computes the exclusive prefix sum of src into a new slice of
// length len(src)+1; the final element is the total. The scan is parallel:
// per-chunk sums, a sequential pass over the (few) chunk totals, then a
// parallel fill.
func ExclusiveSum(src []int64) []int64 {
	n := len(src)
	out := make([]int64, n+1)
	if n == 0 {
		return out
	}
	nc := NumChunks(n)
	if nc == 1 {
		var acc int64
		for i, v := range src {
			out[i] = acc
			acc += v
		}
		out[n] = acc
		return out
	}
	sums := make([]int64, nc)
	bounds := make([][2]int, nc)
	RangeIdx(n, func(w, lo, hi int) {
		var acc int64
		for i := lo; i < hi; i++ {
			acc += src[i]
		}
		sums[w] = acc
		bounds[w] = [2]int{lo, hi}
	})
	var total int64
	for w := 0; w < nc; w++ {
		s := sums[w]
		sums[w] = total
		total += s
	}
	RangeIdx(n, func(w, lo, hi int) {
		acc := sums[w]
		for i := lo; i < hi; i++ {
			out[i] = acc
			acc += src[i]
		}
	})
	out[n] = total
	return out
}

// ExclusiveSum32 is ExclusiveSum for int32 counts with int64 offsets, the
// shape used when building CSR offsets from degree arrays.
func ExclusiveSum32(src []int32) []int64 {
	n := len(src)
	tmp := make([]int64, n)
	For(n, func(i int) { tmp[i] = int64(src[i]) })
	return ExclusiveSum(tmp)
}

// Fill sets dst[i] = v for all i in parallel.
func Fill[T any](dst []T, v T) {
	Range(len(dst), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = v
		}
	})
}

// Iota sets dst[i] = int32(i) for all i in parallel.
func Iota(dst []int32) {
	Range(len(dst), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = int32(i)
		}
	})
}

// Copy copies src into dst in parallel. The slices must have equal length.
func Copy[T any](dst, src []T) {
	if len(dst) != len(src) {
		panic("par: Copy length mismatch")
	}
	Range(len(src), func(lo, hi int) {
		copy(dst[lo:hi], src[lo:hi])
	})
}

// Filter returns the elements of src satisfying pred, preserving order.
// pred runs in parallel and must be safe for concurrent calls. Used for
// frontier/active-set compaction in the iterative solvers.
func Filter[T any](src []T, pred func(T) bool) []T {
	n := len(src)
	nc := NumChunks(n)
	if nc == 0 {
		return nil
	}
	bufs := make([][]T, nc)
	RangeIdx(n, func(w, lo, hi int) {
		var out []T
		for i := lo; i < hi; i++ {
			if pred(src[i]) {
				out = append(out, src[i])
			}
		}
		bufs[w] = out
	})
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	out := make([]T, 0, total)
	for _, b := range bufs {
		out = append(out, b...)
	}
	return out
}

// MinInt32Atomic atomically stores min(current, v) at addr.
func MinInt32Atomic(addr *int32, v int32) {
	for {
		cur := atomic.LoadInt32(addr)
		if v >= cur || atomic.CompareAndSwapInt32(addr, cur, v) {
			return
		}
	}
}

// MaxInt32Atomic atomically stores max(current, v) at addr.
func MaxInt32Atomic(addr *int32, v int32) {
	for {
		cur := atomic.LoadInt32(addr)
		if v <= cur || atomic.CompareAndSwapInt32(addr, cur, v) {
			return
		}
	}
}

// MinUint64Atomic atomically stores min(current, v) at addr.
func MinUint64Atomic(addr *uint64, v uint64) {
	for {
		cur := atomic.LoadUint64(addr)
		if v >= cur || atomic.CompareAndSwapUint64(addr, cur, v) {
			return
		}
	}
}
