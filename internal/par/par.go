// Package par provides the shared-memory parallel runtime used by every
// algorithm in this repository: chunked parallel loops, parallel reductions,
// parallel prefix sums, atomic helpers, a concurrent bitset, and a splittable
// deterministic random number generator.
//
// The package plays the role of the paper's OpenMP-style 80-thread CPU
// runtime. Loops run on a persistent pool of worker goroutines (see pool.go):
// a call splits the index space into adaptively sized chunks that the caller
// and parked pool workers claim dynamically, so no goroutines are spawned and
// no scheduler teardown is paid per call. The number of workers defaults to
// runtime.GOMAXPROCS(0) and can be overridden globally with SetWorkers (for
// scaling experiments) or per-call with the *N variants.
//
// Chunk boundaries depend only on the loop length and the worker setting,
// never on scheduling, so per-chunk scratch indexed by RangeIdx's chunk index
// is deterministic, and algorithms built from associative per-chunk
// combinations produce identical results under any worker count.
package par

import (
	"runtime"
	"sync/atomic"
)

// defaultWorkers holds the worker count used by the loop primitives when no
// explicit count is given. Zero means "use runtime.GOMAXPROCS(0)".
var defaultWorkers int64

// SetWorkers sets the default worker count for all loop primitives in this
// package. n <= 0 restores the default of runtime.GOMAXPROCS(0). Changing
// the count between calls is safe at any point; changing it while a loop
// using the default is being dispatched leaves that loop on whichever
// setting it observed.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	atomic.StoreInt64(&defaultWorkers, int64(n))
}

// Workers reports the worker count the loop primitives will use.
func Workers() int {
	if n := atomic.LoadInt64(&defaultWorkers); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// For runs fn(i) for every i in [0, n) in parallel.
func For(n int, fn func(i int)) {
	ForN(n, Workers(), fn)
}

// ForN is For with an explicit worker count.
func ForN(n, workers int, fn func(i int)) {
	runN(n, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Range splits [0, n) into contiguous chunks and runs fn(lo, hi) on each
// chunk in parallel. It is the workhorse primitive: algorithms that keep
// per-chunk scratch state use Range directly to amortize it.
func Range(n int, fn func(lo, hi int)) {
	RangeN(n, Workers(), fn)
}

// RangeN is Range with an explicit worker count.
func RangeN(n, workers int, fn func(lo, hi int)) {
	runN(n, workers, func(_, lo, hi int) {
		fn(lo, hi)
	})
}

// RangeIdx is Range but also hands each chunk its chunk index in
// [0, NumChunks(n)), each index used exactly once, so callers can index
// preallocated per-chunk scratch.
func RangeIdx(n int, fn func(worker, lo, hi int)) {
	runN(n, Workers(), fn)
}

// NumChunks reports how many chunks RangeIdx will create for n elements
// under the current worker setting. Callers size per-chunk scratch with it.
func NumChunks(n int) int {
	return numChunksFor(n, Workers())
}

// Reduce computes a parallel reduction of fn over [0, n) combining partial
// results with combine, starting from identity. combine must be associative.
// Partial results combine in chunk-index order, so the result is identical
// under any worker count.
func Reduce[T any](n int, identity T, fn func(i int) T, combine func(a, b T) T) T {
	workers := Workers()
	nc := numChunksFor(n, workers)
	if nc == 0 {
		return identity
	}
	if nc == 1 {
		acc := identity
		for i := 0; i < n; i++ {
			acc = combine(acc, fn(i))
		}
		return acc
	}
	s := scratchFor[T]()
	parts := s.Get(nc)
	runN(n, workers, func(c, lo, hi int) {
		acc := identity
		for i := lo; i < hi; i++ {
			acc = combine(acc, fn(i))
		}
		parts[c] = acc
	})
	acc := identity
	for _, p := range parts {
		acc = combine(acc, p)
	}
	s.Put(parts)
	return acc
}

// Sum computes the parallel sum of fn(i) over [0, n).
func Sum(n int, fn func(i int) int64) int64 {
	return Reduce(n, 0, fn, func(a, b int64) int64 { return a + b })
}

// Count reports how many i in [0, n) satisfy pred.
func Count(n int, pred func(i int) bool) int64 {
	return Sum(n, func(i int) int64 {
		if pred(i) {
			return 1
		}
		return 0
	})
}

// ForErr runs fn(i) for every i in [0, n) in parallel and returns the
// error from the globally lowest failing index, or nil if every call
// succeeded. Each chunk stops at its own first error, and chunks above an
// already-failed chunk are skipped entirely, so fn may not be invoked for
// every index after a failure — but every index below the lowest failing
// one is always visited, which makes the returned error deterministic
// under any worker count. Intended for parallel decode/validate loops
// where the first structural error is the interesting one.
func ForErr(n int, fn func(i int) error) error {
	workers := Workers()
	nc := numChunksFor(n, workers)
	if nc == 0 {
		return nil
	}
	if nc == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, nc)
	failed := atomic.Int64{}
	failed.Store(int64(nc))
	runN(n, workers, func(c, lo, hi int) {
		if int64(c) > failed.Load() {
			return // a lower chunk already failed; this error can't win
		}
		for i := lo; i < hi; i++ {
			if err := fn(i); err != nil {
				errs[c] = err
				for {
					cur := failed.Load()
					if int64(c) >= cur || failed.CompareAndSwap(cur, int64(c)) {
						return
					}
				}
			}
		}
	})
	if f := failed.Load(); f < int64(nc) {
		return errs[f]
	}
	return nil
}

// MaxIndexed returns the maximum of fn(i) over [0, n), or identity when
// n == 0.
func MaxIndexed[T int | int32 | int64 | float64](n int, identity T, fn func(i int) T) T {
	return Reduce(n, identity, fn, func(a, b T) T {
		if a > b {
			return a
		}
		return b
	})
}

// ExclusiveSum computes the exclusive prefix sum of src into a new slice of
// length len(src)+1; the final element is the total. The scan is parallel:
// per-chunk sums, a sequential pass over the (few) chunk totals, then a
// parallel fill. Only the returned slice is allocated; chunk scratch comes
// from a reusable arena.
func ExclusiveSum(src []int64) []int64 {
	n := len(src)
	out := make([]int64, n+1)
	if n == 0 {
		return out
	}
	workers := Workers()
	nc := numChunksFor(n, workers)
	if nc == 1 {
		var acc int64
		for i, v := range src {
			out[i] = acc
			acc += v
		}
		out[n] = acc
		return out
	}
	sums := i64Scratch.Get(nc)
	runN(n, workers, func(c, lo, hi int) {
		var acc int64
		for i := lo; i < hi; i++ {
			acc += src[i]
		}
		sums[c] = acc
	})
	var total int64
	for c := 0; c < nc; c++ {
		s := sums[c]
		sums[c] = total
		total += s
	}
	runN(n, workers, func(c, lo, hi int) {
		acc := sums[c]
		for i := lo; i < hi; i++ {
			out[i] = acc
			acc += src[i]
		}
	})
	out[n] = total
	i64Scratch.Put(sums)
	return out
}

// ExclusiveSum32 is ExclusiveSum for int32 counts with int64 offsets, the
// shape used when building CSR offsets from degree arrays. The widening
// happens inside the scan passes — no temporary int64 copy of src is made.
//
//lint:hotpath
func ExclusiveSum32(src []int32) []int64 {
	n := len(src)
	out := make([]int64, n+1)
	if n == 0 {
		return out
	}
	workers := Workers()
	nc := numChunksFor(n, workers)
	if nc == 1 {
		var acc int64
		for i, v := range src {
			out[i] = acc
			acc += int64(v)
		}
		out[n] = acc
		return out
	}
	sums := i64Scratch.Get(nc)
	runN(n, workers, func(c, lo, hi int) {
		var acc int64
		for i := lo; i < hi; i++ {
			acc += int64(src[i])
		}
		sums[c] = acc
	})
	var total int64
	for c := 0; c < nc; c++ {
		s := sums[c]
		sums[c] = total
		total += s
	}
	runN(n, workers, func(c, lo, hi int) {
		acc := sums[c]
		for i := lo; i < hi; i++ {
			out[i] = acc
			acc += int64(src[i])
		}
	})
	out[n] = total
	i64Scratch.Put(sums)
	return out
}

// Fill sets dst[i] = v for all i in parallel.
func Fill[T any](dst []T, v T) {
	Range(len(dst), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = v
		}
	})
}

// Iota sets dst[i] = int32(i) for all i in parallel.
func Iota(dst []int32) {
	Range(len(dst), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = int32(i)
		}
	})
}

// Copy copies src into dst in parallel. The slices must have equal length.
func Copy[T any](dst, src []T) {
	if len(dst) != len(src) {
		panic("par: Copy length mismatch")
	}
	Range(len(src), func(lo, hi int) {
		copy(dst[lo:hi], src[lo:hi])
	})
}

// Filter returns the elements of src satisfying pred, preserving order.
// It counts matches per chunk, sizes the output exactly, then copies —
// no per-chunk growth or final concatenation. pred therefore runs twice
// per element and must be pure (same answer both times) and safe for
// concurrent calls; every use in this repository is a flag lookup. Used
// for frontier/active-set compaction in the iterative solvers.
//
//lint:hotpath
func Filter[T any](src []T, pred func(T) bool) []T {
	n := len(src)
	if n == 0 {
		return nil
	}
	workers := Workers()
	nc := numChunksFor(n, workers)
	if nc == 1 {
		total := 0
		for i := 0; i < n; i++ {
			if pred(src[i]) {
				total++
			}
		}
		out := make([]T, 0, total)
		for i := 0; i < n; i++ {
			if pred(src[i]) {
				out = append(out, src[i])
			}
		}
		return out
	}
	counts := i64Scratch.Get(nc)
	runN(n, workers, func(c, lo, hi int) {
		var cnt int64
		for i := lo; i < hi; i++ {
			if pred(src[i]) {
				cnt++
			}
		}
		counts[c] = cnt
	})
	var total int64
	for c := 0; c < nc; c++ {
		s := counts[c]
		counts[c] = total
		total += s
	}
	out := make([]T, total)
	runN(n, workers, func(c, lo, hi int) {
		p := counts[c]
		for i := lo; i < hi; i++ {
			if pred(src[i]) {
				out[p] = src[i]
				p++
			}
		}
	})
	i64Scratch.Put(counts)
	return out
}

// MinInt32Atomic atomically stores min(current, v) at addr.
func MinInt32Atomic(addr *int32, v int32) {
	for {
		cur := atomic.LoadInt32(addr)
		if v >= cur || atomic.CompareAndSwapInt32(addr, cur, v) {
			return
		}
	}
}

// MaxInt32Atomic atomically stores max(current, v) at addr.
func MaxInt32Atomic(addr *int32, v int32) {
	for {
		cur := atomic.LoadInt32(addr)
		if v <= cur || atomic.CompareAndSwapInt32(addr, cur, v) {
			return
		}
	}
}

// MinUint64Atomic atomically stores min(current, v) at addr.
func MinUint64Atomic(addr *uint64, v uint64) {
	for {
		cur := atomic.LoadUint64(addr)
		if v >= cur || atomic.CompareAndSwapUint64(addr, cur, v) {
			return
		}
	}
}
