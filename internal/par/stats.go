package par

import "sync/atomic"

// Opt-in runtime counters. When enabled, every loop dispatch records how
// the work was executed: whether it ran inline, how many chunks the pool
// handed out, and how many of those were picked up by pool workers rather
// than the submitting goroutine (the dynamic load balancing at work). The
// harness surfaces a snapshot next to its timing tables so experiments can
// report scheduler behaviour alongside wall clock.

// Stats is a snapshot of the runtime counters.
type Stats struct {
	// Tasks counts parallel loop dispatches routed through the worker
	// pool.
	Tasks uint64
	// SeqLoops counts loops that ran inline on the caller (too small for
	// the grain policy, or a single-worker configuration).
	SeqLoops uint64
	// Chunks counts chunks executed across all pooled tasks.
	Chunks uint64
	// Steals counts chunks executed by parked pool workers rather than
	// the goroutine that submitted the loop — work the dynamic claiming
	// moved off the caller.
	Steals uint64
	// SpawnsAvoided counts the goroutine launches a spawn-per-call
	// runtime would have performed for the same loops (one per chunk);
	// the pool serves them with already-running workers instead.
	SpawnsAvoided uint64
}

var statsEnabled atomic.Bool

var (
	statTasks    atomic.Uint64
	statSeqLoops atomic.Uint64
	statChunks   atomic.Uint64
	statSteals   atomic.Uint64
	statSpawns   atomic.Uint64
)

// EnableStats switches runtime counter collection on or off. Collection
// is off by default; the counters cost a few atomic adds per loop
// dispatch (never per element) when enabled.
func EnableStats(on bool) { statsEnabled.Store(on) }

// StatsEnabled reports whether counter collection is on.
func StatsEnabled() bool { return statsEnabled.Load() }

// ResetStats zeroes the counters.
func ResetStats() {
	statTasks.Store(0)
	statSeqLoops.Store(0)
	statChunks.Store(0)
	statSteals.Store(0)
	statSpawns.Store(0)
}

// SnapshotStats returns the current counter values.
func SnapshotStats() Stats {
	return Stats{
		Tasks:         statTasks.Load(),
		SeqLoops:      statSeqLoops.Load(),
		Chunks:        statChunks.Load(),
		Steals:        statSteals.Load(),
		SpawnsAvoided: statSpawns.Load(),
	}
}

// recordTask accounts one pooled dispatch: nchunks chunks total, mine of
// them executed by the submitting goroutine. Called only when stats are
// enabled.
func recordTask(nchunks, mine int) {
	statTasks.Add(1)
	statChunks.Add(uint64(nchunks))
	statSteals.Add(uint64(nchunks - mine))
	statSpawns.Add(uint64(nchunks))
}

// recordSeq accounts one loop that ran inline.
func recordSeq() {
	if statsEnabled.Load() {
		statSeqLoops.Add(1)
	}
}
