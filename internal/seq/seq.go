// Package seq provides sequential greedy reference implementations of the
// three symmetry-breaking problems. They are the quality anchors for the
// harness's quality experiment: greedy sequential coloring in smallest-
// degree-last order is the strong palette baseline the parallel colorings
// are judged against (§IV-D's color counts), and sequential greedy
// MM/MIS give deterministic size references.
package seq

import (
	"repro/internal/coloring"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/mis"
)

// Matching computes a maximal matching by one greedy pass over the edges
// in canonical order.
func Matching(g *graph.Graph) *matching.Matching {
	m := matching.NewMatching(g.NumVertices())
	for _, e := range g.Edges() {
		if m.Mate[e.U] == matching.Unmatched && m.Mate[e.V] == matching.Unmatched {
			m.Mate[e.U] = e.V
			m.Mate[e.V] = e.U
		}
	}
	return m
}

// MIS computes a maximal independent set by one greedy pass in vertex
// order.
func MIS(g *graph.Graph) *mis.IndepSet {
	n := g.NumVertices()
	set := mis.NewIndepSet(n)
	blocked := make([]bool, n)
	for v := 0; v < n; v++ {
		if blocked[v] {
			continue
		}
		set.In[v] = true
		for _, w := range g.Neighbors(int32(v)) {
			blocked[w] = true
		}
	}
	return set
}

// Color computes a greedy coloring in smallest-degree-last order (the
// degeneracy ordering), the classic sequential heuristic that uses at most
// degeneracy+1 colors — typically the fewest of the simple methods.
func Color(g *graph.Graph) *coloring.Coloring {
	n := g.NumVertices()
	order := degeneracyOrder(g)
	c := coloring.NewColoring(n)
	forbidden := make([]int32, n) // forbidden[color] == stamp means taken
	stamp := int32(0)
	for _, v := range order {
		stamp++
		maxSeen := int32(-1)
		for _, w := range g.Neighbors(v) {
			if cw := c.Color[w]; cw != coloring.Uncolored {
				forbidden[cw] = stamp
				if cw > maxSeen {
					maxSeen = cw
				}
			}
		}
		pick := int32(0)
		for pick <= maxSeen && forbidden[pick] == stamp {
			pick++
		}
		c.Color[v] = pick
	}
	return c
}

// degeneracyOrder returns the smallest-degree-last ordering: repeatedly
// remove a minimum-degree vertex; color in reverse removal order.
func degeneracyOrder(g *graph.Graph) []int32 {
	n := g.NumVertices()
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = int(g.Degree(int32(v)))
	}
	// Bucket queue over degrees.
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	buckets := make([][]int32, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], int32(v))
	}
	removed := make([]bool, n)
	removal := make([]int32, 0, n)
	cur := 0
	for len(removal) < n {
		// A removal decrements neighbor degrees by one, so the minimum
		// can drop at most one below the cursor; scan up over empty or
		// stale buckets.
		for cur <= maxDeg && len(buckets[cur]) == 0 {
			cur++
		}
		if cur > maxDeg {
			break // only stale entries remained; all vertices handled
		}
		b := buckets[cur]
		v := b[len(b)-1]
		buckets[cur] = b[:len(b)-1]
		if removed[v] || deg[v] != cur {
			continue // stale bucket entry
		}
		removed[v] = true
		removal = append(removal, v)
		for _, w := range g.Neighbors(v) {
			if !removed[w] {
				deg[w]--
				buckets[deg[w]] = append(buckets[deg[w]], w)
			}
		}
		if cur > 0 {
			cur--
		}
	}
	// Color in reverse removal order.
	for i, j := 0, len(removal)-1; i < j; i, j = i+1, j-1 {
		removal[i], removal[j] = removal[j], removal[i]
	}
	return removal
}
