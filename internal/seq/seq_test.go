package seq

import (
	"testing"

	"repro/internal/coloring"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/mis"
	"repro/internal/par"
)

func randomGraph(n, m int, seed uint64) *graph.Graph {
	r := par.NewRNG(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	return b.Build()
}

func pathGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.Build()
}

func completeGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	return b.Build()
}

func corpus() []*graph.Graph {
	return []*graph.Graph{
		graph.NewBuilder(0).Build(),
		graph.NewBuilder(5).Build(),
		pathGraph(50),
		completeGraph(12),
		randomGraph(400, 1600, 1),
		randomGraph(400, 200, 2),
	}
}

func TestSeqMatchingMaximal(t *testing.T) {
	for i, g := range corpus() {
		if err := matching.Verify(g, Matching(g)); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
	}
}

func TestSeqMISMaximal(t *testing.T) {
	for i, g := range corpus() {
		if err := mis.Verify(g, MIS(g)); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
	}
}

func TestSeqColorProper(t *testing.T) {
	for i, g := range corpus() {
		c := Color(g)
		if err := coloring.Verify(g, c); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if g.NumVertices() > 0 && c.NumColors() > g.MaxDegree()+1 {
			t.Fatalf("case %d: %d colors for Δ=%d", i, c.NumColors(), g.MaxDegree())
		}
	}
}

func TestSeqColorDegeneracyBound(t *testing.T) {
	// A path has degeneracy 1: smallest-degree-last greedy must 2-color
	// it. A complete graph needs exactly n.
	if c := Color(pathGraph(100)); c.NumColors() != 2 {
		t.Fatalf("path colored with %d colors", c.NumColors())
	}
	if c := Color(completeGraph(9)); c.NumColors() != 9 {
		t.Fatalf("K9 colored with %d colors", c.NumColors())
	}
	// Planar-ish grid (degeneracy 2): at most 3 colors.
	b := graph.NewBuilder(100)
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if j+1 < 10 {
				b.AddEdge(int32(i*10+j), int32(i*10+j+1))
			}
			if i+1 < 10 {
				b.AddEdge(int32(i*10+j), int32((i+1)*10+j))
			}
		}
	}
	if c := Color(b.Build()); c.NumColors() > 3 {
		t.Fatalf("grid colored with %d colors", c.NumColors())
	}
}

func TestSeqDeterministic(t *testing.T) {
	g := randomGraph(300, 1200, 3)
	a, b := Color(g), Color(g)
	for i := range a.Color {
		if a.Color[i] != b.Color[i] {
			t.Fatal("sequential coloring not deterministic")
		}
	}
}
