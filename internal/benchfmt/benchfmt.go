// Package benchfmt parses `go test -bench` text output and compares runs
// against archived baselines. It backs scripts/bench2json.go (conversion
// and the regression gate) and keeps the parsing and comparison logic in a
// testable package: the script itself is a thin flag-and-IO wrapper.
//
// A comparison aggregates repeated benchmark lines (e.g. from -count=3) by
// taking the minimum ns/op per name — the least-noise estimate of a
// benchmark's true cost — and flags a regression only when the fresh
// minimum exceeds the baseline by more than a configurable threshold.
// Improvements never fail the gate.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"slices"
	"strconv"
	"strings"
)

// Result is one benchmark measurement, as archived in BENCH_*.json.
type Result struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iterations"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// ParseLine parses a single `go test -bench` output line. ok is false for
// lines that are not benchmark results (headers, PASS, log output).
func ParseLine(line string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	f := strings.Fields(line)
	if len(f) < 4 || f[3] != "ns/op" {
		return Result{}, false
	}
	iters, err1 := strconv.ParseInt(f[1], 10, 64)
	ns, err2 := strconv.ParseFloat(f[2], 64)
	if err1 != nil || err2 != nil {
		return Result{}, false
	}
	r := Result{Name: f[0], Iters: iters, NsPerOp: ns}
	for i := 4; i+1 < len(f); i += 2 {
		if v, err := strconv.ParseFloat(f[i], 64); err == nil {
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[f[i+1]] = v
		}
	}
	return r, true
}

// Parse reads `go test -bench` output and returns the benchmark lines in
// order. Non-benchmark lines are ignored. If tee is non-nil every input
// line is copied to it, preserving the human-readable log.
func Parse(r io.Reader, tee io.Writer) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if tee != nil {
			fmt.Fprintln(tee, line)
		}
		if res, ok := ParseLine(line); ok {
			results = append(results, res)
		}
	}
	return results, sc.Err()
}

// ReadJSON decodes an archived BENCH_*.json file.
func ReadJSON(r io.Reader) ([]Result, error) {
	var results []Result
	if err := json.NewDecoder(r).Decode(&results); err != nil {
		return nil, err
	}
	return results, nil
}

// WriteJSON encodes results as indented JSON (the BENCH_*.json format). A
// nil slice is written as [] rather than null.
func WriteJSON(w io.Writer, results []Result) error {
	if results == nil {
		results = []Result{}
	}
	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	_, err = w.Write(enc)
	return err
}

// Best collapses repeated measurements (e.g. -count=3) to the minimum
// ns/op per benchmark name — the standard low-noise aggregate.
func Best(results []Result) map[string]Result {
	best := make(map[string]Result, len(results))
	for _, r := range results {
		if b, ok := best[r.Name]; !ok || r.NsPerOp < b.NsPerOp {
			best[r.Name] = r
		}
	}
	return best
}

// Delta is one benchmark's baseline-vs-fresh comparison.
type Delta struct {
	Name    string
	BaseNs  float64
	FreshNs float64
	// Percent is the relative change: positive means the fresh run is
	// slower than the baseline.
	Percent float64
	// Regression is true when Percent exceeds the comparison threshold.
	Regression bool
	// MissingBase marks benchmarks present only in the fresh run (new
	// benchmarks pass the gate; they have nothing to regress against).
	MissingBase bool
}

// Comparison is the result of comparing a fresh run against a baseline.
type Comparison struct {
	// ThresholdPct is the regression threshold in percent.
	ThresholdPct float64
	Deltas       []Delta
	// MissingFresh lists baseline benchmarks absent from the fresh run.
	// The gate fails on these: a silently vanished benchmark must not
	// count as a pass.
	MissingFresh []string
}

// Compare aggregates both runs with Best and compares per name. Deltas are
// sorted by name for stable output.
func Compare(baseline, fresh []Result, thresholdPct float64) Comparison {
	base := Best(baseline)
	cur := Best(fresh)
	c := Comparison{ThresholdPct: thresholdPct}
	for name, f := range cur {
		d := Delta{Name: name, FreshNs: f.NsPerOp}
		if b, ok := base[name]; ok && b.NsPerOp > 0 {
			d.BaseNs = b.NsPerOp
			d.Percent = (f.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
			d.Regression = d.Percent > thresholdPct
		} else {
			d.MissingBase = true
		}
		c.Deltas = append(c.Deltas, d)
	}
	for name := range base {
		if _, ok := cur[name]; !ok {
			c.MissingFresh = append(c.MissingFresh, name)
		}
	}
	slices.SortFunc(c.Deltas, func(a, b Delta) int { return strings.Compare(a.Name, b.Name) })
	slices.Sort(c.MissingFresh)
	return c
}

// Failed reports whether the gate should fail: any regression past the
// threshold, or a baseline benchmark missing from the fresh run.
func (c Comparison) Failed() bool {
	if len(c.MissingFresh) > 0 {
		return true
	}
	for _, d := range c.Deltas {
		if d.Regression {
			return true
		}
	}
	return false
}

// Render formats the comparison as an aligned text table with a PASS/FAIL
// verdict line.
func (c Comparison) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "benchmark gate (threshold +%.1f%%)\n", c.ThresholdPct)
	for _, d := range c.Deltas {
		switch {
		case d.MissingBase:
			fmt.Fprintf(&b, "  NEW   %-40s %12.0f ns/op (no baseline)\n", d.Name, d.FreshNs)
		case d.Regression:
			fmt.Fprintf(&b, "  FAIL  %-40s %12.0f -> %12.0f ns/op  %+.1f%%\n",
				d.Name, d.BaseNs, d.FreshNs, d.Percent)
		default:
			fmt.Fprintf(&b, "  ok    %-40s %12.0f -> %12.0f ns/op  %+.1f%%\n",
				d.Name, d.BaseNs, d.FreshNs, d.Percent)
		}
	}
	for _, name := range c.MissingFresh {
		fmt.Fprintf(&b, "  FAIL  %-40s missing from fresh run\n", name)
	}
	if c.Failed() {
		b.WriteString("verdict: FAIL\n")
	} else {
		b.WriteString("verdict: PASS\n")
	}
	return b.String()
}
