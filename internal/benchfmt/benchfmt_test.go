package benchfmt

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
BenchmarkTable1Summary-8   	       1	1058778696 ns/op	  123456 B/op	     789 allocs/op
BenchmarkFig2Decomp-8      	       1	  51236030 ns/op
BenchmarkTable1Summary-8   	       1	1012000000 ns/op
PASS
ok  	repro	2.1s
`

func TestParse(t *testing.T) {
	var tee strings.Builder
	results, err := Parse(strings.NewReader(sampleOutput), &tee)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}
	r := results[0]
	if r.Name != "BenchmarkTable1Summary-8" || r.Iters != 1 || r.NsPerOp != 1058778696 {
		t.Errorf("bad first result: %+v", r)
	}
	if r.Metrics["B/op"] != 123456 || r.Metrics["allocs/op"] != 789 {
		t.Errorf("bad metrics: %+v", r.Metrics)
	}
	if results[1].Metrics != nil {
		t.Errorf("second result should have no metrics: %+v", results[1].Metrics)
	}
	if tee.String() != sampleOutput {
		t.Error("tee did not preserve the input verbatim")
	}
}

func TestParseLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  \trepro\t2.1s",
		"BenchmarkBroken-8 notanumber 12 ns/op",
		"BenchmarkTooShort-8 1",
	} {
		if _, ok := ParseLine(line); ok {
			t.Errorf("ParseLine accepted %q", line)
		}
	}
}

func TestBestTakesMinimum(t *testing.T) {
	results, err := Parse(strings.NewReader(sampleOutput), nil)
	if err != nil {
		t.Fatal(err)
	}
	best := Best(results)
	if got := best["BenchmarkTable1Summary-8"].NsPerOp; got != 1012000000 {
		t.Errorf("best ns/op = %v, want the 1012000000 minimum", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	results, _ := Parse(strings.NewReader(sampleOutput), nil)
	var buf strings.Builder
	if err := WriteJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(results) {
		t.Fatalf("round trip lost results: %d != %d", len(back), len(results))
	}
	if back[0].NsPerOp != results[0].NsPerOp || back[0].Metrics["B/op"] != 123456 {
		t.Errorf("round trip mangled data: %+v", back[0])
	}
}

func TestWriteJSONEmpty(t *testing.T) {
	var buf strings.Builder
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Errorf("nil results encoded as %q, want []", buf.String())
	}
}

func bench(name string, ns float64) Result { return Result{Name: name, Iters: 1, NsPerOp: ns} }

func TestCompareDetectsRegression(t *testing.T) {
	base := []Result{bench("BenchmarkA", 100), bench("BenchmarkB", 200)}
	fresh := []Result{bench("BenchmarkA", 105), bench("BenchmarkB", 201)}
	c := Compare(base, fresh, 2.0)
	if !c.Failed() {
		t.Fatal("5% regression on A should fail a 2% gate")
	}
	if !c.Deltas[0].Regression || c.Deltas[0].Name != "BenchmarkA" {
		t.Errorf("expected regression on BenchmarkA: %+v", c.Deltas)
	}
	if c.Deltas[1].Regression {
		t.Errorf("+0.5%% on BenchmarkB within 2%% gate: %+v", c.Deltas[1])
	}
	if !strings.Contains(c.Render(), "verdict: FAIL") {
		t.Error("render missing FAIL verdict")
	}
}

func TestComparePassesWithinThreshold(t *testing.T) {
	base := []Result{bench("BenchmarkA", 100), bench("BenchmarkB", 200)}
	fresh := []Result{bench("BenchmarkA", 101), bench("BenchmarkB", 150)}
	c := Compare(base, fresh, 2.0)
	if c.Failed() {
		t.Fatalf("+1%% and an improvement should pass: %s", c.Render())
	}
	if !strings.Contains(c.Render(), "verdict: PASS") {
		t.Error("render missing PASS verdict")
	}
}

func TestCompareBestOfNAbsorbsNoise(t *testing.T) {
	// One noisy repeat above threshold, but the best repeat matches the
	// baseline: the gate must pass.
	base := []Result{bench("BenchmarkA", 100)}
	fresh := []Result{bench("BenchmarkA", 130), bench("BenchmarkA", 100)}
	if c := Compare(base, fresh, 2.0); c.Failed() {
		t.Fatalf("best-of-N should absorb one noisy repeat: %s", c.Render())
	}
}

func TestCompareMissingFreshFails(t *testing.T) {
	base := []Result{bench("BenchmarkA", 100), bench("BenchmarkGone", 50)}
	fresh := []Result{bench("BenchmarkA", 100)}
	c := Compare(base, fresh, 2.0)
	if !c.Failed() {
		t.Fatal("a vanished baseline benchmark must fail the gate")
	}
	if len(c.MissingFresh) != 1 || c.MissingFresh[0] != "BenchmarkGone" {
		t.Errorf("MissingFresh = %v", c.MissingFresh)
	}
}

func TestCompareNewBenchmarkPasses(t *testing.T) {
	base := []Result{bench("BenchmarkA", 100)}
	fresh := []Result{bench("BenchmarkA", 100), bench("BenchmarkNew", 999)}
	c := Compare(base, fresh, 2.0)
	if c.Failed() {
		t.Fatalf("a new benchmark has nothing to regress against: %s", c.Render())
	}
	var sawNew bool
	for _, d := range c.Deltas {
		if d.Name == "BenchmarkNew" && d.MissingBase {
			sawNew = true
		}
	}
	if !sawNew {
		t.Errorf("new benchmark not flagged MissingBase: %+v", c.Deltas)
	}
}
