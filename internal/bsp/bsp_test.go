package bsp

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestLaunchRunsEveryThreadOnce(t *testing.T) {
	m := New()
	n := 100000
	hits := make([]int32, n)
	m.Launch(n, func(tid int) { atomic.AddInt32(&hits[tid], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("tid %d ran %d times", i, h)
		}
	}
}

func TestLaunchBarrierOrdering(t *testing.T) {
	// Writes from launch k must be visible to launch k+1 without atomics in
	// the second kernel (the barrier is the synchronization point).
	m := New()
	n := 50000
	a := make([]int64, n)
	b := make([]int64, n)
	m.Launch(n, func(tid int) { a[tid] = int64(tid) * 2 })
	m.Launch(n, func(tid int) { b[tid] = a[tid] + 1 })
	for i := range b {
		if b[i] != int64(i)*2+1 {
			t.Fatalf("b[%d] = %d", i, b[i])
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	m := New(WithLaunchOverhead(time.Millisecond))
	m.Launch(10, func(tid int) {})
	m.Launch(20, func(tid int) {})
	s := m.Stats()
	if s.Launches != 2 {
		t.Fatalf("Launches = %d", s.Launches)
	}
	if s.ThreadsRun != 30 {
		t.Fatalf("ThreadsRun = %d", s.ThreadsRun)
	}
	if s.SimTime < 2*time.Millisecond {
		t.Fatalf("SimTime = %v, want ≥ 2ms of overhead", s.SimTime)
	}
	if s.SimTime < s.KernelTime {
		t.Fatal("SimTime must include KernelTime")
	}
	m.ResetStats()
	if s := m.Stats(); s.Launches != 0 || s.ThreadsRun != 0 || s.SimTime != 0 {
		t.Fatalf("ResetStats left %+v", s)
	}
}

func TestZeroLengthLaunchCounts(t *testing.T) {
	m := New()
	m.Launch(0, func(tid int) { t.Error("kernel ran for n=0") })
	if m.Stats().Launches != 1 {
		t.Fatal("empty launch not counted")
	}
}

func TestWithWorkers(t *testing.T) {
	m := New(WithWorkers(1))
	// With one worker, execution is sequential: no data race on a plain int.
	count := 0
	m.Launch(10000, func(tid int) { count++ })
	if count != 10000 {
		t.Fatalf("count = %d", count)
	}
}
