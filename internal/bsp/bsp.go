// Package bsp provides a bulk-synchronous virtual manycore machine that
// stands in for the paper's NVidia K40c GPU (this reproduction has no CUDA
// path; see DESIGN.md §2).
//
// A Machine executes kernels: a kernel launch runs one logical thread per
// data element with an implicit global barrier at the end, exactly the
// structure of the paper's GPU codes (LMAX matching, edge-based coloring,
// Luby MIS). Kernels execute on goroutines, so wall-clock speed is the
// host's, but the machine additionally accounts a simulated time that
// charges a fixed per-launch overhead — the dominant constant of real GPU
// execution for these iterative label/flag algorithms. Iteration-heavy
// algorithms therefore pay proportionally on the simulated clock just as
// they do on a real device, preserving the paper's relative comparisons
// (e.g. "Algorithm EB finishes faster than the time taken for the
// decomposition" on small instances).
package bsp

import (
	"sync/atomic"
	"time"

	"repro/internal/par"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Live telemetry published per kernel launch when telemetry.Enable(true)
// (the -serve wiring): the per-superstep timing distribution plus launch
// and logical-thread totals. Handles are hoisted so the Launch hot path
// pays one atomic load plus lock-free metric updates.
var (
	kernelSeconds = telemetry.Default.Histogram(
		"bsp_kernel_seconds",
		"Host wall-clock time per virtual-GPU kernel launch (one bulk-synchronous superstep).",
		nil)
	launchesTotal = telemetry.Default.Counter(
		"bsp_launches_total",
		"Virtual-GPU kernel launches (bulk-synchronous supersteps executed).")
	threadsTotal = telemetry.Default.Counter(
		"bsp_threads_total",
		"Logical threads run across virtual-GPU kernel launches.")
)

// DefaultLaunchOverhead is the simulated fixed cost per kernel launch.
// Real kernel launch + sync latency on a K40c-generation device is in the
// 5–20µs range; we use 10µs.
const DefaultLaunchOverhead = 10 * time.Microsecond

// Machine is a virtual bulk-synchronous manycore processor. The zero value
// is not usable; create with New. A Machine may be reused across
// algorithms; ResetStats clears its counters between experiments.
type Machine struct {
	launchOverhead time.Duration
	workers        int

	launches    atomic.Int64
	threadsRun  atomic.Int64
	kernelTime  atomic.Int64 // wall nanoseconds inside kernels
	simOverhead atomic.Int64 // accumulated simulated overhead nanoseconds
}

// Option configures a Machine.
type Option func(*Machine)

// WithLaunchOverhead sets the simulated per-launch overhead.
func WithLaunchOverhead(d time.Duration) Option {
	return func(m *Machine) { m.launchOverhead = d }
}

// WithWorkers pins the number of host goroutines used to execute kernels.
// Zero (the default) uses the par package's worker count.
func WithWorkers(n int) Option {
	return func(m *Machine) { m.workers = n }
}

// New returns a Machine with the given options.
func New(opts ...Option) *Machine {
	m := &Machine{launchOverhead: DefaultLaunchOverhead}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Launch runs kernel(tid) for every tid in [0, n) — one logical thread per
// element — and returns after all logical threads finish (the global
// barrier). Kernels must communicate only through memory writes that are
// safe under concurrent execution (atomics or disjoint indices), as on a
// real device.
//
// When tracing is enabled, each launch is attributed to the innermost
// open trace span (counters gpu_launches, gpu_threads, gpu_kernel_ns) —
// the per-superstep accounting behind the GPU columns of the rounds
// tables.
func (m *Machine) Launch(n int, kernel func(tid int)) {
	start := time.Now()
	w := m.workers
	if w <= 0 {
		w = par.Workers()
	}
	par.ForN(n, w, kernel)
	elapsed := time.Since(start)
	m.launches.Add(1)
	m.threadsRun.Add(int64(n))
	m.kernelTime.Add(int64(elapsed))
	m.simOverhead.Add(int64(m.launchOverhead))
	if trace.Enabled() {
		trace.Add("gpu_launches", 1)
		trace.Add("gpu_threads", int64(n))
		trace.Add("gpu_kernel_ns", int64(elapsed))
	}
	if telemetry.Enabled() {
		kernelSeconds.Observe(elapsed.Seconds())
		launchesTotal.Inc()
		threadsTotal.Add(float64(n))
	}
}

// Stats is a snapshot of a Machine's execution counters.
type Stats struct {
	// Launches is the number of kernel launches (≈ number of
	// bulk-synchronous steps executed).
	Launches int64
	// ThreadsRun is the total number of logical threads across launches.
	ThreadsRun int64
	// KernelTime is host wall-clock time spent inside kernels.
	KernelTime time.Duration
	// SimTime is the simulated device time: kernel time plus the
	// per-launch overhead. Harness GPU timings report SimTime.
	SimTime time.Duration
}

// Stats returns a snapshot of the counters.
func (m *Machine) Stats() Stats {
	kt := time.Duration(m.kernelTime.Load())
	return Stats{
		Launches:   m.launches.Load(),
		ThreadsRun: m.threadsRun.Load(),
		KernelTime: kt,
		SimTime:    kt + time.Duration(m.simOverhead.Load()),
	}
}

// ResetStats zeroes the counters.
func (m *Machine) ResetStats() {
	m.launches.Store(0)
	m.threadsRun.Store(0)
	m.kernelTime.Store(0)
	m.simOverhead.Store(0)
}
