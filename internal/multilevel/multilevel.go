// Package multilevel implements a matching-based multilevel k-way graph
// partitioner in the style the paper cites for matching applications (Her &
// Pellegrini, "Efficient and scalable parallel graph partitioning") and as
// a realistic stand-in for the PMETIS comparison the paper's Remark 1
// discusses: coarsen by repeated maximal matching + contraction, partition
// the coarsest graph by balanced BFS growing, then uncoarsen with greedy
// boundary refinement.
//
// The coarse levels carry vertex weights (cluster sizes) and edge weights
// (merged multiplicities), so balance and cut are measured with respect to
// the original graph throughout.
package multilevel

import (
	"cmp"
	"fmt"
	"slices"
	"time"

	"repro/internal/graph"
	"repro/internal/par"
)

// Stats describes a partitioning run.
type Stats struct {
	// Levels is the number of coarsening levels built (0 = the input was
	// already small enough).
	Levels int
	// CutEdges is the number of original-graph edges crossing parts.
	CutEdges int64
	// MaxPartWeight is the heaviest part's vertex count.
	MaxPartWeight int64
	// Imbalance is MaxPartWeight / (n/k).
	Imbalance float64
	// Elapsed is the wall time.
	Elapsed time.Duration
}

// Options tunes Partition.
type Options struct {
	// CoarsestSize stops coarsening once the level has at most this many
	// vertices (default max(32·k, 256)).
	CoarsestSize int
	// RefinePasses is the number of boundary-refinement sweeps per level
	// (default 4).
	RefinePasses int
	// Epsilon is the allowed balance slack: parts may weigh up to
	// (1+Epsilon)·n/k (default 0.1).
	Epsilon float64
}

func (o Options) withDefaults(k int) Options {
	if o.CoarsestSize <= 0 {
		o.CoarsestSize = 32 * k
		if o.CoarsestSize < 256 {
			o.CoarsestSize = 256
		}
	}
	if o.RefinePasses <= 0 {
		o.RefinePasses = 4
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 0.1
	}
	return o
}

// wgraph is a weighted multigraph level: CSR with per-arc weights and
// per-vertex weights.
type wgraph struct {
	off   []int64
	adj   []int32
	wadj  []int64 // arc weights (merged multiplicities)
	wvtx  []int64 // vertex weights (original vertices represented)
	total int64   // sum of vertex weights
}

func (w *wgraph) n() int { return len(w.wvtx) }

// Partition computes a k-way partition of g. It returns per-vertex part
// labels in [0, k) and run statistics.
func Partition(g *graph.Graph, k int, seed uint64, opt Options) ([]int32, Stats) {
	var st Stats
	start := time.Now()
	if k < 1 {
		panic(fmt.Sprintf("multilevel: k=%d", k))
	}
	n := g.NumVertices()
	label := make([]int32, n)
	if k == 1 || n == 0 {
		st.Elapsed = time.Since(start)
		st.MaxPartWeight = int64(n)
		st.Imbalance = 1
		return label, st
	}
	if k >= n {
		// Degenerate: one vertex per part.
		par.Iota(label)
		st.Elapsed = time.Since(start)
		st.MaxPartWeight = 1
		st.Imbalance = float64(k) / float64(n)
		return label, st
	}
	opt = opt.withDefaults(k)

	// Level 0 from the input graph (unit weights).
	levels := []*wgraph{fromGraph(g)}
	var maps [][]int32 // maps[l][v] = coarse vertex of v at level l+1

	// Coarsening: maximal matching on the current level, contract pairs.
	for levels[len(levels)-1].n() > opt.CoarsestSize {
		cur := levels[len(levels)-1]
		coarse, m, shrunk := contract(cur, seed+uint64(len(levels)))
		if !shrunk {
			break // matching found almost nothing; stop coarsening
		}
		levels = append(levels, coarse)
		maps = append(maps, m)
		st.Levels++
	}

	// Initial partition on the coarsest level by balanced BFS growing.
	coarsest := levels[len(levels)-1]
	part := initialPartition(coarsest, k, seed, opt)

	// Uncoarsen + refine.
	refine(coarsest, part, k, opt)
	for l := len(maps) - 1; l >= 0; l-- {
		finer := levels[l]
		proj := make([]int32, finer.n())
		par.For(finer.n(), func(v int) { proj[v] = part[maps[l][v]] })
		part = proj
		refine(finer, part, k, opt)
	}
	copy(label, part)

	// Final statistics against the original graph.
	cut := par.Sum(n, func(i int) int64 {
		v := int32(i)
		var c int64
		for _, w := range g.Neighbors(v) {
			if w > v && label[w] != label[v] {
				c++
			}
		}
		return c
	})
	weights := make([]int64, k)
	for _, l := range label {
		weights[l]++
	}
	st.CutEdges = cut
	for _, w := range weights {
		if w > st.MaxPartWeight {
			st.MaxPartWeight = w
		}
	}
	st.Imbalance = float64(st.MaxPartWeight) * float64(k) / float64(n)
	st.Elapsed = time.Since(start)
	return label, st
}

// fromGraph converts a CSR graph into a unit-weight level.
func fromGraph(g *graph.Graph) *wgraph {
	n := g.NumVertices()
	w := &wgraph{
		off:  make([]int64, n+1),
		adj:  make([]int32, g.NumArcs()),
		wadj: make([]int64, g.NumArcs()),
		wvtx: make([]int64, n),
	}
	var pos int64
	for v := 0; v < n; v++ {
		w.off[v] = pos
		for _, u := range g.Neighbors(int32(v)) {
			w.adj[pos] = u
			w.wadj[pos] = 1
			pos++
		}
		w.wvtx[v] = 1
	}
	w.off[n] = pos
	w.total = int64(n)
	return w
}

// contract matches the level (heavy-edge random matching) and builds the
// coarse level. Reports whether the level shrank meaningfully.
func contract(cur *wgraph, seed uint64) (*wgraph, []int32, bool) {
	n := cur.n()
	mate := heavyEdgeMatch(cur, seed)

	// Coarse ids: matched pair → one vertex (the smaller endpoint leads).
	coarseOf := make([]int32, n)
	next := int32(0)
	for v := 0; v < n; v++ {
		w := mate[v]
		if w >= 0 && int(w) < v {
			coarseOf[v] = coarseOf[w]
			continue
		}
		coarseOf[v] = next
		next++
	}
	if int(next) > n*9/10 {
		return nil, nil, false // <10% shrink: not worth another level
	}

	// Aggregate coarse adjacency (hash-free: sort per-vertex pairs).
	type arc struct {
		to int32
		w  int64
	}
	coarseAdj := make([][]arc, next)
	for v := 0; v < n; v++ {
		cv := coarseOf[v]
		for i := cur.off[v]; i < cur.off[v+1]; i++ {
			cu := coarseOf[cur.adj[i]]
			if cu == cv {
				continue // contracted pair's internal edge disappears
			}
			coarseAdj[cv] = append(coarseAdj[cv], arc{cu, cur.wadj[i]})
		}
	}
	out := &wgraph{
		off:  make([]int64, next+1),
		wvtx: make([]int64, next),
	}
	for v := 0; v < n; v++ {
		out.wvtx[coarseOf[v]] += cur.wvtx[v]
	}
	out.total = cur.total
	var pos int64
	for cv := int32(0); cv < next; cv++ {
		out.off[cv] = pos
		as := coarseAdj[cv]
		slices.SortFunc(as, func(a, b arc) int { return cmp.Compare(a.to, b.to) })
		for i := 0; i < len(as); {
			j := i
			var wsum int64
			for j < len(as) && as[j].to == as[i].to {
				wsum += as[j].w
				j++
			}
			out.adj = append(out.adj, as[i].to)
			out.wadj = append(out.wadj, wsum)
			pos++
			i = j
		}
	}
	out.off[next] = pos
	return out, coarseOf, true
}

// heavyEdgeMatch computes a matching preferring heavy edges: every free
// vertex proposes to its heaviest free neighbor (symmetric hash
// tie-break, so the globally heaviest free edge always matches — each
// round makes progress deterministically); repeat until no free vertex
// has a free neighbor. mate[v] = partner or -1.
func heavyEdgeMatch(w *wgraph, seed uint64) []int32 {
	n := w.n()
	mate := make([]int32, n)
	par.Fill(mate, int32(-1))
	prop := make([]int32, n)
	active := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		if w.off[v] < w.off[v+1] {
			active = append(active, int32(v))
		}
	}
	for len(active) > 0 {
		par.Range(len(active), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := active[i]
				best := int32(-1)
				var bestW int64 = -1
				var bestTie uint64
				for j := w.off[v]; j < w.off[v+1]; j++ {
					u := w.adj[j]
					if mate[u] != -1 {
						continue
					}
					tie := par.Hash2(seed, int64(v), int64(u))
					if w.wadj[j] > bestW || (w.wadj[j] == bestW && tie > bestTie) {
						best, bestW, bestTie = u, w.wadj[j], tie
					}
				}
				prop[v] = best
			}
		})
		par.Range(len(active), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := active[i]
				u := prop[v]
				if u >= 0 && v < u && prop[u] == v {
					mate[v], mate[u] = u, v
				}
			}
		})
		active = par.Filter(active, func(v int32) bool {
			return mate[v] == -1 && prop[v] != -1
		})
	}
	return mate
}

// initialPartition grows k balanced regions by round-robin BFS from
// hash-spread seeds; any vertex left unreached joins the lightest part.
func initialPartition(w *wgraph, k int, seed uint64, opt Options) []int32 {
	n := w.n()
	part := make([]int32, n)
	par.Fill(part, int32(-1))
	capacity := (w.total*(100+int64(opt.Epsilon*100)))/int64(k)/100 + 1
	weights := make([]int64, k)
	queues := make([][]int32, k)
	for p := 0; p < k; p++ {
		s := int32(par.HashRange(seed, int64(p)*7919, n))
		for part[s] != -1 { // seed collision: walk forward
			s = (s + 1) % int32(n)
		}
		part[s] = int32(p)
		weights[p] += w.wvtx[s]
		queues[p] = append(queues[p], s)
	}
	active := k
	for active > 0 {
		active = 0
		for p := 0; p < k; p++ {
			if len(queues[p]) == 0 || weights[p] >= capacity {
				continue
			}
			active++
			v := queues[p][0]
			queues[p] = queues[p][1:]
			for i := w.off[v]; i < w.off[v+1]; i++ {
				u := w.adj[i]
				if part[u] != -1 || weights[p]+w.wvtx[u] > capacity {
					continue
				}
				part[u] = int32(p)
				weights[p] += w.wvtx[u]
				queues[p] = append(queues[p], u)
			}
		}
	}
	// Leftovers (unreached or capacity-blocked) go to the lightest part.
	for v := 0; v < n; v++ {
		if part[v] != -1 {
			continue
		}
		best := 0
		for p := 1; p < k; p++ {
			if weights[p] < weights[best] {
				best = p
			}
		}
		part[v] = int32(best)
		weights[best] += w.wvtx[v]
	}
	return part
}

// refine runs greedy boundary sweeps: move a vertex to the neighboring part
// with the largest connection-weight gain when balance allows.
func refine(w *wgraph, part []int32, k int, opt Options) {
	n := w.n()
	capacity := int64(float64(w.total) * (1 + opt.Epsilon) / float64(k))
	weights := make([]int64, k)
	for v := 0; v < n; v++ {
		weights[part[v]] += w.wvtx[v]
	}
	conn := make([]int64, k) // scratch: connection weight to each part
	for pass := 0; pass < opt.RefinePasses; pass++ {
		moved := 0
		for v := 0; v < n; v++ {
			home := part[v]
			for p := range conn {
				conn[p] = 0
			}
			boundary := false
			for i := w.off[v]; i < w.off[v+1]; i++ {
				p := part[w.adj[i]]
				conn[p] += w.wadj[i]
				if p != home {
					boundary = true
				}
			}
			if !boundary {
				continue
			}
			best, bestGain := home, int64(0)
			for p := 0; p < k; p++ {
				if int32(p) == home {
					continue
				}
				gain := conn[p] - conn[home]
				if gain > bestGain && weights[p]+w.wvtx[v] <= capacity {
					best, bestGain = int32(p), gain
				}
			}
			if best != home {
				weights[home] -= w.wvtx[v]
				weights[best] += w.wvtx[v]
				part[v] = best
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}
