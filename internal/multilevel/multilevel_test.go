package multilevel

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/par"
)

// randomCut counts the cross edges of a uniform k-way hash labeling — the
// RAND decomposition's cut, computed locally to avoid importing decomp
// (which imports this package).
func randomCut(g *graph.Graph, k int, seed uint64) int64 {
	var cut int64
	for _, e := range g.Edges() {
		if par.HashRange(seed, int64(e.U), k) != par.HashRange(seed, int64(e.V), k) {
			cut++
		}
	}
	return cut
}

func gridGraph(r, c int) *graph.Graph {
	b := graph.NewBuilder(r * c)
	id := func(i, j int) int32 { return int32(i*c + j) }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				b.AddEdge(id(i, j), id(i, j+1))
			}
			if i+1 < r {
				b.AddEdge(id(i, j), id(i+1, j))
			}
		}
	}
	return b.Build()
}

func randomGraph(n, m int, seed uint64) *graph.Graph {
	r := par.NewRNG(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	return b.Build()
}

func checkPartition(t *testing.T, g *graph.Graph, label []int32, k int, st Stats) {
	t.Helper()
	if len(label) != g.NumVertices() {
		t.Fatal("label length")
	}
	for v, l := range label {
		if l < 0 || int(l) >= k {
			t.Fatalf("label[%d] = %d out of [0,%d)", v, l, k)
		}
	}
	// Recount the cut independently.
	var cut int64
	for _, e := range g.Edges() {
		if label[e.U] != label[e.V] {
			cut++
		}
	}
	if cut != st.CutEdges {
		t.Fatalf("stats cut %d, recount %d", st.CutEdges, cut)
	}
}

func TestPartitionGridBalancedAndLocal(t *testing.T) {
	g := gridGraph(60, 60)
	k := 4
	label, st := Partition(g, k, 1, Options{})
	checkPartition(t, g, label, k, st)
	if st.Imbalance > 1.2 {
		t.Fatalf("imbalance %.2f", st.Imbalance)
	}
	// A 4-way partition of a 60×60 grid has an ideal cut around 120; the
	// multilevel heuristic should stay within a small factor, and far
	// below a random partition's expected 3/4 of all edges.
	if st.CutEdges > 800 {
		t.Fatalf("cut %d too high for a grid", st.CutEdges)
	}
	if rnd := randomCut(g, k, 1); st.CutEdges*2 > rnd {
		t.Fatalf("multilevel cut %d not clearly below random cut %d", st.CutEdges, rnd)
	}
}

func TestPartitionDegenerateCases(t *testing.T) {
	g := gridGraph(5, 5)
	label, st := Partition(g, 1, 1, Options{})
	for _, l := range label {
		if l != 0 {
			t.Fatal("k=1 must label everything 0")
		}
	}
	if st.CutEdges != 0 {
		t.Fatal("k=1 cut nonzero")
	}
	// k ≥ n: one vertex per part.
	label, _ = Partition(g, 25, 1, Options{})
	seen := map[int32]bool{}
	for _, l := range label {
		if seen[l] {
			t.Fatal("k=n assigned two vertices to one part")
		}
		seen[l] = true
	}
	// Empty graph.
	label, _ = Partition(graph.NewBuilder(0).Build(), 4, 1, Options{})
	if len(label) != 0 {
		t.Fatal("empty graph label")
	}
}

func TestPartitionDisconnected(t *testing.T) {
	// Two cliques, no edges between: perfect 2-way cut = 0.
	b := graph.NewBuilder(40)
	for i := 0; i < 20; i++ {
		for j := i + 1; j < 20; j++ {
			b.AddEdge(int32(i), int32(j))
			b.AddEdge(int32(20+i), int32(20+j))
		}
	}
	g := b.Build()
	label, st := Partition(g, 2, 3, Options{})
	checkPartition(t, g, label, 2, st)
	if st.CutEdges != 0 {
		t.Fatalf("disconnected cliques cut %d, want 0", st.CutEdges)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	g := randomGraph(800, 3200, 5)
	a, _ := Partition(g, 6, 9, Options{})
	b, _ := Partition(g, 6, 9, Options{})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("labels differ at %d under same seed", i)
		}
	}
}

func TestPartitionBeatsRandomOnRealClasses(t *testing.T) {
	for _, g := range []*graph.Graph{
		gen.RGG(8000, gen.DegreeRadius(8000, 12), 2),
		gen.Road(25, 25, 4, 0.3, 2),
	} {
		_, st := Partition(g, 8, 1, Options{})
		if rnd := randomCut(g, 8, 1); st.CutEdges >= rnd/2 {
			t.Fatalf("multilevel cut %d vs random %d: no locality win", st.CutEdges, rnd)
		}
		if st.Imbalance > 1.35 {
			t.Fatalf("imbalance %.2f", st.Imbalance)
		}
	}
}

func TestPartitionPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Partition(gridGraph(3, 3), 0, 1, Options{})
}
