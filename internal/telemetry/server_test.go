package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

// startTestServer binds a throwaway port and tears the server down with
// the test.
func startTestServer(t *testing.T, r *Registry) *Server {
	t.Helper()
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerHealthz(t *testing.T) {
	srv := startTestServer(t, NewRegistry())
	code, body := get(t, srv.URL()+"/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q, want 200 ok", code, body)
	}
}

func TestServerMetrics(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramVec("symbreak_cell_seconds", "Cell time.", nil,
		"problem", "algo", "arch", "graph")
	h.With("MM", "MM-Rand", "CPU", "lp1").Observe(0.002)
	r.Gauge("go_goroutines", "Goroutines.").Set(12)

	srv := startTestServer(t, r)
	code, body := get(t, srv.URL()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{
		"# TYPE symbreak_cell_seconds histogram",
		`symbreak_cell_seconds_bucket{problem="MM",algo="MM-Rand",arch="CPU",graph="lp1",le="+Inf"} 1`,
		`symbreak_cell_seconds_sum{problem="MM",algo="MM-Rand",arch="CPU",graph="lp1"} 0.002`,
		`symbreak_cell_seconds_count{problem="MM",algo="MM-Rand",arch="CPU",graph="lp1"} 1`,
		"go_goroutines 12",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestServerTraceSnapshot(t *testing.T) {
	was := trace.Enabled()
	trace.Enable(true)
	trace.Reset()
	defer func() {
		trace.Enable(was)
		trace.Reset()
	}()
	sp := trace.Begin("live-phase")
	sp.Add("rounds", 4)

	srv := startTestServer(t, NewRegistry())
	code, body := get(t, srv.URL()+"/trace")
	sp.End()
	if code != http.StatusOK {
		t.Fatalf("/trace status = %d", code)
	}
	var e trace.Export
	if err := json.Unmarshal([]byte(body), &e); err != nil {
		t.Fatalf("/trace is not valid Export JSON: %v\n%s", err, body)
	}
	live := e.Find("live-phase")
	if live == nil {
		t.Fatalf("/trace missing the open span:\n%s", body)
	}
	if live.Counter("rounds") != 4 {
		t.Fatalf("open span counters not live: %+v", live)
	}
	if live.DurNs <= 0 {
		t.Fatalf("open span must export elapsed-so-far time, got %d", live.DurNs)
	}
}

func TestServeHandlerMountsExtraRoutes(t *testing.T) {
	r := NewRegistry()
	r.Counter("demo_total", "Demo.").Inc()
	mux := NewMux(r)
	mux.HandleFunc("/extra", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "mounted")
	})
	srv, err := ServeHandler("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	if code, body := get(t, srv.URL()+"/extra"); code != http.StatusOK || body != "mounted" {
		t.Fatalf("/extra = %d %q", code, body)
	}
	// The telemetry surface stays intact underneath the extra routes.
	if code, body := get(t, srv.URL()+"/metrics"); code != http.StatusOK || !strings.Contains(body, "demo_total 1") {
		t.Fatalf("/metrics lost under ServeHandler: %d %q", code, body)
	}
}

func TestServerShutdownDrainsInflight(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	mux := NewMux(NewRegistry())
	mux.HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
		close(entered)
		<-release
		fmt.Fprint(w, "done")
	})
	srv, err := ServeHandler("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		code int
		body string
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get(srv.URL() + "/slow")
		if err != nil {
			got <- result{0, err.Error()}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		got <- result{resp.StatusCode, string(b)}
	}()
	<-entered

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// New connections are refused once Shutdown has begun; the in-flight
	// request must still complete after we release it.
	time.Sleep(20 * time.Millisecond)
	if _, err := http.Get(srv.URL() + "/healthz"); err == nil {
		t.Error("new request accepted during drain")
	}
	close(release)
	if r := <-got; r.code != http.StatusOK || r.body != "done" {
		t.Fatalf("in-flight request dropped during drain: %d %q", r.code, r.body)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func TestServerPprofIndex(t *testing.T) {
	srv := startTestServer(t, NewRegistry())
	code, body := get(t, srv.URL()+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d, want the profile index", code)
	}
	// A concrete profile endpoint must stream too.
	code, _ = get(t, srv.URL()+"/debug/pprof/goroutine?debug=1")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/goroutine = %d", code)
	}
}
