package telemetry

import (
	"runtime"
	"time"

	"repro/internal/par"
)

// Sampler is a background goroutine that polls process-level statistics
// onto gauges at a fixed interval: Go runtime memory/GC/goroutine stats
// and the par worker-pool scheduler counters. Create with
// StartRuntimeSampler; Stop to halt (idempotent).
type Sampler struct {
	stop chan struct{}
	done chan struct{}
}

// StartRuntimeSampler registers the runtime gauges on r, samples once
// immediately (so /metrics is populated before the first tick), and then
// resamples every interval (minimum 100ms; 0 means 1s) until Stop.
//
// The par_* gauges mirror par.SnapshotStats and are only live while
// par.EnableStats(true) — the -serve wiring in cmd/benchall enables it.
func StartRuntimeSampler(r *Registry, interval time.Duration) *Sampler {
	if interval <= 0 {
		interval = time.Second
	}
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	g := runtimeGauges(r)
	s := &Sampler{stop: make(chan struct{}), done: make(chan struct{})}
	g.sample()
	go func() {
		defer close(s.done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-tick.C:
				g.sample()
			}
		}
	}()
	return s
}

// Stop halts the sampler and waits for the final sample to finish. Safe
// to call more than once.
func (s *Sampler) Stop() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
}

// gaugeSet holds the handles the sampler refreshes.
type gaugeSet struct {
	goroutines   *Gauge
	heapAlloc    *Gauge
	heapSys      *Gauge
	heapObjects  *Gauge
	nextGC       *Gauge
	gcCycles     *Gauge
	gcPauseTotal *Gauge
	parWorkers   *Gauge
	parTasks     *Gauge
	parSeqLoops  *Gauge
	parChunks    *Gauge
	parSteals    *Gauge
	parSpawns    *Gauge
}

func runtimeGauges(r *Registry) *gaugeSet {
	return &gaugeSet{
		goroutines:   r.Gauge("go_goroutines", "Number of live goroutines."),
		heapAlloc:    r.Gauge("go_heap_alloc_bytes", "Bytes of allocated heap objects."),
		heapSys:      r.Gauge("go_heap_sys_bytes", "Bytes of heap obtained from the OS."),
		heapObjects:  r.Gauge("go_heap_objects", "Number of allocated heap objects."),
		nextGC:       r.Gauge("go_next_gc_bytes", "Heap size target of the next GC cycle."),
		gcCycles:     r.Gauge("go_gc_cycles_total", "Completed GC cycles since process start."),
		gcPauseTotal: r.Gauge("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time."),
		parWorkers:   r.Gauge("par_workers", "Configured parallel-runtime worker count."),
		parTasks:     r.Gauge("par_pool_tasks_total", "Parallel loop dispatches routed through the worker pool (requires par.EnableStats)."),
		parSeqLoops:  r.Gauge("par_pool_seq_loops_total", "Parallel loops that ran inline on the caller (requires par.EnableStats)."),
		parChunks:    r.Gauge("par_pool_chunks_total", "Chunks executed across pooled tasks (requires par.EnableStats)."),
		parSteals:    r.Gauge("par_pool_steals_total", "Chunks executed by parked pool workers rather than the submitter (requires par.EnableStats)."),
		parSpawns:    r.Gauge("par_pool_spawns_avoided_total", "Goroutine launches a spawn-per-call runtime would have performed (requires par.EnableStats)."),
	}
}

func (g *gaugeSet) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	g.goroutines.Set(float64(runtime.NumGoroutine()))
	g.heapAlloc.Set(float64(ms.HeapAlloc))
	g.heapSys.Set(float64(ms.HeapSys))
	g.heapObjects.Set(float64(ms.HeapObjects))
	g.nextGC.Set(float64(ms.NextGC))
	g.gcCycles.Set(float64(ms.NumGC))
	g.gcPauseTotal.Set(float64(ms.PauseTotalNs) / 1e9)

	ps := par.SnapshotStats()
	g.parWorkers.Set(float64(par.Workers()))
	g.parTasks.Set(float64(ps.Tasks))
	g.parSeqLoops.Set(float64(ps.SeqLoops))
	g.parChunks.Set(float64(ps.Chunks))
	g.parSteals.Set(float64(ps.Steals))
	g.parSpawns.Set(float64(ps.SpawnsAvoided))
}
