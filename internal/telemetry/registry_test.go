package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Requests.")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	// Same name returns the same underlying metric.
	if again := r.Counter("requests_total", "Requests."); again.Value() != 3.5 {
		t.Fatalf("re-registered counter lost state: %v", again.Value())
	}

	g := r.Gauge("depth", "Depth.")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %v, want 5", got)
	}
}

func TestVecChildCaching(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("cells_total", "Cells.", "problem", "arch")
	a := v.With("MM", "CPU")
	b := v.With("MM", "CPU")
	if a != b {
		t.Fatal("same label values must return the same child")
	}
	other := v.With("MM", "GPU")
	if a == other {
		t.Fatal("different label values must return distinct children")
	}
	a.Inc()
	if other.Value() != 0 {
		t.Fatal("children must not share state")
	}
}

func TestLabelArityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("x_total", "X.", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity must panic")
		}
	}()
	v.With("only-one")
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual", "first registration wins")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("dual", "conflicting type")
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 0.2, 0.5, 1})
	// 10 observations evenly through [0, 1): one per decile.
	for i := 0; i < 10; i++ {
		h.Observe(float64(i) / 10)
	}
	if h.Count() != 10 {
		t.Fatalf("count = %d, want 10", h.Count())
	}
	if got, want := h.Sum(), 4.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	// Bucket occupancy: (-inf,0.1]=2 {0,0.1}, (0.1,0.2]=1 {0.2},
	// (0.2,0.5]=3 {0.3,0.4,0.5}, (0.5,1]=4 {0.6..0.9}.
	wantCounts := []uint64{2, 1, 3, 4, 0}
	for i, w := range wantCounts {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket[%d] = %d, want %d", i, got, w)
		}
	}
	// The median rank (5 of 10) lands in the (0.2, 0.5] bucket; linear
	// interpolation puts it between the bounds.
	if q := h.Quantile(0.5); q <= 0.2 || q > 0.5 {
		t.Fatalf("p50 = %v, want within (0.2, 0.5]", q)
	}
	if q := h.Quantile(1); q != 1 {
		t.Fatalf("p100 = %v, want 1 (top finite bound)", q)
	}
	if q := h.Quantile(0); math.IsNaN(q) {
		t.Fatalf("p0 on a populated histogram must not be NaN")
	}
}

func TestHistogramOverflowClamps(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("big_seconds", "Latency.", []float64{1, 2})
	h.Observe(100) // +Inf bucket
	if q := h.Quantile(0.99); q != 2 {
		t.Fatalf("overflow quantile = %v, want clamp to 2", q)
	}
}

func TestEmptyHistogramQuantileNaN(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("empty_seconds", "Latency.", nil)
	if q := h.Quantile(0.5); !math.IsNaN(q) {
		t.Fatalf("quantile of empty histogram = %v, want NaN", q)
	}
}

func TestUnsortedBucketsPanic(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted buckets must panic")
		}
	}()
	r.Histogram("bad", "B.", []float64{2, 1})
}

// TestConcurrentRegistry hammers creation, updates, and exposition from
// many goroutines at once — the -race check for the lock-free value paths
// and the creation/exposition locking.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("ops_total", "Ops.", "kind")
	hv := r.HistogramVec("op_seconds", "Op latency.", nil, "kind")
	g := r.Gauge("level", "Level.")
	kinds := []string{"a", "b", "c", "d"}

	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			kind := kinds[w%len(kinds)]
			for i := 0; i < perWorker; i++ {
				cv.With(kind).Inc()
				hv.With(kind).Observe(float64(i) * 1e-5)
				g.Add(1)
				if i%100 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	var total float64
	for _, k := range kinds {
		total += cv.With(k).Value()
	}
	if total != workers*perWorker {
		t.Fatalf("counters sum to %v, want %d", total, workers*perWorker)
	}
	if g.Value() != workers*perWorker {
		t.Fatalf("gauge = %v, want %d", g.Value(), workers*perWorker)
	}
}
