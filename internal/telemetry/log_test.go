package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRequestLogText(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewRequestLog(&buf, "text")
	if err != nil {
		t.Fatal(err)
	}
	ts := time.Date(2026, 8, 9, 10, 0, 0, 0, time.UTC)
	l.Emit("ts", ts, "id", "ab12cd34", "status", 200,
		"cache", "miss", "wall", 4100*time.Microsecond, "msg", "two words")
	got := buf.String()
	want := `ts=2026-08-09T10:00:00Z id=ab12cd34 status=200 cache=miss wall=4.1ms msg="two words"` + "\n"
	if got != want {
		t.Fatalf("text line:\n got %q\nwant %q", got, want)
	}
}

func TestRequestLogJSON(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewRequestLog(&buf, "json")
	if err != nil {
		t.Fatal(err)
	}
	l.Emit("id", "ab12", "status", 200, "wall", 1500*time.Nanosecond, "seed", uint64(7))
	line := buf.String()
	if !strings.HasSuffix(line, "\n") {
		t.Fatalf("line not newline-terminated: %q", line)
	}
	// Field order is the argument order.
	want := `{"id":"ab12","status":200,"wall":1500,"seed":7}` + "\n"
	if line != want {
		t.Fatalf("json line:\n got %q\nwant %q", line, want)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatalf("line is not valid JSON: %v", err)
	}
}

func TestRequestLogBadFormat(t *testing.T) {
	if _, err := NewRequestLog(&bytes.Buffer{}, "yaml"); err == nil {
		t.Fatal("NewRequestLog accepted an unknown format")
	}
}

// TestRequestLogConcurrent checks that concurrent Emits never interleave
// mid-line: every emitted line must parse as one complete record.
func TestRequestLogConcurrent(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewRequestLog(&buf, "json")
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Emit("worker", w, "i", i)
			}
		}(w)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != workers*per {
		t.Fatalf("%d lines, want %d", len(lines), workers*per)
	}
	for _, line := range lines {
		var m struct{ Worker, I int }
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("torn line %q: %v", line, err)
		}
	}
}
