package telemetry

import (
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestPrometheusGolden pins the exact exposition bytes for a registry
// exercising all three metric types, labeled and unlabeled. Run with
// -update to regenerate testdata/exposition.golden.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Gauge("queue_depth", "Current queue depth.").Set(42)

	rv := r.CounterVec("rpc_requests_total", "RPC requests.", "method", "code")
	rv.With("get", "200").Add(3)
	rv.With("put", "500").Add(1.5)

	hv := r.HistogramVec("rpc_seconds", "RPC latency.", []float64{0.01, 0.1, 1}, "method")
	h := hv.With("get")
	// Exactly representable values keep the _sum line byte-stable.
	h.Observe(0.25)
	h.Observe(0.5)
	h.Observe(8)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("exposition differs from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestPrometheusHistogramSeries checks the structural invariants the
// acceptance criteria name: _bucket series are cumulative and end at
// +Inf == _count, and _sum/_count lines exist.
func TestPrometheusHistogramSeries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("solve_seconds", "Solve latency.", nil)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) * 1e-4)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`solve_seconds_bucket{le="+Inf"} 100`,
		"solve_seconds_count 100",
		"solve_seconds_sum ",
		"# TYPE solve_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative: each _bucket count must be >= the previous.
	prev := -1.0
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "solve_seconds_bucket") {
			continue
		}
		v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket counts not cumulative at %q (prev %v)", line, prev)
		}
		prev = v
	}
}
