// Package telemetry is the live half of the observability layer: a
// concurrent metrics registry (counters, gauges, fixed-bucket histograms
// with quantile estimation), background samplers that poll Go runtime and
// par worker-pool statistics onto gauges, and an embedded HTTP server
// exposing Prometheus text-format /metrics, /healthz, /debug/pprof/*, and
// a live /trace JSON snapshot of the internal/trace span tree.
//
// Where internal/trace answers "where did the time of this finished run
// go", telemetry answers "what is the process doing right now": the
// harness publishes per-cell decomposition/solve latencies into
// histograms keyed by {problem, algo, arch, graph}, the bsp machine
// publishes per-superstep kernel timings, and the samplers keep heap, GC,
// goroutine, and pool-scheduler gauges fresh while a run is in flight.
// cmd/benchall and cmd/symbreak wire the layer to the command line
// (-serve ADDR); see DESIGN.md § Observability.
//
// Publication is opt-in, mirroring trace: Enable(true) switches recording
// on, and instrumented call sites gate on Enabled() — one atomic load —
// so solvers pay nothing when no server is running. Metric values
// themselves are lock-free (atomics); the registry mutex is touched only
// on metric creation and exposition.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// enabled gates the instrumented call sites in harness and bsp. The
// registry itself always works; this flag only decides whether hot paths
// bother to record.
var enabled atomic.Bool

// Enable switches telemetry publication on or off. Off (the default)
// makes every instrumented call site a no-op after one atomic load.
func Enable(on bool) { enabled.Store(on) }

// Enabled reports whether telemetry publication is on.
func Enabled() bool { return enabled.Load() }

// Default is the process-global registry. The HTTP server, the samplers,
// and the harness/bsp instrumentation all use it; libraries that want an
// isolated namespace can create their own with NewRegistry.
var Default = NewRegistry()

// DefBuckets are the default latency buckets in seconds: exponential from
// 10µs to 10s, matched to the paper's cell-time range (decompositions in
// the tens of microseconds on small instances up to multi-second solves
// at scale).
var DefBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Registry holds metric families keyed by name. All methods are safe for
// concurrent use. Creation (CounterVec etc.) locks the registry; the
// returned metric handles update via atomics only.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// family is one named metric family: a type, a help string, a label
// schema, and one child metric per observed label-value combination.
type family struct {
	name       string
	help       string
	typ        string // "counter", "gauge", "histogram"
	labelNames []string
	buckets    []float64 // histograms only

	mu       sync.Mutex
	children map[string]any // labelKey -> *Counter | *Gauge | *Histogram
}

// labelKey joins label values with a separator that cannot appear in a
// validated label value.
func labelKey(values []string) string { return strings.Join(values, "\xff") }

// lookup returns the family registered under name, creating it with the
// given schema on first use. Re-registering with a different type or
// label arity panics: it is always a programming error.
func (r *Registry) lookup(name, help, typ string, labelNames []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labelNames) != len(labelNames) {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s(%d labels), was %s(%d labels)",
				name, typ, len(labelNames), f.typ, len(f.labelNames)))
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labelNames: labelNames, buckets: buckets,
		children: map[string]any{},
	}
	r.families[name] = f
	return f
}

// child returns the metric for the given label values, creating it with
// make on first use. Panics if the arity does not match the schema.
func (f *family) child(values []string, make func() any) any {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("telemetry: %s expects %d label values, got %d",
			f.name, len(f.labelNames), len(values)))
	}
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := make()
	f.children[key] = c
	return c
}

// Counter is a monotonically increasing value. Updates are lock-free.
type Counter struct {
	labels []string
	bits   atomic.Uint64 // float64 bits
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add accumulates v. Negative deltas are a caller bug for counters; they
// are applied as-is (the exposition does not police monotonicity).
func (c *Counter) Add(v float64) { atomicAddFloat(&c.bits, v) }

// Value returns the current value.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is an arbitrary value that can go up and down.
type Gauge struct {
	labels []string
	bits   atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add accumulates v (negative to subtract).
func (g *Gauge) Add(v float64) { atomicAddFloat(&g.bits, v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// atomicAddFloat adds v to a float64 stored as uint64 bits via CAS.
func atomicAddFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Histogram is a fixed-bucket histogram: counts per upper bound plus a
// running sum and total count. Observe is lock-free; concurrent readers
// (exposition, Quantile) see a near-consistent snapshot — bucket counts
// and the sum may momentarily disagree by in-flight observations, which
// Prometheus scraping tolerates by design.
type Histogram struct {
	labels  []string
	buckets []float64 // sorted upper bounds, +Inf implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

func newHistogram(labels []string, buckets []float64) *Histogram {
	return &Histogram{
		labels:  labels,
		buckets: buckets,
		counts:  make([]atomic.Uint64, len(buckets)+1), // +1 for +Inf
	}
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.buckets, v) // first bucket with bound >= v
	h.counts[i].Add(1)
	atomicAddFloat(&h.sumBits, v)
	h.count.Add(1)
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the bucket containing the target rank — the classic
// histogram_quantile estimate. Returns NaN with no observations. Values
// landing in the +Inf overflow bucket clamp to the largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if cum+n >= rank && n > 0 {
			if i >= len(h.buckets) { // overflow bucket: clamp
				return h.buckets[len(h.buckets)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.buckets[i-1]
			}
			hi := h.buckets[i]
			frac := (rank - cum) / n
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.buckets[len(h.buckets)-1]
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.lookup(name, help, "counter", labelNames, nil)}
}

// With returns the counter for the given label values, creating it on
// first use. Handles are cached: repeated calls with equal values return
// the same *Counter, so hot paths may (and should) hoist the handle.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.child(labelValues, func() any {
		return &Counter{labels: append([]string(nil), labelValues...)}
	}).(*Counter)
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help).With()
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.lookup(name, help, "gauge", labelNames, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.child(labelValues, func() any {
		return &Gauge{labels: append([]string(nil), labelValues...)}
	}).(*Gauge)
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeVec(name, help).With()
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers (or returns) a labeled histogram family with the
// given upper bounds (nil = DefBuckets). Bounds must be sorted ascending;
// an implicit +Inf bucket is appended.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	if !sort.Float64sAreSorted(buckets) {
		panic("telemetry: histogram buckets must be sorted ascending: " + name)
	}
	return &HistogramVec{r.lookup(name, help, "histogram", labelNames, buckets)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.child(labelValues, func() any {
		return newHistogram(append([]string(nil), labelValues...), v.f.buckets)
	}).(*Histogram)
}

// Histogram registers (or returns) an unlabeled histogram.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.HistogramVec(name, help, buckets).With()
}
