package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestRuntimeSamplerPopulatesGauges(t *testing.T) {
	r := NewRegistry()
	s := StartRuntimeSampler(r, 100*time.Millisecond)
	defer s.Stop()

	// The sampler samples once synchronously before returning, so the
	// gauges are live immediately.
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"go_goroutines ", "go_heap_alloc_bytes ", "go_gc_pause_seconds_total ",
		"par_workers ", "par_pool_tasks_total ",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("sampler exposition missing %q:\n%s", want, out)
		}
	}
	if g := r.Gauge("go_goroutines", ""); g.Value() < 1 {
		t.Fatalf("go_goroutines = %v, want >= 1", g.Value())
	}
	if g := r.Gauge("par_workers", ""); g.Value() < 1 {
		t.Fatalf("par_workers = %v, want >= 1", g.Value())
	}
}

func TestSamplerStopIdempotent(t *testing.T) {
	s := StartRuntimeSampler(NewRegistry(), time.Second)
	s.Stop()
	s.Stop() // must not panic or deadlock
}

func TestEnableGate(t *testing.T) {
	was := Enabled()
	defer Enable(was)
	Enable(false)
	if Enabled() {
		t.Fatal("Enabled() = true after Enable(false)")
	}
	Enable(true)
	if !Enabled() {
		t.Fatal("Enabled() = false after Enable(true)")
	}
}
