package telemetry

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/trace"
)

// Handler returns the telemetry HTTP mux over registry r as an opaque
// http.Handler; NewMux returns the same mux openly for callers that mount
// additional routes on it (the serving layer adds /solve and /graphs).
func Handler(r *Registry) http.Handler { return NewMux(r) }

// NewMux returns the telemetry HTTP mux over registry r:
//
//	/metrics        Prometheus text exposition of r
//	/healthz        liveness probe ("ok")
//	/trace          live JSON snapshot of the internal/trace span tree
//	/debug/pprof/*  the standard Go profiling endpoints
//
// The /trace snapshot uses the same schema as benchall -traceout (one
// tree, open spans export elapsed-so-far time), so the offline tooling
// reads it unchanged.
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		snap := trace.Snapshot()
		if err := snap.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running telemetry endpoint. Create with Serve; Close to
// shut down.
type Server struct {
	// Addr is the bound listen address (useful with ":0").
	Addr net.Addr
	srv  *http.Server
	ln   net.Listener
}

// Serve binds addr (host:port; ":0" picks a free port), serves Handler(r)
// on a background goroutine, and returns immediately. The caller owns the
// returned Server and should Close it on shutdown; the process exiting
// also tears it down, which is how the cmd wiring uses it.
func Serve(addr string, r *Registry) (*Server, error) {
	return ServeHandler(addr, Handler(r))
}

// ServeHandler is Serve for an arbitrary handler — typically a NewMux with
// extra routes mounted on it.
func ServeHandler(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
	}
	s := &Server{Addr: ln.Addr(), srv: srv, ln: ln}
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed on Close/Shutdown; nothing to surface
	return s, nil
}

// URL returns the http base URL of the bound address.
func (s *Server) URL() string { return "http://" + s.Addr.String() }

// Close stops the listener and closes open connections, dropping any
// requests still in flight. Daemon wiring should prefer Shutdown.
func (s *Server) Close() error { return s.srv.Close() }

// Shutdown drains gracefully: the listener stops accepting, idle
// connections close, and in-flight requests run to completion until ctx
// expires, at which point the remaining connections are closed hard (the
// error is then context.DeadlineExceeded). This is the SIGINT/SIGTERM path
// of symbreak's daemon mode.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.srv.Shutdown(ctx)
}
