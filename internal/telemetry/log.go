package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// RequestLog emits one structured line per served request — the
// post-hoc analysis channel next to the aggregate /metrics exposition:
// where a histogram says p99 moved, the request log says which request
// id moved it, with its cache disposition, queue wait and per-phase
// durations attached. Lines go to one writer (the daemon uses stderr)
// in either of two formats:
//
//	text   ts=2026-08-09T10:00:00Z id=ab12… status=200 wall=4.1ms …
//	json   {"ts":"2026-08-09T10:00:00Z","id":"ab12…","status":200,…}
//
// Field order is the caller's argument order in both formats, so lines
// are deterministic and diffable. Writes are serialized; a line is
// emitted with a single Write so concurrent requests never interleave
// mid-line.
//
// Emission is gated like every telemetry publication: call sites guard
// with telemetry.Enabled() (enforced by symlint's gatedmetrics
// analyzer), so disabled runs pay one atomic load and zero formatting.
type RequestLog struct {
	mu   sync.Mutex
	w    io.Writer
	json bool
}

// NewRequestLog returns a logger writing format ("text" or "json"; ""
// means text) to w.
func NewRequestLog(w io.Writer, format string) (*RequestLog, error) {
	switch format {
	case "", "text":
		return &RequestLog{w: w}, nil
	case "json":
		return &RequestLog{w: w, json: true}, nil
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q (want text or json)", format)
	}
}

// Emit writes one log line from alternating key/value pairs, preserving
// their order. Values marshal naturally: strings quote in json mode,
// time.Time renders RFC 3339, time.Duration renders in json mode as
// integer nanoseconds (machine-summable) and in text mode as its
// human form. A trailing key without a value is dropped.
func (l *RequestLog) Emit(kv ...any) {
	var b []byte
	if l.json {
		b = append(b, '{')
		for i := 0; i+1 < len(kv); i += 2 {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendQuote(b, fmt.Sprint(kv[i]))
			b = append(b, ':')
			b = appendJSONValue(b, kv[i+1])
		}
		b = append(b, '}', '\n')
	} else {
		for i := 0; i+1 < len(kv); i += 2 {
			if i > 0 {
				b = append(b, ' ')
			}
			b = append(b, fmt.Sprint(kv[i])...)
			b = append(b, '=')
			b = appendTextValue(b, kv[i+1])
		}
		b = append(b, '\n')
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.w.Write(b) //nolint:errcheck // logging is best-effort
}

// appendJSONValue appends v as a JSON value.
func appendJSONValue(b []byte, v any) []byte {
	switch v := v.(type) {
	case time.Duration:
		return strconv.AppendInt(b, v.Nanoseconds(), 10)
	case time.Time:
		return strconv.AppendQuote(b, v.UTC().Format(time.RFC3339Nano))
	}
	j, err := json.Marshal(v)
	if err != nil {
		return strconv.AppendQuote(b, fmt.Sprint(v))
	}
	return append(b, j...)
}

// appendTextValue appends v in logfmt style, quoting strings that would
// break the k=v token stream.
func appendTextValue(b []byte, v any) []byte {
	switch v := v.(type) {
	case time.Time:
		return append(b, v.UTC().Format(time.RFC3339Nano)...)
	case string:
		for _, ch := range v {
			if ch == ' ' || ch == '"' || ch == '=' {
				return strconv.AppendQuote(b, v)
			}
		}
		return append(b, v...)
	}
	return append(b, fmt.Sprint(v)...)
}
