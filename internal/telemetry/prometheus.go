package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): a # HELP / # TYPE header per family, one sample
// line per child, histograms expanded into cumulative _bucket series plus
// _sum and _count. Output is fully deterministic — families sorted by
// name, children by label values — so it golden-tests cleanly and diffs
// between scrapes are meaningful.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// write renders one family. Families with no children yet are skipped
// entirely (no orphan HELP/TYPE headers).
func (f *family) write(b *strings.Builder) {
	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]any, 0, len(keys))
	for _, k := range keys {
		children = append(children, f.children[k])
	}
	f.mu.Unlock()

	if len(children) == 0 {
		return
	}
	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	for _, c := range children {
		switch m := c.(type) {
		case *Counter:
			sample(b, f.name, f.labelNames, m.labels, "", "", m.Value())
		case *Gauge:
			sample(b, f.name, f.labelNames, m.labels, "", "", m.Value())
		case *Histogram:
			var cum uint64
			for i, bound := range m.buckets {
				cum += m.counts[i].Load()
				sample(b, f.name+"_bucket", f.labelNames, m.labels,
					"le", formatFloat(bound), float64(cum))
			}
			cum += m.counts[len(m.buckets)].Load()
			sample(b, f.name+"_bucket", f.labelNames, m.labels, "le", "+Inf", float64(cum))
			sample(b, f.name+"_sum", f.labelNames, m.labels, "", "", m.Sum())
			sample(b, f.name+"_count", f.labelNames, m.labels, "", "", float64(m.Count()))
		}
	}
}

// sample writes one exposition line. extraName/extraValue append a
// trailing synthetic label (the histogram "le").
func sample(b *strings.Builder, name string, labelNames, labelValues []string, extraName, extraValue string, v float64) {
	b.WriteString(name)
	if len(labelNames) > 0 || extraName != "" {
		b.WriteByte('{')
		for i, ln := range labelNames {
			if i > 0 {
				b.WriteByte(',')
			}
			// Go %q escaping covers the exposition format's label rules
			// (backslash, quote, newline) for the ASCII names used here.
			fmt.Fprintf(b, "%s=%q", ln, labelValues[i])
		}
		if extraName != "" {
			if len(labelNames) > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, "%s=%q", extraName, extraValue)
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

// formatFloat renders a sample value the way Prometheus expects: shortest
// round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslash and newline in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
