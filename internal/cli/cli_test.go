package cli

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

func TestLoadGraphFromDataset(t *testing.T) {
	g, err := LoadGraph("", []string{"lp1"}, 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() == 0 {
		t.Fatal("empty graph")
	}
}

func TestLoadGraphUnknownInstance(t *testing.T) {
	if _, err := LoadGraph("", []string{"nope"}, 1, 1); err == nil {
		t.Fatal("unknown instance accepted")
	}
	if _, err := LoadGraph("", nil, 1, 1); err == nil {
		t.Fatal("missing selection accepted")
	}
	if _, err := LoadGraph("", []string{"a", "b"}, 1, 1); err == nil {
		t.Fatal("two positionals accepted")
	}
}

func TestLoadGraphFromFiles(t *testing.T) {
	dir := t.TempDir()
	edge := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(edge, []byte("3 2\n0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := LoadGraph(edge, nil, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edge list m=%d", g.NumEdges())
	}
	metis := filepath.Join(dir, "g.graph")
	if err := os.WriteFile(metis, []byte("3 2\n2\n1 3\n2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err = LoadGraph(metis, nil, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("metis m=%d", g.NumEdges())
	}
	if _, err := LoadGraph(filepath.Join(dir, "missing.txt"), nil, 1, 1); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestParsers(t *testing.T) {
	if p, err := ParseProblem("color"); err != nil || p != core.ProblemColor {
		t.Fatal("ParseProblem")
	}
	if _, err := ParseProblem("x"); err == nil {
		t.Fatal("bad problem accepted")
	}
	if s, err := ParseStrategy("degk"); err != nil || s != core.StrategyDegk {
		t.Fatal("ParseStrategy")
	}
	if _, err := ParseStrategy("x"); err == nil {
		t.Fatal("bad strategy accepted")
	}
	if a, err := ParseArch("gpu"); err != nil || a != core.ArchGPU {
		t.Fatal("ParseArch")
	}
	if _, err := ParseArch("x"); err == nil {
		t.Fatal("bad arch accepted")
	}
}

func TestParsersAllValues(t *testing.T) {
	problems := map[string]core.Problem{"mm": core.ProblemMM, "color": core.ProblemColor, "mis": core.ProblemMIS}
	for in, want := range problems {
		if p, err := ParseProblem(in); err != nil || p != want {
			t.Fatalf("ParseProblem(%q) = %v, %v", in, p, err)
		}
	}
	strategies := map[string]core.Strategy{
		"auto": core.StrategyAuto, "baseline": core.StrategyBaseline,
		"bridge": core.StrategyBridge, "rand": core.StrategyRand, "degk": core.StrategyDegk,
		"mpx": core.StrategyMPX,
	}
	for in, want := range strategies {
		if s, err := ParseStrategy(in); err != nil || s != want {
			t.Fatalf("ParseStrategy(%q) = %v, %v", in, s, err)
		}
	}
	for in, want := range map[string]core.Arch{"cpu": core.ArchCPU, "gpu": core.ArchGPU} {
		if a, err := ParseArch(in); err != nil || a != want {
			t.Fatalf("ParseArch(%q) = %v, %v", in, a, err)
		}
	}
}
