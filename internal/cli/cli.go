// Package cli holds the plumbing shared by the command-line tools: graph
// loading (dataset instance by name, or a file in either supported format)
// and flag-value parsing. It exists so the tools stay thin and this logic
// is unit tested.
package cli

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
)

// LoadGraph resolves the tools' common graph selection: a -file path (edge
// list, METIS format for .graph/.metis, or binary CSR for .scsr/.bin) or a
// single positional dataset instance name built at the given scale and
// seed.
func LoadGraph(file string, args []string, scale float64, seed uint64) (*graph.Graph, error) {
	switch {
	case file != "":
		return graph.LoadFile(file)
	case len(args) == 1:
		spec, ok := dataset.Get(args[0])
		if !ok {
			return nil, fmt.Errorf("unknown instance %q (known: %v)", args[0], dataset.Names())
		}
		return dataset.Load(spec, scale, seed), nil
	default:
		return nil, fmt.Errorf("need exactly one instance name or -file")
	}
}

// ParseProblem maps a flag value to a core.Problem.
func ParseProblem(s string) (core.Problem, error) {
	switch s {
	case "mm":
		return core.ProblemMM, nil
	case "color":
		return core.ProblemColor, nil
	case "mis":
		return core.ProblemMIS, nil
	default:
		return 0, fmt.Errorf("unknown problem %q (want mm, color, or mis)", s)
	}
}

// ParseStrategy maps a flag value to a core.Strategy.
func ParseStrategy(s string) (core.Strategy, error) {
	switch s {
	case "auto":
		return core.StrategyAuto, nil
	case "baseline":
		return core.StrategyBaseline, nil
	case "bridge":
		return core.StrategyBridge, nil
	case "rand":
		return core.StrategyRand, nil
	case "degk":
		return core.StrategyDegk, nil
	case "mpx":
		return core.StrategyMPX, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q (want auto, baseline, bridge, rand, degk, or mpx)", s)
	}
}

// ParseArch maps a flag value to a core.Arch.
func ParseArch(s string) (core.Arch, error) {
	switch s {
	case "cpu":
		return core.ArchCPU, nil
	case "gpu":
		return core.ArchGPU, nil
	default:
		return 0, fmt.Errorf("unknown arch %q (want cpu or gpu)", s)
	}
}
