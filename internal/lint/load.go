package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// Package is one type-checked package ready for analysis: the parsed files
// (with comments, for the suppression directives), the type-checked package
// object, and the resolution tables analyzers query.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// LoadPackages resolves patterns with the go command run in dir, then
// parses and type-checks every matched (non-dependency) package from
// source. Imports resolve through compiled export data, which
// `go list -export -deps` produces for the whole dependency closure, so no
// network and no third-party loader is needed. Test files are not
// analyzed: the suite enforces invariants on shipped code, and several
// analyzers (noslicesort, detrand) deliberately exempt tests.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, errBuf.String())
	}

	exports := map[string]string{}
	var targets []listPackage
	dec := json.NewDecoder(&out)
	for dec.More() {
		var p listPackage
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := checkPackage(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// checkPackage parses and type-checks one package from source.
func checkPackage(fset *token.FileSet, imp types.Importer, lp listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", lp.ImportPath, err)
	}
	return &Package{
		Path:  lp.ImportPath,
		Dir:   lp.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
