package lint

import (
	"go/ast"
)

// Noslicesort flags the reflection-based sort.Slice family in non-test
// code. The generic slices.Sort/slices.SortFunc are both faster (no
// interface boxing, no reflect-based swaps) and type-checked; PR 1 moved
// every hot path over, and this analyzer keeps new code from regressing.
// Test files are exempt (the loader does not analyze them): tests compare
// against the reflection implementation on purpose.
var Noslicesort = &Analyzer{
	Name: "noslicesort",
	Doc:  "forbid reflection-based sort.Slice/SliceStable/SliceIsSorted outside tests; use slices.Sort*",
	Run:  runNoslicesort,
}

var sliceSortFuncs = map[string]bool{
	"Slice":         true,
	"SliceStable":   true,
	"SliceIsSorted": true,
}

func runNoslicesort(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name, ok := calleePkgFunc(p.Info, call)
			if !ok || pkg != "sort" || !sliceSortFuncs[name] {
				return true
			}
			p.Reportf(call.Pos(),
				"reflection-based sort.%s: use slices.Sort / slices.SortFunc / slices.IsSortedFunc (type-checked, no interface boxing)", name)
			return true
		})
	}
	return nil
}
