package lint

// The driver-level findings baseline: a committed JSON file of
// grandfathered diagnostics that symlint subtracts from a run before
// deciding its exit code. Unlike //lint:allow (which blesses a specific
// line forever), a baseline entry is a debt ledger: it is keyed by
// (analyzer, file, message) with a count — deliberately NOT by line
// number, so unrelated edits that shift code don't churn the file — and
// any finding beyond the recorded count still fails. Regenerate with
// `symlint -write-baseline`; shrink it whenever a listed finding is
// actually fixed (stale entries are reported by Prune).

import (
	"cmp"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"slices"
)

// Baseline is the committed set of grandfathered findings.
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

// BaselineEntry grandfathers up to Count findings of one analyzer with
// one message in one file (path relative to the baseline file's
// directory, slash-separated).
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

// LoadBaseline reads a baseline file. A missing file is an empty
// baseline, not an error.
func LoadBaseline(path string) (*Baseline, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	b := &Baseline{}
	if err := json.Unmarshal(raw, b); err != nil {
		return nil, fmt.Errorf("parse baseline %s: %v", path, err)
	}
	return b, nil
}

// baselineKey normalizes one diagnostic to its baseline identity. The
// file is made relative to dir when possible (the baseline should be
// position-independent of the checkout location).
func baselineKey(d Diagnostic, dir string) string {
	file := d.Pos.Filename
	if dir != "" {
		if rel, err := filepath.Rel(dir, file); err == nil {
			file = filepath.ToSlash(rel)
		}
	}
	return d.Analyzer + "\x00" + file + "\x00" + d.Message
}

// Filter removes grandfathered findings: for each (analyzer, file,
// message) the first Count occurrences are dropped, the rest kept. dir
// anchors the relative paths (the directory holding the baseline file).
func (b *Baseline) Filter(diags []Diagnostic, dir string) []Diagnostic {
	budget := map[string]int{}
	for _, e := range b.Entries {
		budget[e.Analyzer+"\x00"+filepath.ToSlash(e.File)+"\x00"+e.Message] += e.Count
	}
	var kept []Diagnostic
	for _, d := range diags {
		key := baselineKey(d, dir)
		if budget[key] > 0 {
			budget[key]--
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// Prune returns the entries no current finding matches — paid-off debt
// that should be deleted from the committed file.
func (b *Baseline) Prune(diags []Diagnostic, dir string) []BaselineEntry {
	current := map[string]int{}
	for _, d := range diags {
		current[baselineKey(d, dir)]++
	}
	var stale []BaselineEntry
	for _, e := range b.Entries {
		key := e.Analyzer + "\x00" + filepath.ToSlash(e.File) + "\x00" + e.Message
		if current[key] < e.Count {
			stale = append(stale, e)
		}
	}
	return stale
}

// WriteBaseline records diags as the new baseline at path, relative to
// dir, sorted for stable diffs.
func WriteBaseline(path string, diags []Diagnostic, dir string) error {
	counts := map[[3]string]int{}
	for _, d := range diags {
		file := d.Pos.Filename
		if dir != "" {
			if rel, err := filepath.Rel(dir, file); err == nil {
				file = filepath.ToSlash(rel)
			}
		}
		counts[[3]string{d.Analyzer, file, d.Message}]++
	}
	b := Baseline{}
	for k, n := range counts {
		b.Entries = append(b.Entries, BaselineEntry{Analyzer: k[0], File: k[1], Message: k[2], Count: n})
	}
	slices.SortFunc(b.Entries, func(x, y BaselineEntry) int {
		if c := cmp.Compare(x.File, y.File); c != 0 {
			return c
		}
		if c := cmp.Compare(x.Analyzer, y.Analyzer); c != 0 {
			return c
		}
		return cmp.Compare(x.Message, y.Message)
	})
	buf, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
