package lint

import (
	"cmp"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"slices"
	"strconv"
	"strings"
)

// Allocgate fails the build when an annotated hot path gains a heap
// allocation. Functions marked `//lint:hotpath` (solver kernels,
// frontier.EdgeMap, the scsr decode loop) are compiled with the
// compiler's own escape analysis (`go build -gcflags=-m`) and every
// "escapes to heap" / "moved to heap" diagnostic inside them is compared
// against the package's committed allocgate.baseline.json: a diagnostic
// whose (function, message) count exceeds the baseline is a finding.
// Grandfathered allocations live in the baseline (regenerate with
// `symlint -write-alloc-baseline`); new ones must be justified with
// `//lint:allow allocgate` on the allocation line or eliminated.
//
// Escape analysis shifts between compiler releases, so the baseline
// records the go major.minor it was produced with and the check skips
// silently under any other toolchain. The analyzer shells out to the
// go tool and is skipped under the vet harness (unitcheck).
var Allocgate = &Analyzer{
	Name: "allocgate",
	Doc:  "no new heap allocations in //lint:hotpath functions vs the committed baseline",
	Run:  runAllocgate,
}

// allocBaselineFile is the per-package baseline filename.
const allocBaselineFile = "allocgate.baseline.json"

// allocBaseline is the committed grandfather list for one package.
type allocBaseline struct {
	Go      string               `json:"go"` // toolchain major.minor, e.g. "go1.24"
	Entries []allocBaselineEntry `json:"entries"`
}

type allocBaselineEntry struct {
	Func    string `json:"func"`
	Message string `json:"message"`
	Count   int    `json:"count"`
}

// allocDiag is one escape-analysis diagnostic attributed to a hotpath
// function.
type allocDiag struct {
	fn      string
	message string
	pos     token.Pos
}

// goMinorVersion reports the running toolchain as "goMAJOR.MINOR".
func goMinorVersion() string {
	v := runtime.Version() // e.g. "go1.24.0"
	parts := strings.SplitN(v, ".", 3)
	if len(parts) >= 2 {
		return parts[0] + "." + parts[1]
	}
	return v
}

func runAllocgate(p *Pass) error {
	diags, dir, ok, err := allocDiagsFor(p)
	if err != nil || !ok {
		return err
	}
	baseline := allocBaseline{}
	raw, err := os.ReadFile(filepath.Join(dir, allocBaselineFile))
	if err == nil {
		if jsonErr := json.Unmarshal(raw, &baseline); jsonErr != nil {
			return fmt.Errorf("allocgate: parse %s: %v", allocBaselineFile, jsonErr)
		}
		if baseline.Go != goMinorVersion() {
			// Escape analysis is compiler-version-specific; a baseline
			// from another toolchain proves nothing either way.
			return nil
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	allowed := map[string]int{}
	for _, e := range baseline.Entries {
		allowed[e.Func+"\x00"+e.Message] += e.Count
	}
	seen := map[string]int{}
	for _, d := range diags {
		key := d.fn + "\x00" + d.message
		seen[key]++
		if seen[key] <= allowed[key] {
			continue
		}
		p.Reportf(d.pos,
			"new heap allocation in //lint:hotpath %s: %s (add to %s via symlint -write-alloc-baseline only with a benchmark justification)",
			d.fn, d.message, allocBaselineFile)
	}
	return nil
}

// allocDiagsFor compiles the pass package with -gcflags=-m and returns
// the escape diagnostics attributed to hotpath functions. ok=false when
// the package has no hotpath annotations (nothing to do, no compile).
func allocDiagsFor(p *Pass) (diags []allocDiag, dir string, ok bool, err error) {
	hot := hotpathFuncs(p)
	if len(hot) == 0 {
		return nil, "", false, nil
	}
	if len(p.Files) == 0 {
		return nil, "", false, nil
	}
	dir = filepath.Dir(p.Fset.Position(p.Files[0].Pos()).Filename)
	cmd := exec.Command("go", "build", "-gcflags=-m", ".")
	cmd.Dir = dir
	out, runErr := cmd.CombinedOutput()
	if runErr != nil {
		return nil, "", false, fmt.Errorf("allocgate: go build -gcflags=-m in %s: %v\n%s", dir, runErr, out)
	}
	for _, line := range strings.Split(string(out), "\n") {
		file, lineNo, col, msg, parsed := parseEscapeDiag(line)
		if !parsed {
			continue
		}
		if !strings.Contains(msg, "escapes to heap") && !strings.HasPrefix(msg, "moved to heap") {
			continue
		}
		for _, h := range hot {
			if filepath.Base(h.file) != filepath.Base(file) || lineNo < h.startLine || lineNo > h.endLine {
				continue
			}
			diags = append(diags, allocDiag{
				fn:      h.name,
				message: msg,
				pos:     h.posAt(lineNo, col),
			})
			break
		}
	}
	return diags, dir, true, nil
}

// hotpathFunc is one //lint:hotpath-annotated function in the pass
// package.
type hotpathFunc struct {
	name                string
	file                string
	startLine, endLine  int
	tokFile             *token.File
}

// posAt converts a compiler file:line:col back into a token.Pos inside
// the function's file, so //lint:allow directives on the allocation line
// work.
func (h *hotpathFunc) posAt(line, col int) token.Pos {
	if h.tokFile == nil || line < 1 || line > h.tokFile.LineCount() {
		return token.NoPos
	}
	pos := h.tokFile.LineStart(line)
	if col > 1 {
		pos += token.Pos(col - 1)
	}
	return pos
}

// hotpathFuncs finds the functions annotated //lint:hotpath in the pass
// package.
func hotpathFuncs(p *Pass) []hotpathFunc {
	marked := p.directiveLines("lint:hotpath", "")
	var out []hotpathFunc
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, isFn := d.(*ast.FuncDecl)
			if isFn && fd.Body != nil {
				start := p.Fset.Position(fd.Pos())
				if !marked[lineKey{start.Filename, start.Line}] {
					continue
				}
				out = append(out, hotpathFunc{
					name:      fd.Name.Name,
					file:      start.Filename,
					startLine: start.Line,
					endLine:   p.Fset.Position(fd.End()).Line,
					tokFile:   p.Fset.File(fd.Pos()),
				})
			}
		}
	}
	return out
}

// parseEscapeDiag splits one `-m` output line of the form
// `./file.go:12:7: message`.
func parseEscapeDiag(line string) (file string, lineNo, col int, msg string, ok bool) {
	parts := strings.SplitN(line, ": ", 2)
	if len(parts) != 2 {
		return "", 0, 0, "", false
	}
	loc := strings.Split(parts[0], ":")
	if len(loc) != 3 || !strings.HasSuffix(loc[0], ".go") {
		return "", 0, 0, "", false
	}
	l, err1 := strconv.Atoi(loc[1])
	c, err2 := strconv.Atoi(loc[2])
	if err1 != nil || err2 != nil {
		return "", 0, 0, "", false
	}
	return loc[0], l, c, strings.TrimSpace(parts[1]), true
}

// WriteAllocBaseline recomputes the escape diagnostics for pkg's hotpath
// set and writes allocgate.baseline.json beside the sources, returning
// the number of grandfathered entries (and false when the package has no
// hotpath annotations, in which case nothing is written).
func WriteAllocBaseline(pkg *Package) (int, bool, error) {
	pass := &Pass{
		Analyzer: Allocgate,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
	}
	diags, dir, ok, err := allocDiagsFor(pass)
	if err != nil || !ok {
		return 0, false, err
	}
	counts := map[[2]string]int{}
	for _, d := range diags {
		counts[[2]string{d.fn, d.message}]++
	}
	baseline := allocBaseline{Go: goMinorVersion()}
	for k, n := range counts {
		baseline.Entries = append(baseline.Entries, allocBaselineEntry{Func: k[0], Message: k[1], Count: n})
	}
	slices.SortFunc(baseline.Entries, func(a, b allocBaselineEntry) int {
		if c := cmp.Compare(a.Func, b.Func); c != 0 {
			return c
		}
		return cmp.Compare(a.Message, b.Message)
	})
	buf, err := json.MarshalIndent(baseline, "", "  ")
	if err != nil {
		return 0, false, err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(filepath.Join(dir, allocBaselineFile), buf, 0o644); err != nil {
		return 0, false, err
	}
	return len(baseline.Entries), true, nil
}
