package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Atomicmix enforces all-or-nothing atomicity: a struct field or package
// variable that is accessed through sync/atomic anywhere in the program
// must be accessed atomically everywhere. A single plain load racing a
// CAS loop is a data race the race detector only catches when the
// schedule cooperates; this check catches it statically, across
// packages, and through helpers — passing &x.f to a function that
// atomically updates its pointee counts as an atomic access of x.f at
// the call site (and symmetrically for helpers that deref plainly).
//
// Fields of the method-based sync/atomic types (atomic.Int64 & co) are
// exempt: their API makes mixed access impossible. Composite-literal
// initialization is exempt too — zeroing a counter before the value is
// shared is the universal constructor idiom, not a race.
var Atomicmix = &Analyzer{
	Name: "atomicmix",
	Doc:  "a field or variable accessed via sync/atomic must be accessed atomically everywhere",
	Run:  runAtomicmix,
}

// atomicAccess is one classified access to a tracked field or variable.
type atomicAccess struct {
	key     string // pkgPath.Type.field or pkgPath.var
	pkgPath string // package the access appears in
	pos     token.Pos
	site    string // "file:line" for cross-references
	atomic  bool
	via     string // helper name when classified through a call, else ""
}

// atomicPtrSummary records, per function, which pointer parameters the
// body accesses atomically and which it derefs plainly (bit i = summary
// param i).
type atomicPtrSummary struct {
	atomic, plain uint64
}

// atomicFacts is the program-wide result of the collection phase.
type atomicFacts struct {
	accesses []atomicAccess          // in deterministic program order
	atomicAt map[string]string       // key -> first atomic site
	sums     map[string]*atomicPtrSummary // by funcKey
}

func runAtomicmix(p *Pass) error {
	prog := p.Prog
	if prog == nil {
		prog = NewProgram([]*Package{{
			Path:  p.Pkg.Path(),
			Fset:  p.Fset,
			Files: p.Files,
			Types: p.Pkg,
			Info:  p.Info,
		}})
	}
	facts := atomicFactsFor(prog)
	for _, acc := range facts.accesses {
		if acc.atomic || acc.pkgPath != p.Pkg.Path() {
			continue
		}
		site, mixed := facts.atomicAt[acc.key]
		if !mixed {
			continue
		}
		how := "plain access"
		if acc.via != "" {
			how = "non-atomic access via " + acc.via
		}
		p.Reportf(acc.pos,
			"%s of %s, which is accessed atomically at %s: use sync/atomic on every access", how, acc.key, site)
	}
	return nil
}

// atomicFactsFor collects every classified access in the program,
// memoized on the Program.
func atomicFactsFor(prog *Program) *atomicFacts {
	if f, ok := prog.cache["atomicmix"].(*atomicFacts); ok {
		return f
	}
	facts := &atomicFacts{
		atomicAt: map[string]string{},
		sums:     map[string]*atomicPtrSummary{},
	}
	// Fixpoint over pointer-parameter summaries: a helper wrapping
	// another helper needs its callee's bits before its own settle.
	for iter := 0; iter < 64; iter++ {
		changed := false
		for _, fi := range prog.decls {
			next := collectPtrSummary(facts, fi)
			prev := facts.sums[funcKey(fi.Fn)]
			if prev == nil || *prev != *next {
				facts.sums[funcKey(fi.Fn)] = next
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Access collection, in deterministic declaration order.
	for _, fi := range prog.decls {
		collectAccesses(facts, fi)
	}
	for _, acc := range facts.accesses {
		if acc.atomic {
			if _, seen := facts.atomicAt[acc.key]; !seen {
				facts.atomicAt[acc.key] = acc.site
			}
		}
	}
	prog.cache["atomicmix"] = facts
	return facts
}

// isAtomicOp reports whether fn is one of the address-based sync/atomic
// operations (AddT, LoadT, StoreT, SwapT, CompareAndSwapT).
func isAtomicOp(pkg, name string) bool {
	if pkg != "sync/atomic" {
		return false
	}
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// trackedTarget resolves the operand of a unary & (or a bare identifier)
// to a tracked field or package-variable key. Fields of sync/atomic
// named types and non-integer fields are not tracked.
func trackedTarget(pkg *Package, e ast.Expr) (key string, ok bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		selection, isSel := pkg.Info.Selections[e]
		if !isSel {
			return "", false
		}
		field, isVar := selection.Obj().(*types.Var)
		if !isVar || !field.IsField() || !trackableType(field.Type()) {
			return "", false
		}
		owner := ownerName(selection.Recv())
		if owner == "" || field.Pkg() == nil {
			return "", false
		}
		return field.Pkg().Path() + "." + owner + "." + field.Name(), true
	case *ast.Ident:
		obj, isVar := pkg.Info.Uses[e].(*types.Var)
		if !isVar || obj.Pkg() == nil || !trackableType(obj.Type()) {
			return "", false
		}
		if obj.Parent() != obj.Pkg().Scope() {
			return "", false // only package-level variables
		}
		return obj.Pkg().Path() + "." + obj.Name(), true
	}
	return "", false
}

// trackableType reports whether t is a plain integer type — the only
// shape the address-based sync/atomic API operates on. Named sync/atomic
// types are excluded (their methods can't race with plain access).
func trackableType(t types.Type) bool {
	if named, isNamed := types.Unalias(t).(*types.Named); isNamed {
		if obj := named.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" {
			return false
		}
	}
	b, isBasic := t.Underlying().(*types.Basic)
	return isBasic && b.Info()&types.IsInteger != 0
}

// ownerName returns the named type a field selection's receiver resolves
// to.
func ownerName(recv types.Type) string {
	t := types.Unalias(recv)
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = types.Unalias(ptr.Elem())
	}
	if named, isNamed := t.(*types.Named); isNamed {
		return named.Obj().Name()
	}
	return ""
}

// collectPtrSummary computes which pointer parameters fi's body accesses
// atomically vs. plainly, using the summaries gathered so far.
func collectPtrSummary(facts *atomicFacts, fi *FuncInfo) *atomicPtrSummary {
	info := fi.Pkg.Info
	sum := &atomicPtrSummary{}
	paramBit := map[types.Object]uint64{}
	for i, obj := range paramObjects(info, fi.Decl) {
		if i < 64 {
			if _, isPtr := obj.Type().Underlying().(*types.Pointer); isPtr {
				paramBit[obj] = uint64(1) << i
			}
		}
	}
	if len(paramBit) == 0 {
		return sum
	}
	bitOf := func(e ast.Expr) uint64 {
		id, isIdent := ast.Unparen(e).(*ast.Ident)
		if !isIdent {
			return 0
		}
		return paramBit[info.Uses[id]]
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.StarExpr:
			sum.plain |= bitOf(n.X)
		case *ast.CallExpr:
			if pkg, name, ok := calleePkgFunc(info, n); ok && isAtomicOp(pkg, name) {
				if len(n.Args) > 0 {
					sum.atomic |= bitOf(n.Args[0])
				}
				return true
			}
			callee := staticCallee(info, n)
			if callee == nil {
				return true
			}
			csum := facts.sums[funcKey(callee)]
			if csum == nil {
				return true
			}
			isMethod := callIsMethod(info, n)
			for i := 0; i < 64; i++ {
				bit := uint64(1) << i
				if csum.atomic&bit == 0 && csum.plain&bit == 0 {
					continue
				}
				arg := argForParam(n, isMethod, i)
				if arg == nil {
					continue
				}
				if b := bitOf(arg); b != 0 {
					if csum.atomic&bit != 0 {
						sum.atomic |= b
					}
					if csum.plain&bit != 0 {
						sum.plain |= b
					}
				}
			}
		}
		return true
	})
	return sum
}

// collectAccesses walks one function and classifies every access to a
// tracked field or package variable.
func collectAccesses(facts *atomicFacts, fi *FuncInfo) {
	info := fi.Pkg.Info
	record := func(e ast.Expr, pos token.Pos, atomic bool, via string) {
		key, ok := trackedTarget(fi.Pkg, e)
		if !ok {
			return
		}
		facts.accesses = append(facts.accesses, atomicAccess{
			key:     key,
			pkgPath: fi.Pkg.Path,
			pos:     pos,
			site:    shortPos(fi.Pkg, pos),
			atomic:  atomic,
			via:     via,
		})
	}
	// classifiedAddr marks &target operands consumed by a recognized
	// call so the generic pass below doesn't double-count them, and
	// addresses passed to unclassifiable places (which we skip rather
	// than guess).
	classifiedAddr := map[ast.Expr]bool{}

	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if pkg, name, ok := calleePkgFunc(info, call); ok && isAtomicOp(pkg, name) {
			if len(call.Args) > 0 {
				if un, isUn := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); isUn && un.Op == token.AND {
					classifiedAddr[un] = true
					record(un.X, un.Pos(), true, "")
				}
			}
			return true
		}
		callee := staticCallee(info, call)
		var csum *atomicPtrSummary
		if callee != nil {
			csum = facts.sums[funcKey(callee)]
		}
		isMethod := callIsMethod(info, call)
		for ai, arg := range call.Args {
			un, isUn := ast.Unparen(arg).(*ast.UnaryExpr)
			if !isUn || un.Op != token.AND {
				continue
			}
			if _, tracked := trackedTarget(fi.Pkg, un.X); !tracked {
				continue
			}
			// An address escaping into a call is classified by the
			// callee's pointer summary; without one, skip it rather
			// than guess.
			classifiedAddr[un] = true
			if csum == nil || callee == nil {
				continue
			}
			pi := ai
			if isMethod {
				pi++
			}
			if pi >= 64 {
				continue
			}
			bit := uint64(1) << pi
			if csum.atomic&bit != 0 {
				record(un.X, un.Pos(), true, "")
			}
			if csum.plain&bit != 0 {
				record(un.X, un.Pos(), false, callee.Name())
			}
		}
		return true
	})

	// Generic pass: every remaining direct read/write is a plain access.
	// Composite-literal keys never parse as selectors or package-scope
	// uses here, so constructor initialization stays exempt.
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND && classifiedAddr[n] {
				return false // already classified via a call
			}
			if n.Op == token.AND {
				if _, tracked := trackedTarget(fi.Pkg, n.X); tracked {
					return false // address taken to an unknown place: skip
				}
			}
		case *ast.SelectorExpr:
			record(n, n.Pos(), false, "")
			return true
		case *ast.Ident:
			record(n, n.Pos(), false, "")
		}
		return true
	})
}
