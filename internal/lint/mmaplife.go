package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Mmaplife is a static use-after-unmap check for the mmap-backed binary
// graph surface. graph.OpenBinary returns a *BinaryGraph whose embedded
// Graph holds unsafe.Slice views directly into the file mapping; Close
// munmaps, after which any surviving view is a fault (or worse, silently
// remapped memory). The analyzer tracks aliases of the mapping — the
// handle's embedded Graph, Neighbors results, anything a helper derives
// from them (via the shared taint summaries, so aliases survive
// laundering through functions) — and reports, in functions that Close
// the handle:
//
//   - uses of an alias positioned after a non-deferred Close;
//   - aliases escaping the function (returned, stored through a
//     parameter or package variable, or captured by a returned closure)
//     while any Close — including a deferred one — is pending.
//
// Functions that never Close are clean by design: LoadFile-style callers
// intentionally keep the mapping alive for the process lifetime.
var Mmaplife = &Analyzer{
	Name: "mmaplife",
	Doc:  "no alias of a mapped BinaryGraph may be used or escape past Close",
	Run:  runMmaplife,
}

var mmaplifeAliasConfig = taintConfig{
	name:             "mmaplife-alias",
	fieldWriteTaints: true,
	callSource:       mmapAliasSource,
}

// mmapAliasSource marks the mapping root: OpenBinary results. Every
// other alias derives from the handle by selection or method call, which
// ordinary taint flow covers.
func mmapAliasSource(p *Package, call *ast.CallExpr) (string, bool, bool) {
	if pkg, name, ok := calleePkgFunc(p.Info, call); ok {
		if name == "OpenBinary" && isInternalPkg(pkg, "graph") {
			return "graph.OpenBinary mapping", true, true
		}
	}
	return "", false, false
}

func runMmaplife(p *Pass) error {
	prog := p.Prog
	if prog == nil {
		prog = NewProgram([]*Package{{
			Path:  p.Pkg.Path(),
			Fset:  p.Fset,
			Files: p.Files,
			Types: p.Pkg,
			Info:  p.Info,
		}})
	}
	eng := taintEngineFor(prog, mmaplifeAliasConfig)
	for _, fi := range prog.decls {
		if fi.Pkg.Path == p.Pkg.Path() {
			checkMmapLifetimes(p, eng, fi)
		}
	}
	return nil
}

// isBinaryGraph reports whether t is (a pointer to) graph.BinaryGraph.
func isBinaryGraph(t types.Type) bool {
	return t != nil && namedFrom(t, "repro/internal/graph", "BinaryGraph")
}

// canHoldAlias reports whether a value of type t can reference mapped
// memory. Scalars computed *from* the mapping — vertex counts, degrees,
// ids — are copies, safe to keep past Close; only reference-shaped types
// (and structs or arrays that may embed them) carry the mapping itself.
func canHoldAlias(t types.Type) bool {
	if t == nil {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() == types.UnsafePointer || u.Kind() == types.Uintptr
	default:
		return true
	}
}

// checkMmapLifetimes analyzes one function: find the Close calls, then
// flag alias uses after a plain Close and alias escapes under any Close.
func checkMmapLifetimes(p *Pass, eng *taintEngine, fi *FuncInfo) {
	info := fi.Pkg.Info
	sc := eng.scan(fi, nil)

	// Handle-typed parameters count as mapping roots too: a function
	// handed a *BinaryGraph that Closes it has the same obligations as
	// one that opened it.
	var handleParams uint64
	for obj, i := range sc.params {
		if isBinaryGraph(obj.Type()) {
			handleParams |= uint64(1) << i
		}
	}
	isAlias := func(t taint) bool {
		return t.value || t.params&handleParams != 0
	}

	// Locate Close calls on BinaryGraph receivers. Each non-deferred
	// Close "gates" the source region that executes after it: up to the
	// end of its enclosing block when that block exits with a return
	// (the error-path `if hdrOnly { bg.Close(); return }` idiom must
	// not condemn the happy path below it), otherwise to the end of the
	// function.
	type closeGate struct{ pos, end token.Pos }
	var gates []closeGate
	anyClose := false
	anyDeferred := false
	walkStack(fi.Decl.Body, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		_, name, ok := calleeMethod(info, call)
		if !ok || name != "Close" {
			return
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		tv, ok := info.Types[sel.X]
		if !ok || !isBinaryGraph(tv.Type) {
			return
		}
		anyClose = true
		end := fi.Decl.Body.End()
		for _, anc := range stack {
			if _, isDefer := anc.(*ast.DeferStmt); isDefer {
				anyDeferred = true
				return // deferred Close never gates in-function uses
			}
		}
		for i := len(stack) - 1; i >= 0; i-- {
			blk, isBlk := stack[i].(*ast.BlockStmt)
			if !isBlk || blk == fi.Decl.Body {
				continue
			}
			if n := len(blk.List); n > 0 {
				if _, isRet := blk.List[n-1].(*ast.ReturnStmt); isRet {
					end = blk.End()
				}
			}
			break // only the innermost block decides
		}
		gates = append(gates, closeGate{call.Pos(), end})
	})
	if !anyClose {
		return // mapping intentionally outlives the function (LoadFile pattern)
	}
	gatedBy := func(pos token.Pos) token.Pos {
		for _, g := range gates {
			if g.pos < pos && pos <= g.end {
				return g.pos
			}
		}
		return token.NoPos
	}

	objOf := func(id *ast.Ident) types.Object {
		if obj := info.Uses[id]; obj != nil {
			return obj
		}
		return info.Defs[id]
	}
	typeOf := func(info *types.Info, e ast.Expr) types.Type {
		if tv, ok := info.Types[e]; ok {
			return tv.Type
		}
		return nil
	}

	walkStack(fi.Decl.Body, func(n ast.Node, stack []ast.Node) {
		switch n := n.(type) {
		case *ast.Ident:
			// Use of a mapped view after a non-deferred Close. The
			// handle itself is exempt here (double-Close and header
			// reads are lifecycle questions, not mapping aliases) and
			// covered by the selector rule below.
			gate := gatedBy(n.Pos())
			if gate == token.NoPos {
				return
			}
			obj := objOf(n)
			if obj == nil || isBinaryGraph(obj.Type()) || !canHoldAlias(obj.Type()) {
				return
			}
			if isAlias(sc.st[obj]) {
				p.Reportf(n.Pos(),
					"use of mapped graph view %q after Close at %s: the mapping is unmapped", n.Name, shortPos(fi.Pkg, gate))
			}
		case *ast.SelectorExpr:
			// Selecting into the handle after a plain Close: bg.Graph,
			// bg.Mapped(), any field but the value-copied Hdr.
			gate := gatedBy(n.Pos())
			if gate == token.NoPos {
				return
			}
			tv, ok := info.Types[n.X]
			if !ok || !isBinaryGraph(tv.Type) {
				return
			}
			switch n.Sel.Name {
			case "Close", "Hdr", "Mapped":
				// Close is idempotent, Hdr is a value copy, and Mapped
				// is a nil-check predicate — all safe after unmap.
				return
			}
			p.Reportf(n.Pos(),
				"access to BinaryGraph.%s after Close at %s: the mapping is unmapped", n.Sel.Name, shortPos(fi.Pkg, gate))
		case *ast.ReturnStmt:
			// A return escapes the mapping only when a deferred Close
			// is pending (it runs after the return value is computed).
			// Returning an alias after a plain Close is use-after-unmap
			// and already reported by the ident/selector rules above;
			// happy-path returns in functions that Close only on error
			// paths are the intentional keep-alive pattern.
			if hasFuncLit(stack) || !anyDeferred {
				return
			}
			for _, res := range n.Results {
				if lit, ok := ast.Unparen(res).(*ast.FuncLit); ok {
					if capturesAlias(info, lit, sc, isAlias) {
						p.Reportf(res.Pos(),
							"returned closure captures a mapped graph view past Close: the mapping is unmapped when the closure runs")
					}
					continue
				}
				if isAlias(sc.exprTaint(res)) && canHoldAlias(typeOf(info, res)) {
					p.Reportf(res.Pos(),
						"mapped graph view escapes: returned from a function that Closes the mapping")
				}
			}
		case *ast.AssignStmt:
			// A store escapes when a Close can still run after it: a
			// deferred Close always pends; a plain Close later in the
			// source invalidates what was just stored. (Storing after a
			// plain Close is use-after-unmap — the RHS alias read is
			// already reported by the ident/selector rules above.) Only
			// a store in a region no Close reaches, the happy path of a
			// close-on-error function, keeps the mapping alive
			// legitimately.
			laterPlainClose := false
			for _, g := range gates {
				if g.pos > n.Pos() {
					laterPlainClose = true
					break
				}
			}
			if !anyDeferred && !laterPlainClose {
				return
			}
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				switch {
				case len(n.Rhs) == 1:
					rhs = n.Rhs[0]
				case i < len(n.Rhs):
					rhs = n.Rhs[i]
				default:
					continue
				}
				if !isAlias(sc.exprTaint(rhs)) || !canHoldAlias(typeOf(info, rhs)) {
					continue
				}
				if escapingStore(p, info, sc, lhs) {
					p.Reportf(lhs.Pos(),
						"mapped graph view stored outside the function that Closes the mapping")
				}
			}
		}
	})
}

// escapingStore reports whether assigning to lhs moves a value beyond
// the current function: a package-level variable, or a field/element
// reachable through a parameter.
func escapingStore(p *Pass, info *types.Info, sc *funcScan, lhs ast.Expr) bool {
	id := rootIdent(lhs)
	if id == nil {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		return false
	}
	if obj.Parent() == p.Pkg.Scope() {
		return true // package-level variable
	}
	if _, isParam := sc.params[obj]; isParam {
		if _, direct := ast.Unparen(lhs).(*ast.Ident); !direct {
			return true // store through a parameter's field or element
		}
	}
	return false
}

// capturesAlias reports whether a function literal's body references any
// alias of the mapping.
func capturesAlias(info *types.Info, lit *ast.FuncLit, sc *funcScan, isAlias func(taint) bool) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := info.Uses[id]; obj != nil && isAlias(sc.st[obj]) && canHoldAlias(obj.Type()) {
			found = true
		}
		return true
	})
	return found
}
