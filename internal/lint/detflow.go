package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Detflow is the interprocedural nondeterminism check: a forward taint
// analysis from nondeterminism sources (map-iteration order, the global
// math/rand source, wall-clock time, crypto randomness, goroutine and
// process identity, pointer formatting) to the artifacts the paper's
// reproducibility claims rest on (solution payload fields, solution
// digests, `.scsr` writes). Where detrange and detrand flag the source
// *patterns* inside one function, detflow follows the *values*: a helper
// that returns time.Now().UnixNano() taints every caller that stores the
// result into a solution, across any number of hops and packages.
//
// Escape hatches: `//lint:allow detflow` on the sink line,
// `//lint:commutative` on a map range whose consumption commutes, and
// `//lint:deterministic` on a function declaration to assert its return
// value is deterministic despite what the analysis concludes.
var Detflow = &Analyzer{
	Name: "detflow",
	Doc:  "taint analysis: no nondeterministic value may reach a solution field, digest, or binary graph payload",
	Run:  runDetflow,
}

// detflowFieldSinks are the protected write targets: the fields whose
// bytes end up in solution payloads, digests, and /solve responses.
var detflowFieldSinks = []struct {
	pkgPath, typ, field, desc string
}{
	{"repro/internal/core", "Result", "Matching", "core.Result.Matching (solution payload)"},
	{"repro/internal/core", "Result", "Coloring", "core.Result.Coloring (solution payload)"},
	{"repro/internal/core", "Result", "IndepSet", "core.Result.IndepSet (solution payload)"},
	{"repro/internal/matching", "Matching", "Mate", "matching.Matching.Mate (solution payload)"},
	{"repro/internal/coloring", "Coloring", "Color", "coloring.Coloring.Color (solution payload)"},
	{"repro/internal/mis", "IndepSet", "In", "mis.IndepSet.In (solution payload)"},
	{"repro/internal/serve", "solutionInfo", "Digest", "serve solutionInfo.Digest (/solve response)"},
	{"repro/internal/serve", "solutionInfo", "Assignment", "serve solutionInfo.Assignment (/solve response)"},
}

var detflowConfig = taintConfig{
	name:         "detflow",
	mapRange:     true,
	callSource:   detflowCallSource,
	convSource:   detflowConvSource,
	sinkField:    detflowSinkField,
	sinkLitField: detflowSinkLitField,
	sinkCall:     detflowSinkCall,
}

func runDetflow(p *Pass) error {
	prog := p.Prog
	if prog == nil {
		prog = NewProgram([]*Package{{
			Path:  p.Pkg.Path(),
			Fset:  p.Fset,
			Files: p.Files,
			Types: p.Pkg,
			Info:  p.Info,
		}})
	}
	taintEngineFor(prog, detflowConfig).report(p)
	return nil
}

// detflowCallSource classifies intrinsically nondeterministic calls.
// value=true means run-to-run nondeterminism (unsanitizable); value=false
// means ordering nondeterminism (sanitized by sorting).
func detflowCallSource(p *Package, call *ast.CallExpr) (desc string, value, ok bool) {
	pkg, name, isPkgFn := calleePkgFunc(p.Info, call)
	if !isPkgFn {
		return "", false, false
	}
	switch {
	case randPkgs[pkg] && !randConstructors[name]:
		return "global math/rand (" + name + ")", true, true
	case pkg == "time" && (name == "Now" || name == "Since"):
		return "wall-clock time (time." + name + ")", true, true
	case pkg == "crypto/rand":
		return "crypto/rand." + name, true, true
	case pkg == "runtime" && (name == "NumGoroutine" || name == "Stack"):
		return "goroutine state (runtime." + name + ")", true, true
	case pkg == "os" && (name == "Getpid" || name == "Getppid"):
		return "process identity (os." + name + ")", true, true
	case pkg == "maps" && (name == "Keys" || name == "Values"):
		return "map iteration order (maps." + name + ")", false, true
	case pkg == "fmt" && strings.HasPrefix(name, "Sprint") && formatsPointer(call):
		return "pointer formatting (fmt." + name + " %p)", true, true
	}
	return "", false, false
}

// formatsPointer reports whether a fmt call's literal format string
// contains a %p verb (pointer addresses differ run to run).
func formatsPointer(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	return ok && strings.Contains(lit.Value, "%p")
}

// detflowConvSource flags unsafe.Pointer -> uintptr conversions: the
// numeric address of an object is ASLR-randomized between runs.
func detflowConvSource(_ *Package, _ *ast.CallExpr, from, to types.Type) (string, bool) {
	fb, okF := from.Underlying().(*types.Basic)
	tb, okT := to.Underlying().(*types.Basic)
	if okF && okT && fb.Kind() == types.UnsafePointer && tb.Kind() == types.Uintptr {
		return "pointer address (uintptr conversion)", true
	}
	return "", false
}

// detflowSinkField matches writes to the protected solution fields.
func detflowSinkField(p *Package, sel *ast.SelectorExpr) (string, bool) {
	selection, ok := p.Info.Selections[sel]
	if !ok {
		return "", false
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok || !field.IsField() {
		return "", false
	}
	return detflowSinkLitField(p, field, selection.Recv())
}

// detflowSinkLitField is the composite-literal form: the same protected
// fields, matched by field object and owner type.
func detflowSinkLitField(_ *Package, field *types.Var, owner types.Type) (string, bool) {
	for _, s := range detflowFieldSinks {
		if field.Name() == s.field && namedFrom(owner, s.pkgPath, s.typ) {
			return s.desc, true
		}
	}
	return "", false
}

// detflowSinkCall marks the binary graph writers as sinks: bytes written
// into a .scsr payload must be deterministic for fingerprints to be
// stable.
func detflowSinkCall(fn *types.Func) (string, bool) {
	if fn.Pkg() == nil || !isInternalPkg(fn.Pkg().Path(), "graph") {
		return "", false
	}
	switch fn.Name() {
	case "WriteBinary", "WriteBinaryFile":
		return "graph." + fn.Name() + " (.scsr payload)", true
	}
	return "", false
}
