package lint

// The whole-program view behind symlint v2's interprocedural analyzers.
// The v1 framework handed each analyzer one package at a time; detflow,
// mmaplife and atomicmix need to see across function and package
// boundaries — a nondeterministic value laundered through a helper, a
// mapped slice returned by a wrapper, a field CAS'd in one package and
// read plainly in another. Program indexes every function declaration in
// the load and resolves static call edges over go/types, so those
// analyzers can look up the callee's declaration (and its cached
// dataflow summary, see taint.go) from any call site.

import (
	"go/ast"
	"go/types"
)

// FuncInfo ties one declared function to its AST body and the package it
// was type-checked in.
type FuncInfo struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
}

// Program is the full set of packages under analysis plus the
// cross-package function index the interprocedural analyzers share.
// Analyzer results derived from the whole program (taint summaries,
// atomic-access facts) are memoized in cache under an analyzer-chosen
// key; Run is single-goroutine, so no locking is needed.
type Program struct {
	Pkgs []*Package

	decls   []*FuncInfo          // every function declaration, in load order
	declIdx map[string]*FuncInfo // keyed by funcKey
	cache   map[string]any
}

// NewProgram indexes the packages into a Program. The declaration order
// is deterministic: packages in load order, files in parse order,
// declarations in source order — every fixpoint below iterates in this
// order so findings and summaries never depend on map iteration.
func NewProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:    pkgs,
		declIdx: map[string]*FuncInfo{},
		cache:   map[string]any{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Fn: fn, Decl: fd, Pkg: pkg}
				prog.decls = append(prog.decls, fi)
				prog.declIdx[funcKey(fn)] = fi
			}
		}
	}
	return prog
}

// funcKey names a function uniquely across the program. types.Func
// pointers are not usable as keys here: a package type-checked from
// source and the same package materialized from export data (as an
// import of another package under analysis) yield distinct objects for
// the same function, and the interprocedural analyzers must treat them
// as one.
func funcKey(fn *types.Func) string {
	return fn.Origin().FullName()
}

// FuncOf returns the program's declaration of fn, or nil when fn has no
// body in the load (stdlib, interface method, export-data-only).
func (prog *Program) FuncOf(fn *types.Func) *FuncInfo {
	if fn == nil {
		return nil
	}
	return prog.declIdx[funcKey(fn)]
}

// staticCallee resolves the function a call statically invokes: a
// package-level function (possibly qualified), a method on a concrete
// receiver, or a generic instantiation (resolved to its origin).
// Calls through interfaces, function values and closures return nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn.Origin()
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			if sel, isSel := info.Selections[fun]; isSel {
				if m, isFn := sel.Obj().(*types.Func); isFn {
					return m.Origin()
				}
				return nil
			}
			return fn.Origin() // package-qualified function
		}
	case *ast.IndexExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			if fn, isFn := info.Uses[id].(*types.Func); isFn {
				return fn.Origin() // explicit generic instantiation f[T](...)
			}
		}
	}
	return nil
}

// isConversion reports whether a CallExpr node is actually a type
// conversion T(x).
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// paramObjects returns the function's dataflow parameters in summary
// order: the receiver (for methods) first, then the declared parameters.
// Summaries index parameters by this order.
func paramObjects(info *types.Info, decl *ast.FuncDecl) []types.Object {
	var objs []types.Object
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					objs = append(objs, obj)
				}
			}
		}
	}
	collect(decl.Recv)
	collect(decl.Type.Params)
	return objs
}

// argForParam maps a summary parameter index back to the argument
// expression at a call site: index 0 is the receiver for method calls
// (the selector's operand), later indexes the positional arguments.
// Returns nil when the shape doesn't line up (variadic overflow,
// method-value calls).
func argForParam(call *ast.CallExpr, isMethod bool, idx int) ast.Expr {
	if isMethod {
		if idx == 0 {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				return sel.X
			}
			return nil
		}
		idx--
	}
	if idx < len(call.Args) {
		return call.Args[idx]
	}
	return nil
}

// callIsMethod reports whether the resolved callee of call is invoked as
// a method (receiver on the selector).
func callIsMethod(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	_, isSel := info.Selections[sel]
	return isSel
}
