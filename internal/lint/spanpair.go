package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Spanpair checks that every span opened with trace.Begin / trace.Beginf
// is closed: the result must not be discarded, and a span bound to a
// local variable must have End called on it somewhere in the enclosing
// function (typically `defer sp.End()`). A span that escapes the
// function — returned, passed as an argument, stored — is assumed closed
// by its new owner. An unclosed span wedges the tracer's current-span
// stack, attributing every later phase to the wrong parent.
var Spanpair = &Analyzer{
	Name: "spanpair",
	Doc:  "every trace.Begin/Beginf result must be ended (defer sp.End()) or escape",
	Run:  runSpanpair,
}

func isTraceBegin(info *types.Info, call *ast.CallExpr) (string, bool) {
	pkg, name, ok := calleePkgFunc(info, call)
	if !ok || !isInternalPkg(pkg, "trace") {
		return "", false
	}
	if name == "Begin" || name == "Beginf" {
		return name, true
	}
	return "", false
}

// spanBinding is one `sp := trace.Begin(...)` (or `=`, or `var sp = ...`)
// inside a function, keyed for the later End/escape scan.
type spanBinding struct {
	obj  types.Object
	pos  token.Pos
	name string // Begin or Beginf, for the message
}

func runSpanpair(p *Pass) error {
	// bindings groups span-bound variables by enclosing function literal
	// or declaration, so each function body is scanned once.
	bindings := map[ast.Node][]spanBinding{}
	var funcs []ast.Node // deterministic iteration order over bindings

	for _, f := range p.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			name, ok := isTraceBegin(p.Info, call)
			if !ok || len(stack) == 0 {
				return
			}
			parent := stack[len(stack)-1]
			switch parent := parent.(type) {
			case *ast.ExprStmt:
				p.Reportf(call.Pos(),
					"result of trace.%s discarded: the span can never be ended; bind it and defer End", name)
			case *ast.AssignStmt:
				ident := assignTarget(parent, call)
				if ident == nil {
					return // multi-value or complex LHS: treat as escape
				}
				if ident.Name == "_" {
					p.Reportf(call.Pos(),
						"result of trace.%s discarded (assigned to _): the span can never be ended", name)
					return
				}
				obj := p.Info.Defs[ident]
				if obj == nil {
					obj = p.Info.Uses[ident]
				}
				if obj == nil {
					return
				}
				if fn := enclosingFunc(stack); fn != nil {
					if bindings[fn] == nil {
						funcs = append(funcs, fn)
					}
					bindings[fn] = append(bindings[fn], spanBinding{obj, call.Pos(), name})
				}
			case *ast.ValueSpec:
				if len(parent.Names) != 1 {
					return
				}
				ident := parent.Names[0]
				if ident.Name == "_" {
					p.Reportf(call.Pos(),
						"result of trace.%s discarded (assigned to _): the span can never be ended", name)
					return
				}
				obj := p.Info.Defs[ident]
				if obj == nil {
					return
				}
				if fn := enclosingFunc(stack); fn != nil {
					if bindings[fn] == nil {
						funcs = append(funcs, fn)
					}
					bindings[fn] = append(bindings[fn], spanBinding{obj, call.Pos(), name})
				}
			default:
				// Argument, return value, struct field, map value, ...:
				// the span escapes and its new owner is responsible.
			}
		})
	}

	for _, fn := range funcs {
		ended, escaped := scanSpanUses(p, fn, bindings[fn])
		reported := map[types.Object]bool{}
		for _, b := range bindings[fn] {
			if ended[b.obj] || escaped[b.obj] || reported[b.obj] {
				continue
			}
			reported[b.obj] = true
			p.Reportf(b.pos,
				"trace span from trace.%s is never ended in this function: call End on every path (typically `defer sp.End()`)", b.name)
		}
	}
	return nil
}

// assignTarget returns the identifier on the LHS matching call on the
// RHS, or nil when the assignment shape is not a simple 1:1 binding.
func assignTarget(as *ast.AssignStmt, call *ast.CallExpr) *ast.Ident {
	for i, rhs := range as.Rhs {
		if ast.Unparen(rhs) == call {
			if i < len(as.Lhs) {
				if id, ok := as.Lhs[i].(*ast.Ident); ok {
					return id
				}
			}
			return nil
		}
	}
	return nil
}

// enclosingFunc returns the innermost function declaration or literal on
// the stack, or nil at package level.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// scanSpanUses walks one function body classifying every use of the
// span-bound objects: an `obj.End()` call marks it ended; any use other
// than a method call or a reassignment marks it escaped (conservatively
// assumed closed elsewhere).
func scanSpanUses(p *Pass, fn ast.Node, bs []spanBinding) (ended, escaped map[types.Object]bool) {
	ended = map[types.Object]bool{}
	escaped = map[types.Object]bool{}
	tracked := map[types.Object]bool{}
	for _, b := range bs {
		tracked[b.obj] = true
	}
	walkStack(fn, func(n ast.Node, stack []ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok {
			return
		}
		obj := p.Info.Uses[id]
		if obj == nil || !tracked[obj] || len(stack) == 0 {
			return
		}
		switch parent := stack[len(stack)-1].(type) {
		case *ast.SelectorExpr:
			if parent.X != id {
				return // obj is the selected field name, not the receiver
			}
			isCall := false
			if len(stack) >= 2 {
				if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && ast.Unparen(call.Fun) == parent {
					isCall = true
				}
			}
			if !isCall {
				escaped[obj] = true // method value / field taken: escapes
				return
			}
			if parent.Sel.Name == "End" {
				ended[obj] = true
			}
			// Other span methods (Add, Append) are neutral.
		case *ast.AssignStmt:
			for _, lhs := range parent.Lhs {
				if lhs == id {
					return // reassignment target: neutral
				}
			}
			escaped[obj] = true // span copied into another variable
		default:
			escaped[obj] = true // argument, return, composite literal, ...
		}
	})
	return ended, escaped
}
