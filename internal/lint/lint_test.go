package lint

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// Fixture coverage: one positive+suppressed fixture package per analyzer
// (see testdata/src). Each fixture contains violations annotated with
// `// want` expectations, clean idioms that must not be flagged, and a
// //lint:allow (and, for detrange, //lint:commutative) suppression case.

func TestDetrangeFixture(t *testing.T)     { RunFixture(t, Detrange, "detrange") }
func TestDetrandFixture(t *testing.T)      { RunFixture(t, Detrand, "detrand") }
func TestRawgoFixture(t *testing.T)        { RunFixture(t, Rawgo, "rawgo") }
func TestSpanpairFixture(t *testing.T)     { RunFixture(t, Spanpair, "spanpair") }
func TestGatedmetricsFixture(t *testing.T) { RunFixture(t, Gatedmetrics, "gatedmetrics") }
func TestNoslicesortFixture(t *testing.T)  { RunFixture(t, Noslicesort, "noslicesort") }

func TestDetflowFixture(t *testing.T) {
	RunFixturePkgs(t, Detflow, "detflow", "detflow/helper")
}
func TestMmaplifeFixture(t *testing.T)  { RunFixture(t, Mmaplife, "mmaplife") }
func TestAtomicmixFixture(t *testing.T) { RunFixture(t, Atomicmix, "atomicmix") }
func TestAllocgateFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go build; skipped in -short")
	}
	RunFixture(t, Allocgate, "allocgate")
}

// TestAllocgateBaselineFixture: the allocgatebase fixture's only hotpath
// allocation is grandfathered in its committed allocgate.baseline.json,
// so the analyzer must stay silent (the fixture has no want comments).
func TestAllocgateBaselineFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go build; skipped in -short")
	}
	RunFixture(t, Allocgate, "allocgatebase")
}

// TestDetflowCatchesWhatDetrandMisses pins the reason detflow exists: the
// detflowgap fixture stores a laundered rand draw into a solution field.
// Its only nondeterminism lives in another package, so the one-level
// detrand and detrange checks report nothing — while detflow's function
// summaries carry the taint across the package boundary to the sink.
func TestDetflowCatchesWhatDetrandMisses(t *testing.T) {
	pkgs, err := LoadPackages(".", "./testdata/src/detflowgap", "./testdata/src/detflow/helper")
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	prog := NewProgram(pkgs)
	var gap *Package
	for _, pkg := range pkgs {
		if filepath.Base(pkg.Path) == "detflowgap" {
			gap = pkg
		}
	}
	if gap == nil {
		t.Fatal("detflowgap package not loaded")
	}
	for _, a := range []*Analyzer{Detrange, Detrand} {
		diags, err := RunAnalyzerProg(a, gap, prog)
		if err != nil {
			t.Fatal(err)
		}
		if len(diags) != 0 {
			t.Errorf("%s unexpectedly fires on detflowgap: %v (the gap fixture no longer demonstrates the blind spot)", a.Name, diags)
		}
	}
	diags, err := RunAnalyzerProg(Detflow, gap, prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("detflow on detflowgap: got %d findings, want exactly 1: %v", len(diags), diags)
	}

	// Full coverage of the fixture's want comments.
	RunFixturePkgs(t, Detflow, "detflowgap", "detflow/helper")
}

// TestRepoIsLintClean runs the full suite, with scopes, over the whole
// module — the same invocation as `make lint` — and requires zero
// findings. This is the machine-enforced version of the determinism and
// observability invariants: a PR that introduces a map range on a solver
// path, an unseeded rand draw, a bare goroutine, an unclosed span or an
// ungated metric fails `go test ./...` here.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the whole module; skipped in -short")
	}
	pkgs, err := LoadPackages("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	// The gate is whole-module: commands and examples must be in the set,
	// not just internal/ — laundering through a cmd/ helper is exactly
	// what the interprocedural analyzers exist to catch.
	loaded := map[string]bool{}
	for _, p := range pkgs {
		loaded[p.Path] = true
	}
	for _, path := range []string{"repro/cmd/symbreak", "repro/cmd/symlint", "repro/examples/quickstart"} {
		if !loaded[path] {
			t.Errorf("whole-module lint gate does not cover %s", path)
		}
	}
	diags, err := Run(pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestVetUnit exercises the `go vet -vettool` config mode end to end: it
// builds a unitchecker config for the noslicesort fixture (whose analyzer
// is unscoped, so it applies to the fixture's import path) from real
// `go list -export` output and expects the findings exit code.
func TestVetUnit(t *testing.T) {
	out, err := exec.Command("go", "list", "-e", "-export", "-json", "-deps",
		"./testdata/src/noslicesort").Output()
	if err != nil {
		t.Fatalf("go list: %v", err)
	}
	cfg := vetConfig{
		Compiler:    "gc",
		PackageFile: map[string]string{},
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var p listPackage
		if err := dec.Decode(&p); err != nil {
			t.Fatal(err)
		}
		if p.Export != "" {
			cfg.PackageFile[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			cfg.ID = p.ImportPath
			cfg.ImportPath = p.ImportPath
			cfg.Dir = p.Dir
			cfg.GoFiles = p.GoFiles
		}
	}
	dir := t.TempDir()
	cfg.VetxOutput = filepath.Join(dir, "out.vetx")
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}

	if code := VetUnit(cfgPath); code != 2 {
		t.Errorf("VetUnit on violating fixture: exit code %d, want 2 (findings)", code)
	}
	if _, err := os.Stat(cfg.VetxOutput); err != nil {
		t.Errorf("vetx output not written: %v", err)
	}

	// A VetxOnly (dependency) pass must succeed without analysis.
	cfg.VetxOnly = true
	cfg.VetxOutput = filepath.Join(dir, "deponly.vetx")
	data, _ = json.Marshal(cfg)
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}
	if code := VetUnit(cfgPath); code != 0 {
		t.Errorf("VetUnit in VetxOnly mode: exit code %d, want 0", code)
	}
}

func TestAppliesTo(t *testing.T) {
	a := &Analyzer{
		Scope:   []string{"repro/internal/mis", "repro/internal/graph"},
		Exclude: []string{"repro/internal/graph/testutil"},
	}
	cases := []struct {
		path string
		want bool
	}{
		{"repro/internal/mis", true},
		{"repro/internal/graph", true},
		{"repro/internal/graph/testutil", false},
		{"repro/internal/graph/testutil/sub", false},
		{"repro/internal/misfit", false}, // prefix must respect path boundaries
		{"repro/internal/harness", false},
	}
	for _, c := range cases {
		if got := a.AppliesTo(c.path); got != c.want {
			t.Errorf("AppliesTo(%q) = %v, want %v", c.path, got, c.want)
		}
	}
	unscoped := &Analyzer{Exclude: []string{"repro/internal/telemetry"}}
	if !unscoped.AppliesTo("repro/internal/harness") {
		t.Error("empty scope should apply everywhere")
	}
	if unscoped.AppliesTo("repro/internal/telemetry") {
		t.Error("exclude should win over empty scope")
	}
}

func TestAllowDirectiveParsing(t *testing.T) {
	src := `package p

func f() int {
	x := 1 //lint:allow rawgo, detrange
	//lint:allow spanpair
	y := 2
	return x + y
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pass := &Pass{Analyzer: Detrange, Fset: fset, Files: []*ast.File{f}}

	lines := pass.directiveLines("lint:allow", "detrange")
	if !lines[lineKey{"p.go", 4}] || !lines[lineKey{"p.go", 5}] {
		t.Errorf("comma-separated allow list should cover lines 4-5: %v", lines)
	}
	if lines[lineKey{"p.go", 6}] {
		t.Errorf("allow for a different analyzer must not leak to line 6")
	}
	spanLines := pass.directiveLines("lint:allow", "spanpair")
	if !spanLines[lineKey{"p.go", 6}] {
		t.Errorf("preceding-line allow should cover line 6: %v", spanLines)
	}
	if none := pass.directiveLines("lint:allow", "gatedmetrics"); len(none) != 0 {
		t.Errorf("unrelated analyzer should see no allow lines, got %v", none)
	}
}

func TestAnalyzersSuiteShape(t *testing.T) {
	as := Analyzers()
	if len(as) != 10 {
		t.Fatalf("suite has %d analyzers, want 10", len(as))
	}
	seen := map[string]bool{}
	for i, a := range as {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if i > 0 && as[i-1].Name >= a.Name {
			t.Errorf("suite not sorted by name: %q before %q", as[i-1].Name, a.Name)
		}
	}
	for _, name := range []string{
		"detrange", "detrand", "rawgo", "spanpair", "gatedmetrics", "noslicesort",
		"detflow", "mmaplife", "atomicmix", "allocgate",
	} {
		if !seen[name] {
			t.Errorf("suite is missing analyzer %q", name)
		}
	}
}

// TestSortDiagnostics pins the stable output order `-json` promises:
// findings sort by (file, line, analyzer, column).
func TestSortDiagnostics(t *testing.T) {
	mk := func(file string, line, col int, analyzer string) Diagnostic {
		return Diagnostic{
			Analyzer: analyzer,
			Pos:      token.Position{Filename: file, Line: line, Column: col},
		}
	}
	diags := []Diagnostic{
		mk("b.go", 1, 1, "detrand"),
		mk("a.go", 9, 2, "rawgo"),
		mk("a.go", 9, 8, "detflow"),
		mk("a.go", 9, 1, "detflow"),
		mk("a.go", 2, 1, "spanpair"),
	}
	SortDiagnostics(diags)
	want := []Diagnostic{
		mk("a.go", 2, 1, "spanpair"),
		mk("a.go", 9, 1, "detflow"),
		mk("a.go", 9, 8, "detflow"),
		mk("a.go", 9, 2, "rawgo"),
		mk("b.go", 1, 1, "detrand"),
	}
	for i := range want {
		if diags[i].Analyzer != want[i].Analyzer || diags[i].Pos != want[i].Pos {
			t.Fatalf("position %d: got %s:%d:%d [%s], want %s:%d:%d [%s]",
				i, diags[i].Pos.Filename, diags[i].Pos.Line, diags[i].Pos.Column, diags[i].Analyzer,
				want[i].Pos.Filename, want[i].Pos.Line, want[i].Pos.Column, want[i].Analyzer)
		}
	}
}

// TestFrontierEngineInScope pins the frontier engine into the determinism
// scopes: its fan-out paths (EdgeMap push/pull, Subset conversions) must be
// rawgo- and detrange-checked like every other solver package, and must not
// ride on the par exclusion.
func TestFrontierEngineInScope(t *testing.T) {
	Analyzers() // assigns the scopes
	const path = "repro/internal/frontier"
	for _, a := range []*Analyzer{Detrange, Detrand, Rawgo} {
		if !a.AppliesTo(path) {
			t.Errorf("%s does not cover %s", a.Name, path)
		}
	}
	for _, excl := range Rawgo.Exclude {
		if excl == path {
			t.Errorf("rawgo excludes %s", path)
		}
	}
}

// TestServeLayerCovered pins the serving layer into the unscoped
// invariants: every metric publication in internal/serve and the command
// wiring must stay behind telemetry.Enabled() (gatedmetrics), spans must
// pair, and sorts must go through par — none of these packages may ride
// on an exclusion.
func TestServeLayerCovered(t *testing.T) {
	Analyzers() // assigns the scopes
	for _, path := range []string{"repro/internal/serve", "repro/cmd/symbreak", "repro/cmd/symload"} {
		for _, a := range []*Analyzer{Gatedmetrics, Spanpair, Noslicesort} {
			if !a.AppliesTo(path) {
				t.Errorf("%s does not cover %s", a.Name, path)
			}
		}
	}
}
