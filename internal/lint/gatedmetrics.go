package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Gatedmetrics checks that every telemetry publication — a call to a
// metric's Inc/Add/Set/Observe, a vec's With lookup, or a RequestLog's
// Emit — happens under a
// telemetry.Enabled() guard, so disabled runs pay exactly one atomic load
// per instrumented site and benchmark numbers are not polluted by metric
// maintenance. A site is guarded when it is lexically inside an if whose
// condition checks Enabled(), when the enclosing function opens with an
// `if !telemetry.Enabled() { return }` early exit, or when every caller
// (within the package) of the unexported enclosing function is itself
// guarded — the publishCell pattern, where one guarded call site feeds a
// helper that publishes several metrics.
var Gatedmetrics = &Analyzer{
	Name: "gatedmetrics",
	Doc:  "telemetry publications (Inc/Add/Set/Observe/With/Emit) must be gated on telemetry.Enabled()",
	Run:  runGatedmetrics,
}

var publicationMethods = map[string]bool{
	"Inc":     true,
	"Add":     true,
	"Set":     true,
	"Observe": true,
	"With":    true,
	// Emit is the structured request-log publication (RequestLog): a log
	// line per request is telemetry like any counter bump, and must stay
	// free when telemetry is off.
	"Emit": true,
}

func runGatedmetrics(p *Pass) error {
	// pending publications found at unguarded sites, with the unexported
	// function whose body contains them (nil when at package level or in
	// a closure we cannot track callers of).
	type pending struct {
		pos token.Pos
		fn  *types.Func
	}
	var unguarded []pending
	callerCount := map[*types.Func]int{}
	allGuarded := map[*types.Func]bool{}

	for _, f := range p.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			// Track guardedness of calls to package-local functions for
			// the one-level caller propagation rule.
			if fn := localCallee(p, call); fn != nil {
				if _, seen := allGuarded[fn]; !seen {
					allGuarded[fn] = true
				}
				callerCount[fn]++
				if !isGuarded(p, stack, call.Pos()) {
					allGuarded[fn] = false
				}
			}
			pkg, method, ok := calleeMethod(p.Info, call)
			if !ok || !isInternalPkg(pkg, "telemetry") || !publicationMethods[method] {
				return
			}
			encl := enclosingFunc(stack)
			if encl == nil {
				// Package-level var initializer: registration-time child
				// precomputation, not a hot-path publication.
				return
			}
			if isGuarded(p, stack, call.Pos()) {
				return
			}
			var fnObj *types.Func
			if fd, isDecl := encl.(*ast.FuncDecl); isDecl {
				if obj, isFn := p.Info.Defs[fd.Name].(*types.Func); isFn && !obj.Exported() && fd.Recv == nil {
					fnObj = obj
				}
			}
			unguarded = append(unguarded, pending{call.Pos(), fnObj})
		})
	}

	for _, u := range unguarded {
		if u.fn != nil && callerCount[u.fn] > 0 && allGuarded[u.fn] {
			continue // every call site of the enclosing helper is guarded
		}
		p.Reportf(u.pos,
			"telemetry publication must be gated on telemetry.Enabled(): guard the call site, early-return from the enclosing function, or guard every caller of the helper")
	}
	return nil
}

// localCallee resolves call to an unexported package-level function of
// the package under analysis, or nil.
func localCallee(p *Pass, call *ast.CallExpr) *types.Func {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	fn, ok := p.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() != p.Pkg || fn.Exported() {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	return fn
}

// isGuarded reports whether the node at pos with ancestor stack sits
// under a telemetry.Enabled() guard.
func isGuarded(p *Pass, stack []ast.Node, pos token.Pos) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		mention, negated := enabledInCond(p, ifs.Cond)
		if !mention {
			continue
		}
		inBody := ifs.Body.Pos() <= pos && pos < ifs.Body.End()
		if !negated && inBody {
			return true
		}
		if negated && !inBody {
			return true // the else branch of `if !telemetry.Enabled()`
		}
	}
	// Early-return guard: `if !telemetry.Enabled() { return }` earlier in
	// the enclosing function body, at statement level.
	encl := enclosingFunc(stack)
	if encl == nil {
		return false
	}
	var body *ast.BlockStmt
	switch encl := encl.(type) {
	case *ast.FuncDecl:
		body = encl.Body
	case *ast.FuncLit:
		body = encl.Body
	}
	if body == nil {
		return false
	}
	for _, st := range body.List {
		if st.End() > pos {
			break
		}
		if ifs, ok := st.(*ast.IfStmt); ok && isEnabledEarlyReturn(p, ifs) {
			return true
		}
	}
	return false
}

// enabledInCond reports whether cond mentions a telemetry.Enabled() call,
// and whether the whole condition is its negation (`!telemetry.Enabled()`).
func enabledInCond(p *Pass, cond ast.Expr) (mention, negated bool) {
	if un, ok := ast.Unparen(cond).(*ast.UnaryExpr); ok && un.Op == token.NOT {
		if call, ok := ast.Unparen(un.X).(*ast.CallExpr); ok && isEnabledCall(p, call) {
			return true, true
		}
	}
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isEnabledCall(p, call) {
			mention = true
		}
		return !mention
	})
	return mention, false
}

func isEnabledCall(p *Pass, call *ast.CallExpr) bool {
	pkg, name, ok := calleePkgFunc(p.Info, call)
	return ok && isInternalPkg(pkg, "telemetry") && name == "Enabled"
}

// isEnabledEarlyReturn matches `if !telemetry.Enabled() { return }` (the
// body must end by returning).
func isEnabledEarlyReturn(p *Pass, ifs *ast.IfStmt) bool {
	_, negated := enabledInCond(p, ifs.Cond)
	if !negated || len(ifs.Body.List) == 0 {
		return false
	}
	_, isRet := ifs.Body.List[len(ifs.Body.List)-1].(*ast.ReturnStmt)
	return isRet
}
