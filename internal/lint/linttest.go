package lint

import (
	"regexp"
	"strconv"
	"testing"
)

// RunFixture loads the fixture package at testdata/src/<fixture> (with the
// production loader, so fixtures are real, compiling packages), applies
// the analyzer ignoring its scope, and compares findings against
// `// want "regexp"` comments in the fixture: every finding must match a
// want on its line, and every want must be matched. This mirrors
// x/tools/go/analysis/analysistest.
func RunFixture(t testing.TB, a *Analyzer, fixture string) {
	t.Helper()
	RunFixturePkgs(t, a, fixture)
}

// RunFixturePkgs is RunFixture for interprocedural fixtures spanning
// several packages: every named testdata/src path is source-loaded into
// one shared Program (so cross-package summaries resolve), the analyzer
// runs over each, and want comments are honored in all of them.
func RunFixturePkgs(t testing.TB, a *Analyzer, fixtures ...string) {
	t.Helper()
	patterns := make([]string, len(fixtures))
	for i, fx := range fixtures {
		patterns[i] = "./testdata/src/" + fx
	}
	pkgs, err := LoadPackages(".", patterns...)
	if err != nil {
		t.Fatalf("loading fixture %v: %v", fixtures, err)
	}
	if len(pkgs) != len(fixtures) {
		t.Fatalf("fixture %v: got %d packages, want %d", fixtures, len(pkgs), len(fixtures))
	}
	prog := NewProgram(pkgs)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ds, err := RunAnalyzerProg(a, pkg, prog)
		if err != nil {
			t.Fatalf("running %s on fixture %v: %v", a.Name, fixtures, err)
		}
		diags = append(diags, ds...)
	}

	wants := map[lineKey][]*want{}
	for _, pkg := range pkgs {
		parseWants(t, pkg, wants)
	}
	for _, d := range diags {
		key := lineKey{d.Pos.Filename, d.Pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding at %s: %s", d.Pos, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: expected finding matching %q, got none", key.file, key.line, w.re)
			}
		}
	}
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

var (
	wantRe   = regexp.MustCompile(`//\s*want\s+(.*)$`)
	quoteRe  = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
	tickedRe = regexp.MustCompile("`[^`]*`")
)

// parseWants collects // want expectations into wants, keyed by file and
// line. Both `// want "re"` and backquoted `// want ` + "`re`" forms are
// accepted, with several patterns per comment.
func parseWants(t testing.TB, pkg *Package, wants map[lineKey][]*want) {
	t.Helper()
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				var pats []string
				for _, q := range quoteRe.FindAllString(m[1], -1) {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("bad want pattern %s: %v", q, err)
					}
					pats = append(pats, s)
				}
				for _, q := range tickedRe.FindAllString(m[1], -1) {
					pats = append(pats, q[1:len(q)-1])
				}
				if len(pats) == 0 {
					t.Fatalf("want comment with no quoted pattern: %s", c.Text)
				}
				pos := pkg.Fset.Position(c.Pos())
				key := lineKey{pos.Filename, pos.Line}
				for _, p := range pats {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", p, err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
}
