package lint

import (
	"go/ast"
)

// Detrand flags nondeterministic randomness in kernels: calls to the
// stateful process-global math/rand source (rand.Intn, rand.Float64,
// rand.Shuffle, ...), and seeds derived from time.Now. Kernels must draw
// from par.Hash64/par.RNG or a *rand.Rand explicitly constructed from a
// seed that flows in from harness config, so every run — and every point
// of a worker-count sweep — replays bit-identically.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc:  "forbid the global math/rand source and time-derived seeds in kernels",
	Run:  runDetrand,
}

var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// randConstructors build a generator from an explicit seed or source;
// they are the sanctioned way to make a *rand.Rand when the seed comes
// from config (time-derived seeds are still caught separately).
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewZipf":    true,
	"NewChaCha8": true,
}

func runDetrand(p *Pass) error {
	for _, f := range p.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			pkg, name, ok := calleePkgFunc(p.Info, call)
			if !ok {
				return
			}
			if randPkgs[pkg] && !randConstructors[name] {
				p.Reportf(call.Pos(),
					"global math/rand source: %s.%s draws from shared process-wide state; thread a seeded *rand.Rand or par.Hash64 from harness config instead", pkg, name)
			}
			if pkg == "time" && name == "Now" {
				for _, anc := range stack {
					enc, isCall := anc.(*ast.CallExpr)
					if !isCall {
						continue
					}
					if ep, _, eok := calleePkgFunc(p.Info, enc); eok && randPkgs[ep] {
						p.Reportf(call.Pos(),
							"rand seed derived from time.Now: seeds must flow from harness config so runs replay deterministically")
						break
					}
				}
			}
		})
	}
	return nil
}
