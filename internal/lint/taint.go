package lint

// A forward taint engine over the Program: configurable sources, sinks
// and sanitizers, with one dataflow summary cached per function and a
// global fixpoint that propagates summaries across the call graph. The
// engine powers detflow (nondeterminism taint); its summaries are the
// "interprocedural" in symlint v2 — a helper that returns rand.Intn(n)
// taints its callers' values exactly as a direct call would, across
// package boundaries.
//
// The analysis is object-based and flow-insensitive within a function
// (a variable is tainted if any assignment reaching it is tainted,
// iterated to a fixpoint) and context-insensitive across functions
// (one summary per function: which parameters flow to the return value,
// whether the return value is intrinsically tainted, and which
// parameters reach a sink inside the callee). Field writes do not taint
// the containing object — `r.Report.Solve = elapsed` leaves r clean —
// which keeps wall-clock report plumbing from drowning the signal; the
// protected fields themselves are modeled as sinks instead.
//
// Two taint flavors are tracked separately:
//
//   - order taint: values whose *ordering* is nondeterministic (map
//     iteration). Sorting sanitizes it: slices.Sort/SortFunc/
//     SortStableFunc on a value (or slices.Sorted* of it) clears the
//     order flavor, because the canonical pattern "collect map keys,
//     sort, iterate" is exactly how deterministic code consumes maps.
//   - value taint: values that differ between runs (global math/rand,
//     time.Now, crypto/rand, goroutine state, pointer formatting).
//     Nothing sanitizes it short of the //lint:deterministic function
//     annotation, which asserts the function's return is deterministic
//     and forces its summary clean (the reviewed escape hatch).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// taint is one lattice element: which summary parameters (bit i = param
// i, receiver first for methods) and which intrinsic flavors reach a
// value. desc/pos record the provenance of the first intrinsic source
// for the report message.
type taint struct {
	params uint64
	order  bool
	value  bool
	desc   string
	pos    token.Pos
}

func (t taint) tainted() bool { return t.order || t.value }

func (t taint) union(u taint) taint {
	out := taint{
		params: t.params | u.params,
		order:  t.order || u.order,
		value:  t.value || u.value,
		desc:   t.desc,
		pos:    t.pos,
	}
	if out.desc == "" {
		out.desc, out.pos = u.desc, u.pos
	}
	return out
}

// eq compares the summary-relevant part of two taints (provenance is
// display-only and must not keep the fixpoint spinning).
func (t taint) eq(u taint) bool {
	return t.params == u.params && t.order == u.order && t.value == u.value
}

// taintSummary is the cached per-function dataflow summary.
type taintSummary struct {
	ret      taint  // params: which parameters flow to the return; order/value: intrinsic
	sink     uint64 // parameters that reach a sink inside this function
	sinkDesc string // which sink, for the call-site message
	clean    bool   // //lint:deterministic: returns forced clean
}

func (s *taintSummary) eq(o *taintSummary) bool {
	return s.ret.eq(o.ret) && s.sink == o.sink && s.clean == o.clean
}

// taintConfig parameterizes the engine for one analyzer.
type taintConfig struct {
	name string // engine cache key (the analyzer name)

	// callSource classifies a resolved or unresolved call as an
	// intrinsic source; value selects the flavor (true = value taint,
	// false = order taint).
	callSource func(pkg *Package, call *ast.CallExpr) (desc string, value, ok bool)

	// convSource classifies a conversion T(x) as a value source.
	convSource func(pkg *Package, call *ast.CallExpr, from, to types.Type) (desc string, ok bool)

	// mapRange treats ranged-map keys and values as order sources,
	// unless the range line carries //lint:commutative.
	mapRange bool

	// sinkField reports whether writing to the selected field is a sink.
	sinkField func(pkg *Package, sel *ast.SelectorExpr) (desc string, ok bool)

	// sinkLitField reports whether initializing field inside a composite
	// literal of owner is a sink — the `solutionInfo{Digest: ...}`
	// construction form of a sinkField write.
	sinkLitField func(pkg *Package, field *types.Var, owner types.Type) (desc string, ok bool)

	// sinkCall reports whether fn's arguments are sinks.
	sinkCall func(fn *types.Func) (desc string, ok bool)

	// fieldWriteTaints makes a tainted store into x.f taint x itself.
	// detflow leaves this off (a Report timestamp must not condemn the
	// whole Result); the mmaplife alias engine turns it on, because a
	// struct holding a mapped view is itself a way to smuggle the view
	// out.
	fieldWriteTaints bool
}

// taintEngine holds the program-wide summary table for one config.
type taintEngine struct {
	prog *Program
	cfg  taintConfig
	sums map[string]*taintSummary // by funcKey

	commutative   map[*Package]map[lineKey]bool
	deterministic map[*Package]map[lineKey]bool
}

// taintEngineFor builds (or returns the cached) engine for cfg on prog.
// Building runs the global summary fixpoint: every summary is recomputed
// until none changes. The iteration order is the program's deterministic
// declaration order, and the loop terminates because summaries only grow
// over a finite lattice (64 param bits + 2 flavor bits per function).
func taintEngineFor(prog *Program, cfg taintConfig) *taintEngine {
	key := "taint:" + cfg.name
	if e, ok := prog.cache[key].(*taintEngine); ok {
		return e
	}
	e := &taintEngine{
		prog:          prog,
		cfg:           cfg,
		sums:          map[string]*taintSummary{},
		commutative:   map[*Package]map[lineKey]bool{},
		deterministic: map[*Package]map[lineKey]bool{},
	}
	for _, pkg := range prog.Pkgs {
		e.commutative[pkg] = packageDirectiveLines(pkg, "lint:commutative")
		e.deterministic[pkg] = packageDirectiveLines(pkg, "lint:deterministic")
	}
	for iter := 0; iter < 64; iter++ {
		changed := false
		for _, fi := range prog.decls {
			next := e.summarize(fi, nil)
			prev := e.sums[funcKey(fi.Fn)]
			if prev == nil || !prev.eq(next) {
				e.sums[funcKey(fi.Fn)] = next
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	prog.cache[key] = e
	return e
}

// packageDirectiveLines is directiveLines without a Pass: the engine
// needs the commutative/deterministic annotations while summarizing
// packages the current pass is not reporting on.
func packageDirectiveLines(pkg *Package, directive string) map[lineKey]bool {
	p := &Pass{Fset: pkg.Fset, Files: pkg.Files}
	return p.directiveLines(directive, "")
}

// summary returns fn's summary, or nil for functions with no body in the
// program (stdlib, interface methods, export-data-only packages).
func (e *taintEngine) summary(fn *types.Func) *taintSummary {
	if fn == nil {
		return nil
	}
	return e.sums[funcKey(fn)]
}

// report runs the engine's sink checks over every function declared in
// pass's package, reporting each intrinsically tainted value that
// reaches a sink. The summary fixpoint must already be stable.
func (e *taintEngine) report(pass *Pass) {
	for _, fi := range e.prog.decls {
		if fi.Pkg.Path != pass.Pkg.Path() {
			continue
		}
		e.summarize(fi, pass)
	}
}

// funcScan is the per-function analysis state.
type funcScan struct {
	eng    *taintEngine
	fi     *FuncInfo
	params map[types.Object]int
	st     map[types.Object]taint
	pass   *Pass // non-nil in report mode
	sum    *taintSummary
}

// summarize runs the local fixpoint over fi's body and derives its
// summary. With pass non-nil it additionally reports intrinsic taint
// reaching sinks.
func (e *taintEngine) summarize(fi *FuncInfo, pass *Pass) *taintSummary {
	sc := e.scan(fi, pass)
	// Final pass: fold returns into the summary and check sinks (and,
	// in report mode, emit findings).
	sc.walk(true)
	return sc.sum
}

// scan runs the local fixpoint over fi's body and returns the scan with
// its settled object states (no sink checks, no return folding).
func (e *taintEngine) scan(fi *FuncInfo, pass *Pass) *funcScan {
	sc := &funcScan{
		eng:    e,
		fi:     fi,
		params: map[types.Object]int{},
		st:     map[types.Object]taint{},
		pass:   pass,
		sum:    &taintSummary{},
	}
	pos := fi.Pkg.Fset.Position(fi.Decl.Pos())
	if e.deterministic[fi.Pkg][lineKey{pos.Filename, pos.Line}] {
		sc.sum.clean = true
	}
	for i, obj := range paramObjects(fi.Pkg.Info, fi.Decl) {
		if i < 64 {
			sc.params[obj] = i
			sc.st[obj] = taint{params: uint64(1) << i}
		}
	}
	// Local fixpoint: the per-statement updates are order-insensitive,
	// so repeat the walk until the object states stop growing. The cap
	// guards against sanitize/re-taint ping-pong; the final walk
	// (summarize) visits statements in source order, so the canonical
	// "taint, sort, use" sequence still lands clean.
	for iter := 0; iter < 32; iter++ {
		if !sc.walk(false) {
			break
		}
	}
	return sc
}

// walk traverses the function body once. In update mode (final=false) it
// only grows the object states, returning whether anything changed. In
// final mode it also folds returns into the summary and checks sinks.
func (sc *funcScan) walk(final bool) (changed bool) {
	info := sc.fi.Pkg.Info
	results := namedResults(info, sc.fi.Decl)
	walkStack(sc.fi.Decl.Body, func(n ast.Node, stack []ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			changed = sc.assign(n, final) || changed
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if len(vs.Values) == 1 && len(vs.Names) > 1 {
					t := sc.exprTaint(vs.Values[0])
					for _, name := range vs.Names {
						changed = sc.taintObj(info.Defs[name], t) || changed
					}
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						changed = sc.taintObj(info.Defs[name], sc.exprTaint(vs.Values[i])) || changed
					}
				}
			}
		case *ast.RangeStmt:
			changed = sc.rangeStmt(n) || changed
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				sc.sanitizeSort(call)
			}
		case *ast.CallExpr:
			if final {
				sc.checkCallSinks(n)
			}
		case *ast.CompositeLit:
			if final {
				sc.checkCompositeSinks(n)
			}
		case *ast.ReturnStmt:
			// Returns inside closures are the closure's, not this
			// function's; folding them in would make every function
			// that merely *defines* a nondeterministic callback look
			// tainted itself.
			if !final || hasFuncLit(stack) {
				return
			}
			for _, res := range n.Results {
				sc.sum.ret = sc.sum.ret.union(sc.exprTaint(res))
			}
			for _, obj := range results {
				sc.sum.ret = sc.sum.ret.union(sc.st[obj])
			}
		}
	})
	return changed
}

// hasFuncLit reports whether any ancestor on the walk stack is a
// function literal.
func hasFuncLit(stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.FuncLit); ok {
			return true
		}
	}
	return false
}

// namedResults returns the objects of the function's named result
// parameters (assignments to them must reach the return summary).
func namedResults(info *types.Info, decl *ast.FuncDecl) []types.Object {
	if decl.Type.Results == nil {
		return nil
	}
	var objs []types.Object
	for _, field := range decl.Type.Results.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				objs = append(objs, obj)
			}
		}
	}
	return objs
}

// errorType is the universe error interface, for skipping error values.
var errorType = types.Universe.Lookup("error").Type()

// taintObj merges t into obj's state, reporting whether it grew. Error
// values are never tainted: `bg, err := Open(...)` must not smear the
// call's taint onto err, whose only payload is a message.
func (sc *funcScan) taintObj(obj types.Object, t taint) bool {
	if obj == nil || !(t.tainted() || t.params != 0) {
		return false
	}
	if types.Identical(obj.Type(), errorType) {
		return false
	}
	cur, ok := sc.st[obj]
	next := cur.union(t)
	if ok && next.eq(cur) {
		return false
	}
	sc.st[obj] = next
	return true
}

// assign handles one assignment statement, updating local object states
// and (in final mode) checking field-write sinks.
func (sc *funcScan) assign(as *ast.AssignStmt, final bool) (changed bool) {
	// Tuple form: x, y := f().
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		t := sc.exprTaint(as.Rhs[0])
		for _, lhs := range as.Lhs {
			changed = sc.assignOne(lhs, t, final) || changed
		}
		return changed
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		changed = sc.assignOne(lhs, sc.exprTaint(as.Rhs[i]), final) || changed
	}
	return changed
}

// assignOne applies taint t to one assignment target.
func (sc *funcScan) assignOne(lhs ast.Expr, t taint, final bool) bool {
	info := sc.fi.Pkg.Info
	if final {
		sc.checkFieldSink(lhs, t)
	}
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		return sc.taintObj(obj, t)
	}
	if sc.eng.cfg.fieldWriteTaints {
		if id := rootIdent(lhs); id != nil {
			return sc.taintObj(info.Uses[id], t)
		}
	}
	return false
}

// rootIdent unwraps parens, derefs, field selections and indexing down
// to the base identifier of an lvalue, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// rangeStmt taints the key/value bindings of a range statement: ranging
// a tainted collection taints its elements, and ranging a map is itself
// an order source (unless annotated //lint:commutative).
func (sc *funcScan) rangeStmt(rs *ast.RangeStmt) (changed bool) {
	info := sc.fi.Pkg.Info
	t := sc.exprTaint(rs.X)
	isMap := false
	if tv, ok := info.Types[rs.X]; ok && tv.Type != nil {
		_, isMap = tv.Type.Underlying().(*types.Map)
	}
	if isMap && sc.eng.cfg.mapRange {
		pos := sc.fi.Pkg.Fset.Position(rs.Pos())
		if !sc.eng.commutative[sc.fi.Pkg][lineKey{pos.Filename, pos.Line}] {
			t = t.union(taint{
				order: true,
				desc:  "map iteration order at " + shortPos(sc.fi.Pkg, rs.Pos()),
				pos:   rs.Pos(),
			})
		}
	}
	bind := func(e ast.Expr, bt taint) {
		id, isIdent := ast.Unparen(e).(*ast.Ident)
		if !isIdent {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		changed = sc.taintObj(obj, bt) || changed
	}
	if rs.Key != nil {
		kt := t
		if !isMap {
			kt = taint{} // slice/array/string/int range: deterministic index
		}
		bind(rs.Key, kt)
	}
	if rs.Value != nil {
		bind(rs.Value, t)
	}
	return changed
}

// sanitizeSort clears order taint from the argument of a statement-level
// slices.Sort/SortFunc/SortStableFunc call.
func (sc *funcScan) sanitizeSort(call *ast.CallExpr) {
	info := sc.fi.Pkg.Info
	pkg, name, ok := calleePkgFunc(info, call)
	if !ok || pkg != "slices" || len(call.Args) == 0 {
		return
	}
	switch name {
	case "Sort", "SortFunc", "SortStableFunc":
	default:
		return
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj := info.Uses[id]
	if obj == nil {
		return
	}
	if t, tracked := sc.st[obj]; tracked && t.order {
		t.order = false
		sc.st[obj] = t
	}
}

// exprTaint computes the taint of one expression from the current state.
func (sc *funcScan) exprTaint(e ast.Expr) taint {
	info := sc.fi.Pkg.Info
	switch e := e.(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return taint{}
		}
		return sc.st[obj]
	case *ast.ParenExpr:
		return sc.exprTaint(e.X)
	case *ast.CallExpr:
		return sc.callTaint(e)
	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
				return taint{} // qualified package-level reference
			}
		}
		return sc.exprTaint(e.X)
	case *ast.IndexExpr:
		// Either a generic instantiation (the function value: clean) or
		// an element selection, where a tainted index selects a
		// nondeterministic element.
		if tv, ok := info.Types[e.X]; ok && tv.Type != nil {
			if _, isSig := tv.Type.Underlying().(*types.Signature); isSig {
				return taint{}
			}
		}
		return sc.exprTaint(e.X).union(sc.exprTaint(e.Index))
	case *ast.BinaryExpr:
		return sc.exprTaint(e.X).union(sc.exprTaint(e.Y))
	case *ast.UnaryExpr:
		return sc.exprTaint(e.X)
	case *ast.StarExpr:
		return sc.exprTaint(e.X)
	case *ast.SliceExpr:
		return sc.exprTaint(e.X)
	case *ast.TypeAssertExpr:
		return sc.exprTaint(e.X)
	case *ast.CompositeLit:
		var t taint
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				t = t.union(sc.exprTaint(kv.Value))
				continue
			}
			t = t.union(sc.exprTaint(el))
		}
		return t
	default:
		return taint{}
	}
}

// callTaint computes the taint of a call's result: intrinsic sources,
// conversions, builtins, sorting sanitizers, summarized program
// functions, and conservative argument propagation for everything
// external.
func (sc *funcScan) callTaint(call *ast.CallExpr) taint {
	info := sc.fi.Pkg.Info
	cfg := sc.eng.cfg

	if isConversion(info, call) && len(call.Args) == 1 {
		t := sc.exprTaint(call.Args[0])
		if cfg.convSource != nil {
			from := info.Types[call.Args[0]].Type
			to := info.Types[call.Fun].Type
			if desc, ok := cfg.convSource(sc.fi.Pkg, call, from, to); ok {
				t = t.union(taint{value: true, desc: desc + " at " + shortPos(sc.fi.Pkg, call.Pos()), pos: call.Pos()})
			}
		}
		return t
	}

	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "len", "cap", "new", "make":
				return taint{}
			default: // append, copy, min, max, ...
				return sc.argsTaint(call)
			}
		}
	}

	// slices.Sorted/SortedFunc/SortedStableFunc return a sorted copy:
	// order taint is sanitized, value taint passes through.
	if pkg, name, ok := calleePkgFunc(info, call); ok && pkg == "slices" {
		switch name {
		case "Sorted", "SortedFunc", "SortedStableFunc":
			t := sc.argsTaint(call)
			t.order = false
			return t
		}
	}

	if cfg.callSource != nil {
		if desc, value, ok := cfg.callSource(sc.fi.Pkg, call); ok {
			return sc.argsTaint(call).union(taint{
				order: !value,
				value: value,
				desc:  desc + " at " + shortPos(sc.fi.Pkg, call.Pos()),
				pos:   call.Pos(),
			})
		}
	}

	callee := staticCallee(info, call)
	if sum := sc.eng.summary(callee); sum != nil {
		if sum.clean {
			return taint{}
		}
		t := taint{order: sum.ret.order, value: sum.ret.value}
		if t.tainted() {
			t.desc = sum.ret.desc + " via " + callee.Name() + "()"
			t.pos = call.Pos()
		}
		isMethod := callIsMethod(info, call)
		for i := 0; i < 64; i++ {
			if sum.ret.params&(uint64(1)<<i) == 0 {
				continue
			}
			if arg := argForParam(call, isMethod, i); arg != nil {
				t = t.union(sc.exprTaint(arg))
			}
		}
		return t
	}

	// External or dynamic call: conservatively propagate receiver and
	// argument taint into the result.
	t := sc.argsTaint(call)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isSel := info.Selections[sel]; isSel {
			t = t.union(sc.exprTaint(sel.X))
		}
	}
	return t
}

// argsTaint unions the taint of every argument of call.
func (sc *funcScan) argsTaint(call *ast.CallExpr) taint {
	var t taint
	for _, a := range call.Args {
		t = t.union(sc.exprTaint(a))
	}
	return t
}

// checkFieldSink reports (and records in the summary) taint written to a
// protected field. The target is unwrapped through indexing and derefs,
// so `res.Matching.Mate[i] = v` anchors on the Mate selector.
func (sc *funcScan) checkFieldSink(lhs ast.Expr, t taint) {
	if sc.eng.cfg.sinkField == nil || !(t.tainted() || t.params != 0) {
		return
	}
	for {
		switch l := ast.Unparen(lhs).(type) {
		case *ast.IndexExpr:
			lhs = l.X
			continue
		case *ast.StarExpr:
			lhs = l.X
			continue
		}
		break
	}
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	desc, ok := sc.eng.cfg.sinkField(sc.fi.Pkg, sel)
	if !ok {
		return
	}
	sc.sum.sink |= t.params
	if sc.sum.sinkDesc == "" {
		sc.sum.sinkDesc = desc
	}
	if sc.pass != nil && t.tainted() {
		sc.pass.Reportf(sel.Pos(),
			"nondeterministic value flows into %s: %s", desc, t.desc)
	}
}

// checkCompositeSinks reports taint initialized into protected fields
// through composite literals, keyed (`T{Field: v}`) or positional
// (`T{v}`) — the construction-time form of a field-sink write.
func (sc *funcScan) checkCompositeSinks(lit *ast.CompositeLit) {
	cfg := sc.eng.cfg
	if cfg.sinkLitField == nil {
		return
	}
	info := sc.fi.Pkg.Info
	tv, ok := info.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	st, _ := tv.Type.Underlying().(*types.Struct)
	sink := func(field *types.Var, val ast.Expr) {
		desc, isSink := cfg.sinkLitField(sc.fi.Pkg, field, tv.Type)
		if !isSink {
			return
		}
		t := sc.exprTaint(val)
		sc.sum.sink |= t.params
		if sc.sum.sinkDesc == "" {
			sc.sum.sinkDesc = desc
		}
		if sc.pass != nil && t.tainted() {
			sc.pass.Reportf(val.Pos(),
				"nondeterministic value flows into %s: %s", desc, t.desc)
		}
	}
	for i, el := range lit.Elts {
		if kv, isKV := el.(*ast.KeyValueExpr); isKV {
			key, isIdent := kv.Key.(*ast.Ident)
			if !isIdent {
				continue
			}
			if field, isVar := info.Uses[key].(*types.Var); isVar && field.IsField() {
				sink(field, kv.Value)
			}
			continue
		}
		if st != nil && i < st.NumFields() {
			sink(st.Field(i), el)
		}
	}
}

// checkCallSinks reports taint passed to sink functions — directly
// configured sinks and program functions whose summary says a parameter
// reaches a sink.
func (sc *funcScan) checkCallSinks(call *ast.CallExpr) {
	info := sc.fi.Pkg.Info
	cfg := sc.eng.cfg
	callee := staticCallee(info, call)
	if callee == nil {
		return
	}

	if cfg.sinkCall != nil {
		if desc, ok := cfg.sinkCall(callee); ok {
			for _, a := range call.Args {
				t := sc.exprTaint(a)
				sc.sum.sink |= t.params
				if sc.sum.sinkDesc == "" {
					sc.sum.sinkDesc = desc
				}
				if sc.pass != nil && t.tainted() {
					sc.pass.Reportf(a.Pos(),
						"nondeterministic value flows into %s: %s", desc, t.desc)
				}
			}
			return
		}
	}

	sum := sc.eng.summary(callee)
	if sum == nil || sum.sink == 0 {
		return
	}
	isMethod := callIsMethod(info, call)
	for i := 0; i < 64; i++ {
		if sum.sink&(uint64(1)<<i) == 0 {
			continue
		}
		arg := argForParam(call, isMethod, i)
		if arg == nil {
			continue
		}
		t := sc.exprTaint(arg)
		sc.sum.sink |= t.params
		if sc.sum.sinkDesc == "" {
			sc.sum.sinkDesc = sum.sinkDesc
		}
		if sc.pass != nil && t.tainted() {
			sc.pass.Reportf(arg.Pos(),
				"nondeterministic value flows into %s (via call to %s): %s",
				sum.sinkDesc, callee.Name(), t.desc)
		}
	}
}

// shortPos renders a position as base-filename:line for provenance
// descriptions.
func shortPos(pkg *Package, pos token.Pos) string {
	p := pkg.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
