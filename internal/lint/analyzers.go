package lint

import (
	"cmp"
	"slices"
)

// Import-path scopes. The solver scope is the result-producing core the
// determinism sweep exercises; the kernel scope adds the remaining
// algorithmic packages (sequential baselines, generators, the BFS/
// biconnectivity/bipartite kernels and the multilevel scheme) that must
// be equally schedule-independent.
var (
	solverScope = prefixed(
		"decomp", "matching", "coloring", "mis", "bsp", "graph", "core",
		"frontier",
	)
	kernelScope = prefixed(
		"decomp", "matching", "coloring", "mis", "bsp", "graph", "core",
		"multilevel", "seq", "gen", "bfs", "biconn", "bipartite",
		"frontier",
	)
)

func prefixed(pkgs ...string) []string {
	out := make([]string, len(pkgs))
	for i, p := range pkgs {
		out[i] = "repro/internal/" + p
	}
	return out
}

// Analyzers returns the full suite in reporting order. Scopes are set
// here, in one place, rather than on each analyzer's definition: the
// invariant is a property of the repository layout, not of the check.
func Analyzers() []*Analyzer {
	Detrange.Scope = solverScope
	Detrand.Scope = kernelScope
	Rawgo.Scope = kernelScope
	Rawgo.Exclude = []string{"repro/internal/par"}
	Spanpair.Exclude = []string{"repro/internal/trace"}
	Gatedmetrics.Exclude = []string{"repro/internal/telemetry"}
	return []*Analyzer{Detrange, Detrand, Rawgo, Spanpair, Gatedmetrics, Noslicesort}
}

// Run applies every in-scope analyzer to every package and returns the
// findings sorted by position then analyzer name.
func Run(pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range Analyzers() {
			if !a.AppliesTo(pkg.Path) {
				continue
			}
			ds, err := RunAnalyzer(a, pkg)
			if err != nil {
				return nil, err
			}
			diags = append(diags, ds...)
		}
	}
	slices.SortFunc(diags, func(a, b Diagnostic) int {
		if c := cmp.Compare(a.Pos.Filename, b.Pos.Filename); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Pos.Line, b.Pos.Line); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Pos.Column, b.Pos.Column); c != 0 {
			return c
		}
		return cmp.Compare(a.Analyzer, b.Analyzer)
	})
	return diags, nil
}
