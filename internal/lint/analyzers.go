package lint

import (
	"cmp"
	"slices"
)

// Import-path scopes. The solver scope is the result-producing core the
// determinism sweep exercises; the kernel scope adds the remaining
// algorithmic packages (sequential baselines, generators, the BFS/
// biconnectivity/bipartite kernels and the multilevel scheme) that must
// be equally schedule-independent.
var (
	solverScope = prefixed(
		"decomp", "matching", "coloring", "mis", "bsp", "graph", "core",
		"frontier",
	)
	kernelScope = prefixed(
		"decomp", "matching", "coloring", "mis", "bsp", "graph", "core",
		"multilevel", "seq", "gen", "bfs", "biconn", "bipartite",
		"frontier",
	)
)

func prefixed(pkgs ...string) []string {
	out := make([]string, len(pkgs))
	for i, p := range pkgs {
		out[i] = "repro/internal/" + p
	}
	return out
}

// Analyzers returns the full suite sorted by analyzer name. Scopes are
// set here, in one place, rather than on each analyzer's definition: the
// invariant is a property of the repository layout, not of the check.
//
// The v2 interprocedural analyzers (detflow, mmaplife, atomicmix) are
// unscoped: their sinks and facts are specific enough that scope would
// only hide laundering paths through cmd/ and examples/ packages.
// mmaplife excludes the graph package itself (the mapping's
// implementation must touch it) and allocgate excludes nothing — it
// self-gates on //lint:hotpath annotations.
func Analyzers() []*Analyzer {
	Detrange.Scope = solverScope
	Detrand.Scope = kernelScope
	Rawgo.Scope = kernelScope
	Rawgo.Exclude = []string{"repro/internal/par"}
	Spanpair.Exclude = []string{"repro/internal/trace"}
	Gatedmetrics.Exclude = []string{"repro/internal/telemetry"}
	Mmaplife.Exclude = []string{"repro/internal/graph"}
	all := []*Analyzer{
		Detrange, Detrand, Rawgo, Spanpair, Gatedmetrics, Noslicesort,
		Detflow, Mmaplife, Atomicmix, Allocgate,
	}
	slices.SortFunc(all, func(a, b *Analyzer) int {
		return cmp.Compare(a.Name, b.Name)
	})
	return all
}

// Run applies every in-scope analyzer to every package, sharing one
// whole-program view across passes, and returns the findings sorted by
// (file, line, analyzer, column) — the stable order `-json` pins.
func Run(pkgs []*Package) ([]Diagnostic, error) {
	prog := NewProgram(pkgs)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range Analyzers() {
			if !a.AppliesTo(pkg.Path) {
				continue
			}
			ds, err := RunAnalyzerProg(a, pkg, prog)
			if err != nil {
				return nil, err
			}
			diags = append(diags, ds...)
		}
	}
	SortDiagnostics(diags)
	return diags, nil
}

// SortDiagnostics orders findings by (file, line, analyzer, column):
// position first so findings read in source order, analyzer before
// column so the order is reproducible even when two analyzers anchor
// differently on the same construct.
func SortDiagnostics(diags []Diagnostic) {
	slices.SortFunc(diags, func(a, b Diagnostic) int {
		if c := cmp.Compare(a.Pos.Filename, b.Pos.Filename); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Pos.Line, b.Pos.Line); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Analyzer, b.Analyzer); c != 0 {
			return c
		}
		return cmp.Compare(a.Pos.Column, b.Pos.Column)
	})
}
