// Package detflowgap demonstrates the blind spot of the one-level
// checks: the nondeterminism lives in another package, so detrange and
// detrand report nothing here, while detflow's summaries carry the taint
// from helper.Draw's global rand source into the sink.
package detflowgap

import (
	"repro/internal/coloring"
	"repro/internal/lint/testdata/src/detflow/helper"
)

// Assign colors from a laundered rand draw. No rand import, no map
// range, nothing for the intraprocedural analyzers to see.
func Assign(c *coloring.Coloring) {
	c.Color[0] = helper.Draw(4) // want `nondeterministic value flows into coloring.Coloring.Color`
}
