// Package spanpair exercises the spanpair analyzer: every span opened by
// trace.Begin/Beginf must be ended in the opening function or escape to a
// new owner.
package spanpair

import "repro/internal/trace"

func discarded() {
	trace.Begin("phase") // want `discarded`
}

func discardedBeginf(n int) {
	trace.Beginf("phase %d", n) // want `discarded`
}

func blankAssigned() {
	_ = trace.Begin("phase") // want `discarded`
}

func leaked(n int) int {
	sp := trace.Begin("phase") // want `never ended`
	sp.Add("n", int64(n))
	return n
}

func deferred() {
	sp := trace.Begin("phase")
	defer sp.End()
}

func plainEnd() {
	sp := trace.Begin("phase")
	sp.Add("work", 1)
	sp.End()
}

func sequentialReuse() {
	sp := trace.Begin("first")
	sp.End()
	sp = trace.Begin("second")
	sp.End()
}

func returned() *trace.Span {
	return trace.Begin("phase") // escapes: the caller owns it
}

func passedAlong() {
	sp := trace.Begin("phase")
	finish(sp) // escapes: finish owns it
}

func finish(sp *trace.Span) { sp.End() }

func endedInClosure() {
	sp := trace.Begin("phase")
	defer func() { sp.End() }()
}

func allowed() {
	trace.Begin("phase") //lint:allow spanpair
}
