// Package allocgatebase pairs a hotpath allocation with a committed
// allocgate.baseline.json grandfathering it: the analyzer must report
// nothing here. Regenerate the baseline with
// `symlint -write-alloc-baseline ./testdata/src/allocgatebase` after a
// toolchain bump.
package allocgatebase

//lint:hotpath
func kernel(n int) []int {
	return make([]int, n) // grandfathered in allocgate.baseline.json
}
