// Package gatedmetrics exercises the gatedmetrics analyzer: telemetry
// publications must sit under a telemetry.Enabled() guard — at the call
// site, via an early return, or (for unexported helpers) at every caller.
package gatedmetrics

import (
	"io"

	"repro/internal/telemetry"
)

var (
	launches = telemetry.Default.Counter(
		"lintfixture_launches_total", "Fixture counter.")
	depth = telemetry.Default.GaugeVec(
		"lintfixture_depth", "Fixture gauge.", "phase")
	reqlog, _ = telemetry.NewRequestLog(io.Discard, "json")
)

func unguarded(n int) {
	launches.Add(float64(n)) // want `gated on telemetry.Enabled`
}

func unguardedVec(n int) {
	depth.With("solve").Set(float64(n)) // want `gated on telemetry.Enabled` `gated on telemetry.Enabled`
}

func guardedSite(n int) {
	if telemetry.Enabled() {
		launches.Add(float64(n))
		depth.With("solve").Set(float64(n))
	}
}

func guardedCompound(n int, verbose bool) {
	if telemetry.Enabled() && verbose {
		launches.Add(float64(n))
	}
}

func earlyReturn(n int) {
	if !telemetry.Enabled() {
		return
	}
	launches.Add(float64(n))
}

func elseBranch(n int) {
	if !telemetry.Enabled() {
		_ = n
	} else {
		launches.Inc()
	}
}

// publish relies on the caller-propagation rule: its only callers guard.
func publish(n int) {
	launches.Add(float64(n))
	depth.With("solve").Set(float64(n))
}

func caller(n int) {
	if telemetry.Enabled() {
		publish(n)
	}
}

func otherCaller(n int) {
	if !telemetry.Enabled() {
		return
	}
	publish(n)
}

// leakyHelper has one unguarded caller, so its body is flagged.
func leakyHelper() {
	launches.Inc() // want `gated on telemetry.Enabled`
}

func badCaller() {
	leakyHelper()
}

func goodCaller() {
	if telemetry.Enabled() {
		leakyHelper()
	}
}

func allowed() {
	launches.Inc() //lint:allow gatedmetrics
}

// The request log is a telemetry publication too: an Emit is a line of
// per-request telemetry and needs the same gate as a counter bump.
func unguardedLog(id string) {
	reqlog.Emit("id", id) // want `gated on telemetry.Enabled`
}

func guardedLog(id string, wall int64) {
	if telemetry.Enabled() && wall > 0 {
		reqlog.Emit("id", id, "wall", wall)
	}
}
