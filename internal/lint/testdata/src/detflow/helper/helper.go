// Package helper launders nondeterminism behind exported functions. The
// one-level pattern checks see nothing suspicious at its call sites; only
// summary-based analysis connects callers to the sources below.
package helper

import (
	"math/rand"
	"time"
)

// Stamp returns wall-clock nanoseconds. Its summary carries value taint.
func Stamp() int64 { return time.Now().UnixNano() }

// Draw returns a variate from the global math/rand source.
func Draw(n int32) int32 { return rand.Int31n(n) }

// Mix is taint-neutral plumbing: parameter 0 flows to the return.
func Mix(x int32) int32 { return x ^ 0x55 }
