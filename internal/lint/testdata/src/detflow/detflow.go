// Package detflow exercises the interprocedural determinism taint
// analysis: no nondeterministic value may reach a solution field.
package detflow

import (
	"math/rand"
	"slices"
	"time"

	"repro/internal/coloring"
	"repro/internal/core"
	"repro/internal/lint/testdata/src/detflow/helper"
	"repro/internal/matching"
)

// Direct source into a solution field.
func direct(m *matching.Matching) {
	m.Mate[0] = int32(rand.Intn(4)) // want `nondeterministic value flows into matching.Matching.Mate`
}

// Laundered through two helpers in another package: only the function
// summaries connect the rand source to the sink.
func laundered(c *coloring.Coloring) {
	v := helper.Mix(helper.Draw(8))
	c.Color[0] = v // want `nondeterministic value flows into coloring.Coloring.Color`
}

// Same-package helper chain.
func stamp() int64 { return time.Now().UnixNano() }

func localChain(c *coloring.Coloring) {
	c.Color[1] = int32(stamp()) // want `nondeterministic value flows into coloring.Coloring.Color`
}

// An interprocedural sink: setColor writes its argument into the
// solution, so handing it a tainted value is flagged at the call site.
func setColor(c *coloring.Coloring, v int32) {
	c.Color[2] = v
}

func viaSink(c *coloring.Coloring) {
	setColor(c, int32(stamp())) // want `via call to setColor`
}

// Map iteration order is an order source; sorting sanitizes it.
func sortedKeys(c *coloring.Coloring, weight map[int32]int32) {
	keys := make([]int32, 0, len(weight))
	for k := range weight {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	c.Color[3] = keys[0] // sorted: clean
}

func unsortedKeys(c *coloring.Coloring, weight map[int32]int32) {
	var first int32
	for k := range weight {
		first = k
		break
	}
	c.Color[4] = first // want `nondeterministic value flows into coloring.Coloring.Color`
}

// Assembling a Result: the tainted payload write is the finding, not the
// pointer plumbing around it.
func assemble(res *core.Result, m *matching.Matching) {
	m.Mate[1] = helper.Draw(2) // want `nondeterministic value flows into matching.Matching.Mate`
	res.Matching = m
}

// Construction-time sink: initializing a protected field inside a
// composite literal is the same write as assigning it afterwards.
func build() coloring.Coloring {
	return coloring.Coloring{
		Color: []int32{helper.Draw(3)}, // want `nondeterministic value flows into coloring.Coloring.Color`
	}
}

// Reviewed: the annotation suppresses the finding on its line.
func suppressed(m *matching.Matching) {
	//lint:allow detflow
	m.Mate[2] = int32(time.Now().UnixNano())
}

// Reviewed at the function level: //lint:deterministic forces the
// summary clean, so the caller below is not flagged.
//
//lint:deterministic
func seeded() int32 {
	return rand.Int31n(3)
}

func usesSeeded(c *coloring.Coloring) {
	c.Color[5] = seeded() // clean: seeded is annotated deterministic
}
