// Package rawgo exercises the rawgo analyzer: bare goroutine fan-out and
// sync.WaitGroup coordination are flagged in solver code, which must
// dispatch through the internal/par pool instead.
package rawgo

import "sync"

func fanOut(work []int) {
	var wg sync.WaitGroup // want `sync.WaitGroup in solver code`
	for i := range work {
		wg.Add(1)
		go func(i int) { // want `goroutine spawned directly in solver code`
			defer wg.Done()
			work[i]++
		}(i)
	}
	wg.Wait()
}

type coordinator struct {
	wg sync.WaitGroup // want `sync.WaitGroup in solver code`
}

func fireAndForget(done chan<- struct{}) {
	go notify(done) // want `goroutine spawned directly in solver code`
}

func notify(done chan<- struct{}) { done <- struct{}{} }

func mutexIsFine() {
	var mu sync.Mutex
	mu.Lock()
	defer mu.Unlock()
}

func allowed(done chan struct{}) {
	go close(done) //lint:allow rawgo
}

// edgeMapFanOut mirrors the frontier engine's push round: per-chunk output
// buffers filled in parallel, then merged. Hand-rolled goroutine fan-out
// here is exactly what the engine must not do — it has to go through
// internal/par so chunk boundaries (and thus buffer order) stay a pure
// function of (n, workers).
func edgeMapFanOut(frontier []int32, nchunks int) [][]int32 {
	bufs := make([][]int32, nchunks)
	var wg sync.WaitGroup // want `sync.WaitGroup in solver code`
	for c := 0; c < nchunks; c++ {
		wg.Add(1)
		go func(c int) { // want `goroutine spawned directly in solver code`
			defer wg.Done()
			lo := c * len(frontier) / nchunks
			hi := (c + 1) * len(frontier) / nchunks
			bufs[c] = append(bufs[c], frontier[lo:hi]...)
		}(c)
	}
	wg.Wait()
	return bufs
}
