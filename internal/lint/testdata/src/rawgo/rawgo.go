// Package rawgo exercises the rawgo analyzer: bare goroutine fan-out and
// sync.WaitGroup coordination are flagged in solver code, which must
// dispatch through the internal/par pool instead.
package rawgo

import "sync"

func fanOut(work []int) {
	var wg sync.WaitGroup // want `sync.WaitGroup in solver code`
	for i := range work {
		wg.Add(1)
		go func(i int) { // want `goroutine spawned directly in solver code`
			defer wg.Done()
			work[i]++
		}(i)
	}
	wg.Wait()
}

type coordinator struct {
	wg sync.WaitGroup // want `sync.WaitGroup in solver code`
}

func fireAndForget(done chan<- struct{}) {
	go notify(done) // want `goroutine spawned directly in solver code`
}

func notify(done chan<- struct{}) { done <- struct{}{} }

func mutexIsFine() {
	var mu sync.Mutex
	mu.Lock()
	defer mu.Unlock()
}

func allowed(done chan struct{}) {
	go close(done) //lint:allow rawgo
}
