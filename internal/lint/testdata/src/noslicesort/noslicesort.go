// Package noslicesort exercises the noslicesort analyzer: the
// reflection-based sort.Slice family is flagged outside tests.
package noslicesort

import "sort"

func bad(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want `reflection-based sort.Slice`
}

func badStable(xs []int) {
	sort.SliceStable(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want `reflection-based sort.SliceStable`
}

func badIsSorted(xs []int) bool {
	return sort.SliceIsSorted(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want `reflection-based sort.SliceIsSorted`
}

func typedSortIsFine(xs []string) {
	sort.Strings(xs)
}

func interfaceSortIsFine(x sort.Interface) {
	sort.Sort(x)
}

func allowed(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) //lint:allow noslicesort
}
