// Package detrange exercises the detrange analyzer: ranging over a map in
// result-producing code is flagged unless the loop is annotated
// //lint:commutative (or suppressed with //lint:allow detrange).
package detrange

func sum(m map[int]int) int {
	total := 0
	for k, v := range m { // want `map iteration order is nondeterministic`
		total += k + v
	}
	return total
}

type table map[string]int

func namedMapType(t table) int {
	n := 0
	for range t { // want `map iteration order is nondeterministic`
		n++
	}
	return n
}

func appendKeys(m map[string]bool) []string {
	var keys []string
	for k := range m { // want `map iteration order is nondeterministic`
		keys = append(keys, k)
	}
	return keys
}

func commutativeAbove(m map[int]int) int {
	total := 0
	//lint:commutative
	for _, v := range m {
		total += v
	}
	return total
}

func commutativeTrailing(m map[int]int) int {
	total := 0
	for _, v := range m { //lint:commutative
		total += v
	}
	return total
}

func allowed(m map[int]int) int {
	n := 0
	for k := range m { //lint:allow detrange
		n += k
	}
	return n
}

func sliceIsFine(s []int) int {
	n := 0
	for _, v := range s {
		n += v
	}
	return n
}

func channelIsFine(c chan int) int {
	n := 0
	for v := range c {
		n += v
	}
	return n
}
