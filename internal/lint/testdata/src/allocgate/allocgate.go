// Package allocgate exercises the escape-analysis gate: //lint:hotpath
// functions must not gain heap allocations beyond the committed baseline
// (this package has none, so every hot allocation is a finding).
package allocgate

var leaked *int

// Escape via a helper: leak publishes its argument, so the compiler
// moves x to the heap inside the hot function.
func leak(p *int) { leaked = p }

//lint:hotpath
func kernel(n int) int {
	buf := make([]int, n) // want `new heap allocation in //lint:hotpath kernel`
	s := 0
	for _, v := range buf {
		s += v
	}
	return s
}

//lint:hotpath
func interproc() int {
	x := 42 // want `new heap allocation in //lint:hotpath interproc`
	leak(&x)
	return x
}

// Reviewed: the annotation suppresses the finding on the allocation line.
//
//lint:hotpath
func suppressed(n int) []int {
	//lint:allow allocgate
	return make([]int, n)
}

// Not annotated: allocates freely without findings.
func unannotated(n int) []int {
	return make([]int, n)
}
