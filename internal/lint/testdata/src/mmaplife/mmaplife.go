// Package mmaplife exercises the mmap lifetime analyzer over
// graph.OpenBinary handles: no alias of the mapping may be used or
// escape past Close.
package mmaplife

import "repro/internal/graph"

var cache *graph.Graph

// Use of a derived view after a plain Close.
func useAfterClose(path string) int {
	bg, err := graph.OpenBinary(path)
	if err != nil {
		return 0
	}
	g := bg.Graph
	bg.Close()
	return g.NumVertices() // want `use of mapped graph view .g. after Close`
}

// Direct handle access after a plain Close.
func handleAfterClose(path string) []int32 {
	bg, err := graph.OpenBinary(path)
	if err != nil {
		return nil
	}
	bg.Close()
	return bg.Neighbors(0) // want `access to BinaryGraph.Neighbors after Close`
}

// Returning a view while a deferred Close pends unmaps it before use.
func returnPastClose(path string) *graph.Graph {
	bg, err := graph.OpenBinary(path)
	if err != nil {
		return nil
	}
	defer bg.Close()
	return bg.Graph // want `mapped graph view escapes`
}

// Caching a view and then Closing leaves the cache dangling.
func storeThenClose(path string) {
	bg, err := graph.OpenBinary(path)
	if err != nil {
		return
	}
	cache = bg.Graph // want `mapped graph view stored outside`
	bg.Close()
}

// view derives an alias in a helper; the summary carries it back, so the
// use after Close in the caller is still caught.
func view(bg *graph.BinaryGraph) *graph.Graph { return bg.Graph }

func launderedAlias(path string) int {
	bg, err := graph.OpenBinary(path)
	if err != nil {
		return 0
	}
	g := view(bg)
	bg.Close()
	return g.NumVertices() // want `use of mapped graph view .g. after Close`
}

// A returned closure capturing the view outlives the deferred Close.
func closureEscape(path string) func() int {
	bg, err := graph.OpenBinary(path)
	if err != nil {
		return nil
	}
	defer bg.Close()
	g := bg.Graph
	return func() int { return g.NumVertices() } // want `returned closure captures a mapped graph view past Close`
}

type holder struct{ g *graph.Graph }

// Storing through a parameter escapes the view to the caller.
func stash(h *holder, path string) {
	bg, err := graph.OpenBinary(path)
	if err != nil {
		return
	}
	defer bg.Close()
	h.g = bg.Graph // want `mapped graph view stored outside`
}

// Clean: no Close — the mapping intentionally lives for the process
// (the LoadFile pattern).
func keepAlive(path string) (*graph.Graph, error) {
	bg, err := graph.OpenBinary(path)
	if err != nil {
		return nil, err
	}
	return bg.Graph, nil
}

// Clean: Close only on the error path; the happy path hands the mapping
// to the caller.
func closeOnError(path string) (*graph.Graph, error) {
	bg, err := graph.OpenBinary(path)
	if err != nil {
		return nil, err
	}
	if bg.NumVertices() == 0 {
		bg.Close()
		return nil, err
	}
	return bg.Graph, nil
}

// Clean: scalars computed from the mapping are copies, safe past Close.
func countThenClose(path string) int {
	bg, err := graph.OpenBinary(path)
	if err != nil {
		return 0
	}
	n := bg.NumVertices()
	bg.Close()
	return n
}

// Reviewed: annotated allow on the escaping return.
func suppressed(path string) *graph.Graph {
	bg, err := graph.OpenBinary(path)
	if err != nil {
		return nil
	}
	defer bg.Close()
	//lint:allow mmaplife
	return bg.Graph
}
