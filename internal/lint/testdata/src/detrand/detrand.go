// Package detrand exercises the detrand analyzer: the stateful global
// math/rand source and time-derived seeds are flagged; explicitly seeded
// generators and their methods are not.
package detrand

import (
	"math/rand"
	"time"
)

func globalDraw() int {
	return rand.Intn(10) // want `global math/rand source`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand source`
}

func timeSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `seed derived from time.Now`
}

func configSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func seededDraw(r *rand.Rand) int {
	return r.Intn(10)
}

func wallClockIsFine() time.Time {
	return time.Now()
}

func allowed() float64 {
	return rand.Float64() //lint:allow detrand
}
