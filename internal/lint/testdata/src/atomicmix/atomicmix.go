// Package atomicmix exercises the mixed-atomicity analyzer: a field or
// variable accessed via sync/atomic anywhere must be atomic everywhere.
package atomicmix

import "sync/atomic"

type counter struct {
	hits int64
	safe atomic.Int64 // method-based type: mixed access is impossible
}

var pending int64

// The atomic side of the mix.
func bump(c *counter) {
	atomic.AddInt64(&c.hits, 1)
}

// The plain side: flagged, pointing back at the atomic site.
func read(c *counter) int64 {
	return c.hits // want `plain access of .*counter.hits, which is accessed atomically`
}

// Interprocedural: the helper derefs plainly, so handing it the atomic
// field's address is a mixed access at the call site.
func plainDeref(p *int64) int64 { return *p }

func mixedViaHelper(c *counter) int64 {
	return plainDeref(&c.hits) // want `non-atomic access via plainDeref`
}

// Two levels deep: wrap forwards to plainDeref, and the pointer-summary
// fixpoint carries the plain bit through.
func wrap(p *int64) int64 { return plainDeref(p) }

func mixedViaWrapper(c *counter) int64 {
	return wrap(&c.hits) // want `non-atomic access via wrap`
}

// Clean: a helper that itself uses atomics keeps the access atomic.
func atomicDeref(p *int64) int64 { return atomic.LoadInt64(p) }

func okViaHelper(c *counter) int64 {
	return atomicDeref(&c.hits)
}

// Clean: the method-based sync/atomic types are exempt by construction.
func bumpSafe(c *counter) { c.safe.Add(1) }

func readSafe(c *counter) int64 { return c.safe.Load() }

// Clean: composite-literal initialization before the value is shared is
// the universal constructor idiom, not a race.
func newCounter() *counter { return &counter{hits: 1} }

// Package variables are tracked the same way as fields.
func bumpPending() { atomic.AddInt64(&pending, 1) }

func drainPending() int64 {
	return pending // want `plain access of .*pending, which is accessed atomically`
}

// Reviewed: the annotation suppresses the finding on its line.
func peekPending() int64 {
	//lint:allow atomicmix
	return pending
}
