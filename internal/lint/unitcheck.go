package lint

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"strings"
)

// vetConfig is the per-package configuration file the go command hands a
// -vettool as its sole argument. Field set and semantics follow
// x/tools/go/analysis/unitchecker.Config, which defines the protocol.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VetUnit analyzes the single package described by the go command's vet
// config file and returns the process exit code: 0 clean, 1 on internal
// error, 2 on findings (the unitchecker convention, which `go vet`
// surfaces as a failure with our stderr attached). The suite keeps no
// cross-package facts, so the "vetx" output is just an empty placeholder
// the go command caches.
func VetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "symlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "symlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	if cfg.Compiler != "gc" && cfg.Compiler != "" {
		fmt.Fprintf(os.Stderr, "symlint: unsupported compiler %q\n", cfg.Compiler)
		return 1
	}

	// Test-variant units duplicate the base package plus its _test.go
	// files; the suite does not analyze tests (same contract as the
	// standalone loader), and the base unit is analyzed on its own, so
	// skip these entirely.
	if strings.Contains(cfg.ImportPath, " [") || strings.HasSuffix(cfg.ImportPath, ".test") ||
		strings.HasSuffix(cfg.ImportPath, "_test") {
		if err := writeVetx(cfg.VetxOutput); err != nil {
			fmt.Fprintf(os.Stderr, "symlint: %v\n", err)
			return 1
		}
		return 0
	}

	// Dependency passes (VetxOnly) exist only to propagate analyzer
	// facts; the suite keeps none, so skip the typecheck entirely — this
	// also sidesteps stdlib packages we have no business parsing.
	if cfg.VetxOnly {
		if err := writeVetx(cfg.VetxOutput); err != nil {
			fmt.Fprintf(os.Stderr, "symlint: %v\n", err)
			return 1
		}
		return 0
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	var goFiles []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			goFiles = append(goFiles, f)
		}
	}
	pkg, err := checkPackage(fset, imp, listPackage{
		Dir:        cfg.Dir,
		ImportPath: cfg.ImportPath,
		GoFiles:    goFiles,
	})
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(cfg.VetxOutput)
			return 0
		}
		fmt.Fprintf(os.Stderr, "symlint: %v\n", err)
		return 1
	}

	if err := writeVetx(cfg.VetxOutput); err != nil {
		fmt.Fprintf(os.Stderr, "symlint: %v\n", err)
		return 1
	}

	// One package per vet unit: the interprocedural analyzers degrade
	// to a single-package program horizon (cross-package laundering is
	// the standalone driver's and TestRepoIsLintClean's job), and
	// allocgate is skipped outright — it shells back out to the go
	// tool, which a vet unit must not do.
	prog := NewProgram([]*Package{pkg})
	var diags []Diagnostic
	for _, a := range Analyzers() {
		if a.Name == Allocgate.Name || !a.AppliesTo(pkg.Path) {
			continue
		}
		ds, runErr := RunAnalyzerProg(a, pkg, prog)
		if runErr != nil {
			fmt.Fprintf(os.Stderr, "symlint: %v\n", runErr)
			return 1
		}
		diags = append(diags, ds...)
	}
	SortDiagnostics(diags)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func writeVetx(path string) error {
	if path == "" {
		return nil
	}
	return os.WriteFile(path, []byte("symlint: no facts\n"), 0o666)
}

// VetFlagsJSON is the reply to the go command's `-flags` probe: the list
// of analyzer flags the tool accepts (none — scopes are fixed in-source).
const VetFlagsJSON = "[]"
