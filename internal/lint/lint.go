// Package lint is symlint: a suite of static analyzers enforcing the
// invariants the reproduction's determinism and observability claims rest
// on. The DESIGN.md determinism sweep shows MM/COLOR/MIS solvers produce
// identical results across worker counts; that only holds because solver
// code never iterates maps on result-producing paths, never draws from the
// shared math/rand source, and fans out exclusively through internal/par's
// pool. Likewise the trace/telemetry layers are only truthful if every
// span is closed and every metric publication is gated. Those rules were
// previously enforced by review; this package enforces them by machine.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Reportf) but is built on the standard library alone — go/parser for
// syntax, go/types for semantics, and compiled export data from
// `go list -export -deps` for imports — so the module keeps zero external
// dependencies. cmd/symlint is the driver; it runs standalone over
// package patterns and also speaks enough of the `go vet -vettool` config
// protocol to run under the vet harness.
//
// Suppression: any finding is silenced by a `//lint:allow <name>` comment
// on the offending line or the line above (name is the analyzer name;
// several names may be comma-separated). detrange additionally honors the
// semantic annotation `//lint:commutative`, which asserts that the loop
// body commutes — iteration order cannot affect the result — and is the
// preferred way to bless a map range.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one named invariant check. Scope and Exclude are
// import-path prefixes the driver uses to decide which packages the
// analyzer applies to; the fixture tests bypass them and run analyzers
// directly.
type Analyzer struct {
	Name    string
	Doc     string
	Scope   []string // import-path prefixes to analyze; empty = all packages
	Exclude []string // import-path prefixes exempted even when in scope
	Run     func(*Pass) error
}

// AppliesTo reports whether the analyzer should run on the package with
// the given import path.
func (a *Analyzer) AppliesTo(path string) bool {
	for _, p := range a.Exclude {
		if path == p || strings.HasPrefix(path, p+"/") {
			return false
		}
	}
	if len(a.Scope) == 0 {
		return true
	}
	for _, p := range a.Scope {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Pass is one analyzer applied to one package. Prog is the whole-program
// view shared by every pass of a Run; the interprocedural analyzers
// (detflow, mmaplife, atomicmix) read cross-package summaries from it.
// It may be nil under degraded drivers (the vet harness sees one package
// at a time), in which case those analyzers fall back to a
// single-package program.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Prog     *Program

	diags      *[]Diagnostic
	allow      map[lineKey]bool
	allowBuilt bool
}

type lineKey struct {
	file string
	line int
}

// Reportf records a finding at pos unless a `//lint:allow <name>`
// directive covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if !p.allowBuilt {
		p.allow = p.directiveLines("lint:allow", p.Analyzer.Name)
		p.allowBuilt = true
	}
	position := p.Fset.Position(pos)
	if p.allow[lineKey{position.Filename, position.Line}] {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// directiveLines collects the lines covered by a //lint:<directive>
// comment: the comment's own line (trailing form) and the line below it
// (preceding form). For "lint:allow", only directives naming `name` count;
// for marker directives such as "lint:commutative", pass name == "".
func (p *Pass) directiveLines(directive, name string) map[lineKey]bool {
	lines := map[lineKey]bool{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, directive) {
					continue
				}
				if name != "" {
					rest := strings.TrimPrefix(text, directive)
					found := false
					for _, n := range strings.FieldsFunc(rest, func(r rune) bool {
						return r == ',' || r == ' ' || r == '\t'
					}) {
						if n == name {
							found = true
							break
						}
					}
					if !found {
						continue
					}
				}
				pos := p.Fset.Position(c.Pos())
				lines[lineKey{pos.Filename, pos.Line}] = true
				lines[lineKey{pos.Filename, pos.Line + 1}] = true
			}
		}
	}
	return lines
}

// RunAnalyzer applies one analyzer to one package, ignoring scope, with
// a program horizon of just that package.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	return RunAnalyzerProg(a, pkg, NewProgram([]*Package{pkg}))
}

// RunAnalyzerProg applies one analyzer to one package with an explicit
// whole-program view. The driver and the fixture tests share this entry
// point; prog may span many packages so interprocedural analyzers see
// across them.
func RunAnalyzerProg(a *Analyzer, pkg *Package, prog *Program) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		Prog:     prog,
		diags:    &diags,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
	}
	return diags, nil
}

// walkStack traverses root calling fn with each node and the stack of its
// ancestors (outermost first, excluding the node itself).
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// calleePkgFunc resolves call's callee to a package-level function,
// returning its package path and name. Method calls and local closures
// return ok == false.
func calleePkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil {
		return "", "", false
	}
	if sig, isSig := fn.Type().(*types.Signature); !isSig || sig.Recv() != nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}

// calleeMethod resolves call's callee to a method, returning the package
// path that declares the method and the method name.
func calleeMethod(info *types.Info, call *ast.CallExpr) (pkgPath, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil {
		return "", "", false
	}
	if sig, isSig := fn.Type().(*types.Signature); !isSig || sig.Recv() == nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}

// namedFrom reports whether t (possibly behind a pointer or alias) is the
// named type pkgPath.name.
func namedFrom(t types.Type, pkgPath, name string) bool {
	t = types.Unalias(t)
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = types.Unalias(ptr.Elem())
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// intrapkg reports whether path is this repository's pkg (exact module
// path, or any module's copy when running over fixtures — matched by the
// /internal/<pkg> suffix).
func isInternalPkg(path, pkg string) bool {
	return path == "repro/internal/"+pkg || strings.HasSuffix(path, "/internal/"+pkg)
}
