package lint

import (
	"go/ast"
	"go/types"
)

// Detrange flags `range` over a map in result-producing solver code. Go
// randomizes map iteration order, so any such loop whose body does not
// commute makes output depend on the schedule — exactly what the
// determinism sweep (DESIGN.md) promises cannot happen. Loops whose body
// provably commutes (pure accumulation into an order-insensitive value)
// may be annotated `//lint:commutative` on the line of, or above, the
// range statement.
var Detrange = &Analyzer{
	Name: "detrange",
	Doc:  "forbid map iteration in result-producing solver code unless annotated //lint:commutative",
	Run:  runDetrange,
}

func runDetrange(p *Pass) error {
	commutative := p.directiveLines("lint:commutative", "")
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			pos := p.Fset.Position(rs.Pos())
			if commutative[lineKey{pos.Filename, pos.Line}] {
				return true
			}
			p.Reportf(rs.Pos(),
				"map iteration order is nondeterministic: ranging over %s in result-producing code; iterate a sorted key slice, or annotate the loop //lint:commutative if every iteration commutes",
				types.TypeString(tv.Type, types.RelativeTo(p.Pkg)))
			return true
		})
	}
	return nil
}
