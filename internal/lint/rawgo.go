package lint

import (
	"go/ast"
)

// Rawgo flags ad-hoc goroutine fan-out in solver packages: `go`
// statements and sync.WaitGroup declarations. Solvers must dispatch
// through internal/par's persistent pool (For/ForN/Do) so the harness's
// worker-count sweeps actually bound parallelism and the pool's steal/
// chunk statistics stay truthful; a bare `go func` escapes both.
var Rawgo = &Analyzer{
	Name: "rawgo",
	Doc:  "forbid bare goroutines and sync.WaitGroup fan-out in solver packages; use the par pool",
	Run:  runRawgo,
}

func runRawgo(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				p.Reportf(n.Pos(),
					"goroutine spawned directly in solver code: route fan-out through internal/par (For/ForN/Do) so worker-count sweeps and pool stats stay truthful")
			case *ast.ValueSpec:
				if n.Type != nil && p.typeIsWaitGroup(n.Type) {
					p.Reportf(n.Pos(),
						"sync.WaitGroup in solver code: ad-hoc fan-out bypasses the par pool; use par.Do/par.For instead")
				}
			case *ast.Field:
				if n.Type != nil && p.typeIsWaitGroup(n.Type) {
					p.Reportf(n.Pos(),
						"sync.WaitGroup in solver code: ad-hoc fan-out bypasses the par pool; use par.Do/par.For instead")
				}
			}
			return true
		})
	}
	return nil
}

func (p *Pass) typeIsWaitGroup(expr ast.Expr) bool {
	tv, ok := p.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	return namedFrom(tv.Type, "sync", "WaitGroup")
}
