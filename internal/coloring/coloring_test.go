package coloring

import (
	"testing"

	"repro/internal/bsp"
	"repro/internal/graph"
	"repro/internal/par"
)

func pathGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.Build()
}

func cycleGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(int32(i), int32((i+1)%n))
	}
	return b.Build()
}

func completeGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	return b.Build()
}

func starGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, int32(i))
	}
	return b.Build()
}

func bipartiteGraph(a, b int) *graph.Graph {
	bld := graph.NewBuilder(a + b)
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			bld.AddEdge(int32(i), int32(a+j))
		}
	}
	return bld.Build()
}

func randomGraph(n, m int, seed uint64) *graph.Graph {
	r := par.NewRNG(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	return b.Build()
}

func paperGraph() *graph.Graph {
	b := graph.NewBuilder(8)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(5, 6)
	b.AddEdge(3, 6)
	b.AddEdge(6, 7)
	return b.Build()
}

func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"empty":       graph.NewBuilder(0).Build(),
		"isolated":    graph.NewBuilder(10).Build(),
		"path":        pathGraph(101),
		"cycle-odd":   cycleGraph(51),
		"complete":    completeGraph(17),
		"star":        starGraph(33),
		"bipartite":   bipartiteGraph(10, 15),
		"paper":       paperGraph(),
		"rand-sparse": randomGraph(500, 600, 1),
		"rand-dense":  randomGraph(300, 5000, 2),
	}
}

func engines() map[string]Engine {
	return map[string]Engine{
		"VB": NewVB(),
		"EB": NewEB(bsp.New()),
	}
}

func TestVerifyCatchesBadColorings(t *testing.T) {
	g := pathGraph(3)
	c := &Coloring{Color: []int32{0, 1, 0}}
	if err := Verify(g, c); err != nil {
		t.Fatalf("valid coloring rejected: %v", err)
	}
	// Monochromatic edge.
	c.Color = []int32{0, 0, 1}
	if Verify(g, c) == nil {
		t.Fatal("improper coloring accepted")
	}
	// Uncolored vertex.
	c.Color = []int32{0, 1, Uncolored}
	if Verify(g, c) == nil {
		t.Fatal("incomplete coloring accepted")
	}
	// Wrong length.
	if Verify(g, NewColoring(2)) == nil {
		t.Fatal("wrong-length coloring accepted")
	}
}

func TestEnginesProperOnCorpus(t *testing.T) {
	for ename, eng := range engines() {
		for gname, g := range testGraphs() {
			c, st := eng.Fresh(g)
			if err := Verify(g, c); err != nil {
				t.Fatalf("%s/%s: %v", ename, gname, err)
			}
			if g.NumVertices() > 0 && st.Rounds == 0 {
				t.Fatalf("%s/%s: zero rounds", ename, gname)
			}
			// Never more than maxdeg+1 colors for these speculative
			// greedy schemes.
			if c.NumColors() > g.MaxDegree()+1 {
				t.Fatalf("%s/%s: %d colors for max degree %d",
					ename, gname, c.NumColors(), g.MaxDegree())
			}
		}
	}
}

func TestEnginesKnownChromatic(t *testing.T) {
	for ename, eng := range engines() {
		// Complete graph needs exactly n colors.
		c, _ := eng.Fresh(completeGraph(17))
		if c.NumColors() != 17 {
			t.Fatalf("%s: K17 used %d colors", ename, c.NumColors())
		}
		// Star is 2-colorable and greedy achieves it.
		c, _ = eng.Fresh(starGraph(20))
		if c.NumColors() > 2 {
			t.Fatalf("%s: star used %d colors", ename, c.NumColors())
		}
	}
}

func TestEnginesDeterministic(t *testing.T) {
	g := randomGraph(400, 2000, 3)
	for ename, mk := range map[string]func() Engine{
		"VB": func() Engine { return NewVB() },
		"EB": func() Engine { return NewEB(bsp.New()) },
	} {
		a, _ := mk().Fresh(g)
		b, _ := mk().Fresh(g)
		for i := range a.Color {
			if a.Color[i] != b.Color[i] {
				t.Fatalf("%s: colors differ at %d across runs", ename, i)
			}
		}
	}
}

func TestRepairKeepsExistingColors(t *testing.T) {
	g := pathGraph(6)
	for ename, eng := range engines() {
		color := []int32{0, 1, Uncolored, Uncolored, 1, 0}
		eng.Repair(g, color, []int32{2, 3})
		c := &Coloring{Color: color}
		if err := Verify(g, c); err != nil {
			t.Fatalf("%s: repair produced invalid coloring: %v", ename, err)
		}
		if color[0] != 0 || color[1] != 1 || color[4] != 1 || color[5] != 0 {
			t.Fatalf("%s: repair modified fixed colors: %v", ename, color)
		}
	}
}

func TestVBForbiddenSizeOne(t *testing.T) {
	// Degenerate window size must still terminate and be correct.
	eng := &VB{ForbiddenSize: 1}
	g := completeGraph(9)
	c, _ := eng.Fresh(g)
	if err := Verify(g, c); err != nil {
		t.Fatal(err)
	}
}

func TestEBKernelAccounting(t *testing.T) {
	m := bsp.New()
	eng := NewEB(m)
	_, st := eng.Fresh(cycleGraph(100))
	if m.Stats().Launches != int64(4*st.Rounds) {
		t.Fatalf("launches %d, want 4 per round × %d", m.Stats().Launches, st.Rounds)
	}
}

func TestDecomposedColoringsProper(t *testing.T) {
	for ename, eng := range engines() {
		for gname, g := range testGraphs() {
			runs := []struct {
				name string
				run  func() (*Coloring, Report)
			}{
				{"COLOR-Bridge", func() (*Coloring, Report) { return ColorBridge(g, eng) }},
				{"COLOR-Rand", func() (*Coloring, Report) { return ColorRand(g, 4, 3, eng) }},
				{"COLOR-Degk", func() (*Coloring, Report) { return ColorDegk(g, 2, eng) }},
			}
			for _, r := range runs {
				c, rep := r.run()
				if err := Verify(g, c); err != nil {
					t.Fatalf("%s/%s/%s: %v", r.name, ename, gname, err)
				}
				if rep.Strategy != r.name {
					t.Fatalf("report strategy %q, want %q", rep.Strategy, r.name)
				}
			}
		}
	}
}

func TestColorDegkNoRecoloring(t *testing.T) {
	// The paper's key claim for COLOR-Degk: once G_H is colored, no
	// conflicts arise, and G_L needs at most k+1 extra colors. Every G_L
	// vertex color must sit in [maxC_H+1, maxC_H+k+1].
	g := paperGraph() // V_H = {c,d,g}, V_L = {a,b,e,f,h}
	eng := NewVB()
	c, rep := ColorDegk(g, 2, eng)
	if err := Verify(g, c); err != nil {
		t.Fatal(err)
	}
	if rep.Conflicted != 0 {
		t.Fatalf("COLOR-Degk reported %d conflicts", rep.Conflicted)
	}
	// High part colors < base; low part colors ≥ base.
	var baseMax int32 = -1
	for _, v := range []int32{2, 3, 6} {
		if c.Color[v] > baseMax {
			baseMax = c.Color[v]
		}
	}
	for _, v := range []int32{0, 1, 4, 5, 7} {
		if c.Color[v] <= baseMax {
			t.Fatalf("low vertex %d color %d not above high palette %d", v, c.Color[v], baseMax)
		}
		if c.Color[v] > baseMax+3 {
			t.Fatalf("low vertex %d color %d beyond k+1 extra colors", v, c.Color[v])
		}
	}
}

func TestColorRandConflictsReported(t *testing.T) {
	// With a dense graph and 2 partitions there must be cross conflicts to
	// recolor (the paper measured ~45% of vertices with two partitions).
	g := randomGraph(500, 6000, 7)
	_, rep := ColorRand(g, 2, 1, NewVB())
	if rep.Conflicted == 0 {
		t.Fatal("COLOR-Rand reported no conflicts on a dense graph")
	}
}

func TestColorBridgeFewColorsOnTrees(t *testing.T) {
	// On a tree every edge is a bridge, G_c is edgeless → everything gets
	// color 0 first, then bridges force a repair. Greedy speculative repair
	// may use one color beyond the chromatic number 2, never more (degree
	// ≤ 2 bounds the palette at 3).
	g := pathGraph(40)
	c, _ := ColorBridge(g, NewVB())
	if err := Verify(g, c); err != nil {
		t.Fatal(err)
	}
	if c.NumColors() > 3 {
		t.Fatalf("tree colored with %d colors", c.NumColors())
	}
}

func TestBoundedPaletteDefensiveWiden(t *testing.T) {
	// Handing boundedPalette a graph denser than the declared size must
	// still produce a proper coloring (the window widens).
	g := completeGraph(5)
	color := make([]int32, 5)
	for i := range color {
		color[i] = Uncolored
	}
	work := []int32{0, 1, 2, 3, 4}
	boundedPalette(g, color, work, 10, 2, par.For)
	c := &Coloring{Color: color}
	if err := Verify(g, c); err != nil {
		t.Fatal(err)
	}
	for _, cv := range color {
		if cv < 10 {
			t.Fatalf("color %d below palette base", cv)
		}
	}
}

func TestNumColors(t *testing.T) {
	c := &Coloring{Color: []int32{0, 3, 1}}
	if c.NumColors() != 4 {
		t.Fatalf("NumColors = %d", c.NumColors())
	}
	if NewColoring(0).NumColors() != 0 {
		t.Fatal("empty coloring NumColors != 0")
	}
}
