// Package coloring implements the paper's vertex coloring algorithms
// (Section IV): the multicore baseline VB (vertex-based speculative
// coloring with a fixed-size FORBIDDEN array, after Deveci et al.), the GPU
// baseline EB (edge-based coloring with a 32-bit availability mask, also
// Deveci et al., run on the bsp virtual manycore), and the three
// decomposition-based algorithms COLOR-Bridge, COLOR-Rand and COLOR-Degk
// (Algorithms 7–9).
package coloring

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/par"
)

// Uncolored marks a vertex that has no color yet.
const Uncolored int32 = -1

// Coloring is a vertex coloring: Color[v] ∈ [0, NumColors) or Uncolored.
type Coloring struct {
	Color []int32
}

// NewColoring returns an all-Uncolored coloring over n vertices.
func NewColoring(n int) *Coloring {
	c := &Coloring{Color: make([]int32, n)}
	par.Fill(c.Color, Uncolored)
	return c
}

// NumColors reports the palette size actually used (max color + 1).
func (c *Coloring) NumColors() int32 {
	return par.MaxIndexed(len(c.Color), int32(-1), func(i int) int32 {
		return c.Color[i]
	}) + 1
}

// Verify checks that c is a complete proper coloring of g.
func Verify(g *graph.Graph, c *Coloring) error {
	n := g.NumVertices()
	if len(c.Color) != n {
		return fmt.Errorf("coloring: %d entries for %d vertices", len(c.Color), n)
	}
	for v := 0; v < n; v++ {
		if c.Color[v] == Uncolored {
			return fmt.Errorf("coloring: vertex %d uncolored", v)
		}
		if c.Color[v] < 0 {
			return fmt.Errorf("coloring: vertex %d has negative color %d", v, c.Color[v])
		}
	}
	var bad error
	for v := 0; v < n && bad == nil; v++ {
		for _, w := range g.Neighbors(int32(v)) {
			if c.Color[w] == c.Color[v] {
				bad = fmt.Errorf("coloring: edge {%d,%d} monochromatic (color %d)", v, w, c.Color[v])
				break
			}
		}
	}
	return bad
}

// Stats reports work counters for a coloring run.
type Stats struct {
	// Rounds is the number of speculative color / conflict-resolve
	// iterations.
	Rounds int
}

// Engine is a configured base coloring algorithm. Fresh colors a graph from
// scratch; Repair extends a partial proper coloring (work lists the
// vertices whose Color entry is Uncolored) to a complete proper coloring of
// g without touching already-colored vertices. The decomposition-based
// algorithms use Repair for their recoloring phases, exactly as the paper
// recolors conflicted vertices "along with" the cross/bridge edges.
type Engine interface {
	// Name identifies the engine ("VB" or "EB").
	Name() string
	// Fresh computes a complete proper coloring of g.
	Fresh(g *graph.Graph) (*Coloring, Stats)
	// Repair colors exactly the vertices in work (whose color entries must
	// be Uncolored on entry) so that no edge touching them is
	// monochromatic. Uncolored vertices outside work are left untouched
	// and impose no constraints, so Repair doubles as a masked fresh
	// coloring of the subgraph induced by work.
	Repair(g *graph.Graph, color []int32, work []int32) Stats
	// Exec runs kernel(i) for i in [0, n) on the engine's execution
	// substrate (parallel loop on the CPU, kernel launch on the virtual
	// GPU). Shared phases such as COLOR-Degk's bounded-palette coloring of
	// G_L use it so their work is accounted to the right device.
	Exec(n int, kernel func(i int))
}

// conflictTieSeed scrambles vertex ids for conflict resolution. The paper
// resets "the endpoint with the lowest id"; that rule assumes ids are
// uncorrelated with structure. Our synthetic instances number vertices
// along their structure (grids, chains, bands), where literal lowest-id
// resolution degenerates into a sequential wave-front. Hashing the id first
// is the same rule applied to a relabeled graph and keeps both determinism
// and the guaranteed-progress argument (a total order on vertices).
const conflictTieSeed uint64 = 0x5ca1ab1e

// loses reports whether v loses a color conflict against w and must
// recolor.
func loses(v, w int32) bool {
	hv := par.Hash64(conflictTieSeed, int64(v))
	hw := par.Hash64(conflictTieSeed, int64(w))
	if hv != hw {
		return hv < hw
	}
	return v < w
}

// Report describes a full decomposition-based coloring run.
type Report struct {
	// Strategy names the algorithm ("COLOR-Degk" etc.).
	Strategy string
	// Decomp is the decomposition wall time.
	Decomp time.Duration
	// Solve is the wall time of coloring phases.
	Solve time.Duration
	// Rounds accumulates engine iterations across phases.
	Rounds int
	// Conflicted counts vertices that had to be recolored after the
	// independent subgraph colorings (the cost driver for COLOR-Rand).
	Conflicted int64
}

// Total is the end-to-end wall time.
func (r Report) Total() time.Duration { return r.Decomp + r.Solve }
