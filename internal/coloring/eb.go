package coloring

import (
	"math/bits"

	"repro/internal/bsp"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/trace"
)

// EB is the paper's GPU baseline (Algorithm EB, after Deveci et al.):
// edge-based speculative coloring designed for SIMD architectures. Instead
// of a FORBIDDEN array, a 32-bit integer represents color availability
// within a 32-color band. Every working vertex takes the smallest available
// color; conflicts are detected on edges and the lowest-id endpoint of each
// monochromatic edge is reset. Kernels run on the bsp virtual manycore.
type EB struct {
	machine *bsp.Machine
}

// NewEB returns an EB engine bound to the given machine.
func NewEB(m *bsp.Machine) *EB { return &EB{machine: m} }

// Name implements Engine.
func (eb *EB) Name() string { return "EB" }

// Exec implements Engine's executor: a kernel launch on the machine.
func (eb *EB) Exec(n int, kernel func(i int)) { eb.machine.Launch(n, kernel) }

// Machine exposes the underlying virtual device (for stats accounting).
func (eb *EB) Machine() *bsp.Machine { return eb.machine }

// Fresh implements Engine.
func (eb *EB) Fresh(g *graph.Graph) (*Coloring, Stats) {
	c := NewColoring(g.NumVertices())
	work := make([]int32, g.NumVertices())
	par.Iota(work)
	st := eb.Repair(g, c.Color, work)
	return c, st
}

// Repair implements Engine.
func (eb *EB) Repair(g *graph.Graph, color []int32, work []int32) Stats {
	var st Stats
	n := g.NumVertices()
	cand := make([]int32, n)

	for len(work) > 0 {
		st.Rounds++
		// Kernel 1: speculative smallest available color via 32-bit bands.
		eb.machine.Launch(len(work), func(i int) {
			v := work[i]
			cand[v] = findColor32(g, color, v)
		})
		// Kernel 2: commit.
		eb.machine.Launch(len(work), func(i int) {
			color[work[i]] = cand[work[i]]
		})
		// Kernel 3: edge conflict detection; the lowest (hashed-id)
		// priority of each monochromatic edge resets.
		eb.machine.Launch(len(work), func(i int) {
			v := work[i]
			cv := color[v]
			for _, w := range g.Neighbors(v) {
				if color[w] == cv && loses(v, w) {
					cand[v] = Uncolored
					break
				}
			}
		})
		// Kernel 4: apply resets.
		eb.machine.Launch(len(work), func(i int) {
			if cand[work[i]] == Uncolored {
				color[work[i]] = Uncolored
			}
		})
		work = par.Filter(work, func(v int32) bool { return color[v] == Uncolored })
		if trace.Enabled() {
			trace.Append("frontier", int64(len(work)))
		}
	}
	return st
}

// findColor32 returns the smallest color not used by v's neighbors,
// scanning the palette in 32-color bands with a bitmask (the paper: "a 32
// bit integer is used to represent the availability of the colors").
func findColor32(g *graph.Graph, color []int32, v int32) int32 {
	for base := int32(0); ; base += 32 {
		var forbid uint32
		for _, w := range g.Neighbors(v) {
			if cw := color[w]; cw >= base && cw < base+32 {
				forbid |= 1 << uint(cw-base)
			}
		}
		if forbid != ^uint32(0) {
			return base + int32(bits.TrailingZeros32(^forbid))
		}
	}
}
