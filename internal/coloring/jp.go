package coloring

import (
	"repro/internal/graph"
	"repro/internal/par"
)

// JP implements the Jones–Plassmann independent-set coloring heuristic that
// the paper's §IV-A surveys, with the vertex orderings studied by
// Hasenplaugh et al.: every vertex waits until all higher-priority
// neighbors are colored, then takes its smallest available color. Unlike
// the speculative VB/EB engines it never produces conflicts, at the price
// of as many rounds as the priority DAG is deep.
//
// JP is not one of the paper's measured baselines; it exists for the
// coloring-baselines comparison experiment.
type JP struct {
	// Ordering selects the priority function.
	Ordering Ordering
	// Seed drives the random components of the orderings.
	Seed uint64
}

// Ordering is a Jones–Plassmann priority rule.
type Ordering int

const (
	// OrderRandom is the classic JP ordering: uniform random priorities.
	OrderRandom Ordering = iota
	// OrderLargestFirst is Hasenplaugh's LF: higher degree colors first
	// (ties broken randomly).
	OrderLargestFirst
	// OrderSmallestLast is the SL ordering approximated one-shot: lower
	// degeneracy rank colors later. We use the reverse-degree heuristic
	// (smaller degree → higher rank → colors later), the cheap proxy
	// Hasenplaugh et al. compare against true SL.
	OrderSmallestLast
)

// String names the ordering.
func (o Ordering) String() string {
	switch o {
	case OrderLargestFirst:
		return "LF"
	case OrderSmallestLast:
		return "SL"
	default:
		return "R"
	}
}

// NewJP returns a JP engine with the given ordering.
func NewJP(o Ordering, seed uint64) *JP { return &JP{Ordering: o, Seed: seed} }

// Name implements Engine.
func (jp *JP) Name() string { return "JP-" + jp.Ordering.String() }

// Exec implements Engine.
func (jp *JP) Exec(n int, kernel func(i int)) { par.For(n, kernel) }

// priority returns the JP priority of v: higher colors earlier.
func (jp *JP) priority(g *graph.Graph, v int32) uint64 {
	r := par.Hash64(jp.Seed, int64(v))
	switch jp.Ordering {
	case OrderLargestFirst:
		return uint64(g.Degree(v))<<40 | r>>24
	case OrderSmallestLast:
		return uint64(1<<24-int64(g.Degree(v)))<<40 | r>>24
	default:
		return r
	}
}

// Fresh implements Engine.
func (jp *JP) Fresh(g *graph.Graph) (*Coloring, Stats) {
	c := NewColoring(g.NumVertices())
	work := make([]int32, g.NumVertices())
	par.Iota(work)
	st := jp.Repair(g, c.Color, work)
	return c, st
}

// Repair implements Engine: colors the work vertices in priority-DAG
// order. Colored non-work vertices constrain color choices as usual.
func (jp *JP) Repair(g *graph.Graph, color []int32, work []int32) Stats {
	var st Stats
	inWork := make([]bool, g.NumVertices())
	par.Range(len(work), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			inWork[work[i]] = true
		}
	})
	pending := work
	ready := make([]bool, g.NumVertices())
	for len(pending) > 0 {
		st.Rounds++
		// Phase A: a vertex is ready when no uncolored work neighbor
		// outranks it. Two adjacent pending vertices never both become
		// ready (priorities totally order them), so phase B's writes are
		// conflict free.
		par.Range(len(pending), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := pending[i]
				pv := jp.priority(g, v)
				ok := true
				for _, w := range g.Neighbors(v) {
					if !inWork[w] || color[w] != Uncolored {
						continue
					}
					pw := jp.priority(g, w)
					if pw > pv || (pw == pv && w > v) {
						ok = false
						break
					}
				}
				ready[v] = ok
			}
		})
		// Phase B: ready vertices take the smallest color absent from
		// their (necessarily non-ready or already colored) neighborhood.
		par.Range(len(pending), func(lo, hi int) {
			forbidden := make(map[int32]bool)
			for i := lo; i < hi; i++ {
				v := pending[i]
				if !ready[v] {
					continue
				}
				clear(forbidden)
				for _, w := range g.Neighbors(v) {
					if cw := color[w]; cw != Uncolored {
						forbidden[cw] = true
					}
				}
				pick := int32(0)
				for forbidden[pick] {
					pick++
				}
				color[v] = pick
			}
		})
		pending = par.Filter(pending, func(v int32) bool { return color[v] == Uncolored })
	}
	return st
}
