package coloring

import (
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/trace"
)

// VB is the paper's multicore CPU baseline (Algorithm VB, after Deveci et
// al.): speculative vertex-based coloring with a fixed-size FORBIDDEN
// array. Every working vertex searches for the smallest valid color inside
// a window of ForbiddenSize colors; if the window is exhausted an OFFSET
// advances it. After each speculative round, conflicting vertices (the
// lower id of each monochromatic edge) are uncolored and retried.
//
// The paper sizes the FORBIDDEN array at the average degree of the graph
// being colored; ForbiddenSize = 0 selects that default.
type VB struct {
	// ForbiddenSize is the FORBIDDEN window size; 0 means
	// max(1, ⌊average degree⌋) of the graph being colored.
	ForbiddenSize int
}

// NewVB returns a VB engine with the paper's default FORBIDDEN sizing.
func NewVB() *VB { return &VB{} }

// Name implements Engine.
func (vb *VB) Name() string { return "VB" }

// Exec implements Engine's executor: plain parallel loops on the CPU.
func (vb *VB) Exec(n int, kernel func(i int)) { par.For(n, kernel) }

// Fresh implements Engine.
func (vb *VB) Fresh(g *graph.Graph) (*Coloring, Stats) {
	c := NewColoring(g.NumVertices())
	work := make([]int32, g.NumVertices())
	par.Iota(work)
	st := vb.Repair(g, c.Color, work)
	return c, st
}

// Repair implements Engine.
func (vb *VB) Repair(g *graph.Graph, color []int32, work []int32) Stats {
	f := vb.ForbiddenSize
	if f <= 0 {
		// The paper sizes the FORBIDDEN array at the average degree of the
		// graph being colored — here, the work vertices.
		if len(work) > 0 {
			total := par.Sum(len(work), func(i int) int64 {
				return int64(g.Degree(work[i]))
			})
			f = int(total / int64(len(work)))
		}
		if f < 1 {
			f = 1
		}
	}
	var st Stats
	n := g.NumVertices()
	cand := make([]int32, n)

	for len(work) > 0 {
		st.Rounds++
		// Speculative assignment: smallest color absent from the (snapshot)
		// neighborhood, searched window by window with the FORBIDDEN array.
		par.Range(len(work), func(lo, hi int) {
			forbidden := make([]bool, f)
			for i := lo; i < hi; i++ {
				v := work[i]
				cand[v] = findColor(g, color, v, forbidden, 0)
			}
		})
		// Commit this round's speculation.
		par.Range(len(work), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				color[work[i]] = cand[work[i]]
			}
		})
		// Conflict detection: of each monochromatic edge, the lower
		// (hashed-id) priority resets, so the highest priority in any
		// conflict neighborhood always survives, guaranteeing progress.
		par.Range(len(work), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := work[i]
				cv := color[v]
				for _, w := range g.Neighbors(v) {
					if color[w] == cv && loses(v, w) {
						cand[v] = Uncolored
						break
					}
				}
			}
		})
		par.Range(len(work), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if cand[work[i]] == Uncolored {
					color[work[i]] = Uncolored
				}
			}
		})
		work = par.Filter(work, func(v int32) bool { return color[v] == Uncolored })
		if trace.Enabled() {
			trace.Append("frontier", int64(len(work)))
		}
	}
	return st
}

// findColor returns the smallest color ≥ base not used by any neighbor of
// v, scanning the palette in windows the size of the forbidden buffer.
func findColor(g *graph.Graph, color []int32, v int32, forbidden []bool, base int32) int32 {
	f := int32(len(forbidden))
	for {
		for j := range forbidden {
			forbidden[j] = false
		}
		limit := base + f
		for _, w := range g.Neighbors(v) {
			if cw := color[w]; cw >= base && cw < limit {
				forbidden[cw-base] = true
			}
		}
		for j := int32(0); j < f; j++ {
			if !forbidden[j] {
				return base + j
			}
		}
		base += f // OFFSET advance: whole window forbidden
	}
}
