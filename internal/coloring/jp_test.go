package coloring

import "testing"

func TestJPProperOnCorpus(t *testing.T) {
	for _, ord := range []Ordering{OrderRandom, OrderLargestFirst, OrderSmallestLast} {
		eng := NewJP(ord, 7)
		for gname, g := range testGraphs() {
			c, st := eng.Fresh(g)
			if err := Verify(g, c); err != nil {
				t.Fatalf("%s/%s: %v", eng.Name(), gname, err)
			}
			if g.NumVertices() > 0 && st.Rounds == 0 {
				t.Fatalf("%s/%s: zero rounds", eng.Name(), gname)
			}
			if c.NumColors() > g.MaxDegree()+1 {
				t.Fatalf("%s/%s: %d colors for Δ=%d", eng.Name(), gname, c.NumColors(), g.MaxDegree())
			}
		}
	}
}

func TestJPNamesAndOrderings(t *testing.T) {
	if NewJP(OrderRandom, 1).Name() != "JP-R" ||
		NewJP(OrderLargestFirst, 1).Name() != "JP-LF" ||
		NewJP(OrderSmallestLast, 1).Name() != "JP-SL" {
		t.Fatal("JP names wrong")
	}
}

func TestJPLFColorsHubFirst(t *testing.T) {
	// On a star, LF gives the center the highest priority, so it takes
	// color 0 and every leaf takes 1 — the optimal 2-coloring — in 2
	// rounds.
	g := starGraph(40)
	c, st := NewJP(OrderLargestFirst, 3).Fresh(g)
	if err := Verify(g, c); err != nil {
		t.Fatal(err)
	}
	if c.Color[0] != 0 {
		t.Fatalf("center color %d, want 0", c.Color[0])
	}
	if c.NumColors() != 2 {
		t.Fatalf("star used %d colors", c.NumColors())
	}
	if st.Rounds != 2 {
		t.Fatalf("star took %d rounds, want 2", st.Rounds)
	}
}

func TestJPRepairKeepsFixedColors(t *testing.T) {
	g := pathGraph(6)
	color := []int32{0, 1, Uncolored, Uncolored, 1, 0}
	NewJP(OrderRandom, 5).Repair(g, color, []int32{2, 3})
	if err := Verify(g, &Coloring{Color: color}); err != nil {
		t.Fatal(err)
	}
	if color[0] != 0 || color[1] != 1 || color[4] != 1 || color[5] != 0 {
		t.Fatalf("fixed colors changed: %v", color)
	}
}

func TestJPDeterministic(t *testing.T) {
	g := randomGraph(300, 1500, 9)
	a, _ := NewJP(OrderSmallestLast, 4).Fresh(g)
	b, _ := NewJP(OrderSmallestLast, 4).Fresh(g)
	for i := range a.Color {
		if a.Color[i] != b.Color[i] {
			t.Fatalf("JP differs at %d under same seed", i)
		}
	}
}

func TestJPWorksAsDecompositionEngine(t *testing.T) {
	// JP satisfies Engine, so the decomposition algorithms accept it.
	g := randomGraph(400, 1600, 2)
	eng := NewJP(OrderRandom, 6)
	for _, run := range []func() (*Coloring, Report){
		func() (*Coloring, Report) { return ColorBridge(g, eng) },
		func() (*Coloring, Report) { return ColorRand(g, 4, 1, eng) },
		func() (*Coloring, Report) { return ColorDegk(g, 2, eng) },
	} {
		c, _ := run()
		if err := Verify(g, c); err != nil {
			t.Fatal(err)
		}
	}
}
