package coloring

import (
	"time"

	"repro/internal/biconn"
	"repro/internal/graph"
)

// ColorBiconn is an extension beyond the paper's three decompositions,
// following Hochbaum's biconnected-component approach from the paper's
// related work: blocks share only articulation points, so coloring the
// non-articulation vertices first is exactly "color every block
// independently with an identical palette" (non-cut vertices of different
// blocks are never adjacent), and only the articulation points need a
// second pass against the whole graph.
func ColorBiconn(g *graph.Graph, eng Engine) (*Coloring, Report) {
	rep := Report{Strategy: "COLOR-Biconn"}
	decompStart := time.Now()
	bc := biconn.Blocks(g)
	rep.Decomp = time.Since(decompStart)

	start := time.Now()
	n := g.NumVertices()
	c := NewColoring(n)
	cut, interior := gather2(n, func(i int) bool { return bc.IsArticulation[i] })
	if len(interior) > 0 {
		st := eng.Repair(g, c.Color, interior)
		rep.Rounds += st.Rounds
	}
	rep.Conflicted = int64(len(cut))
	if len(cut) > 0 {
		st := eng.Repair(g, c.Color, cut)
		rep.Rounds += st.Rounds
	}
	rep.Solve = time.Since(start)
	return c, rep
}
