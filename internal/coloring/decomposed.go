package coloring

import (
	"time"

	"repro/internal/decomp"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/trace"
)

// ColorBridge is the paper's Algorithm 7: color the 2-edge-connected
// components G_c independently (they share a palette and cannot conflict
// with each other), then detect conflicts across the bridges and recolor
// the conflicted vertices against G_c ∪ G_b = G.
func ColorBridge(g *graph.Graph, eng Engine) (*Coloring, Report) {
	rep := Report{Strategy: "COLOR-Bridge"}
	dsp := trace.Begin("decomp")
	d := decomp.Bridge(g)
	dsp.End()
	rep.Decomp = d.Elapsed

	start := time.Now()
	// C_c ← COLOR(G_c): G_c keeps global ids, its components color in
	// parallel inside the engine.
	sp := trace.Begin("solve/G_c")
	c, st := eng.Fresh(d.Parts[0].G)
	sp.Add("rounds", int64(st.Rounds))
	sp.End()
	rep.Rounds += st.Rounds
	// Only bridge edges can be monochromatic. Reset the lower endpoint of
	// each conflicting bridge.
	sp = trace.Begin("solve/repair")
	work := resetConflicts(c.Color, d.Bridges)
	rep.Conflicted = int64(len(work))
	st = eng.Repair(g, c.Color, work)
	sp.Add("conflicts", rep.Conflicted)
	sp.Add("rounds", int64(st.Rounds))
	sp.End()
	rep.Rounds += st.Rounds
	rep.Solve = time.Since(start)
	return c, rep
}

// ColorRand is the paper's Algorithm 8: color the k random induced
// subgraphs with an identical palette, collect the endpoints of
// monochromatic cross edges, and recolor them along with G_{k+1} — i.e.
// against the full graph.
func ColorRand(g *graph.Graph, k int, seed uint64, eng Engine) (*Coloring, Report) {
	rep := Report{Strategy: "COLOR-Rand"}
	dsp := trace.Begin("decomp")
	d := decomp.Rand(g, k, seed)
	dsp.End()
	rep.Decomp = d.Elapsed

	start := time.Now()
	c := NewColoring(g.NumVertices())
	sp := trace.Begin("solve/parts")
	for _, part := range d.Parts {
		local, st := eng.Fresh(part.G)
		rep.Rounds += st.Rounds
		mergeColors(c.Color, part, local)
	}
	sp.Add("rounds", int64(rep.Rounds))
	sp.End()
	// Conflicts can only sit on cross edges.
	sp = trace.Begin("solve/repair")
	work := resetConflictsSub(c.Color, d.Cross)
	rep.Conflicted = int64(len(work))
	st := eng.Repair(g, c.Color, work)
	sp.Add("conflicts", rep.Conflicted)
	sp.Add("rounds", int64(st.Rounds))
	sp.End()
	rep.Rounds += st.Rounds
	rep.Solve = time.Since(start)
	return c, rep
}

// ColorMPX is the MPX analogue of Algorithm 7 (an extension beyond the
// paper): grow exponential-shift balls, color their union with a shared
// palette (different balls can only conflict across inter-ball edges),
// then repair the monochromatic inter-ball endpoints against the full
// graph.
func ColorMPX(g *graph.Graph, beta float64, seed uint64, eng Engine) (*Coloring, Report) {
	rep := Report{Strategy: "COLOR-MPX"}
	dsp := trace.Begin("decomp")
	d := decomp.MPX(g, beta, seed)
	dsp.End()
	rep.Decomp = d.Elapsed

	start := time.Now()
	sp := trace.Begin("solve/balls")
	c, st := eng.Fresh(d.Parts[0].G)
	sp.Add("rounds", int64(st.Rounds))
	sp.End()
	rep.Rounds += st.Rounds
	// Conflicts can only sit on inter-ball edges.
	sp = trace.Begin("solve/repair")
	work := resetConflictsSub(c.Color, d.Cross)
	rep.Conflicted = int64(len(work))
	st = eng.Repair(g, c.Color, work)
	sp.Add("conflicts", rep.Conflicted)
	sp.Add("rounds", int64(st.Rounds))
	sp.End()
	rep.Rounds += st.Rounds
	rep.Solve = time.Since(start)
	return c, rep
}

// ColorDegk is the paper's Algorithm 9 (k = 2 in the paper): color the
// high-degree subgraph G_H first; the cross edges G_C cannot conflict
// because only their G_H endpoint is colored. Then color G_L with a fresh
// palette of k+1 colors above max(C_H) using a (k+1)-sized FORBIDDEN array
// — vertices in G_L have degree at most k, so the small palette always
// suffices and no recoloring against G is ever needed.
//
// The decomposition is a single degree classification ("a simple
// computation", per the paper's Figure 2 discussion): no subgraph is
// materialized. The G_H phase runs the engine's Repair with the high
// vertices as the worklist — uncolored low neighbors impose no constraints,
// so it colors exactly G_H. The G_L phase's disjoint palette likewise
// never collides with G_H colors.
func ColorDegk(g *graph.Graph, k int, eng Engine) (*Coloring, Report) {
	rep := Report{Strategy: "COLOR-Degk"}
	n := g.NumVertices()

	dsp := trace.Begin("decomp")
	decompStart := time.Now()
	low := make([]bool, n)
	par.For(n, func(i int) { low[i] = g.Degree(int32(i)) <= int32(k) })
	rep.Decomp = time.Since(decompStart)
	dsp.End()

	start := time.Now()
	c := NewColoring(n)
	lowList, high := gather2(n, func(i int) bool { return low[i] })
	sp := trace.Begin("solve/G_H")
	if len(high) > 0 {
		st := eng.Repair(g, c.Color, high)
		sp.Add("rounds", int64(st.Rounds))
		rep.Rounds += st.Rounds
	}
	sp.End()
	base := c.NumColors() // palette for G_L starts above max(C_H)
	sp = trace.Begin("solve/G_L")
	if len(lowList) > 0 {
		st := boundedPalette(g, c.Color, lowList, base, k+1, eng.Exec)
		sp.Add("rounds", int64(st.Rounds))
		rep.Rounds += st.Rounds
	}
	sp.End()
	rep.Solve = time.Since(start)
	return c, rep
}

// gather2 splits [0, n) by pred into (true, false) vertex lists, in id
// order, with a single parallel pass.
func gather2(n int, pred func(i int) bool) (yes, no []int32) {
	nc := par.NumChunks(n)
	yesBufs := make([][]int32, nc)
	noBufs := make([][]int32, nc)
	par.RangeIdx(n, func(w, lo, hi int) {
		var y, nn []int32
		for i := lo; i < hi; i++ {
			if pred(i) {
				y = append(y, int32(i))
			} else {
				nn = append(nn, int32(i))
			}
		}
		yesBufs[w], noBufs[w] = y, nn
	})
	for w := 0; w < nc; w++ {
		yes = append(yes, yesBufs[w]...)
		no = append(no, noBufs[w]...)
	}
	return yes, no
}

// mergeColors transfers a subgraph coloring into the global array.
func mergeColors(global []int32, sub *graph.Sub, local *Coloring) {
	par.For(len(local.Color), func(j int) {
		global[sub.ToGlobal[j]] = local.Color[j]
	})
}

// resetConflicts uncolors the lower endpoint of every monochromatic edge in
// the list and returns the (deduplicated) worklist of reset vertices.
func resetConflicts(color []int32, edges []graph.Edge) []int32 {
	var work []int32
	for _, e := range edges {
		if color[e.U] == color[e.V] && color[e.U] != Uncolored {
			lo := e.U
			if loses(e.V, e.U) {
				lo = e.V
			}
			if color[lo] != Uncolored {
				color[lo] = Uncolored
				work = append(work, lo)
			}
		}
	}
	return work
}

// resetConflictsSub does the same over all edges of a cross subgraph,
// working in global ids through the Sub's mapping.
func resetConflictsSub(color []int32, cross *graph.Sub) []int32 {
	n := cross.NumVertices()
	reset := make([]bool, n)
	par.For(n, func(j int) {
		v := cross.ToGlobal[j]
		cv := color[v]
		for _, lw := range cross.G.Neighbors(int32(j)) {
			w := cross.ToGlobal[lw]
			if color[w] == cv && loses(v, w) {
				reset[j] = true
				break
			}
		}
	})
	var work []int32
	for j := 0; j < n; j++ {
		if reset[j] {
			v := cross.ToGlobal[j]
			color[v] = Uncolored
			work = append(work, v)
		}
	}
	return work
}

// boundedPalette colors the work vertices of g with the palette
// [base, base+size) using a size-sized FORBIDDEN array, under the engine
// executor. Colors outside the palette (e.g. the G_H phase's) never land in
// the FORBIDDEN window, so only palette-internal conflicts matter. Correct
// whenever every work vertex has degree below size (G_L under DEGk with
// size = k+1); the window widens defensively otherwise.
func boundedPalette(g *graph.Graph, color []int32, work []int32, base int32, size int, exec func(n int, kernel func(i int))) Stats {
	maxDeg := par.Reduce(len(work), int32(0), func(i int) int32 {
		return g.Degree(work[i])
	}, func(a, b int32) int32 {
		if a > b {
			return a
		}
		return b
	})
	if int(maxDeg) >= size {
		size = int(maxDeg) + 1
	}
	var st Stats
	cand := make([]int32, g.NumVertices())

	for len(work) > 0 {
		st.Rounds++
		// Speculate: smallest palette color absent from the neighborhood.
		exec(len(work), func(i int) {
			v := work[i]
			forbidden := make([]bool, size)
			for _, w := range g.Neighbors(v) {
				if cw := color[w]; cw >= base && cw < base+int32(size) {
					forbidden[cw-base] = true
				}
			}
			cand[v] = Uncolored
			for j := 0; j < size; j++ {
				if !forbidden[j] {
					cand[v] = base + int32(j)
					break
				}
			}
		})
		exec(len(work), func(i int) { color[work[i]] = cand[work[i]] })
		// Conflicts: the lower (hashed-id) priority resets.
		exec(len(work), func(i int) {
			v := work[i]
			cv := color[v]
			for _, w := range g.Neighbors(v) {
				if color[w] == cv && loses(v, w) {
					cand[v] = Uncolored
					break
				}
			}
		})
		exec(len(work), func(i int) {
			if cand[work[i]] == Uncolored {
				color[work[i]] = Uncolored
			}
		})
		work = par.Filter(work, func(v int32) bool { return color[v] == Uncolored })
		if trace.Enabled() {
			trace.Append("frontier", int64(len(work)))
		}
	}
	return st
}
