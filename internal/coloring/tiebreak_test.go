package coloring

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/par"
)

func TestLosesTotalOrder(t *testing.T) {
	// loses must be a strict total order: antisymmetric and never
	// reflexive, so exactly one endpoint of every conflict recolors.
	if err := quick.Check(func(a, b int32) bool {
		if a == b {
			return !loses(a, b)
		}
		return loses(a, b) != loses(b, a)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLatticeColoringConvergesFast(t *testing.T) {
	// The motivating pathology for the hashed tie-break: a row-major
	// numbered grid. Literal lowest-id resolution needs O(side) rounds;
	// hashed priorities keep it logarithmic-ish.
	const side = 80
	b := graph.NewBuilder(side * side)
	id := func(i, j int) int32 { return int32(i*side + j) }
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			if j+1 < side {
				b.AddEdge(id(i, j), id(i, j+1))
			}
			if i+1 < side {
				b.AddEdge(id(i, j), id(i+1, j))
			}
		}
	}
	g := b.Build()
	c, st := NewVB().Fresh(g)
	if err := Verify(g, c); err != nil {
		t.Fatal(err)
	}
	if st.Rounds > 25 {
		t.Fatalf("lattice took %d rounds; wave-front pathology is back", st.Rounds)
	}
}

func TestConsecutiveChainColoringConvergesFast(t *testing.T) {
	// Same pathology on a consecutive-id path, through the bounded palette
	// used by COLOR-Degk's G_L phase.
	g := pathGraph(5000)
	color := make([]int32, 5000)
	for i := range color {
		color[i] = Uncolored
	}
	work := make([]int32, 5000)
	par.Iota(work)
	st := boundedPalette(g, color, work, 10, 3, par.For)
	if err := Verify(g, &Coloring{Color: color}); err != nil {
		t.Fatal(err)
	}
	if st.Rounds > 30 {
		t.Fatalf("chain took %d rounds; wave-front pathology is back", st.Rounds)
	}
}

func TestColorDegkMaskedKeepsPalettesDisjoint(t *testing.T) {
	// Random graph: high vertices < base, low vertices in
	// [base, base+k+1).
	g := randomGraph(600, 2400, 5)
	c, _ := ColorDegk(g, 2, NewVB())
	if err := Verify(g, c); err != nil {
		t.Fatal(err)
	}
	var base int32 = -1
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(int32(v)) > 2 && c.Color[v] > base {
			base = c.Color[v]
		}
	}
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(int32(v)) <= 2 {
			if c.Color[v] <= base {
				t.Fatalf("low vertex %d color %d inside high palette (max %d)", v, c.Color[v], base)
			}
			if c.Color[v] > base+3 {
				t.Fatalf("low vertex %d color %d beyond k+1 palette", v, c.Color[v])
			}
		}
	}
}

func TestColorBiconnProper(t *testing.T) {
	for name, g := range testGraphs() {
		for ename, eng := range engines() {
			c, rep := ColorBiconn(g, eng)
			if err := Verify(g, c); err != nil {
				t.Fatalf("%s/%s: %v", ename, name, err)
			}
			if rep.Strategy != "COLOR-Biconn" {
				t.Fatalf("strategy %q", rep.Strategy)
			}
		}
	}
}

func TestColorBiconnBowtieSharesPalette(t *testing.T) {
	// Two triangles sharing vertex 2: the interiors of both triangles
	// color with the same palette {0,1}; the articulation vertex takes a
	// third color at worst.
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(2, 4)
	g := b.Build()
	c, rep := ColorBiconn(g, NewVB())
	if err := Verify(g, c); err != nil {
		t.Fatal(err)
	}
	if rep.Conflicted != 1 {
		t.Fatalf("expected 1 articulation vertex, got %d", rep.Conflicted)
	}
	if c.NumColors() > 3 {
		t.Fatalf("bowtie used %d colors", c.NumColors())
	}
}
