package matching

import (
	"sync/atomic"

	"repro/internal/bsp"
	"repro/internal/graph"
	"repro/internal/trace"
)

// LMAX computes a maximal matching with the paper's GPU baseline
// (Algorithm LMAX, after Birn et al.): every live vertex finds its adjacent
// heaviest live edge; if the two endpoints pick each other the edge enters
// the matching, and matched vertices leave the graph. The process repeats
// until no live edge remains.
//
// The inputs are unweighted, so the edge weight is synthesized from the
// endpoint ids (w(u,v) = u+v, ties broken by a symmetric hash of (seed, u,
// v) and then by ids). Id-derived weights are what make the paper's remark
// hold that "Algorithms GM and LMAX follow a similar model in finding
// potential mates and matches ... a similar trend in the performance": on
// instances whose vertex numbering follows the geometry (rgg, banded
// matrices) the id gradient produces the same long resolution chains that
// give GM its vain tendency. Kernels execute on the bsp virtual manycore
// machine; the launch counter advances by three per round (propose,
// handshake, retire), mirroring the kernel structure of the CUDA
// implementation.
func LMAX(g *graph.Graph, machine *bsp.Machine, seed uint64) (*Matching, Stats) {
	n := g.NumVertices()
	m := NewMatching(n)
	var st Stats
	mate := m.Mate
	cand := make([]int32, n)
	retired := make([]bool, n)

	// As in the standard GPU implementations, every round launches kernels
	// over the full vertex array with a retirement flag check — no live-set
	// compaction. A decomposed phase handed a sparser graph therefore wins
	// by needing fewer full sweeps.
	remaining := int64(0)
	for v := 0; v < n; v++ {
		if g.Degree(int32(v)) > 0 {
			remaining++
		} else {
			retired[v] = true
		}
	}

	// The id-derived weight w({v,a}) = v+a reduces, when comparing two
	// edges at the same vertex, to comparing the neighbor ids — which are
	// distinct, so every vertex's local maximum is unique and no tie-break
	// is needed. (seed is retained in the signature for API stability; id
	// weights need no randomness.)
	_ = seed

	var matched, droppedOut atomic.Int64
	for remaining > 0 {
		st.Rounds++
		// Kernel 1: each live vertex picks its heaviest live edge.
		machine.Launch(n, func(tid int) {
			v := int32(tid)
			if retired[v] {
				return
			}
			best := Unmatched
			for _, w := range g.Neighbors(v) {
				if mate[w] != Unmatched {
					continue
				}
				if w > best {
					best = w
				}
			}
			cand[v] = best
		})
		// Kernel 2: handshake on mutual local maxima.
		machine.Launch(n, func(tid int) {
			v := int32(tid)
			if retired[v] {
				return
			}
			w := cand[v]
			if w != Unmatched && v < w && cand[w] == v {
				mate[v] = w
				mate[w] = v
				matched.Add(1)
			}
		})
		// Kernel 3: retirement (vertices that matched or ran out of live
		// neighbors leave the graph).
		droppedOut.Store(0)
		machine.Launch(n, func(tid int) {
			v := int32(tid)
			if retired[v] {
				return
			}
			if mate[v] != Unmatched || cand[v] == Unmatched {
				retired[v] = true
				droppedOut.Add(1)
			}
		})
		remaining -= droppedOut.Load()
		st.PerRound = append(st.PerRound, matched.Load())
		if trace.Enabled() {
			trace.Append("matched", matched.Load())
			trace.Append("frontier", remaining)
		}
	}
	st.Matched = matched.Load()
	return m, st
}

// LMAXSolver returns LMAX with the machine and seed bound, as an Algorithm.
func LMAXSolver(machine *bsp.Machine, seed uint64) Algorithm {
	return func(g *graph.Graph) (*Matching, Stats) {
		return LMAX(g, machine, seed)
	}
}
