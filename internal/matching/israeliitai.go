package matching

import (
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/par"
)

// IsraeliItai computes a maximal matching with the randomized two-phase
// algorithm of Israeli and Itai (the paper's reference [17], surveyed in
// §III-A): every round, each free vertex proposes to a uniformly random
// free neighbor; a vertex receiving proposals accepts one; each
// accepted pair flips one coin per endpoint and the edge enters the
// matching when proposer and acceptor agree (breaking the symmetry of
// mutual chains). Expected O(log n) rounds.
//
// IsraeliItai is not one of the paper's measured baselines; it exists for
// the matching-baselines comparison (it has no vain tendency, unlike GM,
// which makes the ordering pathology visible by contrast).
func IsraeliItai(g *graph.Graph, seed uint64) (*Matching, Stats) {
	n := g.NumVertices()
	m := NewMatching(n)
	var st Stats
	mate := m.Mate
	prop := make([]int32, n)   // this round's proposal target
	accept := make([]int32, n) // accepted proposer per target

	active := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		if g.Degree(int32(v)) > 0 {
			active = append(active, int32(v))
		}
	}

	var matched atomic.Int64
	for len(active) > 0 {
		st.Rounds++
		roundSeed := par.Hash64(seed, int64(st.Rounds))
		// Phase 1: propose to a random free neighbor (or retire when no
		// free neighbor remains).
		par.Range(len(active), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := active[i]
				ns := g.Neighbors(v)
				free := 0
				for _, w := range ns {
					if mate[w] == Unmatched {
						free++
					}
				}
				if free == 0 {
					prop[v] = Unmatched
					continue
				}
				pick := par.HashRange(roundSeed, int64(v), free)
				for _, w := range ns {
					if mate[w] != Unmatched {
						continue
					}
					if pick == 0 {
						prop[v] = w
						break
					}
					pick--
				}
				accept[v] = Unmatched
			}
		})
		// Phase 2: each proposal target accepts its lowest-id proposer
		// this round (scanning its neighborhood keeps the pass lock free).
		par.Range(len(active), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := active[i]
				best := Unmatched
				for _, w := range g.Neighbors(v) {
					if mate[w] == Unmatched && prop[w] == v {
						best = w
						break // sorted adjacency: first hit is lowest id
					}
				}
				accept[v] = best
			}
		})
		// Phase 3: coin flip — the edge (w → v) matches when w's coin is
		// heads and v's is tails, killing symmetric chains in expectation.
		par.Range(len(active), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := active[i]
				w := accept[v]
				if w == Unmatched {
					continue
				}
				headsW := par.Hash64(roundSeed^0xbeef, int64(w))&1 == 1
				tailsV := par.Hash64(roundSeed^0xbeef, int64(v))&1 == 0
				if headsW && tailsV {
					// v accepts w: both endpoints written from v's side;
					// w proposed only to v this round and v accepted only
					// w, so the pair is private to this iteration.
					mate[v] = w
					mate[w] = v
					matched.Add(1)
				}
			}
		})
		active = par.Filter(active, func(v int32) bool {
			return mate[v] == Unmatched && prop[v] != Unmatched
		})
	}
	st.Matched = matched.Load()
	return m, st
}

// IsraeliItaiSolver returns IsraeliItai as an Algorithm.
func IsraeliItaiSolver(seed uint64) Algorithm {
	return func(g *graph.Graph) (*Matching, Stats) {
		return IsraeliItai(g, seed)
	}
}
