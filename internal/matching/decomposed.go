package matching

import (
	"time"

	"repro/internal/decomp"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/trace"
)

// mergeSub transfers a matching computed on a subgraph into the global mate
// array through the subgraph's local→global map.
func mergeSub(global []int32, sub *graph.Sub, local *Matching) {
	par.For(len(local.Mate), func(j int) {
		w := local.Mate[j]
		if w != Unmatched {
			global[sub.ToGlobal[j]] = sub.ToGlobal[w]
		}
	})
}

// solveOnUnmatched induces sub on its vertices still unmatched in global,
// runs mm there, and merges the result back. Returns the inner rounds.
// This realizes the recurring pseudocode step "V' ← unmatched vertices in
// G_x using M; M' ← MM(G_x[V'])".
func solveOnUnmatched(global []int32, sub *graph.Sub, mm Algorithm) int {
	member := make([]bool, sub.NumVertices())
	par.For(len(member), func(j int) {
		member[j] = global[sub.ToGlobal[j]] == Unmatched
	})
	restricted := graph.InducedSubgraph(sub.G, member)
	// Compose the two mapping levels so merge lands on global ids.
	composed := &graph.Sub{G: restricted.G, ToGlobal: make([]int32, restricted.NumVertices())}
	par.For(restricted.NumVertices(), func(j int) {
		composed.ToGlobal[j] = sub.ToGlobal[restricted.ToGlobal[j]]
	})
	local, st := mm(composed.G)
	mergeSub(global, composed, local)
	if trace.Enabled() {
		trace.Add("rounds", int64(st.Rounds))
		trace.Add("matched", st.Matched)
	}
	return st.Rounds
}

// MMBridge is the paper's Algorithm 4: decompose by bridges, match the
// 2-edge-connected components G_c, then augment with a matching on the
// subgraph of the bridges induced by still-unmatched bridge vertices.
func MMBridge(g *graph.Graph, mm Algorithm) (*Matching, Report) {
	rep := Report{Strategy: "MM-Bridge"}
	dsp := trace.Begin("decomp")
	d := decomp.Bridge(g)
	dsp.End()
	rep.Decomp = d.Elapsed

	start := time.Now()
	m := NewMatching(g.NumVertices())
	// M_c ← MM(G_c). G_c keeps global vertex ids, and its connected
	// components are solved simultaneously by the parallel subroutine.
	sp := trace.Begin("solve/parts")
	mc, st := mm(d.Parts[0].G)
	sp.Add("rounds", int64(st.Rounds))
	sp.Add("matched", st.Matched)
	sp.End()
	rep.Rounds += st.Rounds
	mergeSub(m.Mate, d.Parts[0], mc)
	// M_b ← MM(G_b[V']) on the unmatched bridge vertices.
	sp = trace.Begin("solve/cross")
	rep.Rounds += solveOnUnmatched(m.Mate, d.Cross, mm)
	sp.End()
	rep.Solve = time.Since(start)
	return m, rep
}

// MMRand is the paper's Algorithm 5: random k-way decomposition, one
// matching call on G_IS = ∪ᵢ G[Vᵢ] (Algorithm 5 line 2 takes the union of
// the induced subgraphs, whose components the parallel subroutine processes
// simultaneously), then the cross-edge graph G_{k+1} restricted to
// unmatched vertices. The paper uses k = 10 on the CPU and k = 4 on the
// GPU, raising k toward the average degree on very dense instances.
func MMRand(g *graph.Graph, k int, seed uint64, mm Algorithm) (*Matching, Report) {
	rep := Report{Strategy: "MM-Rand"}
	n := g.NumVertices()

	// Decomposition: the labels, G_IS (same vertex set, intra-part edges),
	// and the cross-edge subgraph G_{k+1}.
	dsp := trace.Begin("decomp")
	decompStart := time.Now()
	label := make([]int32, n)
	par.For(n, func(i int) {
		label[i] = int32(par.HashRange(seed, int64(i), k))
	})
	gis := graph.RemoveEdges(g, func(u, v int32) bool { return label[u] == label[v] })
	cross := graph.EdgeInducedSubgraph(g, func(u, v int32) bool { return label[u] != label[v] })
	rep.Decomp = time.Since(decompStart)
	if trace.Enabled() {
		dsp.Add("parts", int64(k))
		dsp.Add("cross_edges", int64(cross.G.NumEdges()))
	}
	dsp.End()

	start := time.Now()
	m := NewMatching(n)
	// M_IS ← MM(G_IS).
	sp := trace.Begin("solve/parts")
	mi, st := mm(gis)
	sp.Add("rounds", int64(st.Rounds))
	sp.Add("matched", st.Matched)
	sp.End()
	rep.Rounds += st.Rounds
	par.Copy(m.Mate, mi.Mate) // G_IS keeps global vertex ids
	// M_{k+1} ← MM(G_{k+1}[V']).
	sp = trace.Begin("solve/cross")
	rep.Rounds += solveOnUnmatched(m.Mate, cross, mm)
	sp.End()
	rep.Solve = time.Since(start)
	return m, rep
}

// MMMPX is the MPX analogue of Algorithm 5 (an extension beyond the
// paper): grow exponential-shift balls, match the union of the balls
// G_IS = ∪ᵢ G[Bᵢ], then the inter-ball graph restricted to still-unmatched
// vertices. Where RAND fixes the part count k, MPX fixes the rate beta and
// the ball count falls out of the shifts.
func MMMPX(g *graph.Graph, beta float64, seed uint64, mm Algorithm) (*Matching, Report) {
	rep := Report{Strategy: "MM-MPX"}
	n := g.NumVertices()

	dsp := trace.Begin("decomp")
	decompStart := time.Now()
	info := decomp.MPXGrow(g, beta, seed)
	center := info.Center
	gis := graph.RemoveEdges(g, func(u, v int32) bool { return center[u] == center[v] })
	cross := graph.EdgeInducedSubgraph(g, func(u, v int32) bool { return center[u] != center[v] })
	rep.Decomp = time.Since(decompStart)
	if trace.Enabled() {
		dsp.Add("parts", int64(info.Balls))
		dsp.Add("cross_edges", int64(cross.G.NumEdges()))
	}
	dsp.End()

	start := time.Now()
	m := NewMatching(n)
	// M_IS ← MM(G_IS): the balls' union keeps global vertex ids.
	sp := trace.Begin("solve/parts")
	mi, st := mm(gis)
	sp.Add("rounds", int64(st.Rounds))
	sp.Add("matched", st.Matched)
	sp.End()
	rep.Rounds += st.Rounds
	par.Copy(m.Mate, mi.Mate)
	// The inter-ball edges on unmatched vertices.
	sp = trace.Begin("solve/cross")
	rep.Rounds += solveOnUnmatched(m.Mate, cross, mm)
	sp.End()
	rep.Solve = time.Since(start)
	return m, rep
}

// MMDegk is the paper's Algorithm 6: degree-k decomposition (k = 2 in the
// paper), match the high-degree subgraph G_H first, then G_L ∪ G_C
// restricted to unmatched vertices.
func MMDegk(g *graph.Graph, k int, mm Algorithm) (*Matching, Report) {
	rep := Report{Strategy: "MM-Degk"}
	n := g.NumVertices()

	// Decomposition: classify by degree, materialize G_H and G_LC = G_L ∪
	// G_C (every edge with at least one low-degree endpoint).
	dsp := trace.Begin("decomp")
	decompStart := time.Now()
	low := make([]bool, n)
	par.For(n, func(i int) { low[i] = g.Degree(int32(i)) <= int32(k) })
	gh := graph.RemoveEdges(g, func(u, v int32) bool { return !low[u] && !low[v] })
	glc := graph.EdgeInducedSubgraph(g, func(u, v int32) bool { return low[u] || low[v] })
	rep.Decomp = time.Since(decompStart)
	if trace.Enabled() {
		dsp.Add("parts", 2)
		dsp.Add("cross_edges", int64(glc.G.NumEdges()))
	}
	dsp.End()

	start := time.Now()
	m := NewMatching(n)
	// M_H ← MM(G_H).
	sp := trace.Begin("solve/G_H")
	mh, st := mm(gh)
	sp.Add("rounds", int64(st.Rounds))
	sp.Add("matched", st.Matched)
	sp.End()
	rep.Rounds += st.Rounds
	par.Copy(m.Mate, mh.Mate) // G_H kept global vertex ids
	// M_LC ← MM(G_LC[V']).
	sp = trace.Begin("solve/G_LC")
	rep.Rounds += solveOnUnmatched(m.Mate, glc, mm)
	sp.End()
	rep.Solve = time.Since(start)
	return m, rep
}
