package matching

import (
	"testing"

	"repro/internal/bsp"
	"repro/internal/graph"
)

func TestMMRandDeterministicUnderSeed(t *testing.T) {
	g := randomGraph(500, 2500, 6)
	a, _ := MMRand(g, 10, 9, GMSolver())
	b, _ := MMRand(g, 10, 9, GMSolver())
	for i := range a.Mate {
		if a.Mate[i] != b.Mate[i] {
			t.Fatalf("MM-Rand differs at %d under same seed", i)
		}
	}
}

func TestMMRandDecompAccounted(t *testing.T) {
	g := randomGraph(2000, 10000, 2)
	_, rep := MMRand(g, 10, 1, GMSolver())
	if rep.Decomp <= 0 || rep.Solve <= 0 {
		t.Fatalf("report %+v", rep)
	}
	if rep.Rounds <= 0 {
		t.Fatal("no rounds recorded")
	}
}

func TestMMRandSinglePartDegeneratesToBaseline(t *testing.T) {
	// k=1: G_IS = G, no cross edges; cardinality must match plain GM.
	g := randomGraph(300, 1500, 3)
	m1, _ := MMRand(g, 1, 5, GMSolver())
	m2, _ := GM(g)
	if m1.Cardinality() != m2.Cardinality() {
		t.Fatalf("k=1 cardinality %d, GM %d", m1.Cardinality(), m2.Cardinality())
	}
	if err := Verify(g, m1); err != nil {
		t.Fatal(err)
	}
}

func TestMMDegkHighPhaseOnlyMatchesHighPairs(t *testing.T) {
	// Star: center deg n-1 (high), leaves deg 1 (low). G_H has no edges →
	// M_H empty; the entire matching must come from the G_LC phase.
	g := starGraph(20)
	m, rep := MMDegk(g, 2, GMSolver())
	if err := Verify(g, m); err != nil {
		t.Fatal(err)
	}
	if m.Cardinality() != 1 {
		t.Fatalf("star matching cardinality %d", m.Cardinality())
	}
	if rep.Strategy != "MM-Degk" {
		t.Fatalf("strategy %q", rep.Strategy)
	}
}

func TestLMAXIdWeightStarPicksMaxLeaf(t *testing.T) {
	// With w(u,v) = u+v the center's heaviest edge goes to the max-id
	// leaf, which must reciprocate: the matching is {0, n-1}.
	machine := bsp.New()
	m, st := LMAX(starGraph(12), machine, 1)
	if m.Mate[0] != 11 || m.Mate[11] != 0 {
		t.Fatalf("star matched %d-%d, want 0-11", 0, m.Mate[0])
	}
	// Round 1 matches {0, 11}; round 2 retires the remaining leaves.
	if st.Rounds != 2 {
		t.Fatalf("star took %d rounds, want 2", st.Rounds)
	}
}

func TestGMInterleavedStarsStress(t *testing.T) {
	// Interleaved stars plus a ring: adjacency cursors have to skip long
	// matched prefixes; the result must still be a maximal matching.
	bld := graph.NewBuilder(3000)
	for i := int32(0); i < 1000; i++ {
		bld.AddEdge(i, i+1000)
		bld.AddEdge(i, i+2000)
		bld.AddEdge(i, (i+1)%1000)
	}
	g := bld.Build()
	m, _ := GM(g)
	if err := Verify(g, m); err != nil {
		t.Fatal(err)
	}
}

func TestMMBiconnMaximal(t *testing.T) {
	for name, g := range testGraphs() {
		m, rep := MMBiconn(g, GMSolver())
		if err := Verify(g, m); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Strategy != "MM-Biconn" {
			t.Fatalf("strategy %q", rep.Strategy)
		}
	}
}
