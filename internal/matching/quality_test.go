package matching

import (
	"testing"
	"testing/quick"

	"repro/internal/bsp"
	"repro/internal/graph"
)

// maxMatchingBrute computes the maximum matching cardinality by branching
// on each edge (include/skip). Exponential; for tiny oracle graphs only.
func maxMatchingBrute(g *graph.Graph) int {
	edges := g.Edges()
	used := make([]bool, g.NumVertices())
	var best int
	var rec func(i, size int)
	rec = func(i, size int) {
		if size > best {
			best = size
		}
		// Prune: even taking every remaining edge cannot beat best.
		if size+(len(edges)-i) <= best {
			return
		}
		for j := i; j < len(edges); j++ {
			e := edges[j]
			if used[e.U] || used[e.V] {
				continue
			}
			used[e.U], used[e.V] = true, true
			rec(j+1, size+1)
			used[e.U], used[e.V] = false, false
		}
	}
	rec(0, 0)
	return best
}

func TestMaxMatchingBruteKnown(t *testing.T) {
	cases := []struct {
		g    *graph.Graph
		want int
	}{
		{pathGraph(2), 1},
		{pathGraph(5), 2},
		{pathGraph(6), 3},
		{cycleGraph(5), 2},
		{cycleGraph(6), 3},
		{starGraph(6), 1},
		{completeGraph(6), 3},
	}
	for i, c := range cases {
		if got := maxMatchingBrute(c.g); got != c.want {
			t.Fatalf("case %d: max matching %d, want %d", i, got, c.want)
		}
	}
}

// TestMaximalIsHalfApprox checks the classic guarantee on random small
// graphs: every maximal matching has at least half the maximum cardinality.
func TestMaximalIsHalfApprox(t *testing.T) {
	machine := bsp.New()
	algs := map[string]Algorithm{
		"GM":          GMSolver(),
		"LMAX":        LMAXSolver(machine, 1),
		"IsraeliItai": IsraeliItaiSolver(1),
	}
	check := func(raw []uint16) bool {
		b := graph.NewBuilder(9)
		for i := 0; i+1 < len(raw); i += 2 {
			b.AddEdge(int32(raw[i]%9), int32(raw[i+1]%9))
		}
		g := b.Build()
		opt := maxMatchingBrute(g)
		for name, alg := range algs {
			m, _ := alg(g)
			if err := Verify(g, m); err != nil {
				t.Logf("%s: %v", name, err)
				return false
			}
			if 2*m.Cardinality() < int64(opt) {
				t.Logf("%s: |M|=%d below half of ν=%d", name, m.Cardinality(), opt)
				return false
			}
		}
		// The decomposed algorithms inherit the guarantee.
		for _, m := range []*Matching{
			first(MMRand(g, 3, 2, GMSolver())),
			first(MMDegk(g, 2, GMSolver())),
			first(MMBridge(g, GMSolver())),
			first(MMBiconn(g, GMSolver())),
		} {
			if 2*m.Cardinality() < int64(opt) {
				t.Logf("decomposed |M|=%d below half of ν=%d", m.Cardinality(), opt)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func first(m *Matching, _ Report) *Matching { return m }

func TestVertexCoverValidAndTwoApprox(t *testing.T) {
	if err := quick.Check(func(raw []uint16) bool {
		b := graph.NewBuilder(10)
		for i := 0; i+1 < len(raw); i += 2 {
			b.AddEdge(int32(raw[i]%10), int32(raw[i+1]%10))
		}
		g := b.Build()
		m, _ := GM(g)
		cover := VertexCover(g, m)
		if err := VerifyCover(g, cover); err != nil {
			t.Log(err)
			return false
		}
		// |cover| = 2|M| ≤ 2·ν(G) ≤ 2·OPT_VC.
		if int64(len(cover)) != 2*m.Cardinality() {
			return false
		}
		if len(cover) > 2*maxMatchingBrute(g) {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
	// Bad covers rejected.
	g := pathGraph(3)
	if VerifyCover(g, nil) == nil {
		t.Fatal("empty cover accepted for a path")
	}
	if VerifyCover(g, []int32{99}) == nil {
		t.Fatal("out-of-range cover vertex accepted")
	}
}
