package matching

import (
	"testing"

	"repro/internal/bsp"
	"repro/internal/graph"
	"repro/internal/par"
)

func pathGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.Build()
}

func cycleGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(int32(i), int32((i+1)%n))
	}
	return b.Build()
}

func completeGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	return b.Build()
}

func starGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, int32(i))
	}
	return b.Build()
}

func randomGraph(n, m int, seed uint64) *graph.Graph {
	r := par.NewRNG(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	return b.Build()
}

func paperGraph() *graph.Graph {
	b := graph.NewBuilder(8)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(5, 6)
	b.AddEdge(3, 6)
	b.AddEdge(6, 7)
	return b.Build()
}

// testGraphs is the shared corpus for maximality checks.
func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"empty":       graph.NewBuilder(0).Build(),
		"isolated":    graph.NewBuilder(10).Build(),
		"single":      pathGraph(2),
		"path":        pathGraph(101),
		"cycle-even":  cycleGraph(50),
		"cycle-odd":   cycleGraph(51),
		"complete":    completeGraph(20),
		"star":        starGraph(30),
		"paper":       paperGraph(),
		"rand-sparse": randomGraph(500, 600, 1),
		"rand-dense":  randomGraph(300, 5000, 2),
	}
}

func TestVerifyCatchesBadMatchings(t *testing.T) {
	g := pathGraph(4)
	// Valid maximal matching: (0,1), (2,3).
	m := NewMatching(4)
	m.Mate = []int32{1, 0, 3, 2}
	if err := Verify(g, m); err != nil {
		t.Fatalf("valid matching rejected: %v", err)
	}
	// Asymmetric.
	m.Mate = []int32{1, Unmatched, Unmatched, Unmatched}
	if Verify(g, m) == nil {
		t.Fatal("asymmetric matching accepted")
	}
	// Non-edge pair.
	m.Mate = []int32{2, Unmatched, 0, Unmatched}
	if Verify(g, m) == nil {
		t.Fatal("non-edge pair accepted")
	}
	// Not maximal (edge {2,3} free).
	m.Mate = []int32{1, 0, Unmatched, Unmatched}
	if Verify(g, m) == nil {
		t.Fatal("non-maximal matching accepted")
	}
	// Out of range.
	m.Mate = []int32{9, 0, 3, 2}
	if Verify(g, m) == nil {
		t.Fatal("out-of-range mate accepted")
	}
	// Wrong length.
	if Verify(g, NewMatching(3)) == nil {
		t.Fatal("wrong-length matching accepted")
	}
}

func TestGMMaximalOnCorpus(t *testing.T) {
	for name, g := range testGraphs() {
		m, st := GM(g)
		if err := Verify(g, m); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.Matched != m.Cardinality() {
			t.Fatalf("%s: Stats.Matched %d != cardinality %d", name, st.Matched, m.Cardinality())
		}
	}
}

func TestGMKnownCardinalities(t *testing.T) {
	// Path on 101 vertices: GM matches greedily from the low end →
	// (0,1),(2,3),... = 50 edges.
	m, _ := GM(pathGraph(101))
	if m.Cardinality() != 50 {
		t.Fatalf("path cardinality %d, want 50", m.Cardinality())
	}
	// Star: exactly one edge.
	m, _ = GM(starGraph(30))
	if m.Cardinality() != 1 {
		t.Fatalf("star cardinality %d, want 1", m.Cardinality())
	}
	// Complete graph on 20: perfect matching of 10 edges.
	m, _ = GM(completeGraph(20))
	if m.Cardinality() != 10 {
		t.Fatalf("K20 cardinality %d, want 10", m.Cardinality())
	}
}

func TestGMVainTendencyOnPath(t *testing.T) {
	// The documented pathology: on a path, GM matches one edge per round
	// from the chain's low end, so rounds grow linearly.
	_, st := GM(pathGraph(64))
	if st.Rounds < 30 {
		t.Fatalf("GM on a 64-path took %d rounds; expected the vain tendency (≈32)", st.Rounds)
	}
}

func TestGMDeterministic(t *testing.T) {
	g := randomGraph(400, 2000, 3)
	m1, s1 := GM(g)
	m2, s2 := GM(g)
	if s1.Rounds != s2.Rounds || s1.Matched != s2.Matched {
		t.Fatal("GM stats differ across runs")
	}
	for i := range m1.Mate {
		if m1.Mate[i] != m2.Mate[i] {
			t.Fatalf("GM mate differs at %d", i)
		}
	}
}

func TestLMAXMaximalOnCorpus(t *testing.T) {
	machine := bsp.New()
	for name, g := range testGraphs() {
		m, st := LMAX(g, machine, 42)
		if err := Verify(g, m); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.Matched != m.Cardinality() {
			t.Fatalf("%s: Stats.Matched %d != cardinality %d", name, st.Matched, m.Cardinality())
		}
	}
}

func TestLMAXIdChainVainTendency(t *testing.T) {
	// With id-derived edge weights LMAX shares GM's vain tendency on
	// id-ordered chains (the paper: "GM and LMAX follow a similar model
	// ... a similar trend"): on an ordered path the heaviest edge resolves
	// from the top one match per round.
	machine := bsp.New()
	_, st := LMAX(pathGraph(256), machine, 7)
	if st.Rounds < 100 {
		t.Fatalf("LMAX took %d rounds on an ordered 256-path; expected ≈ n/2 id-chain rounds", st.Rounds)
	}
}

func TestLMAXKernelAccounting(t *testing.T) {
	machine := bsp.New()
	_, st := LMAX(cycleGraph(100), machine, 1)
	s := machine.Stats()
	if s.Launches != int64(3*st.Rounds) {
		t.Fatalf("launches = %d, want 3 per round × %d rounds", s.Launches, st.Rounds)
	}
}

func TestLMAXDeterministicUnderSeed(t *testing.T) {
	g := randomGraph(300, 1500, 9)
	m1, _ := LMAX(g, bsp.New(), 5)
	m2, _ := LMAX(g, bsp.New(), 5)
	for i := range m1.Mate {
		if m1.Mate[i] != m2.Mate[i] {
			t.Fatalf("LMAX differs at %d under same seed", i)
		}
	}
}

func TestDecomposedMatchingsMaximal(t *testing.T) {
	machine := bsp.New()
	solvers := map[string]Algorithm{
		"GM":   GMSolver(),
		"LMAX": LMAXSolver(machine, 11),
	}
	for sname, mm := range solvers {
		for gname, g := range testGraphs() {
			runs := []struct {
				name string
				run  func() (*Matching, Report)
			}{
				{"MM-Bridge", func() (*Matching, Report) { return MMBridge(g, mm) }},
				{"MM-Rand", func() (*Matching, Report) { return MMRand(g, 4, 3, mm) }},
				{"MM-Degk", func() (*Matching, Report) { return MMDegk(g, 2, mm) }},
			}
			for _, r := range runs {
				m, rep := r.run()
				if err := Verify(g, m); err != nil {
					t.Fatalf("%s/%s/%s: %v", r.name, sname, gname, err)
				}
				if rep.Strategy != r.name {
					t.Fatalf("report strategy %q, want %q", rep.Strategy, r.name)
				}
			}
		}
	}
}

func TestMMRandAvoidsVainTendency(t *testing.T) {
	// The paper's headline MM effect: on chain-heavy graphs the random
	// decomposition needs far fewer total rounds than plain GM.
	g := pathGraph(4096)
	_, gmStats := GM(g)
	_, rep := MMRand(g, 10, 1, GMSolver())
	if rep.Rounds >= gmStats.Rounds {
		t.Fatalf("MM-Rand rounds %d not below GM rounds %d", rep.Rounds, gmStats.Rounds)
	}
}

func TestReportTotal(t *testing.T) {
	g := randomGraph(500, 2500, 4)
	_, rep := MMRand(g, 4, 9, GMSolver())
	if rep.Total() != rep.Decomp+rep.Solve {
		t.Fatal("Total != Decomp + Solve")
	}
	if rep.Decomp <= 0 || rep.Solve <= 0 {
		t.Fatalf("degenerate report %+v", rep)
	}
}

func TestCardinalityEmptyAndNew(t *testing.T) {
	m := NewMatching(5)
	if m.Cardinality() != 0 {
		t.Fatal("fresh matching has nonzero cardinality")
	}
	for _, v := range m.Mate {
		if v != Unmatched {
			t.Fatal("fresh matching not all Unmatched")
		}
	}
}
