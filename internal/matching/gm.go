package matching

import (
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/trace"
)

// GM computes a maximal matching with the paper's multicore CPU baseline:
// every unmatched vertex proposes to its lowest-id unmatched neighbor (the
// "potential mate"); mutual proposals become matched edges; the round
// repeats on the surviving vertices. This is the implementation the paper
// describes for Algorithm GM and it deliberately exhibits the paper's
// "vain tendency": a long chain of proposals yields only one matched edge
// per round, so instances like rgg need thousands of rounds.
//
// Each vertex keeps a cursor into its sorted adjacency list that only moves
// forward (matched-ness is monotone), so the total scan work is O(m) plus
// O(active) per round.
func GM(g *graph.Graph) (*Matching, Stats) {
	n := g.NumVertices()
	m := NewMatching(n)
	var st Stats

	cur := make([]int32, n)  // per-vertex adjacency cursor
	prop := make([]int32, n) // this round's proposal target
	mate := m.Mate

	active := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		if g.Degree(int32(v)) > 0 {
			active = append(active, int32(v))
		}
	}

	var matched atomic.Int64
	for len(active) > 0 {
		st.Rounds++
		// Proposal phase: cursor past matched neighbors, propose to the
		// first unmatched one.
		par.Range(len(active), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := active[i]
				ns := g.Neighbors(v)
				c := cur[v]
				for int(c) < len(ns) && mate[ns[c]] != Unmatched {
					c++
				}
				cur[v] = c
				if int(c) < len(ns) {
					prop[v] = ns[c]
				} else {
					prop[v] = Unmatched // no unmatched neighbor left: retire
				}
			}
		})
		// Handshake phase: mutual proposals match. Distinct pairs never
		// share a vertex (prop is a function), so the writes are disjoint.
		par.Range(len(active), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := active[i]
				w := prop[v]
				if w != Unmatched && v < w && prop[w] == v {
					mate[v] = w
					mate[w] = v
					matched.Add(1)
				}
			}
		})
		active = par.Filter(active, func(v int32) bool {
			return mate[v] == Unmatched && prop[v] != Unmatched
		})
		st.PerRound = append(st.PerRound, matched.Load())
		if trace.Enabled() {
			trace.Append("matched", matched.Load())
			trace.Append("frontier", int64(len(active)))
		}
	}
	st.Matched = matched.Load()
	return m, st
}

// GMSolver returns GM as an Algorithm value.
func GMSolver() Algorithm { return GM }
