package matching

import (
	"time"

	"repro/internal/biconn"
	"repro/internal/graph"
	"repro/internal/par"
)

// MMBiconn is an extension beyond the paper's three decompositions: the
// biconnected-component decomposition the paper's related work traces to
// Hochbaum. Non-articulation vertices of different blocks are never
// adjacent, so the first phase matches the subgraph induced by them (all
// blocks minus their cut vertices, simultaneously); the second phase
// extends the matching across the articulation points.
func MMBiconn(g *graph.Graph, mm Algorithm) (*Matching, Report) {
	rep := Report{Strategy: "MM-Biconn"}
	decompStart := time.Now()
	bc := biconn.Blocks(g)
	rep.Decomp = time.Since(decompStart)

	start := time.Now()
	n := g.NumVertices()
	m := NewMatching(n)
	member := make([]bool, n)
	par.For(n, func(i int) { member[i] = !bc.IsArticulation[i] })
	inner := graph.InducedSubgraph(g, member)
	mi, st := mm(inner.G)
	rep.Rounds += st.Rounds
	mergeSub(m.Mate, inner, mi)
	// Extend across the cut vertices (the whole residual graph, as in the
	// other algorithms' final phases).
	rep.Rounds += solveOnUnmatched(m.Mate, graph.IdentitySub(g), mm)
	rep.Solve = time.Since(start)
	return m, rep
}
