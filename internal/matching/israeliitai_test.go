package matching

import "testing"

func TestIsraeliItaiMaximalOnCorpus(t *testing.T) {
	for name, g := range testGraphs() {
		m, st := IsraeliItai(g, 11)
		if err := Verify(g, m); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.Matched != m.Cardinality() {
			t.Fatalf("%s: Stats.Matched %d != %d", name, st.Matched, m.Cardinality())
		}
	}
}

func TestIsraeliItaiNoVainTendency(t *testing.T) {
	// Unlike GM, the randomized proposals finish a long ordered path in
	// O(log n)-ish rounds — the contrast that isolates GM's ordering
	// pathology.
	_, ii := IsraeliItai(pathGraph(4096), 3)
	_, gm := GM(pathGraph(4096))
	if ii.Rounds*10 > gm.Rounds {
		t.Fatalf("Israeli–Itai rounds %d not far below GM's %d", ii.Rounds, gm.Rounds)
	}
}

func TestIsraeliItaiDeterministicUnderSeed(t *testing.T) {
	g := randomGraph(400, 2000, 5)
	a, _ := IsraeliItai(g, 9)
	b, _ := IsraeliItai(g, 9)
	for i := range a.Mate {
		if a.Mate[i] != b.Mate[i] {
			t.Fatalf("differs at %d under same seed", i)
		}
	}
}

func TestIsraeliItaiAsDecompositionSubroutine(t *testing.T) {
	g := randomGraph(500, 2500, 7)
	for _, run := range []func() (*Matching, Report){
		func() (*Matching, Report) { return MMBridge(g, IsraeliItaiSolver(2)) },
		func() (*Matching, Report) { return MMRand(g, 5, 2, IsraeliItaiSolver(2)) },
		func() (*Matching, Report) { return MMDegk(g, 2, IsraeliItaiSolver(2)) },
	} {
		m, _ := run()
		if err := Verify(g, m); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGreedyRandomMaximalOnCorpus(t *testing.T) {
	for name, g := range testGraphs() {
		m, st := GreedyRandom(g, 5)
		if err := Verify(g, m); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.Matched != m.Cardinality() {
			t.Fatalf("%s: Stats.Matched %d != %d", name, st.Matched, m.Cardinality())
		}
	}
}

func TestGreedyRandomNoVainTendency(t *testing.T) {
	// Random edge priorities: the dependence depth on a chain is
	// logarithmic, unlike GM's lowest-id modification.
	_, gr := GreedyRandom(pathGraph(4096), 7)
	_, gm := GM(pathGraph(4096))
	if gr.Rounds*10 > gm.Rounds {
		t.Fatalf("GreedyRandom rounds %d not far below GM's %d", gr.Rounds, gm.Rounds)
	}
}

func TestGreedyRandomDeterministicAndSeedSensitive(t *testing.T) {
	g := randomGraph(400, 2000, 9)
	a, _ := GreedyRandom(g, 3)
	b, _ := GreedyRandom(g, 3)
	for i := range a.Mate {
		if a.Mate[i] != b.Mate[i] {
			t.Fatalf("differs at %d under same seed", i)
		}
	}
	c, _ := GreedyRandom(g, 4)
	same := true
	for i := range a.Mate {
		if a.Mate[i] != c.Mate[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical matchings (suspicious)")
	}
}
