package matching

import (
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/par"
)

// GreedyRandom is the unmodified algorithm of Blelloch et al. [6]: random
// priorities on the edges induce a DAG, and each round the roots — edges
// with no higher-priority neighboring edge — enter the matching, with the
// dependence depth O(log² n) w.h.p. The paper's GM baseline replaces the
// random priorities with lowest-vertex-id mate selection ("we use the
// vertex numbers to help in the selection of potential mates"), which is
// what creates the vain tendency; GreedyRandom is the reference point
// without that modification.
//
// A vertex-centric implementation: each free vertex points at its
// minimum-priority incident live edge; an edge is a root when both
// endpoints point at it.
func GreedyRandom(g *graph.Graph, seed uint64) (*Matching, Stats) {
	n := g.NumVertices()
	m := NewMatching(n)
	var st Stats
	mate := m.Mate
	prop := make([]int32, n)

	prio := func(u, v int32) uint64 { return par.Hash2(seed, int64(u), int64(v)) }

	active := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		if g.Degree(int32(v)) > 0 {
			active = append(active, int32(v))
		}
	}

	var matched atomic.Int64
	for len(active) > 0 {
		st.Rounds++
		// Each free vertex selects its minimum-priority live edge.
		par.Range(len(active), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := active[i]
				best := Unmatched
				var bestP uint64
				for _, w := range g.Neighbors(v) {
					if mate[w] != Unmatched {
						continue
					}
					p := prio(v, w)
					if best == Unmatched || p < bestP || (p == bestP && w < best) {
						best, bestP = w, p
					}
				}
				prop[v] = best
			}
		})
		// Roots: mutual minimum edges join the matching.
		par.Range(len(active), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := active[i]
				w := prop[v]
				if w != Unmatched && v < w && prop[w] == v {
					mate[v] = w
					mate[w] = v
					matched.Add(1)
				}
			}
		})
		active = par.Filter(active, func(v int32) bool {
			return mate[v] == Unmatched && prop[v] != Unmatched
		})
	}
	st.Matched = matched.Load()
	return m, st
}

// GreedyRandomSolver returns GreedyRandom as an Algorithm.
func GreedyRandomSolver(seed uint64) Algorithm {
	return func(g *graph.Graph) (*Matching, Stats) {
		return GreedyRandom(g, seed)
	}
}
