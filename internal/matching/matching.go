// Package matching implements the paper's maximal matching algorithms
// (Section III): the multicore baseline GM (greedy handshake matching with
// lowest-id potential mates, after Blelloch et al.), the GPU baseline LMAX
// (local-max edge-weight matching, after Birn et al., executed on the bsp
// virtual manycore), and the three decomposition-based algorithms
// MM-Bridge, MM-Rand and MM-Degk (Algorithms 4–6).
package matching

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/par"
)

// Unmatched marks a vertex with no matching partner.
const Unmatched int32 = -1

// Matching is a matching over a graph: Mate[v] is v's partner, or Unmatched.
type Matching struct {
	Mate []int32
}

// NewMatching returns an empty matching over n vertices.
func NewMatching(n int) *Matching {
	m := &Matching{Mate: make([]int32, n)}
	par.Fill(m.Mate, Unmatched)
	return m
}

// Cardinality reports the number of matched edges.
func (m *Matching) Cardinality() int64 {
	return par.Count(len(m.Mate), func(i int) bool {
		return m.Mate[i] != Unmatched && m.Mate[i] > int32(i)
	})
}

// Verify checks that m is a valid maximal matching of g: Mate is symmetric,
// every matched pair is an edge of g, and no edge of g has both endpoints
// unmatched. Returns nil when all hold.
func Verify(g *graph.Graph, m *Matching) error {
	n := g.NumVertices()
	if len(m.Mate) != n {
		return fmt.Errorf("matching: Mate has %d entries, graph has %d vertices", len(m.Mate), n)
	}
	for v := 0; v < n; v++ {
		w := m.Mate[v]
		if w == Unmatched {
			continue
		}
		if w < 0 || int(w) >= n {
			return fmt.Errorf("matching: Mate[%d] = %d out of range", v, w)
		}
		if m.Mate[w] != int32(v) {
			return fmt.Errorf("matching: Mate[%d] = %d but Mate[%d] = %d", v, w, w, m.Mate[w])
		}
		if !g.HasEdge(int32(v), w) {
			return fmt.Errorf("matching: pair {%d,%d} is not an edge", v, w)
		}
	}
	var bad error
	for v := 0; v < n && bad == nil; v++ {
		if m.Mate[v] != Unmatched {
			continue
		}
		for _, w := range g.Neighbors(int32(v)) {
			if m.Mate[w] == Unmatched {
				bad = fmt.Errorf("matching: not maximal, edge {%d,%d} has both endpoints free", v, w)
				break
			}
		}
	}
	return bad
}

// Stats reports work counters for a matching run.
type Stats struct {
	// Rounds is the number of proposal/handshake iterations executed.
	Rounds int
	// Matched is the number of edges the run added to the matching.
	Matched int64
	// PerRound is the cumulative number of matched edges after each round
	// — the progress curve behind the paper's §III-C observation that
	// MM-Rand matches ~70% of the induced-subgraph vertices within 17
	// iterations while GM needs ~14,000 iterations on rgg.
	PerRound []int64
}

// Algorithm is a configured maximal matching subroutine: it computes a
// maximal matching on any graph handed to it. The decomposition-based
// algorithms take one as the inner solver, exactly as the paper uses GM on
// the CPU and LMAX on the GPU as subroutines.
type Algorithm func(g *graph.Graph) (*Matching, Stats)

// Report describes a full decomposition-based run.
type Report struct {
	// Strategy names the algorithm ("MM-Rand" etc.).
	Strategy string
	// Decomp is the decomposition wall time.
	Decomp time.Duration
	// Solve is the wall time of all matching phases.
	Solve time.Duration
	// Rounds accumulates the inner solver's iterations across phases.
	Rounds int
}

// Total is the end-to-end wall time (decomposition + solving).
func (r Report) Total() time.Duration { return r.Decomp + r.Solve }

// VertexCover returns the endpoints of the matching — the classic
// 2-approximate vertex cover, the application Hochbaum's decomposition
// paper (the paper's reference [16]) targets. The result is a valid cover
// whenever m is maximal: an uncovered edge would have two unmatched
// endpoints, contradicting maximality.
func VertexCover(g *graph.Graph, m *Matching) []int32 {
	cover := make([]int32, 0, 2*m.Cardinality())
	for v, w := range m.Mate {
		if w != Unmatched {
			cover = append(cover, int32(v))
		}
	}
	return cover
}

// VerifyCover checks that the vertex set covers every edge of g.
func VerifyCover(g *graph.Graph, cover []int32) error {
	in := make([]bool, g.NumVertices())
	for _, v := range cover {
		if v < 0 || int(v) >= g.NumVertices() {
			return fmt.Errorf("matching: cover vertex %d out of range", v)
		}
		in[v] = true
	}
	var bad error
	g.ForEachEdgePar(func(u, v int32) {
		if !in[u] && !in[v] && bad == nil {
			bad = fmt.Errorf("matching: edge {%d,%d} uncovered", u, v)
		}
	})
	return bad
}
