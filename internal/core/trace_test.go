package core

import (
	"testing"

	"repro/internal/trace"
)

// TestTracePhaseCoverage checks the observability contract the docs promise:
// with tracing on, every Solve produces a span tree whose top-level span
// wraps the whole call and whose phase children account for (almost) all of
// it — the per-phase times must sum to the solver's wall clock up to the
// instrumentation's own overhead. The bound here is looser than the 5%
// documented for benchall-sized runs because these test graphs solve in
// microseconds, where fixed span overhead weighs proportionally more.
func TestTracePhaseCoverage(t *testing.T) {
	g := randomGraph(4000, 40000, 3)
	trace.Enable(true)
	defer trace.Enable(false)

	for _, p := range []Problem{ProblemMM, ProblemColor, ProblemMIS} {
		for _, s := range []Strategy{StrategyBaseline, StrategyBridge, StrategyRand, StrategyDegk} {
			trace.Reset()
			if _, err := Solve(g, p, Options{Strategy: s, Seed: 7}); err != nil {
				t.Fatalf("%v/%v: %v", p, s, err)
			}
			snap := trace.Snapshot()
			if len(snap.Children) != 1 {
				t.Fatalf("%v/%v: want one top-level span, got %d", p, s, len(snap.Children))
			}
			top := snap.Children[0]
			if top.Dur() <= 0 {
				t.Fatalf("%v/%v: top span has no duration", p, s)
			}
			cover := float64(top.ChildSum()) / float64(top.DurNs)
			if cover < 0.5 || cover > 1.01 {
				t.Errorf("%v/%v: phase spans cover %.0f%% of %v (%s)",
					p, s, cover*100, top.Dur(), top.Name)
			}
			if top.Counter("rounds") <= 0 {
				t.Errorf("%v/%v: top span missing rounds counter", p, s)
			}
			// Decomposed strategies must expose a decomp phase and at
			// least one solve phase.
			if s != StrategyBaseline {
				if top.Find("decomp") == nil {
					t.Errorf("%v/%v: no decomp span", p, s)
				}
				var solves int
				for _, c := range top.Children {
					if len(c.Name) >= 5 && c.Name[:5] == "solve" {
						solves++
					}
				}
				if solves == 0 {
					t.Errorf("%v/%v: no solve/* phase spans", p, s)
				}
			}
		}
	}
}

// TestTraceDisabledProducesNothing pins the zero-cost path at this layer:
// with tracing off, a full Solve must leave the tracer empty.
func TestTraceDisabledProducesNothing(t *testing.T) {
	trace.Enable(false)
	trace.Reset()
	g := randomGraph(500, 2000, 4)
	if _, err := Solve(g, ProblemMIS, Options{Strategy: StrategyDegk, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	snap := trace.Snapshot()
	if len(snap.Children) != 0 || len(snap.Counters) != 0 {
		t.Fatalf("disabled tracer recorded data: %+v", snap)
	}
}
