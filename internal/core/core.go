// Package core is the library's front door: it ties the decompositions
// (internal/decomp) and the three symmetry-breaking problem solvers
// (internal/matching, internal/coloring, internal/mis) into one Solve call,
// with the paper's Table I built in as the automatic strategy choice per
// problem and architecture.
//
// A minimal use:
//
//	res, err := core.Solve(g, core.ProblemMIS, core.Options{})
//	// res.IndepSet is a verified-shape maximal independent set; res.Report
//	// carries decomposition/solve timings and round counts.
package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bsp"
	"repro/internal/coloring"
	"repro/internal/decomp"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/mis"
	"repro/internal/trace"
)

// Problem selects which symmetry-breaking problem to solve.
type Problem int

const (
	// ProblemMM is Maximal Matching (paper Section III).
	ProblemMM Problem = iota
	// ProblemColor is Vertex Coloring (paper Section IV).
	ProblemColor
	// ProblemMIS is Maximal Independent Set (paper Section V).
	ProblemMIS
)

// String returns the paper's name for the problem.
func (p Problem) String() string {
	switch p {
	case ProblemMM:
		return "MM"
	case ProblemColor:
		return "COLOR"
	case ProblemMIS:
		return "MIS"
	default:
		return "UNKNOWN"
	}
}

// Strategy selects the decomposition wrapped around the base algorithm.
type Strategy int

const (
	// StrategyAuto picks the paper's Table I winner for the problem and
	// architecture.
	StrategyAuto Strategy = iota
	// StrategyBaseline runs the base algorithm with no decomposition
	// (GM/VB/LubyMIS on the CPU; LMAX/EB/LubyMIS on the GPU).
	StrategyBaseline
	// StrategyBridge uses the BRIDGE decomposition (Algorithms 4, 7, 10).
	StrategyBridge
	// StrategyRand uses the RAND decomposition (Algorithms 5, 8, 11).
	StrategyRand
	// StrategyDegk uses the DEGk decomposition (Algorithms 6, 9, 12).
	StrategyDegk
	// StrategyMPX uses the Miller–Peng–Xu exponential-shift ball-growing
	// decomposition (an extension beyond the paper's Table I).
	StrategyMPX
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "AUTO"
	case StrategyBaseline:
		return "BASELINE"
	case StrategyBridge:
		return "BRIDGE"
	case StrategyRand:
		return "RAND"
	case StrategyDegk:
		return "DEGk"
	case StrategyMPX:
		return "MPX"
	default:
		return "UNKNOWN"
	}
}

// Arch selects the execution substrate.
type Arch int

const (
	// ArchCPU runs the multicore algorithms on goroutines.
	ArchCPU Arch = iota
	// ArchGPU runs the manycore algorithms on the bsp virtual device
	// (this reproduction's stand-in for the paper's K40c; see DESIGN.md).
	ArchGPU
)

// String names the architecture.
func (a Arch) String() string {
	if a == ArchGPU {
		return "GPU"
	}
	return "CPU"
}

// Options configures Solve. The zero value solves on the CPU with the
// paper's Table I strategy and default parameters.
type Options struct {
	// Strategy is the decomposition to use; StrategyAuto applies Table I.
	Strategy Strategy
	// Arch is the execution substrate.
	Arch Arch
	// RandParts is the RAND partition count k; 0 uses the paper's default
	// (10 on CPU, 4 on GPU).
	RandParts int
	// DegK is the DEGk threshold; 0 uses the paper's k = 2.
	DegK int
	// MPXBeta is the MPX ball-growing rate; 0 uses decomp.DefaultMPXBeta.
	MPXBeta float64
	// Seed drives every randomized component; runs are deterministic
	// under (Seed, options).
	Seed uint64
	// Machine is the virtual GPU to run on when Arch == ArchGPU; nil
	// creates a fresh one.
	Machine *bsp.Machine
}

// Normalized returns the options with the paper's defaults filled in —
// the same resolution Solve applies internally. Callers that key caches or
// coalesce identical requests (the serving layer) normalize first, so a
// request that spells out a default and one that leaves it zero map to the
// same key. Note Normalized materializes a fresh bsp.Machine for GPU
// options with a nil Machine; key builders should hash the scalar fields
// only.
func (o Options) Normalized() Options { return o.withDefaults() }

// withDefaults fills in the paper's defaults.
func (o Options) withDefaults() Options {
	if o.RandParts == 0 {
		if o.Arch == ArchGPU {
			o.RandParts = 4
		} else {
			o.RandParts = 10
		}
	}
	if o.DegK == 0 {
		o.DegK = 2
	}
	if o.MPXBeta == 0 {
		o.MPXBeta = decomp.DefaultMPXBeta
	}
	if o.Arch == ArchGPU && o.Machine == nil {
		o.Machine = bsp.New()
	}
	return o
}

// TableIStrategy returns the paper's best decomposition (Table I) for the
// given problem and architecture: MM→RAND on both; COLOR→DEGk on the CPU
// and no decomposition on the GPU (the paper reports 1× there); MIS→DEGk
// on both.
func TableIStrategy(p Problem, a Arch) Strategy {
	switch p {
	case ProblemMM:
		return StrategyRand
	case ProblemColor:
		if a == ArchGPU {
			return StrategyBaseline
		}
		return StrategyDegk
	case ProblemMIS:
		return StrategyDegk
	default:
		return StrategyBaseline
	}
}

// Report is the unified run report.
type Report struct {
	// Problem, Strategy and Arch echo the resolved configuration.
	Problem  Problem
	Strategy Strategy
	Arch     Arch
	// StrategyName is the concrete algorithm name ("MM-Rand", "VB", ...).
	StrategyName string
	// Decomp is the decomposition wall time (zero for baselines).
	Decomp time.Duration
	// Solve is the solving wall time.
	Solve time.Duration
	// Rounds is the total inner iteration count.
	Rounds int
	// GPUStats snapshots the virtual machine counters consumed by this run
	// (GPU runs only).
	GPUStats bsp.Stats
}

// Total is the end-to-end wall time.
func (r Report) Total() time.Duration { return r.Decomp + r.Solve }

// Result bundles the solution of whichever problem was solved with its
// report. Exactly one of Matching / Coloring / IndepSet is non-nil.
type Result struct {
	Matching *matching.Matching
	Coloring *coloring.Coloring
	IndepSet *mis.IndepSet
	Report   Report
}

// Solve runs the selected problem on g under the options. It returns an
// error only for invalid configurations; algorithmic failures are
// impossible by construction (every path yields a verified-shape solution,
// and Verify re-checks it cheaply if desired).
func Solve(g *graph.Graph, p Problem, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	strategy := opt.Strategy
	if strategy == StrategyAuto {
		strategy = TableIStrategy(p, opt.Arch)
	}
	if opt.RandParts < 1 {
		return nil, fmt.Errorf("core: RandParts must be ≥ 1, got %d", opt.RandParts)
	}
	if opt.DegK < 0 {
		return nil, fmt.Errorf("core: DegK must be ≥ 0, got %d", opt.DegK)
	}
	if opt.MPXBeta <= 0 {
		return nil, fmt.Errorf("core: MPXBeta must be > 0, got %v", opt.MPXBeta)
	}

	res := &Result{Report: Report{Problem: p, Strategy: strategy, Arch: opt.Arch}}
	var before bsp.Stats
	if opt.Arch == ArchGPU {
		before = opt.Machine.Stats()
	}

	sp := trace.Beginf("core %s/%s/%s", p, strategy, opt.Arch)
	switch p {
	case ProblemMM:
		solveMM(g, strategy, opt, res)
	case ProblemColor:
		solveColor(g, strategy, opt, res)
	case ProblemMIS:
		solveMIS(g, strategy, opt, res)
	default:
		sp.End()
		return nil, fmt.Errorf("core: unknown problem %d", p)
	}
	sp.Add("rounds", int64(res.Report.Rounds))
	sp.End()

	if opt.Arch == ArchGPU {
		after := opt.Machine.Stats()
		res.Report.GPUStats = bsp.Stats{
			Launches:   after.Launches - before.Launches,
			ThreadsRun: after.ThreadsRun - before.ThreadsRun,
			KernelTime: after.KernelTime - before.KernelTime,
			SimTime:    after.SimTime - before.SimTime,
		}
	}
	return res, nil
}

func solveMM(g *graph.Graph, strategy Strategy, opt Options, res *Result) {
	var alg matching.Algorithm
	if opt.Arch == ArchGPU {
		alg = matching.LMAXSolver(opt.Machine, opt.Seed)
	} else {
		alg = matching.GMSolver()
	}
	switch strategy {
	case StrategyBaseline:
		sp := trace.Begin("solve")
		start := time.Now()
		m, st := alg(g)
		res.Matching = m
		res.Report.Solve = time.Since(start)
		res.Report.Rounds = st.Rounds
		sp.Add("rounds", int64(st.Rounds))
		sp.Add("matched", st.Matched)
		sp.End()
		if opt.Arch == ArchGPU {
			res.Report.StrategyName = "LMAX"
		} else {
			res.Report.StrategyName = "GM"
		}
	case StrategyBridge:
		m, rep := matching.MMBridge(g, alg)
		res.Matching = m
		fillMM(&res.Report, rep)
	case StrategyRand:
		m, rep := matching.MMRand(g, opt.RandParts, opt.Seed, alg)
		res.Matching = m
		fillMM(&res.Report, rep)
	case StrategyDegk:
		m, rep := matching.MMDegk(g, opt.DegK, alg)
		res.Matching = m
		fillMM(&res.Report, rep)
	case StrategyMPX:
		m, rep := matching.MMMPX(g, opt.MPXBeta, opt.Seed, alg)
		res.Matching = m
		fillMM(&res.Report, rep)
	}
}

func fillMM(r *Report, rep matching.Report) {
	r.StrategyName = rep.Strategy
	r.Decomp = rep.Decomp
	r.Solve = rep.Solve
	r.Rounds = rep.Rounds
}

func solveColor(g *graph.Graph, strategy Strategy, opt Options, res *Result) {
	var eng coloring.Engine
	if opt.Arch == ArchGPU {
		eng = coloring.NewEB(opt.Machine)
	} else {
		eng = coloring.NewVB()
	}
	switch strategy {
	case StrategyBaseline:
		sp := trace.Begin("solve")
		start := time.Now()
		c, st := eng.Fresh(g)
		res.Coloring = c
		res.Report.Solve = time.Since(start)
		res.Report.Rounds = st.Rounds
		res.Report.StrategyName = eng.Name()
		sp.Add("rounds", int64(st.Rounds))
		sp.End()
	case StrategyBridge:
		c, rep := coloring.ColorBridge(g, eng)
		res.Coloring = c
		fillColor(&res.Report, rep)
	case StrategyRand:
		c, rep := coloring.ColorRand(g, opt.RandParts, opt.Seed, eng)
		res.Coloring = c
		fillColor(&res.Report, rep)
	case StrategyDegk:
		c, rep := coloring.ColorDegk(g, opt.DegK, eng)
		res.Coloring = c
		fillColor(&res.Report, rep)
	case StrategyMPX:
		c, rep := coloring.ColorMPX(g, opt.MPXBeta, opt.Seed, eng)
		res.Coloring = c
		fillColor(&res.Report, rep)
	}
}

func fillColor(r *Report, rep coloring.Report) {
	r.StrategyName = rep.Strategy
	r.Decomp = rep.Decomp
	r.Solve = rep.Solve
	r.Rounds = rep.Rounds
}

func solveMIS(g *graph.Graph, strategy Strategy, opt Options, res *Result) {
	var alg mis.Solver
	if opt.Arch == ArchGPU {
		alg = mis.LubyGPUSolver(opt.Machine, opt.Seed)
	} else {
		alg = mis.LubySolver(opt.Seed)
	}
	switch strategy {
	case StrategyBaseline:
		sp := trace.Begin("solve")
		start := time.Now()
		var s *mis.IndepSet
		var st mis.Stats
		if opt.Arch == ArchGPU {
			s, st = mis.LubyGPU(g, opt.Machine, opt.Seed)
		} else {
			s, st = mis.Luby(g, opt.Seed)
		}
		res.IndepSet = s
		res.Report.Solve = time.Since(start)
		res.Report.Rounds = st.Rounds
		res.Report.StrategyName = "LubyMIS"
		sp.Add("rounds", int64(st.Rounds))
		sp.End()
	case StrategyBridge:
		s, rep := mis.MISBridge(g, alg)
		res.IndepSet = s
		fillMIS(&res.Report, rep)
	case StrategyRand:
		s, rep := mis.MISRand(g, opt.RandParts, opt.Seed, alg)
		res.IndepSet = s
		fillMIS(&res.Report, rep)
	case StrategyDegk:
		kp := mis.KPSolver()
		if opt.Arch == ArchGPU {
			kp = mis.KPSolverOn(opt.Machine.Launch)
		}
		s, rep := mis.MISDeg2With(g, alg, kp)
		res.IndepSet = s
		fillMIS(&res.Report, rep)
	case StrategyMPX:
		s, rep := mis.MISMPX(g, opt.MPXBeta, opt.Seed, alg)
		res.IndepSet = s
		fillMIS(&res.Report, rep)
	}
}

func fillMIS(r *Report, rep mis.Report) {
	r.StrategyName = rep.Strategy
	r.Decomp = rep.Decomp
	r.Solve = rep.Solve
	r.Rounds = rep.Rounds
}

// SolveCtx is Solve with a context. If ctx carries a trace.Collector
// (via trace.NewContext), the collector is attached to the calling
// goroutine for the duration of the solve, so every phase span the
// decomposition and solver layers open — decomp, solve/parts,
// solve/cross, per-round series — lands on that collector instead of the
// process-global tracer. This is how the serving layer gives each
// concurrent request its own span tree; a context without a collector
// behaves exactly like Solve.
func SolveCtx(ctx context.Context, g *graph.Graph, p Problem, opt Options) (*Result, error) {
	defer trace.FromContext(ctx).Attach()()
	return Solve(g, p, opt)
}

// SolveVerifiedCtx is SolveVerified with a context, threading a carried
// trace.Collector the same way SolveCtx does.
func SolveVerifiedCtx(ctx context.Context, g *graph.Graph, p Problem, opt Options) (*Result, error) {
	defer trace.FromContext(ctx).Attach()()
	return SolveVerified(g, p, opt)
}

// SolveVerified runs Solve and then Verify, returning the result only if
// the solution re-checks against g. It is the entry point request-serving
// paths share with cmd/symbreak: one call that either yields a verified
// solution or an error, never an unchecked result.
func SolveVerified(g *graph.Graph, p Problem, opt Options) (*Result, error) {
	res, err := Solve(g, p, opt)
	if err != nil {
		return nil, err
	}
	if err := Verify(g, res); err != nil {
		return nil, fmt.Errorf("core: solution failed verification: %w", err)
	}
	return res, nil
}

// fnv1a64 parameters for SolutionDigest.
const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

func digestMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// SolutionDigest returns a 64-bit FNV-1a content hash of the solution
// payload — the Mate, Color, or In array, tagged by problem kind. Because
// every solver is deterministic under (seed, options) for any worker
// count (the determinism sweep pins this), the digest is a compact
// equality witness for "same request, same answer": the serving layer
// returns it in every /solve response and the end-to-end tests compare it
// across servers. Returns 0 for a Result holding no solution.
func (r *Result) SolutionDigest() uint64 {
	h := uint64(fnvOffset64)
	switch {
	case r.Matching != nil:
		h = digestMix(h, uint64(ProblemMM))
		for _, m := range r.Matching.Mate {
			h = digestMix(h, uint64(uint32(m)))
		}
	case r.Coloring != nil:
		h = digestMix(h, uint64(ProblemColor))
		for _, c := range r.Coloring.Color {
			h = digestMix(h, uint64(uint32(c)))
		}
	case r.IndepSet != nil:
		h = digestMix(h, uint64(ProblemMIS))
		for _, in := range r.IndepSet.In {
			var b uint64
			if in {
				b = 1
			}
			h = digestMix(h, b)
		}
	default:
		return 0
	}
	return h
}

// SolutionCount returns the problem's headline cardinality: matched edges
// for MM, palette size for COLOR, member count for MIS. Returns 0 for a
// Result holding no solution.
func (r *Result) SolutionCount() int64 {
	switch {
	case r.Matching != nil:
		return r.Matching.Cardinality()
	case r.Coloring != nil:
		return int64(r.Coloring.NumColors())
	case r.IndepSet != nil:
		return r.IndepSet.Size()
	default:
		return 0
	}
}

// Verify re-checks the solution in a Result against the graph it was
// computed on: matching validity+maximality, proper complete coloring, or
// MIS independence+maximality.
func Verify(g *graph.Graph, res *Result) error {
	switch {
	case res.Matching != nil:
		return matching.Verify(g, res.Matching)
	case res.Coloring != nil:
		return coloring.Verify(g, res.Coloring)
	case res.IndepSet != nil:
		return mis.Verify(g, res.IndepSet)
	default:
		return fmt.Errorf("core: result holds no solution")
	}
}
