package core

import (
	"testing"

	"repro/internal/bsp"
	"repro/internal/decomp"
	"repro/internal/graph"
)

// allGraphsOn enumerates every simple undirected graph on n vertices
// (2^(n·(n−1)/2) of them) and hands each to fn.
func allGraphsOn(n int, fn func(mask uint64, g *graph.Graph)) {
	type pair struct{ u, v int32 }
	var pairs []pair
	for u := int32(0); u < int32(n); u++ {
		for v := u + 1; v < int32(n); v++ {
			pairs = append(pairs, pair{u, v})
		}
	}
	total := uint64(1) << uint(len(pairs))
	for mask := uint64(0); mask < total; mask++ {
		b := graph.NewBuilder(n)
		for i, p := range pairs {
			if mask&(1<<uint(i)) != 0 {
				b.AddEdge(p.u, p.v)
			}
		}
		fn(mask, b.Build())
	}
}

// TestExhaustiveAllSolversFiveVertices runs every problem × strategy ×
// architecture over every one of the 1024 graphs on 5 vertices and
// verifies each solution — the strongest correctness net in the suite.
func TestExhaustiveAllSolversFiveVertices(t *testing.T) {
	machine := bsp.New()
	strategies := []Strategy{StrategyBaseline, StrategyBridge, StrategyRand, StrategyDegk}
	problems := []Problem{ProblemMM, ProblemColor, ProblemMIS}
	archs := []Arch{ArchCPU, ArchGPU}
	allGraphsOn(5, func(mask uint64, g *graph.Graph) {
		for _, p := range problems {
			for _, s := range strategies {
				for _, a := range archs {
					res, err := Solve(g, p, Options{
						Strategy: s, Arch: a, Seed: 3, RandParts: 2, Machine: machine,
					})
					if err != nil {
						t.Fatalf("mask %#x %v/%v/%v: %v", mask, p, s, a, err)
					}
					if err := Verify(g, res); err != nil {
						t.Fatalf("mask %#x %v/%v/%v: %v", mask, p, s, a, err)
					}
				}
			}
		}
	})
}

// TestExhaustiveDecompositionsFiveVertices checks the edge-conservation
// invariant and the bridge oracle on every 5-vertex graph.
func TestExhaustiveDecompositionsFiveVertices(t *testing.T) {
	allGraphsOn(5, func(mask uint64, g *graph.Graph) {
		br := decomp.Bridge(g)
		if br.PartEdges()+br.CrossEdges() != g.NumEdges() {
			t.Fatalf("mask %#x: BRIDGE edge conservation", mask)
		}
		want := graph.Bridges(g)
		if len(br.Bridges) != len(want) {
			t.Fatalf("mask %#x: %d bridges, oracle %d", mask, len(br.Bridges), len(want))
		}
		rd := decomp.Rand(g, 3, 1)
		if rd.PartEdges()+rd.CrossEdges() != g.NumEdges() {
			t.Fatalf("mask %#x: RAND edge conservation", mask)
		}
		dk := decomp.Degk(g, 2)
		if dk.PartEdges()+dk.CrossEdges() != g.NumEdges() {
			t.Fatalf("mask %#x: DEGk edge conservation", mask)
		}
		if d := dk.Parts[decomp.DegkLow].G.MaxDegree(); d > 2 {
			t.Fatalf("mask %#x: G_L max degree %d", mask, d)
		}
	})
}

// TestExhaustiveDecompositionsSixVertices widens the decomposition
// invariant check to all 32,768 graphs on 6 vertices. Guarded by -short.
func TestExhaustiveDecompositionsSixVertices(t *testing.T) {
	if testing.Short() {
		t.Skip("six-vertex enumeration skipped in -short mode")
	}
	allGraphsOn(6, func(mask uint64, g *graph.Graph) {
		br := decomp.Bridge(g)
		if br.PartEdges()+br.CrossEdges() != g.NumEdges() {
			t.Fatalf("mask %#x: BRIDGE edge conservation", mask)
		}
		if len(br.Bridges) != len(graph.Bridges(g)) {
			t.Fatalf("mask %#x: bridge count vs oracle", mask)
		}
		dk := decomp.Degk(g, 2)
		if dk.PartEdges()+dk.CrossEdges() != g.NumEdges() {
			t.Fatalf("mask %#x: DEGk edge conservation", mask)
		}
	})
}
