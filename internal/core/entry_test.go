package core

import "testing"

func TestSolveVerified(t *testing.T) {
	g := randomGraph(300, 1200, 3)
	for _, p := range []Problem{ProblemMM, ProblemColor, ProblemMIS} {
		res, err := SolveVerified(g, p, Options{Seed: 7})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if res.SolutionCount() == 0 {
			t.Errorf("%v: zero solution count", p)
		}
		if res.SolutionDigest() == 0 {
			t.Errorf("%v: zero digest", p)
		}
	}
	if _, err := SolveVerified(g, Problem(9), Options{Seed: 7}); err == nil {
		t.Fatal("unknown problem accepted")
	}
}

func TestSolutionDigestDeterministic(t *testing.T) {
	g := randomGraph(400, 1600, 9)
	for _, p := range []Problem{ProblemMM, ProblemColor, ProblemMIS} {
		a, err := SolveVerified(g, p, Options{Strategy: StrategyRand, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		b, err := SolveVerified(g, p, Options{Strategy: StrategyRand, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if a.SolutionDigest() != b.SolutionDigest() {
			t.Errorf("%v: digest differs under same seed", p)
		}
		c, err := SolveVerified(g, p, Options{Strategy: StrategyRand, Seed: 12})
		if err != nil {
			t.Fatal(err)
		}
		// Different seeds should (overwhelmingly) give different payloads;
		// equal digests with equal payloads are fine, so only flag when the
		// solutions actually differ.
		if c.SolutionDigest() == a.SolutionDigest() && c.SolutionCount() != a.SolutionCount() {
			t.Errorf("%v: different solutions, same digest", p)
		}
	}
	if (&Result{}).SolutionDigest() != 0 || (&Result{}).SolutionCount() != 0 {
		t.Error("empty result should digest/count to 0")
	}
}

func TestNormalized(t *testing.T) {
	o := Options{}.Normalized()
	if o.RandParts != 10 || o.DegK != 2 || o.MPXBeta <= 0 {
		t.Fatalf("CPU defaults not applied: %+v", o)
	}
	og := Options{Arch: ArchGPU}.Normalized()
	if og.RandParts != 4 || og.Machine == nil {
		t.Fatalf("GPU defaults not applied: %+v", og)
	}
	// Explicit values survive normalization.
	ex := Options{RandParts: 7, DegK: 3, MPXBeta: 0.5}.Normalized()
	if ex.RandParts != 7 || ex.DegK != 3 || ex.MPXBeta != 0.5 {
		t.Fatalf("explicit values clobbered: %+v", ex)
	}
}
