package core

import (
	"testing"

	"repro/internal/bsp"
	"repro/internal/graph"
	"repro/internal/par"
)

func randomGraph(n, m int, seed uint64) *graph.Graph {
	r := par.NewRNG(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	return b.Build()
}

func TestSolveAllCombinationsVerify(t *testing.T) {
	g := randomGraph(600, 2400, 1)
	problems := []Problem{ProblemMM, ProblemColor, ProblemMIS}
	strategies := []Strategy{StrategyAuto, StrategyBaseline, StrategyBridge, StrategyRand, StrategyDegk}
	archs := []Arch{ArchCPU, ArchGPU}
	machine := bsp.New()
	for _, p := range problems {
		for _, s := range strategies {
			for _, a := range archs {
				res, err := Solve(g, p, Options{Strategy: s, Arch: a, Seed: 7, Machine: machine})
				if err != nil {
					t.Fatalf("%v/%v/%v: %v", p, s, a, err)
				}
				if err := Verify(g, res); err != nil {
					t.Fatalf("%v/%v/%v: %v", p, s, a, err)
				}
				if res.Report.StrategyName == "" {
					t.Fatalf("%v/%v/%v: empty strategy name", p, s, a)
				}
				if res.Report.Problem != p || res.Report.Arch != a {
					t.Fatalf("%v/%v/%v: report echoes %v/%v", p, s, a, res.Report.Problem, res.Report.Arch)
				}
			}
		}
	}
}

func TestSolveExactlyOneSolution(t *testing.T) {
	g := randomGraph(100, 300, 2)
	for _, p := range []Problem{ProblemMM, ProblemColor, ProblemMIS} {
		res, err := Solve(g, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		count := 0
		if res.Matching != nil {
			count++
		}
		if res.Coloring != nil {
			count++
		}
		if res.IndepSet != nil {
			count++
		}
		if count != 1 {
			t.Fatalf("%v: %d solutions set", p, count)
		}
	}
}

func TestTableIStrategy(t *testing.T) {
	cases := []struct {
		p    Problem
		a    Arch
		want Strategy
	}{
		{ProblemMM, ArchCPU, StrategyRand},
		{ProblemMM, ArchGPU, StrategyRand},
		{ProblemColor, ArchCPU, StrategyDegk},
		{ProblemColor, ArchGPU, StrategyBaseline},
		{ProblemMIS, ArchCPU, StrategyDegk},
		{ProblemMIS, ArchGPU, StrategyDegk},
	}
	for _, c := range cases {
		if got := TableIStrategy(c.p, c.a); got != c.want {
			t.Fatalf("TableIStrategy(%v,%v) = %v, want %v", c.p, c.a, got, c.want)
		}
	}
}

func TestAutoResolvesPerProblem(t *testing.T) {
	g := randomGraph(200, 800, 3)
	res, err := Solve(g, ProblemColor, Options{Arch: ArchCPU})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.StrategyName != "COLOR-Degk" {
		t.Fatalf("auto CPU COLOR resolved to %q", res.Report.StrategyName)
	}
	res, err = Solve(g, ProblemColor, Options{Arch: ArchGPU})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.StrategyName != "EB" {
		t.Fatalf("auto GPU COLOR resolved to %q", res.Report.StrategyName)
	}
}

func TestGPUStatsDelta(t *testing.T) {
	g := randomGraph(300, 1200, 4)
	machine := bsp.New()
	a, err := Solve(g, ProblemMIS, Options{Arch: ArchGPU, Machine: machine})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(g, ProblemMIS, Options{Arch: ArchGPU, Machine: machine})
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.GPUStats.Launches <= 0 || b.Report.GPUStats.Launches <= 0 {
		t.Fatal("GPU stats not recorded")
	}
	// Same work → the per-run delta must not accumulate across runs.
	if b.Report.GPUStats.Launches > 2*a.Report.GPUStats.Launches {
		t.Fatalf("stats deltas accumulate: %d then %d",
			a.Report.GPUStats.Launches, b.Report.GPUStats.Launches)
	}
}

func TestSolveInvalidOptions(t *testing.T) {
	g := randomGraph(10, 20, 5)
	if _, err := Solve(g, ProblemMM, Options{RandParts: -1}); err == nil {
		t.Fatal("negative RandParts accepted")
	}
	if _, err := Solve(g, ProblemMM, Options{DegK: -2}); err == nil {
		t.Fatal("negative DegK accepted")
	}
	if _, err := Solve(g, Problem(99), Options{}); err == nil {
		t.Fatal("unknown problem accepted")
	}
}

func TestVerifyEmptyResult(t *testing.T) {
	if Verify(randomGraph(5, 5, 6), &Result{}) == nil {
		t.Fatal("empty result verified")
	}
}

func TestStringers(t *testing.T) {
	if ProblemMM.String() != "MM" || ProblemColor.String() != "COLOR" || ProblemMIS.String() != "MIS" {
		t.Fatal("Problem.String wrong")
	}
	if Problem(9).String() != "UNKNOWN" || Strategy(9).String() != "UNKNOWN" {
		t.Fatal("unknown stringers wrong")
	}
	if ArchCPU.String() != "CPU" || ArchGPU.String() != "GPU" {
		t.Fatal("Arch.String wrong")
	}
	for s, want := range map[Strategy]string{
		StrategyAuto: "AUTO", StrategyBaseline: "BASELINE",
		StrategyBridge: "BRIDGE", StrategyRand: "RAND", StrategyDegk: "DEGk",
	} {
		if s.String() != want {
			t.Fatalf("Strategy(%d).String() = %q", s, s.String())
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	g := randomGraph(400, 1600, 8)
	a, _ := Solve(g, ProblemMIS, Options{Strategy: StrategyRand, Seed: 5})
	b, _ := Solve(g, ProblemMIS, Options{Strategy: StrategyRand, Seed: 5})
	for i := range a.IndepSet.In {
		if a.IndepSet.In[i] != b.IndepSet.In[i] {
			t.Fatalf("MIS differs at %d under same seed", i)
		}
	}
}
