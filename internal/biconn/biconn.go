// Package biconn computes biconnected components (blocks) and articulation
// points. The paper's related work (§I-A) traces the decomposition idea to
// Hochbaum's use of biconnected components for matching/coloring/vertex
// cover; this package provides that decomposition as an extension beyond
// the paper's three measured techniques, using the same BFS + LCA-walk
// machinery as the BRIDGE decomposition.
//
// The parallel algorithm unions, for every non-tree edge, all tree edges on
// its fundamental cycle together with the non-tree edge itself, under a
// concurrent union-find. Edges end up in the same class exactly when they
// lie on a common simple cycle — the block relation. Bridges appear as
// singleton classes, and a vertex is an articulation point exactly when its
// incident edges span more than one block.
package biconn

import (
	"sync/atomic"

	"repro/internal/bfs"
	"repro/internal/graph"
	"repro/internal/par"
)

// Result is a biconnected decomposition of a graph.
type Result struct {
	// EdgeBlock[i] is the dense block id of the i-th edge of g.Edges()
	// (the canonical sorted edge list).
	EdgeBlock []int32
	// NumBlocks is the number of blocks.
	NumBlocks int
	// IsArticulation[v] reports whether v is a cut vertex.
	IsArticulation []bool
	// Edges is the canonical edge list EdgeBlock indexes.
	Edges []graph.Edge
}

// Blocks computes the biconnected decomposition with the parallel
// fundamental-cycle algorithm.
func Blocks(g *graph.Graph) *Result {
	n := g.NumVertices()
	edges := g.Edges()
	m := len(edges)

	// Edge ids: tree edge {v, parent(v)} ↦ child v (ids [0, n));
	// every edge also has its position id n + i in the canonical list.
	// The union-find spans [0, n+m); tree edges use their child slot and
	// alias their list slot to it, so queries by either id agree.
	tree := bfs.Forest(g)
	uf := newUnionFind(n + m)

	// Alias list ids of tree edges to their child slot.
	par.For(m, func(i int) {
		e := edges[i]
		switch {
		case tree.Parent[e.U] == e.V:
			uf.union(n+i, int(e.U))
		case tree.Parent[e.V] == e.U:
			uf.union(n+i, int(e.V))
		}
	})

	// Fundamental cycle union: for each non-tree edge, climb to the LCA
	// uniting every tree edge on the way with the non-tree edge.
	par.For(m, func(i int) {
		e := edges[i]
		if tree.IsTreeEdge(e.U, e.V) {
			return
		}
		x, y := e.U, e.V
		for x != y {
			if tree.Level[x] < tree.Level[y] {
				x, y = y, x
			}
			uf.union(n+i, int(x))
			x = tree.Parent[x]
		}
	})

	// Dense block labels per edge.
	r := &Result{
		EdgeBlock:      make([]int32, m),
		IsArticulation: make([]bool, n),
		Edges:          edges,
	}
	rep := make([]int32, m)
	par.For(m, func(i int) { rep[i] = int32(uf.find(n + i)) })
	remap := map[int32]int32{}
	for i := 0; i < m; i++ {
		id, ok := remap[rep[i]]
		if !ok {
			id = int32(len(remap))
			remap[rep[i]] = id
		}
		r.EdgeBlock[i] = id
	}
	r.NumBlocks = len(remap)

	// Articulation points: incident edges in ≥ 2 distinct blocks.
	first := make([]int32, n)
	par.Fill(first, int32(-1))
	mark := func(v int32, b int32) {
		if first[v] == -1 {
			first[v] = b
		} else if first[v] != b {
			r.IsArticulation[v] = true
		}
	}
	for i, e := range edges { // sequential: two cheap writes per edge
		mark(e.U, r.EdgeBlock[i])
		mark(e.V, r.EdgeBlock[i])
	}
	return r
}

// unionFind is a lock-free union-find (CAS on parent pointers with path
// halving). Without ranks the tree depth is not theoretically bounded, but
// path halving keeps it shallow in practice for these workloads.
type unionFind struct {
	parent []int32
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int32, n)}
	par.Iota(uf.parent)
	return uf
}

func (uf *unionFind) find(x int) int {
	for {
		p := atomic.LoadInt32(&uf.parent[x])
		if int(p) == x {
			return x
		}
		gp := atomic.LoadInt32(&uf.parent[p])
		if gp != p {
			// Path halving; losing the race is harmless.
			atomic.CompareAndSwapInt32(&uf.parent[x], p, gp)
		}
		x = int(p)
	}
}

func (uf *unionFind) union(a, b int) {
	for {
		ra, rb := uf.find(a), uf.find(b)
		if ra == rb {
			return
		}
		// Point the larger root at the smaller (deterministic direction).
		if ra < rb {
			ra, rb = rb, ra
		}
		if atomic.CompareAndSwapInt32(&uf.parent[ra], int32(ra), int32(rb)) {
			return
		}
	}
}
