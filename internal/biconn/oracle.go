package biconn

import "repro/internal/graph"

// BlocksSequential computes the biconnected decomposition with the
// classical sequential Hopcroft–Tarjan lowpoint algorithm (iterative). It
// is the trusted oracle for validating the parallel algorithm and fine for
// tool use on moderate graphs.
func BlocksSequential(g *graph.Graph) *Result {
	n := g.NumVertices()
	edges := g.Edges()
	m := len(edges)

	// Index edges for O(1) id lookup during the DFS.
	edgeID := map[graph.Edge]int32{}
	for i, e := range edges {
		edgeID[e] = int32(i)
	}

	r := &Result{
		EdgeBlock:      make([]int32, m),
		IsArticulation: make([]bool, n),
		Edges:          edges,
	}
	for i := range r.EdgeBlock {
		r.EdgeBlock[i] = -1
	}

	disc := make([]int32, n)
	low := make([]int32, n)
	parent := make([]int32, n)
	childCnt := make([]int32, n)
	var timer int32
	var stack []int32 // edge ids
	var next int32    // next dense block id

	popBlock := func(until int32) {
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			r.EdgeBlock[id] = next
			if id == until {
				break
			}
		}
		next++
	}

	type frame struct {
		v  int32
		ni int
	}
	var dfs []frame
	for root := int32(0); int(root) < n; root++ {
		if disc[root] != 0 {
			continue
		}
		timer++
		disc[root], low[root] = timer, timer
		parent[root] = -1
		dfs = append(dfs[:0], frame{root, 0})
		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			v := f.v
			ns := g.Neighbors(v)
			if f.ni < len(ns) {
				w := ns[f.ni]
				f.ni++
				if w == parent[v] {
					// The single adjacency occurrence of the parent is the
					// tree edge we arrived by (the graph is simple).
					continue
				}
				if disc[w] == 0 {
					timer++
					disc[w], low[w] = timer, timer
					parent[w] = v
					childCnt[v]++
					stack = append(stack, edgeID[graph.Edge{U: v, V: w}.Canon()])
					dfs = append(dfs, frame{w, 0})
				} else if disc[w] < disc[v] {
					// Back edge to an ancestor: push once (from the
					// descendant side only).
					stack = append(stack, edgeID[graph.Edge{U: v, V: w}.Canon()])
					if disc[w] < low[v] {
						low[v] = disc[w]
					}
				}
				continue
			}
			dfs = dfs[:len(dfs)-1]
			p := parent[v]
			if p < 0 {
				continue
			}
			if low[v] < low[p] {
				low[p] = low[v]
			}
			if low[v] >= disc[p] {
				// p separates v's subtree: close the block.
				popBlock(edgeID[graph.Edge{U: p, V: v}.Canon()])
				if parent[p] != -1 || childCnt[p] >= 2 {
					r.IsArticulation[p] = true
				}
			}
		}
	}

	// Count blocks (isolated vertices contribute none; every edge got a
	// label because each tree edge's block closes at its parent).
	r.NumBlocks = int(next)
	return r
}
