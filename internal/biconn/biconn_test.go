package biconn

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/par"
)

func pathGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.Build()
}

func cycleGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(int32(i), int32((i+1)%n))
	}
	return b.Build()
}

func randomGraph(n, m int, seed uint64) *graph.Graph {
	r := par.NewRNG(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	return b.Build()
}

// bowtie: two triangles sharing vertex 2 — the canonical two-block,
// one-articulation-point instance.
func bowtie() *graph.Graph {
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(2, 4)
	return b.Build()
}

// sameClassification reports whether two dense labelings induce the same
// partition.
func sameClassification(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := map[int32]int32{}
	bwd := map[int32]int32{}
	for i := range a {
		if x, ok := fwd[a[i]]; ok && x != b[i] {
			return false
		}
		if x, ok := bwd[b[i]]; ok && x != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		bwd[b[i]] = a[i]
	}
	return true
}

func checkAgainstOracle(t *testing.T, g *graph.Graph, name string) {
	t.Helper()
	got := Blocks(g)
	want := BlocksSequential(g)
	if got.NumBlocks != want.NumBlocks {
		t.Fatalf("%s: %d blocks, oracle %d", name, got.NumBlocks, want.NumBlocks)
	}
	if !sameClassification(got.EdgeBlock, want.EdgeBlock) {
		t.Fatalf("%s: block partition differs from oracle", name)
	}
	for v := range got.IsArticulation {
		if got.IsArticulation[v] != want.IsArticulation[v] {
			t.Fatalf("%s: articulation disagreement at %d (got %v)", name, v, got.IsArticulation[v])
		}
	}
}

func TestBlocksKnownShapes(t *testing.T) {
	// Bowtie: 2 blocks, articulation = {2}.
	r := Blocks(bowtie())
	if r.NumBlocks != 2 {
		t.Fatalf("bowtie blocks = %d", r.NumBlocks)
	}
	for v, want := range []bool{false, false, true, false, false} {
		if r.IsArticulation[v] != want {
			t.Fatalf("bowtie articulation[%d] = %v", v, r.IsArticulation[v])
		}
	}
	// Cycle: one block, no articulation points.
	r = Blocks(cycleGraph(12))
	if r.NumBlocks != 1 {
		t.Fatalf("cycle blocks = %d", r.NumBlocks)
	}
	for v, a := range r.IsArticulation {
		if a {
			t.Fatalf("cycle has articulation point %d", v)
		}
	}
	// Path: every edge its own block, every interior vertex articulation.
	r = Blocks(pathGraph(6))
	if r.NumBlocks != 5 {
		t.Fatalf("path blocks = %d", r.NumBlocks)
	}
	for v := 1; v <= 4; v++ {
		if !r.IsArticulation[v] {
			t.Fatalf("path interior %d not articulation", v)
		}
	}
	if r.IsArticulation[0] || r.IsArticulation[5] {
		t.Fatal("path endpoints flagged")
	}
}

func TestBlocksMatchOracleRandom(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		g := randomGraph(120, 150+int(seed)*40, seed+1)
		checkAgainstOracle(t, g, "random")
	}
}

func TestBlocksMatchOracleExhaustiveSmall(t *testing.T) {
	// All graphs on 5 vertices.
	type pair struct{ u, v int32 }
	var pairs []pair
	for u := int32(0); u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			pairs = append(pairs, pair{u, v})
		}
	}
	for mask := 0; mask < 1<<len(pairs); mask++ {
		b := graph.NewBuilder(5)
		for i, p := range pairs {
			if mask&(1<<i) != 0 {
				b.AddEdge(p.u, p.v)
			}
		}
		checkAgainstOracle(t, b.Build(), "exhaustive")
	}
}

func TestBlocksBridgeConsistency(t *testing.T) {
	// Singleton blocks are exactly the bridges.
	g := randomGraph(200, 230, 9)
	r := Blocks(g)
	sizes := make([]int, r.NumBlocks)
	for _, blk := range r.EdgeBlock {
		sizes[blk]++
	}
	singletons := map[graph.Edge]bool{}
	for i, e := range r.Edges {
		if sizes[r.EdgeBlock[i]] == 1 {
			singletons[e] = true
		}
	}
	bridges := graph.Bridges(g)
	if len(bridges) != len(singletons) {
		t.Fatalf("%d singleton blocks, %d bridges", len(singletons), len(bridges))
	}
	for _, e := range bridges {
		if !singletons[e] {
			t.Fatalf("bridge %v not a singleton block", e)
		}
	}
}

func TestBlocksEmptyAndEdgeless(t *testing.T) {
	for _, g := range []*graph.Graph{graph.NewBuilder(0).Build(), graph.NewBuilder(7).Build()} {
		r := Blocks(g)
		if r.NumBlocks != 0 || len(r.EdgeBlock) != 0 {
			t.Fatalf("edgeless graph produced %d blocks", r.NumBlocks)
		}
		for _, a := range r.IsArticulation {
			if a {
				t.Fatal("articulation point in edgeless graph")
			}
		}
	}
}
