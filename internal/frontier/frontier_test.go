package frontier

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/par"
)

func pathGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.Build()
}

func gridGraph(r, c int) *graph.Graph {
	b := graph.NewBuilder(r * c)
	id := func(i, j int) int32 { return int32(i*c + j) }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				b.AddEdge(id(i, j), id(i, j+1))
			}
			if i+1 < r {
				b.AddEdge(id(i, j), id(i+1, j))
			}
		}
	}
	return b.Build()
}

func randomGraph(n, m int, seed uint64) *graph.Graph {
	r := par.NewRNG(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	return b.Build()
}

func equalVerts(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestNewSortsUnsortedInput(t *testing.T) {
	s := New(10, []int32{7, 2, 9, 0})
	if !equalVerts(s.Vertices(), []int32{0, 2, 7, 9}) {
		t.Fatalf("Vertices = %v", s.Vertices())
	}
	if s.Size() != 4 || s.Universe() != 10 || s.IsEmpty() {
		t.Fatalf("size/universe wrong: %d/%d", s.Size(), s.Universe())
	}
	for _, v := range []int32{0, 2, 7, 9} {
		if !s.Contains(v) {
			t.Fatalf("Contains(%d) = false", v)
		}
	}
	for _, v := range []int32{1, 3, 8} {
		if s.Contains(v) {
			t.Fatalf("Contains(%d) = true", v)
		}
	}
}

func TestEmptySubset(t *testing.T) {
	s := Empty(16)
	if !s.IsEmpty() || s.Size() != 0 {
		t.Fatal("Empty not empty")
	}
	if len(s.Vertices()) != 0 {
		t.Fatalf("Vertices = %v", s.Vertices())
	}
	if s.Bitset().Count() != 0 {
		t.Fatal("empty bitset has set bits")
	}
	if s.Contains(3) {
		t.Fatal("empty Contains(3)")
	}
}

func TestAllSubset(t *testing.T) {
	s := All(9)
	if s.Size() != 9 {
		t.Fatalf("Size = %d", s.Size())
	}
	vs := s.Vertices()
	for i := range vs {
		if vs[i] != int32(i) {
			t.Fatalf("Vertices[%d] = %d", i, vs[i])
		}
	}
	if s.Bitset().Count() != 9 {
		t.Fatal("All bitset incomplete")
	}
}

// TestSparseDenseRoundTrip covers the conversion edge cases: a bitset of
// scattered (isolated) vertices must gather into a sorted list, a sparse
// list must densify into exactly its members, and both representations
// must agree after materialization.
func TestSparseDenseRoundTrip(t *testing.T) {
	const n = 257 // crosses word boundaries
	bits := par.NewBitset(n)
	want := []int32{0, 5, 63, 64, 65, 200, 256}
	for _, v := range want {
		bits.Set(int(v))
	}
	s := FromBitset(n, bits)
	if s.Size() != len(want) {
		t.Fatalf("Size = %d, want %d", s.Size(), len(want))
	}
	if !s.IsDense() {
		t.Fatal("FromBitset not dense")
	}
	if !equalVerts(s.Vertices(), want) {
		t.Fatalf("Vertices = %v, want %v", s.Vertices(), want)
	}

	// Sparse → dense.
	sp := New(n, append([]int32(nil), want...))
	if sp.IsDense() {
		t.Fatal("fresh sparse subset claims dense")
	}
	dense := sp.Bitset()
	if !sp.IsDense() {
		t.Fatal("Bitset() did not materialize")
	}
	if dense.Count() != len(want) {
		t.Fatalf("dense count = %d", dense.Count())
	}
	for v := 0; v < n; v++ {
		in := false
		for _, w := range want {
			if int32(v) == w {
				in = true
			}
		}
		if dense.Test(v) != in {
			t.Fatalf("bit %d = %v, want %v", v, dense.Test(v), in)
		}
	}
}

func TestUnion(t *testing.T) {
	a := New(10, []int32{1, 3, 5})
	b := New(10, []int32{3, 4, 9})
	u := Union(a, b)
	if !equalVerts(u.Vertices(), []int32{1, 3, 4, 5, 9}) {
		t.Fatalf("Union = %v", u.Vertices())
	}
	if got := Union(Empty(10), a); got != a {
		t.Fatal("Union(empty, a) != a")
	}
	if got := Union(a, Empty(10)); got != a {
		t.Fatal("Union(a, empty) != a")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Union over different universes did not panic")
		}
	}()
	Union(a, New(11, []int32{1}))
}

func TestFilterAndMap(t *testing.T) {
	s := New(20, []int32{0, 3, 6, 9, 12, 15, 18})
	f := Filter(s, func(v int32) bool { return v%2 == 0 })
	if !equalVerts(f.Vertices(), []int32{0, 6, 12, 18}) {
		t.Fatalf("Filter = %v", f.Vertices())
	}
	hits := make([]int32, 20)
	Map(f, func(v int32) { hits[v] = 1 })
	var total int32
	for _, h := range hits {
		total += h
	}
	if total != int32(f.Size()) {
		t.Fatalf("Map hit %d vertices, want %d", total, f.Size())
	}
}

// bfsLevels runs a BFS over the engine and returns the level array plus the
// concatenated per-round frontiers (the determinism witness).
func bfsLevels(g *graph.Graph, root int32, eng *Engine) ([]int32, []int32) {
	n := g.NumVertices()
	level := make([]int32, n)
	for i := range level {
		level[i] = -1
	}
	visited := par.NewBitset(n)
	visited.Set(int(root))
	level[root] = 0
	f := New(n, []int32{root})
	var seq []int32
	lv := int32(0)
	for !f.IsEmpty() {
		seq = append(seq, f.Vertices()...)
		seq = append(seq, -1) // round separator
		lv++
		cur := lv
		f = eng.EdgeMap(g, f, Ops{
			Cond: func(v int32) bool { return !visited.Test(int(v)) },
			Update: func(u, v int32) bool {
				if visited.TestAndSet(int(v)) {
					level[v] = cur
					return true
				}
				return false
			},
		})
	}
	return level, seq
}

func sequentialLevels(g *graph.Graph, root int32) []int32 {
	n := g.NumVertices()
	lvl := make([]int32, n)
	for i := range lvl {
		lvl[i] = -1
	}
	lvl[root] = 0
	q := []int32{root}
	for len(q) > 0 {
		v := q[0]
		q = q[1:]
		for _, w := range g.Neighbors(v) {
			if lvl[w] == -1 {
				lvl[w] = lvl[v] + 1
				q = append(q, w)
			}
		}
	}
	return lvl
}

// TestEdgeMapDirectionsAgree forces push-only, pull-only and the default
// hybrid over the same BFS and requires identical levels and identical
// per-round frontiers — the push and pull kernels implement the same map.
func TestEdgeMapDirectionsAgree(t *testing.T) {
	for _, g := range []*graph.Graph{pathGraph(300), gridGraph(20, 30), randomGraph(500, 2500, 3)} {
		n := g.NumVertices()
		want := sequentialLevels(g, 0)
		pushLv, pushSeq := bfsLevels(g, 0, &Engine{PullDiv: NoPull})
		pullLv, pullSeq := bfsLevels(g, 0, &Engine{PullDiv: n + 1})
		hybLv, hybSeq := bfsLevels(g, 0, &Engine{})
		for v := 0; v < n; v++ {
			if pushLv[v] != want[v] || pullLv[v] != want[v] || hybLv[v] != want[v] {
				t.Fatalf("level[%d]: push %d pull %d hybrid %d oracle %d",
					v, pushLv[v], pullLv[v], hybLv[v], want[v])
			}
		}
		if !equalVerts(pushSeq, pullSeq) || !equalVerts(pushSeq, hybSeq) {
			t.Fatal("per-round frontiers differ between directions")
		}
	}
}

// TestEdgeMapDeterministicAcrossWorkers pins the engine's central contract:
// frontier membership and order are bit-identical for 1/2/4/8 workers.
func TestEdgeMapDeterministicAcrossWorkers(t *testing.T) {
	defer par.SetWorkers(0)
	g := randomGraph(2000, 12000, 7)
	par.SetWorkers(1)
	refLv, refSeq := bfsLevels(g, 0, &Engine{})
	for _, w := range []int{2, 4, 8} {
		par.SetWorkers(w)
		lv, seq := bfsLevels(g, 0, &Engine{})
		if !equalVerts(seq, refSeq) {
			t.Fatalf("frontier sequence differs with %d workers", w)
		}
		for v := range refLv {
			if lv[v] != refLv[v] {
				t.Fatalf("level[%d] = %d with %d workers, %d with 1", v, lv[v], w, refLv[v])
			}
		}
	}
}

// TestEdgeMapDedup exercises Ops.Dedup: an Update that keeps returning true
// (a CAS-min that improves repeatedly) must still yield a duplicate-free
// subset.
func TestEdgeMapDedup(t *testing.T) {
	// Star: center 0 joined to 1..9; frontier = all leaves, every leaf's
	// update on 0 returns true.
	b := graph.NewBuilder(10)
	for i := 1; i < 10; i++ {
		b.AddEdge(0, int32(i))
	}
	g := b.Build()
	leaves := make([]int32, 9)
	for i := range leaves {
		leaves[i] = int32(i + 1)
	}
	eng := &Engine{PullDiv: NoPull}
	out := eng.EdgeMap(g, New(10, leaves), Ops{
		Dedup:  true,
		Cond:   func(v int32) bool { return v == 0 },
		Update: func(u, v int32) bool { return true },
	})
	if !equalVerts(out.Vertices(), []int32{0}) {
		t.Fatalf("dedup output = %v", out.Vertices())
	}
}

// TestEngineCounters checks the direction bookkeeping the telemetry and the
// hybrid tests rely on.
func TestEngineCounters(t *testing.T) {
	g := pathGraph(100)
	eng := &Engine{PullDiv: NoPull}
	bfsLevels(g, 0, eng)
	if eng.Pulls != 0 || eng.Switches != 0 || eng.Pushes == 0 {
		t.Fatalf("push-only counters: %+v", eng)
	}
	// On a random graph the BFS frontier balloons past n/16 within a couple
	// of hops and shrinks back: the default engine must record both
	// directions and at least one switch.
	g = randomGraph(500, 2500, 3)
	eng = &Engine{}
	bfsLevels(g, 0, eng)
	if eng.Pushes == 0 || eng.Pulls == 0 || eng.Switches == 0 {
		t.Fatalf("hybrid counters: %+v", eng)
	}
}

func TestSetPullDiv(t *testing.T) {
	defer SetPullDiv(0)
	if PullDiv() != DefaultPullDiv {
		t.Fatalf("default PullDiv = %d", PullDiv())
	}
	SetPullDiv(3)
	if PullDiv() != 3 {
		t.Fatalf("PullDiv = %d after SetPullDiv(3)", PullDiv())
	}
	SetPullDiv(-5)
	if PullDiv() != DefaultPullDiv {
		t.Fatalf("PullDiv = %d after SetPullDiv(-5)", PullDiv())
	}
	// An engine override wins over the process default.
	e := &Engine{PullDiv: 2}
	if !e.pullRound(60, 100) {
		t.Fatal("engine PullDiv=2 should pull at 60/100")
	}
	SetPullDiv(2)
	e = &Engine{}
	if !e.pullRound(60, 100) {
		t.Fatal("process PullDiv=2 should pull at 60/100")
	}
}
