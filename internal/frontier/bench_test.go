package frontier

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/par"
)

// benchGraphBFS builds a connected-ish random graph sized so a BFS from
// vertex 0 goes through both sparse and dense rounds.
func benchGraphBFS(b *testing.B) *graph.Graph {
	b.Helper()
	const n, m = 100_000, 400_000
	r := par.NewRNG(42)
	bld := graph.NewBuilder(n)
	// A Hamiltonian-ish backbone keeps the graph connected so every round
	// count is comparable across divisors.
	for i := 0; i < n-1; i++ {
		bld.AddEdge(int32(i), int32(i+1))
	}
	for i := 0; i < m-n+1; i++ {
		bld.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	return bld.Build()
}

func runBFS(g *graph.Graph, eng *Engine) int {
	n := g.NumVertices()
	visited := par.NewBitset(n)
	visited.Set(0)
	f := New(n, []int32{0})
	reached := 1
	for !f.IsEmpty() {
		f = eng.EdgeMap(g, f, Ops{
			Cond: func(v int32) bool { return !visited.Test(int(v)) },
			Update: func(u, v int32) bool {
				return visited.TestAndSet(int(v))
			},
		})
		reached += f.Size()
	}
	return reached
}

// BenchmarkEdgeMapBFSDiv sweeps the direction-switch divisor over a full
// BFS: div=push is pure top-down, the rest pull once the frontier exceeds
// n/div. The sweep justifies DefaultPullDiv (see EXPERIMENTS.md § Frontier
// threshold sweep).
func BenchmarkEdgeMapBFSDiv(b *testing.B) {
	g := benchGraphBFS(b)
	divs := []int{NoPull, 2, 4, 8, 16, 32, 64, 128}
	for _, div := range divs {
		name := fmt.Sprintf("div=%d", div)
		if div == NoPull {
			name = "div=push"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := runBFS(g, &Engine{PullDiv: div}); got != g.NumVertices() {
					b.Fatalf("reached %d of %d", got, g.NumVertices())
				}
			}
		})
	}
}

// BenchmarkSubsetConvert measures the two lazy conversions on a half-full
// subset: dense→sparse (Vertices) and sparse→dense (Bitset).
func BenchmarkSubsetConvert(b *testing.B) {
	const n = 1 << 20
	bits := par.NewBitset(n)
	for v := 0; v < n; v += 2 {
		bits.Set(v)
	}
	b.Run("dense-to-sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := FromBitset(n, bits)
			if len(s.Vertices()) != n/2 {
				b.Fatal("wrong size")
			}
		}
	})
	verts := make([]int32, n/2)
	for i := range verts {
		verts[i] = int32(2 * i)
	}
	b.Run("sparse-to-dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := newSorted(n, verts)
			if s.Bitset().Count() != n/2 {
				b.Fatal("wrong count")
			}
		}
	})
}
