// Package frontier is the repository's Ligra-style traversal engine: a
// VertexSubset with sparse (sorted vertex list) and dense (par.Bitset)
// representations that convert into each other on demand, and a
// direction-optimizing EdgeMap that switches between top-down push and
// bottom-up pull per round using the Beamer heuristic. BFS (plain and
// hybrid), the BFS inside the BRIDGE decomposition, the MPX ball-growing
// decomposition, and the active-set loops of the MIS solvers all run on
// this engine instead of hand-rolled frontier loops.
//
// # Core types
//
// Subset is Ligra's vertexSubset: a set of vertices over [0, n) that
// lazily maintains a sorted vertex list and/or a bitset, materializing
// each representation at most once, on first use. EdgeMap applies a
// relaxation function over the out-edges of a subset and returns the
// subset of updated vertices; Engine carries the direction-switch
// tuning (PullDiv: pull while frontier > n/div).
//
// # Determinism contract
//
// A Subset's member set and its Vertices() order (ascending vertex id)
// are identical under any worker count. EdgeMap guarantees the same for
// the subset it returns — push output is merged from per-chunk buffers
// and sorted into vertex order, pull output is produced in vertex order
// by construction — so algorithms whose per-round state depends only on
// frontier membership are bit-identical across worker counts. All
// fan-out goes through internal/par; the package spawns no goroutines of
// its own.
package frontier
