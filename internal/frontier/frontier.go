package frontier

import (
	"repro/internal/par"
)

// Subset is a set of vertices over the universe [0, n): Ligra's
// vertexSubset. It lazily maintains up to two representations — a sorted
// vertex list and a bitset — materializing each at most once, on first
// use. Methods are not safe for concurrent use (the engine orchestrates
// rounds single-threaded; the parallelism is inside each round).
type Subset struct {
	n     int
	size  int
	verts []int32     // ascending; nil until materialized (unless size == 0)
	bits  *par.Bitset // nil until materialized
}

// New returns the subset of [0, n) holding the given vertices, taking
// ownership of the slice. The list must be duplicate-free; if it is not
// already sorted ascending it is sorted in place.
func New(n int, verts []int32) *Subset {
	if !sortedAsc(verts) {
		par.SortInt32(verts)
	}
	return newSorted(n, verts)
}

// newSorted wraps an already-sorted, duplicate-free vertex list.
func newSorted(n int, verts []int32) *Subset {
	return &Subset{n: n, size: len(verts), verts: verts}
}

// Empty returns the empty subset of [0, n).
func Empty(n int) *Subset { return &Subset{n: n} }

// All returns the full subset {0, …, n-1}.
func All(n int) *Subset {
	verts := make([]int32, n)
	par.Iota(verts)
	return newSorted(n, verts)
}

// FromBitset returns the subset holding the set bits of bits, which must
// have length n. The subset takes ownership of the bitset; the caller must
// not mutate it afterwards.
func FromBitset(n int, bits *par.Bitset) *Subset {
	return &Subset{n: n, size: bits.Count(), bits: bits}
}

// Universe reports n, the size of the vertex universe.
func (s *Subset) Universe() int { return s.n }

// Size reports the number of members.
func (s *Subset) Size() int { return s.size }

// IsEmpty reports whether the subset has no members.
func (s *Subset) IsEmpty() bool { return s.size == 0 }

// Contains reports membership of v, using whichever representation is
// already materialized (the bitset if both are).
func (s *Subset) Contains(v int32) bool {
	if s.bits != nil {
		return s.bits.Test(int(v))
	}
	lo, hi := 0, len(s.verts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.verts[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s.verts) && s.verts[lo] == v
}

// Vertices returns the members in ascending order, materializing the
// sparse representation from the bitset if needed. Callers must not
// mutate the returned slice.
func (s *Subset) Vertices() []int32 {
	if s.verts != nil || s.size == 0 {
		return s.verts
	}
	// Gather set bits per chunk; chunks cover [0, n) in index order, so the
	// concatenation is sorted and identical under any worker count.
	nc := par.NumChunks(s.n)
	bufs := make([][]int32, nc)
	par.RangeIdx(s.n, func(c, lo, hi int) {
		var out []int32
		for v := lo; v < hi; v++ {
			if s.bits.Test(v) {
				out = append(out, int32(v))
			}
		}
		bufs[c] = out
	})
	verts := make([]int32, 0, s.size)
	for _, b := range bufs {
		verts = append(verts, b...)
	}
	s.verts = verts
	return s.verts
}

// Bitset returns the dense representation, materializing it from the
// vertex list if needed. Callers must not mutate the returned bitset.
func (s *Subset) Bitset() *par.Bitset {
	if s.bits == nil {
		s.bits = par.NewBitset(s.n)
		vs := s.verts
		par.For(len(vs), func(i int) {
			s.bits.Set(int(vs[i]))
		})
	}
	return s.bits
}

// IsDense reports whether the dense (bitset) representation is currently
// materialized. Exposed for tests and diagnostics.
func (s *Subset) IsDense() bool { return s.bits != nil }

// Map runs fn over every member in parallel. fn must be safe for
// concurrent calls on distinct vertices.
func Map(s *Subset, fn func(v int32)) {
	vs := s.Vertices()
	par.For(len(vs), func(i int) {
		fn(vs[i])
	})
}

// Filter returns the members satisfying pred as a new subset, preserving
// vertex order. pred runs twice per member (see par.Filter) and must be
// pure and safe for concurrent calls. This is the active-set compaction
// step of the iterative solvers.
func Filter(s *Subset, pred func(v int32) bool) *Subset {
	return newSorted(s.n, par.Filter(s.Vertices(), func(v int32) bool {
		return pred(v)
	}))
}

// Union merges two subsets over the same universe into a new subset
// (duplicates collapse). Used by MPX to add newly started ball centers
// into the surviving frontier each round.
func Union(a, b *Subset) *Subset {
	if a.n != b.n {
		panic("frontier: Union over different universes")
	}
	if a.IsEmpty() {
		return b
	}
	if b.IsEmpty() {
		return a
	}
	av, bv := a.Vertices(), b.Vertices()
	out := make([]int32, 0, len(av)+len(bv))
	i, j := 0, 0
	for i < len(av) && j < len(bv) {
		switch {
		case av[i] < bv[j]:
			out = append(out, av[i])
			i++
		case bv[j] < av[i]:
			out = append(out, bv[j])
			j++
		default:
			out = append(out, av[i])
			i++
			j++
		}
	}
	out = append(out, av[i:]...)
	out = append(out, bv[j:]...)
	return newSorted(a.n, out)
}

// sortedAsc reports whether vs is sorted strictly ascending (duplicates
// count as unsorted so New's contract violation surfaces as a sort, not
// silent double-counting).
func sortedAsc(vs []int32) bool {
	for i := 1; i < len(vs); i++ {
		if vs[i] <= vs[i-1] {
			return false
		}
	}
	return true
}
