package frontier

import (
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// DefaultPullDiv is the default direction-switch divisor: EdgeMap goes
// bottom-up while the frontier holds more than n/DefaultPullDiv vertices.
// This is the Beamer heuristic previously hardcoded in internal/bfs;
// the default is justified by the threshold sweep in EXPERIMENTS.md.
const DefaultPullDiv = 16

// NoPull as an Engine.PullDiv disables bottom-up steps entirely: every
// round pushes. Plain (non-hybrid) BFS runs this way.
const NoPull = -1

// pullDiv is the process-wide default divisor, settable for tuning
// experiments (cmd/benchall plumbs -frontier-div / SYMBREAK_FRONTIER_DIV
// into it). Zero means DefaultPullDiv.
var pullDiv atomic.Int32

// SetPullDiv sets the process-wide default direction-switch divisor.
// d <= 0 restores DefaultPullDiv.
func SetPullDiv(d int) {
	if d < 0 {
		d = 0
	}
	pullDiv.Store(int32(d))
}

// PullDiv reports the process-wide default direction-switch divisor.
func PullDiv() int {
	if d := pullDiv.Load(); d > 0 {
		return int(d)
	}
	return DefaultPullDiv
}

// Ops defines one edge-map relaxation, Ligra's F = (update, cond).
type Ops struct {
	// Update relaxes edge (src, dst) with src in the frontier, returning
	// true when dst should join the output subset. It runs concurrently
	// for many edges and must claim shared state atomically (bitset
	// TestAndSet, CAS-min, …). Unless Dedup is set, Update must return
	// true at most once per dst per round (an atomic claim does this
	// naturally); with Dedup the engine deduplicates the output itself.
	Update func(src, dst int32) bool
	// Cond filters destinations: dst is relaxed only while Cond(dst)
	// holds. In bottom-up rounds Cond is re-checked after every
	// successful update so a vertex that no longer qualifies stops
	// scanning its neighbors early. nil means "always true" (no early
	// exit — a bottom-up vertex then aggregates over all its frontier
	// neighbors, which is what CAS-min relaxations like MPX want).
	Cond func(dst int32) bool
	// Dedup makes the engine deduplicate the output subset, required
	// when Update may return true more than once per dst per round
	// (e.g. a CAS-min that improves repeatedly).
	Dedup bool
}

// Engine runs direction-optimizing edge maps. The zero value is ready to
// use with the process default threshold; it additionally tracks the
// previous round's direction so direction switches can be counted. An
// Engine is not safe for concurrent use — create one per traversal.
type Engine struct {
	// PullDiv overrides the direction-switch divisor for this engine:
	// bottom-up while frontier size exceeds n/PullDiv. Zero uses the
	// process default (PullDiv()); NoPull disables bottom-up.
	PullDiv int

	started  bool
	lastPull bool
	// Pushes, Pulls and Switches count this engine's rounds by direction
	// and the transitions between them.
	Pushes, Pulls, Switches int
}

// Frontier size and direction counters, published per EdgeMap round
// through the gated telemetry registry (zero cost while telemetry is
// off). Direction is "push" or "pull".
var (
	emRounds = telemetry.Default.CounterVec(
		"frontier_edgemap_rounds_total",
		"EdgeMap rounds executed, by traversal direction.", "direction")
	emFrontier = telemetry.Default.CounterVec(
		"frontier_edgemap_frontier_vertices_total",
		"Total input frontier sizes over EdgeMap rounds, by direction.", "direction")
	emSwitches = telemetry.Default.Counter(
		"frontier_direction_switches_total",
		"Push/pull direction changes between consecutive EdgeMap rounds of an engine.")
)

// EdgeMap applies ops over the out-edges of f and returns the subset of
// destinations that joined, choosing top-down push or bottom-up pull per
// the Beamer heuristic. The returned subset's membership and vertex order
// are identical under any worker count (see the package comment); which
// src "wins" a contended Update may differ run to run unless the update
// itself is order-free (TestAndSet membership, CAS-min, …).
func (e *Engine) EdgeMap(g *graph.Graph, f *Subset, ops Ops) *Subset {
	n := g.NumVertices()
	size := f.Size()
	pull := e.pullRound(size, n)
	switched := e.started && pull != e.lastPull
	e.started, e.lastPull = true, pull
	if pull {
		e.Pulls++
	} else {
		e.Pushes++
	}
	if switched {
		e.Switches++
	}
	if telemetry.Enabled() {
		dir := "push"
		if pull {
			dir = "pull"
		}
		emRounds.With(dir).Inc()
		emFrontier.With(dir).Add(float64(size))
		if switched {
			emSwitches.Inc()
		}
	}
	trace.Append("frontier", int64(size))
	if pull {
		return edgeMapPull(g, f, ops)
	}
	return edgeMapPush(g, f, ops)
}

// pullRound decides the direction for a frontier of the given size.
func (e *Engine) pullRound(size, n int) bool {
	div := e.PullDiv
	if div == 0 {
		div = PullDiv()
	}
	if div <= 0 {
		return false
	}
	return size > n/div
}

// edgeMapPush relaxes every out-edge of the frontier top-down. Per-chunk
// output buffers are concatenated in chunk order and sorted, so the
// result is in vertex order regardless of worker count or which chunk
// claimed a contended destination.
//
//lint:hotpath
func edgeMapPush(g *graph.Graph, f *Subset, ops Ops) *Subset {
	n := g.NumVertices()
	vs := f.Vertices()
	nf := len(vs)
	var seen *par.Bitset
	if ops.Dedup {
		seen = par.NewBitset(n)
	}
	nc := par.NumChunks(nf)
	bufs := make([][]int32, nc)
	par.RangeIdx(nf, func(c, lo, hi int) {
		var out []int32
		for i := lo; i < hi; i++ {
			u := vs[i]
			for _, v := range g.Neighbors(u) {
				if ops.Cond != nil && !ops.Cond(v) {
					continue
				}
				if ops.Update(u, v) {
					if seen == nil || seen.TestAndSet(int(v)) {
						out = append(out, v)
					}
				}
			}
		}
		bufs[c] = out
	})
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	next := make([]int32, 0, total)
	for _, b := range bufs {
		next = append(next, b...)
	}
	par.SortInt32(next)
	return newSorted(n, next)
}

// edgeMapPull scans every vertex still satisfying Cond for frontier
// neighbors, bottom-up. Each destination is owned by exactly one chunk,
// so updates to it are race-free; output is produced in vertex order by
// construction. With a Cond, a destination stops scanning as soon as a
// successful update makes Cond false (BFS claims its first frontier
// neighbor in sorted adjacency order — deterministic); without one it
// aggregates over all frontier neighbors.
//
//lint:hotpath
func edgeMapPull(g *graph.Graph, f *Subset, ops Ops) *Subset {
	n := g.NumVertices()
	in := f.Bitset()
	nc := par.NumChunks(n)
	bufs := make([][]int32, nc)
	par.RangeIdx(n, func(c, lo, hi int) {
		var out []int32
		for v := lo; v < hi; v++ {
			dst := int32(v)
			if ops.Cond != nil && !ops.Cond(dst) {
				continue
			}
			added := false
			for _, u := range g.Neighbors(dst) {
				if !in.Test(int(u)) {
					continue
				}
				if ops.Update(u, dst) && !added {
					added = true
					out = append(out, dst)
				}
				if ops.Cond != nil && !ops.Cond(dst) {
					break
				}
			}
		}
		bufs[c] = out
	})
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	next := make([]int32, 0, total)
	for _, b := range bufs {
		next = append(next, b...)
	}
	return newSorted(n, next)
}
