package bipartite

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/par"
)

// completeBipartite returns K_{a,b} with left ids [0,a) and right [a,a+b).
func completeBipartite(a, b int) (*graph.Graph, []bool) {
	bld := graph.NewBuilder(a + b)
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			bld.AddEdge(int32(i), int32(a+j))
		}
	}
	side := make([]bool, a+b)
	for j := 0; j < b; j++ {
		side[a+j] = true
	}
	return bld.Build(), side
}

// randomBipartite returns a random bipartite graph.
func randomBipartite(a, b, m int, seed uint64) (*graph.Graph, []bool) {
	r := par.NewRNG(seed)
	bld := graph.NewBuilder(a + b)
	for i := 0; i < m; i++ {
		bld.AddEdge(int32(r.Intn(a)), int32(a+r.Intn(b)))
	}
	side := make([]bool, a+b)
	for j := 0; j < b; j++ {
		side[a+j] = true
	}
	return bld.Build(), side
}

// bruteMax mirrors the branching oracle from the matching package.
func bruteMax(g *graph.Graph) int {
	edges := g.Edges()
	used := make([]bool, g.NumVertices())
	var best int
	var rec func(i, size int)
	rec = func(i, size int) {
		if size > best {
			best = size
		}
		if size+(len(edges)-i) <= best {
			return
		}
		for j := i; j < len(edges); j++ {
			e := edges[j]
			if used[e.U] || used[e.V] {
				continue
			}
			used[e.U], used[e.V] = true, true
			rec(j+1, size+1)
			used[e.U], used[e.V] = false, false
		}
	}
	rec(0, 0)
	return best
}

func TestMaxMatchingKnown(t *testing.T) {
	g, side := completeBipartite(6, 6)
	m, err := MaxMatching(g, side)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cardinality() != 6 {
		t.Fatalf("K_{6,6} matching %d, want 6", m.Cardinality())
	}
	g, side = completeBipartite(3, 8)
	m, _ = MaxMatching(g, side)
	if m.Cardinality() != 3 {
		t.Fatalf("K_{3,8} matching %d, want 3", m.Cardinality())
	}
	// Empty graph.
	m, err = MaxMatching(graph.NewBuilder(4).Build(), make([]bool, 4))
	if err != nil || m.Cardinality() != 0 {
		t.Fatalf("empty: %v, %d", err, m.Cardinality())
	}
}

func TestMaxMatchingValidPairs(t *testing.T) {
	g, side := randomBipartite(40, 40, 200, 1)
	m, err := MaxMatching(g, side)
	if err != nil {
		t.Fatal(err)
	}
	for v, w := range m.Mate {
		if w == matching.Unmatched {
			continue
		}
		if m.Mate[w] != int32(v) || !g.HasEdge(int32(v), w) {
			t.Fatalf("invalid pair %d-%d", v, w)
		}
	}
}

func TestMaxMatchingMatchesBruteForce(t *testing.T) {
	if err := quick.Check(func(raw []uint16, a8, b8 uint8) bool {
		a := int(a8)%5 + 1
		b := int(b8)%5 + 1
		bld := graph.NewBuilder(a + b)
		for i := 0; i+1 < len(raw); i += 2 {
			bld.AddEdge(int32(int(raw[i])%a), int32(a+int(raw[i+1])%b))
		}
		g := bld.Build()
		side := make([]bool, a+b)
		for j := 0; j < b; j++ {
			side[a+j] = true
		}
		m, err := MaxMatching(g, side)
		if err != nil {
			return false
		}
		return int(m.Cardinality()) == bruteMax(g)
	}, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxMatchingDominatesMaximal(t *testing.T) {
	g, side := randomBipartite(300, 300, 2500, 3)
	opt, err := MaxMatching(g, side)
	if err != nil {
		t.Fatal(err)
	}
	heur, _ := matching.GM(g)
	if heur.Cardinality() > opt.Cardinality() {
		t.Fatalf("maximal %d exceeds maximum %d", heur.Cardinality(), opt.Cardinality())
	}
	if 2*heur.Cardinality() < opt.Cardinality() {
		t.Fatalf("maximal %d below half of maximum %d", heur.Cardinality(), opt.Cardinality())
	}
}

func TestMaxMatchingRejectsNonBipartite(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	if _, err := MaxMatching(b.Build(), make([]bool, 3)); err == nil {
		t.Fatal("triangle accepted")
	}
	if _, err := MaxMatching(b.Build(), make([]bool, 2)); err == nil {
		t.Fatal("short side accepted")
	}
}

func TestSideOfBipartition(t *testing.T) {
	g, _ := randomBipartite(20, 30, 100, 5)
	side, err := SideOfBipartition(g)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Neighbors(int32(v)) {
			if side[w] == side[v] {
				t.Fatalf("2-coloring invalid on edge {%d,%d}", v, w)
			}
		}
	}
	// Odd cycle rejected.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	if _, err := SideOfBipartition(b.Build()); err == nil {
		t.Fatal("triangle 2-colored")
	}
}
