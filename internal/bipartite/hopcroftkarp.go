// Package bipartite provides a Hopcroft–Karp maximum bipartite matching.
// The paper motivates maximal matching with sparse-matrix applications
// (Vastenhouw & Bisseling [29]); there the gold standard is the *maximum*
// matching (the structural rank of the matrix), and this package supplies
// it as an exact quality oracle for the maximal matchings the library
// computes — every maximal matching must reach at least half of it.
package bipartite

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/matching"
)

// MaxMatching computes a maximum matching of a bipartite graph with
// Hopcroft–Karp in O(E·√V). side[v] gives v's side; an error is returned
// if any edge joins two vertices of the same side.
func MaxMatching(g *graph.Graph, side []bool) (*matching.Matching, error) {
	n := g.NumVertices()
	if len(side) != n {
		return nil, fmt.Errorf("bipartite: side has %d entries for %d vertices", len(side), n)
	}
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors(int32(v)) {
			if side[w] == side[v] {
				return nil, fmt.Errorf("bipartite: edge {%d,%d} joins two side-%v vertices", v, w, side[v])
			}
		}
	}

	m := matching.NewMatching(n)
	mate := m.Mate
	const inf = int32(1) << 30
	dist := make([]int32, n)
	queue := make([]int32, 0, n)

	// bfs layers the graph from free left vertices; reports whether an
	// augmenting path exists.
	bfs := func() bool {
		queue = queue[:0]
		found := false
		for v := 0; v < n; v++ {
			if side[v] { // right side handled through left scans
				dist[v] = inf
				continue
			}
			if mate[v] == matching.Unmatched {
				dist[v] = 0
				queue = append(queue, int32(v))
			} else {
				dist[v] = inf
			}
		}
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, w := range g.Neighbors(u) {
				next := mate[w]
				if next == matching.Unmatched {
					found = true
					continue
				}
				if dist[next] == inf {
					dist[next] = dist[u] + 1
					queue = append(queue, next)
				}
			}
		}
		return found
	}

	// dfs extends an augmenting path from left vertex u along the layers.
	var dfs func(u int32) bool
	dfs = func(u int32) bool {
		for _, w := range g.Neighbors(u) {
			next := mate[w]
			if next == matching.Unmatched || (dist[next] == dist[u]+1 && dfs(next)) {
				mate[u] = w
				mate[w] = u
				return true
			}
		}
		dist[u] = inf
		return false
	}

	for bfs() {
		for v := 0; v < n; v++ {
			if !side[v] && mate[v] == matching.Unmatched {
				dfs(int32(v))
			}
		}
	}
	return m, nil
}

// SideOfBipartition 2-colors each connected component of g by BFS,
// returning a valid side assignment, or an error containing an odd cycle
// witness if g is not bipartite.
func SideOfBipartition(g *graph.Graph) ([]bool, error) {
	n := g.NumVertices()
	side := make([]bool, n)
	seen := make([]bool, n)
	queue := make([]int32, 0, n)
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		seen[s] = true
		queue = append(queue[:0], int32(s))
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			for _, w := range g.Neighbors(v) {
				if !seen[w] {
					seen[w] = true
					side[w] = !side[v]
					queue = append(queue, w)
				} else if side[w] == side[v] {
					return nil, fmt.Errorf("bipartite: odd cycle through edge {%d,%d}", v, w)
				}
			}
		}
	}
	return side, nil
}
