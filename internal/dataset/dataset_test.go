package dataset

import (
	"os"
	"testing"

	"repro/internal/graph"
)

const testScale = 0.05

func TestRegistryComplete(t *testing.T) {
	if len(All()) != 12 {
		t.Fatalf("registry has %d instances, Table II has 12", len(All()))
	}
	seen := map[string]bool{}
	for _, s := range All() {
		if s.Name == "" || s.Class == "" {
			t.Fatalf("spec missing name or class: %+v", s)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate instance %s", s.Name)
		}
		seen[s.Name] = true
		if s.Paper.Vertices <= 0 || s.Paper.Edges <= 0 {
			t.Fatalf("%s: paper row not filled", s.Name)
		}
		if s.MMRandPartsCPU < 2 || s.MMRandPartsGPU < 2 {
			t.Fatalf("%s: partition counts not set", s.Name)
		}
	}
}

func TestGetAndNames(t *testing.T) {
	if _, ok := Get("lp1"); !ok {
		t.Fatal("lp1 missing")
	}
	if _, ok := Get("no-such"); ok {
		t.Fatal("bogus name resolved")
	}
	names := Names()
	if len(names) != 12 || names[0] != "c-73" {
		t.Fatalf("Names() = %v", names)
	}
	sorted := SortedByName()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].Name >= sorted[i].Name {
			t.Fatal("SortedByName not sorted")
		}
	}
}

func TestAllInstancesBuildValidConnected(t *testing.T) {
	for _, s := range All() {
		g := s.Build(testScale, 1)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if _, nc := graph.ConnectedComponents(g); nc != 1 {
			t.Fatalf("%s: %d components after cleanup", s.Name, nc)
		}
		if g.NumVertices() < 8 || g.NumEdges() < 4 {
			t.Fatalf("%s: degenerate build n=%d m=%d", s.Name, g.NumVertices(), g.NumEdges())
		}
	}
}

func TestStructuralColumnsQualitative(t *testing.T) {
	// The decisive Table II columns must hold qualitatively at test scale:
	// high-%DEG2 instances stay high, zero stays ~zero, and relative
	// ordering of the extremes is preserved.
	stats := map[string]graph.Stats{}
	for _, name := range []string{"lp1", "rgg-n-2-23-s0", "germany-osm", "webbase-1M"} {
		s, _ := Get(name)
		g := Load(s, testScale, 1)
		stats[name] = graph.ComputeStats(g, true)
	}
	if stats["lp1"].PctDeg2 < 80 {
		t.Fatalf("lp1 %%DEG2 = %.1f, want > 80", stats["lp1"].PctDeg2)
	}
	if stats["lp1"].PctBridges < 75 {
		t.Fatalf("lp1 %%BRIDGES = %.1f, want > 75", stats["lp1"].PctBridges)
	}
	if stats["rgg-n-2-23-s0"].PctDeg2 > 5 {
		t.Fatalf("rgg %%DEG2 = %.1f, want ≈ 0", stats["rgg-n-2-23-s0"].PctDeg2)
	}
	if stats["germany-osm"].PctDeg2 < 60 {
		t.Fatalf("germany-osm %%DEG2 = %.1f, want > 60", stats["germany-osm"].PctDeg2)
	}
	if stats["webbase-1M"].PctBridges < 20 {
		t.Fatalf("webbase %%BRIDGES = %.1f, want > 20", stats["webbase-1M"].PctBridges)
	}
}

func TestLoadCaches(t *testing.T) {
	defer ClearCache()
	s, _ := Get("lp1")
	a := Load(s, testScale, 7)
	b := Load(s, testScale, 7)
	if a != b {
		t.Fatal("Load did not cache")
	}
	c := Load(s, testScale, 8)
	if a == c {
		t.Fatal("different seeds shared a cache entry")
	}
}

func TestScaleChangesSize(t *testing.T) {
	s, _ := Get("coAuthorsCiteseer")
	small := s.Build(0.02, 3)
	large := s.Build(0.08, 3)
	if large.NumVertices() <= small.NumVertices() {
		t.Fatalf("scale had no effect: %d vs %d", small.NumVertices(), large.NumVertices())
	}
}

func TestDiskCache(t *testing.T) {
	defer ClearCache()
	dir := t.TempDir()
	t.Setenv(CacheDirEnv, dir)
	s, _ := Get("lp1")

	a := Load(s, testScale, 9)
	p := diskCachePath(dir, s, testScale, 9)
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("disk cache entry not written: %v", err)
	}

	// A fresh in-process cache must hit the disk entry and agree exactly.
	ClearCache()
	b := Load(s, testScale, 9)
	if a == b {
		t.Fatal("in-process cache not cleared (test is vacuous)")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("disk-cached graph fingerprint %#x, want %#x", b.Fingerprint(), a.Fingerprint())
	}

	// A corrupt entry falls back to the generator and is repaired.
	ClearCache()
	if err := os.WriteFile(p, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := Load(s, testScale, 9)
	if c.Fingerprint() != a.Fingerprint() {
		t.Fatal("corrupt disk entry changed the loaded graph")
	}
	if fi, err := os.Stat(p); err != nil || fi.Size() <= 4 {
		t.Fatalf("corrupt entry not rewritten (err=%v)", err)
	}
}
