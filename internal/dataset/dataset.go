// Package dataset registers the twelve synthetic analogs of the paper's
// Table II graphs. Each spec carries the paper's published statistics (for
// the paper-vs-measured comparison in EXPERIMENTS.md), a deterministic
// builder at an adjustable scale, and the per-instance algorithm parameters
// the paper reports (the RAND partition counts).
//
// Scale 1.0 is the default benchmarking size — a few hundred thousand edges
// per instance, chosen so the full experiment grid runs on a laptop while
// preserving every structural column that drives the paper's results.
// Tests use smaller scales.
package dataset

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"sync"

	"repro/internal/gen"
	"repro/internal/graph"
)

// PaperRow holds the columns of Table II as published.
type PaperRow struct {
	Vertices   int
	Edges      int64
	PctDeg2    float64
	PctBridges float64
	AvgDegree  float64
}

// Spec describes one dataset instance.
type Spec struct {
	// Name is the paper's instance name (e.g. "lp1").
	Name string
	// Class is the paper's graph class row label.
	Class string
	// Paper holds the published Table II statistics for comparison.
	Paper PaperRow
	// MMRandPartsCPU / MMRandPartsGPU are the RAND partition counts for
	// the MM experiments (paper: 10 on CPU, 4 on GPU; raised toward the
	// average degree on the kron instances).
	MMRandPartsCPU int
	MMRandPartsGPU int
	// Build constructs the analog at the given scale (1.0 = default bench
	// size) with a deterministic seed.
	Build func(scale float64, seed uint64) *graph.Graph
}

// scaled returns max(8, round(base·scale)).
func scaled(base int, scale float64) int {
	n := int(math.Round(float64(base) * scale))
	if n < 8 {
		n = 8
	}
	return n
}

// kronScale returns the RMAT scale whose 2^s is closest to base·scale.
func kronScale(base int, scale float64) int {
	target := float64(base) * scale
	s := int(math.Round(math.Log2(target)))
	if s < 4 {
		s = 4
	}
	return s
}

// specs lists the twelve instances in Table II order.
var specs = []Spec{
	{
		Name: "c-73", Class: "Numerical",
		Paper:          PaperRow{169422, 1109852, 48.7, 14.9, 6.6},
		MMRandPartsCPU: 10, MMRandPartsGPU: 4,
		Build: func(scale float64, seed uint64) *graph.Graph {
			return connect(gen.Banded(scaled(40000, scale), 120, 5, 0.35, seed))
		},
	},
	{
		Name: "lp1", Class: "Numerical",
		Paper:          PaperRow{534388, 1109032, 93.8, 92.7, 2.1},
		MMRandPartsCPU: 10, MMRandPartsGPU: 4,
		Build: func(scale float64, seed uint64) *graph.Graph {
			return connect(gen.LP(scaled(120000, scale), seed))
		},
	},
	{
		Name: "Cit-Patents", Class: "Collaboration",
		Paper:          PaperRow{3774768, 33045146, 28.06, 4.1, 8.8},
		MMRandPartsCPU: 10, MMRandPartsGPU: 4,
		Build: func(scale float64, seed uint64) *graph.Graph {
			core := gen.PrefAttachVar(scaled(48000, scale), 1, 8, seed)
			return connect(gen.PadChains(core, scaled(11000, scale), 1, seed+1))
		},
	},
	{
		Name: "coAuthorsCiteseer", Class: "Collaboration",
		Paper:          PaperRow{227320, 1628268, 28.97, 3.7, 7.2},
		MMRandPartsCPU: 10, MMRandPartsGPU: 4,
		Build: func(scale float64, seed uint64) *graph.Graph {
			core := gen.Community(scaled(38000, scale), 25, 4, 1, seed)
			return connect(gen.PadChains(core, scaled(13000, scale), 1, seed+1))
		},
	},
	{
		Name: "germany-osm", Class: "Road",
		Paper:          PaperRow{11548845, 24738362, 82.27, 19.9, 2.1},
		MMRandPartsCPU: 10, MMRandPartsGPU: 4,
		Build: func(scale float64, seed uint64) *graph.Graph {
			side := scaled(55, math.Sqrt(scale))
			return connect(gen.Road(side, side, 20, 0.5, seed))
		},
	},
	{
		Name: "road-central", Class: "Road",
		Paper:          PaperRow{14081816, 33866826, 50.91, 25, 2.4},
		MMRandPartsCPU: 10, MMRandPartsGPU: 4,
		Build: func(scale float64, seed uint64) *graph.Graph {
			side := scaled(170, math.Sqrt(scale))
			return connect(gen.Road(side, side, 1, 1.0, seed))
		},
	},
	{
		Name: "kron-g500-logn20", Class: "Synthetic",
		Paper:          PaperRow{1048576, 89238804, 42.1, 0.3, 85.1},
		MMRandPartsCPU: 32, MMRandPartsGPU: 16, // paper raises k toward the average degree on kron
		Build: func(scale float64, seed uint64) *graph.Graph {
			return connect(gen.Kron(kronScale(32768, scale), 24, seed))
		},
	},
	{
		Name: "kron-g500-logn21", Class: "Synthetic",
		Paper:          PaperRow{2097152, 182081864, 44.59, 0.3, 86.8},
		MMRandPartsCPU: 32, MMRandPartsGPU: 16,
		Build: func(scale float64, seed uint64) *graph.Graph {
			return connect(gen.Kron(kronScale(65536, scale), 24, seed))
		},
	},
	{
		Name: "rgg-n-2-23-s0", Class: "Random geometric",
		Paper:          PaperRow{8388608, 127002794, 0, 0, 15.1},
		MMRandPartsCPU: 10, MMRandPartsGPU: 4,
		Build: func(scale float64, seed uint64) *graph.Graph {
			n := scaled(90000, scale)
			return connect(gen.RGG(n, gen.DegreeRadius(n, 15.1), seed))
		},
	},
	{
		Name: "rgg-n-2-24-s0", Class: "Random geometric",
		Paper:          PaperRow{16777216, 265114402, 0, 0, 15.8},
		MMRandPartsCPU: 10, MMRandPartsGPU: 4,
		Build: func(scale float64, seed uint64) *graph.Graph {
			n := scaled(140000, scale)
			return connect(gen.RGG(n, gen.DegreeRadius(n, 15.8), seed))
		},
	},
	{
		Name: "web-Google", Class: "Web",
		Paper:          PaperRow{916428, 10296998, 30.67, 4, 11.2},
		MMRandPartsCPU: 10, MMRandPartsGPU: 4,
		Build: func(scale float64, seed uint64) *graph.Graph {
			core := gen.PrefAttachVar(scaled(33000, scale), 2, 12, seed)
			return connect(gen.PadChains(core, scaled(12000, scale), 1, seed+1))
		},
	},
	{
		Name: "webbase-1M", Class: "Web",
		Paper:          PaperRow{1000005, 4216602, 87.35, 38.3, 4.2},
		MMRandPartsCPU: 10, MMRandPartsGPU: 4,
		Build: func(scale float64, seed uint64) *graph.Graph {
			return connect(gen.Web(scaled(120000, scale), seed))
		},
	},
}

// connect applies the paper's dataset cleanup: add edges so the graph is
// connected.
func connect(g *graph.Graph) *graph.Graph {
	out, _ := graph.Connect(g)
	return out
}

// All returns the specs in Table II order.
func All() []Spec {
	out := make([]Spec, len(specs))
	copy(out, specs)
	return out
}

// Names returns the instance names in Table II order.
func Names() []string {
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// Get returns the spec with the given name.
func Get(name string) (Spec, bool) {
	for _, s := range specs {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// cache memoizes built graphs per (name, scale, seed) so a harness run over
// many experiments builds each instance once.
var cache sync.Map

// CacheDirEnv names the environment variable that, when set to a writable
// directory, makes Load keep built instances as .scsr files there. A cached
// instance loads via the binary fast path (mmap on raw little-endian
// hosts) instead of regenerating, which turns repeat experiment runs from
// minutes of generator work into milliseconds of open.
const CacheDirEnv = "SYMBREAK_DATASET_CACHE"

// diskCachePath names the on-disk cache entry for (name, scale, seed).
func diskCachePath(dir string, s Spec, scale float64, seed uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s@%g@%d.scsr", s.Name, scale, seed))
}

// Load builds (or returns the cached) graph for a spec. With CacheDirEnv
// set, the disk cache is consulted between the in-process map and the
// generator; cache misses are written back best-effort (a failed write
// never fails the load).
func Load(s Spec, scale float64, seed uint64) *graph.Graph {
	key := fmt.Sprintf("%s|%g|%d", s.Name, scale, seed)
	if g, ok := cache.Load(key); ok {
		return g.(*graph.Graph)
	}
	dir := os.Getenv(CacheDirEnv)
	if dir != "" {
		p := diskCachePath(dir, s, scale, seed)
		if bg, err := graph.OpenBinary(p); err == nil {
			// The mapping (if any) is retained: cached instances live for
			// the run, exactly like generator-built ones.
			cache.Store(key, bg.Graph)
			return bg.Graph
		}
		// Missing or unreadable entry: rebuild (and overwrite) below.
	}
	g := s.Build(scale, seed)
	if dir != "" {
		writeDiskCache(diskCachePath(dir, s, scale, seed), g)
	}
	cache.Store(key, g)
	return g
}

// writeDiskCache persists g atomically (temp file + rename, so concurrent
// experiment processes never observe a half-written entry).
func writeDiskCache(path string, g *graph.Graph) {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".scsr-cache-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	tmp.Close()
	if err := graph.WriteBinaryFile(name, g, graph.BinaryOptions{}); err != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
	}
}

// ClearCache drops all memoized graphs (tests use it to bound memory).
func ClearCache() {
	cache.Range(func(k, v any) bool {
		cache.Delete(k)
		return true
	})
}

// SortedByName returns the specs sorted by name (for stable CLI listings).
func SortedByName() []Spec {
	out := All()
	slices.SortFunc(out, func(a, b Spec) int { return strings.Compare(a.Name, b.Name) })
	return out
}
