package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// withTracing runs fn with collection on and a fresh tree, restoring the
// previous state after.
func withTracing(t *testing.T, fn func()) {
	t.Helper()
	was := Enabled()
	Enable(true)
	Reset()
	defer func() {
		Enable(was)
		Reset()
	}()
	fn()
}

func TestNesting(t *testing.T) {
	withTracing(t, func() {
		outer := Begin("outer")
		inner := Begin("inner")
		leaf := Begin("leaf")
		leaf.Add("work", 3)
		leaf.End()
		inner.End()
		sibling := Begin("sibling")
		sibling.End()
		outer.End()

		snap := Snapshot()
		if len(snap.Children) != 1 || snap.Children[0].Name != "outer" {
			t.Fatalf("want one top-level span 'outer', got %+v", snap.Children)
		}
		o := snap.Children[0]
		if len(o.Children) != 2 || o.Children[0].Name != "inner" || o.Children[1].Name != "sibling" {
			t.Fatalf("outer children = %+v, want [inner sibling]", o.Children)
		}
		in := o.Children[0]
		if len(in.Children) != 1 || in.Children[0].Name != "leaf" {
			t.Fatalf("inner children = %+v, want [leaf]", in.Children)
		}
		if got := in.Children[0].Counter("work"); got != 3 {
			t.Fatalf("leaf work counter = %d, want 3", got)
		}
		// Durations nest: a parent's time covers its children.
		if o.Dur() < in.Dur() || in.Dur() < in.Children[0].Dur() {
			t.Fatalf("durations do not nest: outer=%v inner=%v leaf=%v",
				o.Dur(), in.Dur(), in.Children[0].Dur())
		}
		if o.ChildSum() > o.Dur() {
			t.Fatalf("children sum %v exceeds parent %v", o.ChildSum(), o.Dur())
		}
	})
}

func TestImplicitCurrentSpan(t *testing.T) {
	withTracing(t, func() {
		sp := Begin("phase")
		Add("launches", 2)
		Add("launches", 1)
		Append("frontier", 10)
		Append("frontier", 4)
		sp.End()
		// Counters after the span closed land on the root.
		Add("stray", 1)

		snap := Snapshot()
		p := snap.Find("phase")
		if p == nil {
			t.Fatal("span 'phase' missing from snapshot")
		}
		if got := p.Counter("launches"); got != 3 {
			t.Fatalf("launches = %d, want 3", got)
		}
		if got := p.Series["frontier"]; len(got) != 2 || got[0] != 10 || got[1] != 4 {
			t.Fatalf("frontier series = %v, want [10 4]", got)
		}
		if got := snap.Counter("stray"); got != 1 {
			t.Fatalf("root stray counter = %d, want 1", got)
		}
	})
}

func TestDisabledNil(t *testing.T) {
	Enable(false)
	Reset()
	sp := Begin("off")
	if sp != nil {
		t.Fatal("Begin must return nil when disabled")
	}
	// Every operation must be inert on the nil span and globals.
	sp.Add("c", 1)
	sp.Append("s", 1)
	sp.End()
	Add("c", 1)
	Append("s", 1)
	if sp2 := Beginf("off-%d", 7); sp2 != nil {
		t.Fatal("Beginf must return nil when disabled")
	}
	if snap := Snapshot(); len(snap.Children) != 0 || len(snap.Counters) != 0 {
		t.Fatalf("disabled tracing recorded data: %+v", snap)
	}
}

// TestDisabledZeroAlloc pins the zero-cost-when-disabled contract: the
// full span/counter/series call pattern of an instrumented solver phase
// must not allocate at all while collection is off.
func TestDisabledZeroAlloc(t *testing.T) {
	Enable(false)
	Reset()
	allocs := testing.AllocsPerRun(1000, func() {
		sp := Begin("phase")
		sp.Add("matched", 1)
		Add("launches", 1)
		Append("frontier", 42)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates %v per span, want 0", allocs)
	}
}

// TestConcurrentSpans exercises the tracer from many goroutines at once —
// the -race safety check. Nesting across goroutines is submission-order,
// but the tracer must never race, deadlock, or lose counters.
func TestConcurrentSpans(t *testing.T) {
	withTracing(t, func() {
		const workers = 8
		const perWorker = 200
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					sp := Begin("span")
					sp.Add("n", 1)
					Add("global", 1)
					Append("tick", int64(i))
					sp.End()
				}
			}(w)
		}
		wg.Wait()
		snap := Snapshot()
		var spans, n int64
		var walk func(e Export)
		walk = func(e Export) {
			if e.Name == "span" {
				spans++
				n += e.Counter("n")
			}
			for _, c := range e.Children {
				walk(c)
			}
		}
		walk(snap)
		if spans != workers*perWorker {
			t.Fatalf("recorded %d spans, want %d", spans, workers*perWorker)
		}
		if n != workers*perWorker {
			t.Fatalf("per-span counters sum to %d, want %d", n, workers*perWorker)
		}
	})
}

// TestConcurrentSnapshotHammer runs writers (Begin/End/Add/Append via
// both Begin and Beginf) against concurrent readers calling Snapshot —
// the -race check that exposition (the /trace endpoint snapshots live
// trees) cannot tear the structures it copies.
func TestConcurrentSnapshotHammer(t *testing.T) {
	withTracing(t, func() {
		const writers = 6
		const readers = 2
		const perWorker = 300
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					sp := Beginf("w%d-span", w)
					sp.Add("n", 1)
					Add("global", 1)
					Append("tick", int64(i))
					sp.End()
				}
			}(w)
		}
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					snap := Snapshot()
					// The copy must be internally consistent enough to
					// walk and re-walk.
					_ = snap.ChildSum()
					_ = snap.Find("w0-span")
				}
			}()
		}
		wg.Wait()
		snap := Snapshot()
		var n int64
		var walk func(e Export)
		walk = func(e Export) {
			n += e.Counter("n")
			for _, c := range e.Children {
				walk(c)
			}
		}
		walk(snap)
		if n != writers*perWorker {
			t.Fatalf("per-span counters sum to %d, want %d", n, writers*perWorker)
		}
	})
}

func TestBeginfFormatsWhenEnabled(t *testing.T) {
	withTracing(t, func() {
		sp := Beginf("cell %s/%d", "lp1", 7)
		sp.End()
		if snap := Snapshot(); snap.Find("cell lp1/7") == nil {
			t.Fatalf("Beginf did not format the span name: %+v", snap.Children)
		}
	})
}

func TestOutOfOrderEnd(t *testing.T) {
	withTracing(t, func() {
		a := Begin("a")
		b := Begin("b")
		a.End() // parent first: b stays open but cur must recover
		b.End()
		after := Begin("after")
		after.End()
		snap := Snapshot()
		if len(snap.Children) != 2 || snap.Children[1].Name != "after" {
			t.Fatalf("after out-of-order End, top-level = %+v, want [a after]", snap.Children)
		}
	})
}

func TestResetDropsData(t *testing.T) {
	withTracing(t, func() {
		Begin("kept").End()
		Reset()
		if snap := Snapshot(); len(snap.Children) != 0 {
			t.Fatalf("Reset left spans behind: %+v", snap.Children)
		}
	})
}

func TestSnapshotOfOpenSpan(t *testing.T) {
	withTracing(t, func() {
		sp := Begin("open")
		time.Sleep(time.Millisecond)
		snap := Snapshot()
		sp.End()
		o := snap.Find("open")
		if o == nil || o.Dur() < time.Millisecond {
			t.Fatalf("open span should export elapsed-so-far time, got %+v", o)
		}
	})
}

func TestExportJSONAndRender(t *testing.T) {
	withTracing(t, func() {
		cell := Begin("cell lp1/MM/RAND/CPU")
		d := Begin("decomp")
		d.Add("cross_edges", 120)
		d.End()
		s := Begin("solve")
		s.Add("rounds", 9)
		s.Append("matched", 50)
		s.Append("matched", 80)
		s.End()
		cell.End()

		snap := Snapshot()
		var buf bytes.Buffer
		if err := snap.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		var back Export
		if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
			t.Fatalf("exported JSON does not round-trip: %v", err)
		}
		if back.Find("decomp") == nil || back.Find("solve") == nil {
			t.Fatalf("round-tripped JSON lost spans: %s", buf.String())
		}
		if got := back.Find("solve").Counter("rounds"); got != 9 {
			t.Fatalf("rounds counter = %d after round-trip, want 9", got)
		}

		table := snap.Render()
		for _, want := range []string{"cell lp1/MM/RAND/CPU", "decomp", "cross_edges=120", "rounds=9", "matched[2 rounds, last=80]"} {
			if !strings.Contains(table, want) {
				t.Fatalf("rendered table missing %q:\n%s", want, table)
			}
		}
	})
}
