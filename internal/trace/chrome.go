package trace

import (
	"encoding/json"
	"io"
	"math"
)

// This file converts span trees to the Chrome trace-event format (the
// JSON Array/Object format documented in the Trace Event Format spec), so
// a benchall -traceout tree opens directly in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing:
//
//   - each Export passed to ExportChromeTrace becomes one process (pid),
//     named by a process_name metadata event — benchall passes one tree
//     per experiment, so experiments appear as separate process tracks;
//   - spans become complete events (ph "X") with microsecond ts/dur,
//     nested by their real timestamps, carrying their counters in args;
//   - per-round series become counter events (ph "C") — one track per
//     series name, its samples spread evenly across the owning span, so
//     frontier/matched progressions render as scrubable area charts under
//     the span that produced them.
//
// Timestamps are normalized: the earliest span start across all trees is
// ts 0. Trees that predate StartNs (older -traceout files re-exported
// through this API) fall back to sequential child layout inside the
// parent, which preserves ordering and durations but not gaps.

// chromeEvent is one entry of the traceEvents array. Fields follow the
// trace-event spec; ts and dur are in microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the top-level JSON Object format.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ExportChromeTrace writes the trees in Chrome trace-event JSON. Each
// tree becomes its own process track, named by the tree's root Name.
func ExportChromeTrace(w io.Writer, trees ...Export) error {
	epoch := int64(math.MaxInt64)
	var findEpoch func(e Export)
	findEpoch = func(e Export) {
		if e.StartNs > 0 && e.StartNs < epoch {
			epoch = e.StartNs
		}
		for _, c := range e.Children {
			findEpoch(c)
		}
	}
	for _, t := range trees {
		findEpoch(t)
	}
	if epoch == math.MaxInt64 {
		epoch = 0
	}

	var events []chromeEvent
	for i, t := range trees {
		pid := i + 1
		name := t.Name
		if name == "" {
			name = "trace"
		}
		events = append(events,
			chromeEvent{Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
				Args: map[string]any{"name": name}},
			chromeEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: 1,
				Args: map[string]any{"name": "spans"}},
		)
		events = appendSpanEvents(events, t, pid, epoch, 0)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// appendSpanEvents emits e and its subtree for process pid. fallbackNs is
// the epoch-relative start to assume when e carries no StartNs (laid out
// sequentially after its preceding siblings).
func appendSpanEvents(events []chromeEvent, e Export, pid int, epoch, fallbackNs int64) []chromeEvent {
	startNs := fallbackNs
	if e.StartNs > 0 {
		startNs = e.StartNs - epoch
	}
	ev := chromeEvent{
		Name: e.Name,
		Ph:   "X",
		Ts:   toMicros(startNs),
		Dur:  toMicros(e.DurNs),
		Pid:  pid,
		Tid:  1,
	}
	if len(e.Counters) > 0 {
		ev.Args = map[string]any{}
		for _, k := range sortedKeys(e.Counters) {
			ev.Args[k] = e.Counters[k]
		}
	}
	events = append(events, ev)

	// Series → counter tracks: n samples spread evenly across the span.
	for _, k := range sortedKeys(e.Series) {
		vals := e.Series[k]
		if len(vals) == 0 {
			continue
		}
		step := e.DurNs / int64(len(vals))
		for i, v := range vals {
			events = append(events, chromeEvent{
				Name: k,
				Ph:   "C",
				Ts:   toMicros(startNs + int64(i)*step),
				Pid:  pid,
				Tid:  0,
				Args: map[string]any{k: v},
			})
		}
	}

	childFallback := startNs
	for _, c := range e.Children {
		events = appendSpanEvents(events, c, pid, epoch, childFallback)
		childFallback += c.DurNs
	}
	return events
}

// toMicros converts nanoseconds to the spec's microsecond unit, keeping
// sub-microsecond precision as a fraction.
func toMicros(ns int64) float64 { return float64(ns) / 1e3 }
