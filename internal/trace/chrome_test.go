package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// chromeFixture is a hand-built two-experiment forest with fixed
// timestamps, exercising nesting, counters, series, and the pre-StartNs
// fallback layout.
func chromeFixture() []Export {
	const epoch = 1_700_000_000_000_000_000 // fixed Unix ns
	return []Export{
		{
			Name: "table1", StartNs: epoch, DurNs: 2_000_000,
			Children: []Export{
				{
					Name: "cell lp1/MM/RAND/CPU", StartNs: epoch, DurNs: 2_000_000,
					Counters: map[string]int64{"rounds": 24},
					Children: []Export{
						{Name: "decomp", StartNs: epoch, DurNs: 700_000,
							Counters: map[string]int64{"parts": 10}},
						{Name: "solve", StartNs: epoch + 700_000, DurNs: 1_300_000,
							Series: map[string][]int64{"frontier": {100, 40, 10, 0}}},
					},
				},
			},
		},
		{
			// No StartNs anywhere: children lay out sequentially.
			Name: "fig2", DurNs: 300_000,
			Children: []Export{
				{Name: "a", DurNs: 100_000},
				{Name: "b", DurNs: 200_000},
			},
		},
	}
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportChromeTrace(&buf, chromeFixture()...); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome trace differs from golden:\n--- got ---\n%s--- want ---\n%s",
			buf.Bytes(), want)
	}
}

// TestChromeTraceSchema validates the fields Perfetto/chrome://tracing
// require: every event has ph and pid/tid, duration events carry ts and
// dur, and the file parses as the JSON Object format with a traceEvents
// array.
func TestChromeTraceSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportChromeTrace(&buf, chromeFixture()...); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("no traceEvents emitted")
	}
	var sawX, sawC, sawM bool
	for i, ev := range file.TraceEvents {
		for _, req := range []string{"ph", "pid", "tid", "name"} {
			if _, ok := ev[req]; !ok {
				t.Fatalf("event %d missing required field %q: %v", i, req, ev)
			}
		}
		var ph string
		if err := json.Unmarshal(ev["ph"], &ph); err != nil {
			t.Fatal(err)
		}
		switch ph {
		case "X":
			sawX = true
			if _, ok := ev["ts"]; !ok {
				t.Fatalf("complete event %d missing ts: %v", i, ev)
			}
			var dur float64
			if err := json.Unmarshal(ev["dur"], &dur); err != nil {
				t.Fatalf("complete event %d: dur missing or invalid: %v", i, ev)
			}
			if dur < 0 {
				t.Fatalf("complete event %d has negative dur: %v", i, ev)
			}
		case "C":
			sawC = true
			if _, ok := ev["ts"]; !ok {
				t.Fatalf("counter event %d missing ts: %v", i, ev)
			}
			if _, ok := ev["args"]; !ok {
				t.Fatalf("counter event %d missing args: %v", i, ev)
			}
		case "M":
			sawM = true
		default:
			t.Fatalf("unexpected phase %q in event %d", ph, i)
		}
	}
	if !sawX || !sawC || !sawM {
		t.Fatalf("event mix incomplete: X=%v C=%v M=%v", sawX, sawC, sawM)
	}
}

// TestChromeTraceFromLiveSpans round-trips a recorded tree (real
// timestamps) through the exporter and checks that children inherit the
// epoch normalization: all ts ≥ 0 and nested ts within the parent window.
func TestChromeTraceFromLiveSpans(t *testing.T) {
	withTracing(t, func() {
		outer := Begin("outer")
		inner := Begin("inner")
		Append("frontier", 7)
		inner.End()
		outer.End()

		snap := Snapshot()
		var buf bytes.Buffer
		if err := ExportChromeTrace(&buf, snap); err != nil {
			t.Fatal(err)
		}
		var file struct {
			TraceEvents []chromeEvent `json:"traceEvents"`
		}
		if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
			t.Fatal(err)
		}
		var outerEv, innerEv *chromeEvent
		for i := range file.TraceEvents {
			switch file.TraceEvents[i].Name {
			case "outer":
				outerEv = &file.TraceEvents[i]
			case "inner":
				innerEv = &file.TraceEvents[i]
			}
		}
		if outerEv == nil || innerEv == nil {
			t.Fatalf("missing span events: %s", buf.String())
		}
		if outerEv.Ts < 0 || innerEv.Ts < outerEv.Ts {
			t.Fatalf("timestamps not normalized: outer=%v inner=%v", outerEv.Ts, innerEv.Ts)
		}
		if innerEv.Ts+innerEv.Dur > outerEv.Ts+outerEv.Dur+1 { // +1µs slack
			t.Fatalf("inner extends past outer: inner=[%v,%v] outer=[%v,%v]",
				innerEv.Ts, innerEv.Ts+innerEv.Dur, outerEv.Ts, outerEv.Ts+outerEv.Dur)
		}
	})
}
