package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"slices"
	"strings"
	"time"
)

// Export is the serialized form of a span tree — the JSON schema consumed
// by benchall -traceout (documented in DESIGN.md § Observability). Open
// spans export their elapsed-so-far duration.
type Export struct {
	// Name is the span name ("cell lp1/MM/RAND/CPU", "decomp", ...).
	Name string `json:"name"`
	// StartNs is the span's wall-clock start in Unix nanoseconds (0 for
	// the synthetic root, which is never timed). Absolute rather than
	// parent-relative so ExportChromeTrace can place spans — and the gaps
	// between them — on a real timeline.
	StartNs int64 `json:"start_ns,omitempty"`
	// DurNs is the span wall time in nanoseconds.
	DurNs int64 `json:"dur_ns"`
	// Counters are the span's named accumulators.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Series are the span's per-round sequences.
	Series map[string][]int64 `json:"series,omitempty"`
	// Children are the nested phases, in Begin order.
	Children []Export `json:"children,omitempty"`
}

// Dur is the span wall time as a Duration.
func (e Export) Dur() time.Duration { return time.Duration(e.DurNs) }

// ChildSum is the total wall time of the direct children — compare
// against Dur to see how much of a phase its sub-phases account for.
func (e Export) ChildSum() time.Duration {
	var sum int64
	for _, c := range e.Children {
		sum += c.DurNs
	}
	return time.Duration(sum)
}

// Counter returns the named counter, or 0.
func (e Export) Counter(name string) int64 { return e.Counters[name] }

// Find returns the first child (depth-first, pre-order, including e
// itself) whose name equals name, or nil.
func (e Export) Find(name string) *Export {
	if e.Name == name {
		return &e
	}
	for i := range e.Children {
		if f := e.Children[i].Find(name); f != nil {
			return f
		}
	}
	return nil
}

// Snapshot deep-copies the global collector's tree as the root Export.
// The root's children are the top-level spans; counters added outside any
// span sit on the root itself. Its duration is the sum of its children
// (the root is never timed).
func Snapshot() Export { return global.Snapshot() }

// export copies a span subtree. Caller holds the owning collector's mu.
func export(s *Span) Export {
	e := Export{Name: s.name, DurNs: int64(s.dur)}
	if !s.start.IsZero() {
		e.StartNs = s.start.UnixNano()
		if !s.done {
			e.DurNs = int64(time.Since(s.start))
		}
	}
	if len(s.counters) > 0 {
		e.Counters = make(map[string]int64, len(s.counters))
		for k, v := range s.counters {
			e.Counters[k] = v
		}
	}
	if len(s.series) > 0 {
		e.Series = make(map[string][]int64, len(s.series))
		for k, v := range s.series {
			e.Series[k] = slices.Clone(v)
		}
	}
	for _, c := range s.children {
		e.Children = append(e.Children, export(c))
	}
	return e
}

// WriteJSON writes the export as indented JSON.
func (e Export) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// Render formats the tree as an indented human table: one line per span
// with its duration, share of the parent, and counters (series render as
// their length and last value). The root line is omitted when it carries
// no counters.
func (e Export) Render() string {
	var b strings.Builder
	if len(e.Counters) == 0 && e.Name == "trace" {
		for _, c := range e.Children {
			renderSpan(&b, c, 0, e.Dur())
		}
	} else {
		renderSpan(&b, e, 0, 0)
	}
	return b.String()
}

func renderSpan(b *strings.Builder, e Export, depth int, parentDur time.Duration) {
	b.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(b, "%-*s %10s", 40-2*depth, e.Name, fmtTraceDur(e.Dur()))
	if parentDur > 0 {
		fmt.Fprintf(b, " %5.1f%%", 100*float64(e.DurNs)/float64(parentDur))
	} else {
		b.WriteString("       ")
	}
	for _, k := range sortedKeys(e.Counters) {
		fmt.Fprintf(b, "  %s=%d", k, e.Counters[k])
	}
	for _, k := range sortedKeys(e.Series) {
		s := e.Series[k]
		fmt.Fprintf(b, "  %s[%d rounds, last=%d]", k, len(s), s[len(s)-1])
	}
	b.WriteString("\n")
	for _, c := range e.Children {
		renderSpan(b, c, depth+1, e.Dur())
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// fmtTraceDur renders a duration compactly, matching the harness table
// convention.
func fmtTraceDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
