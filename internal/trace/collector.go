package trace

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Collector is one independent span tree: a sentinel root, the innermost
// open span new spans nest under, and the mutex guarding both. The
// process-global tracer is a Collector; request-serving paths create one
// Collector per request so concurrent requests record disjoint trees
// instead of interleaving submission-order nesting on the global one.
//
// A Collector reaches call sites two ways:
//
//   - explicitly — its Begin/Add/Append methods mirror the package-level
//     API;
//   - by goroutine binding — Attach routes the package-level functions
//     called from the current goroutine (the solver phase spans deep in
//     decomp/matching/coloring/mis) to this collector until the returned
//     detach runs. Solvers execute on the calling goroutine and their
//     internal worker goroutines never open spans, so one binding covers
//     a whole Solve.
//
// Collection remains globally gated by Enable: a Collector records
// nothing while tracing is off, and the disabled path is the same single
// atomic load with zero allocation.
type Collector struct {
	mu   sync.Mutex
	root *Span
	cur  *Span
}

// NewCollector returns an empty, independent collector.
func NewCollector() *Collector {
	c := &Collector{}
	c.root = &Span{name: "trace", c: c}
	c.cur = c.root
	return c
}

// Reset discards every recorded span and counter. Open spans become
// orphans: their End still stamps them, but they are no longer reachable
// from the new tree.
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.root = &Span{name: "trace", c: c}
	c.cur = c.root
}

// Begin opens a span nested under the collector's innermost open span
// and makes it current. Returns nil (inert) when collection is off or c
// is nil — callers that only mint a collector while tracing is on can
// use the nil collector unconditionally.
func (c *Collector) Begin(name string) *Span {
	if c == nil || !enabled.Load() {
		return nil
	}
	return c.begin(name)
}

// Beginf is Begin with a formatted name; the format runs only when
// collection is on.
func (c *Collector) Beginf(format string, args ...any) *Span {
	if c == nil || !enabled.Load() {
		return nil
	}
	return c.begin(fmt.Sprintf(format, args...))
}

// begin records the span unconditionally; callers have already checked
// enabled (exactly one atomic load on the hot path).
func (c *Collector) begin(name string) *Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	sp := &Span{name: name, parent: c.cur, start: time.Now(), c: c}
	c.cur.children = append(c.cur.children, sp)
	c.cur = sp
	return sp
}

// Add accumulates v into the named counter of the collector's innermost
// open span. No-op when collection is off or c is nil.
func (c *Collector) Add(name string, v int64) {
	if c == nil || !enabled.Load() {
		return
	}
	c.add(name, v)
}

func (c *Collector) add(name string, v int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.cur
	if s.counters == nil {
		s.counters = map[string]int64{}
	}
	s.counters[name] += v
}

// Append appends v to the named series of the collector's innermost open
// span. No-op when collection is off or c is nil.
func (c *Collector) Append(name string, v int64) {
	if c == nil || !enabled.Load() {
		return
	}
	c.appendSeries(name, v)
}

func (c *Collector) appendSeries(name string, v int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.cur
	if s.series == nil {
		s.series = map[string][]int64{}
	}
	s.series[name] = append(s.series[name], v)
}

// Snapshot deep-copies the collector's tree as the root Export, exactly
// like the package-level Snapshot does for the global tracer.
func (c *Collector) Snapshot() Export {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := export(c.root)
	e.DurNs = int64(e.ChildSum())
	return e
}

// Goroutine bindings: goroutine id → *Collector. nbound counts bound
// goroutines so the common unbound case (benchall, the harness, one-shot
// runs) pays one atomic load instead of a map lookup per trace call.
var (
	bindings sync.Map
	nbound   atomic.Int64
)

// Attach binds the current goroutine to c: until the returned detach
// function runs, package-level Begin/Beginf/Add/Append called from this
// goroutine record into c instead of the global tracer. Attach nests — a
// second Attach on the same goroutine shadows the first and its detach
// restores it — and detach must run on the goroutine that attached.
// Attach on a nil Collector is a no-op (the detach still works), so
// callers can thread an optional collector without branching.
func (c *Collector) Attach() (detach func()) {
	if c == nil {
		return func() {}
	}
	id := goid()
	prev, had := bindings.Load(id)
	bindings.Store(id, c)
	if !had {
		nbound.Add(1)
	}
	return func() {
		if had {
			bindings.Store(id, prev)
		} else {
			bindings.Delete(id)
			nbound.Add(-1)
		}
	}
}

// current resolves the collector the package-level functions should
// record into: the current goroutine's binding if one exists, else the
// global tracer. Callers have already checked enabled.
func current() *Collector {
	if nbound.Load() > 0 {
		if v, ok := bindings.Load(goid()); ok {
			return v.(*Collector)
		}
	}
	return global
}

// goid returns the current goroutine's id, parsed from the
// "goroutine N [state]:" header runtime.Stack prints. The buffer lives
// on the stack, so this allocates nothing; the ~µs cost is paid only on
// enabled trace calls from bound processes — per phase and per round,
// never per edge.
func goid() uint64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	var id uint64
	for _, ch := range buf[len("goroutine "):n] {
		if ch < '0' || ch > '9' {
			break
		}
		id = id*10 + uint64(ch-'0')
	}
	return id
}

// ctxKey keys the collector in a context.Context.
type ctxKey struct{}

// NewContext returns ctx carrying c. The serving layer mints a collector
// per request and threads it to core.SolveCtx / SolveVerifiedCtx, which
// Attach it around the solve so the phase spans land on it.
func NewContext(ctx context.Context, c *Collector) context.Context {
	return context.WithValue(ctx, ctxKey{}, c)
}

// FromContext returns the collector carried by ctx, or nil.
func FromContext(ctx context.Context) *Collector {
	c, _ := ctx.Value(ctxKey{}).(*Collector)
	return c
}
