// Package trace is the repository's observability layer: a lightweight
// span/counter collector that records the per-phase timings, round counts
// and work counters behind the paper's evaluation (decomposition time vs.
// solve time per component class, Algorithms 4–12; measured rounds next to
// the round-complexity currency of the related distributed/MPC work).
//
// Collection is opt-in and zero-cost when disabled: Begin returns a nil
// *Span after one atomic load, every Span method is nil-safe, and none of
// the disabled paths allocate (guaranteed by a testing.AllocsPerRun test).
// Call sites that would compute arguments (formatted names, derived
// counters) guard on Enabled first, or use Beginf which formats only when
// collection is on.
//
// The model is a tree of spans. Begin opens a span nested under the
// innermost open span of the current collector; End closes it and
// records its wall time. A span carries
//
//   - Counters — named int64 accumulators (matched edges, conflicts,
//     kernel launches), added via (*Span).Add or trace.Add (which targets
//     the innermost open span, letting leaf code such as the bsp machine
//     attribute work to whatever phase is running);
//   - Series — named append-only int64 sequences for per-round
//     observations (MIS frontier sizes, cumulative matched edges).
//
// Trees live in Collectors. The package-level functions record into a
// process-global Collector — experiment harnesses run cells sequentially,
// so the implicit current-span stack matches the phase structure exactly.
// Concurrent request-serving paths instead mint one Collector per request
// and Attach it to the request goroutine (or thread it via NewContext /
// core.SolveCtx), so simultaneous requests record independent span trees
// instead of interleaving on the global one. Concurrent Begin/End against
// a single collector is still safe (the tree is lock-protected and End
// tolerates out-of-order closes) but its nesting reflects submission
// order, not causality.
//
// Snapshot exports a deep copy of a tree as Export values, which marshal
// to the JSON schema documented in DESIGN.md § Observability and render
// as an indented human table via Render. cmd/benchall wires the layer to
// the command line (-trace, -traceout); the serve layer's flight recorder
// exposes per-request trees at /debug/requests.
package trace

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Span is one timed phase. The zero value is not used; Begin creates
// spans. A nil *Span is valid and inert — every method is a no-op — so
// call sites need no enabled-checks around span use.
type Span struct {
	name     string
	start    time.Time
	dur      time.Duration
	counters map[string]int64
	series   map[string][]int64
	children []*Span
	parent   *Span
	c        *Collector
	done     bool
}

// The process-global collector, and the enabled gate shared by every
// collector: one atomic load guards every entry point.
var (
	enabled atomic.Bool
	global  = NewCollector()
)

// Enable switches collection on or off. Off (the default) makes every
// trace call a no-op after one atomic load.
func Enable(on bool) { enabled.Store(on) }

// Enabled reports whether collection is on.
func Enabled() bool { return enabled.Load() }

// Reset discards every span and counter recorded on the global
// collector. Per-request collectors are unaffected.
func Reset() { global.Reset() }

// Begin opens a span nested under the innermost open span of the current
// collector — the goroutine's attached collector if one exists, else the
// global one — and makes it current. Returns nil (inert) when collection
// is off.
func Begin(name string) *Span {
	if !enabled.Load() {
		return nil
	}
	return current().begin(name)
}

// Beginf is Begin with a formatted name; the format runs only when
// collection is on, so disabled call sites pay no fmt cost beyond the
// variadic call itself. Enabled-ness is checked exactly once — Beginf
// does not route through Begin's own load.
func Beginf(format string, args ...any) *Span {
	if !enabled.Load() {
		return nil
	}
	return current().begin(fmt.Sprintf(format, args...))
}

// End closes the span, recording its wall time. The owning collector's
// current span pops to the nearest still-open ancestor, so out-of-order
// closes (concurrent spans) cannot wedge the tracer. Safe on nil and on
// already-ended spans.
func (s *Span) End() {
	if s == nil {
		return
	}
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if !s.done {
		s.dur = time.Since(s.start)
		s.done = true
	}
	for c.cur != c.root && c.cur.done {
		c.cur = c.cur.parent
	}
}

// Add accumulates v into the span's named counter. Safe on nil.
func (s *Span) Add(name string, v int64) {
	if s == nil {
		return
	}
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if s.counters == nil {
		s.counters = map[string]int64{}
	}
	s.counters[name] += v
}

// Append appends v to the span's named series. Safe on nil.
func (s *Span) Append(name string, v int64) {
	if s == nil {
		return
	}
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if s.series == nil {
		s.series = map[string][]int64{}
	}
	s.series[name] = append(s.series[name], v)
}

// Add accumulates v into the named counter of the current collector's
// innermost open span. Counters recorded while no span is open land on
// the root and surface in Snapshot's root Export. No-op when collection
// is off.
func Add(name string, v int64) {
	if !enabled.Load() {
		return
	}
	current().add(name, v)
}

// Append appends v to the named series of the current collector's
// innermost open span — the per-round hook (frontier sizes, cumulative
// matched edges). No-op when collection is off.
func Append(name string, v int64) {
	if !enabled.Load() {
		return
	}
	current().appendSeries(name, v)
}
