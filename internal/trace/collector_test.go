package trace

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestCollectorIsolation is the per-request isolation contract: each
// collector records exactly the spans opened on it, explicitly or via
// its goroutine binding, and nothing from other collectors or the
// global tracer.
func TestCollectorIsolation(t *testing.T) {
	withTracing(t, func() {
		c := NewCollector()
		detach := c.Attach()
		outer := Begin("outer") // routed to c by the binding
		inner := c.Begin("inner")
		Add("work", 5)
		inner.End()
		outer.End()
		detach()
		Begin("global-after").End() // unbound again: lands on the global tree

		snap := c.Snapshot()
		if len(snap.Children) != 1 || snap.Children[0].Name != "outer" {
			t.Fatalf("collector tree = %+v, want one 'outer' root", snap.Children)
		}
		o := snap.Children[0]
		if len(o.Children) != 1 || o.Children[0].Name != "inner" {
			t.Fatalf("outer children = %+v, want [inner]", o.Children)
		}
		if got := o.Children[0].Counter("work"); got != 5 {
			t.Fatalf("inner work counter = %d, want 5", got)
		}
		if snap.Find("global-after") != nil {
			t.Fatal("global span leaked into the collector tree")
		}
		g := Snapshot()
		if g.Find("outer") != nil || g.Find("inner") != nil {
			t.Fatalf("collector spans leaked into the global tree: %+v", g)
		}
		if g.Find("global-after") == nil {
			t.Fatal("post-detach span missing from the global tree")
		}
	})
}

// TestCollectorHammer is the concurrency acceptance check: many
// goroutines, each with its own attached collector, open nested spans
// and counters simultaneously; every collector must end up with exactly
// its own, properly nested tree — no interleaving across goroutines,
// which is precisely what the old single global tree could not provide.
func TestCollectorHammer(t *testing.T) {
	withTracing(t, func() {
		const workers = 16
		const perWorker = 100
		cols := make([]*Collector, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			cols[w] = NewCollector()
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				detach := cols[w].Attach()
				defer detach()
				for i := 0; i < perWorker; i++ {
					req := Beginf("req %d-%d", w, i)
					phase := Begin("phase")
					Add("n", 1)
					Append("round", int64(i))
					phase.End()
					req.End()
				}
			}(w)
		}
		wg.Wait()

		for w, c := range cols {
			snap := c.Snapshot()
			if len(snap.Children) != perWorker {
				t.Fatalf("worker %d: %d top-level spans, want %d", w, len(snap.Children), perWorker)
			}
			for i, req := range snap.Children {
				if want := fmt.Sprintf("req %d-%d", w, i); req.Name != want {
					t.Fatalf("worker %d span %d named %q, want %q — trees interleaved", w, i, req.Name, want)
				}
				if len(req.Children) != 1 || req.Children[0].Name != "phase" {
					t.Fatalf("worker %d req %d children = %+v, want one 'phase'", w, i, req.Children)
				}
				ph := req.Children[0]
				if ph.Counter("n") != 1 || len(ph.Series["round"]) != 1 {
					t.Fatalf("worker %d req %d phase carries foreign data: %+v", w, i, ph)
				}
			}
		}
		// Nothing may have leaked onto the global tree.
		if g := Snapshot(); len(g.Children) != 0 {
			t.Fatalf("global tree received %d spans from bound goroutines", len(g.Children))
		}
	})
}

// TestAttachNesting pins the shadowing contract: a second Attach on the
// same goroutine wins until its detach, which restores the first.
func TestAttachNesting(t *testing.T) {
	withTracing(t, func() {
		a, b := NewCollector(), NewCollector()
		da := a.Attach()
		Begin("on-a").End()
		db := b.Attach()
		Begin("on-b").End()
		db()
		Begin("on-a-again").End()
		da()

		as, bs := a.Snapshot(), b.Snapshot()
		if as.Find("on-a") == nil || as.Find("on-a-again") == nil || as.Find("on-b") != nil {
			t.Fatalf("collector a tree wrong: %+v", as.Children)
		}
		if bs.Find("on-b") == nil || len(bs.Children) != 1 {
			t.Fatalf("collector b tree wrong: %+v", bs.Children)
		}
	})
}

// TestCollectorContext pins the context plumbing serve/core use: a nil
// carrier context yields nil, a carried collector round-trips, and
// Attach on nil is a safe no-op.
func TestCollectorContext(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context yielded a collector")
	}
	c := NewCollector()
	ctx := NewContext(context.Background(), c)
	if FromContext(ctx) != c {
		t.Fatal("collector did not round-trip through the context")
	}
	var nilC *Collector
	nilC.Attach()() // must not panic or bind
	withTracing(t, func() {
		detach := FromContext(context.Background()).Attach()
		Begin("still-global").End()
		detach()
		if Snapshot().Find("still-global") == nil {
			t.Fatal("nil-collector Attach diverted spans away from the global tree")
		}
	})
}

// TestCollectorDisabledZeroAlloc extends the zero-cost contract to the
// per-request API: with collection off, the collector span path — the
// exact call pattern of an instrumented request — must not allocate.
func TestCollectorDisabledZeroAlloc(t *testing.T) {
	Enable(false)
	c := NewCollector()
	allocs := testing.AllocsPerRun(1000, func() {
		sp := c.Begin("request")
		sp.Add("bytes", 1)
		c.Add("n", 1)
		c.Append("round", 1)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled collector tracing allocates %v per request, want 0", allocs)
	}
}

// TestCollectorReset pins that Reset empties a collector without
// touching others.
func TestCollectorReset(t *testing.T) {
	withTracing(t, func() {
		a, b := NewCollector(), NewCollector()
		a.Begin("keep").End()
		b.Begin("drop").End()
		b.Reset()
		if got := len(b.Snapshot().Children); got != 0 {
			t.Fatalf("reset collector still holds %d spans", got)
		}
		if a.Snapshot().Find("keep") == nil {
			t.Fatal("reset of one collector emptied another")
		}
	})
}
