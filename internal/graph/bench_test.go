package graph

import (
	"fmt"
	"testing"

	"repro/internal/par"
)

// benchEdges builds a reproducible random edge list large enough to cross
// scatterParallelCutoff, so FromEdges takes the parallel degree-count +
// scatter path.
func benchEdges(n int, m int) []Edge {
	edges := make([]Edge, m)
	par.For(m, func(i int) {
		u := int32(par.Hash64(11, int64(i)) % uint64(n))
		v := int32(par.Hash64(13, int64(i)) % uint64(n))
		if u == v {
			v = (v + 1) % int32(n)
		}
		edges[i] = Edge{u, v}.Canon()
	})
	return edges
}

// BenchmarkBuilderFromEdges measures end-to-end CSR construction (sort,
// dedupe, degree count, scatter, per-list sort). w=1 takes the sequential
// scatter path (what a single-core host runs by default); w=4 forces the
// atomic degree-count + parallel-scatter path. Both use the scratch arenas
// and non-reflective per-list sort.
func BenchmarkBuilderFromEdges(b *testing.B) {
	defer par.SetWorkers(0)
	const n = 50_000
	edges := benchEdges(n, 400_000)
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			par.SetWorkers(w)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g := FromEdges(n, edges)
				if g.NumVertices() != n {
					b.Fatal("bad build")
				}
			}
		})
	}
}

// BenchmarkPartitionByLabel measures the decomposition hot path: splitting
// a graph into k parts plus the cross-edge subgraph, exercising the
// subgraph scratch arenas.
func BenchmarkPartitionByLabel(b *testing.B) {
	defer par.SetWorkers(0)
	par.SetWorkers(4)
	const n = 50_000
	g := FromEdges(n, benchEdges(n, 400_000))
	const k = 8
	label := make([]int32, n)
	par.For(n, func(i int) {
		label[i] = int32(par.Hash64(7, int64(i)) % k)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parts, cross := PartitionByLabel(g, label, k)
		if len(parts) != k || cross == nil {
			b.Fatal("bad partition")
		}
	}
}
