//go:build unix

package graph

import (
	"os"
	"syscall"
)

// mmapSupported gates the zero-copy open path at compile time.
const mmapSupported = true

// mmapRO maps the first length bytes of f read-only and shared (the pages
// come straight from the page cache and are shared across processes
// mapping the same file). The mapping outlives f being closed; release it
// with munmapBytes.
func mmapRO(f *os.File, length int) ([]byte, error) {
	if length == 0 {
		return nil, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, length, syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapBytes releases a mapping returned by mmapRO.
func munmapBytes(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	return syscall.Munmap(b)
}
