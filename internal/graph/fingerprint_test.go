package graph

import "testing"

func TestFingerprintEqualGraphs(t *testing.T) {
	a := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	// Same edge set, different construction order and duplicates.
	b := NewBuilder(4)
	b.AddEdge(2, 3)
	b.AddEdge(1, 0)
	b.AddEdge(1, 2)
	b.AddEdge(0, 1) // duplicate, dropped by Build
	g2 := b.Build()
	if a.Fingerprint() != g2.Fingerprint() {
		t.Fatalf("equal graphs, unequal fingerprints: %x vs %x", a.Fingerprint(), g2.Fingerprint())
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	base := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	cases := map[string]*Graph{
		"edge removed": FromEdges(4, []Edge{{0, 1}, {1, 2}}),
		"edge moved":   FromEdges(4, []Edge{{0, 1}, {1, 2}, {1, 3}}),
		"extra vertex": FromEdges(5, []Edge{{0, 1}, {1, 2}, {2, 3}}),
		"empty":        FromEdges(0, nil),
		"no edges":     FromEdges(4, nil),
	}
	seen := map[uint64]string{base.Fingerprint(): "base"}
	for name, g := range cases {
		fp := g.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("fingerprint collision between %q and %q: %x", name, prev, fp)
		}
		seen[fp] = name
	}
}

func TestFingerprintStable(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1}, {1, 2}})
	// Pinned value: the fingerprint is part of the serving API surface
	// (cache keys, /graphs listings) and must not drift silently across
	// processes or releases.
	const want = uint64(0xeb69f39fd19f96e2)
	if got := g.Fingerprint(); got != want {
		t.Fatalf("fingerprint of P3 = %#x, want %#x (scheme drifted)", got, want)
	}
}
