package graph

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets for the two parsers. Under plain `go test` the seed corpus
// runs as regression tests; `go test -fuzz=FuzzReadEdgeList ./internal/graph`
// explores further. The invariant: parsers never panic, and any
// successfully parsed graph is structurally valid and round-trips.

func FuzzReadEdgeList(f *testing.F) {
	seeds := []string{
		"3 2\n0 1\n1 2\n",
		"# comment\n\n1 0\n",
		"2 1\n0 0\n",
		"4 2\n0 3\n3 0\n",
		"9999999999999 1\n0 1\n",
		"3 2\n0 -1\n",
		"a b\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		g, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("parsed graph invalid: %v", verr)
		}
		var buf bytes.Buffer
		if werr := Write(&buf, g); werr != nil {
			t.Fatalf("write failed: %v", werr)
		}
		g2, rerr := Read(&buf)
		if rerr != nil {
			t.Fatalf("round trip parse failed: %v", rerr)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			t.Fatal("round trip changed the graph")
		}
	})
}

// FuzzTextBinaryRoundTrip drives the text parser into both binary
// encodings and back, pinning the whole chain to the content fingerprint:
// whatever the text parser accepts must survive text -> .scsr (raw and
// compressed) -> memory bit-identically.
func FuzzTextBinaryRoundTrip(f *testing.F) {
	seeds := []string{
		"3 2\n0 1\n1 2\n",
		"1 0\n",
		"0 0\n",
		"5 3\n0 4\n4 0\n2 2\n",
		"2000 1\n0 1999\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		g, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		want := g.Fingerprint()
		for _, opt := range []BinaryOptions{{}, {Compress: true}, {Compress: true, BlockSize: 3}} {
			var buf bytes.Buffer
			if werr := WriteBinary(&buf, g, opt); werr != nil {
				t.Fatalf("%+v: write failed: %v", opt, werr)
			}
			g2, rerr := ReadBinary(bytes.NewReader(buf.Bytes()))
			if rerr != nil {
				t.Fatalf("%+v: round trip parse failed: %v", opt, rerr)
			}
			if got := fingerprintArrays(g2.NumVertices(), g2.canonicalOff(), g2.adj); got != want {
				t.Fatalf("%+v: round trip fingerprint %#x, want %#x", opt, got, want)
			}
		}
	})
}

// FuzzReadBinary throws arbitrary bytes at the binary reader: it must
// reject or parse without panicking, and anything it accepts must
// re-serialize to a stream that parses back to the same content.
func FuzzReadBinary(f *testing.F) {
	addGraph := func(g *Graph, opt BinaryOptions) {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g, opt); err == nil {
			f.Add(buf.Bytes())
		}
	}
	addGraph(&Graph{}, BinaryOptions{})
	addGraph(paperGraph(), BinaryOptions{})
	addGraph(paperGraph(), BinaryOptions{Compress: true})
	addGraph(path(40), BinaryOptions{Compress: true, BlockSize: 4})
	f.Add([]byte("SCSR\r\n\x1a\n garbage"))
	f.Fuzz(func(t *testing.T, in []byte) {
		g, err := ReadBinary(bytes.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if werr := WriteBinary(&buf, g, BinaryOptions{}); werr != nil {
			t.Fatalf("re-serialize failed: %v", werr)
		}
		g2, rerr := ReadBinary(bytes.NewReader(buf.Bytes()))
		if rerr != nil {
			t.Fatalf("re-parse failed: %v", rerr)
		}
		got := fingerprintArrays(g2.NumVertices(), g2.canonicalOff(), g2.adj)
		want := fingerprintArrays(g.NumVertices(), g.canonicalOff(), g.adj)
		if got != want {
			t.Fatalf("re-serialized content fingerprint %#x, want %#x", got, want)
		}
	})
}

func FuzzReadMETIS(f *testing.F) {
	seeds := []string{
		"3 2\n2\n1 3\n2\n",
		"% c\n1 0\n\n",
		"2 1 011\n2\n1\n",
		"2 1\n3\n1\n",
		"0 0\n",
		"4 4\n2 3\n1 3\n1 2 4\n3\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadMETIS(strings.NewReader(in))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("parsed graph invalid: %v", verr)
		}
		var buf bytes.Buffer
		if werr := WriteMETIS(&buf, g); werr != nil {
			t.Fatalf("write failed: %v", werr)
		}
		g2, rerr := ReadMETIS(&buf)
		if rerr != nil {
			t.Fatalf("round trip parse failed: %v", rerr)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			t.Fatal("round trip changed the graph")
		}
	})
}
