package graph

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets for the two parsers. Under plain `go test` the seed corpus
// runs as regression tests; `go test -fuzz=FuzzReadEdgeList ./internal/graph`
// explores further. The invariant: parsers never panic, and any
// successfully parsed graph is structurally valid and round-trips.

func FuzzReadEdgeList(f *testing.F) {
	seeds := []string{
		"3 2\n0 1\n1 2\n",
		"# comment\n\n1 0\n",
		"2 1\n0 0\n",
		"4 2\n0 3\n3 0\n",
		"9999999999999 1\n0 1\n",
		"3 2\n0 -1\n",
		"a b\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		g, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("parsed graph invalid: %v", verr)
		}
		var buf bytes.Buffer
		if werr := Write(&buf, g); werr != nil {
			t.Fatalf("write failed: %v", werr)
		}
		g2, rerr := Read(&buf)
		if rerr != nil {
			t.Fatalf("round trip parse failed: %v", rerr)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			t.Fatal("round trip changed the graph")
		}
	})
}

func FuzzReadMETIS(f *testing.F) {
	seeds := []string{
		"3 2\n2\n1 3\n2\n",
		"% c\n1 0\n\n",
		"2 1 011\n2\n1\n",
		"2 1\n3\n1\n",
		"0 0\n",
		"4 4\n2 3\n1 3\n1 2 4\n3\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadMETIS(strings.NewReader(in))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("parsed graph invalid: %v", verr)
		}
		var buf bytes.Buffer
		if werr := WriteMETIS(&buf, g); werr != nil {
			t.Fatalf("write failed: %v", werr)
		}
		g2, rerr := ReadMETIS(&buf)
		if rerr != nil {
			t.Fatalf("round trip parse failed: %v", rerr)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			t.Fatal("round trip changed the graph")
		}
	})
}
