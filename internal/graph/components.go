package graph

import (
	"sync/atomic"

	"repro/internal/par"
)

// ConnectedComponents labels every vertex with a component id in
// [0, numComponents) using parallel label propagation with pointer-jumping
// style shortcutting (a standard Shiloach–Vishkin flavored CC). Component
// ids are dense and assigned in order of each component's smallest vertex.
func ConnectedComponents(g *Graph) (label []int32, numComponents int) {
	n := g.NumVertices()
	comp := make([]int32, n)
	par.Iota(comp)
	if n == 0 {
		return comp, 0
	}
	for {
		var changed int32
		// Hook: every vertex adopts the minimum label in its closed
		// neighborhood.
		par.Range(n, func(lo, hi int) {
			local := int32(0)
			for i := lo; i < hi; i++ {
				v := int32(i)
				cv := atomic.LoadInt32(&comp[i])
				for _, w := range g.Neighbors(v) {
					cw := atomic.LoadInt32(&comp[w])
					if cw < cv {
						par.MinInt32Atomic(&comp[i], cw)
						cv = cw
						local = 1
					}
				}
			}
			if local != 0 {
				atomic.StoreInt32(&changed, 1)
			}
		})
		// Shortcut: comp[v] = comp[comp[v]] until fixpoint for this round.
		par.For(n, func(i int) {
			c := atomic.LoadInt32(&comp[i])
			for {
				cc := atomic.LoadInt32(&comp[c])
				if cc == c {
					break
				}
				c = cc
			}
			atomic.StoreInt32(&comp[i], c)
		})
		if changed == 0 {
			break
		}
	}
	return densifyLabels(comp)
}

// densifyLabels renumbers arbitrary representative labels to dense ids
// ordered by first appearance (i.e. by each class's smallest vertex).
func densifyLabels(rep []int32) ([]int32, int) {
	n := len(rep)
	isRep := make([]int64, n)
	par.For(n, func(i int) {
		if int(rep[i]) == i {
			isRep[i] = 1
		}
	})
	rank := par.ExclusiveSum(isRep)
	out := make([]int32, n)
	par.For(n, func(i int) {
		out[i] = int32(rank[rep[i]])
	})
	return out, int(rank[n])
}

// Connect returns g if it is already connected; otherwise it returns a new
// graph with one extra edge per additional component, linking vertex 0 of
// the first component to the smallest vertex of each other component. This
// mirrors the paper's dataset preparation: "for graphs that are not
// connected, we add additional edges to make the graph connected."
func Connect(g *Graph) (*Graph, int) {
	label, nc := ConnectedComponents(g)
	if nc <= 1 {
		return g, 0
	}
	n := g.NumVertices()
	// Smallest vertex of each component. Labels are ordered by smallest
	// vertex, so a single forward scan suffices.
	first := make([]int32, nc)
	par.Fill(first, int32(-1))
	for v := 0; v < n; v++ {
		if first[label[v]] == -1 {
			first[label[v]] = int32(v)
		}
	}
	edges := g.Edges()
	for c := 1; c < nc; c++ {
		edges = append(edges, Edge{first[0], first[c]})
	}
	return FromEdges(n, edges), nc - 1
}
