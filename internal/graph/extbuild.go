package graph

// Out-of-core .scsr construction. BuildBinaryExternal turns a streamed
// edge list into a binary CSR file without ever materializing the graph:
// arcs are radix-partitioned into temporary spill files by source-vertex
// range, then each bucket is loaded, sorted, deduplicated, and appended to
// the output adjacency in vertex order. Peak memory is bounded by the
// bucket chunk size (plus the n+1 offset array), not by the graph, so a
// 10^8-edge graph builds in a few hundred MB of RSS. Buckets whose spill
// exceeds the chunk budget are recursively re-split by vertex sub-range,
// which keeps skewed (power-law) degree distributions within budget.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/par"
)

// EdgeStream produces undirected edges in batches. Implementations report
// the vertex-id space up front; Next fills buf and returns the count,
// with io.EOF (possibly alongside a final batch) when exhausted.
type EdgeStream interface {
	NumVertices() int
	Next(buf []Edge) (int, error)
}

// SliceStream adapts an in-memory edge slice to EdgeStream (tests, and
// small inputs routed through the external path for byte-identity checks).
type SliceStream struct {
	n     int
	edges []Edge
	pos   int
}

// NewSliceStream returns an EdgeStream over edges with n vertices.
func NewSliceStream(n int, edges []Edge) *SliceStream {
	return &SliceStream{n: n, edges: edges}
}

func (s *SliceStream) NumVertices() int { return s.n }

func (s *SliceStream) Next(buf []Edge) (int, error) {
	k := copy(buf, s.edges[s.pos:])
	s.pos += k
	if s.pos == len(s.edges) {
		return k, io.EOF
	}
	return k, nil
}

// ExtOptions tunes BuildBinaryExternal.
type ExtOptions struct {
	// TmpDir holds the spill files ("" = os.TempDir()). It needs room for
	// 16 bytes per undirected edge (both arc directions, before dedup).
	TmpDir string
	// ChunkArcs caps how many arcs are held in memory while sorting one
	// bucket (0 = 1<<24, a 128 MiB arc buffer). The peak RSS of a build is
	// roughly 8·ChunkArcs bytes plus the (n+1)·8-byte offset array.
	ChunkArcs int
	// Buckets is the initial source-vertex partition fan-out (0 = 64).
	Buckets int
	// Compress selects the delta+varint adjacency encoding.
	Compress bool
	// BlockSize is the compressed block granularity (0 = DefaultBlockSize).
	BlockSize int
}

// arc is one directed half of an undirected edge in a spill file: 8 bytes
// on disk, little-endian src then dst.
type arc struct{ src, dst int32 }

// spillBucket is one temporary run of arcs covering vertices [lo, hi).
type spillBucket struct {
	lo, hi int
	path   string
	w      *bufio.Writer
	f      *os.File
	count  int64
	buf    [8]byte
}

func (sb *spillBucket) add(a arc) error {
	binary.LittleEndian.PutUint32(sb.buf[0:4], uint32(a.src))
	binary.LittleEndian.PutUint32(sb.buf[4:8], uint32(a.dst))
	if _, err := sb.w.Write(sb.buf[:]); err != nil {
		return err
	}
	sb.count++
	return nil
}

func (sb *spillBucket) finish() error {
	if err := sb.w.Flush(); err != nil {
		sb.f.Close()
		return err
	}
	return sb.f.Close()
}

// extBuilder carries the state of one BuildBinaryExternal run.
type extBuilder struct {
	n         int
	compress  bool
	blockSize int
	chunkArcs int
	tmpDir    string
	spillSeq  int

	out        *os.File
	w          *bufio.Writer // positioned in the payload region
	off        []int64       // n+1 entries, filled bucket by bucket
	ends       []uint64      // compressed: per-block payload end offsets
	payloadPos int64         // bytes appended to the payload region

	byteBuf []byte  // staging for raw adjacency words / block encodes
	nsBuf   []int32 // one vertex's neighbor list during encoding
}

func (b *extBuilder) newSpill(lo, hi int) (*spillBucket, error) {
	b.spillSeq++
	path := fmt.Sprintf("%s%cspill-%06d", b.tmpDir, os.PathSeparator, b.spillSeq)
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &spillBucket{lo: lo, hi: hi, path: path, f: f, w: bufio.NewWriterSize(f, 1<<18)}, nil
}

// minWidth is the narrowest vertex range a bucket may be split down to:
// compressed blocks must not straddle processing units, so splits stop at
// one block; raw buckets can go all the way to a single vertex.
func (b *extBuilder) minWidth() int {
	if b.compress {
		return b.blockSize
	}
	return 1
}

// roundWidth rounds a bucket width up so range boundaries stay on
// compressed-block boundaries.
func (b *extBuilder) roundWidth(w int) int {
	if w < 1 {
		w = 1
	}
	if b.compress && w%b.blockSize != 0 {
		w += b.blockSize - w%b.blockSize
	}
	return w
}

// BuildBinaryExternal streams src into a .scsr file at path using bounded
// memory (see ExtOptions.ChunkArcs). Self loops are dropped and duplicate
// edges deduplicated, matching FromEdges; vertex ids outside [0, n) are an
// error. The resulting file is byte-for-byte identical to
// WriteBinaryFile(path, FromEdges(n, edges), ...) for the same input.
func BuildBinaryExternal(path string, src EdgeStream, opt ExtOptions) (BinaryHeader, error) {
	n := src.NumVertices()
	if n < 0 || n > math.MaxInt32 {
		return BinaryHeader{}, fmt.Errorf("graph: external build: vertex count %d out of range", n)
	}
	b := &extBuilder{
		n:         n,
		compress:  opt.Compress,
		blockSize: opt.BlockSize,
		chunkArcs: opt.ChunkArcs,
	}
	if b.blockSize <= 0 {
		b.blockSize = DefaultBlockSize
	}
	if b.chunkArcs <= 0 {
		b.chunkArcs = 1 << 24
	}
	buckets := opt.Buckets
	if buckets <= 0 {
		buckets = 64
	}

	tmp, err := os.MkdirTemp(opt.TmpDir, "scsr-spill-")
	if err != nil {
		return BinaryHeader{}, err
	}
	defer os.RemoveAll(tmp)
	b.tmpDir = tmp

	spills, err := b.spillPhase(src, buckets)
	if err != nil {
		return BinaryHeader{}, err
	}

	hdr, err := b.emitPhase(path, spills)
	if err != nil {
		os.Remove(path)
		return BinaryHeader{}, err
	}
	return hdr, nil
}

// spillPhase partitions the stream's arcs into per-vertex-range run files.
func (b *extBuilder) spillPhase(src EdgeStream, buckets int) ([]*spillBucket, error) {
	width := b.roundWidth((b.n + buckets - 1) / buckets)
	var spills []*spillBucket
	if b.n > 0 {
		for lo := 0; lo < b.n; lo += width {
			sb, err := b.newSpill(lo, min(lo+width, b.n))
			if err != nil {
				return nil, err
			}
			spills = append(spills, sb)
		}
	}
	route := func(a arc) error {
		return spills[int(a.src)/width].add(a)
	}

	buf := make([]Edge, 1<<16)
	for {
		k, serr := src.Next(buf)
		for _, e := range buf[:k] {
			if e.U == e.V {
				continue // self loops are ignored, as in FromEdges
			}
			if e.U < 0 || int(e.U) >= b.n || e.V < 0 || int(e.V) >= b.n {
				return nil, fmt.Errorf("graph: external build: edge {%d, %d} outside [0, %d)", e.U, e.V, b.n)
			}
			if err := route(arc{e.U, e.V}); err != nil {
				return nil, err
			}
			if err := route(arc{e.V, e.U}); err != nil {
				return nil, err
			}
		}
		if serr == io.EOF {
			break
		}
		if serr != nil {
			return nil, serr
		}
	}
	for _, sb := range spills {
		if err := sb.finish(); err != nil {
			return nil, err
		}
	}
	return spills, nil
}

// emitPhase writes the output file: reserves the header, offset, and block
// index regions, appends adjacency payload bucket by bucket, then patches
// the deferred sections and header (with a streaming fingerprint pass over
// the written adjacency).
func (b *extBuilder) emitPhase(path string, spills []*spillBucket) (BinaryHeader, error) {
	numBlocks := 0
	if b.compress {
		numBlocks = (b.n + b.blockSize - 1) / b.blockSize
		b.ends = make([]uint64, numBlocks)
	}
	b.off = make([]int64, b.n+1)

	hdr := BinaryHeader{
		Version:     scsrVersion,
		Compressed:  b.compress,
		NumVertices: b.n,
		OffStart:    scsrHeaderSize,
		OffBytes:    uint64(b.n+1) * 8,
	}
	hdr.AdjStart = hdr.OffStart + hdr.OffBytes
	payloadStart := int64(hdr.AdjStart)
	if b.compress {
		payloadStart += int64(8 + numBlocks*8)
	}

	out, err := os.Create(path)
	if err != nil {
		return BinaryHeader{}, err
	}
	defer out.Close()
	b.out = out
	if _, err := out.Seek(payloadStart, io.SeekStart); err != nil {
		return BinaryHeader{}, err
	}
	b.w = bufio.NewWriterSize(out, 1<<20)
	b.byteBuf = make([]byte, 0, 1<<20)

	for _, sb := range spills {
		if err := b.processBucket(sb); err != nil {
			return BinaryHeader{}, err
		}
	}
	if err := b.flushBytes(); err != nil {
		return BinaryHeader{}, err
	}
	if err := b.w.Flush(); err != nil {
		return BinaryHeader{}, err
	}

	hdr.NumArcs = b.off[b.n]
	if b.compress {
		hdr.AdjBytes = uint64(8+numBlocks*8) + uint64(b.payloadPos)
	} else {
		hdr.AdjBytes = uint64(b.payloadPos)
	}

	// Patch the deferred sections, now that their contents are known.
	if _, err := out.Seek(int64(hdr.OffStart), io.SeekStart); err != nil {
		return BinaryHeader{}, err
	}
	sw := bufio.NewWriterSize(out, 1<<20)
	if err := writeInt64sLE(sw, b.off); err != nil {
		return BinaryHeader{}, err
	}
	if b.compress {
		var pre [8]byte
		binary.LittleEndian.PutUint32(pre[0:4], uint32(b.blockSize))
		binary.LittleEndian.PutUint32(pre[4:8], uint32(numBlocks))
		if _, err := sw.Write(pre[:]); err != nil {
			return BinaryHeader{}, err
		}
		if err := writeUint64sLE(sw, b.ends); err != nil {
			return BinaryHeader{}, err
		}
	}
	if err := sw.Flush(); err != nil {
		return BinaryHeader{}, err
	}

	fp, err := b.streamFingerprint(int64(hdr.AdjStart))
	if err != nil {
		return BinaryHeader{}, err
	}
	hdr.Fingerprint = fp

	hb := hdr.marshal()
	if _, err := out.WriteAt(hb[:], 0); err != nil {
		return BinaryHeader{}, err
	}
	if err := out.Sync(); err != nil {
		return BinaryHeader{}, err
	}
	return hdr, nil
}

// processBucket sorts and emits one spill run, recursively splitting runs
// that exceed the in-memory arc budget.
func (b *extBuilder) processBucket(sb *spillBucket) error {
	if sb.count > int64(b.chunkArcs) && sb.hi-sb.lo > b.minWidth() {
		return b.splitBucket(sb)
	}
	arcs, err := readArcsFile(sb.path, sb.count)
	if err != nil {
		return err
	}
	os.Remove(sb.path)
	par.SortSlice(arcs, func(a, c arc) bool {
		if a.src != c.src {
			return a.src < c.src
		}
		return a.dst < c.dst
	})
	// Dedup in place (duplicates of an arc always share a source vertex,
	// so per-bucket dedup is global dedup).
	k := 0
	for i := range arcs {
		if i > 0 && arcs[i] == arcs[i-1] {
			continue
		}
		arcs[k] = arcs[i]
		k++
	}
	arcs = arcs[:k]
	return b.emitBucket(sb.lo, sb.hi, arcs)
}

// splitBucket redistributes an oversized run into narrower vertex
// sub-ranges and processes those in order.
func (b *extBuilder) splitBucket(sb *spillBucket) error {
	width := sb.hi - sb.lo
	need := int((sb.count + int64(b.chunkArcs) - 1) / int64(b.chunkArcs))
	// Split twice as fine as the count suggests: skewed runs concentrate
	// arcs in few sub-ranges, and an extra level of recursion costs a full
	// re-read of the run.
	subWidth := b.roundWidth((width + 2*need - 1) / (2 * need))
	if subWidth >= width {
		subWidth = b.roundWidth(width / 2)
	}
	if subWidth < b.minWidth() {
		subWidth = b.minWidth()
	}

	var subs []*spillBucket
	for lo := sb.lo; lo < sb.hi; lo += subWidth {
		nb, err := b.newSpill(lo, min(lo+subWidth, sb.hi))
		if err != nil {
			return err
		}
		subs = append(subs, nb)
	}
	f, err := os.Open(sb.path)
	if err != nil {
		return err
	}
	r := bufio.NewReaderSize(f, 1<<20)
	var raw [8]byte
	for i := int64(0); i < sb.count; i++ {
		if _, err := io.ReadFull(r, raw[:]); err != nil {
			f.Close()
			return fmt.Errorf("graph: external build: spill run truncated: %w", err)
		}
		a := arc{
			src: int32(binary.LittleEndian.Uint32(raw[0:4])),
			dst: int32(binary.LittleEndian.Uint32(raw[4:8])),
		}
		if err := subs[(int(a.src)-sb.lo)/subWidth].add(a); err != nil {
			f.Close()
			return err
		}
	}
	f.Close()
	os.Remove(sb.path)
	for _, nb := range subs {
		if err := nb.finish(); err != nil {
			return err
		}
	}
	for _, nb := range subs {
		if err := b.processBucket(nb); err != nil {
			return err
		}
	}
	return nil
}

// emitBucket appends the sorted, deduplicated arcs of vertices [lo, hi) to
// the payload and fills their offset entries.
func (b *extBuilder) emitBucket(lo, hi int, arcs []arc) error {
	// Offsets first: one pass over the runs.
	i := 0
	for v := lo; v < hi; v++ {
		start := i
		for i < len(arcs) && arcs[i].src == int32(v) {
			i++
		}
		b.off[v+1] = b.off[v] + int64(i-start)
	}
	if i != len(arcs) {
		return fmt.Errorf("graph: external build: %d arcs outside bucket [%d, %d)", len(arcs)-i, lo, hi)
	}

	if !b.compress {
		for _, a := range arcs {
			b.byteBuf = binary.LittleEndian.AppendUint32(b.byteBuf, uint32(a.dst))
			if len(b.byteBuf) >= cap(b.byteBuf)-4 {
				if err := b.flushBytes(); err != nil {
					return err
				}
			}
		}
		return nil
	}

	// Compressed: encode block by block. Bucket boundaries are multiples
	// of blockSize, so [lo, hi) covers whole blocks (the last may clamp
	// at n).
	i = 0
	for blockLo := lo; blockLo < hi; blockLo += b.blockSize {
		blockHi := min(blockLo+b.blockSize, hi)
		for v := blockLo; v < blockHi; v++ {
			deg := int(b.off[v+1] - b.off[v])
			b.nsBuf = b.nsBuf[:0]
			for k := 0; k < deg; k++ {
				b.nsBuf = append(b.nsBuf, arcs[i].dst)
				i++
			}
			need := int(encodedListSize(int32(v), b.nsBuf))
			for cap(b.byteBuf)-len(b.byteBuf) < need {
				if len(b.byteBuf) == 0 {
					b.byteBuf = make([]byte, 0, 2*need)
					break
				}
				if err := b.flushBytes(); err != nil {
					return err
				}
			}
			used := encodeListInto(b.byteBuf[len(b.byteBuf):len(b.byteBuf)+need], int32(v), b.nsBuf)
			b.byteBuf = b.byteBuf[:len(b.byteBuf)+used]
		}
		b.ends[blockLo/b.blockSize] = uint64(b.payloadPos + int64(len(b.byteBuf)))
	}
	return nil
}

// flushBytes drains the staging buffer into the payload writer.
func (b *extBuilder) flushBytes() error {
	if len(b.byteBuf) == 0 {
		return nil
	}
	if _, err := b.w.Write(b.byteBuf); err != nil {
		return err
	}
	b.payloadPos += int64(len(b.byteBuf))
	b.byteBuf = b.byteBuf[:0]
	return nil
}

// streamFingerprint computes the content fingerprint of the written file
// by re-reading the adjacency section in bounded chunks (the offsets are
// still in memory). The result is identical to Graph.Fingerprint of the
// equivalent in-memory graph.
func (b *extBuilder) streamFingerprint(adjStart int64) (uint64, error) {
	fs := newFingerprintState(b.n)
	fs.mixInt64s(b.off)
	if _, err := b.out.Seek(adjStart, io.SeekStart); err != nil {
		return 0, err
	}
	r := bufio.NewReaderSize(b.out, 1<<20)

	if !b.compress {
		words := make([]int32, 1<<20)
		raw := make([]byte, len(words)*4)
		remaining := b.off[b.n] * 4
		for remaining > 0 {
			chunk := int64(len(raw))
			if chunk > remaining {
				chunk = remaining
			}
			if _, err := io.ReadFull(r, raw[:chunk]); err != nil {
				return 0, err
			}
			k := int(chunk / 4)
			for i := 0; i < k; i++ {
				words[i] = int32(binary.LittleEndian.Uint32(raw[i*4:]))
			}
			fs.mixInt32s(words[:k])
			remaining -= chunk
		}
		return fs.sum(), nil
	}

	// Compressed: skip the preamble and index, then decode block by block
	// into a reusable buffer, mixing each vertex's list in order.
	if _, err := io.CopyN(io.Discard, r, int64(8+len(b.ends)*8)); err != nil {
		return 0, err
	}
	var payload []byte
	var prevEnd uint64
	var ns []int32
	for blk, end := range b.ends {
		blen := int(end - prevEnd)
		if cap(payload) < blen {
			payload = make([]byte, blen)
		}
		payload = payload[:blen]
		if _, err := io.ReadFull(r, payload); err != nil {
			return 0, err
		}
		prevEnd = end
		lo, hi := blk*b.blockSize, min((blk+1)*b.blockSize, b.n)
		p := 0
		for v := lo; v < hi; v++ {
			deg := int(b.off[v+1] - b.off[v])
			if cap(ns) < deg {
				ns = make([]int32, deg)
			}
			ns = ns[:deg]
			used, err := decodeList(payload[p:], int32(v), ns, b.n)
			if err != nil {
				return 0, err
			}
			p += used
			fs.mixInt32s(ns)
		}
		if p != blen {
			return 0, fmt.Errorf("graph: external build: block %d re-read consumed %d of %d bytes", blk, p, blen)
		}
	}
	return fs.sum(), nil
}

// readArcsFile loads a spill run, decoding straight into the arc array
// through a small chunk buffer (no whole-file byte copy).
func readArcsFile(path string, count int64) ([]arc, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	arcs := make([]arc, count)
	r := bufio.NewReaderSize(f, 1<<20)
	raw := make([]byte, 1<<16)
	i := 0
	for i < len(arcs) {
		chunk := (len(arcs) - i) * 8
		if chunk > len(raw) {
			chunk = len(raw)
		}
		if _, err := io.ReadFull(r, raw[:chunk]); err != nil {
			return nil, fmt.Errorf("graph: external build: spill run truncated: %w", err)
		}
		for p := 0; p < chunk; p += 8 {
			arcs[i] = arc{
				src: int32(binary.LittleEndian.Uint32(raw[p:])),
				dst: int32(binary.LittleEndian.Uint32(raw[p+4:])),
			}
			i++
		}
	}
	return arcs, nil
}
