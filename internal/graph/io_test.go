package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	for _, g := range []*Graph{paperGraph(), path(50), randomGraph(200, 800, 9)} {
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip n=%d m=%d, want n=%d m=%d",
				g2.NumVertices(), g2.NumEdges(), g.NumVertices(), g.NumEdges())
		}
		for v := 0; v < g.NumVertices(); v++ {
			a, b := g.Neighbors(int32(v)), g2.Neighbors(int32(v))
			if len(a) != len(b) {
				t.Fatalf("degree mismatch at %d", v)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("adjacency mismatch at %d", v)
				}
			}
		}
	}
}

func TestReadCommentsAndBlankLines(t *testing.T) {
	in := "# a comment\n\n3 2\n0 1\n# another\n1 2\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestReadToleratesDuplicatesAndLoops(t *testing.T) {
	in := "3 4\n0 1\n1 0\n2 2\n1 2\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("m=%d, want 2 after cleanup", g.NumEdges())
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",              // empty
		"abc def\n",     // unparsable header
		"3 1\n0\n",      // wrong field count
		"3 1\n0 xyz\n",  // unparsable endpoint
		"-3 1\n",        // negative header
		"# only this\n", // comments only
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Fatalf("Read(%q) succeeded, want error", in)
		}
	}
}
