package graph

import (
	"slices"
	"sync/atomic"

	"repro/internal/par"
)

// Builder accumulates undirected edges and produces a simple CSR Graph.
// Self loops are dropped; parallel edges (in either direction) are merged.
// The zero value is ready to use after SetNumVertices, or grow the vertex
// count implicitly via AddEdge.
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder returns a builder for a graph with n vertices.
func NewBuilder(n int) *Builder { return &Builder{n: n} }

// SetNumVertices raises the vertex count to at least n.
func (b *Builder) SetNumVertices(n int) {
	if n > b.n {
		b.n = n
	}
}

// NumVertices reports the current vertex count.
func (b *Builder) NumVertices() int { return b.n }

// AddEdge records the undirected edge {u, v}. Self loops are ignored. The
// vertex count grows to cover both endpoints.
func (b *Builder) AddEdge(u, v int32) {
	if u == v || u < 0 || v < 0 {
		return
	}
	if int(u) >= b.n {
		b.n = int(u) + 1
	}
	if int(v) >= b.n {
		b.n = int(v) + 1
	}
	b.edges = append(b.edges, Edge{u, v}.Canon())
}

// AddEdges records a batch of edges via AddEdge semantics.
func (b *Builder) AddEdges(edges []Edge) {
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
}

// Build produces the CSR graph. The builder can keep accumulating edges and
// Build again (each Build is a fresh snapshot).
func (b *Builder) Build() *Graph {
	return FromEdges(b.n, b.edges)
}

// FromEdges builds a simple undirected CSR graph on n vertices from an edge
// list. Self loops are dropped, duplicates merged, endpoints may be in
// either order. The input slice is not modified.
func FromEdges(n int, edges []Edge) *Graph {
	// Canonicalize and drop self loops into a scratch copy.
	scratch := make([]Edge, 0, len(edges))
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		scratch = append(scratch, e.Canon())
	}
	// Sort + dedupe. Sorting dominates build time; it runs once per graph
	// construction, outside all measured algorithm sections. The parallel
	// merge sort delegates to the standard library on small inputs or a
	// single core.
	par.SortSlice(scratch, func(a, b Edge) bool {
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})
	uniq := scratch[:0]
	for i, e := range scratch {
		if i > 0 && e == scratch[i-1] {
			continue
		}
		uniq = append(uniq, e)
	}
	return fromCanonicalEdges(n, uniq)
}

// Reusable arenas for the builder's transient degree/cursor arrays.
var (
	degScratch par.Scratch[int32]
	posScratch par.Scratch[int64]
)

// scatterParallelCutoff is the edge count below which the CSR scatter runs
// sequentially: per-edge atomic adds only pay off once there is enough work
// to share.
const scatterParallelCutoff = 1 << 15

// fromCanonicalEdges builds a CSR graph from deduplicated edges with U < V.
// The degree count and edge scatter run in parallel over the edge list with
// per-vertex atomic cursors; the scatter order inside each adjacency list is
// schedule-dependent, so each list is sorted afterwards — the resulting
// graph is identical under any worker count.
func fromCanonicalEdges(n int, edges []Edge) *Graph {
	m := len(edges)
	deg := degScratch.Get(n)
	par.Fill(deg, 0)
	parallel := par.Workers() > 1 && m >= scatterParallelCutoff
	if parallel {
		par.For(m, func(i int) {
			e := edges[i]
			atomic.AddInt32(&deg[e.U], 1)
			atomic.AddInt32(&deg[e.V], 1)
		})
	} else {
		for _, e := range edges {
			deg[e.U]++
			deg[e.V]++
		}
	}
	off := par.ExclusiveSum32(deg)
	degScratch.Put(deg)
	adj := make([]int32, off[n])
	pos := posScratch.Get(n)
	par.Copy(pos, off[:n])
	if parallel {
		par.For(m, func(i int) {
			e := edges[i]
			adj[atomic.AddInt64(&pos[e.U], 1)-1] = e.V
			adj[atomic.AddInt64(&pos[e.V], 1)-1] = e.U
		})
	} else {
		for _, e := range edges {
			adj[pos[e.U]] = e.V
			pos[e.U]++
			adj[pos[e.V]] = e.U
			pos[e.V]++
		}
	}
	posScratch.Put(pos)
	// Sort each adjacency list (parallel over vertices; slices.Sort runs
	// an insertion sort on the short lists that dominate these graphs).
	g := &Graph{off: off, adj: adj}
	par.For(n, func(i int) {
		slices.Sort(adj[off[i]:off[i+1]])
	})
	return g
}

// FromAdjacency builds a graph directly from per-vertex neighbor lists; it
// symmetrizes and deduplicates. Convenient for tests.
func FromAdjacency(lists [][]int32) *Graph {
	b := NewBuilder(len(lists))
	for u, ns := range lists {
		for _, v := range ns {
			b.AddEdge(int32(u), v)
		}
	}
	return b.Build()
}
