package graph

import (
	"testing"

	"repro/internal/par"
)

// checkPartition verifies the fundamental decomposition invariant: every
// edge of g appears in exactly one part or in the cross subgraph, vertex
// maps are strictly increasing, and part subgraphs are valid.
func checkPartition(t *testing.T, g *Graph, label []int32, parts []*Sub, cross *Sub) {
	t.Helper()
	var totalVerts int
	var totalEdges int64
	for li, p := range parts {
		if err := p.G.Validate(); err != nil {
			t.Fatalf("part %d invalid: %v", li, err)
		}
		totalVerts += p.NumVertices()
		totalEdges += p.NumEdges()
		for j, gv := range p.ToGlobal {
			if j > 0 && p.ToGlobal[j-1] >= gv {
				t.Fatalf("part %d ToGlobal not increasing at %d", li, j)
			}
			if label[gv] != int32(li) {
				t.Fatalf("part %d contains vertex %d with label %d", li, gv, label[gv])
			}
		}
		// Every part edge exists in g with matching labels.
		for lu := 0; lu < p.NumVertices(); lu++ {
			for _, lv := range p.G.Neighbors(int32(lu)) {
				gu, gv := p.ToGlobal[lu], p.ToGlobal[lv]
				if !g.HasEdge(gu, gv) {
					t.Fatalf("part %d edge {%d,%d} missing in parent", li, gu, gv)
				}
			}
		}
	}
	if totalVerts != g.NumVertices() {
		t.Fatalf("parts cover %d vertices, graph has %d", totalVerts, g.NumVertices())
	}
	if err := cross.G.Validate(); err != nil {
		t.Fatalf("cross invalid: %v", err)
	}
	// Every cross edge joins different labels.
	for lu := 0; lu < cross.NumVertices(); lu++ {
		gu := cross.ToGlobal[lu]
		if cross.G.Degree(int32(lu)) == 0 {
			t.Fatalf("cross subgraph has isolated vertex %d", gu)
		}
		for _, lv := range cross.G.Neighbors(int32(lu)) {
			gv := cross.ToGlobal[lv]
			if label[gu] == label[gv] {
				t.Fatalf("cross edge {%d,%d} has equal labels", gu, gv)
			}
			if !g.HasEdge(gu, gv) {
				t.Fatalf("cross edge {%d,%d} missing in parent", gu, gv)
			}
		}
	}
	if got := totalEdges + cross.NumEdges(); got != g.NumEdges() {
		t.Fatalf("edge conservation: parts+cross = %d, graph has %d", got, g.NumEdges())
	}
}

func TestPartitionByLabelPaperExample(t *testing.T) {
	// Figure 1(c): RAND with 2 groups, {b,c,e,h,g} in group 0 and {a,d,f}
	// in group 1 (a=0..h=7).
	g := paperGraph()
	label := []int32{1, 0, 0, 1, 0, 1, 0, 0}
	parts, cross := PartitionByLabel(g, label, 2)
	checkPartition(t, g, label, parts, cross)
	if parts[0].NumVertices() != 5 || parts[1].NumVertices() != 3 {
		t.Fatalf("part sizes %d/%d, want 5/3", parts[0].NumVertices(), parts[1].NumVertices())
	}
	// Group 0 {b,c,e,g,h} induces edges b-c and g-h; group 1 {a,d,f} has none.
	if parts[0].NumEdges() != 2 {
		t.Fatalf("group-0 edges = %d, want 2", parts[0].NumEdges())
	}
	if parts[1].NumEdges() != 0 {
		t.Fatalf("group-1 edges = %d, want 0", parts[1].NumEdges())
	}
	if cross.NumEdges() != g.NumEdges()-2 {
		t.Fatalf("cross edges = %d, want %d", cross.NumEdges(), g.NumEdges()-2)
	}
}

func TestPartitionByLabelRandomizedInvariant(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		g := randomGraph(400, 1600, seed)
		for _, k := range []int{1, 2, 3, 7} {
			label := make([]int32, g.NumVertices())
			for i := range label {
				label[i] = int32(par.HashRange(seed, int64(i), k))
			}
			parts, cross := PartitionByLabel(g, label, k)
			checkPartition(t, g, label, parts, cross)
		}
	}
}

func TestPartitionByLabelSinglePart(t *testing.T) {
	g := paperGraph()
	label := make([]int32, g.NumVertices())
	parts, cross := PartitionByLabel(g, label, 1)
	if len(parts) != 1 {
		t.Fatalf("got %d parts", len(parts))
	}
	if parts[0].NumEdges() != g.NumEdges() || cross.NumEdges() != 0 {
		t.Fatal("single part must hold the whole graph")
	}
	if cross.NumVertices() != 0 {
		t.Fatal("cross of a single part must be empty")
	}
}

func TestPartitionByLabelPanicsOnBadInput(t *testing.T) {
	g := paperGraph()
	mustPanic(t, func() { PartitionByLabel(g, make([]int32, 3), 2) })
	bad := make([]int32, g.NumVertices())
	bad[0] = 5
	mustPanic(t, func() { PartitionByLabel(g, bad, 2) })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

func TestEdgeInducedSubgraph(t *testing.T) {
	g := paperGraph()
	// Keep only edges incident to vertex 6 (g): {f,g}, {d,g}, {g,h}.
	sub := EdgeInducedSubgraph(g, func(u, v int32) bool { return u == 6 || v == 6 })
	if err := sub.G.Validate(); err != nil {
		t.Fatal(err)
	}
	if sub.NumEdges() != 3 {
		t.Fatalf("kept %d edges, want 3", sub.NumEdges())
	}
	if sub.NumVertices() != 4 { // d, f, g, h
		t.Fatalf("kept %d vertices, want 4", sub.NumVertices())
	}
	// Empty predicate → empty subgraph.
	empty := EdgeInducedSubgraph(g, func(u, v int32) bool { return false })
	if empty.NumVertices() != 0 || empty.NumEdges() != 0 {
		t.Fatal("empty predicate produced a non-empty subgraph")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := paperGraph()
	member := make([]bool, g.NumVertices())
	// Induce on the triangle {a, b, c}.
	member[0], member[1], member[2] = true, true, true
	sub := InducedSubgraph(g, member)
	if sub.NumVertices() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("induced triangle has n=%d m=%d", sub.NumVertices(), sub.NumEdges())
	}
	for j, gv := range sub.ToGlobal {
		if gv != int32(j) {
			t.Fatalf("ToGlobal[%d] = %d", j, gv)
		}
	}
	mustPanic(t, func() { InducedSubgraph(g, make([]bool, 2)) })
}

func TestPartitionLargeParallelPath(t *testing.T) {
	// Large enough to exercise the multi-chunk local-id assignment.
	n := 200000
	g := path(n)
	label := make([]int32, n)
	for i := range label {
		label[i] = int32(i % 4)
	}
	parts, cross := PartitionByLabel(g, label, 4)
	checkPartition(t, g, label, parts, cross)
	// A path labeled round-robin mod 4 has no intra-part edges.
	for i, p := range parts {
		if p.NumEdges() != 0 {
			t.Fatalf("part %d has %d edges, want 0", i, p.NumEdges())
		}
	}
	if cross.NumEdges() != g.NumEdges() {
		t.Fatal("all path edges must be cross edges")
	}
}
