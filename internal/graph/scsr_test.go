package graph

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// graphsEqual compares two graphs structurally (not via fingerprints, so
// fingerprint plumbing bugs can't mask content differences).
func graphsEqual(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() {
		t.Fatalf("NumVertices = %d, want %d", got.NumVertices(), want.NumVertices())
	}
	if got.NumArcs() != want.NumArcs() {
		t.Fatalf("NumArcs = %d, want %d", got.NumArcs(), want.NumArcs())
	}
	for v := 0; v < want.NumVertices(); v++ {
		gn, wn := got.Neighbors(int32(v)), want.Neighbors(int32(v))
		if len(gn) != len(wn) {
			t.Fatalf("vertex %d: degree %d, want %d", v, len(gn), len(wn))
		}
		for i := range wn {
			if gn[i] != wn[i] {
				t.Fatalf("vertex %d neighbor %d: %d, want %d", v, i, gn[i], wn[i])
			}
		}
	}
}

// binaryCases covers the structural corners: empty, no edges, paths,
// high-degree hubs, isolated tail vertices, and a dense-ish random graph.
func binaryCases() map[string]*Graph {
	star := NewBuilder(64)
	for v := int32(1); v < 50; v++ {
		star.AddEdge(0, v) // vertices 50..63 stay isolated
	}
	return map[string]*Graph{
		"empty":   {},
		"oneVert": FromEdges(1, nil),
		"noEdges": FromEdges(9, nil),
		"paper":   paperGraph(),
		"path50":  path(50),
		"star":    star.Build(),
		"random":  randomGraph(300, 1200, 7),
		"big":     randomGraph(5000, 40000, 3),
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for name, g := range binaryCases() {
		for _, opt := range []BinaryOptions{
			{},
			{Compress: true},
			{Compress: true, BlockSize: 7},
			{Compress: true, BlockSize: 1},
		} {
			var buf bytes.Buffer
			if err := WriteBinary(&buf, g, opt); err != nil {
				t.Fatalf("%s %+v: WriteBinary: %v", name, opt, err)
			}
			got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("%s %+v: ReadBinary: %v", name, opt, err)
			}
			graphsEqual(t, got, g)
			if got.Fingerprint() != g.Fingerprint() {
				t.Fatalf("%s %+v: fingerprint %#x, want %#x", name, opt, got.Fingerprint(), g.Fingerprint())
			}
			// The carried fingerprint must match a from-scratch rehash.
			if fp := fingerprintArrays(got.NumVertices(), got.canonicalOff(), got.adj); fp != got.Fingerprint() {
				t.Fatalf("%s %+v: carried fingerprint %#x, rehash %#x", name, opt, got.Fingerprint(), fp)
			}
		}
	}
}

func TestOpenBinaryDispositions(t *testing.T) {
	dir := t.TempDir()
	g := randomGraph(500, 3000, 11)
	for _, tc := range []struct {
		name     string
		opt      BinaryOptions
		wantMmap bool
	}{
		{"raw", BinaryOptions{}, mmapSupported && hostLittleEndian},
		{"compressed", BinaryOptions{Compress: true}, false},
	} {
		p := filepath.Join(dir, tc.name+".scsr")
		if err := WriteBinaryFile(p, g, tc.opt); err != nil {
			t.Fatalf("%s: WriteBinaryFile: %v", tc.name, err)
		}
		bg, err := OpenBinary(p)
		if err != nil {
			t.Fatalf("%s: OpenBinary: %v", tc.name, err)
		}
		if bg.Mapped() != tc.wantMmap {
			t.Fatalf("%s: Mapped() = %v, want %v", tc.name, bg.Mapped(), tc.wantMmap)
		}
		if bg.Hdr.Fingerprint != g.Fingerprint() {
			t.Fatalf("%s: header fingerprint %#x, want %#x", tc.name, bg.Hdr.Fingerprint, g.Fingerprint())
		}
		graphsEqual(t, bg.Graph, g)
		if err := bg.Close(); err != nil {
			t.Fatalf("%s: Close: %v", tc.name, err)
		}
		if err := bg.Close(); err != nil {
			t.Fatalf("%s: second Close: %v", tc.name, err)
		}
	}
}

func TestVerifyBinaryFile(t *testing.T) {
	dir := t.TempDir()
	g := randomGraph(400, 2500, 5)
	for _, opt := range []BinaryOptions{{}, {Compress: true}} {
		p := filepath.Join(dir, "ok.scsr")
		if err := WriteBinaryFile(p, g, opt); err != nil {
			t.Fatal(err)
		}
		hdr, err := VerifyBinaryFile(p)
		if err != nil {
			t.Fatalf("verify %+v: %v", opt, err)
		}
		if hdr.NumVertices != 400 || hdr.Fingerprint != g.Fingerprint() {
			t.Fatalf("verify %+v: header %+v", opt, hdr)
		}
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	g := randomGraph(200, 900, 2)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g, BinaryOptions{}); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	// Truncations at every section boundary and mid-section.
	for _, cut := range []int{0, 4, scsrHeaderSize - 1, scsrHeaderSize, scsrHeaderSize + 17, len(valid) - 1} {
		if _, err := ReadBinary(bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Any header byte flip must be rejected (magic, fields, or check word).
	for pos := 0; pos < scsrHeaderSize; pos++ {
		mut := append([]byte(nil), valid...)
		mut[pos] ^= 0x41
		if _, err := ReadBinary(bytes.NewReader(mut)); err == nil {
			t.Fatalf("header corruption at byte %d accepted", pos)
		}
	}
	// Adjacency id out of range.
	mut := append([]byte(nil), valid...)
	mut[len(mut)-1] = 0x7f // high byte of the last int32 neighbor
	if _, err := ReadBinary(bytes.NewReader(mut)); err == nil {
		t.Fatal("out-of-range adjacency id accepted")
	}

	// On-disk flips that keep structure valid must fail verification.
	dir := t.TempDir()
	p := filepath.Join(dir, "flip.scsr")
	mut = append([]byte(nil), valid...)
	mut[scsrHeaderSize+uintptrSafe(len(g.off))*8+2] ^= 1 // low bytes of an early neighbor id
	if err := os.WriteFile(p, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyBinaryFile(p); err == nil {
		t.Fatal("content flip passed verification")
	}

	// A file whose size disagrees with the header is rejected by OpenBinary.
	p2 := filepath.Join(dir, "short.scsr")
	if err := os.WriteFile(p2, valid[:len(valid)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenBinary(p2); err == nil {
		t.Fatal("size-mismatched file opened")
	}
}

// uintptrSafe is len() as int for offset arithmetic readability above.
func uintptrSafe(n int) int { return n }

func TestBuildBinaryExternalMatchesInMemory(t *testing.T) {
	// Deterministic edge list with duplicates and self loops, plus skew
	// (vertex 0 in many edges) to exercise bucket splitting.
	n := 3000
	var edges []Edge
	s := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 20000; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		u := int32(s % uint64(n))
		s = s*6364136223846793005 + 1442695040888963407
		v := int32(s % uint64(n))
		edges = append(edges, Edge{u, v})
		if i%5 == 0 {
			edges = append(edges, Edge{0, v}) // skew
		}
		if i%97 == 0 {
			edges = append(edges, Edge{u, u}) // self loop
		}
		if i%11 == 0 {
			edges = append(edges, edges[len(edges)-1]) // duplicate
		}
	}
	want := FromEdges(n, edges)
	dir := t.TempDir()

	for _, tc := range []struct {
		name string
		opt  ExtOptions
	}{
		{"raw", ExtOptions{ChunkArcs: 1 << 10, Buckets: 7}},
		{"rawOneBucket", ExtOptions{Buckets: 1}},
		{"compressed", ExtOptions{Compress: true, BlockSize: 64, ChunkArcs: 1 << 10, Buckets: 5}},
	} {
		extPath := filepath.Join(dir, tc.name+"-ext.scsr")
		memPath := filepath.Join(dir, tc.name+"-mem.scsr")
		tc.opt.TmpDir = dir
		hdr, err := BuildBinaryExternal(extPath, NewSliceStream(n, edges), tc.opt)
		if err != nil {
			t.Fatalf("%s: BuildBinaryExternal: %v", tc.name, err)
		}
		if err := WriteBinaryFile(memPath, want, BinaryOptions{Compress: tc.opt.Compress, BlockSize: tc.opt.BlockSize}); err != nil {
			t.Fatal(err)
		}
		ext, err := os.ReadFile(extPath)
		if err != nil {
			t.Fatal(err)
		}
		mem, err := os.ReadFile(memPath)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ext, mem) {
			t.Fatalf("%s: external build differs from in-memory serialization (%d vs %d bytes)", tc.name, len(ext), len(mem))
		}
		if hdr.Fingerprint != want.Fingerprint() {
			t.Fatalf("%s: fingerprint %#x, want %#x", tc.name, hdr.Fingerprint, want.Fingerprint())
		}
		if _, err := VerifyBinaryFile(extPath); err != nil {
			t.Fatalf("%s: verify: %v", tc.name, err)
		}
	}
}

func TestBuildBinaryExternalRejectsOutOfRange(t *testing.T) {
	dir := t.TempDir()
	_, err := BuildBinaryExternal(filepath.Join(dir, "bad.scsr"),
		NewSliceStream(10, []Edge{{1, 2}, {3, 10}}), ExtOptions{TmpDir: dir})
	if err == nil {
		t.Fatal("edge endpoint == n accepted")
	}
	_, err = BuildBinaryExternal(filepath.Join(dir, "bad2.scsr"),
		NewSliceStream(10, []Edge{{-1, 2}}), ExtOptions{TmpDir: dir})
	if err == nil {
		t.Fatal("negative endpoint accepted")
	}
}

func TestLoadFileDispatch(t *testing.T) {
	dir := t.TempDir()
	g := randomGraph(120, 700, 4)

	text := filepath.Join(dir, "g.txt")
	f, err := os.Create(text)
	if err != nil {
		t.Fatal(err)
	}
	if err := Write(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()

	metis := filepath.Join(dir, "g.graph")
	f, err = os.Create(metis)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteMETIS(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()

	bin := filepath.Join(dir, "g.scsr")
	if err := WriteBinaryFile(bin, g, BinaryOptions{}); err != nil {
		t.Fatal(err)
	}

	for _, p := range []string{text, metis, bin} {
		got, err := LoadFile(p)
		if err != nil {
			t.Fatalf("LoadFile(%s): %v", p, err)
		}
		graphsEqual(t, got, g)
		if got.Fingerprint() != g.Fingerprint() {
			t.Fatalf("LoadFile(%s): fingerprint mismatch", p)
		}
	}
	if _, err := LoadFile(filepath.Join(dir, "absent.scsr")); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestTextStreamMatchesRead(t *testing.T) {
	input := "# header comment\n\n7 4\n0 1\n# middle\n2 3\n3 2\n5 5\n-1 4\n4 5\n"
	ts, err := NewTextStream(bytes.NewReader([]byte(input)))
	if err != nil {
		t.Fatal(err)
	}
	if ts.NumVertices() != 7 || ts.DeclaredEdges() != 4 {
		t.Fatalf("header parsed as n=%d m=%d", ts.NumVertices(), ts.DeclaredEdges())
	}
	b := NewBuilder(ts.NumVertices())
	buf := make([]Edge, 3) // tiny batches to exercise refill
	for {
		k, err := ts.Next(buf)
		b.AddEdges(buf[:k])
		if err != nil {
			break
		}
	}
	want, err := Read(bytes.NewReader([]byte(input)))
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, b.Build(), want)
}
