package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestMETISRoundTrip(t *testing.T) {
	for _, g := range []*Graph{paperGraph(), path(20), randomGraph(150, 500, 4), NewBuilder(3).Build()} {
		var buf bytes.Buffer
		if err := WriteMETIS(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadMETIS(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip n=%d m=%d, want n=%d m=%d",
				g2.NumVertices(), g2.NumEdges(), g.NumVertices(), g.NumEdges())
		}
		for v := 0; v < g.NumVertices(); v++ {
			a, b := g.Neighbors(int32(v)), g2.Neighbors(int32(v))
			if len(a) != len(b) {
				t.Fatalf("degree mismatch at %d", v)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("adjacency mismatch at %d", v)
				}
			}
		}
	}
}

func TestReadMETISKnown(t *testing.T) {
	// The triangle plus pendant from the METIS manual style.
	in := "% a comment\n4 4\n2 3\n1 3\n1 2 4\n3\n"
	g, err := ReadMETIS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 2) || !g.HasEdge(1, 2) || !g.HasEdge(2, 3) {
		t.Fatal("edges wrong")
	}
}

func TestReadMETISErrors(t *testing.T) {
	cases := []string{
		"",                  // empty
		"abc 3\n",           // bad header
		"2 1 011\n2\n1\n",   // weighted format
		"2 1\n2\n1\n3\n",    // too many lines... (line 3 nonempty)
		"3 1\n2\n1\n",       // too few lines
		"2 1\n5\n\n",        // neighbor out of range
		"2 1\nx\n\n",        // unparsable neighbor
		"2 1 0 0 0\n1\n2\n", // header too long
	}
	for _, in := range cases {
		if _, err := ReadMETIS(strings.NewReader(in)); err == nil {
			t.Fatalf("ReadMETIS(%q) succeeded, want error", in)
		}
	}
	// Trailing blank lines after all vertices are tolerated.
	if _, err := ReadMETIS(strings.NewReader("2 1\n2\n1\n\n\n")); err != nil {
		t.Fatalf("trailing blanks rejected: %v", err)
	}
}

func TestReadAutoDispatch(t *testing.T) {
	metis := "2 1\n2\n1\n"
	if g, err := ReadAuto("foo.graph", strings.NewReader(metis)); err != nil || g.NumEdges() != 1 {
		t.Fatalf("metis dispatch failed: %v", err)
	}
	edge := "2 1\n0 1\n"
	if g, err := ReadAuto("foo.txt", strings.NewReader(edge)); err != nil || g.NumEdges() != 1 {
		t.Fatalf("edge-list dispatch failed: %v", err)
	}
}
