package graph

import (
	"testing"
)

// sequentialCC is the oracle: BFS labeling.
func sequentialCC(g *Graph) ([]int32, int) {
	n := g.NumVertices()
	label := make([]int32, n)
	for i := range label {
		label[i] = -1
	}
	next := int32(0)
	queue := make([]int32, 0, n)
	for s := 0; s < n; s++ {
		if label[s] != -1 {
			continue
		}
		label[s] = next
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(v) {
				if label[w] == -1 {
					label[w] = next
					queue = append(queue, w)
				}
			}
		}
		next++
	}
	return label, int(next)
}

func sameClassification(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := map[int32]int32{}
	bwd := map[int32]int32{}
	for i := range a {
		if x, ok := fwd[a[i]]; ok && x != b[i] {
			return false
		}
		if x, ok := bwd[b[i]]; ok && x != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		bwd[b[i]] = a[i]
	}
	return true
}

func TestConnectedComponentsMatchesOracle(t *testing.T) {
	cases := []*Graph{
		path(1),
		path(10),
		cycle(9),
		complete(6),
		grid(13, 17),
		paperGraph(),
		randomGraph(500, 300, 1), // sparse: many components
		randomGraph(500, 5000, 2),
		FromEdges(10, nil), // 10 isolated vertices
	}
	for i, g := range cases {
		gotLabel, gotN := ConnectedComponents(g)
		wantLabel, wantN := sequentialCC(g)
		if gotN != wantN {
			t.Fatalf("case %d: %d components, want %d", i, gotN, wantN)
		}
		if !sameClassification(gotLabel, wantLabel) {
			t.Fatalf("case %d: component classification differs", i)
		}
	}
}

func TestConnectedComponentsLabelsDense(t *testing.T) {
	g := randomGraph(1000, 500, 3)
	label, nc := ConnectedComponents(g)
	seen := make([]bool, nc)
	for _, l := range label {
		if l < 0 || int(l) >= nc {
			t.Fatalf("label %d out of range [0,%d)", l, nc)
		}
		seen[l] = true
	}
	for c, s := range seen {
		if !s {
			t.Fatalf("component id %d unused", c)
		}
	}
}

func TestConnectAlreadyConnected(t *testing.T) {
	g := cycle(10)
	g2, added := Connect(g)
	if added != 0 {
		t.Fatalf("added %d edges to a connected graph", added)
	}
	if g2 != g {
		t.Fatal("Connect copied a connected graph")
	}
}

func TestConnectDisconnected(t *testing.T) {
	// Three components: a triangle, an edge, an isolated vertex.
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(3, 4)
	g := b.Build()
	g2, added := Connect(g)
	if added != 2 {
		t.Fatalf("added %d edges, want 2", added)
	}
	if _, nc := ConnectedComponents(g2); nc != 1 {
		t.Fatalf("still %d components after Connect", nc)
	}
	if g2.NumEdges() != g.NumEdges()+2 {
		t.Fatalf("edge count %d, want %d", g2.NumEdges(), g.NumEdges()+2)
	}
}

func TestConnectedComponentsLargeParallel(t *testing.T) {
	// Two large far-apart components exercise the parallel hook/shortcut
	// loop over multiple chunks.
	n := 100000
	b := NewBuilder(2 * n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1))
		b.AddEdge(int32(n+i), int32(n+i+1))
	}
	g := b.Build()
	label, nc := ConnectedComponents(g)
	if nc != 2 {
		t.Fatalf("%d components, want 2", nc)
	}
	for i := 0; i < n; i++ {
		if label[i] != 0 || label[n+i] != 1 {
			t.Fatalf("labels wrong at %d: %d/%d", i, label[i], label[n+i])
		}
	}
}
