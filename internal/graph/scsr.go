package graph

// The .scsr binary format: a versioned little-endian on-disk CSR designed
// so that the common case — raw adjacency on a little-endian host — loads
// zero-copy via mmap, with the Graph's offset and adjacency slices aliasing
// the mapped file. An alternative adjacency encoding stores per-vertex
// neighbor lists delta+varint-compressed in fixed vertex blocks that decode
// in parallel. See DESIGN.md § Binary graph format for the byte-for-byte
// layout.
//
//	[0:8)   magic "SCSR\r\n\x1a\n"
//	[8:12)  format version (uint32, = 1)
//	[12:16) flags (uint32; bit 0 = compressed adjacency)
//	[16:24) vertex count n (uint64)
//	[24:32) arc count = len(adj) (uint64, 2× undirected edges)
//	[32:40) content fingerprint (uint64, == Graph.Fingerprint)
//	[40:48) offset-section start (uint64, = 80)
//	[48:56) offset-section bytes (uint64, = (n+1)·8)
//	[56:64) adjacency-section start (uint64, = 80 + (n+1)·8)
//	[64:72) adjacency-section bytes (uint64)
//	[72:80) header check (uint64, FNV-1a of bytes [0:72))
//
// The offset section is n+1 little-endian int64 words. The raw adjacency
// section is the adjacency array as little-endian int32 words. The
// compressed adjacency section is:
//
//	[0:4)  block size B (uint32, vertices per block)
//	[4:8)  block count (uint32, = ceil(n/B))
//	[8:..) per-block payload end offsets (uint64 each, relative to payload)
//	[..:.) payload: per vertex, first neighbor as zigzag varint of
//	       (neighbor − vertex), then gaps as uvarint(diff − 1)
//
// Both section starts are multiples of 8, so the mapped words are aligned.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"repro/internal/par"
	"repro/internal/telemetry"
)

const (
	scsrHeaderSize = 80
	scsrVersion    = 1

	scsrFlagCompressed = 1 << 0
	scsrKnownFlags     = scsrFlagCompressed

	// DefaultBlockSize is the compressed-adjacency block granularity:
	// vertices per independently decodable block. 1024 vertices keeps the
	// block index tiny (one uint64 per block) while giving the parallel
	// decoder thousands of work units on any graph large enough to matter.
	DefaultBlockSize = 1024
)

// scsrMagic opens every .scsr file. The PNG-style \r\n\x1a\n tail catches
// text-mode line-ending mangling and truncation-to-text corruption early.
var scsrMagic = [8]byte{'S', 'C', 'S', 'R', '\r', '\n', 0x1a, '\n'}

// BinaryHeader is the parsed fixed header of a .scsr file.
type BinaryHeader struct {
	Version     uint32
	Compressed  bool
	NumVertices int
	NumArcs     int64
	Fingerprint uint64
	OffStart    uint64
	OffBytes    uint64
	AdjStart    uint64
	AdjBytes    uint64
}

// BinaryOptions selects the adjacency encoding for WriteBinary.
type BinaryOptions struct {
	// Compress stores the adjacency delta+varint-compressed instead of as
	// raw int32 words. Compressed files cannot be mmap'd zero-copy; they
	// trade load-time parallel decode for 2-4× smaller files.
	Compress bool
	// BlockSize is the vertices-per-block granularity for Compress
	// (0 = DefaultBlockSize).
	BlockSize int
}

// fnv1aBytes hashes a byte slice with FNV-1a (the header check).
func fnv1aBytes(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// marshal serializes the header, computing the trailing check word.
func (h BinaryHeader) marshal() [scsrHeaderSize]byte {
	var b [scsrHeaderSize]byte
	copy(b[0:8], scsrMagic[:])
	le := binary.LittleEndian
	le.PutUint32(b[8:12], h.Version)
	var flags uint32
	if h.Compressed {
		flags |= scsrFlagCompressed
	}
	le.PutUint32(b[12:16], flags)
	le.PutUint64(b[16:24], uint64(h.NumVertices))
	le.PutUint64(b[24:32], uint64(h.NumArcs))
	le.PutUint64(b[32:40], h.Fingerprint)
	le.PutUint64(b[40:48], h.OffStart)
	le.PutUint64(b[48:56], h.OffBytes)
	le.PutUint64(b[56:64], h.AdjStart)
	le.PutUint64(b[64:72], h.AdjBytes)
	le.PutUint64(b[72:80], fnv1aBytes(b[:72]))
	return b
}

// parseBinaryHeader validates and decodes the fixed header. It checks the
// magic, the header check word, the version, the flag vocabulary, and the
// internal consistency of the section geometry — everything knowable
// without the file size.
func parseBinaryHeader(b []byte) (BinaryHeader, error) {
	if len(b) < scsrHeaderSize {
		return BinaryHeader{}, fmt.Errorf("graph: scsr header truncated: %d bytes, want %d", len(b), scsrHeaderSize)
	}
	b = b[:scsrHeaderSize]
	if [8]byte(b[0:8]) != scsrMagic {
		return BinaryHeader{}, fmt.Errorf("graph: not a .scsr file (bad magic %q)", b[0:8])
	}
	le := binary.LittleEndian
	if got, want := le.Uint64(b[72:80]), fnv1aBytes(b[:72]); got != want {
		return BinaryHeader{}, fmt.Errorf("graph: scsr header check mismatch: %#x, want %#x (corrupt header)", got, want)
	}
	h := BinaryHeader{
		Version:     le.Uint32(b[8:12]),
		Fingerprint: le.Uint64(b[32:40]),
		OffStart:    le.Uint64(b[40:48]),
		OffBytes:    le.Uint64(b[48:56]),
		AdjStart:    le.Uint64(b[56:64]),
		AdjBytes:    le.Uint64(b[64:72]),
	}
	if h.Version != scsrVersion {
		return BinaryHeader{}, fmt.Errorf("graph: scsr version %d not supported (want %d)", h.Version, scsrVersion)
	}
	flags := le.Uint32(b[12:16])
	if flags&^uint32(scsrKnownFlags) != 0 {
		return BinaryHeader{}, fmt.Errorf("graph: scsr has unknown flags %#x", flags)
	}
	h.Compressed = flags&scsrFlagCompressed != 0
	n := le.Uint64(b[16:24])
	arcs := le.Uint64(b[24:32])
	if n > math.MaxInt32 {
		return BinaryHeader{}, fmt.Errorf("graph: scsr vertex count %d exceeds int32 ids", n)
	}
	if arcs > math.MaxInt64/4 {
		return BinaryHeader{}, fmt.Errorf("graph: scsr arc count %d implausible", arcs)
	}
	h.NumVertices = int(n)
	h.NumArcs = int64(arcs)
	if h.NumArcs%2 != 0 {
		return BinaryHeader{}, fmt.Errorf("graph: scsr arc count %d is odd (arcs come in undirected pairs)", h.NumArcs)
	}
	if h.OffStart != scsrHeaderSize || h.OffBytes != uint64(n+1)*8 || h.AdjStart != h.OffStart+h.OffBytes {
		return BinaryHeader{}, fmt.Errorf("graph: scsr section geometry inconsistent with vertex count %d", n)
	}
	if !h.Compressed && h.AdjBytes != arcs*4 {
		return BinaryHeader{}, fmt.Errorf("graph: scsr raw adjacency is %d bytes, want %d for %d arcs", h.AdjBytes, arcs*4, arcs)
	}
	return h, nil
}

// totalBytes reports the exact file size the header describes.
func (h BinaryHeader) totalBytes() int64 { return int64(h.AdjStart + h.AdjBytes) }

// ---------------------------------------------------------------------------
// Word views (zero-copy reinterpretation of little-endian byte sections).

// canonicalOff returns the graph's offset array in its serialized form:
// always n+1 entries, even for the zero-value empty graph.
func (g *Graph) canonicalOff() []int64 {
	if len(g.off) == 0 {
		return []int64{0}
	}
	return g.off
}

// ---------------------------------------------------------------------------
// Compressed adjacency encode/decode.

// zigzag maps a signed delta to an unsigned varint-friendly value.
func zigzag(d int64) uint64 { return uint64((d << 1) ^ (d >> 63)) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// uvarintLen reports the encoded size of binary.PutUvarint(_, x).
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// encodedListSize reports the encoded byte size of one adjacency list.
func encodedListSize(v int32, ns []int32) int64 {
	if len(ns) == 0 {
		return 0
	}
	sz := int64(uvarintLen(zigzag(int64(ns[0]) - int64(v))))
	for k := 1; k < len(ns); k++ {
		sz += int64(uvarintLen(uint64(ns[k] - ns[k-1] - 1)))
	}
	return sz
}

// encodeListInto encodes one adjacency list, returning bytes written.
func encodeListInto(dst []byte, v int32, ns []int32) int {
	if len(ns) == 0 {
		return 0
	}
	p := binary.PutUvarint(dst, zigzag(int64(ns[0])-int64(v)))
	for k := 1; k < len(ns); k++ {
		p += binary.PutUvarint(dst[p:], uint64(ns[k]-ns[k-1]-1))
	}
	return p
}

// encodeAdjacency compresses g's adjacency into per-block payloads: a
// parallel size pass, an exclusive sum, then a parallel encode pass into a
// single payload buffer. ends[b] is the payload end offset of block b.
func encodeAdjacency(g *Graph, blockSize int) (ends []uint64, payload []byte) {
	n := g.NumVertices()
	numBlocks := (n + blockSize - 1) / blockSize
	if numBlocks == 0 {
		return nil, nil
	}
	sizes := make([]int64, numBlocks)
	par.For(numBlocks, func(b int) {
		lo, hi := b*blockSize, min((b+1)*blockSize, n)
		var sz int64
		for v := lo; v < hi; v++ {
			sz += encodedListSize(int32(v), g.Neighbors(int32(v)))
		}
		sizes[b] = sz
	})
	offs := par.ExclusiveSum(sizes)
	payload = make([]byte, offs[numBlocks])
	ends = make([]uint64, numBlocks)
	par.For(numBlocks, func(b int) {
		lo, hi := b*blockSize, min((b+1)*blockSize, n)
		p := offs[b]
		for v := lo; v < hi; v++ {
			p += int64(encodeListInto(payload[p:offs[b+1]], int32(v), g.Neighbors(int32(v))))
		}
		ends[b] = uint64(offs[b+1])
	})
	return ends, payload
}

// decodeList decodes one vertex's list from buf into dst (len = degree),
// returning bytes consumed. Every decoded id is bounds-checked against n.
func decodeList(buf []byte, v int32, dst []int32, n int) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	u, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return 0, fmt.Errorf("graph: scsr adjacency of vertex %d: bad first-neighbor varint", v)
	}
	p := sz
	prev := int64(v) + unzigzag(u)
	if prev < 0 || prev >= int64(n) {
		return 0, fmt.Errorf("graph: scsr adjacency of vertex %d: neighbor %d out of range [0,%d)", v, prev, n)
	}
	dst[0] = int32(prev)
	for k := 1; k < len(dst); k++ {
		u, sz := binary.Uvarint(buf[p:])
		if sz <= 0 {
			return 0, fmt.Errorf("graph: scsr adjacency of vertex %d: bad gap varint at neighbor %d", v, k)
		}
		p += sz
		prev += int64(u) + 1
		if prev >= int64(n) {
			return 0, fmt.Errorf("graph: scsr adjacency of vertex %d: neighbor %d out of range [0,%d)", v, prev, n)
		}
		dst[k] = int32(prev)
	}
	return p, nil
}

// decodeAdjacencyInto decodes the compressed payload into adj, one block
// per parallel task; degrees come from off. Returns the error at the
// lowest failing block (deterministic under any worker count).
//
//lint:hotpath
func decodeAdjacencyInto(off []int64, adj []int32, n, blockSize int, ends []uint64, payload []byte) error {
	numBlocks := len(ends)
	return par.ForErr(numBlocks, func(b int) error {
		lo, hi := b*blockSize, min((b+1)*blockSize, n)
		var pstart uint64
		if b > 0 {
			pstart = ends[b-1]
		}
		pend := ends[b]
		if pstart > pend || pend > uint64(len(payload)) {
			return fmt.Errorf("graph: scsr block %d payload [%d:%d) outside %d payload bytes", b, pstart, pend, len(payload))
		}
		buf := payload[pstart:pend]
		p := 0
		for v := lo; v < hi; v++ {
			used, err := decodeList(buf[p:], int32(v), adj[off[v]:off[v+1]], n)
			if err != nil {
				return err
			}
			p += used
		}
		if p != len(buf) {
			return fmt.Errorf("graph: scsr block %d has %d trailing payload bytes", b, len(buf)-p)
		}
		return nil
	})
}

// parseCompressedIndex validates the compressed-adjacency section prefix
// and returns the block size, the (copied) block end-offset index, and the
// payload bytes.
func parseCompressedIndex(sec []byte, n int) (blockSize int, ends []uint64, payload []byte, err error) {
	if len(sec) < 8 {
		return 0, nil, nil, fmt.Errorf("graph: scsr compressed section truncated (%d bytes)", len(sec))
	}
	le := binary.LittleEndian
	blockSize = int(le.Uint32(sec[0:4]))
	numBlocks := int(le.Uint32(sec[4:8]))
	if blockSize < 1 {
		return 0, nil, nil, fmt.Errorf("graph: scsr block size %d", blockSize)
	}
	if want := (n + blockSize - 1) / blockSize; numBlocks != want {
		return 0, nil, nil, fmt.Errorf("graph: scsr block count %d, want %d for %d vertices / block size %d", numBlocks, want, n, blockSize)
	}
	indexBytes := numBlocks * 8
	if len(sec) < 8+indexBytes {
		return 0, nil, nil, fmt.Errorf("graph: scsr block index truncated")
	}
	ends = make([]uint64, numBlocks)
	for b := range ends {
		ends[b] = le.Uint64(sec[8+b*8 : 16+b*8])
		if b > 0 && ends[b] < ends[b-1] {
			return 0, nil, nil, fmt.Errorf("graph: scsr block index not monotone at block %d", b)
		}
	}
	payload = sec[8+indexBytes:]
	if numBlocks > 0 && ends[numBlocks-1] != uint64(len(payload)) {
		return 0, nil, nil, fmt.Errorf("graph: scsr block index ends at %d, payload is %d bytes", ends[numBlocks-1], len(payload))
	}
	return blockSize, ends, payload, nil
}

// checkOffsets verifies the structural invariants of a loaded offset
// array: starts at zero, monotone, and accounts for exactly arcs entries.
func checkOffsets(off []int64, arcs int64) error {
	if len(off) == 0 || off[0] != 0 {
		return fmt.Errorf("graph: scsr offsets must start at 0")
	}
	n := len(off) - 1
	bad := par.Count(n, func(v int) bool { return off[v+1] < off[v] })
	if bad != 0 {
		return fmt.Errorf("graph: scsr offsets not monotone (%d descents)", bad)
	}
	if off[n] != arcs {
		return fmt.Errorf("graph: scsr offsets end at %d, header says %d arcs", off[n], arcs)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Writing.

// WriteBinary serializes g to w in the .scsr format. The stream is
// identical to what WriteBinaryFile produces; writing is sequential and
// allocation-bounded (raw adjacency is emitted from the graph's own arrays
// through a fixed-size chunk buffer).
func WriteBinary(w io.Writer, g *Graph, opt BinaryOptions) error {
	n := g.NumVertices()
	off := g.canonicalOff()
	fp := g.fp
	if fp == 0 {
		fp = fingerprintArrays(n, off, g.adj)
	}
	hdr := BinaryHeader{
		Version:     scsrVersion,
		Compressed:  opt.Compress,
		NumVertices: n,
		NumArcs:     int64(len(g.adj)),
		Fingerprint: fp,
		OffStart:    scsrHeaderSize,
		OffBytes:    uint64(n+1) * 8,
	}
	hdr.AdjStart = hdr.OffStart + hdr.OffBytes

	var ends []uint64
	var payload []byte
	if opt.Compress {
		bs := opt.BlockSize
		if bs <= 0 {
			bs = DefaultBlockSize
		}
		ends, payload = encodeAdjacency(g, bs)
		hdr.AdjBytes = uint64(8 + len(ends)*8 + len(payload))
		hb := hdr.marshal()
		if _, err := w.Write(hb[:]); err != nil {
			return err
		}
		if err := writeInt64sLE(w, off); err != nil {
			return err
		}
		var pre [8]byte
		binary.LittleEndian.PutUint32(pre[0:4], uint32(bs))
		binary.LittleEndian.PutUint32(pre[4:8], uint32(len(ends)))
		if _, err := w.Write(pre[:]); err != nil {
			return err
		}
		if err := writeUint64sLE(w, ends); err != nil {
			return err
		}
		_, err := w.Write(payload)
		return err
	}

	hdr.AdjBytes = uint64(len(g.adj)) * 4
	hb := hdr.marshal()
	if _, err := w.Write(hb[:]); err != nil {
		return err
	}
	if err := writeInt64sLE(w, off); err != nil {
		return err
	}
	return writeInt32sLE(w, g.adj)
}

// WriteBinaryFile writes g to path as .scsr, syncing before returning.
func WriteBinaryFile(path string, g *Graph, opt BinaryOptions) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := WriteBinary(bw, g, opt); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// wordChunk is the staging-buffer size for endian-safe word serialization.
const wordChunk = 1 << 16

// writeInt64sLE writes words as little-endian int64s through a fixed
// staging buffer (no dependence on host byte order or heap layout).
func writeInt64sLE(w io.Writer, ws []int64) error {
	buf := make([]byte, 0, wordChunk*8)
	for _, v := range ws {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
		if len(buf) == cap(buf) {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// writeUint64sLE is writeInt64sLE for unsigned words.
func writeUint64sLE(w io.Writer, ws []uint64) error {
	buf := make([]byte, 0, wordChunk*8)
	for _, v := range ws {
		buf = binary.LittleEndian.AppendUint64(buf, v)
		if len(buf) == cap(buf) {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// writeInt32sLE writes words as little-endian int32s.
func writeInt32sLE(w io.Writer, ws []int32) error {
	buf := make([]byte, 0, wordChunk*4)
	for _, v := range ws {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
		if len(buf) == cap(buf) {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Reading.

// readSection reads exactly totalBytes from r. It reads a probe chunk
// before committing to the full allocation, so a truncated stream with an
// inflated header fails fast instead of allocating the declared size.
func readSection(r io.Reader, totalBytes int64) ([]byte, error) {
	probe := totalBytes
	if probe > 1<<20 {
		probe = 1 << 20
	}
	head := make([]byte, probe)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("graph: scsr section truncated: %w", err)
	}
	if probe == totalBytes {
		return head, nil
	}
	buf := make([]byte, totalBytes)
	copy(buf, head)
	if _, err := io.ReadFull(r, buf[probe:]); err != nil {
		return nil, fmt.Errorf("graph: scsr section truncated: %w", err)
	}
	return buf, nil
}

// decodeInt64sLE converts a little-endian byte section to int64 words.
func decodeInt64sLE(b []byte) []int64 {
	ws := make([]int64, len(b)/8)
	for i := range ws {
		ws[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return ws
}

// decodeInt32sLE converts a little-endian byte section to int32 words.
//
//lint:hotpath
func decodeInt32sLE(b []byte) []int32 {
	ws := make([]int32, len(b)/4)
	par.Range(len(ws), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ws[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
		}
	})
	return ws
}

// ReadBinary reads a .scsr stream fully into heap memory. It works on any
// reader and any host byte order; OpenBinary is the file-path entry point
// that upgrades to zero-copy mmap when possible. The loaded sections are
// structurally validated (monotone offsets, in-range sorted-input-safe
// adjacency ids), so a corrupt file errors here instead of crashing a
// solver later.
func ReadBinary(r io.Reader) (*Graph, error) {
	var hb [scsrHeaderSize]byte
	if _, err := io.ReadFull(r, hb[:]); err != nil {
		return nil, fmt.Errorf("graph: scsr header truncated: %w", err)
	}
	hdr, err := parseBinaryHeader(hb[:])
	if err != nil {
		return nil, err
	}
	offBytes, err := readSection(r, int64(hdr.OffBytes))
	if err != nil {
		return nil, err
	}
	off := decodeInt64sLE(offBytes)
	if err := checkOffsets(off, hdr.NumArcs); err != nil {
		return nil, err
	}
	adjBytes, err := readSection(r, int64(hdr.AdjBytes))
	if err != nil {
		return nil, err
	}
	n := hdr.NumVertices
	adj := make([]int32, hdr.NumArcs)
	if hdr.Compressed {
		blockSize, ends, payload, perr := parseCompressedIndex(adjBytes, n)
		if perr != nil {
			return nil, perr
		}
		if err := decodeAdjacencyInto(off, adj, n, blockSize, ends, payload); err != nil {
			return nil, err
		}
	} else {
		raw := decodeInt32sLE(adjBytes)
		copy(adj, raw)
		if bad := par.Count(len(adj), func(i int) bool {
			return adj[i] < 0 || int(adj[i]) >= n
		}); bad != 0 {
			return nil, fmt.Errorf("graph: scsr adjacency has %d out-of-range ids", bad)
		}
	}
	return &Graph{off: off, adj: adj, fp: hdr.Fingerprint}, nil
}

// BinaryGraph is a Graph loaded from a .scsr file, plus the parsed header
// and — when the adjacency was mapped zero-copy — the live mapping.
type BinaryGraph struct {
	*Graph
	Hdr BinaryHeader

	mapping []byte
}

// Mapped reports whether the graph's arrays alias a file mapping (true
// only for raw adjacency on a little-endian host with working mmap).
func (bg *BinaryGraph) Mapped() bool { return bg.mapping != nil }

// Close releases the mapping, if any. The embedded Graph must not be used
// afterwards; Close nils it so stale use fails fast instead of faulting on
// unmapped memory. Heap-backed BinaryGraphs ignore Close.
func (bg *BinaryGraph) Close() error {
	if bg.mapping == nil {
		return nil
	}
	m := bg.mapping
	bg.mapping = nil
	bg.Graph = nil
	return munmapBytes(m)
}

// OpenBinary opens a .scsr file. Raw adjacency on a little-endian host is
// mapped zero-copy: the returned graph's offset and adjacency arrays alias
// the page cache, loading is O(1), and the kernel shares the pages across
// processes. Compressed adjacency (or a big-endian host, or an mmap
// failure) falls back to a heap load via ReadBinary. The header's
// fingerprint is carried onto the graph, so Fingerprint() never re-hashes
// a binary-loaded graph.
func OpenBinary(path string) (*BinaryGraph, error) {
	start := time.Now()
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	var hb [scsrHeaderSize]byte
	if _, err := io.ReadFull(f, hb[:]); err != nil {
		return nil, fmt.Errorf("graph: scsr header truncated: %w", err)
	}
	hdr, err := parseBinaryHeader(hb[:])
	if err != nil {
		return nil, err
	}
	if fi.Size() != hdr.totalBytes() {
		return nil, fmt.Errorf("graph: scsr file is %d bytes, header describes %d", fi.Size(), hdr.totalBytes())
	}

	if !hdr.Compressed && hostLittleEndian && mmapSupported {
		m, merr := mmapRO(f, int(fi.Size()))
		if merr == nil {
			off := int64View(m[hdr.OffStart : hdr.OffStart+hdr.OffBytes])
			adj := int32View(m[hdr.AdjStart : hdr.AdjStart+hdr.AdjBytes])
			if cerr := checkOffsets(off, hdr.NumArcs); cerr != nil {
				munmapBytes(m)
				return nil, cerr
			}
			observeBinaryOpen("mmap", fi.Size(), 0)
			g := &Graph{off: off, adj: adj, fp: hdr.Fingerprint}
			return &BinaryGraph{Graph: g, Hdr: hdr, mapping: m}, nil
		}
		// mmap failed (exotic fs, resource limits): fall through to heap.
	}

	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	g, err := ReadBinary(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return nil, err
	}
	disposition := "read"
	if hdr.Compressed {
		disposition = "decode"
	}
	observeBinaryOpen(disposition, fi.Size(), time.Since(start))
	return &BinaryGraph{Graph: g, Hdr: hdr}, nil
}

// VerifyBinaryFile fully validates a .scsr file: header magic, check word
// and version, section geometry against the file size, monotone offsets,
// full structural invariants of the decoded graph (sorted symmetric
// loop-free adjacency), and a recomputed fingerprint matched against the
// header. The heap decode path is used deliberately so verification does
// not depend on the mmap fast path it certifies.
func VerifyBinaryFile(path string) (BinaryHeader, error) {
	f, err := os.Open(path)
	if err != nil {
		return BinaryHeader{}, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return BinaryHeader{}, err
	}
	var hb [scsrHeaderSize]byte
	if _, err := io.ReadFull(f, hb[:]); err != nil {
		return BinaryHeader{}, fmt.Errorf("graph: scsr header truncated: %w", err)
	}
	hdr, err := parseBinaryHeader(hb[:])
	if err != nil {
		return BinaryHeader{}, err
	}
	if fi.Size() != hdr.totalBytes() {
		return hdr, fmt.Errorf("graph: scsr file is %d bytes, header describes %d", fi.Size(), hdr.totalBytes())
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return hdr, err
	}
	g, err := ReadBinary(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return hdr, err
	}
	if err := g.Validate(); err != nil {
		return hdr, err
	}
	if got := fingerprintArrays(g.NumVertices(), g.canonicalOff(), g.adj); got != hdr.Fingerprint {
		return hdr, fmt.Errorf("graph: scsr fingerprint mismatch: content hashes to %#016x, header says %#016x", got, hdr.Fingerprint)
	}
	return hdr, nil
}

// ---------------------------------------------------------------------------
// Path dispatch and load telemetry.

// IsBinaryPath reports whether path names a binary CSR file by extension.
func IsBinaryPath(path string) bool {
	ext := filepath.Ext(path)
	return ext == ".scsr" || ext == ".bin"
}

// LoadFile loads a graph from path, selecting the format by extension:
// .scsr/.bin binary CSR (zero-copy mmap when possible), .graph/.metis
// METIS adjacency, anything else the text edge list. For mmap-backed
// loads the mapping is retained for the life of the process — LoadFile is
// the entry point for corpus and CLI graphs, which live until exit. Use
// OpenBinary directly when the mapping must be released.
func LoadFile(path string) (*Graph, error) {
	if IsBinaryPath(path) {
		bg, err := OpenBinary(path)
		if err != nil {
			return nil, err
		}
		return bg.Graph, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	start := time.Now()
	g, err := ReadAuto(path, f)
	if err != nil {
		return nil, err
	}
	if telemetry.Enabled() {
		format := "text"
		if ext := filepath.Ext(path); ext == ".graph" || ext == ".metis" {
			format = "metis"
		}
		if fi, serr := f.Stat(); serr == nil {
			mLoadBytes.With(format).Add(float64(fi.Size()))
		}
		mDecodeSeconds.Observe(time.Since(start).Seconds())
	}
	return g, nil
}

// Gated I/O-path telemetry: bytes loaded per on-disk format, binary opens
// by disposition, and materialization latency (zero cost while telemetry
// is off; see symlint's gatedmetrics analyzer).
var (
	mLoadBytes = telemetry.Default.CounterVec(
		"symbreak_graph_load_bytes_total",
		"Graph bytes loaded from disk, by on-disk format (text, metis, scsr).", "format")
	mOpens = telemetry.Default.CounterVec(
		"symbreak_graph_open_total",
		"Binary graph opens by adjacency disposition: mmap (zero-copy mapped), decode (varint adjacency decoded to heap), read (raw sections copied to heap).", "disposition")
	mDecodeSeconds = telemetry.Default.Histogram(
		"symbreak_graph_decode_seconds",
		"Wall time materializing a graph from disk into memory (not observed for zero-copy mmap opens).", nil)
)

// observeBinaryOpen publishes the disposition and size of one binary open.
func observeBinaryOpen(disposition string, bytes int64, d time.Duration) {
	if !telemetry.Enabled() {
		return
	}
	mOpens.With(disposition).Inc()
	mLoadBytes.With("scsr").Add(float64(bytes))
	if disposition != "mmap" {
		mDecodeSeconds.Observe(d.Seconds())
	}
}
