//go:build !unix

package graph

import (
	"errors"
	"os"
)

// mmapSupported gates the zero-copy open path at compile time; platforms
// without the unix mmap syscalls always take the portable heap-read path.
const mmapSupported = false

var errMmapUnsupported = errors.New("graph: mmap not supported on this platform")

func mmapRO(f *os.File, length int) ([]byte, error) {
	return nil, errMmapUnsupported
}

func munmapBytes(b []byte) error { return nil }
