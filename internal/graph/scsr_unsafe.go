package graph

// Zero-copy reinterpretation of mapped .scsr sections as word slices. Only
// the mmap fast path uses these: the sections start at offsets that are
// multiples of 8 within a page-aligned mapping, so the casts are aligned,
// and the host must be little-endian for the on-disk words to be the
// in-memory representation (checked via hostLittleEndian before use).

import "unsafe"

// hostLittleEndian reports whether the running host stores integers
// little-endian (true on every platform Go currently targets except a few
// big-endian ports; checked at startup with a two-byte probe).
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// int64View reinterprets an 8-aligned little-endian byte section as
// []int64 without copying. The returned slice aliases b.
func int64View(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/8)
}

// int32View reinterprets a 4-aligned little-endian byte section as
// []int32 without copying. The returned slice aliases b.
func int32View(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/4)
}
