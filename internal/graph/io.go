package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The interchange format is a plain text edge list:
//
//	# comment lines start with '#'
//	<numVertices> <numEdges>
//	<u> <v>
//	...
//
// one line per undirected edge, 0-based vertex ids. Duplicates and self
// loops are tolerated on read (the builder drops them), matching the
// paper's dataset cleanup.

// Write serializes g in the edge-list format.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	n := g.NumVertices()
	for u := int32(0); int(u) < n; u++ {
		for _, v := range g.Neighbors(u) {
			if v > u {
				if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// Read parses the edge-list format into a Graph.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var b *Builder
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: want two fields, got %q", line, text)
		}
		a, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		c, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		if b == nil {
			// Header line.
			if a < 0 || c < 0 {
				return nil, fmt.Errorf("graph: line %d: negative header", line)
			}
			b = NewBuilder(int(a))
			continue
		}
		b.AddEdge(int32(a), int32(c))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("graph: empty input")
	}
	return b.Build(), nil
}
