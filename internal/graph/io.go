package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
)

// The interchange format is a plain text edge list:
//
//	# comment lines start with '#'
//	<numVertices> <numEdges>
//	<u> <v>
//	...
//
// one line per undirected edge, 0-based vertex ids. Duplicates and self
// loops are tolerated on read (the builder drops them), matching the
// paper's dataset cleanup.
//
// Both directions avoid per-edge formatting machinery: Write appends
// digits into a reused buffer with strconv.AppendInt, and Read parses
// lines byte-by-byte from the bufio window without allocating per line.
// TextStream is the incremental form of Read, feeding the out-of-core
// binary builder without materializing the edge list.

// Write serializes g in the edge-list format.
func Write(w io.Writer, g *Graph) error {
	buf := make([]byte, 0, 1<<20)
	n := g.NumVertices()
	buf = strconv.AppendInt(buf, int64(n), 10)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, g.NumEdges(), 10)
	buf = append(buf, '\n')
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(int32(u)) {
			if v > int32(u) {
				buf = strconv.AppendInt(buf, int64(u), 10)
				buf = append(buf, ' ')
				buf = strconv.AppendInt(buf, int64(v), 10)
				buf = append(buf, '\n')
			}
		}
		// One flush check per vertex: a vertex's forward edges fit well
		// within the slack left below the buffer's capacity.
		if len(buf) >= 1<<20-64 {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// Read parses the edge-list format into a Graph. Vertex ids beyond the
// header's count grow the graph (Builder semantics); negative ids and self
// loops are dropped.
func Read(r io.Reader) (*Graph, error) {
	ts, err := NewTextStream(r)
	if err != nil {
		return nil, err
	}
	b := NewBuilder(ts.NumVertices())
	buf := make([]Edge, 1<<14)
	for {
		k, err := ts.Next(buf)
		b.AddEdges(buf[:k])
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// maxLineBytes bounds a single input line (matching the historical scanner
// buffer); anything longer is malformed input, not a graph.
const maxLineBytes = 1 << 20

// TextStream reads an edge-list file incrementally: the header is parsed
// on construction, then Next yields edge batches without holding the file
// in memory. It is the text-side source for BuildBinaryExternal. Edges
// with negative endpoints are dropped (as Read does); ids at or above the
// header's vertex count are passed through, so strict consumers (the
// external builder) reject what Builder-backed Read would grow to fit.
type TextStream struct {
	r    *bufio.Reader
	line int
	n    int
	m    int64 // declared edge count (informational)
	done bool
}

// NewTextStream wraps r and parses the header line.
func NewTextStream(r io.Reader) (*TextStream, error) {
	t := &TextStream{r: bufio.NewReaderSize(r, maxLineBytes)}
	for {
		ln, rerr := t.r.ReadSlice('\n')
		if len(ln) > 0 {
			t.line++
			a, c, ok, perr := t.parseLine(ln)
			if perr != nil {
				return nil, perr
			}
			if ok {
				if a < 0 || c < 0 {
					return nil, fmt.Errorf("graph: line %d: negative header", t.line)
				}
				t.n = int(a)
				t.m = c
				if rerr == io.EOF {
					t.done = true
				}
				return t, nil
			}
		}
		if rerr != nil {
			if rerr == io.EOF {
				return nil, fmt.Errorf("graph: empty input")
			}
			return nil, t.lineErr(rerr)
		}
	}
}

// NumVertices reports the header's vertex count.
func (t *TextStream) NumVertices() int { return t.n }

// DeclaredEdges reports the header's edge count (not validated).
func (t *TextStream) DeclaredEdges() int64 { return t.m }

// Next fills buf with parsed edges and returns the count, with io.EOF
// (possibly alongside a final batch) once the input is exhausted.
func (t *TextStream) Next(buf []Edge) (int, error) {
	if t.done {
		return 0, io.EOF
	}
	k := 0
	for k < len(buf) {
		ln, rerr := t.r.ReadSlice('\n')
		if len(ln) > 0 {
			t.line++
			a, c, ok, perr := t.parseLine(ln)
			if perr != nil {
				return k, perr
			}
			if ok && a >= 0 && c >= 0 {
				buf[k] = Edge{int32(a), int32(c)}
				k++
			}
		}
		if rerr != nil {
			if rerr == io.EOF {
				t.done = true
				return k, io.EOF
			}
			return k, t.lineErr(rerr)
		}
	}
	return k, nil
}

// lineErr decorates a read error with the position being parsed.
func (t *TextStream) lineErr(err error) error {
	if err == bufio.ErrBufferFull {
		return fmt.Errorf("graph: line %d longer than %d bytes", t.line+1, maxLineBytes)
	}
	return fmt.Errorf("graph: line %d: %w", t.line+1, err)
}

// parseLine parses one raw line (including any trailing newline) into two
// integer fields. ok is false for blank and '#'-comment lines.
func (t *TextStream) parseLine(ln []byte) (a, c int64, ok bool, err error) {
	// Trim the line ending and surrounding whitespace.
	end := len(ln)
	if end > 0 && ln[end-1] == '\n' {
		end--
	}
	for end > 0 && isSpaceByte(ln[end-1]) {
		end--
	}
	i := 0
	for i < end && isSpaceByte(ln[i]) {
		i++
	}
	if i == end || ln[i] == '#' {
		return 0, 0, false, nil
	}
	a, i, err = t.parseIntField(ln[:end], i)
	if err != nil {
		return 0, 0, false, err
	}
	j := i
	for j < end && isSpaceByte(ln[j]) {
		j++
	}
	if j == i || j == end {
		return 0, 0, false, fmt.Errorf("graph: line %d: want two fields, got %q", t.line, ln[:end])
	}
	c, j, err = t.parseIntField(ln[:end], j)
	if err != nil {
		return 0, 0, false, err
	}
	for j < end && isSpaceByte(ln[j]) {
		j++
	}
	if j != end {
		return 0, 0, false, fmt.Errorf("graph: line %d: want two fields, got %q", t.line, ln[:end])
	}
	return a, c, true, nil
}

// parseIntField parses a signed decimal integer within int32 range
// starting at s[i], returning the value and the index past it.
func (t *TextStream) parseIntField(s []byte, i int) (int64, int, error) {
	start := i
	neg := false
	if i < len(s) && (s[i] == '-' || s[i] == '+') {
		neg = s[i] == '-'
		i++
	}
	var v int64
	digits := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		v = v*10 + int64(s[i]-'0')
		digits++
		if v > math.MaxInt32+1 {
			return 0, 0, fmt.Errorf("graph: line %d: value %q out of int32 range", t.line, s[start:])
		}
		i++
	}
	if digits == 0 {
		return 0, 0, fmt.Errorf("graph: line %d: invalid number %q", t.line, s[start:])
	}
	if neg {
		v = -v
	}
	if v < math.MinInt32 || v > math.MaxInt32 {
		return 0, 0, fmt.Errorf("graph: line %d: value %d out of int32 range", t.line, v)
	}
	return v, i, nil
}

// isSpaceByte matches the whitespace bytes the former strings.Fields-based
// parser tolerated between columns.
func isSpaceByte(b byte) bool {
	return b == ' ' || b == '\t' || b == '\r' || b == '\v' || b == '\f'
}
