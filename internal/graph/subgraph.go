package graph

import (
	"fmt"

	"repro/internal/par"
)

// Reusable arenas for subgraph extraction's transient per-vertex arrays
// (local ids, membership flags). decomp materializes subgraphs on every
// decomposition, so these are hot enough to be worth keeping warm.
var (
	idScratch     par.Scratch[int32]
	memberScratch par.Scratch[int64]
)

// Sub is a materialized subgraph of a parent graph, with the local→global
// vertex mapping needed to transfer solutions (matchings, colorings,
// independent sets) computed on the subgraph back to the parent.
type Sub struct {
	// G is the subgraph itself, over local vertex ids [0, G.NumVertices()).
	G *Graph
	// ToGlobal maps local vertex ids to parent ids. It is strictly
	// increasing, so local order preserves global order.
	ToGlobal []int32
}

// NumVertices reports the subgraph's vertex count.
func (s *Sub) NumVertices() int { return s.G.NumVertices() }

// NumEdges reports the subgraph's edge count.
func (s *Sub) NumEdges() int64 { return s.G.NumEdges() }

// PartitionByLabel splits g according to a vertex labeling into k vertex-
// induced subgraphs (one per label in [0, k)) plus the edge-induced
// subgraph of all cross edges (edges whose endpoints carry different
// labels). This single primitive realizes all three of the paper's
// decompositions:
//
//   - RAND:   label = random partition id, k parts, cross = G_{k+1};
//   - DEGk:   label = 0 (deg ≤ k) or 1 (deg > k), cross = G_C;
//   - BRIDGE: label = 2-edge-connected component id, cross = the bridges.
//
// len(label) must equal g.NumVertices() and every label must lie in [0, k).
func PartitionByLabel(g *Graph, label []int32, k int) (parts []*Sub, cross *Sub) {
	n := g.NumVertices()
	if len(label) != n {
		panic(fmt.Sprintf("graph: PartitionByLabel label length %d, graph has %d vertices", len(label), n))
	}

	// Local id of v within its part = rank of v among same-labeled vertices.
	// Computed with a per-chunk counting pass + prefix sums per label, so
	// ids stay monotone in global order.
	nc := par.NumChunks(n)
	counts := make([][]int64, nc) // counts[chunk][lbl]
	par.RangeIdx(n, func(w, lo, hi int) {
		c := make([]int64, k)
		for i := lo; i < hi; i++ {
			l := label[i]
			if l < 0 || int(l) >= k {
				panic(fmt.Sprintf("graph: label %d out of range [0,%d)", l, k))
			}
			c[l]++
		}
		counts[w] = c
	})
	partSize := make([]int64, k)
	for _, c := range counts {
		for l := 0; l < k; l++ {
			partSize[l] += c[l]
		}
	}
	// chunkBase[w][l] = number of label-l vertices before chunk w.
	chunkBase := make([][]int64, nc)
	running := make([]int64, k)
	for w := 0; w < nc; w++ {
		base := make([]int64, k)
		copy(base, running)
		chunkBase[w] = base
		for l := 0; l < k; l++ {
			running[l] += counts[w][l]
		}
	}
	localID := idScratch.Get(n)
	par.RangeIdx(n, func(w, lo, hi int) {
		next := make([]int64, k)
		copy(next, chunkBase[w])
		for i := lo; i < hi; i++ {
			l := label[i]
			localID[i] = int32(next[l])
			next[l]++
		}
	})

	// ToGlobal per part.
	toGlobal := make([][]int32, k)
	for l := 0; l < k; l++ {
		toGlobal[l] = make([]int32, partSize[l])
	}
	par.For(n, func(i int) {
		toGlobal[label[i]][localID[i]] = int32(i)
	})

	// Intra-part degrees and cross degrees.
	intraDeg := degScratch.Get(n)
	crossDeg := degScratch.Get(n)
	par.For(n, func(i int) {
		v := int32(i)
		l := label[i]
		var in, cr int32
		for _, w := range g.Neighbors(v) {
			if label[w] == l {
				in++
			} else {
				cr++
			}
		}
		intraDeg[i] = in
		crossDeg[i] = cr
	})

	// Build each part's CSR. Offsets come from gathering intra degrees in
	// local order.
	parts = make([]*Sub, k)
	for l := 0; l < k; l++ {
		m := int(partSize[l])
		deg := degScratch.Get(m)
		tg := toGlobal[l]
		par.For(m, func(j int) { deg[j] = intraDeg[tg[j]] })
		off := par.ExclusiveSum32(deg)
		degScratch.Put(deg)
		adj := make([]int32, off[m])
		par.For(m, func(j int) {
			v := tg[j]
			p := off[j]
			for _, w := range g.Neighbors(v) {
				if label[w] == int32(l) {
					adj[p] = localID[w] // monotone in w, so list stays sorted
					p++
				}
			}
		})
		parts[l] = &Sub{G: &Graph{off: off, adj: adj}, ToGlobal: tg}
	}
	idScratch.Put(localID)
	degScratch.Put(intraDeg)

	cross = buildEdgeInduced(g, crossDeg, func(v, w int32) bool {
		return label[v] != label[w]
	})
	degScratch.Put(crossDeg)
	return parts, cross
}

// EdgeInducedSubgraph materializes the subgraph containing exactly the edges
// {u, v} of g for which keep(u, v) is true; its vertex set is the endpoints
// of those edges. keep must be symmetric and safe for concurrent calls.
func EdgeInducedSubgraph(g *Graph, keep func(u, v int32) bool) *Sub {
	n := g.NumVertices()
	deg := degScratch.Get(n)
	par.For(n, func(i int) {
		v := int32(i)
		var d int32
		for _, w := range g.Neighbors(v) {
			if keep(v, w) {
				d++
			}
		}
		deg[i] = d
	})
	sub := buildEdgeInduced(g, deg, keep)
	degScratch.Put(deg)
	return sub
}

// buildEdgeInduced builds the edge-induced Sub from precomputed kept-edge
// degrees and the predicate.
func buildEdgeInduced(g *Graph, keptDeg []int32, keep func(v, w int32) bool) *Sub {
	n := g.NumVertices()
	inSub := memberScratch.Get(n)
	par.For(n, func(i int) {
		if keptDeg[i] > 0 {
			inSub[i] = 1
		} else {
			inSub[i] = 0
		}
	})
	rank := par.ExclusiveSum(inSub)
	m := int(rank[n])
	tg := make([]int32, m)
	localID := idScratch.Get(n)
	par.For(n, func(i int) {
		if inSub[i] == 1 {
			localID[i] = int32(rank[i])
			tg[rank[i]] = int32(i)
		}
	})
	memberScratch.Put(inSub)
	deg := degScratch.Get(m)
	par.For(m, func(j int) { deg[j] = keptDeg[tg[j]] })
	off := par.ExclusiveSum32(deg)
	degScratch.Put(deg)
	adj := make([]int32, off[m])
	par.For(m, func(j int) {
		v := tg[j]
		p := off[j]
		for _, w := range g.Neighbors(v) {
			if keep(v, w) {
				adj[p] = localID[w]
				p++
			}
		}
	})
	idScratch.Put(localID)
	return &Sub{G: &Graph{off: off, adj: adj}, ToGlobal: tg}
}

// RemoveEdges returns a new graph over the same vertex set containing
// exactly the edges {u, v} for which keep(u, v) is true. keep must be
// symmetric and safe for concurrent calls. Used by the BRIDGE decomposition
// to form G − B without renumbering vertices.
func RemoveEdges(g *Graph, keep func(u, v int32) bool) *Graph {
	n := g.NumVertices()
	deg := degScratch.Get(n)
	par.For(n, func(i int) {
		v := int32(i)
		var d int32
		for _, w := range g.Neighbors(v) {
			if keep(v, w) {
				d++
			}
		}
		deg[i] = d
	})
	off := par.ExclusiveSum32(deg)
	degScratch.Put(deg)
	adj := make([]int32, off[n])
	par.For(n, func(i int) {
		v := int32(i)
		p := off[i]
		for _, w := range g.Neighbors(v) {
			if keep(v, w) {
				adj[p] = w
				p++
			}
		}
	})
	return &Graph{off: off, adj: adj}
}

// IdentitySub wraps g as a Sub whose local ids equal global ids.
func IdentitySub(g *Graph) *Sub {
	tg := make([]int32, g.NumVertices())
	par.Iota(tg)
	return &Sub{G: g, ToGlobal: tg}
}

// RelabelRandom returns an isomorphic copy of g with vertex ids permuted
// pseudo-randomly under the seed. Several of the paper's effects (GM's
// vain tendency, LMAX's id-weight chains) depend on vertex numbering
// following the graph's structure; relabeling removes that correlation, so
// the harness uses this to isolate ordering effects from structural ones.
func RelabelRandom(g *Graph, seed uint64) *Graph {
	n := g.NumVertices()
	perm := make([]int32, n)
	par.Iota(perm)
	// Fisher–Yates with the deterministic sequential RNG (construction
	// time, not a measured section).
	rng := par.NewRNG(seed)
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	edges := g.Edges()
	out := make([]Edge, len(edges))
	par.For(len(edges), func(i int) {
		out[i] = Edge{perm[edges[i].U], perm[edges[i].V]}.Canon()
	})
	return FromEdges(n, out)
}

// InducedSubgraph materializes the subgraph induced by the vertices for
// which member is true. Vertices keep their relative order.
func InducedSubgraph(g *Graph, member []bool) *Sub {
	n := g.NumVertices()
	if len(member) != n {
		panic("graph: InducedSubgraph mask length mismatch")
	}
	label := make([]int32, n)
	par.For(n, func(i int) {
		if member[i] {
			label[i] = 1
		}
	})
	parts, _ := PartitionByLabel(g, label, 2)
	return parts[1]
}
