// Package graph provides the compressed-sparse-row (CSR) undirected graph
// representation shared by every algorithm in this repository, together with
// construction, subgraph extraction, connectivity, statistics, and a simple
// text interchange format.
//
// Vertices are dense int32 identifiers in [0, NumVertices()). Graphs are
// simple (no self loops, no parallel edges) and undirected: each undirected
// edge {u, v} is stored twice in the adjacency array, once per direction.
// This mirrors the paper's setup ("directed edges are converted to
// undirected edges and self-loops in the graphs are ignored").
package graph

import (
	"fmt"

	"repro/internal/par"
)

// Graph is an immutable undirected graph in CSR form. The zero value is the
// empty graph. Construct with a Builder, FromEdges, or a generator.
type Graph struct {
	off []int64 // len NumVertices()+1; adjacency list of v is adj[off[v]:off[v+1]]
	adj []int32 // neighbor ids, sorted ascending within each list

	// fp is the content fingerprint carried by the binary loaders (the
	// .scsr header stores it, so mmap-backed graphs never re-hash their
	// adjacency). Zero means "not known"; it is only ever set during
	// construction, before the graph is shared, so Fingerprint needs no
	// synchronization.
	fp uint64
}

// NumVertices reports the number of vertices.
func (g *Graph) NumVertices() int {
	if len(g.off) == 0 {
		return 0
	}
	return len(g.off) - 1
}

// NumEdges reports the number of undirected edges {u, v}.
func (g *Graph) NumEdges() int64 {
	if len(g.off) == 0 {
		return 0
	}
	return g.off[len(g.off)-1] / 2
}

// NumArcs reports the number of stored directed arcs (2 × NumEdges).
func (g *Graph) NumArcs() int64 {
	if len(g.off) == 0 {
		return 0
	}
	return g.off[len(g.off)-1]
}

// Degree reports the degree of v.
func (g *Graph) Degree(v int32) int32 {
	return int32(g.off[v+1] - g.off[v])
}

// Neighbors returns the adjacency list of v, sorted ascending. The returned
// slice aliases the graph's storage and must not be modified.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.adj[g.off[v]:g.off[v+1]]
}

// HasEdge reports whether the undirected edge {u, v} exists, by binary
// search in the smaller endpoint's sorted adjacency list.
func (g *Graph) HasEdge(u, v int32) bool {
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	ns := g.Neighbors(u)
	lo, hi := 0, len(ns)
	for lo < hi {
		mid := (lo + hi) / 2
		if ns[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(ns) && ns[lo] == v
}

// MaxDegree reports the maximum vertex degree (0 for the empty graph).
func (g *Graph) MaxDegree() int32 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return par.MaxIndexed(n, int32(0), func(i int) int32 {
		return g.Degree(int32(i))
	})
}

// AvgDegree reports the average vertex degree.
func (g *Graph) AvgDegree() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return float64(g.NumArcs()) / float64(n)
}

// Edges returns every undirected edge {u, v} with u < v, in parallel-stable
// order (sorted by u, then v). The slice is freshly allocated.
func (g *Graph) Edges() []Edge {
	n := g.NumVertices()
	// Count forward arcs per vertex, prefix-sum, fill.
	cnt := make([]int64, n)
	par.For(n, func(i int) {
		v := int32(i)
		var c int64
		for _, w := range g.Neighbors(v) {
			if w > v {
				c++
			}
		}
		cnt[i] = c
	})
	off := par.ExclusiveSum(cnt)
	edges := make([]Edge, off[n])
	par.For(n, func(i int) {
		v := int32(i)
		k := off[i]
		for _, w := range g.Neighbors(v) {
			if w > v {
				edges[k] = Edge{v, w}
				k++
			}
		}
	})
	return edges
}

// ForEachEdgePar calls fn for every undirected edge {u, v} with u < v, in
// parallel. fn must be safe for concurrent invocation.
func (g *Graph) ForEachEdgePar(fn func(u, v int32)) {
	n := g.NumVertices()
	par.Range(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			u := int32(i)
			for _, v := range g.Neighbors(u) {
				if v > u {
					fn(u, v)
				}
			}
		}
	})
}

// Validate checks structural invariants (sorted adjacency, symmetric arcs,
// no self loops, ids in range) and returns a descriptive error on the first
// violation. Intended for tests and tool entry points, not hot paths.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if len(g.off) != 0 && g.off[0] != 0 {
		return fmt.Errorf("graph: off[0] = %d, want 0", g.off[0])
	}
	// Offsets must be fully sane before any adjacency access (a corrupt
	// offset elsewhere would make Neighbors/HasEdge panic mid-check).
	for v := 0; v < n; v++ {
		if g.off[v+1] < g.off[v] {
			return fmt.Errorf("graph: off not monotone at %d", v)
		}
	}
	if n > 0 && g.off[n] != int64(len(g.adj)) {
		return fmt.Errorf("graph: off[n] = %d but adjacency holds %d arcs", g.off[n], len(g.adj))
	}
	for v := 0; v < n; v++ {
		ns := g.Neighbors(int32(v))
		for i, w := range ns {
			if w < 0 || int(w) >= n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, w)
			}
			if int(w) == v {
				return fmt.Errorf("graph: self loop at %d", v)
			}
			if i > 0 && ns[i-1] >= w {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted at pos %d", v, i)
			}
			if !g.HasEdge(w, int32(v)) {
				return fmt.Errorf("graph: arc %d->%d has no reverse", v, w)
			}
		}
	}
	return nil
}

// Edge is an undirected edge; constructors normalize U < V.
type Edge struct {
	U, V int32
}

// Canon returns e with endpoints ordered so U < V.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		return Edge{e.V, e.U}
	}
	return e
}
