package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// METIS/Chaco adjacency format support — the interchange format the graph
// partitioning community (and the paper's excluded PMETIS comparison) uses:
//
//	% comment lines start with '%'
//	<numVertices> <numEdges> [fmt]
//	<neighbors of vertex 1, 1-based, space separated>
//	...
//
// Only the unweighted flavor (fmt absent or "0" / "00" / "000") is
// supported; weighted headers are rejected with a descriptive error.

// WriteMETIS serializes g in METIS adjacency format.
func WriteMETIS(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	n := g.NumVertices()
	for u := int32(0); int(u) < n; u++ {
		ns := g.Neighbors(u)
		for i, v := range ns {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(int(v) + 1)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadMETIS parses METIS adjacency format into a Graph.
func ReadMETIS(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var b *Builder
	var n int
	vertex := int32(0)
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		if b == nil {
			// Header line.
			if len(fields) < 2 || len(fields) > 3 {
				return nil, fmt.Errorf("graph: metis header %q", text)
			}
			var err error
			n, err = strconv.Atoi(fields[0])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: metis vertex count %q", fields[0])
			}
			if _, err := strconv.Atoi(fields[1]); err != nil {
				return nil, fmt.Errorf("graph: metis edge count %q", fields[1])
			}
			if len(fields) == 3 && strings.Trim(fields[2], "0") != "" {
				return nil, fmt.Errorf("graph: weighted metis format %q not supported", fields[2])
			}
			b = NewBuilder(n)
			continue
		}
		if int(vertex) >= n {
			if text == "" {
				continue
			}
			return nil, fmt.Errorf("graph: metis has more than %d adjacency lines", n)
		}
		for _, f := range fields {
			w, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("graph: metis neighbor %q on line for vertex %d", f, vertex+1)
			}
			if w < 1 || w > n {
				return nil, fmt.Errorf("graph: metis neighbor %d out of range [1,%d]", w, n)
			}
			b.AddEdge(vertex, int32(w-1))
		}
		vertex++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("graph: empty metis input")
	}
	if int(vertex) != n {
		return nil, fmt.Errorf("graph: metis has %d adjacency lines, header says %d", vertex, n)
	}
	return b.Build(), nil
}

// ReadAuto parses either supported format, selecting by the filename
// extension: ".graph" and ".metis" use METIS adjacency format, everything
// else the edge-list format.
func ReadAuto(name string, r io.Reader) (*Graph, error) {
	if strings.HasSuffix(name, ".graph") || strings.HasSuffix(name, ".metis") {
		return ReadMETIS(r)
	}
	return Read(r)
}
