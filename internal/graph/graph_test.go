package graph

import (
	"testing"
	"testing/quick"
)

func TestEmptyGraph(t *testing.T) {
	var g Graph
	if g.NumVertices() != 0 || g.NumEdges() != 0 || g.NumArcs() != 0 {
		t.Fatal("zero-value graph not empty")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	g2 := NewBuilder(0).Build()
	if g2.NumVertices() != 0 || g2.NumEdges() != 0 {
		t.Fatal("built empty graph not empty")
	}
}

func TestBuilderDedupAndSelfLoops(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate, reversed
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self loop
	b.AddEdge(1, 2)
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || g.HasEdge(0, 2) || g.HasEdge(2, 2) {
		t.Fatal("edge membership wrong after dedup")
	}
}

func TestBuilderGrowsVertexCount(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(5, 9)
	g := b.Build()
	if g.NumVertices() != 10 {
		t.Fatalf("NumVertices = %d, want 10", g.NumVertices())
	}
	b.SetNumVertices(20)
	if b.Build().NumVertices() != 20 {
		t.Fatal("SetNumVertices ignored")
	}
	b.SetNumVertices(3) // must not shrink
	if b.Build().NumVertices() != 20 {
		t.Fatal("SetNumVertices shrank the graph")
	}
}

func TestBuilderIgnoresNegativeIDs(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(-1, 0)
	b.AddEdge(0, -3)
	if g := b.Build(); g.NumEdges() != 0 {
		t.Fatalf("negative-id edges accepted: %d edges", g.NumEdges())
	}
}

func TestDegreesAndNeighborsSorted(t *testing.T) {
	g := paperGraph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	wantDeg := []int32{2, 2, 3, 3, 2, 2, 3, 1}
	for v, want := range wantDeg {
		if d := g.Degree(int32(v)); d != want {
			t.Fatalf("Degree(%d) = %d, want %d", v, d, want)
		}
	}
	ns := g.Neighbors(6)
	want := []int32{3, 5, 7}
	for i := range want {
		if ns[i] != want[i] {
			t.Fatalf("Neighbors(6) = %v, want %v", ns, want)
		}
	}
}

func TestHasEdgeExhaustive(t *testing.T) {
	g := paperGraph()
	adj := map[[2]int32]bool{}
	for _, e := range g.Edges() {
		adj[[2]int32{e.U, e.V}] = true
	}
	n := int32(g.NumVertices())
	for u := int32(0); u < n; u++ {
		for v := int32(0); v < n; v++ {
			want := adj[[2]int32{u, v}] || adj[[2]int32{v, u}]
			if u == v {
				want = false
			}
			if got := g.HasEdge(u, v); got != want {
				t.Fatalf("HasEdge(%d,%d) = %v, want %v", u, v, got, want)
			}
		}
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := randomGraph(500, 2000, 42)
	edges := g.Edges()
	if int64(len(edges)) != g.NumEdges() {
		t.Fatalf("Edges len %d, NumEdges %d", len(edges), g.NumEdges())
	}
	for i, e := range edges {
		if e.U >= e.V {
			t.Fatalf("edge %d not canonical: %v", i, e)
		}
		if i > 0 && (edges[i-1].U > e.U || (edges[i-1].U == e.U && edges[i-1].V >= e.V)) {
			t.Fatalf("edges not sorted at %d", i)
		}
	}
	g2 := FromEdges(g.NumVertices(), edges)
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("round trip changed edge count")
	}
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(int32(v)) != g2.Degree(int32(v)) {
			t.Fatalf("round trip changed degree of %d", v)
		}
	}
}

func TestForEachEdgeParCoversAllEdges(t *testing.T) {
	g := randomGraph(300, 1500, 7)
	var mu chanLock
	seen := map[Edge]int{}
	g.ForEachEdgePar(func(u, v int32) {
		mu.Lock()
		seen[Edge{u, v}]++
		mu.Unlock()
	})
	edges := g.Edges()
	if len(seen) != len(edges) {
		t.Fatalf("ForEachEdgePar saw %d distinct edges, want %d", len(seen), len(edges))
	}
	for e, c := range seen {
		if c != 1 {
			t.Fatalf("edge %v visited %d times", e, c)
		}
		if e.U >= e.V {
			t.Fatalf("edge %v not canonical", e)
		}
	}
}

// chanLock is a tiny mutex built on a channel, to avoid importing sync in a
// test that only needs serialization.
type chanLock struct{ ch chan struct{} }

func (l *chanLock) Lock() {
	if l.ch == nil {
		l.ch = make(chan struct{}, 1)
	}
	l.ch <- struct{}{}
}
func (l *chanLock) Unlock() { <-l.ch }

func TestMaxAvgDegree(t *testing.T) {
	g := star(11)
	if g.MaxDegree() != 10 {
		t.Fatalf("MaxDegree = %d", g.MaxDegree())
	}
	if got, want := g.AvgDegree(), 2.0*10/11; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("AvgDegree = %v, want %v", got, want)
	}
}

func TestEdgeCanon(t *testing.T) {
	if (Edge{3, 1}).Canon() != (Edge{1, 3}) {
		t.Fatal("Canon did not swap")
	}
	if (Edge{1, 3}).Canon() != (Edge{1, 3}) {
		t.Fatal("Canon modified ordered edge")
	}
}

func TestFromAdjacency(t *testing.T) {
	g := FromAdjacency([][]int32{{1, 2}, {0}, {0}})
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("FromAdjacency got n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromEdgesPropertySimpleAndSymmetric(t *testing.T) {
	if err := quick.Check(func(raw [][2]uint8) bool {
		edges := make([]Edge, len(raw))
		for i, p := range raw {
			edges[i] = Edge{int32(p[0] % 50), int32(p[1] % 50)}
		}
		g := FromEdges(50, edges)
		return g.Validate() == nil
	}, nil); err != nil {
		t.Fatal(err)
	}
}
