package graph

import (
	"fmt"

	"repro/internal/par"
)

// Stats holds the structural statistics the paper reports per dataset in
// Table II, plus a few extras used by the harness.
type Stats struct {
	Vertices    int
	Edges       int64
	PctDeg2     float64 // % of vertices with degree ≤ 2 (Table II "% DEG2")
	PctBridges  float64 // % of edges that are bridges (Table II "%BRIDGES")
	AvgDegree   float64
	MaxDegree   int32
	Components  int
	IsolatedVtx int64 // degree-0 vertices
}

// ComputeStats computes all statistics. Bridge counting runs the sequential
// oracle (see Bridges) and is the slow part; pass wantBridges=false to skip
// it for very large graphs.
func ComputeStats(g *Graph, wantBridges bool) Stats {
	n := g.NumVertices()
	s := Stats{
		Vertices:  n,
		Edges:     g.NumEdges(),
		AvgDegree: g.AvgDegree(),
		MaxDegree: g.MaxDegree(),
	}
	if n == 0 {
		return s
	}
	deg2 := par.Count(n, func(i int) bool { return g.Degree(int32(i)) <= 2 })
	s.PctDeg2 = 100 * float64(deg2) / float64(n)
	s.IsolatedVtx = par.Count(n, func(i int) bool { return g.Degree(int32(i)) == 0 })
	_, s.Components = ConnectedComponents(g)
	if wantBridges && s.Edges > 0 {
		s.PctBridges = 100 * float64(len(Bridges(g))) / float64(s.Edges)
	}
	return s
}

// String renders the stats as a Table II style row.
func (s Stats) String() string {
	return fmt.Sprintf("|V|=%d |E|=%d %%DEG2=%.1f %%BRIDGES=%.1f avgdeg=%.1f maxdeg=%d comps=%d",
		s.Vertices, s.Edges, s.PctDeg2, s.PctBridges, s.AvgDegree, s.MaxDegree, s.Components)
}

// Bridges returns every bridge edge of g (canonical orientation U < V),
// computed with an iterative sequential DFS lowpoint algorithm. This is the
// trusted oracle used for Table II statistics and for validating the
// parallel BRIDGE decomposition.
func Bridges(g *Graph) []Edge {
	n := g.NumVertices()
	disc := make([]int32, n) // discovery time, 0 = unvisited
	low := make([]int32, n)
	parent := make([]int32, n)
	var bridges []Edge
	var timer int32

	// Iterative DFS with an explicit stack of (vertex, neighbor index).
	type frame struct {
		v  int32
		ni int
	}
	stack := make([]frame, 0, 64)
	for root := int32(0); int(root) < n; root++ {
		if disc[root] != 0 {
			continue
		}
		timer++
		disc[root], low[root] = timer, timer
		parent[root] = -1
		stack = append(stack, frame{root, 0})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			v := f.v
			ns := g.Neighbors(v)
			if f.ni < len(ns) {
				w := ns[f.ni]
				f.ni++
				if disc[w] == 0 {
					timer++
					disc[w], low[w] = timer, timer
					parent[w] = v
					stack = append(stack, frame{w, 0})
				} else if w != parent[v] {
					// Back edge (the graph is simple, so the single
					// occurrence of the parent is the tree edge).
					if disc[w] < low[v] {
						low[v] = disc[w]
					}
				}
				continue
			}
			// Post-visit: propagate lowpoint, detect bridge.
			stack = stack[:len(stack)-1]
			p := parent[v]
			if p >= 0 {
				if low[v] < low[p] {
					low[p] = low[v]
				}
				if low[v] > disc[p] {
					bridges = append(bridges, Edge{p, v}.Canon())
				}
			}
		}
	}
	return bridges
}
