package graph

// fnvOffset64 and fnvPrime64 are the FNV-1a parameters; the hash is
// computed inline (rather than through hash/fnv) so the CSR arrays are
// mixed word-at-a-time without a byte-serialization pass.
const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// fnvMix64 folds one 64-bit word into an FNV-1a state byte by byte.
func fnvMix64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// Fingerprint returns a 64-bit FNV-1a content hash of the graph: the
// vertex count followed by the CSR offset and adjacency arrays. Because a
// Graph is immutable and its CSR form is canonical (adjacency sorted
// ascending, each undirected edge stored twice), equal graphs — however
// they were constructed — have equal fingerprints, and the value is stable
// across processes and worker counts. The serving layer uses it as the
// graph component of solve-cache and request-coalescing keys.
//
// Graphs loaded from a .scsr file carry the header's fingerprint and
// return it without re-hashing; graphstat -validate recomputes and
// cross-checks it.
func (g *Graph) Fingerprint() uint64 {
	if g.fp != 0 {
		return g.fp
	}
	// canonicalOff makes the zero-value empty graph hash identically to a
	// built empty graph (off = [0]) — and to its serialized form.
	return fingerprintArrays(g.NumVertices(), g.canonicalOff(), g.adj)
}

// fingerprintArrays is the fingerprint computation proper, shared with the
// binary format's validation path (which must recompute the hash from raw
// sections regardless of any cached value).
func fingerprintArrays(n int, off []int64, adj []int32) uint64 {
	h := fnvMix64(uint64(fnvOffset64), uint64(n))
	for _, o := range off {
		h = fnvMix64(h, uint64(o))
	}
	for _, v := range adj {
		h = fnvMix64(h, uint64(v))
	}
	return h
}

// fingerprintState is the incremental form of fingerprintArrays for
// producers that stream the adjacency section (the external builder): mix
// the vertex count, then every offset word, then every adjacency word, in
// order.
type fingerprintState struct{ h uint64 }

func newFingerprintState(n int) *fingerprintState {
	return &fingerprintState{h: fnvMix64(uint64(fnvOffset64), uint64(n))}
}

func (s *fingerprintState) mixInt64s(ws []int64) {
	for _, w := range ws {
		s.h = fnvMix64(s.h, uint64(w))
	}
}

func (s *fingerprintState) mixInt32s(ws []int32) {
	for _, w := range ws {
		s.h = fnvMix64(s.h, uint64(w))
	}
}

func (s *fingerprintState) sum() uint64 { return s.h }
