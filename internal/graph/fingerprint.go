package graph

// fnvOffset64 and fnvPrime64 are the FNV-1a parameters; the hash is
// computed inline (rather than through hash/fnv) so the CSR arrays are
// mixed word-at-a-time without a byte-serialization pass.
const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// fnvMix64 folds one 64-bit word into an FNV-1a state byte by byte.
func fnvMix64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// Fingerprint returns a 64-bit FNV-1a content hash of the graph: the
// vertex count followed by the CSR offset and adjacency arrays. Because a
// Graph is immutable and its CSR form is canonical (adjacency sorted
// ascending, each undirected edge stored twice), equal graphs — however
// they were constructed — have equal fingerprints, and the value is stable
// across processes and worker counts. The serving layer uses it as the
// graph component of solve-cache and request-coalescing keys.
func (g *Graph) Fingerprint() uint64 {
	h := fnvMix64(uint64(fnvOffset64), uint64(g.NumVertices()))
	for _, o := range g.off {
		h = fnvMix64(h, uint64(o))
	}
	for _, v := range g.adj {
		h = fnvMix64(h, uint64(v))
	}
	return h
}
