package graph

import (
	"strings"
	"testing"
)

func TestBridgesOracleKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want []Edge
	}{
		{"path5", path(5), []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}}},
		{"cycle5", cycle(5), nil},
		{"complete5", complete(5), nil},
		{"star5", star(5), []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}}},
		{"paper", paperGraph(), []Edge{{2, 3}, {6, 7}}},
		{"single", path(1), nil},
	}
	for _, c := range cases {
		got := Bridges(c.g)
		gotSet := map[Edge]bool{}
		for _, e := range got {
			gotSet[e] = true
		}
		if len(got) != len(gotSet) {
			t.Fatalf("%s: duplicate bridges reported", c.name)
		}
		if len(got) != len(c.want) {
			t.Fatalf("%s: %d bridges %v, want %d %v", c.name, len(got), got, len(c.want), c.want)
		}
		for _, e := range c.want {
			if !gotSet[e] {
				t.Fatalf("%s: missing bridge %v (got %v)", c.name, e, got)
			}
		}
	}
}

// bruteForceBridges removes each edge and checks whether its endpoints
// disconnect. O(m * (n+m)) — only for tiny graphs.
func bruteForceBridges(g *Graph) map[Edge]bool {
	out := map[Edge]bool{}
	for _, e := range g.Edges() {
		// BFS from e.U avoiding e.
		n := g.NumVertices()
		seen := make([]bool, n)
		seen[e.U] = true
		queue := []int32{e.U}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(v) {
				if v == e.U && w == e.V || v == e.V && w == e.U {
					continue
				}
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
		if !seen[e.V] {
			out[e] = true
		}
	}
	return out
}

func TestBridgesOracleVsBruteForce(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		g := randomGraph(40, 60, seed+100)
		want := bruteForceBridges(g)
		got := Bridges(g)
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d bridges, brute force says %d", seed, len(got), len(want))
		}
		for _, e := range got {
			if !want[e] {
				t.Fatalf("seed %d: %v reported but not a bridge", seed, e)
			}
		}
	}
}

func TestBridgesDisconnectedGraph(t *testing.T) {
	// Two components: a path (all bridges) and a cycle (none).
	b := NewBuilder(8)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2) // path 0-1-2
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(5, 6)
	b.AddEdge(6, 3) // cycle 3-4-5-6
	g := b.Build()
	got := Bridges(g)
	if len(got) != 2 {
		t.Fatalf("got %d bridges %v, want 2", len(got), got)
	}
}

func TestComputeStatsPaperGraph(t *testing.T) {
	g := paperGraph()
	s := ComputeStats(g, true)
	if s.Vertices != 8 || s.Edges != 9 {
		t.Fatalf("n=%d m=%d", s.Vertices, s.Edges)
	}
	// Degrees: 2,2,3,3,2,2,3,1 → deg≤2 count = 5.
	if want := 100 * 5.0 / 8.0; s.PctDeg2 < want-1e-9 || s.PctDeg2 > want+1e-9 {
		t.Fatalf("PctDeg2 = %v, want %v", s.PctDeg2, want)
	}
	// 2 bridges of 9 edges.
	if want := 100 * 2.0 / 9.0; s.PctBridges < want-1e-9 || s.PctBridges > want+1e-9 {
		t.Fatalf("PctBridges = %v, want %v", s.PctBridges, want)
	}
	if s.Components != 1 || s.MaxDegree != 3 || s.IsolatedVtx != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if !strings.Contains(s.String(), "|V|=8") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestComputeStatsSkipBridges(t *testing.T) {
	s := ComputeStats(path(10), false)
	if s.PctBridges != 0 {
		t.Fatal("bridge stat computed despite wantBridges=false")
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := ComputeStats(NewBuilder(0).Build(), true)
	if s.Vertices != 0 || s.Edges != 0 {
		t.Fatalf("stats = %+v", s)
	}
}
