package graph

import "repro/internal/par"

// Shared test fixtures.

// path returns the path graph 0-1-2-...-(n-1).
func path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.Build()
}

// cycle returns the cycle graph on n vertices.
func cycle(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(int32(i), int32((i+1)%n))
	}
	return b.Build()
}

// complete returns K_n.
func complete(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	return b.Build()
}

// star returns K_{1,n-1} with center 0.
func star(n int) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, int32(i))
	}
	return b.Build()
}

// grid returns the r×c grid graph, vertex (i,j) = i*c+j.
func grid(r, c int) *Graph {
	b := NewBuilder(r * c)
	id := func(i, j int) int32 { return int32(i*c + j) }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				b.AddEdge(id(i, j), id(i, j+1))
			}
			if i+1 < r {
				b.AddEdge(id(i, j), id(i+1, j))
			}
		}
	}
	return b.Build()
}

// randomGraph returns a G(n, m)-style random simple graph, deterministic
// under seed, possibly disconnected.
func randomGraph(n int, m int, seed uint64) *Graph {
	r := par.NewRNG(seed)
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	return b.Build()
}

// paperGraph builds the 8-vertex example graph of Figure 1 in the paper:
// vertices a..h = 0..7 with a triangle {a,b,c}, bridge c-d, square
// {d,e,f,g} with diagonal, and pendant h off g. Constructed to have known
// bridges and 2-edge-connected components for decomposition tests.
func paperGraph() *Graph {
	// a=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7
	b := NewBuilder(8)
	b.AddEdge(0, 1) // a-b
	b.AddEdge(1, 2) // b-c
	b.AddEdge(0, 2) // a-c
	b.AddEdge(2, 3) // c-d  (bridge)
	b.AddEdge(3, 4) // d-e
	b.AddEdge(4, 5) // e-f
	b.AddEdge(5, 6) // f-g
	b.AddEdge(3, 6) // d-g
	b.AddEdge(6, 7) // g-h  (bridge)
	return b.Build()
}
