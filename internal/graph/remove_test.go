package graph

import "testing"

func TestRemoveEdgesKeepsVertices(t *testing.T) {
	g := paperGraph()
	// Drop the two bridges {2,3} and {6,7}.
	isBridge := func(a, b int32) bool {
		e := Edge{a, b}.Canon()
		return e == Edge{2, 3} || e == Edge{6, 7}
	}
	gc := RemoveEdges(g, func(a, b int32) bool { return !isBridge(a, b) })
	if gc.NumVertices() != g.NumVertices() {
		t.Fatalf("vertex count changed: %d", gc.NumVertices())
	}
	if gc.NumEdges() != g.NumEdges()-2 {
		t.Fatalf("edges = %d, want %d", gc.NumEdges(), g.NumEdges()-2)
	}
	if err := gc.Validate(); err != nil {
		t.Fatal(err)
	}
	if gc.HasEdge(2, 3) || gc.HasEdge(6, 7) {
		t.Fatal("removed edge still present")
	}
	if !gc.HasEdge(0, 1) {
		t.Fatal("kept edge missing")
	}
	// Vertex 7 becomes isolated but stays addressable.
	if gc.Degree(7) != 0 {
		t.Fatalf("degree of 7 = %d", gc.Degree(7))
	}
}

func TestRemoveEdgesAllAndNone(t *testing.T) {
	g := cycle(10)
	none := RemoveEdges(g, func(a, b int32) bool { return false })
	if none.NumEdges() != 0 || none.NumVertices() != 10 {
		t.Fatal("remove-all wrong")
	}
	all := RemoveEdges(g, func(a, b int32) bool { return true })
	if all.NumEdges() != g.NumEdges() {
		t.Fatal("keep-all wrong")
	}
}

func TestIdentitySub(t *testing.T) {
	g := paperGraph()
	s := IdentitySub(g)
	if s.G != g {
		t.Fatal("IdentitySub wrapped a different graph")
	}
	if s.NumVertices() != g.NumVertices() || s.NumEdges() != g.NumEdges() {
		t.Fatal("IdentitySub counts wrong")
	}
	for i, v := range s.ToGlobal {
		if v != int32(i) {
			t.Fatalf("ToGlobal[%d] = %d", i, v)
		}
	}
}

func TestRelabelRandomIsomorphic(t *testing.T) {
	g := randomGraph(300, 1200, 6)
	h := RelabelRandom(g, 9)
	if h.NumVertices() != g.NumVertices() || h.NumEdges() != g.NumEdges() {
		t.Fatal("relabeling changed counts")
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	// Degree multiset preserved.
	count := func(x *Graph) map[int32]int {
		m := map[int32]int{}
		for v := 0; v < x.NumVertices(); v++ {
			m[x.Degree(int32(v))]++
		}
		return m
	}
	a, b := count(g), count(h)
	for d, c := range a {
		if b[d] != c {
			t.Fatalf("degree %d count %d vs %d", d, c, b[d])
		}
	}
	// Deterministic under seed, different under another.
	h2 := RelabelRandom(g, 9)
	for v := 0; v < h.NumVertices(); v++ {
		if h.Degree(int32(v)) != h2.Degree(int32(v)) {
			t.Fatal("relabel not deterministic")
		}
	}
}

func TestBuilderNumVerticesAddEdges(t *testing.T) {
	b := NewBuilder(3)
	if b.NumVertices() != 3 {
		t.Fatal("NumVertices")
	}
	b.AddEdges([]Edge{{0, 1}, {1, 2}, {2, 2}})
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Fatalf("AddEdges produced %d edges", g.NumEdges())
	}
}

func TestValidateCatchesCorruptGraphs(t *testing.T) {
	// Construct invalid CSR structures directly (same-package access).
	cases := []struct {
		name string
		g    Graph
	}{
		{"bad off0", Graph{off: []int64{1, 2}, adj: []int32{0, 0}}},
		{"non-monotone", Graph{off: []int64{0, 2, 1}, adj: []int32{1, 1}}},
		{"out of range", Graph{off: []int64{0, 1}, adj: []int32{5}}},
		{"self loop", Graph{off: []int64{0, 1}, adj: []int32{0}}},
		{"unsorted", Graph{off: []int64{0, 2, 3, 4}, adj: []int32{2, 1, 0, 0}}},
		{"asymmetric", Graph{off: []int64{0, 1, 1}, adj: []int32{1}}},
	}
	for _, c := range cases {
		if c.g.Validate() == nil {
			t.Fatalf("%s: accepted", c.name)
		}
	}
}
