package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// syncBuffer is a mutex-guarded bytes.Buffer: the request log writes
// from handler goroutines while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// getRecord fetches one flight-recorder entry by id.
func getRecord(t *testing.T, url, id string) (*http.Response, RequestRecord) {
	t.Helper()
	resp, err := http.Get(url + "/debug/requests/" + id)
	if err != nil {
		t.Fatalf("GET /debug/requests/%s: %v", id, err)
	}
	defer resp.Body.Close()
	var rec RequestRecord
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
			t.Fatalf("decode record %s: %v", id, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
	}
	return resp, rec
}

// spanNames flattens a span tree into its set of names.
func spanNames(e *trace.Export, out map[string]int) {
	out[e.Name]++
	for i := range e.Children {
		spanNames(&e.Children[i], out)
	}
}

// TestRequestObservabilityE2E is the acceptance test for request-scoped
// observability: under concurrent distinct solves, every response
// carries a unique request id; the flight recorder serves each request's
// record with phases that sum to its wall time; and each record's span
// tree holds only that request's spans.
func TestRequestObservabilityE2E(t *testing.T) {
	wasTrace := trace.Enabled()
	trace.Enable(true)
	t.Cleanup(func() { trace.Enable(wasTrace) })

	var logBuf syncBuffer
	log, err := telemetry.NewRequestLog(&logBuf, "json")
	if err != nil {
		t.Fatal(err)
	}
	svc, url, _ := newTestServer(t, Config{Log: log})

	const n = 8
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct seeds → distinct cache keys → every request is a
			// singleflight leader running its own solve.
			body := fmt.Sprintf(`{"graph":"ring","problem":"mm","seed":%d}`, i)
			resp, _ := postSolve(t, url, body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d", i, resp.StatusCode)
			}
			ids[i] = resp.Header.Get("X-Symbreak-Request-Id")
		}(i)
	}
	wg.Wait()

	seen := map[string]bool{}
	for i, id := range ids {
		if id == "" {
			t.Fatalf("request %d: no X-Symbreak-Request-Id header", i)
		}
		if seen[id] {
			t.Fatalf("duplicate request id %s", id)
		}
		seen[id] = true
	}

	// Records land in the recorder just after the response body; wait for
	// the last ones.
	recDeadline := time.Now().Add(5 * time.Second)
	for svc.rec.len() < n && time.Now().Before(recDeadline) {
		time.Sleep(time.Millisecond)
	}

	for i, id := range ids {
		resp, rec := getRecord(t, url, id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /debug/requests/%s: status %d", id, resp.StatusCode)
		}
		if rec.ID != id {
			t.Fatalf("record for %s has id %s", id, rec.ID)
		}
		if rec.Status != http.StatusOK || rec.Cache != "miss" {
			t.Errorf("record %s: status=%d cache=%q, want 200/miss", id, rec.Status, rec.Cache)
		}
		if rec.Seed != uint64(i) {
			t.Errorf("record %s: seed %d, want %d", id, rec.Seed, i)
		}

		// Per-phase durations must sum to the logged wall time (±5%).
		var sum int64
		for _, ph := range rec.Phases {
			sum += ph.DurNs
		}
		if rec.WallNs <= 0 {
			t.Fatalf("record %s: wall_ns %d", id, rec.WallNs)
		}
		if diff := sum - rec.WallNs; diff < -rec.WallNs/20 || diff > rec.WallNs/20 {
			t.Errorf("record %s: phases sum %d vs wall %d (off by %d, >5%%)",
				id, sum, rec.WallNs, diff)
		}

		// The span tree holds only this request's spans: its root names
		// this id, exactly one solve ran under it, and no other request's
		// id appears anywhere in the tree.
		if rec.Trace == nil {
			t.Fatalf("record %s: no span tree", id)
		}
		if want := "request " + id; rec.Trace.Name != want {
			t.Fatalf("record %s: span root %q, want %q", id, rec.Trace.Name, want)
		}
		names := map[string]int{}
		spanNames(rec.Trace, names)
		for name := range names {
			if strings.HasPrefix(name, "request ") && name != "request "+id {
				t.Errorf("record %s: foreign span %q in tree", id, name)
			}
		}
		solves := 0
		for name, cnt := range names {
			if strings.HasPrefix(name, "core ") {
				solves += cnt
			}
		}
		if solves != 1 {
			t.Errorf("record %s: %d core solve spans, want exactly 1", id, solves)
		}
		if got := names["queue"]; got != 1 {
			t.Errorf("record %s: %d queue spans, want 1", id, got)
		}
		if got := names["finalize"]; got != 1 {
			t.Errorf("record %s: %d finalize spans, want 1", id, got)
		}
	}

	// The list view knows all of them, without span trees.
	resp, err := http.Get(url + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list requestsResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	listed := map[string]bool{}
	for _, r := range list.Requests {
		listed[r.ID] = true
		if r.Trace != nil {
			t.Errorf("list view for %s includes a span tree", r.ID)
		}
	}
	for _, id := range ids {
		if !listed[id] {
			t.Errorf("request %s missing from /debug/requests", id)
		}
	}

	// The Chrome export renders the same tree for Perfetto.
	cresp, err := http.Get(url + "/debug/requests/" + ids[0] + "?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer cresp.Body.Close()
	cbody, _ := io.ReadAll(cresp.Body)
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("chrome export: status %d: %s", cresp.StatusCode, cbody)
	}
	var cf struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(cbody, &cf); err != nil {
		t.Fatalf("chrome export is not JSON: %v", err)
	}
	if len(cf.TraceEvents) == 0 {
		t.Fatal("chrome export has no events")
	}

	// One structured log line per request, carrying the id and the miss
	// disposition. The line is emitted just after the response body, so
	// poll briefly for the last stragglers.
	var lines []string
	deadline := time.Now().Add(5 * time.Second)
	for {
		lines = strings.Split(strings.TrimSuffix(logBuf.String(), "\n"), "\n")
		if len(lines) >= n || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if len(lines) != n {
		t.Fatalf("%d log lines, want %d:\n%s", len(lines), n, logBuf.String())
	}
	for _, id := range ids {
		found := false
		for _, line := range lines {
			if strings.Contains(line, `"id":"`+id+`"`) {
				found = true
				if !strings.Contains(line, `"cache":"miss"`) {
					t.Errorf("log line for %s lacks cache=miss: %s", id, line)
				}
			}
		}
		if !found {
			t.Errorf("no log line for request %s", id)
		}
	}
}

// TestRequestDispositionsRecorded pins the cache satellite: hit and
// coalesced requests get flight-recorder entries naming their
// disposition, matching the X-Symbreak-Cache header.
func TestRequestDispositionsRecorded(t *testing.T) {
	entered := make(chan struct{}, 1)
	proceed := make(chan struct{})
	var cfg Config
	cfg.FlightRecorder = 16
	svc, url, _ := newTestServer(t, cfg)
	svc.testHookBeforeRun = func() {
		entered <- struct{}{}
		<-proceed
	}

	const body = `{"graph":"ring","problem":"mis","seed":42}`
	type res struct {
		id   string
		disp string
	}
	results := make(chan res, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, _ := postSolve(t, url, body)
			results <- res{
				id:   resp.Header.Get("X-Symbreak-Request-Id"),
				disp: resp.Header.Get("X-Symbreak-Cache"),
			}
		}()
	}
	<-entered // the leader is inside the run
	// Wait until the second request has joined the in-flight solve.
	deadline := time.After(5 * time.Second)
	for svc.flight.dups.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("second request never coalesced")
		case <-time.After(time.Millisecond):
		}
	}
	close(proceed)

	got := map[string]string{}
	for i := 0; i < 2; i++ {
		r := <-results
		got[r.disp] = r.id
	}
	if got["miss"] == "" || got["coalesced"] == "" {
		t.Fatalf("dispositions %v, want one miss and one coalesced", got)
	}

	// A repeat is a cache hit.
	resp, _ := postSolve(t, url, body)
	hitID := resp.Header.Get("X-Symbreak-Request-Id")
	if d := resp.Header.Get("X-Symbreak-Cache"); d != "hit" {
		t.Fatalf("repeat disposition %q, want hit", d)
	}

	recDeadline := time.Now().Add(5 * time.Second)
	for svc.rec.len() < 3 && time.Now().Before(recDeadline) {
		time.Sleep(time.Millisecond)
	}
	for disp, id := range map[string]string{
		"miss": got["miss"], "coalesced": got["coalesced"], "hit": hitID,
	} {
		gresp, rec := getRecord(t, url, id)
		if gresp.StatusCode != http.StatusOK {
			t.Fatalf("GET record %s: status %d", id, gresp.StatusCode)
		}
		if rec.Cache != disp {
			t.Errorf("record %s: cache %q, want %q", id, rec.Cache, disp)
		}
		if disp != "hit" && rec.Report == nil {
			t.Errorf("record %s (%s): no solver report", id, disp)
		}
	}
}

// TestFlightRecorderDisabled checks that a negative config turns the
// recorder off without breaking the endpoints.
func TestFlightRecorderDisabled(t *testing.T) {
	var cfg Config
	cfg.FlightRecorder = -1
	_, url, _ := newTestServer(t, cfg)

	resp, _ := postSolve(t, url, `{"graph":"ring","problem":"mm"}`)
	id := resp.Header.Get("X-Symbreak-Request-Id")
	if id == "" {
		t.Fatal("no request id with recorder disabled")
	}
	gresp, _ := getRecord(t, url, id)
	if gresp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET record with recorder disabled: status %d, want 404", gresp.StatusCode)
	}
}
