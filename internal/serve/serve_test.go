package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/telemetry"
)

// ringGraph builds a cycle on n vertices — small enough to solve
// instantly, structured enough that every problem has a non-trivial
// answer.
func ringGraph(n int) *graph.Graph {
	edges := make([]graph.Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = graph.Edge{U: int32(i), V: int32((i + 1) % n)}
	}
	return graph.FromEdges(n, edges)
}

// newTestServer boots a Service on a random localhost port with a
// one-graph corpus and telemetry enabled, returning the service, its base
// URL, and the registry behind /metrics.
func newTestServer(t *testing.T, cfg Config) (*Service, string, *telemetry.Registry) {
	t.Helper()
	was := telemetry.Enabled()
	telemetry.Enable(true)
	t.Cleanup(func() { telemetry.Enable(was) })

	corpus := NewCorpus()
	if err := corpus.Add("ring", "test", ringGraph(64)); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	cfg.Corpus = corpus
	cfg.Registry = reg
	svc := New(cfg)
	mux := telemetry.NewMux(reg)
	svc.Mount(mux)
	srv, err := telemetry.ServeHandler("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return svc, srv.URL(), reg
}

func postSolve(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /solve: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, b
}

func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read metrics: %v", err)
	}
	return string(b)
}

// TestSolveCoalescingAndCache is the end-to-end acceptance test: N
// concurrent identical requests run the solver exactly once, the repeat
// request hits the cache, and every answer is bit-identical.
func TestSolveCoalescingAndCache(t *testing.T) {
	const n = 8
	entered := make(chan struct{}, n)
	proceed := make(chan struct{})
	var cfg Config
	svc, url, _ := newTestServer(t, cfg)
	svc.testHookBeforeRun = func() {
		entered <- struct{}{}
		<-proceed
	}

	req := `{"graph":"ring","problem":"mm","algo":"rand","seed":7}`
	type result struct {
		code  int
		disp  string
		body  []byte
		order int
	}
	results := make(chan result, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			resp, body := postSolve(t, url, req)
			results <- result{resp.StatusCode, resp.Header.Get("X-Symbreak-Cache"), body, i}
		}(i)
	}

	// The leader is now parked in the hook; wait until every other request
	// has joined it as a coalesced follower, then let the solve run.
	<-entered
	deadline := time.Now().Add(10 * time.Second)
	for svc.flight.dups.Load() < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d followers coalesced", svc.flight.dups.Load(), n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(proceed)

	var miss, coalesced int
	var first []byte
	for i := 0; i < n; i++ {
		r := <-results
		if r.code != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", r.order, r.code, r.body)
		}
		switch r.disp {
		case "miss":
			miss++
		case "coalesced":
			coalesced++
		default:
			t.Fatalf("request %d: X-Symbreak-Cache = %q", r.order, r.disp)
		}
		if first == nil {
			first = r.body
		} else if !bytes.Equal(first, r.body) {
			t.Fatalf("request %d body differs from the first:\n%s\nvs\n%s", r.order, r.body, first)
		}
	}
	if miss != 1 || coalesced != n-1 {
		t.Fatalf("dispositions: %d miss, %d coalesced; want 1 and %d", miss, coalesced, n-1)
	}
	if got := svc.Snapshot().Runs; got != 1 {
		t.Fatalf("runs = %d for %d concurrent identical requests; want exactly 1", got, n)
	}
	if m := scrapeMetrics(t, url); !strings.Contains(m, "symbreak_serve_runs_total 1") {
		t.Fatalf("/metrics missing symbreak_serve_runs_total 1:\n%s", m)
	}

	// Repeat after completion: served from cache, byte-identical.
	resp, body := postSolve(t, url, req)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Symbreak-Cache") != "hit" {
		t.Fatalf("repeat request: status %d, disposition %q; want 200 hit", resp.StatusCode, resp.Header.Get("X-Symbreak-Cache"))
	}
	if !bytes.Equal(body, first) {
		t.Fatalf("cached body differs:\n%s\nvs\n%s", body, first)
	}
	if s := svc.Snapshot(); s.Runs != 1 || s.CacheHits != 1 {
		t.Fatalf("after repeat: runs=%d hits=%d; want 1 and 1", s.Runs, s.CacheHits)
	}
}

// TestSolveDeterministicAcrossServers checks the documented guarantee:
// the same request on two fresh servers yields the same solution (digest,
// count, assignment) — only the wall-clock report may differ.
func TestSolveDeterministicAcrossServers(t *testing.T) {
	req := `{"graph":"ring","problem":"color","seed":42,"include_solution":true}`
	var bodies [2]solveResponse
	for i := range bodies {
		_, url, _ := newTestServer(t, Config{})
		resp, body := postSolve(t, url, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("server %d: status %d, body %s", i, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &bodies[i]); err != nil {
			t.Fatalf("server %d: %v", i, err)
		}
	}
	a, b := bodies[0], bodies[1]
	a.Report, b.Report = reportInfo{}, reportInfo{}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("responses differ beyond timings:\n%s\nvs\n%s", aj, bj)
	}
	if a.Solution.Digest == "" || a.Solution.Digest == fmt.Sprintf("%016x", uint64(0)) {
		t.Fatalf("empty solution digest %q", a.Solution.Digest)
	}
	if len(a.Solution.Assignment) != 64 {
		t.Fatalf("assignment has %d entries; want 64", len(a.Solution.Assignment))
	}
}

// TestSolveQueueFull429 pins admission overload: with a budget of one
// unit, a zero-length queue, and a solve held open, a second distinct
// request is turned away immediately with 429 and Retry-After.
func TestSolveQueueFull429(t *testing.T) {
	entered := make(chan struct{}, 4)
	proceed := make(chan struct{})
	svc, url, _ := newTestServer(t, Config{WorkerBudget: 1, QueueDepth: -1})
	svc.testHookBeforeRun = func() {
		entered <- struct{}{}
		<-proceed
	}

	type result struct {
		resp *http.Response
		body []byte
	}
	held := make(chan result, 1)
	go func() {
		resp, body := postSolve(t, url, `{"graph":"ring","problem":"mm","seed":1}`)
		held <- result{resp, body}
	}()
	<-entered // budget is now fully held

	resp, body := postSolve(t, url, `{"graph":"ring","problem":"mm","seed":2}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload request: status %d, body %s; want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}

	close(proceed)
	r := <-held
	if r.resp.StatusCode != http.StatusOK {
		t.Fatalf("held request: status %d, body %s", r.resp.StatusCode, r.body)
	}
	if m := scrapeMetrics(t, url); !strings.Contains(m, `symbreak_serve_rejected_total{reason="queue_full"} 1`) {
		t.Fatalf("/metrics missing queue_full rejection:\n%s", m)
	}
}

// TestSolveQueueTimeout503 pins the other admission outcome: a request
// that queues but never gets budget within QueueTimeout gets 503.
func TestSolveQueueTimeout503(t *testing.T) {
	entered := make(chan struct{}, 4)
	proceed := make(chan struct{})
	svc, url, _ := newTestServer(t, Config{
		WorkerBudget: 1, QueueDepth: 1, QueueTimeout: 50 * time.Millisecond,
	})
	svc.testHookBeforeRun = func() {
		entered <- struct{}{}
		<-proceed
	}

	done := make(chan struct{})
	go func() {
		postSolve(t, url, `{"graph":"ring","problem":"mm","seed":1}`)
		close(done)
	}()
	<-entered

	resp, body := postSolve(t, url, `{"graph":"ring","problem":"mm","seed":2}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queued request: status %d, body %s; want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 response missing Retry-After")
	}
	close(proceed)
	<-done
}

func TestGraphsEndpoint(t *testing.T) {
	_, url, _ := newTestServer(t, Config{})
	resp, err := http.Get(url + "/graphs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /graphs: status %d", resp.StatusCode)
	}
	var gr graphsResponse
	if err := json.NewDecoder(resp.Body).Decode(&gr); err != nil {
		t.Fatal(err)
	}
	if len(gr.Graphs) != 1 {
		t.Fatalf("corpus lists %d graphs; want 1", len(gr.Graphs))
	}
	g := gr.Graphs[0]
	if g.Name != "ring" || g.Vertices != 64 || g.Edges != 64 || len(g.Fingerprint) != 16 {
		t.Fatalf("unexpected listing: %+v", g)
	}

	post, err := http.Post(url+"/graphs", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /graphs: status %d; want 405", post.StatusCode)
	}
}

func TestSolveInlineEdges(t *testing.T) {
	_, url, _ := newTestServer(t, Config{})
	// A 4-path with vertex count inferred from the edge list.
	resp, body := postSolve(t, url, `{"edges":[[0,1],[1,2],[2,3]],"problem":"mis","include_solution":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inline solve: status %d, body %s", resp.StatusCode, body)
	}
	var sr solveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Graph.Vertices != 4 || sr.Graph.Class != "inline" {
		t.Fatalf("inline graph info = %+v; want 4 inferred vertices", sr.Graph)
	}
	if sr.Solution.Kind != "mis" || len(sr.Solution.Assignment) != 4 {
		t.Fatalf("solution = %+v; want a 4-entry mis assignment", sr.Solution)
	}
}

func TestSolveErrorCodes(t *testing.T) {
	_, url, _ := newTestServer(t, Config{MaxInlineEdges: 2})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"bad json", `{`, http.StatusBadRequest},
		{"unknown field", `{"graph":"ring","problem":"mm","bogus":1}`, http.StatusBadRequest},
		{"unknown problem", `{"graph":"ring","problem":"tsp"}`, http.StatusBadRequest},
		{"unknown algo", `{"graph":"ring","problem":"mm","algo":"magic"}`, http.StatusBadRequest},
		{"unknown arch", `{"graph":"ring","problem":"mm","arch":"tpu"}`, http.StatusBadRequest},
		{"negative params", `{"graph":"ring","problem":"mm","params":{"parts":-1}}`, http.StatusBadRequest},
		{"no graph", `{"problem":"mm"}`, http.StatusBadRequest},
		{"unknown graph", `{"graph":"nope","problem":"mm"}`, http.StatusNotFound},
		{"both sources", `{"graph":"ring","edges":[[0,1]],"problem":"mm"}`, http.StatusConflict},
		{"too many edges", `{"edges":[[0,1],[1,2],[2,3]],"problem":"mm"}`, http.StatusRequestEntityTooLarge},
		{"negative vertex", `{"edges":[[-1,1]],"problem":"mm"}`, http.StatusBadRequest},
		{"endpoint out of range", `{"edges":[[0,5]],"vertices":2,"problem":"mm"}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postSolve(t, url, tc.body)
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, body %s; want %d", resp.StatusCode, body, tc.want)
			}
			var er errorResponse
			if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
				t.Fatalf("error body %q is not an {error} object (%v)", body, err)
			}
		})
	}

	resp, err := http.Get(url + "/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /solve: status %d; want 405", resp.StatusCode)
	}
}

// TestSolveAllProblems smoke-runs every problem and checks the request
// counter landed on /metrics.
func TestSolveAllProblems(t *testing.T) {
	_, url, _ := newTestServer(t, Config{})
	for _, problem := range []string{"mm", "color", "mis"} {
		resp, body := postSolve(t, url, fmt.Sprintf(`{"graph":"ring","problem":%q,"seed":3}`, problem))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d, body %s", problem, resp.StatusCode, body)
		}
		var sr solveResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatalf("%s: %v", problem, err)
		}
		if !strings.EqualFold(sr.Problem, problem) || sr.Algo == "" || sr.Solution.Count <= 0 {
			t.Fatalf("%s: response %+v", problem, sr)
		}
	}
	m := scrapeMetrics(t, url)
	if !strings.Contains(m, `symbreak_serve_requests_total{endpoint="solve",code="200"} 3`) {
		t.Fatalf("/metrics missing the solve request counter:\n%s", m)
	}
}
