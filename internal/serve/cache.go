package serve

import (
	"container/list"
	"sync"
)

// cacheOverhead is the per-entry bookkeeping charge added to the body and
// key sizes when accounting against the byte budget (list element, map
// slot, struct headers — a round figure, not an exact measurement).
const cacheOverhead = 128

// lruCache is a byte-budgeted LRU of marshaled /solve response bodies.
// Get and Put are safe for concurrent use. Entries larger than the whole
// budget are simply not stored.
type lruCache struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	ll     *list.List // front = most recently used
	items  map[string]*list.Element

	hits, misses, evictions uint64
}

type cacheItem struct {
	key  string
	body []byte
}

func newLRUCache(budget int64) *lruCache {
	return &lruCache{
		budget: budget,
		ll:     list.New(),
		items:  map[string]*list.Element{},
	}
}

func itemSize(key string, body []byte) int64 {
	return int64(len(key)) + int64(len(body)) + cacheOverhead
}

// get returns the cached body for key and bumps the entry to
// most-recently-used. The returned slice is shared and must be treated as
// read-only.
func (c *lruCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheItem).body, true
}

// put stores body under key, evicting least-recently-used entries until
// the byte budget holds, and returns how many entries were evicted.
// Re-putting an existing key refreshes its body and recency.
func (c *lruCache) put(key string, body []byte) (evicted int) {
	size := itemSize(key, body)
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.budget {
		return 0
	}
	if el, ok := c.items[key]; ok {
		it := el.Value.(*cacheItem)
		c.bytes += int64(len(body)) - int64(len(it.body))
		it.body = body
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheItem{key: key, body: body})
		c.bytes += size
	}
	for c.bytes > c.budget {
		back := c.ll.Back()
		if back == nil {
			break
		}
		it := back.Value.(*cacheItem)
		c.ll.Remove(back)
		delete(c.items, it.key)
		c.bytes -= itemSize(it.key, it.body)
		c.evictions++
		evicted++
	}
	return evicted
}

// stats returns (hits, misses, evictions, residentBytes, entries).
func (c *lruCache) stats() (hits, misses, evictions uint64, bytes int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.bytes, c.ll.Len()
}
