package serve

import (
	"fmt"
	"sync"
	"testing"
)

func mkRec(id string, wallNs int64) *RequestRecord {
	return &RequestRecord{ID: id, WallNs: wallNs, Status: 200}
}

// TestFlightRecorderRing checks the ring is bounded at its capacity,
// lists newest-first, and pins the slowest records past eviction.
func TestFlightRecorderRing(t *testing.T) {
	fr := newFlightRecorder(4)
	// Walls 10, 20, ..., 120: the slowest are the latest, except one
	// early outlier that must survive the ring churn.
	fr.add(mkRec("outlier", 10_000))
	for i := 1; i <= 11; i++ {
		fr.add(mkRec(fmt.Sprintf("r%02d", i), int64(i)*10))
	}

	recent, slowest := fr.list()
	if len(recent) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recent))
	}
	for i, want := range []string{"r11", "r10", "r09", "r08"} {
		if recent[i].ID != want {
			t.Errorf("recent[%d] = %s, want %s", i, recent[i].ID, want)
		}
	}
	if len(slowest) != 8 {
		t.Fatalf("slowest holds %d, want %d", len(slowest), 8)
	}
	if slowest[0].ID != "outlier" {
		t.Errorf("slowest[0] = %s, want the pinned outlier", slowest[0].ID)
	}
	for i := 1; i < len(slowest); i++ {
		if slowest[i].WallNs > slowest[i-1].WallNs {
			t.Fatalf("slowest not ordered: %d after %d", slowest[i].WallNs, slowest[i-1].WallNs)
		}
	}

	// The outlier fell out of the ring long ago but stays addressable;
	// records in neither set are forgotten.
	if fr.get("outlier") == nil {
		t.Error("pinned outlier not addressable by id")
	}
	if fr.get("r01") != nil {
		// r01 (wall 10) was evicted from the ring and is the slowest
		// set's natural cutoff victim once 8 slower records exist.
		t.Error("evicted record r01 still addressable")
	}
	if fr.get("r11") == nil {
		t.Error("newest record not addressable by id")
	}
}

// TestFlightRecorderDeterministic replays the same completion order
// twice and requires identical contents — sequence numbers, ring order,
// slow-set order.
func TestFlightRecorderDeterministic(t *testing.T) {
	build := func() *flightRecorder {
		fr := newFlightRecorder(3)
		walls := []int64{500, 100, 900, 900, 200, 700, 50, 300}
		for i, w := range walls {
			fr.add(mkRec(fmt.Sprintf("id%d", i), w))
		}
		return fr
	}
	a, b := build(), build()
	ra, sa := a.list()
	rb, sb := b.list()
	for i := range ra {
		if ra[i].ID != rb[i].ID || ra[i].Seq != rb[i].Seq {
			t.Fatalf("ring diverged at %d: %s/%d vs %s/%d", i, ra[i].ID, ra[i].Seq, rb[i].ID, rb[i].Seq)
		}
	}
	for i := range sa {
		if sa[i].ID != sb[i].ID {
			t.Fatalf("slow set diverged at %d: %s vs %s", i, sa[i].ID, sb[i].ID)
		}
	}
	// Equal walls rank by sequence: the earlier 900 outranks the later.
	if sa[0].ID != "id2" || sa[1].ID != "id3" {
		t.Fatalf("tie-break wrong: %s, %s", sa[0].ID, sa[1].ID)
	}
}

// TestFlightRecorderConcurrent hammers add from many goroutines and
// checks the recorder's invariants hold under interleaving: bounded
// sizes, unique dense sequence numbers, the ring holding exactly the
// highest sequences, the slow set correctly ordered.
func TestFlightRecorderConcurrent(t *testing.T) {
	const ringCap, workers, per = 16, 8, 100
	fr := newFlightRecorder(ringCap)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				fr.add(mkRec(fmt.Sprintf("w%d-%d", w, i), int64(w*per+i)))
			}
		}(w)
	}
	wg.Wait()

	recent, slowest := fr.list()
	if len(recent) != ringCap {
		t.Fatalf("ring holds %d, want %d", len(recent), ringCap)
	}
	if len(slowest) != slowestKept {
		t.Fatalf("slow set holds %d, want %d", len(slowest), slowestKept)
	}
	if got := fr.len(); got > ringCap+slowestKept {
		t.Fatalf("id index holds %d records, want <= %d", got, ringCap+slowestKept)
	}

	// Sequence numbers are dense 1..N; the ring is the cap highest, in
	// descending order.
	const total = workers * per
	for i, r := range recent {
		if want := uint64(total - i); r.Seq != want {
			t.Fatalf("recent[%d].Seq = %d, want %d", i, r.Seq, want)
		}
	}
	for i := 1; i < len(slowest); i++ {
		prev, cur := slowest[i-1], slowest[i]
		if cur.WallNs > prev.WallNs || (cur.WallNs == prev.WallNs && cur.Seq < prev.Seq) {
			t.Fatalf("slow set misordered at %d", i)
		}
	}
	// Every indexed record is reachable via exactly the two sets.
	for _, r := range append(append([]*RequestRecord{}, recent...), slowest...) {
		if fr.get(r.ID) == nil {
			t.Fatalf("listed record %s not addressable", r.ID)
		}
	}
}
