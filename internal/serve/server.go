package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/par"
	"repro/internal/telemetry"
)

// Config configures a Service. Zero fields take the documented defaults.
type Config struct {
	// Corpus is the set of graphs answerable by name. nil means an empty
	// corpus (inline edge lists still work).
	Corpus *Corpus
	// Registry receives the symbreak_serve_* metrics; nil uses
	// telemetry.Default.
	Registry *telemetry.Registry
	// WorkerBudget is the admission budget in abstract worker units;
	// 0 uses par.Workers(). A request costs 1 + edges/EdgesPerUnit units.
	WorkerBudget int
	// QueueDepth bounds the admission wait queue; requests beyond it are
	// rejected with 429. 0 means DefaultQueueDepth; use a negative value
	// for an actually zero-length queue (immediate 429 under load).
	QueueDepth int
	// QueueTimeout bounds the time a request may wait for admission
	// before a 503; 0 means DefaultQueueTimeout.
	QueueTimeout time.Duration
	// CacheBytes budgets the solution LRU; 0 means DefaultCacheBytes,
	// negative disables caching.
	CacheBytes int64
	// EdgesPerUnit sets how many graph edges cost one admission unit;
	// 0 means DefaultEdgesPerUnit.
	EdgesPerUnit int64
	// MaxInlineEdges bounds uploaded edge lists; 0 means
	// DefaultMaxInlineEdges. Larger uploads get 413.
	MaxInlineEdges int
	// FlightRecorder sets how many completed solve requests the
	// /debug/requests ring retains (the slowest few are pinned beyond
	// it); 0 means DefaultFlightRecorder, negative disables recording.
	FlightRecorder int
	// Log, when non-nil, receives one structured line per completed
	// solve request (telemetry-gated).
	Log *telemetry.RequestLog
	// SlowLog suppresses request-log lines for requests faster than
	// this threshold; 0 logs every request.
	SlowLog time.Duration
}

// Defaults for the zero Config fields.
const (
	DefaultQueueDepth     = 64
	DefaultFlightRecorder = 256
	DefaultQueueTimeout   = 2 * time.Second
	DefaultCacheBytes     = 256 << 20
	DefaultEdgesPerUnit   = 256 << 10
	DefaultMaxInlineEdges = 1 << 20
)

// Service is the solve service: handlers, coalescing, cache, and
// admission state. Create with New, mount with Mount.
type Service struct {
	corpus *Corpus
	cache  *lruCache
	adm    *admission
	flight *flightGroup
	rec    *flightRecorder
	cfg    Config
	m      metrics

	// runCount counts underlying solver runs — what
	// symbreak_serve_runs_total exposes and the coalescing test asserts
	// equals 1 for N concurrent duplicates.
	runCount atomic.Int64

	// testHookBeforeRun, when set, runs inside the singleflight leader
	// after admission and before the solver — the synchronization point
	// the coalescing and admission tests use to hold a run open.
	testHookBeforeRun func()
}

// metrics holds the symbreak_serve_* handles. Vec children are looked up
// at the (telemetry-gated) publication sites, never pre-materialized.
type metrics struct {
	requests   *telemetry.CounterVec   // {endpoint, code}
	reqSeconds *telemetry.HistogramVec // {endpoint}
	runs       *telemetry.Counter
	coalesced  *telemetry.Counter
	hits       *telemetry.Counter
	misses     *telemetry.Counter
	evictions  *telemetry.Counter
	cacheBytes *telemetry.Gauge
	cacheEnts  *telemetry.Gauge
	admInUse   *telemetry.Gauge
	admQueued  *telemetry.Gauge
	rejected   *telemetry.CounterVec   // {reason}
	solveSecs  *telemetry.HistogramVec // {problem, algo, arch}
}

// New builds a Service from cfg, registering its metrics.
func New(cfg Config) *Service {
	if cfg.Corpus == nil {
		cfg.Corpus = NewCorpus()
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.Default
	}
	if cfg.WorkerBudget == 0 {
		cfg.WorkerBudget = par.Workers()
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = DefaultQueueDepth
	} else if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}
	if cfg.QueueTimeout == 0 {
		cfg.QueueTimeout = DefaultQueueTimeout
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = DefaultCacheBytes
	}
	if cfg.EdgesPerUnit == 0 {
		cfg.EdgesPerUnit = DefaultEdgesPerUnit
	}
	if cfg.MaxInlineEdges == 0 {
		cfg.MaxInlineEdges = DefaultMaxInlineEdges
	}
	if cfg.FlightRecorder == 0 {
		cfg.FlightRecorder = DefaultFlightRecorder
	} else if cfg.FlightRecorder < 0 {
		cfg.FlightRecorder = 0
	}
	r := cfg.Registry
	return &Service{
		corpus: cfg.Corpus,
		cache:  newLRUCache(cfg.CacheBytes),
		adm:    newAdmission(cfg.WorkerBudget, cfg.QueueDepth, cfg.QueueTimeout),
		flight: newFlightGroup(),
		rec:    newFlightRecorder(cfg.FlightRecorder),
		cfg:    cfg,
		m: metrics{
			requests: r.CounterVec("symbreak_serve_requests_total",
				"Requests served, by endpoint and HTTP status code.", "endpoint", "code"),
			reqSeconds: r.HistogramVec("symbreak_serve_request_seconds",
				"End-to-end request latency, by endpoint.", nil, "endpoint"),
			runs: r.Counter("symbreak_serve_runs_total",
				"Underlying solver runs started (coalesced and cached requests do not run)."),
			coalesced: r.Counter("symbreak_serve_coalesced_total",
				"Requests that joined an identical in-flight solve instead of running."),
			hits: r.Counter("symbreak_serve_cache_hits_total",
				"Solve requests answered from the solution cache."),
			misses: r.Counter("symbreak_serve_cache_misses_total",
				"Solve requests that missed the solution cache."),
			evictions: r.Counter("symbreak_serve_cache_evictions_total",
				"Cache entries evicted to hold the byte budget."),
			cacheBytes: r.Gauge("symbreak_serve_cache_bytes",
				"Resident bytes in the solution cache."),
			cacheEnts: r.Gauge("symbreak_serve_cache_entries",
				"Entries in the solution cache."),
			admInUse: r.Gauge("symbreak_serve_admission_in_use",
				"Worker-budget units currently held by running solves."),
			admQueued: r.Gauge("symbreak_serve_admission_queued",
				"Requests waiting in the admission queue."),
			rejected: r.CounterVec("symbreak_serve_rejected_total",
				"Requests rejected by admission control, by reason.", "reason"),
			solveSecs: r.HistogramVec("symbreak_serve_solve_seconds",
				"Wall time of underlying solver runs.", nil, "problem", "algo", "arch"),
		},
	}
}

// Mount registers the service endpoints on mux — typically the telemetry
// mux, so /solve and /graphs share the listener with /metrics, /healthz,
// /trace and pprof.
func (s *Service) Mount(mux *http.ServeMux) {
	mux.HandleFunc("/solve", s.instrument("solve", s.handleSolve))
	mux.HandleFunc("/graphs", s.instrument("graphs", s.handleGraphs))
	mux.HandleFunc("/debug/requests", s.instrument("debug_requests", s.handleRequests))
	mux.HandleFunc("/debug/requests/", s.instrument("debug_requests", s.handleRequestByID))
}

// CorpusLen reports how many graphs the service answers by name.
func (s *Service) CorpusLen() int { return s.corpus.Len() }

// Stats is a point-in-time snapshot of the service counters, for tests
// and the daemon's shutdown log line.
type Stats struct {
	Runs, Coalesced                 int64
	CacheHits, CacheMisses, Evicted uint64
	CacheBytes                      int64
	CacheEntries                    int
	AdmissionInUse, AdmissionQueued int
}

// Snapshot returns the current Stats.
func (s *Service) Snapshot() Stats {
	hits, misses, ev, bytes, ents := s.cache.stats()
	inUse, _, queued := s.adm.stats()
	return Stats{
		Runs:            s.runCount.Load(),
		Coalesced:       s.flight.dups.Load(),
		CacheHits:       hits,
		CacheMisses:     misses,
		Evicted:         ev,
		CacheBytes:      bytes,
		CacheEntries:    ents,
		AdmissionInUse:  inUse,
		AdmissionQueued: queued,
	}
}

// statusWriter captures the status code written by a handler.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the per-endpoint request counter and
// latency histogram.
func (s *Service) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		if telemetry.Enabled() {
			s.m.requests.With(endpoint, strconv.Itoa(sw.code)).Inc()
			s.m.reqSeconds.With(endpoint).Observe(time.Since(start).Seconds())
			s.publishGauges()
		}
	}
}

// publishGauges refreshes the cache and admission gauges.
func (s *Service) publishGauges() {
	if !telemetry.Enabled() {
		return
	}
	_, _, _, bytes, ents := s.cache.stats()
	inUse, _, queued := s.adm.stats()
	s.m.cacheBytes.Set(float64(bytes))
	s.m.cacheEnts.Set(float64(ents))
	s.m.admInUse.Set(float64(inUse))
	s.m.admQueued.Set(float64(queued))
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Service) handleGraphs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	entries := s.corpus.Entries()
	infos := make([]graphInfo, len(entries))
	for i, e := range entries {
		infos[i] = graphInfoFor(e.Name, e.Class, e.G, e.Fingerprint)
	}
	writeJSON(w, http.StatusOK, graphsResponse{Graphs: infos})
}
