package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/graph"
)

// Entry is one named graph in a Corpus. The fingerprint is computed once
// at load time and reused for every request key touching the graph.
type Entry struct {
	Name        string
	Class       string // dataset class, or "file" / "inline"
	G           *graph.Graph
	Fingerprint uint64
}

// Corpus is the set of graphs a Service answers by name. It is built
// before the server starts and immutable afterwards, so lookups need no
// locking.
type Corpus struct {
	entries []Entry
	byName  map[string]int
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{byName: map[string]int{}}
}

// Add registers g under name. Adding a duplicate name is an error: corpus
// names are the API's graph identifiers.
func (c *Corpus) Add(name, class string, g *graph.Graph) error {
	if name == "" {
		return fmt.Errorf("serve: empty graph name")
	}
	if _, dup := c.byName[name]; dup {
		return fmt.Errorf("serve: duplicate corpus graph %q", name)
	}
	c.byName[name] = len(c.entries)
	c.entries = append(c.entries, Entry{
		Name: name, Class: class, G: g, Fingerprint: g.Fingerprint(),
	})
	return nil
}

// AddDatasets generates the named dataset instances (internal/dataset
// Table II analogs) at the given scale and seed. names may be instance
// names or the single word "all".
func (c *Corpus) AddDatasets(names []string, scale float64, seed uint64) error {
	if len(names) == 1 && names[0] == "all" {
		names = dataset.Names()
	}
	for _, name := range names {
		spec, ok := dataset.Get(name)
		if !ok {
			return fmt.Errorf("serve: unknown dataset instance %q (known: %v)", name, dataset.Names())
		}
		if err := c.Add(name, spec.Class, dataset.Load(spec, scale, seed)); err != nil {
			return err
		}
	}
	return nil
}

// AddDir loads every regular file in dir as a graph (edge list, METIS for
// .graph/.metis, or binary CSR for .scsr/.bin — the same extension
// dispatch as the -file flag) and registers it under its base name without
// extension. Binary files open via the mmap fast path where available, and
// their header fingerprint is used directly, so a corpus of .scsr files
// starts serving without parsing or re-hashing any adjacency. Files are
// loaded in sorted name order so corpus listings are deterministic.
func (c *Corpus) AddDir(dir string) error {
	des, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("serve: corpus dir: %w", err)
	}
	names := make([]string, 0, len(des))
	for _, de := range des {
		if de.Type().IsRegular() {
			names = append(names, de.Name())
		}
	}
	sort.Strings(names)
	for _, fn := range names {
		path := filepath.Join(dir, fn)
		g, err := graph.LoadFile(path)
		if err != nil {
			return fmt.Errorf("serve: corpus file %s: %w", path, err)
		}
		name := strings.TrimSuffix(fn, filepath.Ext(fn))
		if err := c.Add(name, "file", g); err != nil {
			return err
		}
	}
	return nil
}

// Get returns the entry registered under name.
func (c *Corpus) Get(name string) (Entry, bool) {
	i, ok := c.byName[name]
	if !ok {
		return Entry{}, false
	}
	return c.entries[i], true
}

// Entries returns the entries in registration order.
func (c *Corpus) Entries() []Entry {
	out := make([]Entry, len(c.entries))
	copy(out, c.entries)
	return out
}

// Len reports the number of graphs.
func (c *Corpus) Len() int { return len(c.entries) }
