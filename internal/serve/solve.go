package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// solveParams carries the decomposition parameters; zeros mean the
// paper's defaults (core.Options.Normalized resolves them).
type solveParams struct {
	// Parts is the RAND partition count k.
	Parts int `json:"parts,omitempty"`
	// K is the DEGk degree threshold.
	K int `json:"k,omitempty"`
	// Beta is the MPX ball-growing rate.
	Beta float64 `json:"beta,omitempty"`
}

// solveRequest is the POST /solve body. Exactly one of Graph and Edges
// selects the input graph.
type solveRequest struct {
	Graph           string      `json:"graph,omitempty"`
	Edges           [][2]int32  `json:"edges,omitempty"`
	Vertices        int         `json:"vertices,omitempty"`
	Problem         string      `json:"problem"`
	Algo            string      `json:"algo,omitempty"`
	Arch            string      `json:"arch,omitempty"`
	Seed            uint64      `json:"seed,omitempty"`
	Params          solveParams `json:"params,omitempty"`
	IncludeSolution bool        `json:"include_solution,omitempty"`
}

type graphInfo struct {
	Name        string `json:"name"`
	Class       string `json:"class,omitempty"`
	Vertices    int    `json:"vertices"`
	Edges       int64  `json:"edges"`
	Fingerprint string `json:"fingerprint"`
}

func graphInfoFor(name, class string, g *graph.Graph, fp uint64) graphInfo {
	return graphInfo{
		Name:        name,
		Class:       class,
		Vertices:    g.NumVertices(),
		Edges:       g.NumEdges(),
		Fingerprint: fmt.Sprintf("%016x", fp),
	}
}

type graphsResponse struct {
	Graphs []graphInfo `json:"graphs"`
}

type solutionInfo struct {
	// Kind is "matching", "coloring", or "mis".
	Kind string `json:"kind"`
	// Count is matched edges / palette size / member count.
	Count int64 `json:"count"`
	// Digest is the FNV-1a hash of the full solution payload — the
	// compact determinism witness (core.Result.SolutionDigest).
	Digest string `json:"digest"`
	// Assignment is the full per-vertex vector (mate / color / 0-1
	// membership), present only when the request set include_solution.
	Assignment []int32 `json:"assignment,omitempty"`
}

type reportInfo struct {
	Rounds   int   `json:"rounds"`
	DecompNs int64 `json:"decomp_ns"`
	SolveNs  int64 `json:"solve_ns"`
	TotalNs  int64 `json:"total_ns"`
}

// solveResponse is the POST /solve 200 body. Everything except the
// reportInfo timings is deterministic for a given request; the whole body
// is bit-identical across repeats of the same request on one server
// because coalesced and cached answers reuse the original bytes.
type solveResponse struct {
	Graph    graphInfo    `json:"graph"`
	Problem  string       `json:"problem"`
	Strategy string       `json:"strategy"`
	Algo     string       `json:"algo"`
	Arch     string       `json:"arch"`
	Seed     uint64       `json:"seed"`
	Params   solveParams  `json:"params"`
	Solution solutionInfo `json:"solution"`
	Report   reportInfo   `json:"report"`
}

// solveOutcome is what a singleflight run produces: the marshaled 200
// body shared by the leader and every coalesced follower, plus the
// solver report that coalesced followers copy into their own
// flight-recorder records.
type solveOutcome struct {
	body   []byte
	report reportInfo
}

// parsedSolve is a validated request: the resolved graph plus normalized
// solve coordinates, and the cache/coalescing key derived from them.
type parsedSolve struct {
	info     graphInfo
	g        *graph.Graph
	problem  core.Problem
	strategy core.Strategy // resolved: never StrategyAuto
	arch     core.Arch
	opt      core.Options
	include  bool
	key      string
}

// httpError carries a status code out of request parsing.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func httpErrorf(code int, format string, args ...any) *httpError {
	return &httpError{code: code, msg: fmt.Sprintf(format, args...)}
}

// parseSolve validates a request body into a parsedSolve.
func (s *Service) parseSolve(req *solveRequest) (*parsedSolve, *httpError) {
	p, err := cli.ParseProblem(req.Problem)
	if err != nil {
		return nil, httpErrorf(http.StatusBadRequest, "%v", err)
	}
	algo := req.Algo
	if algo == "" {
		algo = "auto"
	}
	strat, err := cli.ParseStrategy(algo)
	if err != nil {
		return nil, httpErrorf(http.StatusBadRequest, "%v", err)
	}
	archStr := req.Arch
	if archStr == "" {
		archStr = "cpu"
	}
	arch, err := cli.ParseArch(archStr)
	if err != nil {
		return nil, httpErrorf(http.StatusBadRequest, "%v", err)
	}
	if req.Params.Parts < 0 || req.Params.K < 0 || req.Params.Beta < 0 {
		return nil, httpErrorf(http.StatusBadRequest, "params must be non-negative, got %+v", req.Params)
	}

	var info graphInfo
	var g *graph.Graph
	switch {
	case req.Graph != "" && len(req.Edges) > 0:
		return nil, httpErrorf(http.StatusConflict,
			"request names corpus graph %q and uploads %d inline edges; provide exactly one graph source",
			req.Graph, len(req.Edges))
	case req.Graph != "":
		e, ok := s.corpus.Get(req.Graph)
		if !ok {
			return nil, httpErrorf(http.StatusNotFound, "unknown graph %q (GET /graphs lists the corpus)", req.Graph)
		}
		g = e.G
		info = graphInfoFor(e.Name, e.Class, e.G, e.Fingerprint)
	case len(req.Edges) > 0:
		if len(req.Edges) > s.cfg.MaxInlineEdges {
			return nil, httpErrorf(http.StatusRequestEntityTooLarge,
				"%d inline edges exceed the limit of %d", len(req.Edges), s.cfg.MaxInlineEdges)
		}
		n := req.Vertices
		for _, e := range req.Edges {
			if e[0] < 0 || e[1] < 0 {
				return nil, httpErrorf(http.StatusBadRequest, "negative vertex id in edge [%d,%d]", e[0], e[1])
			}
			if int(e[0]) >= n {
				if req.Vertices > 0 {
					return nil, httpErrorf(http.StatusBadRequest,
						"edge endpoint %d out of range for %d vertices", e[0], req.Vertices)
				}
				n = int(e[0]) + 1
			}
			if int(e[1]) >= n {
				if req.Vertices > 0 {
					return nil, httpErrorf(http.StatusBadRequest,
						"edge endpoint %d out of range for %d vertices", e[1], req.Vertices)
				}
				n = int(e[1]) + 1
			}
		}
		edges := make([]graph.Edge, len(req.Edges))
		for i, e := range req.Edges {
			edges[i] = graph.Edge{U: e[0], V: e[1]}
		}
		g = graph.FromEdges(n, edges)
		info = graphInfoFor("(inline)", "inline", g, g.Fingerprint())
	default:
		return nil, httpErrorf(http.StatusBadRequest, "request needs a corpus graph name or inline edges")
	}

	strategy := strat
	if strategy == core.StrategyAuto {
		strategy = core.TableIStrategy(p, arch)
	}
	opt := core.Options{
		Strategy:  strategy,
		Arch:      arch,
		RandParts: req.Params.Parts,
		DegK:      req.Params.K,
		MPXBeta:   req.Params.Beta,
		Seed:      req.Seed,
	}
	norm := opt.Normalized()
	key := fmt.Sprintf("%s|%v|%v|%v|seed=%d|parts=%d|k=%d|beta=%g|sol=%t",
		info.Fingerprint, p, strategy, arch,
		req.Seed, norm.RandParts, norm.DegK, norm.MPXBeta, req.IncludeSolution)
	return &parsedSolve{
		info: info, g: g, problem: p, strategy: strategy, arch: arch,
		opt: opt, include: req.IncludeSolution, key: key,
	}, nil
}

// cost translates a graph size into admission units.
func (s *Service) cost(g *graph.Graph) int {
	return 1 + int(g.NumEdges()/s.cfg.EdgesPerUnit)
}

func (s *Service) handleSolve(w http.ResponseWriter, r *http.Request) {
	rt := s.beginRequest(w)
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.finishError(w, rt, http.StatusMethodNotAllowed, "use POST")
		return
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req solveRequest
	if err := dec.Decode(&req); err != nil {
		s.finishError(w, rt, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	ps, herr := s.parseSolve(&req)
	if herr != nil {
		s.finishError(w, rt, herr.code, "%s", herr.msg)
		return
	}
	rt.setCoords(ps)
	rt.phase("parse")

	if body, ok := s.cache.get(ps.key); ok {
		if telemetry.Enabled() {
			s.m.hits.Inc()
		}
		rt.rec.Cache = "hit"
		rt.phase("lookup")
		writeSolveBody(w, body, "hit")
		s.finish(rt, http.StatusOK)
		return
	}
	if telemetry.Enabled() {
		s.m.misses.Inc()
	}
	rt.phase("lookup")

	// Only the singleflight leader's closure runs, on the leader's own
	// goroutine — so rt inside it is always the leader's track, and the
	// queue/decomp/solve/verify/finalize phases land on the leader's
	// record. Followers spend the same interval blocked in do; their
	// records call it "coalesced".
	out, err, shared := s.flight.do(ps.key, func() (*solveOutcome, error) {
		return s.runSolve(r.Context(), ps, rt)
	})
	if shared && telemetry.Enabled() {
		s.m.coalesced.Inc()
	}
	if err != nil {
		// The leader already stamped its phases inside runSolve; only a
		// follower needs the blocked interval accounted for.
		if shared {
			rt.phase("coalesced")
		}
		rt.rec.Error = err.Error()
		s.finish(rt, s.writeSolveError(w, err))
		return
	}
	disposition := "miss"
	if shared {
		disposition = "coalesced"
		rt.phase("coalesced")
	}
	rt.rec.Cache = disposition
	rep := out.report
	rt.rec.Report = &rep
	writeSolveBody(w, out.body, disposition)
	s.finish(rt, http.StatusOK)
}

// runSolve is the singleflight leader body: admission, the solver run,
// response marshaling, cache fill. It records onto the leader's own
// track: queue wait, the solver phase split, and — when tracing is on —
// a per-request span tree collected by a Collector carried through ctx
// into core, so concurrent requests never interleave spans.
func (s *Service) runSolve(ctx context.Context, ps *parsedSolve, rt *requestTrack) (*solveOutcome, error) {
	var col *trace.Collector
	if trace.Enabled() {
		col = trace.NewCollector()
		ctx = trace.NewContext(ctx, col)
	}
	reqSpan := col.Beginf("request %s", rt.id)

	qstart := time.Now()
	qspan := col.Begin("queue")
	release, err := s.adm.acquire(s.cost(ps.g))
	qspan.End()
	rt.rec.QueueNs = time.Since(qstart).Nanoseconds()
	rt.phase("queue")
	if err != nil {
		reqSpan.End()
		return nil, err
	}
	defer release()
	if s.testHookBeforeRun != nil {
		s.testHookBeforeRun()
	}

	s.runCount.Add(1)
	if telemetry.Enabled() {
		s.m.runs.Inc()
	}
	start := time.Now()
	res, err := core.SolveVerifiedCtx(ctx, ps.g, ps.problem, ps.opt)
	if err != nil {
		reqSpan.End()
		rt.phase("run")
		return nil, err
	}
	if telemetry.Enabled() {
		s.m.solveSecs.With(ps.problem.String(), res.Report.StrategyName, ps.arch.String()).
			Observe(time.Since(start).Seconds())
	}
	rep := reportInfo{
		Rounds:   res.Report.Rounds,
		DecompNs: res.Report.Decomp.Nanoseconds(),
		SolveNs:  res.Report.Solve.Nanoseconds(),
		TotalNs:  res.Report.Total().Nanoseconds(),
	}
	rt.splitRun(rep)

	fspan := col.Begin("finalize")
	norm := ps.opt.Normalized()
	resp := solveResponse{
		Graph:    ps.info,
		Problem:  ps.problem.String(),
		Strategy: ps.strategy.String(),
		Algo:     res.Report.StrategyName,
		Arch:     ps.arch.String(),
		Seed:     ps.opt.Seed,
		Params:   solveParams{Parts: norm.RandParts, K: norm.DegK, Beta: norm.MPXBeta},
		Solution: solutionFor(res, ps.include),
		Report:   rep,
	}
	body, err := json.Marshal(resp)
	if err != nil {
		fspan.End()
		reqSpan.End()
		rt.phase("finalize")
		return nil, err
	}
	evicted := s.cache.put(ps.key, body)
	if evicted > 0 && telemetry.Enabled() {
		s.m.evictions.Add(float64(evicted))
	}
	fspan.End()
	reqSpan.End()
	rt.phase("finalize")
	if col != nil {
		snap := col.Snapshot()
		if len(snap.Children) == 1 {
			rt.rec.Trace = &snap.Children[0]
		} else {
			rt.rec.Trace = &snap
		}
	}
	return &solveOutcome{body: body, report: rep}, nil
}

// solutionFor summarizes (and optionally embeds) the solution vector.
func solutionFor(res *core.Result, include bool) solutionInfo {
	info := solutionInfo{
		Count:  res.SolutionCount(),
		Digest: fmt.Sprintf("%016x", res.SolutionDigest()),
	}
	switch {
	case res.Matching != nil:
		info.Kind = "matching"
		if include {
			info.Assignment = res.Matching.Mate
		}
	case res.Coloring != nil:
		info.Kind = "coloring"
		if include {
			info.Assignment = res.Coloring.Color
		}
	case res.IndepSet != nil:
		info.Kind = "mis"
		if include {
			info.Assignment = make([]int32, len(res.IndepSet.In))
			for i, in := range res.IndepSet.In {
				if in {
					info.Assignment[i] = 1
				}
			}
		}
	}
	return info
}

// writeSolveBody writes a marshaled 200 response with the cache
// disposition header.
func writeSolveBody(w http.ResponseWriter, body []byte, disposition string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Symbreak-Cache", disposition)
	w.WriteHeader(http.StatusOK)
	w.Write(body) //nolint:errcheck // client went away; nothing to do
}

// writeSolveError maps run errors to HTTP statuses: admission rejections
// to 429/503 with Retry-After, everything else to 500. It returns the
// status it wrote so the caller can seal the flight-recorder entry.
func (s *Service) writeSolveError(w http.ResponseWriter, err error) int {
	switch {
	case errors.Is(err, errQueueFull):
		if telemetry.Enabled() {
			s.m.rejected.With("queue_full").Inc()
		}
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return http.StatusTooManyRequests
	case errors.Is(err, errQueueTimeout):
		if telemetry.Enabled() {
			s.m.rejected.With("timeout").Inc()
		}
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return http.StatusServiceUnavailable
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return http.StatusInternalServerError
	}
}
