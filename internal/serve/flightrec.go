package serve

import (
	"net/http"
	"strings"
	"sync"

	"repro/internal/trace"
)

// slowestKept is how many slowest requests the recorder pins outside
// the ring, so a latency outlier stays inspectable after the ring has
// churned past it.
const slowestKept = 8

// flightRecorder keeps the last N completed RequestRecords in a ring
// plus the K slowest ever seen, indexed by request id. Records are
// immutable once added, so readers get shared pointers.
//
// Sequencing is deterministic: Seq is assigned under the recorder mutex
// in completion order, the ring holds exactly the cap highest sequence
// numbers present, and the slowest set orders by (wall desc, seq asc) —
// under concurrent completion the contents depend only on the set of
// records and the completion order, never on reader timing.
type flightRecorder struct {
	mu   sync.Mutex
	seq  uint64
	ring []*RequestRecord // circular; next is the slot to overwrite
	next int
	cap  int
	slow []*RequestRecord // wall desc, seq asc; len <= slowestKept
	byID map[string]*RequestRecord
}

// newFlightRecorder returns a recorder keeping the last cap records;
// cap <= 0 disables recording entirely (add becomes a no-op).
func newFlightRecorder(cap int) *flightRecorder {
	return &flightRecorder{cap: cap, byID: map[string]*RequestRecord{}}
}

// add seals rec into the recorder: assigns its sequence number, rotates
// it through the ring, and re-ranks the slowest set.
func (fr *flightRecorder) add(rec *RequestRecord) {
	if fr.cap <= 0 {
		return
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	fr.seq++
	rec.Seq = fr.seq

	if len(fr.ring) < fr.cap {
		fr.ring = append(fr.ring, rec)
		fr.next = (fr.next + 1) % fr.cap
	} else {
		old := fr.ring[fr.next]
		fr.ring[fr.next] = rec
		fr.next = (fr.next + 1) % fr.cap
		fr.drop(old)
	}

	// Insert into the slowest set, ordered wall desc then seq asc (ties
	// keep the earlier request, so the set is stable under reordering).
	i := len(fr.slow)
	for i > 0 && slower(rec, fr.slow[i-1]) {
		i--
	}
	if i < slowestKept {
		fr.slow = append(fr.slow, nil)
		copy(fr.slow[i+1:], fr.slow[i:])
		fr.slow[i] = rec
		rec.Slow = true
		if len(fr.slow) > slowestKept {
			last := fr.slow[slowestKept]
			fr.slow = fr.slow[:slowestKept]
			last.Slow = false
			fr.drop(last)
		}
	}
	fr.byID[rec.ID] = rec
}

// slower reports whether a ranks strictly ahead of b in the slowest set.
func slower(a, b *RequestRecord) bool {
	if a.WallNs != b.WallNs {
		return a.WallNs > b.WallNs
	}
	return a.Seq < b.Seq
}

// drop removes old from the id index unless the other set still holds it.
func (fr *flightRecorder) drop(old *RequestRecord) {
	if fr.inRing(old) || fr.inSlow(old) {
		return
	}
	delete(fr.byID, old.ID)
}

func (fr *flightRecorder) inRing(rec *RequestRecord) bool {
	for _, r := range fr.ring {
		if r == rec {
			return true
		}
	}
	return false
}

func (fr *flightRecorder) inSlow(rec *RequestRecord) bool {
	for _, r := range fr.slow {
		if r == rec {
			return true
		}
	}
	return false
}

// list returns the ring newest-first and the slowest set, as shared
// pointers to immutable records.
func (fr *flightRecorder) list() (recent, slowest []*RequestRecord) {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	recent = make([]*RequestRecord, 0, len(fr.ring))
	for i := 0; i < len(fr.ring); i++ {
		// next-1 is the newest slot; walk backwards through the ring.
		idx := fr.next - 1 - i
		if idx < 0 {
			idx += len(fr.ring)
		}
		recent = append(recent, fr.ring[idx])
	}
	slowest = append(slowest, fr.slow...)
	return recent, slowest
}

// get returns the record for id, or nil.
func (fr *flightRecorder) get(id string) *RequestRecord {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.byID[id]
}

// len reports how many records the recorder currently indexes.
func (fr *flightRecorder) len() int {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return len(fr.byID)
}

// requestsResponse is the GET /debug/requests body: the ring newest
// first, then the pinned slowest set (wall-time descending). Summaries
// omit the span tree; fetch /debug/requests/<id> for it.
type requestsResponse struct {
	Requests []*RequestRecord `json:"requests"`
	Slowest  []*RequestRecord `json:"slowest"`
}

// summaries strips the span trees for the list view.
func summaries(recs []*RequestRecord) []*RequestRecord {
	out := make([]*RequestRecord, len(recs))
	for i, r := range recs {
		cp := *r
		cp.Trace = nil
		out[i] = &cp
	}
	return out
}

// handleRequests serves the flight-recorder list.
func (s *Service) handleRequests(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	recent, slowest := s.rec.list()
	writeJSON(w, http.StatusOK, requestsResponse{
		Requests: summaries(recent),
		Slowest:  summaries(slowest),
	})
}

// handleRequestByID serves one record in full. ?format=chrome renders
// the span tree as a Chrome trace-event file for Perfetto.
func (s *Service) handleRequestByID(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/debug/requests/")
	rec := s.rec.get(id)
	if rec == nil {
		writeError(w, http.StatusNotFound,
			"no flight-recorder entry for request %q (ring holds the last %d; slowest %d are pinned)",
			id, s.rec.cap, slowestKept)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, rec)
	case "chrome":
		if rec.Trace == nil {
			writeError(w, http.StatusNotFound,
				"request %s recorded no span tree (cached/coalesced response, or tracing disabled)", id)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		trace.ExportChromeTrace(w, *rec.Trace) //nolint:errcheck // client went away; nothing to do
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (want json or chrome)", format)
	}
}
