// Package serve is the request-serving layer: symmetry breaking as a
// service. It mounts a small HTTP/JSON API — POST /solve, GET /graphs —
// onto the telemetry mux (internal/telemetry), so one listener carries
// solves, /metrics, /healthz, /trace and pprof.
//
// A Service wraps a Corpus of named, fingerprinted graphs (dataset
// instances generated at startup and/or edge-list files from a directory)
// and answers solve requests off the persistent par worker pool. Three
// production mechanics make repeated traffic cheap and overload survivable:
//
//   - Request coalescing. Concurrent identical solves — same graph
//     fingerprint × problem × strategy × arch × seed × normalized
//     parameters — share one solver run through a singleflight group.
//     N duplicates in flight cost one run; the followers are counted in
//     symbreak_serve_coalesced_total and marked X-Symbreak-Cache:
//     coalesced.
//
//   - Solution cache. Completed responses land in a byte-budgeted LRU
//     keyed by the same request key. A hit answers from memory with the
//     exact bytes of the original response (X-Symbreak-Cache: hit), which
//     together with per-seed solver determinism makes repeat responses
//     bit-identical. Eviction is size-driven (Config.CacheBytes);
//     hit/miss/eviction counts and resident bytes are exported.
//
//   - Admission control. Each request is charged a worker-budget cost
//     proportional to its graph's edge count (1 + m/EdgesPerUnit units,
//     clamped to the budget); a run starts only when the cost fits in
//     Config.WorkerBudget. Excess requests wait in a bounded FIFO queue:
//     when the queue is full the request is rejected immediately with
//     429, and a queued request that cannot start within
//     Config.QueueTimeout gets 503 — both with Retry-After — so one huge
//     graph delays, but never starves or collapses, the pool.
//
// Responses carry the solution's size and FNV-1a digest
// (core.Result.SolutionDigest) rather than defaulting to the full
// assignment; include_solution opts into the complete vector. All
// symbreak_serve_* metric publications are gated on telemetry.Enabled(),
// like every other instrumented path in the repository. See docs/API.md
// for the wire format and docs/OPS.md for operating the daemon.
package serve
