package serve

import (
	"errors"
	"sync"
	"time"
)

// Admission outcomes surfaced as HTTP statuses by the handler.
var (
	// errQueueFull means the bounded admission queue had no room: 429.
	errQueueFull = errors.New("serve: admission queue full")
	// errQueueTimeout means the request waited QueueTimeout without the
	// pool freeing enough budget: 503.
	errQueueTimeout = errors.New("serve: admission queue timeout")
)

// admission is a weighted FIFO semaphore over abstract worker-budget
// units. A request costs 1 + m/EdgesPerUnit units (clamped to the
// budget), so several small solves run concurrently while one huge graph
// takes the pool alone — and, because grants are strictly FIFO, a big
// request parked at the head is never starved by a stream of small ones.
type admission struct {
	mu      sync.Mutex
	budget  int
	avail   int
	maxWait int           // queue bound; 0 = reject whenever budget is short
	timeout time.Duration // max time in the queue
	queue   []*waiter
}

type waiter struct {
	need    int
	ready   chan struct{} // closed under mu when granted
	granted bool
}

func newAdmission(budget, maxWait int, timeout time.Duration) *admission {
	return &admission{budget: budget, avail: budget, maxWait: maxWait, timeout: timeout}
}

// clampCost bounds a request cost to [1, budget] so oversized graphs are
// admissible (they just take the whole budget).
func (a *admission) clampCost(cost int) int {
	if cost < 1 {
		cost = 1
	}
	if cost > a.budget {
		cost = a.budget
	}
	return cost
}

// acquire blocks until cost units are available, the bounded queue
// overflows (errQueueFull), or the wait exceeds the timeout
// (errQueueTimeout). On success the caller must call the returned release
// exactly once.
func (a *admission) acquire(cost int) (release func(), err error) {
	cost = a.clampCost(cost)
	a.mu.Lock()
	if len(a.queue) == 0 && a.avail >= cost {
		a.avail -= cost
		a.mu.Unlock()
		return func() { a.release(cost) }, nil
	}
	if len(a.queue) >= a.maxWait {
		a.mu.Unlock()
		return nil, errQueueFull
	}
	w := &waiter{need: cost, ready: make(chan struct{})}
	a.queue = append(a.queue, w)
	a.mu.Unlock()

	timer := time.NewTimer(a.timeout)
	defer timer.Stop()
	select {
	case <-w.ready:
		return func() { a.release(cost) }, nil
	case <-timer.C:
	}
	a.mu.Lock()
	if w.granted {
		// The grant raced the timeout; take it.
		a.mu.Unlock()
		return func() { a.release(cost) }, nil
	}
	for i, q := range a.queue {
		if q == w {
			a.queue = append(a.queue[:i], a.queue[i+1:]...)
			break
		}
	}
	// Removing a big head waiter may unblock smaller ones behind it.
	a.grantLocked()
	a.mu.Unlock()
	return nil, errQueueTimeout
}

// release returns cost units and hands them to queued waiters in FIFO
// order.
func (a *admission) release(cost int) {
	a.mu.Lock()
	a.avail += cost
	a.grantLocked()
	a.mu.Unlock()
}

// grantLocked admits queued waiters from the front while they fit.
func (a *admission) grantLocked() {
	for len(a.queue) > 0 && a.queue[0].need <= a.avail {
		w := a.queue[0]
		a.queue = a.queue[1:]
		a.avail -= w.need
		w.granted = true
		close(w.ready)
	}
}

// stats returns (units in use, units total, queued requests).
func (a *admission) stats() (inUse, budget, queued int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.budget - a.avail, a.budget, len(a.queue)
}
