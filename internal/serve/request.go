package serve

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Request IDs are 16 hex characters: a per-process boot nonce in the
// high half (so ids from different server runs don't collide in logs)
// and an atomic sequence number in the low half (so ids within one run
// are unique by construction, with no per-request entropy draw).
var (
	reqBoot = bootNonce()
	reqSeq  atomic.Uint64
)

func bootNonce() uint32 {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// No entropy source: fall back to a fixed odd constant — ids stay
		// unique within the process, which is the property tests rely on.
		return 0x9e3779b9
	}
	return binary.BigEndian.Uint32(b[:])
}

func newRequestID() string {
	return fmt.Sprintf("%08x%08x", reqBoot, uint32(reqSeq.Add(1)))
}

// Phase is one contiguous slice of a request's wall time. Phases are
// stamped from a single monotonic clock sequence on the request path,
// so for every record the phase durations sum to WallNs exactly (up to
// the clamped solver split, see splitRun).
type Phase struct {
	Name  string `json:"name"`
	DurNs int64  `json:"dur_ns"`
}

// RequestRecord is one completed solve request as the flight recorder
// keeps it and /debug/requests serves it. Everything is filled in
// before the record is handed to the recorder; records are immutable
// after that, so handlers can serve shared pointers without copying.
type RequestRecord struct {
	ID    string    `json:"id"`
	Seq   uint64    `json:"seq"`
	Start time.Time `json:"start"`

	Status int    `json:"status"`
	WallNs int64  `json:"wall_ns"`
	Cache  string `json:"cache,omitempty"` // hit | miss | coalesced

	Graph       string `json:"graph,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Problem     string `json:"problem,omitempty"`
	Algo        string `json:"algo,omitempty"`
	Arch        string `json:"arch,omitempty"`
	Seed        uint64 `json:"seed,omitempty"`

	QueueNs int64       `json:"queue_ns"`
	Phases  []Phase     `json:"phases,omitempty"`
	Report  *reportInfo `json:"report,omitempty"`
	Error   string      `json:"error,omitempty"`

	// Trace is the request's span tree (singleflight leaders only, and
	// only while tracing is enabled). Omitted from the list view; the
	// detail view serves it, and ?format=chrome renders it for Perfetto.
	Trace *trace.Export `json:"trace,omitempty"`

	// Slow marks records pinned by the slowest-K set in list views.
	Slow bool `json:"slow,omitempty"`
}

// requestTrack accumulates a RequestRecord along the request path. The
// phase stamps all come from one clock sequence: phase(name) closes the
// interval since the previous stamp, so the intervals tile [start, last]
// with no gaps and no overlaps.
type requestTrack struct {
	id    string
	start time.Time
	last  time.Time
	rec   RequestRecord
}

// beginRequest mints the request id, echoes it on the response header,
// and starts the clock.
func (s *Service) beginRequest(w http.ResponseWriter) *requestTrack {
	now := time.Now()
	rt := &requestTrack{id: newRequestID(), start: now, last: now}
	rt.rec.ID = rt.id
	rt.rec.Start = now
	w.Header().Set("X-Symbreak-Request-Id", rt.id)
	return rt
}

// phase closes the interval since the previous stamp under name.
func (rt *requestTrack) phase(name string) {
	now := time.Now()
	rt.rec.Phases = append(rt.rec.Phases, Phase{Name: name, DurNs: now.Sub(rt.last).Nanoseconds()})
	rt.last = now
}

// splitRun closes the interval since the previous stamp as three phases
// using the solver's own report: decomp and solve as measured inside
// core, and the remainder (verification, report assembly) as verify.
// The remainder is clamped at zero so a clock-granularity mismatch can
// never produce a negative phase.
func (rt *requestTrack) splitRun(rep reportInfo) {
	now := time.Now()
	total := now.Sub(rt.last).Nanoseconds()
	residual := total - rep.DecompNs - rep.SolveNs
	if residual < 0 {
		residual = 0
	}
	rt.rec.Phases = append(rt.rec.Phases,
		Phase{Name: "decomp", DurNs: rep.DecompNs},
		Phase{Name: "solve", DurNs: rep.SolveNs},
		Phase{Name: "verify", DurNs: residual},
	)
	rt.last = now
}

// setCoords copies the solve coordinates onto the record once parsing
// has resolved them.
func (rt *requestTrack) setCoords(ps *parsedSolve) {
	rt.rec.Graph = ps.info.Name
	rt.rec.Fingerprint = ps.info.Fingerprint
	rt.rec.Problem = ps.problem.String()
	rt.rec.Algo = ps.strategy.String()
	rt.rec.Arch = ps.arch.String()
	rt.rec.Seed = ps.opt.Seed
}

// finish stamps the final write phase, seals the record, hands it to
// the flight recorder, and emits the per-request log line.
func (s *Service) finish(rt *requestTrack, status int) {
	rt.phase("write")
	rec := &rt.rec
	rec.Status = status
	rec.WallNs = rt.last.Sub(rt.start).Nanoseconds()
	s.rec.add(rec)
	if telemetry.Enabled() && s.cfg.Log != nil && rec.WallNs >= s.cfg.SlowLog.Nanoseconds() {
		s.emitLog(rec)
	}
}

// finishError writes an error response and seals the record with it.
func (s *Service) finishError(w http.ResponseWriter, rt *requestTrack, code int, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	rt.rec.Error = msg
	writeError(w, code, "%s", msg)
	s.finish(rt, code)
}

// emitLog writes the one structured line for rec. Key order is fixed so
// text lines diff cleanly and json lines are byte-deterministic for a
// given record.
func (s *Service) emitLog(rec *RequestRecord) {
	if !telemetry.Enabled() {
		return
	}
	kv := make([]any, 0, 24+2*len(rec.Phases))
	kv = append(kv,
		"ts", rec.Start,
		"id", rec.ID,
		"status", rec.Status,
		"wall", time.Duration(rec.WallNs),
	)
	if rec.Cache != "" {
		kv = append(kv, "cache", rec.Cache)
	}
	if rec.Graph != "" {
		kv = append(kv,
			"graph", rec.Graph,
			"fingerprint", rec.Fingerprint,
			"problem", rec.Problem,
			"algo", rec.Algo,
			"arch", rec.Arch,
			"seed", rec.Seed,
		)
	}
	kv = append(kv, "queue", time.Duration(rec.QueueNs))
	if rec.Report != nil {
		kv = append(kv, "rounds", rec.Report.Rounds)
	}
	for _, ph := range rec.Phases {
		kv = append(kv, "phase_"+ph.Name, time.Duration(ph.DurNs))
	}
	if rec.Error != "" {
		kv = append(kv, "err", rec.Error)
	}
	s.cfg.Log.Emit(kv...)
}
