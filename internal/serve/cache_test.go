package serve

import (
	"bytes"
	"strings"
	"testing"
)

func TestCacheGetPut(t *testing.T) {
	c := newLRUCache(1 << 20)
	if _, ok := c.get("a"); ok {
		t.Fatal("empty cache returned a hit")
	}
	body := []byte(`{"x":1}`)
	if ev := c.put("a", body); ev != 0 {
		t.Fatalf("put evicted %d entries from an empty cache", ev)
	}
	got, ok := c.get("a")
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("get = %q, %v; want %q, true", got, ok, body)
	}
	hits, misses, _, bytes_, entries := c.stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d; want 1, 1", hits, misses)
	}
	if entries != 1 || bytes_ != itemSize("a", body) {
		t.Fatalf("entries=%d bytes=%d; want 1, %d", entries, bytes_, itemSize("a", body))
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	body := []byte(strings.Repeat("x", 100))
	per := itemSize("k1", body) // all keys are 2 bytes, so all entries cost the same
	c := newLRUCache(3 * per)
	c.put("k1", body)
	c.put("k2", body)
	c.put("k3", body)
	// Touch k1 so k2 is the least recently used.
	if _, ok := c.get("k1"); !ok {
		t.Fatal("k1 missing before eviction")
	}
	if ev := c.put("k4", body); ev != 1 {
		t.Fatalf("put(k4) evicted %d entries; want 1", ev)
	}
	if _, ok := c.get("k2"); ok {
		t.Fatal("k2 survived eviction but was least recently used")
	}
	for _, k := range []string{"k1", "k3", "k4"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%s was evicted; want k2 evicted", k)
		}
	}
	_, _, evictions, _, entries := c.stats()
	if evictions != 1 || entries != 3 {
		t.Fatalf("evictions=%d entries=%d; want 1, 3", evictions, entries)
	}
}

func TestCacheOversizedEntrySkipped(t *testing.T) {
	c := newLRUCache(64)
	if ev := c.put("big", make([]byte, 1024)); ev != 0 {
		t.Fatalf("oversized put evicted %d entries; want 0", ev)
	}
	if _, ok := c.get("big"); ok {
		t.Fatal("entry larger than the whole budget was stored")
	}
	_, _, _, bytes_, entries := c.stats()
	if bytes_ != 0 || entries != 0 {
		t.Fatalf("bytes=%d entries=%d after oversized put; want 0, 0", bytes_, entries)
	}
}

func TestCacheRefreshExistingKey(t *testing.T) {
	c := newLRUCache(1 << 20)
	c.put("a", []byte("short"))
	longer := []byte(strings.Repeat("y", 200))
	c.put("a", longer)
	got, ok := c.get("a")
	if !ok || !bytes.Equal(got, longer) {
		t.Fatalf("refreshed entry = %q; want the new body", got)
	}
	_, _, _, bytes_, entries := c.stats()
	if entries != 1 {
		t.Fatalf("entries=%d after refresh; want 1", entries)
	}
	if want := itemSize("a", longer); bytes_ != want {
		t.Fatalf("bytes=%d after refresh; want %d", bytes_, want)
	}
}

func TestCacheNegativeBudgetDisables(t *testing.T) {
	c := newLRUCache(-1)
	c.put("a", []byte("x"))
	if _, ok := c.get("a"); ok {
		t.Fatal("negative-budget cache stored an entry")
	}
}
