package serve

import (
	"errors"
	"testing"
	"time"
)

func TestAdmissionFastPath(t *testing.T) {
	a := newAdmission(4, 8, time.Second)
	r1, err := a.acquire(3)
	if err != nil {
		t.Fatalf("acquire(3): %v", err)
	}
	r2, err := a.acquire(1)
	if err != nil {
		t.Fatalf("acquire(1): %v", err)
	}
	inUse, budget, queued := a.stats()
	if inUse != 4 || budget != 4 || queued != 0 {
		t.Fatalf("stats = %d/%d queued %d; want 4/4 queued 0", inUse, budget, queued)
	}
	r1()
	r2()
	if inUse, _, _ := a.stats(); inUse != 0 {
		t.Fatalf("inUse=%d after release; want 0", inUse)
	}
}

func TestAdmissionClampsCost(t *testing.T) {
	a := newAdmission(2, 8, time.Second)
	// A cost far beyond the budget is clamped to the budget, not rejected.
	release, err := a.acquire(1000)
	if err != nil {
		t.Fatalf("acquire(1000): %v", err)
	}
	if inUse, _, _ := a.stats(); inUse != 2 {
		t.Fatalf("inUse=%d; want the full budget 2", inUse)
	}
	release()
	// Non-positive costs are clamped up to 1.
	release, err = a.acquire(0)
	if err != nil {
		t.Fatalf("acquire(0): %v", err)
	}
	if inUse, _, _ := a.stats(); inUse != 1 {
		t.Fatalf("inUse=%d; want 1", inUse)
	}
	release()
}

func TestAdmissionQueueFull(t *testing.T) {
	a := newAdmission(1, 0, time.Second)
	release, err := a.acquire(1)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if _, err := a.acquire(1); !errors.Is(err, errQueueFull) {
		t.Fatalf("acquire with zero-length queue = %v; want errQueueFull", err)
	}
	release()
	release, err = a.acquire(1)
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	release()
}

func TestAdmissionQueueTimeout(t *testing.T) {
	a := newAdmission(1, 4, 30*time.Millisecond)
	release, err := a.acquire(1)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	start := time.Now()
	if _, err := a.acquire(1); !errors.Is(err, errQueueTimeout) {
		t.Fatalf("queued acquire = %v; want errQueueTimeout", err)
	}
	if waited := time.Since(start); waited < 20*time.Millisecond {
		t.Fatalf("timed out after %v; want ~30ms", waited)
	}
	if _, _, queued := a.stats(); queued != 0 {
		t.Fatalf("queued=%d after timeout; want the waiter removed", queued)
	}
	release()
}

func TestAdmissionFIFOWakeup(t *testing.T) {
	a := newAdmission(1, 4, 2*time.Second)
	release, err := a.acquire(1)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	got := make(chan error, 1)
	go func() {
		r, err := a.acquire(1)
		if err == nil {
			r()
		}
		got <- err
	}()
	// Wait for the goroutine to park in the queue, then release.
	for i := 0; ; i++ {
		if _, _, queued := a.stats(); queued == 1 {
			break
		}
		if i > 1000 {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	release()
	if err := <-got; err != nil {
		t.Fatalf("queued acquire after release = %v; want grant", err)
	}
}

// TestAdmissionTimeoutUnblocksFollowers pins the re-scan on timeout
// removal: when a big request parked at the queue head gives up, a small
// request behind it must be admitted immediately rather than waiting for
// the next release.
func TestAdmissionTimeoutUnblocksFollowers(t *testing.T) {
	a := newAdmission(2, 4, 250*time.Millisecond)
	// Hold 1 unit so avail=1: the big waiter (needs 2) can never be
	// granted, the small one (needs 1) fits as soon as the big one leaves.
	release, err := a.acquire(1)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	bigErr := make(chan error, 1)
	go func() {
		_, err := a.acquire(2)
		bigErr <- err
	}()
	for i := 0; ; i++ {
		if _, _, queued := a.stats(); queued == 1 {
			break
		}
		if i > 1000 {
			t.Fatal("big waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// Start the small waiter well after the big one so its own deadline is
	// comfortably behind the head's: a grant, not a timeout, is then the
	// only way it returns promptly.
	time.Sleep(100 * time.Millisecond)
	smallDone := make(chan error, 1)
	smallStart := time.Now()
	go func() {
		r, err := a.acquire(1)
		if err == nil {
			r()
		}
		smallDone <- err
	}()
	if err := <-bigErr; !errors.Is(err, errQueueTimeout) {
		t.Fatalf("big acquire = %v; want errQueueTimeout", err)
	}
	if err := <-smallDone; err != nil {
		t.Fatalf("small acquire = %v; want grant after head removal", err)
	}
	// The small waiter started well before the big one's deadline, so a
	// grant (rather than its own later timeout) proves the head-removal
	// re-scan fired.
	if waited := time.Since(smallStart); waited > 2*time.Second {
		t.Fatalf("small waiter took %v; should be admitted at head timeout", waited)
	}
	release()
}
