package serve

import (
	"sync"
	"sync/atomic"
)

// flightGroup is a minimal singleflight: concurrent do calls with the same
// key share the first call's result. Unlike a cache, nothing is retained
// after the last waiter returns — the result lives on in the lruCache,
// which the leader populates.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall

	// dups counts followers that joined an in-flight leader, across all
	// keys — the live half of symbreak_serve_coalesced_total, and the
	// synchronization point the coalescing test polls.
	dups atomic.Int64
}

type flightCall struct {
	done chan struct{}
	val  *solveOutcome
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: map[string]*flightCall{}}
}

// do runs fn once per key among concurrent callers. The leader runs fn;
// followers block until it finishes and share its result. shared reports
// whether this caller was a follower.
func (g *flightGroup) do(key string, fn func() (*solveOutcome, error)) (val *solveOutcome, err error, shared bool) {
	g.mu.Lock()
	if c, inflight := g.calls[key]; inflight {
		g.mu.Unlock()
		g.dups.Add(1)
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}
