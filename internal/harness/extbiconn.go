// ExtBiconn: the beyond-the-paper extension comparing bridge-based
// decomposition against full biconnected-component decomposition.

package harness

import (
	"fmt"

	"repro/internal/coloring"
	"repro/internal/dataset"
	"repro/internal/decomp"
	"repro/internal/matching"
	"repro/internal/mis"
)

// ExtBiconn measures the Hochbaum-style biconnected-component decomposition
// (this reproduction's extension; the paper's related work motivates it but
// never measures it) against each problem's baseline and the paper's
// Table I winner.
func ExtBiconn(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Extension: BICONN decomposition vs baseline vs Table I winner (CPU)",
		Header: []string{"graph", "problem", "baseline", "BICONN", "Table-I winner"},
	}
	for _, spec := range cfg.specs() {
		g := dataset.Load(spec, cfg.Scale, cfg.Seed)
		mm := func() []string {
			base := timeRun(cfg, func() { matching.GM(g) })
			bic := timeRun(cfg, func() { matching.MMBiconn(g, matching.GMSolver()) })
			win := timeRun(cfg, func() {
				matching.MMRand(g, spec.MMRandPartsCPU, cfg.Seed, matching.GMSolver())
			})
			return []string{spec.Name, "MM", fmtDur(base), fmtDur(bic), fmtDur(win)}
		}
		col := func() []string {
			eng := coloring.NewVB()
			base := timeRun(cfg, func() { eng.Fresh(g) })
			bic := timeRun(cfg, func() { coloring.ColorBiconn(g, eng) })
			win := timeRun(cfg, func() { coloring.ColorDegk(g, 2, eng) })
			return []string{spec.Name, "COLOR", fmtDur(base), fmtDur(bic), fmtDur(win)}
		}
		ms := func() []string {
			base := timeRun(cfg, func() { mis.Luby(g, cfg.Seed) })
			bic := timeRun(cfg, func() { mis.MISBiconn(g, mis.LubySolver(cfg.Seed)) })
			win := timeRun(cfg, func() { mis.MISDeg2(g, mis.LubySolver(cfg.Seed)) })
			return []string{spec.Name, "MIS", fmtDur(base), fmtDur(bic), fmtDur(win)}
		}
		t.Rows = append(t.Rows, mm(), col(), ms())
	}
	t.Notes = append(t.Notes,
		"BICONN pays a BFS + union-find decomposition (like BRIDGE); expect it competitive only where articulation points are plentiful")
	return t
}

// Remark1 reproduces the paper's Remark 1: "the current best practical
// implementations [of MM/COLOR/MIS] in most cases finish faster than the
// time it takes to decompose the graph using PMETIS. For this reason, we
// exclude PMETIS from our study." The multilevel partitioner stands in for
// PMETIS; the row compares its partitioning time alone against each
// baseline's full solve.
func Remark1(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Remark 1: multilevel (METIS stand-in) partition time vs baseline solves",
		Header: []string{"graph", "multilevel(k=10)", "GM (MM)", "VB (COLOR)", "LubyMIS", "cut/cross vs RAND"},
	}
	for _, spec := range cfg.specs() {
		g := dataset.Load(spec, cfg.Scale, cfg.Seed)
		ml := decomp.Multilevel(g, 10, cfg.Seed)
		gm := timeRun(cfg, func() { matching.GM(g) })
		vb := timeRun(cfg, func() { coloring.NewVB().Fresh(g) })
		luby := timeRun(cfg, func() { mis.Luby(g, cfg.Seed) })
		rnd := decomp.Rand(g, 10, cfg.Seed)
		t.Rows = append(t.Rows, []string{
			spec.Name, fmtDur(ml.Elapsed), fmtDur(gm), fmtDur(vb), fmtDur(luby),
			fmt.Sprintf("%d vs %d", ml.CrossEdges(), rnd.CrossEdges()),
		})
	}
	t.Notes = append(t.Notes,
		"Remark 1 holds when the multilevel column exceeds the solver columns; its far smaller cut shows what the quality buys")
	return t
}
