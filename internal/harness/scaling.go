package harness

import (
	"fmt"
	"runtime"

	"repro/internal/dataset"
	"repro/internal/matching"
	"repro/internal/mis"
	"repro/internal/par"
)

// Scaling sweeps the worker count for the baseline solvers — the standard
// strong-scaling check for a parallel-algorithms repository. (The paper
// fixes 80 threads on its 20-core testbed and never varies them; this
// experiment is an extension. On a single-core host every column is
// equal by construction.)
func Scaling(cfg Config) *Table {
	cfg = cfg.withDefaults()
	counts := []int{1, 2, 4, 8}
	maxW := runtime.GOMAXPROCS(0)
	t := &Table{Title: fmt.Sprintf("Scaling: baseline solve time vs workers (host has %d)", maxW)}
	t.Header = []string{"graph", "algorithm"}
	for _, w := range counts {
		t.Header = append(t.Header, fmt.Sprintf("w=%d", w))
	}
	defer par.SetWorkers(0)
	for _, spec := range cfg.specs() {
		g := dataset.Load(spec, cfg.Scale, cfg.Seed)
		gmRow := []string{spec.Name, "GM"}
		lubyRow := []string{spec.Name, "LubyMIS"}
		for _, w := range counts {
			par.SetWorkers(w)
			gmRow = append(gmRow, fmtDur(timeRun(cfg, func() { matching.GM(g) })))
			lubyRow = append(lubyRow, fmtDur(timeRun(cfg, func() { mis.Luby(g, cfg.Seed) })))
		}
		t.Rows = append(t.Rows, gmRow, lubyRow)
	}
	return t
}
