// Scaling: strong-scaling runs of the Table I winners across worker
// counts, reported as speedup over the single-worker run.

package harness

import (
	"fmt"
	"runtime"

	"repro/internal/dataset"
	"repro/internal/matching"
	"repro/internal/mis"
	"repro/internal/par"
)

// Scaling sweeps the worker count for the baseline solvers — the standard
// strong-scaling check for a parallel-algorithms repository. (The paper
// fixes 80 threads on its 20-core testbed and never varies them; this
// experiment is an extension. On a single-core host every column is
// equal by construction.)
//
// Runtime counters are collected across the sweep: the note under the
// table reports how many loop dispatches the persistent pool served, how
// many chunks its workers picked up off the submitting goroutine
// (steals), and how many goroutine launches a spawn-per-call runtime
// would have paid for the same work.
func Scaling(cfg Config) *Table {
	cfg = cfg.withDefaults()
	counts := []int{1, 2, 4, 8}
	maxW := runtime.GOMAXPROCS(0)
	t := &Table{Title: fmt.Sprintf("Scaling: baseline solve time vs workers (host has %d)", maxW)}
	t.Header = []string{"graph", "algorithm"}
	for _, w := range counts {
		t.Header = append(t.Header, fmt.Sprintf("w=%d", w))
	}
	defer par.SetWorkers(0)
	statsWereOn := par.StatsEnabled()
	par.EnableStats(true)
	par.ResetStats()
	defer par.EnableStats(statsWereOn)
	for _, spec := range cfg.specs() {
		g := dataset.Load(spec, cfg.Scale, cfg.Seed)
		gmRow := []string{spec.Name, "GM"}
		lubyRow := []string{spec.Name, "LubyMIS"}
		for _, w := range counts {
			par.SetWorkers(w)
			gmRow = append(gmRow, fmtDur(timeRun(cfg, func() { matching.GM(g) })))
			lubyRow = append(lubyRow, fmtDur(timeRun(cfg, func() { mis.Luby(g, cfg.Seed) })))
		}
		t.Rows = append(t.Rows, gmRow, lubyRow)
	}
	t.Notes = append(t.Notes, RuntimeStatsNote())
	return t
}

// RuntimeStatsNote renders the current par runtime counters as one table
// note line.
func RuntimeStatsNote() string {
	st := par.SnapshotStats()
	return fmt.Sprintf(
		"par runtime: %d pooled dispatches, %d inline loops, %d chunks (%d stolen by pool workers), %d goroutine spawns avoided",
		st.Tasks, st.SeqLoops, st.Chunks, st.Steals, st.SpawnsAvoided)
}
