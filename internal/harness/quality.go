// Quality: solution-quality comparison against sequential references —
// matching size, color count, and independent-set size ratios.

package harness

import (
	"fmt"

	"repro/internal/coloring"
	"repro/internal/dataset"
	"repro/internal/matching"
	"repro/internal/mis"
	"repro/internal/seq"
)

// Quality reports solution quality across methods: matching cardinality,
// color counts, and MIS sizes for the sequential greedy reference, the
// parallel baseline, and the paper's Table I winner. It sharpens the
// paper's §IV-D color-count discussion with a strong sequential anchor
// (smallest-degree-last greedy).
func Quality(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		Title: "Solution quality: sequential greedy | parallel baseline | Table-I winner",
		Header: []string{"graph",
			"|M| seq", "|M| GM", "|M| MM-Rand",
			"colors seq", "colors VB", "colors Degk",
			"|MIS| seq", "|MIS| Luby", "|MIS| Deg2"},
	}
	for _, spec := range cfg.specs() {
		g := dataset.Load(spec, cfg.Scale, cfg.Seed)
		mSeq := seq.Matching(g).Cardinality()
		mGM, _ := matching.GM(g)
		mRand, _ := matching.MMRand(g, spec.MMRandPartsCPU, cfg.Seed, matching.GMSolver())
		cSeq := seq.Color(g).NumColors()
		cVB, _ := coloring.NewVB().Fresh(g)
		cDegk, _ := coloring.ColorDegk(g, 2, coloring.NewVB())
		sSeq := seq.MIS(g).Size()
		sLuby, _ := mis.Luby(g, cfg.Seed)
		sDeg2, _ := mis.MISDeg2(g, mis.LubySolver(cfg.Seed))
		t.Rows = append(t.Rows, []string{
			spec.Name,
			fmt.Sprintf("%d", mSeq), fmt.Sprintf("%d", mGM.Cardinality()), fmt.Sprintf("%d", mRand.Cardinality()),
			fmt.Sprintf("%d", cSeq), fmt.Sprintf("%d", cVB.NumColors()), fmt.Sprintf("%d", cDegk.NumColors()),
			fmt.Sprintf("%d", sSeq), fmt.Sprintf("%d", sLuby.Size()), fmt.Sprintf("%d", sDeg2.Size()),
		})
	}
	t.Notes = append(t.Notes,
		"paper §IV-D: decomposition colorings stay within a few percent of the baseline palette; matching/MIS sizes should agree within a few percent too")
	return t
}
