// Baselines: the paper's "comparison against prior published results"
// tables — our GM/VB/LubyMIS/LMAX/EB against the figures reported for the
// original implementations, normalized per edge.

package harness

import (
	"fmt"
	"time"

	"repro/internal/bsp"
	"repro/internal/coloring"
	"repro/internal/dataset"
	"repro/internal/matching"
	"repro/internal/mis"
)

// Baselines compares the paper's measured baselines against the related
// algorithms its Sections III-A/IV-A/V-A survey (Israeli–Itai matching,
// Jones–Plassmann coloring under the Hasenplaugh orderings, greedy MIS),
// with the paper's winning decomposition alongside. This is an extension
// experiment: it answers "was the baseline choice fair?" for each problem.
func Baselines(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	return []*Table{
		matchingBaselines(cfg),
		coloringBaselines(cfg),
		misBaselines(cfg),
	}
}

// timeRun reports the average wall time of run over cfg.Repeats calls.
func timeRun(cfg Config, run func()) time.Duration {
	var total time.Duration
	for r := 0; r < cfg.Repeats; r++ {
		start := time.Now()
		run()
		total += time.Since(start)
	}
	return total / time.Duration(cfg.Repeats)
}

func matchingBaselines(cfg Config) *Table {
	t := &Table{
		Title:  "Baselines (MM): GM vs GreedyRandom[6] vs Israeli–Itai vs LMAX vs MM-Rand",
		Header: []string{"graph", "GM", "GreedyRandom[6]", "IsraeliItai", "LMAX(sim)", "MM-Rand", "|M| GM", "|M| II"},
	}
	for _, spec := range cfg.specs() {
		g := dataset.Load(spec, cfg.Scale, cfg.Seed)
		var cardGM, cardII int64
		gm := timeRun(cfg, func() {
			m, _ := matching.GM(g)
			cardGM = m.Cardinality()
		})
		gr := timeRun(cfg, func() { matching.GreedyRandom(g, cfg.Seed) })
		ii := timeRun(cfg, func() {
			m, _ := matching.IsraeliItai(g, cfg.Seed)
			cardII = m.Cardinality()
		})
		machine := bsp.New()
		lmax := timeRun(cfg, func() {
			machine.ResetStats()
			matching.LMAX(g, machine, cfg.Seed)
		})
		mmrand := timeRun(cfg, func() {
			matching.MMRand(g, spec.MMRandPartsCPU, cfg.Seed, matching.GMSolver())
		})
		t.Rows = append(t.Rows, []string{
			spec.Name, fmtDur(gm), fmtDur(gr), fmtDur(ii), fmtDur(lmax), fmtDur(mmrand),
			fmt.Sprintf("%d", cardGM), fmt.Sprintf("%d", cardII),
		})
	}
	t.Notes = append(t.Notes,
		"GreedyRandom is [6] without the paper's lowest-id modification; it and Israeli–Itai have no vain tendency — where they beat GM by orders of magnitude, the ordering is the cause")
	return t
}

func coloringBaselines(cfg Config) *Table {
	t := &Table{
		Title:  "Baselines (COLOR): VB vs JP orderings vs COLOR-Degk (time | colors)",
		Header: []string{"graph", "VB", "JP-R", "JP-LF", "JP-SL", "COLOR-Degk"},
	}
	engines := []coloring.Engine{
		coloring.NewVB(),
		coloring.NewJP(coloring.OrderRandom, cfg.Seed),
		coloring.NewJP(coloring.OrderLargestFirst, cfg.Seed),
		coloring.NewJP(coloring.OrderSmallestLast, cfg.Seed),
	}
	for _, spec := range cfg.specs() {
		g := dataset.Load(spec, cfg.Scale, cfg.Seed)
		row := []string{spec.Name}
		for _, eng := range engines {
			var colors int32
			d := timeRun(cfg, func() {
				c, _ := eng.Fresh(g)
				colors = c.NumColors()
			})
			row = append(row, fmt.Sprintf("%s|%dc", fmtDur(d), colors))
		}
		var colors int32
		d := timeRun(cfg, func() {
			c, _ := coloring.ColorDegk(g, 2, coloring.NewVB())
			colors = c.NumColors()
		})
		row = append(row, fmt.Sprintf("%s|%dc", fmtDur(d), colors))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"JP never conflicts but pays DAG depth; LF/SL trade rounds for fewer colors (Hasenplaugh et al.)")
	return t
}

func misBaselines(cfg Config) *Table {
	t := &Table{
		Title:  "Baselines (MIS): LubyMIS vs Greedy vs MIS-Deg2 (time | size)",
		Header: []string{"graph", "LubyMIS", "Greedy", "MIS-Deg2"},
	}
	for _, spec := range cfg.specs() {
		g := dataset.Load(spec, cfg.Scale, cfg.Seed)
		row := []string{spec.Name}
		for _, run := range []func() *mis.IndepSet{
			func() *mis.IndepSet { s, _ := mis.Luby(g, cfg.Seed); return s },
			func() *mis.IndepSet { s, _ := mis.Greedy(g, cfg.Seed); return s },
			func() *mis.IndepSet { s, _ := mis.MISDeg2(g, mis.LubySolver(cfg.Seed)); return s },
		} {
			var size int64
			d := timeRun(cfg, func() { size = run().Size() })
			row = append(row, fmt.Sprintf("%s|%d", fmtDur(d), size))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"Greedy (Blelloch) avoids Luby's per-round degree recomputation; MIS-Deg2 still wins on high-%DEG2 instances")
	return t
}
