package harness

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
)

// tiny restricts experiments to three representative instances at a very
// small scale so the full harness logic runs in test time.
func tiny() Config {
	return Config{
		Scale:   0.03,
		Seed:    1,
		Repeats: 1,
		Graphs:  []string{"lp1", "rgg-n-2-23-s0", "webbase-1M"},
		Verify:  true,
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale != 1.0 || c.Repeats != 1 || c.Seed != 1 {
		t.Fatalf("defaults = %+v", c)
	}
	if got := (Config{}).specs(); len(got) != 12 {
		t.Fatalf("default specs = %d", len(got))
	}
	if got := tiny().specs(); len(got) != 3 {
		t.Fatalf("restricted specs = %d", len(got))
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tb := &Table{
		Title:  "demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"x", "1"}, {"longer", "2"}},
		Notes:  []string{"note here"},
	}
	out := tb.Render()
	for _, want := range []string{"== demo ==", "longer", "note: note here"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "a,b\n") || !strings.Contains(csv, "longer,2") {
		t.Fatalf("CSV wrong:\n%s", csv)
	}
}

func TestRunGridShapeAndSpeedups(t *testing.T) {
	defer dataset.ClearCache()
	cfg := tiny()
	grid := RunGrid(cfg, core.ProblemMIS, core.ArchCPU)
	if len(grid.Graphs) != 3 {
		t.Fatalf("grid has %d graphs", len(grid.Graphs))
	}
	for _, name := range grid.Graphs {
		row := grid.Cells[name]
		if len(row) != 5 {
			t.Fatalf("%s: %d cells", name, len(row))
		}
		for _, c := range row {
			if c.Time <= 0 {
				t.Fatalf("%s/%s: zero time", name, c.Strategy)
			}
		}
		if s := grid.Speedup(name, colDegk); s <= 0 {
			t.Fatalf("%s: speedup %f", name, s)
		}
		if s := grid.Speedup(name, colMPX); s <= 0 {
			t.Fatalf("%s: MPX speedup %f", name, s)
		}
	}
	// Baseline column speedup is identically 1.
	for _, name := range grid.Graphs {
		if s := grid.Speedup(name, colBaseline); s != 1 {
			t.Fatalf("baseline speedup %f", s)
		}
	}
	// AvgSpeedup with everything excluded is 0.
	if grid.AvgSpeedup(colDegk, grid.Graphs...) != 0 {
		t.Fatal("fully-excluded AvgSpeedup not 0")
	}
}

func TestTable2Runs(t *testing.T) {
	defer dataset.ClearCache()
	tb := Table2(tiny())
	if len(tb.Rows) != 3 {
		t.Fatalf("Table2 rows = %d", len(tb.Rows))
	}
	if !strings.Contains(tb.Render(), "lp1") {
		t.Fatal("Table2 missing instance")
	}
}

func TestFig2Runs(t *testing.T) {
	defer dataset.ClearCache()
	tb := Fig2(tiny())
	if len(tb.Rows) != 3 || len(tb.Header) != 7 {
		t.Fatalf("Fig2 shape %dx%d", len(tb.Rows), len(tb.Header))
	}
}

func TestFiguresRunBothArchs(t *testing.T) {
	defer dataset.ClearCache()
	cfg := tiny()
	for _, arch := range []core.Arch{core.ArchCPU, core.ArchGPU} {
		for _, f := range []func(Config, core.Arch) (*Table, *Grid){Fig3, Fig4, Fig5} {
			tb, grid := f(cfg, arch)
			if len(tb.Rows) != 3 {
				t.Fatalf("figure rows = %d", len(tb.Rows))
			}
			if len(grid.Cells) != 3 {
				t.Fatalf("grid cells = %d", len(grid.Cells))
			}
		}
	}
}

func TestColorCountsRuns(t *testing.T) {
	defer dataset.ClearCache()
	tb := ColorCounts(tiny())
	if len(tb.Rows) != 2 {
		t.Fatalf("ColorCounts rows = %d", len(tb.Rows))
	}
}

func TestAblationsRun(t *testing.T) {
	defer dataset.ClearCache()
	cfg := tiny()
	cfg.Graphs = []string{"lp1"}
	if tb := AblationParts(cfg); len(tb.Rows) != 2 {
		t.Fatalf("AblationParts rows = %d", len(tb.Rows))
	}
	if tb := AblationDegk(cfg); len(tb.Rows) != 2 {
		t.Fatalf("AblationDegk rows = %d", len(tb.Rows))
	}
	if tb := AblationOrder(cfg); len(tb.Rows) != 2 {
		t.Fatalf("AblationOrder rows = %d", len(tb.Rows))
	}
	if tb := DecompStats(cfg); len(tb.Rows) != 1 {
		t.Fatalf("DecompStats rows = %d", len(tb.Rows))
	}
}

func TestFmtDur(t *testing.T) {
	cases := map[time.Duration]string{
		1500 * time.Millisecond: "1.50s",
		2 * time.Millisecond:    "2.00ms",
		750 * time.Microsecond:  "750µs",
	}
	for d, want := range cases {
		if got := fmtDur(d); got != want {
			t.Fatalf("fmtDur(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestMMProgressAndRelabel(t *testing.T) {
	defer dataset.ClearCache()
	cfg := tiny()
	cfg.Graphs = []string{"rgg-n-2-23-s0"}
	tb := MMProgress(cfg)
	if len(tb.Rows) != 2 {
		t.Fatalf("MMProgress rows = %d", len(tb.Rows))
	}
	// The G_IS row must reach 100%% in no more rounds than plain GM.
	parse := func(s string) int {
		var v int
		if _, err := fmtSscanf(s, &v); err != nil {
			t.Fatal(err)
		}
		return v
	}
	gm100 := parse(tb.Rows[0][5])
	rand100 := parse(tb.Rows[1][5])
	if rand100 > gm100 {
		t.Fatalf("G_IS needed %d rounds, GM %d", rand100, gm100)
	}
	rl := RelabelAblation(cfg)
	if len(rl.Rows) != 1 {
		t.Fatalf("RelabelAblation rows = %d", len(rl.Rows))
	}
	// Relabeling must collapse GM's round count on the spatially ordered
	// rgg instance.
	orig := parse(rl.Rows[0][1])
	shuf := parse(rl.Rows[0][2])
	if shuf >= orig {
		t.Fatalf("relabeled GM rounds %d not below original %d", shuf, orig)
	}
}

func fmtSscanf(s string, v *int) (int, error) {
	return fmt.Sscanf(s, "%d", v)
}

func TestBaselinesAndBFSAblation(t *testing.T) {
	defer dataset.ClearCache()
	cfg := tiny()
	cfg.Graphs = []string{"webbase-1M"}
	tabs := Baselines(cfg)
	if len(tabs) != 3 {
		t.Fatalf("Baselines returned %d tables", len(tabs))
	}
	for _, tb := range tabs {
		if len(tb.Rows) != 1 {
			t.Fatalf("%s: %d rows", tb.Title, len(tb.Rows))
		}
	}
	bf := BFSAblation(cfg)
	if len(bf.Rows) != 1 || len(bf.Header) != 5 {
		t.Fatalf("BFSAblation shape %dx%d", len(bf.Rows), len(bf.Header))
	}
}

func TestExtBiconnRuns(t *testing.T) {
	defer dataset.ClearCache()
	cfg := tiny()
	cfg.Graphs = []string{"webbase-1M"}
	tb := ExtBiconn(cfg)
	if len(tb.Rows) != 3 {
		t.Fatalf("ExtBiconn rows = %d", len(tb.Rows))
	}
}

func TestQualityAndRemark1Run(t *testing.T) {
	defer dataset.ClearCache()
	cfg := tiny()
	cfg.Graphs = []string{"lp1"}
	q := Quality(cfg)
	if len(q.Rows) != 1 || len(q.Header) != 10 {
		t.Fatalf("Quality shape %dx%d", len(q.Rows), len(q.Header))
	}
	r := Remark1(cfg)
	if len(r.Rows) != 1 {
		t.Fatalf("Remark1 rows = %d", len(r.Rows))
	}
}

func TestScalingAndMarkdown(t *testing.T) {
	defer dataset.ClearCache()
	cfg := tiny()
	cfg.Graphs = []string{"lp1"}
	tb := Scaling(cfg)
	if len(tb.Rows) != 2 || len(tb.Header) != 6 {
		t.Fatalf("Scaling shape %dx%d", len(tb.Rows), len(tb.Header))
	}
	md := tb.Markdown()
	if !strings.Contains(md, "### Scaling") || !strings.Contains(md, "| lp1 |") {
		t.Fatalf("Markdown output wrong:\n%s", md)
	}
}

func TestBarScaling(t *testing.T) {
	if bar(0, time.Second) != "" || bar(time.Second, 0) != "" {
		t.Fatal("degenerate bars must be empty")
	}
	full := bar(time.Second, time.Second)
	half := bar(500*time.Millisecond, time.Second)
	tiny := bar(time.Microsecond, time.Second)
	if len(full) <= len(half) || len(half) <= len(tiny) {
		t.Fatalf("bar lengths not monotone: %d/%d/%d", len(full), len(half), len(tiny))
	}
}
