// Package harness runs the paper's experiment grid and formats each table
// and figure of the evaluation as text. Every experiment id in DESIGN.md §4
// has a runner here; cmd/benchall exposes them on the command line and
// bench_test.go wraps them as testing.B benchmarks.
//
// Timing convention: CPU experiments report wall-clock (decomposition +
// solve), exactly what the paper's Figures 3–5 plot. GPU experiments report
// decomposition wall-clock plus the virtual device's simulated time
// (kernel time + per-launch overhead) — see internal/bsp.
package harness

import (
	"cmp"
	"fmt"
	"slices"
	"strings"
	"time"
	"unicode/utf8"

	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Config controls an experiment run.
type Config struct {
	// Scale is the dataset scale factor (1.0 = default bench size).
	Scale float64
	// Seed drives dataset generation and the randomized algorithms.
	Seed uint64
	// Repeats is the number of timed runs per cell; the median is
	// reported. Minimum 1.
	Repeats int
	// Graphs restricts the instances (paper names); empty = all twelve.
	Graphs []string
	// Verify re-checks every solution (costs an extra O(m) pass per cell).
	Verify bool
}

// withDefaults normalizes a Config.
func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.Repeats < 1 {
		c.Repeats = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// specs resolves the instance list.
func (c Config) specs() []dataset.Spec {
	if len(c.Graphs) == 0 {
		return dataset.All()
	}
	var out []dataset.Spec
	for _, name := range c.Graphs {
		if s, ok := dataset.Get(name); ok {
			out = append(out, s)
		}
	}
	return out
}

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as aligned plain text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if w := utf8.RuneCountInString(cell); i < len(widths) && w > widths[i] {
				widths[i] = w
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - utf8.RuneCountInString(cell); pad > 0 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteString("\n")
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown formats the table as a GitHub-flavored Markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n_%s_\n", n)
	}
	return b.String()
}

// CSV formats the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteString("\n")
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteString("\n")
	}
	return b.String()
}

// Cell is one measured grid point.
type Cell struct {
	Graph    string
	Strategy string
	Time     time.Duration
	Rounds   int
	// NumColors is set for coloring cells.
	NumColors int32
}

// strategyList is the grid column order: the paper's figures (baseline +
// its three decompositions) plus the MPX extension as a fifth column.
var strategyList = []core.Strategy{
	core.StrategyBaseline, core.StrategyBridge, core.StrategyRand, core.StrategyDegk,
	core.StrategyMPX,
}

// measure runs one (graph, problem, strategy, arch) cell Repeats times and
// returns the median-time cell.
func measure(cfg Config, g *graph.Graph, spec dataset.Spec, p core.Problem, s core.Strategy, arch core.Arch) Cell {
	opt := core.Options{Strategy: s, Arch: arch, Seed: cfg.Seed, DegK: 2}
	if arch == core.ArchGPU {
		opt.RandParts = spec.MMRandPartsGPU
		opt.Machine = bsp.New()
	} else {
		opt.RandParts = spec.MMRandPartsCPU
	}
	if p != core.ProblemMM {
		// The paper's COLOR/MIS RAND experiments use the architecture
		// default partition counts rather than the per-instance MM tuning.
		if arch == core.ArchGPU {
			opt.RandParts = 4
		} else {
			opt.RandParts = 10
		}
	}

	runs := make([]Cell, 0, cfg.Repeats)
	for r := 0; r < cfg.Repeats; r++ {
		sp := trace.Beginf("cell %s/%s/%s/%s", spec.Name, p, s, arch)
		start := time.Now()
		res, err := core.Solve(g, p, opt)
		wall := time.Since(start)
		if err != nil {
			sp.End()
			panic(fmt.Sprintf("harness: %s/%v/%v/%v: %v", spec.Name, p, s, arch, err))
		}
		if trace.Enabled() {
			sp.Add("rounds", int64(res.Report.Rounds))
			sp.Add("decomp_ns", int64(res.Report.Decomp))
			sp.Add("solve_ns", int64(res.Report.Solve))
			if arch == core.ArchGPU {
				sp.Add("sim_ns", int64(res.Report.GPUStats.SimTime))
			}
		}
		sp.End()
		if cfg.Verify {
			if err := core.Verify(g, res); err != nil {
				panic(fmt.Sprintf("harness: verification failed on %s/%v/%v/%v: %v",
					spec.Name, p, s, arch, err))
			}
		}
		t := wall
		if arch == core.ArchGPU {
			// Device time: decomposition on the host + simulated kernels.
			t = res.Report.Decomp + res.Report.GPUStats.SimTime
		}
		if telemetry.Enabled() {
			publishCell(p.String(), res.Report.StrategyName, arch.String(),
				spec.Name, res.Report.Decomp, res.Report.Solve, t)
		}
		c := Cell{Graph: spec.Name, Strategy: res.Report.StrategyName,
			Time: t, Rounds: res.Report.Rounds}
		if res.Coloring != nil {
			c.NumColors = res.Coloring.NumColors()
		}
		runs = append(runs, c)
	}
	slices.SortFunc(runs, func(a, b Cell) int { return cmp.Compare(a.Time, b.Time) })
	return runs[len(runs)/2]
}

// Grid holds measured cells for one problem/arch over the instance list:
// Cells[graph][strategy column index].
type Grid struct {
	Problem core.Problem
	Arch    core.Arch
	Graphs  []string
	Cells   map[string][]Cell
}

// RunGrid measures baseline + the four decompositions for a problem on an
// architecture across the configured instances.
func RunGrid(cfg Config, p core.Problem, arch core.Arch) *Grid {
	cfg = cfg.withDefaults()
	grid := &Grid{Problem: p, Arch: arch, Cells: map[string][]Cell{}}
	for _, spec := range cfg.specs() {
		g := dataset.Load(spec, cfg.Scale, cfg.Seed)
		row := make([]Cell, 0, len(strategyList))
		for _, s := range strategyList {
			row = append(row, measure(cfg, g, spec, p, s, arch))
		}
		grid.Graphs = append(grid.Graphs, spec.Name)
		grid.Cells[spec.Name] = row
	}
	return grid
}

// Speedup reports baselineTime / strategyTime for a strategy column
// (1 = baseline column 0).
func (g *Grid) Speedup(graphName string, col int) float64 {
	row := g.Cells[graphName]
	if row == nil || row[col].Time == 0 {
		return 0
	}
	return float64(row[0].Time) / float64(row[col].Time)
}

// AvgSpeedup averages Speedup over the grid's graphs, skipping any named in
// exclude — the paper's footnotes exclude outlier instances from the
// averages (rgg for MM, c-73/lp1 for GPU MIS).
func (g *Grid) AvgSpeedup(col int, exclude ...string) float64 {
	skip := map[string]bool{}
	for _, e := range exclude {
		skip[e] = true
	}
	var sum float64
	var n int
	for _, name := range g.Graphs {
		if skip[name] {
			continue
		}
		sum += g.Speedup(name, col)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// fmtDur renders a duration compactly for table cells.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// figure renders a grid as the paper's figures do: absolute times per
// strategy with the highlighted strategy's speedup "atop the bars", plus a
// log-scale text bar per row so the output reads like the published bar
// charts.
func figure(g *Grid, title string, highlightCol int, colNames []string) *Table {
	t := &Table{Title: title}
	t.Header = append([]string{"graph"}, colNames...)
	t.Header = append(t.Header, "speedup("+colNames[highlightCol]+")", "baseline vs "+colNames[highlightCol])
	// Scale bars against the grid's slowest cell.
	var maxT time.Duration
	for _, name := range g.Graphs {
		for c := range colNames {
			if d := g.Cells[name][c].Time; d > maxT {
				maxT = d
			}
		}
	}
	for _, name := range g.Graphs {
		row := []string{name}
		for c := range colNames {
			row = append(row, fmtDur(g.Cells[name][c].Time))
		}
		row = append(row, fmt.Sprintf("%.2fx", g.Speedup(name, highlightCol)))
		row = append(row, bar(g.Cells[name][colBaseline].Time, maxT)+" | "+
			bar(g.Cells[name][highlightCol].Time, maxT))
		t.Rows = append(t.Rows, row)
	}
	return t
}

// bar renders a duration as a log-scaled text bar (1 char per ~factor of
// two below the maximum, up to 16).
func bar(d, max time.Duration) string {
	if d <= 0 || max <= 0 {
		return ""
	}
	const width = 16
	n := width
	for v := d; v < max && n > 1; v *= 2 {
		n--
	}
	return strings.Repeat("█", n)
}
