// RoundsPhases: the observability dogfood experiment — phase/round tables
// for the Table I winners, produced from the internal/trace span trees.

package harness

import (
	"fmt"
	"strings"

	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/trace"
)

// RoundsPhases measures, through the trace layer, how the paper's Table I
// winner for each problem spends its time and rounds: the decomposition's
// share of the end-to-end wall clock and the per-phase round counts that
// Report.Rounds only exposes as a total. This is the quantitative form of
// the paper's core claim — a cheap decomposition trades a few preprocessing
// milliseconds for a large cut in iteration count — and the round split per
// phase is the same quantity the MPC symmetry-breaking literature bounds
// analytically (Behnezhad et al., arXiv:1807.06701; Barenboim et al.,
// arXiv:1202.1983).
//
// The experiment force-enables tracing for its own runs (restoring the
// previous setting), so it works without benchall -trace. It resets the
// tracer per cell to keep each snapshot attributable, so under -trace the
// experiment's exported tree holds only its final cell.
func RoundsPhases(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Rounds & phases: Table I winners under the trace layer",
		Header: []string{"graph", "problem", "arch", "strategy", "total", "decomp%", "rounds", "phase rounds"},
	}

	wasOn := trace.Enabled()
	trace.Enable(true)
	defer trace.Enable(wasOn)

	for _, spec := range cfg.specs() {
		g := dataset.Load(spec, cfg.Scale, cfg.Seed)
		for _, p := range []core.Problem{core.ProblemMM, core.ProblemColor, core.ProblemMIS} {
			for _, arch := range []core.Arch{core.ArchCPU, core.ArchGPU} {
				opt := core.Options{Strategy: core.StrategyAuto, Arch: arch, Seed: cfg.Seed}
				if arch == core.ArchGPU {
					opt.Machine = bsp.New()
				}
				trace.Reset()
				res, err := core.Solve(g, p, opt)
				if err != nil {
					panic(fmt.Sprintf("harness: rounds-phases %s/%v/%v: %v", spec.Name, p, arch, err))
				}
				snap := trace.Snapshot()
				if len(snap.Children) == 0 {
					continue // tracing externally disabled mid-run; nothing to report
				}
				solveSpan := snap.Children[0] // the "core .../..." span
				t.Rows = append(t.Rows, []string{
					spec.Name, p.String(), arch.String(), res.Report.StrategyName,
					fmtDur(solveSpan.Dur()),
					fmt.Sprintf("%.1f", decompShare(solveSpan)*100),
					fmt.Sprintf("%d", res.Report.Rounds),
					phaseRounds(solveSpan),
				})
			}
		}
	}
	t.Notes = append(t.Notes,
		"decomp% is the decomposition phase's share of the traced end-to-end span",
		"phase rounds split the Report.Rounds total over the solve phases (trace counter \"rounds\")",
		"the per-phase round structure mirrors the MPC analyses of decomposition-based symmetry breaking (arXiv:1807.06701, arXiv:1202.1983)")
	return t
}

// decompShare is the fraction of a solver span's wall time spent in its
// decomposition child phases.
func decompShare(e trace.Export) float64 {
	if e.DurNs == 0 {
		return 0
	}
	var d int64
	for _, c := range e.Children {
		if c.Name == "decomp" {
			d += c.DurNs
		}
	}
	return float64(d) / float64(e.DurNs)
}

// phaseRounds renders the per-phase "rounds" counters of a solver span's
// solve children, e.g. "parts:3 cross:21".
func phaseRounds(e trace.Export) string {
	var parts []string
	for _, c := range e.Children {
		name, ok := strings.CutPrefix(c.Name, "solve/")
		if !ok {
			if c.Name != "solve" {
				continue
			}
			name = "solve"
		}
		parts = append(parts, fmt.Sprintf("%s:%d", name, c.Counter("rounds")))
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, " ")
}
