// MMProgress and BFSAblation: per-round progress curves for the matching
// algorithms (the "vain tendency" plot) and BFS implementation ablation.

package harness

import (
	"fmt"
	"time"

	"repro/internal/bfs"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/par"
)

// MMProgress reproduces the paper's §III-C progress observation on the rgg
// instances: "Algorithm MM-Rand ... is seen to match about 70% of vertices
// in the induced subgraphs within 17 iterations and the remaining matches
// are found in another 400 iterations approximately. Algorithm GM requires
// on the order of 14,000 iterations." It runs GM on the full graph and on
// the RAND-decomposed G_IS, and reports the rounds needed to reach fixed
// fractions of the final matching.
func MMProgress(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		Title: "MM progress curves: rounds to reach a fraction of the final matching",
		Header: []string{"graph", "algorithm", "50%", "70%", "90%", "100%",
			"final matched"},
	}
	milestones := []float64{0.5, 0.7, 0.9, 1.0}
	addRow := func(name, alg string, st matching.Stats) {
		row := []string{name, alg}
		final := st.Matched
		for _, frac := range milestones {
			target := int64(frac * float64(final))
			round := len(st.PerRound)
			for r, c := range st.PerRound {
				if c >= target {
					round = r + 1
					break
				}
			}
			row = append(row, fmt.Sprintf("%d", round))
		}
		row = append(row, fmt.Sprintf("%d", final))
		t.Rows = append(t.Rows, row)
	}
	for _, spec := range cfg.specs() {
		g := dataset.Load(spec, cfg.Scale, cfg.Seed)
		_, gmStats := matching.GM(g)
		addRow(spec.Name, "GM", gmStats)
		// The first MM-Rand phase: GM on G_IS (intra-part edges only).
		k := spec.MMRandPartsCPU
		label := make([]int32, g.NumVertices())
		for i := range label {
			label[i] = int32(par.HashRange(cfg.Seed, int64(i), k))
		}
		gis := graph.RemoveEdges(g, func(u, v int32) bool { return label[u] == label[v] })
		_, randStats := matching.GM(gis)
		addRow(spec.Name, fmt.Sprintf("MM-Rand/G_IS(k=%d)", k), randStats)
	}
	t.Notes = append(t.Notes,
		"paper (rgg): GM ≈ 14,000 iterations; MM-Rand ≈ 70% within 17 iterations, rest in ~400")
	return t
}

// RelabelAblation isolates the vertex-ordering effect behind GM's vain
// tendency: it compares GM and MM-Rand on each instance as generated
// (structure-correlated ids) and after a random relabeling. The paper's
// pathological instances (rgg, banded) lose their pathology under
// relabeling, confirming the ordering — not the topology alone — drives
// the effect.
func RelabelAblation(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		Title: "Ablation: vertex-ordering effect on GM (rounds, original vs random ids)",
		Header: []string{"graph", "GM rounds (orig)", "GM rounds (relabeled)",
			"MM-Rand rounds (orig)", "MM-Rand rounds (relabeled)"},
	}
	for _, spec := range cfg.specs() {
		g := dataset.Load(spec, cfg.Scale, cfg.Seed)
		shuffled := graph.RelabelRandom(g, cfg.Seed+77)
		_, gmOrig := matching.GM(g)
		_, gmShuf := matching.GM(shuffled)
		_, randOrig := matching.MMRand(g, spec.MMRandPartsCPU, cfg.Seed, matching.GMSolver())
		_, randShuf := matching.MMRand(shuffled, spec.MMRandPartsCPU, cfg.Seed, matching.GMSolver())
		t.Rows = append(t.Rows, []string{
			spec.Name,
			fmt.Sprintf("%d", gmOrig.Rounds), fmt.Sprintf("%d", gmShuf.Rounds),
			fmt.Sprintf("%d", randOrig.Rounds), fmt.Sprintf("%d", randShuf.Rounds),
		})
	}
	return t
}

// BFSAblation measures the direction-optimizing BFS extension against the
// plain level-synchronous BFS that the paper's BRIDGE decomposition uses.
// Expected shape: large wins on small-diameter instances (kron, web) where
// the frontier quickly covers the graph, parity on large-diameter road
// networks where bottom-up never pays.
func BFSAblation(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Ablation: plain vs direction-optimizing BFS (BRIDGE's Step 1)",
		Header: []string{"graph", "plain", "hybrid", "speedup", "depth"},
	}
	for _, spec := range cfg.specs() {
		g := dataset.Load(spec, cfg.Scale, cfg.Seed)
		var depth int
		timeIt := func(run func()) time.Duration {
			var total time.Duration
			for r := 0; r < cfg.Repeats; r++ {
				start := time.Now()
				run()
				total += time.Since(start)
			}
			return total / time.Duration(cfg.Repeats)
		}
		plain := timeIt(func() { depth = bfs.Forest(g).Depth })
		hybrid := timeIt(func() { bfs.ForestHybrid(g) })
		t.Rows = append(t.Rows, []string{
			spec.Name, fmtDur(plain), fmtDur(hybrid),
			fmt.Sprintf("%.2fx", float64(plain)/float64(hybrid)),
			fmt.Sprintf("%d", depth),
		})
	}
	return t
}
