// Experiments: runners for the paper's numbered tables and figures
// (Table I/II, Figures 2-5) plus the ablation grids over decomposition
// parameters (partition count, degree threshold, phase order).

package harness

import (
	"fmt"
	"time"

	"repro/internal/coloring"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/decomp"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/mis"
)

// Exclusions the paper's average speedups apply (footnotes 1 and 2).
var (
	mmAvgExcludes     = []string{"rgg-n-2-23-s0", "rgg-n-2-24-s0"}
	misGPUAvgExcludes = []string{"c-73", "lp1"}
)

// Grid strategy column indexes (see strategyList).
const (
	colBaseline = 0
	colBridge   = 1
	colRand     = 2
	colDegk     = 3
	colMPX      = 4
)

// Table2 reproduces Table II: the dataset statistics, measured on the
// synthetic analogs next to the paper's published values.
func Table2(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Table II: dataset statistics (measured analog | paper)",
		Header: []string{"graph", "|V|", "|E|", "%DEG2", "%BRIDGES", "avgdeg", "paper |V|", "paper |E|", "paper %DEG2", "paper %BRIDGES", "paper avgdeg"},
	}
	for _, spec := range cfg.specs() {
		g := dataset.Load(spec, cfg.Scale, cfg.Seed)
		s := graph.ComputeStats(g, true)
		p := spec.Paper
		t.Rows = append(t.Rows, []string{
			spec.Name,
			fmt.Sprintf("%d", s.Vertices), fmt.Sprintf("%d", s.Edges),
			fmt.Sprintf("%.1f", s.PctDeg2), fmt.Sprintf("%.1f", s.PctBridges),
			fmt.Sprintf("%.1f", s.AvgDegree),
			fmt.Sprintf("%d", p.Vertices), fmt.Sprintf("%d", p.Edges),
			fmt.Sprintf("%.1f", p.PctDeg2), fmt.Sprintf("%.1f", p.PctBridges),
			fmt.Sprintf("%.1f", p.AvgDegree),
		})
	}
	t.Notes = append(t.Notes,
		"analogs are synthetic (offline build); |V|,|E| are scaled down, structural columns match Table II")
	return t
}

// Fig2 reproduces Figure 2: time per decomposition technique per graph
// (RAND with 10 subgraphs, DEGk with k=2).
func Fig2(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Figure 2: decomposition time per technique",
		Header: []string{"graph", "BRIDGE", "RAND(10)", "DEG2", "MPX(0.2)", "LABELPROP(8)", "BFS rounds"},
	}
	for _, spec := range cfg.specs() {
		g := dataset.Load(spec, cfg.Scale, cfg.Seed)
		avg := func(run func() time.Duration) time.Duration {
			var total time.Duration
			for r := 0; r < cfg.Repeats; r++ {
				total += run()
			}
			return total / time.Duration(cfg.Repeats)
		}
		var rounds int
		bridge := avg(func() time.Duration {
			r := decomp.Bridge(g)
			rounds = r.Rounds
			return r.Elapsed
		})
		rand := avg(func() time.Duration { return decomp.Rand(g, 10, cfg.Seed).Elapsed })
		degk := avg(func() time.Duration { return decomp.Degk(g, 2).Elapsed })
		mpx := avg(func() time.Duration { return decomp.MPX(g, decomp.DefaultMPXBeta, cfg.Seed).Elapsed })
		lp := avg(func() time.Duration { return decomp.LabelProp(g, 8, 5, cfg.Seed).Elapsed })
		t.Rows = append(t.Rows, []string{
			spec.Name, fmtDur(bridge), fmtDur(rand), fmtDur(degk), fmtDur(mpx), fmtDur(lp),
			fmt.Sprintf("%d", rounds),
		})
	}
	t.Notes = append(t.Notes,
		"expected shape: DEG2 fastest, RAND second, BRIDGE slowest (BFS-bound on large-diameter graphs)")
	return t
}

// colNames returns the figure column labels for a problem/arch.
func colNames(p core.Problem, arch core.Arch) []string {
	var base string
	switch p {
	case core.ProblemMM:
		if arch == core.ArchGPU {
			base = "LMAX"
		} else {
			base = "GM"
		}
	case core.ProblemColor:
		if arch == core.ArchGPU {
			base = "EB"
		} else {
			base = "VB"
		}
	default:
		base = "LubyMIS"
	}
	prefix := map[core.Problem]string{
		core.ProblemMM: "MM", core.ProblemColor: "COLOR", core.ProblemMIS: "MIS",
	}[p]
	return []string{base, prefix + "-Bridge", prefix + "-Rand", prefix + "-Degk", prefix + "-MPX"}
}

// Fig3 reproduces Figure 3 (a: CPU, b: GPU): absolute MM timings with the
// MM-Rand speedup atop the bars.
func Fig3(cfg Config, arch core.Arch) (*Table, *Grid) {
	grid := RunGrid(cfg, core.ProblemMM, arch)
	names := colNames(core.ProblemMM, arch)
	sub := "(a) CPU"
	if arch == core.ArchGPU {
		sub = "(b) GPU"
	}
	t := figure(grid, "Figure 3"+sub+": maximal matching", colRand, names)
	t.Notes = append(t.Notes, fmt.Sprintf(
		"avg MM-Rand speedup %.2fx excluding rgg instances (paper: %s)",
		grid.AvgSpeedup(colRand, mmAvgExcludes...),
		map[core.Arch]string{core.ArchCPU: "3.5x", core.ArchGPU: "2.53x"}[arch]))
	return t, grid
}

// Fig4 reproduces Figure 4 (a: CPU with COLOR-Degk speedups, b: GPU with
// COLOR-Rand speedups).
func Fig4(cfg Config, arch core.Arch) (*Table, *Grid) {
	grid := RunGrid(cfg, core.ProblemColor, arch)
	names := colNames(core.ProblemColor, arch)
	highlight := colDegk
	sub := "(a) CPU"
	paperAvg := "1.27x"
	if arch == core.ArchGPU {
		highlight = colRand
		sub = "(b) GPU"
		paperAvg = "1x"
	}
	t := figure(grid, "Figure 4"+sub+": vertex coloring", highlight, names)
	t.Notes = append(t.Notes, fmt.Sprintf("avg highlighted speedup %.2fx (paper: %s)",
		grid.AvgSpeedup(highlight), paperAvg))
	return t, grid
}

// Fig5 reproduces Figure 5 (a: CPU, b: GPU): MIS timings with MIS-Deg2
// speedups.
func Fig5(cfg Config, arch core.Arch) (*Table, *Grid) {
	grid := RunGrid(cfg, core.ProblemMIS, arch)
	names := colNames(core.ProblemMIS, arch)
	sub := "(a) CPU"
	var avg float64
	var paperAvg string
	if arch == core.ArchGPU {
		sub = "(b) GPU"
		avg = grid.AvgSpeedup(colDegk, misGPUAvgExcludes...)
		paperAvg = "2.16x (excl. c-73, lp1)"
	} else {
		avg = grid.AvgSpeedup(colDegk)
		paperAvg = "3.39x"
	}
	t := figure(grid, "Figure 5"+sub+": maximal independent set", colDegk, names)
	t.Notes = append(t.Notes, fmt.Sprintf("avg MIS-Deg2 speedup %.2fx (paper: %s)", avg, paperAvg))
	return t, grid
}

// Table1 reproduces Table I: the best decomposition and its average
// speedup per problem per architecture, derived from the six grids.
func Table1(cfg Config) *Table {
	t := &Table{
		Title:  "Table I: summary of results (best decomposition, avg speedup | paper)",
		Header: []string{"problem", "arch", "decomposition", "speedup", "paper"},
	}
	add := func(problem string, arch core.Arch, grid *Grid, col int, excl []string, paper string) {
		t.Rows = append(t.Rows, []string{
			problem, arch.String(), strategyColName(col),
			fmt.Sprintf("%.2fx", grid.AvgSpeedup(col, excl...)), paper,
		})
	}
	_, mmCPU := Fig3(cfg, core.ArchCPU)
	_, mmGPU := Fig3(cfg, core.ArchGPU)
	_, colCPU := Fig4(cfg, core.ArchCPU)
	_, colGPU := Fig4(cfg, core.ArchGPU)
	_, misCPU := Fig5(cfg, core.ArchCPU)
	_, misGPU := Fig5(cfg, core.ArchGPU)
	add("MM", core.ArchCPU, mmCPU, colRand, mmAvgExcludes, "RAND 3.5x")
	add("MM", core.ArchGPU, mmGPU, colRand, mmAvgExcludes, "RAND 2.53x")
	add("COLOR", core.ArchCPU, colCPU, colDegk, nil, "DEGk 1.27x")
	add("COLOR", core.ArchGPU, colGPU, colRand, nil, "RAND 1x")
	add("MIS", core.ArchCPU, misCPU, colDegk, nil, "DEGk 3.39x")
	add("MIS", core.ArchGPU, misGPU, colDegk, misGPUAvgExcludes, "DEGk 2.16x")
	// MPX rows: an extension beyond the paper (no published number).
	add("MM", core.ArchCPU, mmCPU, colMPX, mmAvgExcludes, "—")
	add("MM", core.ArchGPU, mmGPU, colMPX, mmAvgExcludes, "—")
	add("COLOR", core.ArchCPU, colCPU, colMPX, nil, "—")
	add("COLOR", core.ArchGPU, colGPU, colMPX, nil, "—")
	add("MIS", core.ArchCPU, misCPU, colMPX, nil, "—")
	add("MIS", core.ArchGPU, misGPU, colMPX, misGPUAvgExcludes, "—")
	t.Notes = append(t.Notes,
		"MPX (Miller–Peng–Xu ball growing) is an extension beyond the paper's three decompositions")
	return t
}

// strategyColName names a grid column.
func strategyColName(col int) string {
	switch col {
	case colBridge:
		return "BRIDGE"
	case colRand:
		return "RAND"
	case colDegk:
		return "DEGk"
	case colMPX:
		return "MPX"
	default:
		return "BASELINE"
	}
}

// ColorCounts reproduces the §IV-D color-overhead discussion: extra colors
// used by each decomposition strategy relative to the baseline, averaged
// over the instances, on both architectures.
func ColorCounts(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Color counts: extra colors vs baseline (avg %)",
		Header: []string{"arch", "COLOR-Bridge", "COLOR-Rand", "COLOR-Degk", "COLOR-MPX", "paper (Bridge/Rand/Degk)"},
	}
	for _, arch := range []core.Arch{core.ArchCPU, core.ArchGPU} {
		grid := RunGrid(cfg, core.ProblemColor, arch)
		var overhead [5]float64
		for _, name := range grid.Graphs {
			base := float64(grid.Cells[name][colBaseline].NumColors)
			for c := 1; c <= 4; c++ {
				overhead[c] += 100 * (float64(grid.Cells[name][c].NumColors) - base) / base
			}
		}
		n := float64(len(grid.Graphs))
		paper := "+0% / +3.9% / +3.0%"
		if arch == core.ArchGPU {
			paper = "+4.5% / +3.4% / +4.6%"
		}
		t.Rows = append(t.Rows, []string{
			arch.String(),
			fmt.Sprintf("%+.1f%%", overhead[colBridge]/n),
			fmt.Sprintf("%+.1f%%", overhead[colRand]/n),
			fmt.Sprintf("%+.1f%%", overhead[colDegk]/n),
			fmt.Sprintf("%+.1f%%", overhead[colMPX]/n),
			paper,
		})
	}
	return t
}

// AblationParts reproduces the partition-count sensitivity discussion
// (§III-D, §IV-D): MM-Rand and COLOR-Rand time as the RAND partition count
// grows. The paper observes slowdown with more partitions.
func AblationParts(cfg Config) *Table {
	cfg = cfg.withDefaults()
	parts := []int{2, 4, 10, 20, 50, 100}
	t := &Table{Title: "Ablation: RAND partition count sweep"}
	t.Header = []string{"graph", "problem"}
	for _, k := range parts {
		t.Header = append(t.Header, fmt.Sprintf("k=%d", k))
	}
	for _, spec := range cfg.specs() {
		g := dataset.Load(spec, cfg.Scale, cfg.Seed)
		mmRow := []string{spec.Name, "MM-Rand"}
		colRow := []string{spec.Name, "COLOR-Rand"}
		for _, k := range parts {
			start := time.Now()
			matching.MMRand(g, k, cfg.Seed, matching.GMSolver())
			mmRow = append(mmRow, fmtDur(time.Since(start)))
			start = time.Now()
			coloring.ColorRand(g, k, cfg.Seed, coloring.NewVB())
			colRow = append(colRow, fmtDur(time.Since(start)))
		}
		t.Rows = append(t.Rows, mmRow, colRow)
	}
	t.Notes = append(t.Notes,
		"paper: MM-Rand slows as partitions sparsify the parts; COLOR-Rand slows as cross conflicts grow")
	return t
}

// AblationDegk sweeps the DEGk threshold for MM-Degk and COLOR-Degk —
// checking the paper's fixed choice of k = 2.
func AblationDegk(cfg Config) *Table {
	cfg = cfg.withDefaults()
	ks := []int{1, 2, 3, 4, 8}
	t := &Table{Title: "Ablation: DEGk threshold sweep"}
	t.Header = []string{"graph", "problem"}
	for _, k := range ks {
		t.Header = append(t.Header, fmt.Sprintf("k=%d", k))
	}
	for _, spec := range cfg.specs() {
		g := dataset.Load(spec, cfg.Scale, cfg.Seed)
		mmRow := []string{spec.Name, "MM-Degk"}
		colRow := []string{spec.Name, "COLOR-Degk"}
		for _, k := range ks {
			start := time.Now()
			matching.MMDegk(g, k, matching.GMSolver())
			mmRow = append(mmRow, fmtDur(time.Since(start)))
			start = time.Now()
			coloring.ColorDegk(g, k, coloring.NewVB())
			colRow = append(colRow, fmtDur(time.Since(start)))
		}
		t.Rows = append(t.Rows, mmRow, colRow)
	}
	return t
}

// AblationOrder compares the MIS-Bridge / MIS-Rand order heuristic against
// both forced orders (§V-B1: "computing an MIS on the sparser of the
// graphs ... is beneficial in practice").
func AblationOrder(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Ablation: MIS phase-order heuristic",
		Header: []string{"graph", "algorithm", "auto", "parts-first", "cross-first"},
	}
	alg := mis.LubySolver(cfg.Seed)
	for _, spec := range cfg.specs() {
		g := dataset.Load(spec, cfg.Scale, cfg.Seed)
		bridgeCell := func(ord mis.Order) string {
			_, rep := mis.MISBridgeOrdered(g, alg, ord)
			return fmtDur(rep.Total())
		}
		randCell := func(ord mis.Order) string {
			_, rep := mis.MISRandOrdered(g, 10, cfg.Seed, alg, ord)
			return fmtDur(rep.Total())
		}
		t.Rows = append(t.Rows,
			[]string{spec.Name, "MIS-Bridge", bridgeCell(mis.OrderAuto), bridgeCell(mis.OrderPartsFirst), bridgeCell(mis.OrderCrossFirst)},
			[]string{spec.Name, "MIS-Rand", randCell(mis.OrderAuto), randCell(mis.OrderPartsFirst), randCell(mis.OrderCrossFirst)})
	}
	return t
}

// DecompStats reports, per instance, how the decompositions split the
// edges (intra-part vs cross) — the quantity that explains MM-Rand's
// sparsification and COLOR-Rand's conflicts — plus the structures each
// technique discovers (bridges; MPX balls).
func DecompStats(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:  "Decomposition edge split (intra-part edges / cross edges)",
		Header: []string{"graph", "BRIDGE", "RAND(10)", "DEG2", "MPX(0.2)", "bridges", "balls"},
	}
	for _, spec := range cfg.specs() {
		g := dataset.Load(spec, cfg.Scale, cfg.Seed)
		br := decomp.Bridge(g)
		rd := decomp.Rand(g, 10, cfg.Seed)
		dk := decomp.Degk(g, 2)
		mx := decomp.MPX(g, decomp.DefaultMPXBeta, cfg.Seed)
		t.Rows = append(t.Rows, []string{
			spec.Name,
			fmt.Sprintf("%d/%d", br.PartEdges(), br.CrossEdges()),
			fmt.Sprintf("%d/%d", rd.PartEdges(), rd.CrossEdges()),
			fmt.Sprintf("%d/%d", dk.PartEdges(), dk.CrossEdges()),
			fmt.Sprintf("%d/%d", mx.PartEdges(), mx.CrossEdges()),
			fmt.Sprintf("%d", len(br.Bridges)),
			fmt.Sprintf("%d", mx.Balls),
		})
	}
	return t
}
