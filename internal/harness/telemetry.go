package harness

import (
	"time"

	"repro/internal/telemetry"
)

// Live telemetry published by measure when telemetry.Enable(true) — the
// -serve wiring of cmd/benchall. Every timed repetition of every cell
// lands one observation per histogram, keyed by the full grid coordinate,
// so a scrape during a long run shows the latency distribution per
// {problem, algo, arch, graph} exactly as the paper's figures slice it.
var (
	cellDecompSeconds = telemetry.Default.HistogramVec(
		"symbreak_decomp_seconds",
		"Decomposition-phase latency per measured cell.",
		nil, "problem", "algo", "arch", "graph")
	cellSolveSeconds = telemetry.Default.HistogramVec(
		"symbreak_solve_seconds",
		"Solve-phase latency per measured cell.",
		nil, "problem", "algo", "arch", "graph")
	cellTotalSeconds = telemetry.Default.HistogramVec(
		"symbreak_cell_seconds",
		"Reported cell time (wall on CPU, decomp + simulated device time on GPU).",
		nil, "problem", "algo", "arch", "graph")
	cellsTotal = telemetry.Default.CounterVec(
		"symbreak_cells_total",
		"Measured cell repetitions completed.",
		"problem", "algo", "arch", "graph")
)

// publishCell records one timed repetition. algo is the concrete
// algorithm name from the report (MM-Rand, VB, ...), not the strategy id,
// matching the tables' row labels.
func publishCell(problem, algo, arch, graphName string, decomp, solve, total time.Duration) {
	cellDecompSeconds.With(problem, algo, arch, graphName).Observe(decomp.Seconds())
	cellSolveSeconds.With(problem, algo, arch, graphName).Observe(solve.Seconds())
	cellTotalSeconds.With(problem, algo, arch, graphName).Observe(total.Seconds())
	cellsTotal.With(problem, algo, arch, graphName).Inc()
}
