package mis

import (
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/par"
)

// KPSolver returns the bounded-degree MIS solver used for the G_L part of
// the DEG2 decomposition (degree ≤ 2: disjoint paths and cycles). It stands
// in for the orientation-based algorithm of Kothapalli and Pindiproli [21]
// that the paper plugs into MIS-Deg2: as in the paper, vertex numbers
// induce the orientation — a fixed id-derived priority orients every edge
// toward its higher-priority endpoint, and each round the sinks (local
// priority minima among undecided neighbors) join the set.
//
// Because every active vertex has at most two undecided neighbors, a round
// is a handful of comparisons with no per-round priority redraw and no
// neighborhood hashing; on the paper's real-world graphs with many
// degree ≤ 2 vertices this is the cheap special-purpose solver that "can
// easily outperform algorithms for general graphs" (§V-C discussion).
//
// The masked run requires every active vertex to have at most two
// *undecided* neighbors; KPDeg2 enforces the whole-graph degree bound for
// standalone use.
func KPSolver() Solver {
	return KPSolverOn(par.For)
}

// KPSolverOn is KPSolver with an explicit executor, so GPU runs charge the
// phase's sweeps to the virtual machine (pass machine.Launch).
func KPSolverOn(exec func(n int, kernel func(i int))) Solver {
	return func(g *graph.Graph, status []State, set *IndepSet, active []int32) Stats {
		return kpRun(g, exec, status, set, active)
	}
}

// KPDeg2 computes an MIS of a graph with maximum degree ≤ 2. It panics on
// denser inputs — callers must hand it the G_L part only.
func KPDeg2(g *graph.Graph) (*IndepSet, Stats) {
	if d := g.MaxDegree(); d > 2 {
		panic("mis: KPDeg2 requires maximum degree ≤ 2")
	}
	return freshRun(g, KPSolver())
}

// kpRun is the masked fixed-priority local-minima loop. The active set
// lives in a frontier.Subset and compacts with frontier.Filter each round
// (host-side, as thrust would do it); the per-round sweeps stay on the
// injected executor so GPU runs charge them to the virtual machine.
func kpRun(g *graph.Graph, exec func(n int, kernel func(i int)),
	status []State, set *IndepSet, active []int32) Stats {
	var st Stats
	// The orientation: id-scrambled priority, fixed for the whole run.
	prio := func(v int32) uint64 { return par.Hash64(0x927d5f3a, int64(v)) }

	act := frontier.New(g.NumVertices(), active)
	for !act.IsEmpty() {
		st.Rounds++
		vs := act.Vertices()
		exec(len(vs), func(i int) {
			v := vs[i]
			pv := prio(v)
			win := true
			for _, w := range g.Neighbors(v) {
				if status[w] != StateUndecided {
					continue
				}
				pw := prio(w)
				if pw < pv || (pw == pv && w < v) {
					win = false
					break
				}
			}
			if win {
				set.In[v] = true
			}
		})
		exec(len(vs), func(i int) {
			v := vs[i]
			if set.In[v] {
				status[v] = StateIn
				return
			}
			for _, w := range g.Neighbors(v) {
				if set.In[w] {
					status[v] = StateOut
					return
				}
			}
		})
		act = frontier.Filter(act, func(v int32) bool { return status[v] == StateUndecided })
	}
	return st
}
