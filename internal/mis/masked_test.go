package mis

import (
	"testing"

	"repro/internal/bsp"
	"repro/internal/graph"
)

func TestMaskedPhaseSeesOnlyInducedSubgraph(t *testing.T) {
	// Triangle 0-1-2 plus pendant 3 off vertex 0. Mask = {1, 2, 3}: the
	// induced subgraph is the single edge {1,2} plus isolated 3, so the
	// phase must select 3 and exactly one of {1,2} — never both.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	g := b.Build()
	set := NewIndepSet(4)
	member := []bool{false, true, true, true}
	maskedPhase(g, set, member, LubySolver(3))
	if set.In[0] {
		t.Fatal("non-member selected")
	}
	if !set.In[3] {
		t.Fatal("isolated member not selected")
	}
	if set.In[1] == set.In[2] {
		t.Fatalf("edge {1,2} handled wrong: in=%v/%v", set.In[1], set.In[2])
	}
}

func TestRemainderPhaseCompletesMaximality(t *testing.T) {
	g := pathGraph(9)
	set := NewIndepSet(9)
	set.In[0] = true // seed a partial independent set
	remainderPhase(g, set, LubySolver(1))
	if err := Verify(g, set); err != nil {
		t.Fatal(err)
	}
	if !set.In[0] {
		t.Fatal("remainder phase dropped a seeded member")
	}
}

func TestMISDeg2WithGPUAccounting(t *testing.T) {
	machine := bsp.New()
	g := pathGraph(2000) // everything degree ≤ 2: the KP phase does all work
	before := machine.Stats().Launches
	s, _ := MISDeg2With(g, LubyGPUSolver(machine, 1), KPSolverOn(machine.Launch))
	if err := Verify(g, s); err != nil {
		t.Fatal(err)
	}
	if machine.Stats().Launches == before {
		t.Fatal("KP phase launched no kernels on the machine")
	}
}

func TestSolverStateConstants(t *testing.T) {
	if StateUndecided != 0 {
		t.Fatal("zero value of State must be StateUndecided")
	}
	if StateIn == StateOut || StateIn == StateUndecided {
		t.Fatal("state constants collide")
	}
}

func TestGreedyFewerRoundsThanPathLength(t *testing.T) {
	_, st := Greedy(pathGraph(4096), 3)
	if st.Rounds > 80 {
		t.Fatalf("greedy took %d rounds; dependence depth should be logarithmic-ish", st.Rounds)
	}
}

func TestMISRandOrderedForcedOrders(t *testing.T) {
	g := randomGraph(400, 1600, 4)
	for _, ord := range []Order{OrderAuto, OrderPartsFirst, OrderCrossFirst} {
		s, rep := MISRandOrdered(g, 5, 2, LubySolver(7), ord)
		if err := Verify(g, s); err != nil {
			t.Fatalf("order %d: %v", ord, err)
		}
		switch ord {
		case OrderPartsFirst:
			if !rep.SparserFirst {
				t.Fatal("PartsFirst not honored")
			}
		case OrderCrossFirst:
			if rep.SparserFirst {
				t.Fatal("CrossFirst not honored")
			}
		}
	}
}

func TestMISBridgeOrderedForcedOrders(t *testing.T) {
	g := randomGraph(300, 400, 8)
	for _, ord := range []Order{OrderPartsFirst, OrderCrossFirst} {
		s, _ := MISBridgeOrdered(g, LubySolver(7), ord)
		if err := Verify(g, s); err != nil {
			t.Fatalf("order %d: %v", ord, err)
		}
	}
}

func TestMISBiconnMaximal(t *testing.T) {
	for name, g := range testGraphs() {
		s, rep := MISBiconn(g, LubySolver(13))
		if err := Verify(g, s); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Strategy != "MIS-Biconn" {
			t.Fatalf("strategy %q", rep.Strategy)
		}
	}
}
